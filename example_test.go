package loom_test

import (
	"fmt"
	"sort"

	"loom"
)

// The canonical end-to-end flow: declare the workload, stream edges,
// flush, read placements.
func Example() {
	wl := loom.NewWorkload("demo")
	wl.Add("coauthors", loom.Path("person", "paper", "person"), 1.0)

	p, err := loom.New(loom.Options{Partitions: 2, ExpectedVertices: 6, WindowSize: 4}, wl)
	if err != nil {
		panic(err)
	}
	// Two disjoint coauthor pairs.
	p.AddEdge(1, "person", 10, "paper")
	p.AddEdge(2, "person", 10, "paper")
	p.AddEdge(3, "person", 20, "paper")
	p.AddEdge(4, "person", 20, "paper")
	p.Flush()

	// Coauthor clusters stay together.
	a1, _ := p.PartitionOf(1)
	a2, _ := p.PartitionOf(2)
	paper1, _ := p.PartitionOf(10)
	b1, _ := p.PartitionOf(3)
	b2, _ := p.PartitionOf(4)
	paper2, _ := p.PartitionOf(20)
	fmt.Println("cluster 1 together:", a1 == a2 && a2 == paper1)
	fmt.Println("cluster 2 together:", b1 == b2 && b2 == paper2)
	// Output:
	// cluster 1 together: true
	// cluster 2 together: true
}

// Patterns can be built from paths, cycles, stars, or explicit edges.
func ExampleNewPattern() {
	q := loom.NewPattern().
		AddEdge(1, "Person", 2, "Paper").
		AddEdge(2, "Paper", 3, "Paper").
		AddEdge(3, "Paper", 4, "Person")
	fmt.Println(q.Edges(), "edges")
	// Output:
	// 3 edges
}

// Baselines implement the same interface, making comparisons one-liners.
func ExampleNewBaseline() {
	wl := loom.NewWorkload("w")
	wl.Add("pairs", loom.Path("a", "b"), 1.0)
	h, err := loom.NewBaseline("hash", loom.Options{Partitions: 4, ExpectedVertices: 10}, wl)
	if err != nil {
		panic(err)
	}
	h.AddEdge(1, "a", 2, "b")
	h.Flush()
	sizes := h.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	fmt.Println("assigned:", total)
	// Output:
	// assigned: 2
}

// Evaluate reports the workload-aware quality of the final partitioning.
func ExamplePartitioner_Evaluate() {
	wl := loom.NewWorkload("w")
	wl.Add("pair", loom.Path("x", "y"), 1.0)
	p, err := loom.New(loom.Options{Partitions: 2, ExpectedVertices: 4, WindowSize: 2}, wl)
	if err != nil {
		panic(err)
	}
	p.AddEdge(1, "x", 2, "y")
	p.AddEdge(3, "x", 4, "y")
	p.Flush()
	ev, err := p.Evaluate()
	if err != nil {
		panic(err)
	}
	fmt.Println("ipt:", ev.IPT)
	// Output:
	// ipt: 0
}

// Datasets from the paper's evaluation are available as generators.
func ExampleGenerateDataset() {
	edges, err := loom.GenerateDataset("provgen", 300, 1)
	if err != nil {
		panic(err)
	}
	labels := map[string]bool{}
	for _, e := range edges {
		labels[e.LU] = true
		labels[e.LV] = true
	}
	var names []string
	for l := range labels {
		names = append(names, l)
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output:
	// [Activity Agent Entity]
}
