package window

import "loom/internal/intern"

// edgeTable is the window's edge index: an open-addressing hash table
// keyed by the packed uint64 form of a normalised IEdge, holding the
// matchList entry (the live matches containing the edge) inline in each
// slot. It replaces the former pair of Go maps (inWindow set + byEdge
// match index) with a single probe per lookup, no per-key hashing of
// composite structs, and slot storage that is recycled in place — the
// eviction hot path performs no steady-state allocation against it.
//
// Key encoding: a normalised edge (U <= V, U != V) packs to
// uint64(U)<<32 | uint64(V). Self-loops are rejected upstream, so the
// packed values 0 (U = V = 0) and ^uint64(0) (U = V = MaxUint32) can
// never occur as keys; they serve as the empty and tombstone sentinels.
const (
	etEmpty = uint64(0)
	etTomb  = ^uint64(0)
)

// packIEdge packs a normalised interned edge into its table key.
func packIEdge(e IEdge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

type edgeSlot struct {
	key     uint64
	seq     uint64 // insertion sequence; pairs FIFO entries with THIS residency
	matches []*Match
}

type edgeTable struct {
	slots []edgeSlot // len is a power of two
	live  int        // keys present
	used  int        // keys present + tombstones
}

// etHash finishes the packed key with intern.Mix64 (splitmix64's
// avalanche): consecutive dense vertex indices otherwise collide in the
// low bits that index the slot array.
func etHash(pk uint64) uint64 { return intern.Mix64(pk) }

// Len returns the number of edges in the table.
func (t *edgeTable) Len() int { return t.live }

// get returns the slot for pk, or nil. The pointer is valid until the
// next insert (which may rehash).
func (t *edgeTable) get(pk uint64) *edgeSlot {
	if t.live == 0 {
		return nil
	}
	mask := uint64(len(t.slots) - 1)
	for i := etHash(pk) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.key {
		case pk:
			return s
		case etEmpty:
			return nil
		}
	}
}

// has reports whether pk is in the table.
func (t *edgeTable) has(pk uint64) bool { return t.get(pk) != nil }

// ensure returns pk's slot, inserting it if absent; existed reports
// whether pk was already present. One probe walk serves the insert path's
// duplicate check AND the insertion (the separate has + insert pair it
// replaces walked twice); an absent key lands on the first tombstone of
// its probe path, exactly where insert would put it.
func (t *edgeTable) ensure(pk uint64) (s *edgeSlot, existed bool) {
	if len(t.slots) == 0 || (t.used+1)*4 > len(t.slots)*3 {
		t.rehash()
	}
	mask := uint64(len(t.slots) - 1)
	firstTomb := -1
	for i := etHash(pk) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.key {
		case pk:
			return s, true
		case etTomb:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case etEmpty:
			if firstTomb >= 0 {
				s = &t.slots[firstTomb]
			} else {
				t.used++
			}
			s.key = pk
			s.matches = s.matches[:0]
			t.live++
			return s, false
		}
	}
}

// insert adds pk (which must not be present) and returns its slot, with
// matches reset to length zero (capacity recycled from a prior occupant
// of the slot, if any). The pointer is valid until the next insert.
func (t *edgeTable) insert(pk uint64) *edgeSlot {
	if len(t.slots) == 0 || (t.used+1)*4 > len(t.slots)*3 {
		t.rehash()
	}
	mask := uint64(len(t.slots) - 1)
	for i := etHash(pk) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.key {
		case etEmpty:
			t.used++
			fallthrough
		case etTomb:
			s.key = pk
			s.matches = s.matches[:0]
			t.live++
			return s
		}
	}
}

// remove deletes pk if present, reporting whether it was. The slot's
// match list capacity is retained for the next occupant.
func (t *edgeTable) remove(pk uint64) bool {
	s := t.get(pk)
	if s == nil {
		return false
	}
	t.removeSlot(s)
	return true
}

// removeSlot deletes a slot the caller already probed for, skipping the
// second probe remove would pay.
func (t *edgeTable) removeSlot(s *edgeSlot) {
	s.key = etTomb
	s.matches = s.matches[:0]
	t.live--
}

// rehash rebuilds the slot array: doubled when genuinely full, same size
// when tombstones account for the load (the steady state of a sliding
// window, which inserts and removes at the same rate).
func (t *edgeTable) rehash() {
	n := len(t.slots)
	switch {
	case n == 0:
		n = 64
	case (t.live+1)*2 > n:
		n *= 2
	}
	old := t.slots
	t.slots = make([]edgeSlot, n)
	t.used = t.live
	mask := uint64(n - 1)
	for _, s := range old {
		if s.key == etEmpty || s.key == etTomb {
			continue
		}
		for i := etHash(s.key) & mask; ; i = (i + 1) & mask {
			if t.slots[i].key == etEmpty {
				t.slots[i] = s
				break
			}
		}
	}
}
