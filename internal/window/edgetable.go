package window

import "loom/internal/container"

// edgeTable is the window's edge index: a packed open-addressing table
// (internal/container.U64Table — promoted from this package, which proved
// the design in PR 2) keyed by the packed uint64 form of a normalised
// IEdge, holding the insertion sequence and the matchList entry (the live
// matches containing the edge) inline in each slot. One probe per lookup,
// no per-key hashing of composite structs, and slot payload storage is
// recycled in place — the eviction hot path performs no steady-state
// allocation against it.
//
// Key encoding: a normalised edge (U <= V, U != V) packs to
// uint64(U)<<32 | uint64(V). Self-loops are rejected upstream, so the
// packed values 0 (U = V = 0) and ^uint64(0) (U = V = MaxUint32) can
// never occur as keys; they serve as the table's empty and tombstone
// sentinels.

// packIEdge packs a normalised interned edge into its table key.
func packIEdge(e IEdge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// edgeVal is the per-edge payload: insertion sequence (pairs FIFO entries
// with THIS residency of the edge) and the live matches containing it.
type edgeVal struct {
	seq     uint64
	matches []*Match
}

type edgeSlot = container.Slot[edgeVal]

type edgeTable struct {
	container.U64Table[edgeVal]
}

// get returns the slot for pk, or nil. The pointer is valid until the
// next insert (which may rehash).
func (t *edgeTable) get(pk uint64) *edgeSlot { return t.Get(pk) }

// has reports whether pk is in the table.
func (t *edgeTable) has(pk uint64) bool { return t.Has(pk) }

// ensure returns pk's slot, inserting it if absent; existed reports
// whether pk was already present. A fresh slot's match list starts empty
// (capacity recycled from a prior occupant, if any).
func (t *edgeTable) ensure(pk uint64) (s *edgeSlot, existed bool) {
	s, existed = t.Ensure(pk)
	if !existed {
		s.Val.matches = s.Val.matches[:0]
	}
	return s, existed
}

// insert adds pk (which must not be present) and returns its slot, with
// matches reset to length zero (capacity recycled from a prior occupant
// of the slot, if any). The pointer is valid until the next insert.
func (t *edgeTable) insert(pk uint64) *edgeSlot {
	s := t.Insert(pk)
	s.Val.matches = s.Val.matches[:0]
	return s
}

// remove deletes pk if present, reporting whether it was. The slot's
// match list capacity is retained for the next occupant.
func (t *edgeTable) remove(pk uint64) bool {
	s := t.Get(pk)
	if s == nil {
		return false
	}
	t.removeSlot(s)
	return true
}

// removeSlot deletes a slot the caller already probed for, skipping the
// second probe remove would pay.
func (t *edgeTable) removeSlot(s *edgeSlot) {
	s.Val.matches = s.Val.matches[:0]
	t.RemoveSlot(s)
}
