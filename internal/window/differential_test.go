package window

// Differential test for the rebuilt matching core (ISSUE 5): a small
// naive reference matcher — plain maps, degrees recomputed by scanning
// edge sets, trie children resolved by multiset arithmetic instead of the
// packed delta tables — runs Alg. 2 side by side with the production
// Matcher on seeded random streams of all four evaluation datasets. After
// every insert and every eviction the two matchers must agree on the
// exact set of ⟨edge set, motif node⟩ matches and their supports. Runs
// under -race in CI (the naive matcher is deliberately single-threaded;
// the value of -race here is covering the production matcher's scratch
// reuse under realistic interleavings of insert and removal).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/signature"
	"loom/internal/tpstry"
	"loom/internal/workload"
)

// naiveMatch mirrors Match with no cached state: just the edge set and
// the motif node.
type naiveMatch struct {
	edges []IEdge // sorted
	node  *tpstry.Node
	dead  bool
}

// naiveMatcher is the reference implementation of the window matchList:
// every structure is a map or plain slice, every delta is recomputed from
// scratch against label strings, and trie child links are resolved by
// signature-multiset subtraction (independently exercising the packed
// child tables it is compared against).
type naiveMatcher struct {
	trie      *tpstry.Trie
	scheme    *signature.Scheme
	threshold float64
	maxEdges  int
	maxPerV   int

	window   map[IEdge]bool
	labels   map[uint32]graph.Label
	byVertex map[uint32][]*naiveMatch
}

func newNaive(trie *tpstry.Trie, threshold float64, maxPerV int) *naiveMatcher {
	return &naiveMatcher{
		trie:      trie,
		scheme:    trie.Scheme(),
		threshold: threshold,
		maxEdges:  trie.MaxMotifEdges(threshold),
		maxPerV:   maxPerV,
		window:    map[IEdge]bool{},
		labels:    map[uint32]graph.Label{},
		byVertex:  map[uint32][]*naiveMatch{},
	}
}

func (n *naiveMatcher) vertsOf(edges []IEdge) []uint32 {
	seen := map[uint32]bool{}
	for _, e := range edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// deltaFor recomputes the 3-factor delta of adding ie to edges, scanning
// the edge set for endpoint degrees and going through the string-label
// EdgeDelta API (no cached r-values).
func (n *naiveMatcher) deltaFor(ie IEdge, edges []IEdge) signature.Delta {
	du, dv := 0, 0
	for _, e := range edges {
		if e.U == ie.U || e.V == ie.U {
			du++
		}
		if e.U == ie.V || e.V == ie.V {
			dv++
		}
	}
	return n.scheme.EdgeDelta(n.labels[ie.U], du, n.labels[ie.V], dv)
}

// childByDelta resolves a trie child by first principles: the child whose
// signature minus the parent's is exactly d's factors.
func (n *naiveMatcher) childByDelta(node *tpstry.Node, d signature.Delta) (*tpstry.Node, bool) {
	want := signature.NewMultiset(d[0], d[1], d[2])
	for _, c := range node.Children() {
		if diff, ok := c.Sig.Minus(node.Sig); ok && diff.Equal(want) {
			return c, true
		}
	}
	return nil, false
}

func sameNaiveEdges(a, b []IEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addMatch mirrors Matcher.addMatch: canonicalise, dedup, cap, record.
func (n *naiveMatcher) addMatch(edges []IEdge, node *tpstry.Node) {
	sorted := append([]IEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return CompareIEdges(sorted[i], sorted[j]) < 0 })
	verts := n.vertsOf(sorted)
	for _, ex := range n.byVertex[verts[0]] {
		if !ex.dead && ex.node == node && sameNaiveEdges(ex.edges, sorted) {
			return // duplicate
		}
	}
	for _, v := range verts {
		if len(n.byVertex[v]) >= n.maxPerV {
			return // per-vertex cap
		}
	}
	m := &naiveMatch{edges: sorted, node: node}
	for _, v := range verts {
		n.byVertex[v] = append(n.byVertex[v], m)
	}
}

func (m *naiveMatch) contains(ie IEdge) bool {
	for _, e := range m.edges {
		if e == ie {
			return true
		}
	}
	return false
}

func (m *naiveMatch) hasVertex(v uint32) bool {
	for _, e := range m.edges {
		if e.U == v || e.V == v {
			return true
		}
	}
	return false
}

// insert mirrors Matcher.InsertInterned: single-edge match, grow pass,
// join pass (both orientations, as the pre-rebuild matcher ran them — the
// production mirror-skip must be outcome-neutral).
func (n *naiveMatcher) insert(ie IEdge, lu, lv graph.Label, node *tpstry.Node) {
	n.labels[ie.U], n.labels[ie.V] = lu, lv
	n.window[ie] = true
	n.addMatch([]IEdge{ie}, node)

	ms1 := append([]*naiveMatch(nil), n.byVertex[ie.U]...)
	ms2 := append([]*naiveMatch(nil), n.byVertex[ie.V]...)
	grow := func(m *naiveMatch) {
		if m.dead || len(m.edges) >= n.maxEdges || m.contains(ie) {
			return
		}
		d := n.deltaFor(ie, m.edges)
		if c, ok := n.childByDelta(m.node, d); ok && n.trie.IsMotif(c, n.threshold) {
			n.addMatch(append(append([]IEdge(nil), m.edges...), ie), c)
		}
	}
	for _, m := range ms1 {
		grow(m)
	}
	for _, m := range ms2 {
		if !m.hasVertex(ie.U) {
			grow(m)
		}
	}

	ms1 = append([]*naiveMatch(nil), n.byVertex[ie.U]...)
	ms2 = append([]*naiveMatch(nil), n.byVertex[ie.V]...)
	for _, m1 := range ms1 {
		if m1.dead {
			continue
		}
		for _, m2 := range ms2 {
			if m2.dead || m1 == m2 {
				continue
			}
			n.join(m1, m2)
		}
	}
}

// join mirrors the pre-rebuild tryJoin: grow the larger by the smaller,
// one recursive motif-checked edge at a time.
func (n *naiveMatcher) join(m1, m2 *naiveMatch) {
	if len(m2.edges) > len(m1.edges) {
		m1, m2 = m2, m1
	}
	var remaining []IEdge
	for _, e := range m2.edges {
		if !m1.contains(e) {
			remaining = append(remaining, e)
		}
	}
	if len(remaining) == 0 || len(m1.edges)+len(remaining) > n.maxEdges {
		return
	}
	cur := append([]IEdge(nil), m1.edges...)
	if node, ok := n.growRec(m1.node, cur, remaining); ok {
		n.addMatch(append(append([]IEdge(nil), m1.edges...), remaining...), node)
	}
}

func (n *naiveMatcher) growRec(node *tpstry.Node, edges, remaining []IEdge) (*tpstry.Node, bool) {
	if len(remaining) == 0 {
		return node, true
	}
	for i, e := range remaining {
		touches := false
		for _, f := range edges {
			if f.U == e.U || f.V == e.U || f.U == e.V || f.V == e.V {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		d := n.deltaFor(e, edges)
		c, ok := n.childByDelta(node, d)
		if !ok || !n.trie.IsMotif(c, n.threshold) {
			continue
		}
		rest := append(append([]IEdge(nil), remaining[:i]...), remaining[i+1:]...)
		if final, ok := n.growRec(c, append(append([]IEdge(nil), edges...), e), rest); ok {
			return final, true
		}
	}
	return nil, false
}

// remove mirrors Matcher.RemoveIEdges.
func (n *naiveMatcher) remove(ie IEdge) {
	if !n.window[ie] {
		return
	}
	delete(n.window, ie)
	for _, ms := range n.byVertex {
		for _, m := range ms {
			if !m.dead && m.contains(ie) {
				m.dead = true
			}
		}
	}
	for v, ms := range n.byVertex {
		live := ms[:0]
		for _, m := range ms {
			if !m.dead {
				live = append(live, m)
			}
		}
		n.byVertex[v] = live
	}
}

// matchKeys returns the canonical sorted list of "nodeID|support|edges"
// strings for all live matches.
func (n *naiveMatcher) matchKeys() []string {
	seen := map[*naiveMatch]bool{}
	var keys []string
	for _, ms := range n.byVertex {
		for _, m := range ms {
			if m.dead || seen[m] {
				continue
			}
			seen[m] = true
			keys = append(keys, matchKey(m.node.ID, n.trie.SupportOf(m.node), m.edges))
		}
	}
	sort.Strings(keys)
	return keys
}

func matchKey(nodeID int, support float64, edges []IEdge) string {
	return fmt.Sprintf("n%d s%.9f %v", nodeID, support, edges)
}

// realMatchKeys enumerates the production matcher's live matches the same
// way.
func realMatchKeys(w *Matcher) []string {
	seen := map[*Match]bool{}
	var keys []string
	for _, se := range w.WindowEdges() {
		for _, m := range w.MatchesContaining(se.Edge()) {
			if seen[m] {
				continue
			}
			seen[m] = true
			keys = append(keys, matchKey(m.Node.ID, w.Support(m), m.IEdges()))
		}
	}
	sort.Strings(keys)
	return keys
}

func diffKeys(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) == len(got) {
		same := true
		for i := range want {
			if want[i] != got[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	t.Fatalf("%s: match sets diverged\nnaive (%d): %v\nreal  (%d): %v",
		label, len(want), want, len(got), got)
}

// TestDifferentialAgainstNaiveMatcher streams seeded random orderings of
// every evaluation dataset through both matchers with a small sliding
// window (evictions included) and requires identical match sets and
// supports at every step. Placement-level agreement on the same streams
// is pinned by TestRandomStreamPlacementsParity at the repo root.
func TestDifferentialAgainstNaiveMatcher(t *testing.T) {
	for _, ds := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		t.Run(ds, func(t *testing.T) {
			g, err := dataset.Generate(ds, 700, 11)
			if err != nil {
				t.Fatal(err)
			}
			wl, err := workload.ForDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			scheme := signature.NewScheme(signature.DefaultP, 11)
			scheme.RegisterLabels(dataset.DatasetLabels(ds))
			trie, err := wl.BuildTrie(scheme)
			if err != nil {
				t.Fatal(err)
			}
			stream := graph.StreamOf(g, graph.OrderRandom, rand.New(rand.NewSource(23)))
			if len(stream) > 1200 {
				stream = stream[:1200]
			}

			const windowCap = 48
			w := NewMatcher(trie, 0.4, windowCap)
			nv := newNaive(trie, 0.4, w.maxPerV)

			step := 0
			for _, se := range stream {
				if se.U == se.V {
					continue
				}
				node, ok := w.SingleEdgeMotif(se)
				if !ok {
					continue
				}
				ui := w.verts.Intern(int64(se.U))
				vi := w.verts.Intern(int64(se.V))
				ie := IEdge{ui, vi}.norm()
				if w.HasEdge(se.Edge()) {
					continue
				}
				if err := w.Insert(se); err != nil {
					t.Fatal(err)
				}
				lu, lv := se.LU, se.LV
				if ie.U != ui { // normalised swap: labels follow vertices
					lu, lv = lv, lu
				}
				nv.insert(ie, lu, lv, node)
				step++
				diffKeys(t, fmt.Sprintf("%s step %d (insert %v)", ds, step, ie), nv.matchKeys(), realMatchKeys(w))

				for w.Len() > windowCap {
					_, oldIE, ok := w.OldestI()
					if !ok {
						t.Fatal("over capacity but no oldest edge")
					}
					w.RemoveIEdges([]IEdge{oldIE})
					nv.remove(oldIE.norm())
					diffKeys(t, fmt.Sprintf("%s step %d (evict %v)", ds, step, oldIE), nv.matchKeys(), realMatchKeys(w))
				}
			}
			if step < 50 {
				t.Fatalf("stream exercised only %d motif edges", step)
			}
		})
	}
}
