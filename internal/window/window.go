// Package window implements Loom's sliding stream window Ptemp and the
// motif-matching procedure of §3 (Alg. 2).
//
// The window buffers the most recent motif-matching edges of the graph
// stream. Alongside it, a matchList maps each window vertex v to the set of
// motif-matching sub-graphs in Ptemp that contain v, each paired with the
// TPSTry++ node of the motif it matches: entries take the form
// v → {⟨Ei, mi⟩, ⟨Ej, mj⟩, …} where Ei is a set of window edges forming a
// sub-graph with the same signature as motif mi.
//
// When a new edge e = (v1, v2) arrives:
//
//  1. If e does not match a single-edge motif at the root of the TPSTry++,
//     it "will never form part of any sub-graph that matches a motif" and
//     the caller (Loom) assigns it immediately, bypassing the window.
//  2. Otherwise e is added with its single-edge match, then every existing
//     match connected to e is tentatively grown by e: the 3-factor delta of
//     the addition is computed against the match's sub-graph and looked up
//     among the children of the match's trie node (Alg. 2 lines 3–8).
//  3. Finally, pairs of existing matches around v1 and v2 are joined by
//     recursively growing the larger by the edges of the smaller, one trie
//     link at a time (Alg. 2 lines 11–18).
//
// Matches are recorded for every vertex of the matching sub-graph, per the
// worked example of §3 (⟨{e2,e3}, m3⟩ is added "to the matchList entries
// for vertices 3, 4 and 5").
package window

import (
	"fmt"
	"sort"

	"loom/internal/graph"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// DefaultMaxMatchesPerVertex guards against pathological windows (e.g. a
// dense same-label hub) where the number of overlapping motif matches per
// vertex explodes. Beyond the cap, new matches containing the vertex are
// not recorded; partitioning degrades gracefully toward LDG behaviour.
const DefaultMaxMatchesPerVertex = 128

// Match is a motif-matching sub-graph in the window: an edge set paired
// with the TPSTry++ node whose signature it shares (an entry ⟨Ei, mi⟩ of
// the matchList).
type Match struct {
	// Edges is the match's edge set in canonical (normalised, sorted)
	// order.
	Edges []graph.Edge
	// Node is the motif's TPSTry++ node; Node.Sig equals the sub-graph's
	// signature and the trie's SupportOf(Node) gives the motif support
	// used to rank matches during assignment (§4).
	Node *tpstry.Node

	key  string
	dead bool
}

// Vertices returns the distinct vertices of the match, sorted.
func (m *Match) Vertices() []graph.VertexID {
	seen := make(map[graph.VertexID]struct{}, len(m.Edges)+1)
	for _, e := range m.Edges {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	out := make([]graph.VertexID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContainsEdge reports whether the match includes e (normalised).
func (m *Match) ContainsEdge(e graph.Edge) bool {
	e = e.Norm()
	for _, me := range m.Edges {
		if me == e {
			return true
		}
	}
	return false
}

func (m *Match) String() string {
	return fmt.Sprintf("⟨%v,%v⟩", m.Edges, m.Node)
}

func matchKey(edges []graph.Edge, node *tpstry.Node) string {
	buf := make([]byte, 0, len(edges)*16+8)
	for _, e := range edges {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(e.U>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(e.V>>(8*i)))
		}
	}
	id := node.ID
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(id>>(8*i)))
	}
	return string(buf)
}

// Matcher is the sliding window Ptemp plus its matchList. It is not safe
// for concurrent use (Loom is single-threaded, §6).
type Matcher struct {
	trie      *tpstry.Trie
	scheme    *signature.Scheme
	threshold float64
	capacity  int
	maxEdges  int // largest motif size; matches never grow beyond it
	maxPerV   int

	fifo     []graph.StreamEdge
	head     int
	inWindow map[graph.Edge]bool
	count    int

	labels   map[graph.VertexID]graph.Label
	vertexRC map[graph.VertexID]int // window edges touching each vertex

	byVertex map[graph.VertexID][]*Match
	byEdge   map[graph.Edge][]*Match
	all      map[string]*Match
}

// NewMatcher builds a window of the given capacity (the paper's t, default
// 10k edges in §5.1) over the motifs of trie at the given support
// threshold.
func NewMatcher(trie *tpstry.Trie, threshold float64, capacity int) *Matcher {
	if capacity < 0 {
		panic(fmt.Sprintf("window: negative capacity %d", capacity))
	}
	return &Matcher{
		trie:      trie,
		scheme:    trie.Scheme(),
		threshold: threshold,
		capacity:  capacity,
		maxEdges:  trie.MaxMotifEdges(threshold),
		maxPerV:   DefaultMaxMatchesPerVertex,
		inWindow:  make(map[graph.Edge]bool),
		labels:    make(map[graph.VertexID]graph.Label),
		vertexRC:  make(map[graph.VertexID]int),
		byVertex:  make(map[graph.VertexID][]*Match),
		byEdge:    make(map[graph.Edge][]*Match),
		all:       make(map[string]*Match),
	}
}

// SetMaxMatchesPerVertex overrides the per-vertex match cap.
func (w *Matcher) SetMaxMatchesPerVertex(n int) { w.maxPerV = n }

// Len returns the number of edges currently in the window.
func (w *Matcher) Len() int { return w.count }

// Capacity returns the window size t.
func (w *Matcher) Capacity() int { return w.capacity }

// OverCapacity reports whether the window holds more than t edges, i.e. an
// eviction is due ("each new edge added to a full window causes the oldest
// edge to be dropped", §4).
func (w *Matcher) OverCapacity() bool { return w.count > w.capacity }

// Empty reports whether the window holds no edges.
func (w *Matcher) Empty() bool { return w.count == 0 }

// NumMatches returns the number of live matches (diagnostics).
func (w *Matcher) NumMatches() int { return len(w.all) }

// Label returns the label of a window vertex.
func (w *Matcher) Label(v graph.VertexID) (graph.Label, bool) {
	l, ok := w.labels[v]
	return l, ok
}

// HasVertex reports whether v currently has edges buffered in the window,
// i.e. v is part of Ptemp and will be placed by a future eviction. Loom's
// immediate-assignment path consults this to avoid pinning a vertex whose
// motif cluster is still forming (§4: the assignment of motif matches, not
// incidental non-motif edges, should decide such vertices' placement).
func (w *Matcher) HasVertex(v graph.VertexID) bool { return w.vertexRC[v] > 0 }

// SingleEdgeMotif returns the TPSTry++ node for the single-edge motif
// matching e, if one exists at the current threshold. This is the gate of
// §3: edges failing it never enter the window.
func (w *Matcher) SingleEdgeMotif(e graph.StreamEdge) (*tpstry.Node, bool) {
	d := w.scheme.EdgeDelta(e.LU, 0, e.LV, 0)
	n, ok := w.trie.Root().ChildByDelta(d)
	if !ok || !w.trie.IsMotif(n, w.threshold) {
		return nil, false
	}
	return n, true
}

// Insert adds a motif-matching edge to the window and updates the
// matchList per Alg. 2. The caller must have checked SingleEdgeMotif; a
// duplicate window edge or self-loop is rejected with an error.
func (w *Matcher) Insert(e graph.StreamEdge) error {
	if e.U == e.V {
		return fmt.Errorf("window: self-loop %v", e)
	}
	norm := e.Edge().Norm()
	if w.inWindow[norm] {
		return fmt.Errorf("window: duplicate edge %v", norm)
	}
	node, ok := w.SingleEdgeMotif(e)
	if !ok {
		return fmt.Errorf("window: edge %v does not match a single-edge motif", e)
	}

	w.fifo = append(w.fifo, e)
	w.inWindow[norm] = true
	w.count++
	w.labels[e.U] = e.LU
	w.labels[e.V] = e.LV
	w.vertexRC[e.U]++
	w.vertexRC[e.V]++

	// The new single-edge match ⟨{e}, m⟩.
	w.addMatch([]graph.Edge{norm}, node)

	// Alg. 2 lines 3–8: grow each existing match connected to e.
	for _, m := range w.connectedMatches(e.U, e.V, norm) {
		if len(m.Edges) >= w.maxEdges || m.ContainsEdge(norm) {
			continue
		}
		d := w.deltaFor(norm, m.Edges)
		if c, ok := m.Node.ChildByDelta(d); ok && w.trie.IsMotif(c, w.threshold) {
			w.addMatch(append(append([]graph.Edge(nil), m.Edges...), norm), c)
		}
	}

	// Alg. 2 lines 11–18: join pairs of matches from the two endpoints'
	// (updated) matchList entries.
	ms1 := append([]*Match(nil), w.byVertex[e.U]...)
	ms2 := append([]*Match(nil), w.byVertex[e.V]...)
	for _, m1 := range ms1 {
		if m1.dead {
			continue
		}
		for _, m2 := range ms2 {
			if m2.dead || m1 == m2 {
				continue
			}
			w.tryJoin(m1, m2)
		}
	}
	return nil
}

// connectedMatches snapshots the live matches listed under either endpoint
// (excluding the just-added single edge match, which cannot grow by its own
// edge anyway — ContainsEdge filters it).
func (w *Matcher) connectedMatches(u, v graph.VertexID, _ graph.Edge) []*Match {
	seen := make(map[*Match]bool)
	var out []*Match
	for _, list := range [2][]*Match{w.byVertex[u], w.byVertex[v]} {
		for _, m := range list {
			if !m.dead && !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// deltaFor computes the 3 factors that adding edge e to the sub-graph
// formed by edges would multiply into its signature: the edge factor plus
// one degree factor per endpoint, using each endpoint's degree *within the
// sub-graph* (§2.1's incremental computation, applied stream-side).
func (w *Matcher) deltaFor(e graph.Edge, edges []graph.Edge) signature.Delta {
	du, dv := 0, 0
	for _, me := range edges {
		if me.HasEndpoint(e.U) {
			du++
		}
		if me.HasEndpoint(e.V) {
			dv++
		}
	}
	return w.scheme.EdgeDelta(w.labels[e.U], du, w.labels[e.V], dv)
}

// addMatch records a match if it is new and the per-vertex cap allows,
// returning the canonical *Match (existing or new) and whether it was
// created.
func (w *Matcher) addMatch(edges []graph.Edge, node *tpstry.Node) (*Match, bool) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	key := matchKey(edges, node)
	if m, ok := w.all[key]; ok {
		return m, false
	}
	m := &Match{Edges: edges, Node: node, key: key}
	for _, v := range m.Vertices() {
		if len(w.byVertex[v]) >= w.maxPerV {
			return nil, false // cap: do not record (graceful degradation)
		}
	}
	w.all[key] = m
	for _, v := range m.Vertices() {
		w.byVertex[v] = append(w.byVertex[v], m)
	}
	for _, e := range m.Edges {
		w.byEdge[e] = append(w.byEdge[e], m)
	}
	return m, true
}

// tryJoin attempts to combine two matches (Alg. 2 lines 11–18): edges of
// the smaller match are added to the larger one at a time; every
// intermediate step must land on a motif node of the trie. On success the
// combined match is recorded.
func (w *Matcher) tryJoin(m1, m2 *Match) {
	// Grow the larger by the smaller ("we consider each edge from the
	// smaller motif match").
	if len(m2.Edges) > len(m1.Edges) {
		m1, m2 = m2, m1
	}
	remaining := make([]graph.Edge, 0, len(m2.Edges))
	for _, e := range m2.Edges {
		if !m1.ContainsEdge(e) {
			remaining = append(remaining, e)
		}
	}
	if len(remaining) == 0 {
		return // m2 ⊆ m1: nothing new
	}
	if len(m1.Edges)+len(remaining) > w.maxEdges {
		return // cannot possibly match a motif
	}
	edges := append([]graph.Edge(nil), m1.Edges...)
	if node, ok := w.grow(m1.Node, edges, remaining); ok {
		combined := append(edges, remaining...)
		w.addMatch(combined, node)
	}
}

// grow recursively adds the remaining edges (in any workable order) to the
// edge set, following motif child links; it reports the final node on
// success. The edge set slice is used as scratch (append/truncate).
func (w *Matcher) grow(node *tpstry.Node, edges []graph.Edge, remaining []graph.Edge) (*tpstry.Node, bool) {
	if len(remaining) == 0 {
		return node, true
	}
	for i, e := range remaining {
		// Connectivity guard: the next edge must touch the sub-graph
		// (trie deltas imply this, but a factor collision could lie).
		if !touches(edges, e) {
			continue
		}
		d := w.deltaFor(e, edges)
		c, ok := node.ChildByDelta(d)
		if !ok || !w.trie.IsMotif(c, w.threshold) {
			continue
		}
		rest := make([]graph.Edge, 0, len(remaining)-1)
		rest = append(rest, remaining[:i]...)
		rest = append(rest, remaining[i+1:]...)
		if final, ok := w.grow(c, append(edges, e), rest); ok {
			return final, true
		}
	}
	return nil, false
}

func touches(edges []graph.Edge, e graph.Edge) bool {
	for _, me := range edges {
		if me.HasEndpoint(e.U) || me.HasEndpoint(e.V) {
			return true
		}
	}
	return false
}

// Oldest returns the oldest edge still in the window.
func (w *Matcher) Oldest() (graph.StreamEdge, bool) {
	for w.head < len(w.fifo) {
		e := w.fifo[w.head]
		if w.inWindow[e.Edge().Norm()] {
			return e, true
		}
		w.head++ // tombstoned by an earlier removal
	}
	return graph.StreamEdge{}, false
}

// MatchesContaining returns the live matches whose edge sets include e —
// the set Me of §4 when e is being evicted. The result is a fresh slice.
func (w *Matcher) MatchesContaining(e graph.Edge) []*Match {
	e = e.Norm()
	var out []*Match
	for _, m := range w.byEdge[e] {
		if !m.dead {
			out = append(out, m)
		}
	}
	return out
}

// RemoveEdges drops the given edges from the window and kills every match
// whose edge set intersects them ("matches in Me which are not bid on by
// the winning partition are dropped from the matchList map, as some of
// their constituent edges have been assigned", §4). Edges not in the
// window are ignored. Remaining edges stay available for future matches.
func (w *Matcher) RemoveEdges(edges []graph.Edge) {
	var killed []*Match
	for _, e := range edges {
		e = e.Norm()
		if !w.inWindow[e] {
			continue
		}
		delete(w.inWindow, e)
		w.count--
		for _, v := range [2]graph.VertexID{e.U, e.V} {
			w.vertexRC[v]--
			if w.vertexRC[v] <= 0 {
				delete(w.vertexRC, v)
				delete(w.labels, v)
			}
		}
		for _, m := range w.byEdge[e] {
			if !m.dead {
				m.dead = true
				delete(w.all, m.key)
				killed = append(killed, m)
			}
		}
	}
	// Unlink killed matches from exactly the index entries that hold
	// them; per-match vertex/edge sets are small, so this is O(|killed|)
	// rather than a full index sweep.
	for _, m := range killed {
		for _, v := range m.Vertices() {
			w.byVertex[v] = dropDead(w.byVertex[v])
			if len(w.byVertex[v]) == 0 {
				delete(w.byVertex, v)
			}
		}
		for _, e := range m.Edges {
			w.byEdge[e] = dropDead(w.byEdge[e])
			if len(w.byEdge[e]) == 0 {
				delete(w.byEdge, e)
			}
		}
	}
}

func dropDead(list []*Match) []*Match {
	live := list[:0]
	for _, m := range list {
		if !m.dead {
			live = append(live, m)
		}
	}
	return live
}

// WindowEdges returns the edges currently buffered, oldest first (used by
// Flush and tests).
func (w *Matcher) WindowEdges() []graph.StreamEdge {
	out := make([]graph.StreamEdge, 0, w.count)
	for i := w.head; i < len(w.fifo); i++ {
		if w.inWindow[w.fifo[i].Edge().Norm()] {
			out = append(out, w.fifo[i])
		}
	}
	return out
}

// Support returns the normalised support of a match's motif.
func (w *Matcher) Support(m *Match) float64 { return w.trie.SupportOf(m.Node) }
