// Package window implements Loom's sliding stream window Ptemp and the
// motif-matching procedure of §3 (Alg. 2).
//
// The window buffers the most recent motif-matching edges of the graph
// stream. Alongside it, a matchList maps each window vertex v to the set of
// motif-matching sub-graphs in Ptemp that contain v, each paired with the
// TPSTry++ node of the motif it matches: entries take the form
// v → {⟨Ei, mi⟩, ⟨Ej, mj⟩, …} where Ei is a set of window edges forming a
// sub-graph with the same signature as motif mi.
//
// When a new edge e = (v1, v2) arrives:
//
//  1. If e does not match a single-edge motif at the root of the TPSTry++,
//     it "will never form part of any sub-graph that matches a motif" and
//     the caller (Loom) assigns it immediately, bypassing the window.
//  2. Otherwise e is added with its single-edge match, then every existing
//     match connected to e is tentatively grown by e: the 3-factor delta of
//     the addition is computed against the match's sub-graph and looked up
//     among the children of the match's trie node (Alg. 2 lines 3–8).
//  3. Finally, pairs of existing matches around v1 and v2 are joined by
//     recursively growing the larger by the edges of the smaller, one trie
//     link at a time (Alg. 2 lines 11–18).
//
// Matches are recorded for every vertex of the matching sub-graph, per the
// worked example of §3 (⟨{e2,e3}, m3⟩ is added "to the matchList entries
// for vertices 3, 4 and 5").
//
// The matcher is slice-backed: vertices and labels are interned
// (internal/intern) and all per-vertex state — label r-values, window
// reference counts, matchList entries — is indexed by the dense vertex
// index, so the per-edge matching path performs no string hashing and
// signature deltas are computed from cached r-values.
package window

import (
	"cmp"
	"fmt"
	"slices"

	"loom/internal/graph"
	"loom/internal/intern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// DefaultMaxMatchesPerVertex guards against pathological windows (e.g. a
// dense same-label hub) where the number of overlapping motif matches per
// vertex explodes. Beyond the cap, new matches containing the vertex are
// not recorded; partitioning degrades gracefully toward LDG behaviour.
const DefaultMaxMatchesPerVertex = 128

// IEdge is a window edge as a pair of dense (interned) vertex indices,
// normalised U <= V.
type IEdge struct {
	U, V uint32
}

func (e IEdge) norm() IEdge {
	if e.V < e.U {
		return IEdge{e.V, e.U}
	}
	return e
}

func (e IEdge) hasEndpoint(i uint32) bool { return e.U == i || e.V == i }

// Match is a motif-matching sub-graph in the window: an edge set paired
// with the TPSTry++ node whose signature it shares (an entry ⟨Ei, mi⟩ of
// the matchList).
type Match struct {
	// Edges is the match's edge set as external vertex IDs, in canonical
	// (normalised, sorted) order.
	Edges []graph.Edge
	// Node is the motif's TPSTry++ node; Node.Sig equals the sub-graph's
	// signature and the trie's SupportOf(Node) gives the motif support
	// used to rank matches during assignment (§4).
	Node *tpstry.Node

	iedges []IEdge  // interned edge set, sorted by (U,V)
	verts  []uint32 // distinct interned vertices, sorted
	dead   bool
}

// Vertices returns the distinct external vertex IDs of the match, sorted.
// Cold-path convenience; the assignment hot path uses VertexIndices.
func (m *Match) Vertices() []graph.VertexID {
	out := make([]graph.VertexID, 0, len(m.Edges)+1)
	for _, e := range m.Edges {
		out = append(out, e.U, e.V)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// VertexIndices returns the match's distinct dense vertex indices, sorted.
// The slice is owned by the match and must not be modified.
func (m *Match) VertexIndices() []uint32 { return m.verts }

// IEdges returns the match's interned edge set, sorted by (U,V). The slice
// is owned by the match and must not be modified.
func (m *Match) IEdges() []IEdge { return m.iedges }

// ContainsEdge reports whether the match includes e (normalised).
func (m *Match) ContainsEdge(e graph.Edge) bool {
	e = e.Norm()
	for _, me := range m.Edges {
		if me == e {
			return true
		}
	}
	return false
}

func (m *Match) containsIEdge(e IEdge) bool {
	for _, me := range m.iedges {
		if me == e {
			return true
		}
	}
	return false
}

func (m *Match) containsVertex(i uint32) bool {
	for _, v := range m.verts {
		if v == i {
			return true
		}
	}
	return false
}

func (m *Match) String() string {
	return fmt.Sprintf("⟨%v,%v⟩", m.Edges, m.Node)
}

// Matcher is the sliding window Ptemp plus its matchList. It is not safe
// for concurrent use (Loom is single-threaded, §6).
type Matcher struct {
	trie      *tpstry.Trie
	scheme    *signature.Scheme
	threshold float64
	capacity  int
	maxEdges  int // largest motif size; matches never grow beyond it
	maxPerV   int

	verts *intern.VertexTable
	ltab  *intern.LabelTable
	lval  []uint32 // r(l) per label code (0 = not yet resolved; values are in [1, p))

	// Per dense vertex index (sticky; a vertex keeps its slot after
	// leaving the window — labels are immutable and slots are reused on
	// return).
	vrval    []uint32 // r-value of the vertex's label
	vcode    []uint16 // label code of the vertex
	vertexRC []int32  // window edges touching the vertex
	byVertex [][]*Match

	fifo     []winEdge
	head     int
	inWindow map[IEdge]bool
	count    int

	byEdge map[IEdge][]*Match
	live   int // live matches
}

type winEdge struct {
	se graph.StreamEdge
	ie IEdge
}

// NewMatcher builds a window of the given capacity (the paper's t, default
// 10k edges in §5.1) over the motifs of trie at the given support
// threshold, with its own interning tables.
func NewMatcher(trie *tpstry.Trie, threshold float64, capacity int) *Matcher {
	return NewMatcherWith(trie, threshold, capacity, intern.NewVertexTable(0), intern.NewLabelTable())
}

// NewMatcherWith is NewMatcher over shared interning tables, so the window
// and the partition tracker agree on dense vertex indices (Loom shares one
// table per partitioner).
func NewMatcherWith(trie *tpstry.Trie, threshold float64, capacity int, verts *intern.VertexTable, ltab *intern.LabelTable) *Matcher {
	if capacity < 0 {
		panic(fmt.Sprintf("window: negative capacity %d", capacity))
	}
	return &Matcher{
		trie:      trie,
		scheme:    trie.Scheme(),
		threshold: threshold,
		capacity:  capacity,
		maxEdges:  trie.MaxMotifEdges(threshold),
		maxPerV:   DefaultMaxMatchesPerVertex,
		verts:     verts,
		ltab:      ltab,
		inWindow:  make(map[IEdge]bool),
		byEdge:    make(map[IEdge][]*Match),
	}
}

// SetMaxMatchesPerVertex overrides the per-vertex match cap.
func (w *Matcher) SetMaxMatchesPerVertex(n int) { w.maxPerV = n }

// Len returns the number of edges currently in the window.
func (w *Matcher) Len() int { return w.count }

// Capacity returns the window size t.
func (w *Matcher) Capacity() int { return w.capacity }

// OverCapacity reports whether the window holds more than t edges, i.e. an
// eviction is due ("each new edge added to a full window causes the oldest
// edge to be dropped", §4).
func (w *Matcher) OverCapacity() bool { return w.count > w.capacity }

// Empty reports whether the window holds no edges.
func (w *Matcher) Empty() bool { return w.count == 0 }

// NumMatches returns the number of live matches (diagnostics).
func (w *Matcher) NumMatches() int { return w.live }

// Verts returns the matcher's vertex table.
func (w *Matcher) Verts() *intern.VertexTable { return w.verts }

// Labels returns the matcher's label table.
func (w *Matcher) Labels() *intern.LabelTable { return w.ltab }

// labelVal returns (caching) the scheme r-value of label code c.
func (w *Matcher) labelVal(c uint16) uint32 {
	for len(w.lval) <= int(c) {
		w.lval = append(w.lval, 0)
	}
	if w.lval[c] == 0 {
		// r-values live in [1, p), so 0 safely marks "unresolved".
		w.lval[c] = w.scheme.LabelValue(graph.Label(w.ltab.Name(c)))
	}
	return w.lval[c]
}

// ensureVertex grows the per-vertex slices to cover dense index i and
// records i's label r-value.
func (w *Matcher) ensureVertex(i uint32, code uint16) {
	for len(w.vrval) <= int(i) {
		w.vrval = append(w.vrval, 0)
		w.vcode = append(w.vcode, 0)
		w.vertexRC = append(w.vertexRC, 0)
		w.byVertex = append(w.byVertex, nil)
	}
	w.vrval[i] = w.labelVal(code)
	w.vcode[i] = code
}

// Label returns the label of a window vertex.
func (w *Matcher) Label(v graph.VertexID) (graph.Label, bool) {
	i, ok := w.verts.Lookup(int64(v))
	if !ok || !w.HasVertexIdx(i) {
		return "", false
	}
	return graph.Label(w.ltab.Name(w.vcode[i])), true
}

// HasVertexIdx reports whether the vertex at dense index i currently has
// edges buffered in the window (see HasVertex).
func (w *Matcher) HasVertexIdx(i uint32) bool {
	return int(i) < len(w.vertexRC) && w.vertexRC[i] > 0
}

// HasVertex reports whether v currently has edges buffered in the window,
// i.e. v is part of Ptemp and will be placed by a future eviction. Loom's
// immediate-assignment path consults this to avoid pinning a vertex whose
// motif cluster is still forming (§4: the assignment of motif matches, not
// incidental non-motif edges, should decide such vertices' placement).
func (w *Matcher) HasVertex(v graph.VertexID) bool {
	i, ok := w.verts.Lookup(int64(v))
	return ok && w.HasVertexIdx(i)
}

// SingleEdgeMotifCodes returns the TPSTry++ node for the single-edge motif
// over interned label codes (cu, cv), if one exists at the current
// threshold. This is the gate of §3: edges failing it never enter the
// window.
func (w *Matcher) SingleEdgeMotifCodes(cu, cv uint16) (*tpstry.Node, bool) {
	d := w.scheme.EdgeDeltaVals(w.labelVal(cu), 0, w.labelVal(cv), 0)
	n, ok := w.trie.Root().ChildByDelta(d)
	if !ok || !w.trie.IsMotif(n, w.threshold) {
		return nil, false
	}
	return n, true
}

// SingleEdgeMotif is SingleEdgeMotifCodes for a raw stream edge, interning
// its labels.
func (w *Matcher) SingleEdgeMotif(e graph.StreamEdge) (*tpstry.Node, bool) {
	return w.SingleEdgeMotifCodes(w.ltab.Intern(string(e.LU)), w.ltab.Intern(string(e.LV)))
}

// Insert adds a motif-matching edge to the window and updates the
// matchList per Alg. 2. The caller must have checked SingleEdgeMotif; a
// duplicate window edge or self-loop is rejected with an error.
func (w *Matcher) Insert(e graph.StreamEdge) error {
	if e.U == e.V {
		return fmt.Errorf("window: self-loop %v", e)
	}
	node, ok := w.SingleEdgeMotif(e)
	if !ok {
		return fmt.Errorf("window: edge %v does not match a single-edge motif", e)
	}
	ui := w.verts.Intern(int64(e.U))
	vi := w.verts.Intern(int64(e.V))
	cu, _ := w.ltab.Lookup(string(e.LU))
	cv, _ := w.ltab.Lookup(string(e.LV))
	return w.InsertInterned(e, ui, vi, cu, cv, node)
}

// InsertInterned is the pre-interned fast path used by Loom's per-edge
// pipeline: the caller supplies the endpoints' dense indices, label codes
// and the already-matched single-edge motif node, so no map is consulted
// here beyond the duplicate check.
func (w *Matcher) InsertInterned(e graph.StreamEdge, ui, vi uint32, cu, cv uint16, node *tpstry.Node) error {
	if ui == vi {
		return fmt.Errorf("window: self-loop %v", e)
	}
	ie := IEdge{ui, vi}.norm()
	if w.inWindow[ie] {
		return fmt.Errorf("window: duplicate edge %v", e.Edge().Norm())
	}

	w.fifo = append(w.fifo, winEdge{se: e, ie: ie})
	w.inWindow[ie] = true
	w.count++
	w.ensureVertex(ui, cu)
	w.ensureVertex(vi, cv)
	w.vertexRC[ui]++
	w.vertexRC[vi]++

	// The new single-edge match ⟨{e}, m⟩.
	norm := e.Edge().Norm()
	w.addMatch([]graph.Edge{norm}, []IEdge{ie}, node)

	// Alg. 2 lines 3–8: grow each existing match connected to e. Slice
	// headers are stable snapshots: matches added below are appended to
	// the live lists, not these.
	ms1, ms2 := w.byVertex[ui], w.byVertex[vi]
	for _, m := range ms1 {
		w.tryGrow(m, norm, ie)
	}
	for _, m := range ms2 {
		if !m.containsVertex(ui) { // those were grown from ms1 already
			w.tryGrow(m, norm, ie)
		}
	}

	// Alg. 2 lines 11–18: join pairs of matches from the two endpoints'
	// (updated) matchList entries.
	ms1, ms2 = w.byVertex[ui], w.byVertex[vi]
	for _, m1 := range ms1 {
		if m1.dead {
			continue
		}
		for _, m2 := range ms2 {
			if m2.dead || m1 == m2 {
				continue
			}
			w.tryJoin(m1, m2)
		}
	}
	return nil
}

// tryGrow extends match m by the new edge (Alg. 2 lines 3–8): the 3-factor
// delta of adding the edge to m's sub-graph is looked up among m's trie
// node's children.
func (w *Matcher) tryGrow(m *Match, norm graph.Edge, ie IEdge) {
	if m.dead || len(m.iedges) >= w.maxEdges || m.containsIEdge(ie) {
		return
	}
	d := w.deltaFor(ie, m.iedges)
	if c, ok := m.Node.ChildByDelta(d); ok && w.trie.IsMotif(c, w.threshold) {
		edges := append(append([]graph.Edge(nil), m.Edges...), norm)
		iedges := append(append([]IEdge(nil), m.iedges...), ie)
		w.addMatch(edges, iedges, c)
	}
}

// deltaFor computes the 3 factors that adding edge ie to the sub-graph
// formed by iedges would multiply into its signature: the edge factor plus
// one degree factor per endpoint, using each endpoint's degree *within the
// sub-graph* (§2.1's incremental computation, applied stream-side). All
// inputs are interned; label r-values come from the per-vertex cache.
func (w *Matcher) deltaFor(ie IEdge, iedges []IEdge) signature.Delta {
	du, dv := 0, 0
	for _, me := range iedges {
		if me.hasEndpoint(ie.U) {
			du++
		}
		if me.hasEndpoint(ie.V) {
			dv++
		}
	}
	return w.scheme.EdgeDeltaVals(w.vrval[ie.U], du, w.vrval[ie.V], dv)
}

// CompareIEdges orders interned edges by (U, V); match edge sets are kept
// sorted under it. slices.SortFunc with it is allocation-free, unlike
// sort.Slice's reflective swapper, which the per-edge path cannot afford.
func CompareIEdges(a, b IEdge) int {
	if a.U != b.U {
		return cmp.Compare(a.U, b.U)
	}
	return cmp.Compare(a.V, b.V)
}

func compareEdges(a, b graph.Edge) int {
	if a.U != b.U {
		return cmp.Compare(a.U, b.U)
	}
	return cmp.Compare(a.V, b.V)
}

// sameIEdges reports whether two sorted interned edge sets are equal.
func sameIEdges(a, b []IEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addMatch records a match if it is new and the per-vertex cap allows,
// returning the canonical *Match (existing or new) and whether it was
// created. edges and iedges must describe the same edge set; both are
// sorted in place into canonical order.
func (w *Matcher) addMatch(edges []graph.Edge, iedges []IEdge, node *tpstry.Node) (*Match, bool) {
	slices.SortFunc(edges, compareEdges)
	slices.SortFunc(iedges, CompareIEdges)
	// Dedup: an identical match (same edge set, same motif node) already
	// hangs off any of its edges' byEdge lists.
	for _, m := range w.byEdge[iedges[0]] {
		if !m.dead && m.Node == node && sameIEdges(m.iedges, iedges) {
			return m, false
		}
	}
	// Distinct vertices, sorted.
	verts := make([]uint32, 0, len(iedges)+1)
	for _, e := range iedges {
		verts = append(verts, e.U, e.V)
	}
	slices.Sort(verts)
	verts = slices.Compact(verts)

	for _, v := range verts {
		if len(w.byVertex[v]) >= w.maxPerV {
			return nil, false // cap: do not record (graceful degradation)
		}
	}
	m := &Match{Edges: edges, Node: node, iedges: iedges, verts: verts}
	w.live++
	for _, v := range verts {
		w.byVertex[v] = append(w.byVertex[v], m)
	}
	for _, e := range iedges {
		w.byEdge[e] = append(w.byEdge[e], m)
	}
	return m, true
}

// tryJoin attempts to combine two matches (Alg. 2 lines 11–18): edges of
// the smaller match are added to the larger one at a time; every
// intermediate step must land on a motif node of the trie. On success the
// combined match is recorded.
func (w *Matcher) tryJoin(m1, m2 *Match) {
	// Grow the larger by the smaller ("we consider each edge from the
	// smaller motif match").
	if len(m2.iedges) > len(m1.iedges) {
		m1, m2 = m2, m1
	}
	remaining := make([]IEdge, 0, len(m2.iedges))
	for _, e := range m2.iedges {
		if !m1.containsIEdge(e) {
			remaining = append(remaining, e)
		}
	}
	if len(remaining) == 0 {
		return // m2 ⊆ m1: nothing new
	}
	if len(m1.iedges)+len(remaining) > w.maxEdges {
		return // cannot possibly match a motif
	}
	scratch := append([]IEdge(nil), m1.iedges...)
	if node, ok := w.grow(m1.Node, scratch, remaining); ok {
		iedges := append(append([]IEdge(nil), m1.iedges...), remaining...)
		edges := append([]graph.Edge(nil), m1.Edges...)
		for _, e := range m2.Edges {
			if !m1.ContainsEdge(e) {
				edges = append(edges, e)
			}
		}
		w.addMatch(edges, iedges, node)
	}
}

// grow recursively adds the remaining edges (in any workable order) to the
// edge set, following motif child links; it reports the final node on
// success. The edge set slice is used as scratch (append/truncate).
func (w *Matcher) grow(node *tpstry.Node, iedges []IEdge, remaining []IEdge) (*tpstry.Node, bool) {
	if len(remaining) == 0 {
		return node, true
	}
	for i, e := range remaining {
		// Connectivity guard: the next edge must touch the sub-graph
		// (trie deltas imply this, but a factor collision could lie).
		if !touches(iedges, e) {
			continue
		}
		d := w.deltaFor(e, iedges)
		c, ok := node.ChildByDelta(d)
		if !ok || !w.trie.IsMotif(c, w.threshold) {
			continue
		}
		rest := make([]IEdge, 0, len(remaining)-1)
		rest = append(rest, remaining[:i]...)
		rest = append(rest, remaining[i+1:]...)
		if final, ok := w.grow(c, append(iedges, e), rest); ok {
			return final, true
		}
	}
	return nil, false
}

func touches(iedges []IEdge, e IEdge) bool {
	for _, me := range iedges {
		if me.hasEndpoint(e.U) || me.hasEndpoint(e.V) {
			return true
		}
	}
	return false
}

// HasEdge reports whether e is currently buffered in the window.
func (w *Matcher) HasEdge(e graph.Edge) bool {
	ie, ok := w.lookupIEdge(e)
	return ok && w.inWindow[ie]
}

// Oldest returns the oldest edge still in the window.
func (w *Matcher) Oldest() (graph.StreamEdge, bool) {
	e, _, ok := w.OldestI()
	return e, ok
}

// OldestI returns the oldest edge still in the window along with its
// interned form (Loom's eviction entry point).
func (w *Matcher) OldestI() (graph.StreamEdge, IEdge, bool) {
	for w.head < len(w.fifo) {
		we := w.fifo[w.head]
		if w.inWindow[we.ie] {
			return we.se, we.ie, true
		}
		w.head++ // tombstoned by an earlier removal
	}
	return graph.StreamEdge{}, IEdge{}, false
}

// MatchesContainingI returns the live matches whose edge sets include the
// interned edge ie — the set Me of §4 when ie is being evicted. The result
// is a fresh slice.
func (w *Matcher) MatchesContainingI(ie IEdge) []*Match {
	var out []*Match
	for _, m := range w.byEdge[ie.norm()] {
		if !m.dead {
			out = append(out, m)
		}
	}
	return out
}

// MatchesContaining is MatchesContainingI for an external edge.
func (w *Matcher) MatchesContaining(e graph.Edge) []*Match {
	ie, ok := w.lookupIEdge(e)
	if !ok {
		return nil
	}
	return w.MatchesContainingI(ie)
}

func (w *Matcher) lookupIEdge(e graph.Edge) (IEdge, bool) {
	ui, ok := w.verts.Lookup(int64(e.U))
	if !ok {
		return IEdge{}, false
	}
	vi, ok := w.verts.Lookup(int64(e.V))
	if !ok {
		return IEdge{}, false
	}
	return IEdge{ui, vi}.norm(), true
}

// RemoveIEdges drops the given interned edges from the window and kills
// every match whose edge set intersects them ("matches in Me which are not
// bid on by the winning partition are dropped from the matchList map, as
// some of their constituent edges have been assigned", §4). Edges not in
// the window are ignored. Remaining edges stay available for future
// matches.
func (w *Matcher) RemoveIEdges(iedges []IEdge) {
	var killed []*Match
	for _, ie := range iedges {
		ie = ie.norm()
		if !w.inWindow[ie] {
			continue
		}
		delete(w.inWindow, ie)
		w.count--
		w.vertexRC[ie.U]--
		w.vertexRC[ie.V]--
		for _, m := range w.byEdge[ie] {
			if !m.dead {
				m.dead = true
				w.live--
				killed = append(killed, m)
			}
		}
	}
	// Unlink killed matches from exactly the index entries that hold
	// them; per-match vertex/edge sets are small, so this is O(|killed|)
	// rather than a full index sweep.
	for _, m := range killed {
		for _, v := range m.verts {
			w.byVertex[v] = dropDead(w.byVertex[v])
		}
		for _, e := range m.iedges {
			w.byEdge[e] = dropDead(w.byEdge[e])
			if len(w.byEdge[e]) == 0 {
				delete(w.byEdge, e)
			}
		}
	}
}

// RemoveEdges is RemoveIEdges for external edges.
func (w *Matcher) RemoveEdges(edges []graph.Edge) {
	ies := make([]IEdge, 0, len(edges))
	for _, e := range edges {
		if ie, ok := w.lookupIEdge(e); ok {
			ies = append(ies, ie)
		}
	}
	w.RemoveIEdges(ies)
}

func dropDead(list []*Match) []*Match {
	live := list[:0]
	for _, m := range list {
		if !m.dead {
			live = append(live, m)
		}
	}
	return live
}

// WindowEdges returns the edges currently buffered, oldest first (used by
// Flush and tests).
func (w *Matcher) WindowEdges() []graph.StreamEdge {
	out := make([]graph.StreamEdge, 0, w.count)
	for i := w.head; i < len(w.fifo); i++ {
		if w.inWindow[w.fifo[i].ie] {
			out = append(out, w.fifo[i].se)
		}
	}
	return out
}

// Support returns the normalised support of a match's motif.
func (w *Matcher) Support(m *Match) float64 { return w.trie.SupportOf(m.Node) }
