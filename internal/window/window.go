// Package window implements Loom's sliding stream window Ptemp and the
// motif-matching procedure of §3 (Alg. 2).
//
// The window buffers the most recent motif-matching edges of the graph
// stream. Alongside it, a matchList maps each window vertex v to the set of
// motif-matching sub-graphs in Ptemp that contain v, each paired with the
// TPSTry++ node of the motif it matches: entries take the form
// v → {⟨Ei, mi⟩, ⟨Ej, mj⟩, …} where Ei is a set of window edges forming a
// sub-graph with the same signature as motif mi.
//
// When a new edge e = (v1, v2) arrives:
//
//  1. If e does not match a single-edge motif at the root of the TPSTry++,
//     it "will never form part of any sub-graph that matches a motif" and
//     the caller (Loom) assigns it immediately, bypassing the window.
//  2. Otherwise e is added with its single-edge match, then every existing
//     match connected to e is tentatively grown by e: the 3-factor delta of
//     the addition is computed against the match's sub-graph and looked up
//     among the children of the match's trie node (Alg. 2 lines 3–8).
//  3. Finally, pairs of existing matches around v1 and v2 are joined by
//     recursively growing the larger by the edges of the smaller, one trie
//     link at a time (Alg. 2 lines 11–18).
//
// Matches are recorded for every vertex of the matching sub-graph, per the
// worked example of §3 (⟨{e2,e3}, m3⟩ is added "to the matchList entries
// for vertices 3, 4 and 5").
//
// The matcher is slice-backed: vertices and labels are interned
// (internal/intern) and all per-vertex state — label r-values, window
// reference counts, matchList entries — is indexed by the dense vertex
// index, so the per-edge matching path performs no string hashing and
// signature deltas are computed from cached r-values.
package window

import (
	"cmp"
	"fmt"
	"slices"

	"loom/internal/graph"
	"loom/internal/intern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// DefaultMaxMatchesPerVertex guards against pathological windows (e.g. a
// dense same-label hub) where the number of overlapping motif matches per
// vertex explodes. Beyond the cap, new matches containing the vertex are
// not recorded; partitioning degrades gracefully toward LDG behaviour.
const DefaultMaxMatchesPerVertex = 128

// IEdge is a window edge as a pair of dense (interned) vertex indices,
// normalised U <= V.
type IEdge struct {
	U, V uint32
}

func (e IEdge) norm() IEdge {
	if e.V < e.U {
		return IEdge{e.V, e.U}
	}
	return e
}

func (e IEdge) hasEndpoint(i uint32) bool { return e.U == i || e.V == i }

// Match is a motif-matching sub-graph in the window: an edge set paired
// with the TPSTry++ node whose signature it shares (an entry ⟨Ei, mi⟩ of
// the matchList).
type Match struct {
	// Edges is the match's edge set as external vertex IDs, in canonical
	// (normalised, sorted) order.
	Edges []graph.Edge
	// Node is the motif's TPSTry++ node; Node.Sig equals the sub-graph's
	// signature and the trie's SupportOf(Node) gives the motif support
	// used to rank matches during assignment (§4).
	Node *tpstry.Node

	iedges []IEdge  // interned edge set, sorted by (U,V)
	verts  []uint32 // distinct interned vertices, sorted
	dead   bool
}

// Vertices returns the distinct external vertex IDs of the match, sorted.
// Cold-path convenience; the assignment hot path uses VertexIndices.
func (m *Match) Vertices() []graph.VertexID {
	out := make([]graph.VertexID, 0, len(m.Edges)+1)
	for _, e := range m.Edges {
		out = append(out, e.U, e.V)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// VertexIndices returns the match's distinct dense vertex indices, sorted.
// The slice is owned by the match and must not be modified.
func (m *Match) VertexIndices() []uint32 { return m.verts }

// IEdges returns the match's interned edge set, sorted by (U,V). The slice
// is owned by the match and must not be modified.
func (m *Match) IEdges() []IEdge { return m.iedges }

// ContainsEdge reports whether the match includes e (normalised).
func (m *Match) ContainsEdge(e graph.Edge) bool {
	e = e.Norm()
	for _, me := range m.Edges {
		if me == e {
			return true
		}
	}
	return false
}

func (m *Match) containsIEdge(e IEdge) bool {
	for _, me := range m.iedges {
		if me == e {
			return true
		}
	}
	return false
}

func (m *Match) containsVertex(i uint32) bool {
	for _, v := range m.verts {
		if v == i {
			return true
		}
	}
	return false
}

func (m *Match) String() string {
	return fmt.Sprintf("⟨%v,%v⟩", m.Edges, m.Node)
}

// Matcher is the sliding window Ptemp plus its matchList. It is not safe
// for concurrent use (Loom is single-threaded, §6).
type Matcher struct {
	trie      *tpstry.Trie
	scheme    *signature.Scheme
	threshold float64
	capacity  int
	maxEdges  int // largest motif size; matches never grow beyond it
	maxPerV   int

	verts *intern.VertexTable
	ltab  *intern.LabelTable
	lval  []uint32 // r(l) per label code (0 = not yet resolved; values are in [1, p))

	// Per dense vertex index (sticky; a vertex keeps its slot after
	// leaving the window — labels are immutable and slots are reused on
	// return).
	vrval    []uint32 // r-value of the vertex's label
	vcode    []uint16 // label code of the vertex
	vertexRC []int32  // window edges touching the vertex
	byVertex [][]*Match

	fifo  []winEdge
	head  int
	edges edgeTable // buffered edges + per-edge matchList (packed keys)
	seq   uint64    // insertion counter; see winEdge.seq
	live  int       // live matches

	// Single-edge motif gate memo: (cu, cv) → trie node (nil = no motif),
	// valid while the trie's workload version is unchanged. The gate runs
	// once per stream edge; the label alphabet is tiny, so after warm-up
	// it is one small-map probe instead of a signature delta + trie walk.
	gate    map[uint32]*tpstry.Node
	gateVer int

	// Freelists and scratch for the per-edge and eviction hot paths:
	// everything here is recycled so steady-state operation performs no
	// allocation.
	pool     []*Match  // dead matches awaiting reuse (edge/vertex slices kept)
	killed   []*Match  // RemoveIEdges scratch
	joinRest []IEdge   // tryJoin: edges of the smaller match not in the larger
	growSeed []IEdge   // tryJoin/grow: the growing edge set (cap maxEdges)
	growRest [][]IEdge // grow: per-depth remaining-edge scratch
}

type winEdge struct {
	se  graph.StreamEdge
	ie  IEdge
	seq uint64 // matches the edge slot's seq while THIS entry is the live one
}

// NewMatcher builds a window of the given capacity (the paper's t, default
// 10k edges in §5.1) over the motifs of trie at the given support
// threshold, with its own interning tables.
func NewMatcher(trie *tpstry.Trie, threshold float64, capacity int) *Matcher {
	return NewMatcherWith(trie, threshold, capacity, intern.NewVertexTable(0), intern.NewLabelTable())
}

// NewMatcherWith is NewMatcher over shared interning tables, so the window
// and the partition tracker agree on dense vertex indices (Loom shares one
// table per partitioner).
func NewMatcherWith(trie *tpstry.Trie, threshold float64, capacity int, verts *intern.VertexTable, ltab *intern.LabelTable) *Matcher {
	if capacity < 0 {
		panic(fmt.Sprintf("window: negative capacity %d", capacity))
	}
	maxEdges := trie.MaxMotifEdges(threshold)
	return &Matcher{
		trie:      trie,
		scheme:    trie.Scheme(),
		threshold: threshold,
		capacity:  capacity,
		maxEdges:  maxEdges,
		maxPerV:   DefaultMaxMatchesPerVertex,
		verts:     verts,
		ltab:      ltab,
		growSeed:  make([]IEdge, 0, maxEdges),
		growRest:  make([][]IEdge, maxEdges+1),
	}
}

// SetMaxMatchesPerVertex overrides the per-vertex match cap.
func (w *Matcher) SetMaxMatchesPerVertex(n int) { w.maxPerV = n }

// Reserve pre-sizes the per-vertex slices for n vertices and the edge
// index and FIFO for the window capacity, eliminating incremental growth
// from the per-edge path when the stream's vertex count is known. Large
// reservations are clamped; the structures still grow on demand.
func (w *Matcher) Reserve(n int) {
	const maxReserve = 1 << 21
	if n > maxReserve {
		n = maxReserve
	}
	if n > cap(w.vrval) {
		vrval := make([]uint32, len(w.vrval), n)
		copy(vrval, w.vrval)
		w.vrval = vrval
		vcode := make([]uint16, len(w.vcode), n)
		copy(vcode, w.vcode)
		w.vcode = vcode
		rc := make([]int32, len(w.vertexRC), n)
		copy(rc, w.vertexRC)
		w.vertexRC = rc
		byV := make([][]*Match, len(w.byVertex), n)
		copy(byV, w.byVertex)
		w.byVertex = byV
	}
	edges := w.capacity + 1
	if edges > maxReserve {
		edges = maxReserve
	}
	if len(w.edges.slots) == 0 && edges > 32 {
		w.edges.slots = make([]edgeSlot, intern.SlotsFor(edges, 64))
	}
	if cap(w.fifo) < edges {
		fifo := make([]winEdge, len(w.fifo), edges)
		copy(fifo, w.fifo)
		w.fifo = fifo
	}
}

// Len returns the number of edges currently in the window.
func (w *Matcher) Len() int { return w.edges.Len() }

// Capacity returns the window size t.
func (w *Matcher) Capacity() int { return w.capacity }

// OverCapacity reports whether the window holds more than t edges, i.e. an
// eviction is due ("each new edge added to a full window causes the oldest
// edge to be dropped", §4).
func (w *Matcher) OverCapacity() bool { return w.edges.Len() > w.capacity }

// Empty reports whether the window holds no edges.
func (w *Matcher) Empty() bool { return w.edges.Len() == 0 }

// NumMatches returns the number of live matches (diagnostics).
func (w *Matcher) NumMatches() int { return w.live }

// Verts returns the matcher's vertex table.
func (w *Matcher) Verts() *intern.VertexTable { return w.verts }

// Labels returns the matcher's label table.
func (w *Matcher) Labels() *intern.LabelTable { return w.ltab }

// labelVal returns (caching) the scheme r-value of label code c.
func (w *Matcher) labelVal(c uint16) uint32 {
	for len(w.lval) <= int(c) {
		w.lval = append(w.lval, 0)
	}
	if w.lval[c] == 0 {
		// r-values live in [1, p), so 0 safely marks "unresolved".
		w.lval[c] = w.scheme.LabelValue(graph.Label(w.ltab.Name(c)))
	}
	return w.lval[c]
}

// ensureVertex grows the per-vertex slices to cover dense index i and
// records i's label r-value.
func (w *Matcher) ensureVertex(i uint32, code uint16) {
	for len(w.vrval) <= int(i) {
		w.vrval = append(w.vrval, 0)
		w.vcode = append(w.vcode, 0)
		w.vertexRC = append(w.vertexRC, 0)
		w.byVertex = append(w.byVertex, nil)
	}
	w.vrval[i] = w.labelVal(code)
	w.vcode[i] = code
}

// Label returns the label of a window vertex.
func (w *Matcher) Label(v graph.VertexID) (graph.Label, bool) {
	i, ok := w.verts.Lookup(int64(v))
	if !ok || !w.HasVertexIdx(i) {
		return "", false
	}
	return graph.Label(w.ltab.Name(w.vcode[i])), true
}

// HasVertexIdx reports whether the vertex at dense index i currently has
// edges buffered in the window (see HasVertex).
func (w *Matcher) HasVertexIdx(i uint32) bool {
	return int(i) < len(w.vertexRC) && w.vertexRC[i] > 0
}

// HasVertex reports whether v currently has edges buffered in the window,
// i.e. v is part of Ptemp and will be placed by a future eviction. Loom's
// immediate-assignment path consults this to avoid pinning a vertex whose
// motif cluster is still forming (§4: the assignment of motif matches, not
// incidental non-motif edges, should decide such vertices' placement).
func (w *Matcher) HasVertex(v graph.VertexID) bool {
	i, ok := w.verts.Lookup(int64(v))
	return ok && w.HasVertexIdx(i)
}

// SingleEdgeMotifCodes returns the TPSTry++ node for the single-edge motif
// over interned label codes (cu, cv), if one exists at the current
// threshold. This is the gate of §3: edges failing it never enter the
// window. Decisions are memoised per label pair until the trie's workload
// changes (supports — and so motif-hood — move with every AddQuery).
func (w *Matcher) SingleEdgeMotifCodes(cu, cv uint16) (*tpstry.Node, bool) {
	w.GateSync()
	key := uint32(cu)<<16 | uint32(cv)
	if n, ok := w.gate[key]; ok {
		return n, n != nil
	}
	d := w.scheme.EdgeDeltaVals(w.labelVal(cu), 0, w.labelVal(cv), 0)
	n, ok := w.trie.Root().ChildByDelta(d)
	if !ok || !w.trie.IsMotif(n, w.threshold) {
		w.gate[key] = nil
		return nil, false
	}
	w.gate[key] = n
	return n, true
}

// GateSync revalidates the single-edge gate memo against the trie's current
// workload version, clearing stale verdicts (supports — and so motif-hood —
// move with every AddQuery). SingleEdgeMotifCodes calls it implicitly; the
// batch-prepare pipeline calls it explicitly, once and serially, before
// fanning GateProbe reads across worker goroutines — after GateSync returns
// and until the next mutating call, the memo is stable and GateProbe is
// safe for any number of concurrent readers.
func (w *Matcher) GateSync() {
	if v := w.trie.Version(); w.gate == nil || w.gateVer != v {
		if w.gate == nil {
			w.gate = make(map[uint32]*tpstry.Node, 64)
		} else {
			clear(w.gate)
		}
		w.gateVer = v
		// A workload change also moves the largest-motif bound; matches
		// already larger than a shrunken bound simply stop growing.
		w.maxEdges = w.trie.MaxMotifEdges(w.threshold)
		w.ensureGrowScratch()
	}
}

// GateProbe is the read-only form of SingleEdgeMotifCodes: it consults the
// memo without ever writing it, reporting the motif node (nil for a
// non-motif pair), the verdict, and whether the pair has been memoised at
// all. Unknown pairs are left for a serial SingleEdgeMotifCodes pass to
// resolve. Callers must GateSync first; concurrent GateProbe calls are then
// safe as long as no gate-mutating call runs alongside them (the parallel
// pre-pass of AddBatch relies on exactly this).
func (w *Matcher) GateProbe(cu, cv uint16) (node *tpstry.Node, motif, known bool) {
	n, ok := w.gate[uint32(cu)<<16|uint32(cv)]
	return n, n != nil, ok
}

// ensureGrowScratch re-sizes the join/grow scratch for the current
// maxEdges (which can grow when queries are added to the trie).
func (w *Matcher) ensureGrowScratch() {
	if cap(w.growSeed) < w.maxEdges {
		w.growSeed = make([]IEdge, 0, w.maxEdges)
	}
	for len(w.growRest) < w.maxEdges+1 {
		w.growRest = append(w.growRest, nil)
	}
}

// SingleEdgeMotif is SingleEdgeMotifCodes for a raw stream edge, interning
// its labels.
func (w *Matcher) SingleEdgeMotif(e graph.StreamEdge) (*tpstry.Node, bool) {
	return w.SingleEdgeMotifCodes(w.ltab.Intern(string(e.LU)), w.ltab.Intern(string(e.LV)))
}

// Insert adds a motif-matching edge to the window and updates the
// matchList per Alg. 2. The caller must have checked SingleEdgeMotif; a
// duplicate window edge or self-loop is rejected with an error.
func (w *Matcher) Insert(e graph.StreamEdge) error {
	if e.U == e.V {
		return fmt.Errorf("window: self-loop %v", e)
	}
	node, ok := w.SingleEdgeMotif(e)
	if !ok {
		return fmt.Errorf("window: edge %v does not match a single-edge motif", e)
	}
	ui := w.verts.Intern(int64(e.U))
	vi := w.verts.Intern(int64(e.V))
	cu, _ := w.ltab.Lookup(string(e.LU))
	cv, _ := w.ltab.Lookup(string(e.LV))
	return w.InsertInterned(e, ui, vi, cu, cv, node)
}

// InsertInterned is the pre-interned fast path used by Loom's per-edge
// pipeline: the caller supplies the endpoints' dense indices, label codes
// and the already-matched single-edge motif node, so no map is consulted
// here beyond the duplicate check.
func (w *Matcher) InsertInterned(e graph.StreamEdge, ui, vi uint32, cu, cv uint16, node *tpstry.Node) error {
	if ui == vi {
		return fmt.Errorf("window: self-loop %v", e)
	}
	ie := IEdge{ui, vi}.norm()
	if w.edges.has(packIEdge(ie)) {
		return fmt.Errorf("window: duplicate edge %v", e.Edge().Norm())
	}

	w.seq++
	w.fifo = append(w.fifo, winEdge{se: e, ie: ie, seq: w.seq})
	w.edges.insert(packIEdge(ie)).seq = w.seq
	w.ensureVertex(ui, cu)
	w.ensureVertex(vi, cv)
	w.vertexRC[ui]++
	w.vertexRC[vi]++

	// The new single-edge match ⟨{e}, m⟩.
	norm := e.Edge().Norm()
	m := w.acquireMatch()
	m.Edges = append(m.Edges, norm)
	m.iedges = append(m.iedges, ie)
	w.addMatch(m, node)

	// Alg. 2 lines 3–8: grow each existing match connected to e. Slice
	// headers are stable snapshots: matches added below are appended to
	// the live lists, not these.
	ms1, ms2 := w.byVertex[ui], w.byVertex[vi]
	for _, m := range ms1 {
		w.tryGrow(m, norm, ie)
	}
	for _, m := range ms2 {
		if !m.containsVertex(ui) { // those were grown from ms1 already
			w.tryGrow(m, norm, ie)
		}
	}

	// Alg. 2 lines 11–18: join pairs of matches from the two endpoints'
	// (updated) matchList entries.
	ms1, ms2 = w.byVertex[ui], w.byVertex[vi]
	for _, m1 := range ms1 {
		if m1.dead {
			continue
		}
		for _, m2 := range ms2 {
			if m2.dead || m1 == m2 {
				continue
			}
			w.tryJoin(m1, m2)
		}
	}
	return nil
}

// tryGrow extends match m by the new edge (Alg. 2 lines 3–8): the 3-factor
// delta of adding the edge to m's sub-graph is looked up among m's trie
// node's children.
func (w *Matcher) tryGrow(m *Match, norm graph.Edge, ie IEdge) {
	if m.dead || len(m.iedges) >= w.maxEdges || m.containsIEdge(ie) {
		return
	}
	d := w.deltaFor(ie, m.iedges)
	if c, ok := m.Node.ChildByDelta(d); ok && w.trie.IsMotif(c, w.threshold) {
		nm := w.acquireMatch()
		nm.Edges = append(append(nm.Edges, m.Edges...), norm)
		nm.iedges = append(append(nm.iedges, m.iedges...), ie)
		w.addMatch(nm, c)
	}
}

// deltaFor computes the 3 factors that adding edge ie to the sub-graph
// formed by iedges would multiply into its signature: the edge factor plus
// one degree factor per endpoint, using each endpoint's degree *within the
// sub-graph* (§2.1's incremental computation, applied stream-side). All
// inputs are interned; label r-values come from the per-vertex cache.
func (w *Matcher) deltaFor(ie IEdge, iedges []IEdge) signature.Delta {
	du, dv := 0, 0
	for _, me := range iedges {
		if me.hasEndpoint(ie.U) {
			du++
		}
		if me.hasEndpoint(ie.V) {
			dv++
		}
	}
	return w.scheme.EdgeDeltaVals(w.vrval[ie.U], du, w.vrval[ie.V], dv)
}

// CompareIEdges orders interned edges by (U, V); match edge sets are kept
// sorted under it. slices.SortFunc with it is allocation-free, unlike
// sort.Slice's reflective swapper, which the per-edge path cannot afford.
func CompareIEdges(a, b IEdge) int {
	if a.U != b.U {
		return cmp.Compare(a.U, b.U)
	}
	return cmp.Compare(a.V, b.V)
}

func compareEdges(a, b graph.Edge) int {
	if a.U != b.U {
		return cmp.Compare(a.U, b.U)
	}
	return cmp.Compare(a.V, b.V)
}

// sameIEdges reports whether two sorted interned edge sets are equal.
func sameIEdges(a, b []IEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// acquireMatch returns a match from the freelist (or a fresh one), with
// empty edge/vertex slices whose capacity is recycled from a prior life.
func (w *Matcher) acquireMatch() *Match {
	if n := len(w.pool); n > 0 {
		m := w.pool[n-1]
		w.pool[n-1] = nil
		w.pool = w.pool[:n-1]
		return m
	}
	return &Match{}
}

// releaseMatch returns an unlinked match to the freelist. The caller must
// guarantee no index entry still references it (freshly rejected by
// addMatch, or killed and unlinked by RemoveIEdges).
func (w *Matcher) releaseMatch(m *Match) {
	m.Edges = m.Edges[:0]
	m.iedges = m.iedges[:0]
	m.verts = m.verts[:0]
	m.Node = nil
	m.dead = false
	w.pool = append(w.pool, m)
}

// addMatch canonicalises and records an acquired match if it is new and
// the per-vertex cap allows, returning the canonical *Match (existing or
// new) and whether it was created. m.Edges and m.iedges must describe the
// same edge set, every edge of which is buffered in the window; m.verts
// is derived here. A duplicate or capped match is released back to the
// freelist.
func (w *Matcher) addMatch(m *Match, node *tpstry.Node) (*Match, bool) {
	m.Node = node
	slices.SortFunc(m.Edges, compareEdges)
	slices.SortFunc(m.iedges, CompareIEdges)
	// Dedup: an identical match (same edge set, same motif node) already
	// hangs off any of its edges' matchList entries.
	if slot := w.edges.get(packIEdge(m.iedges[0])); slot != nil {
		for _, ex := range slot.matches {
			if !ex.dead && ex.Node == node && sameIEdges(ex.iedges, m.iedges) {
				w.releaseMatch(m)
				return ex, false
			}
		}
	}
	// Distinct vertices, sorted.
	for _, e := range m.iedges {
		m.verts = append(m.verts, e.U, e.V)
	}
	slices.Sort(m.verts)
	m.verts = slices.Compact(m.verts)

	for _, v := range m.verts {
		if len(w.byVertex[v]) >= w.maxPerV {
			w.releaseMatch(m)
			return nil, false // cap: do not record (graceful degradation)
		}
	}
	w.live++
	for _, v := range m.verts {
		w.byVertex[v] = append(w.byVertex[v], m)
	}
	for _, e := range m.iedges {
		slot := w.edges.get(packIEdge(e))
		slot.matches = append(slot.matches, m)
	}
	return m, true
}

// tryJoin attempts to combine two matches (Alg. 2 lines 11–18): edges of
// the smaller match are added to the larger one at a time; every
// intermediate step must land on a motif node of the trie. On success the
// combined match is recorded. All intermediate state lives in reusable
// scratch buffers (joinRest, growSeed, growRest).
func (w *Matcher) tryJoin(m1, m2 *Match) {
	// Grow the larger by the smaller ("we consider each edge from the
	// smaller motif match").
	if len(m2.iedges) > len(m1.iedges) {
		m1, m2 = m2, m1
	}
	remaining := w.joinRest[:0]
	for _, e := range m2.iedges {
		if !m1.containsIEdge(e) {
			remaining = append(remaining, e)
		}
	}
	w.joinRest = remaining
	if len(remaining) == 0 {
		return // m2 ⊆ m1: nothing new
	}
	if len(m1.iedges)+len(remaining) > w.maxEdges {
		return // cannot possibly match a motif
	}
	// growSeed has capacity maxEdges, so the recursive appends in grow
	// never reallocate it.
	scratch := append(w.growSeed[:0], m1.iedges...)
	if node, ok := w.grow(m1.Node, scratch, remaining, 0); ok {
		nm := w.acquireMatch()
		nm.iedges = append(append(nm.iedges, m1.iedges...), remaining...)
		nm.Edges = append(nm.Edges, m1.Edges...)
		for _, e := range m2.Edges {
			if !m1.ContainsEdge(e) {
				nm.Edges = append(nm.Edges, e)
			}
		}
		w.addMatch(nm, node)
	}
}

// grow recursively adds the remaining edges (in any workable order) to the
// edge set, following motif child links; it reports the final node on
// success. The edge set slice is used as scratch (append/truncate); the
// per-depth remaining-edge buffers come from the growRest freelist,
// preserving the relative order of untried edges exactly as a fresh copy
// would.
func (w *Matcher) grow(node *tpstry.Node, iedges []IEdge, remaining []IEdge, depth int) (*tpstry.Node, bool) {
	if len(remaining) == 0 {
		return node, true
	}
	for i, e := range remaining {
		// Connectivity guard: the next edge must touch the sub-graph
		// (trie deltas imply this, but a factor collision could lie).
		if !touches(iedges, e) {
			continue
		}
		d := w.deltaFor(e, iedges)
		c, ok := node.ChildByDelta(d)
		if !ok || !w.trie.IsMotif(c, w.threshold) {
			continue
		}
		rest := w.growRest[depth][:0]
		rest = append(rest, remaining[:i]...)
		rest = append(rest, remaining[i+1:]...)
		w.growRest[depth] = rest
		if final, ok := w.grow(c, append(iedges, e), rest, depth+1); ok {
			return final, true
		}
	}
	return nil, false
}

func touches(iedges []IEdge, e IEdge) bool {
	for _, me := range iedges {
		if me.hasEndpoint(e.U) || me.hasEndpoint(e.V) {
			return true
		}
	}
	return false
}

// HasEdge reports whether e is currently buffered in the window.
func (w *Matcher) HasEdge(e graph.Edge) bool {
	ie, ok := w.lookupIEdge(e)
	return ok && w.edges.has(packIEdge(ie))
}

// Oldest returns the oldest edge still in the window.
func (w *Matcher) Oldest() (graph.StreamEdge, bool) {
	e, _, ok := w.OldestI()
	return e, ok
}

// OldestI returns the oldest edge still in the window along with its
// interned form (Loom's eviction entry point).
func (w *Matcher) OldestI() (graph.StreamEdge, IEdge, bool) {
	w.maybeCompactFIFO()
	for w.head < len(w.fifo) {
		we := w.fifo[w.head]
		if w.fifoLive(we) {
			return we.se, we.ie, true
		}
		w.head++ // tombstoned by an earlier removal
	}
	clear(w.fifo) // drained: release buffered label strings
	w.fifo = w.fifo[:0]
	w.head = 0
	return graph.StreamEdge{}, IEdge{}, false
}

// minCompactFIFO is the slice length below which FIFO compaction is not
// worth the copy.
const minCompactFIFO = 64

// maybeCompactFIFO rewrites the FIFO in place once the tombstoned prefix
// exceeds half the slice, dropping interior tombstones along the way. The
// FIFO would otherwise grow for the life of the stream — one winEdge
// (with its label strings) per inserted edge — even though only the most
// recent t edges are live. Amortised O(1): each compaction copies at most
// half the entries appended since the last one.
func (w *Matcher) maybeCompactFIFO() {
	if w.head < minCompactFIFO || w.head <= len(w.fifo)/2 {
		return
	}
	n := 0
	for i := w.head; i < len(w.fifo); i++ {
		if w.fifoLive(w.fifo[i]) {
			w.fifo[n] = w.fifo[i]
			n++
		}
	}
	clear(w.fifo[n:]) // release StreamEdge label strings to the GC
	w.fifo = w.fifo[:n]
	w.head = 0
}

// fifoLive reports whether a FIFO entry is the live residency of its
// edge: the edge is buffered AND the buffered copy was inserted by this
// entry. Without the sequence check, an edge removed mid-window and
// later re-inserted would alias its old (older-looking) FIFO entry and
// be evicted almost immediately, defeating §4's "the longer an edge
// remains in the sliding window, the better the partitioning decision".
func (w *Matcher) fifoLive(we winEdge) bool {
	s := w.edges.get(packIEdge(we.ie))
	return s != nil && s.seq == we.seq
}

// MatchesContainingI appends to buf the live matches whose edge sets
// include the interned edge ie — the set Me of §4 when ie is being
// evicted — and returns the extended slice. Passing a reused buf[:0]
// makes the eviction path allocation-free; the appended *Match pointers
// are valid until the matches' edges are removed from the window.
func (w *Matcher) MatchesContainingI(ie IEdge, buf []*Match) []*Match {
	slot := w.edges.get(packIEdge(ie.norm()))
	if slot == nil {
		return buf
	}
	for _, m := range slot.matches {
		if !m.dead {
			buf = append(buf, m)
		}
	}
	return buf
}

// MatchesContaining is MatchesContainingI for an external edge, returning
// a fresh slice (cold-path convenience).
func (w *Matcher) MatchesContaining(e graph.Edge) []*Match {
	ie, ok := w.lookupIEdge(e)
	if !ok {
		return nil
	}
	return w.MatchesContainingI(ie, nil)
}

func (w *Matcher) lookupIEdge(e graph.Edge) (IEdge, bool) {
	ui, ok := w.verts.Lookup(int64(e.U))
	if !ok {
		return IEdge{}, false
	}
	vi, ok := w.verts.Lookup(int64(e.V))
	if !ok {
		return IEdge{}, false
	}
	return IEdge{ui, vi}.norm(), true
}

// RemoveIEdges drops the given interned edges from the window and kills
// every match whose edge set intersects them ("matches in Me which are not
// bid on by the winning partition are dropped from the matchList map, as
// some of their constituent edges have been assigned", §4). Edges not in
// the window are ignored. Remaining edges stay available for future
// matches.
func (w *Matcher) RemoveIEdges(iedges []IEdge) {
	killed := w.killed[:0]
	for _, ie := range iedges {
		ie = ie.norm()
		slot := w.edges.get(packIEdge(ie))
		if slot == nil {
			continue // not in the window (or a duplicate in iedges)
		}
		w.vertexRC[ie.U]--
		w.vertexRC[ie.V]--
		for _, m := range slot.matches {
			if !m.dead {
				m.dead = true
				w.live--
				killed = append(killed, m)
			}
		}
		w.edges.removeSlot(slot)
	}
	// Unlink killed matches from exactly the index entries that hold
	// them; per-match vertex/edge sets are small, so this is O(|killed|)
	// rather than a full index sweep. Unlinked matches return to the
	// freelist: callers holding them (the eviction path's Me buffer)
	// drop their references before the next insert can recycle them.
	for _, m := range killed {
		for _, v := range m.verts {
			w.byVertex[v] = dropDead(w.byVertex[v])
		}
		for _, e := range m.iedges {
			if slot := w.edges.get(packIEdge(e)); slot != nil {
				slot.matches = dropDead(slot.matches)
			}
		}
	}
	w.killed = killed[:0]
	for _, m := range killed {
		w.releaseMatch(m)
	}
}

// RemoveEdges is RemoveIEdges for external edges.
func (w *Matcher) RemoveEdges(edges []graph.Edge) {
	ies := make([]IEdge, 0, len(edges))
	for _, e := range edges {
		if ie, ok := w.lookupIEdge(e); ok {
			ies = append(ies, ie)
		}
	}
	w.RemoveIEdges(ies)
}

func dropDead(list []*Match) []*Match {
	live := list[:0]
	for _, m := range list {
		if !m.dead {
			live = append(live, m)
		}
	}
	return live
}

// WindowEdges returns the edges currently buffered, oldest first (used by
// Flush and tests).
func (w *Matcher) WindowEdges() []graph.StreamEdge {
	out := make([]graph.StreamEdge, 0, w.edges.Len())
	for i := w.head; i < len(w.fifo); i++ {
		if w.fifoLive(w.fifo[i]) {
			out = append(out, w.fifo[i].se)
		}
	}
	return out
}

// FIFOLen returns the length of the internal FIFO slice, including
// tombstoned entries not yet compacted away (diagnostics; the soak tests
// assert it stays bounded on streams much longer than the window).
func (w *Matcher) FIFOLen() int { return len(w.fifo) }

// Support returns the normalised support of a match's motif.
func (w *Matcher) Support(m *Match) float64 { return w.trie.SupportOf(m.Node) }
