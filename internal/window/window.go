// Package window implements Loom's sliding stream window Ptemp and the
// motif-matching procedure of §3 (Alg. 2).
//
// The window buffers the most recent motif-matching edges of the graph
// stream. Alongside it, a matchList maps each window vertex v to the set of
// motif-matching sub-graphs in Ptemp that contain v, each paired with the
// TPSTry++ node of the motif it matches: entries take the form
// v → {⟨Ei, mi⟩, ⟨Ej, mj⟩, …} where Ei is a set of window edges forming a
// sub-graph with the same signature as motif mi.
//
// When a new edge e = (v1, v2) arrives:
//
//  1. If e does not match a single-edge motif at the root of the TPSTry++,
//     it "will never form part of any sub-graph that matches a motif" and
//     the caller (Loom) assigns it immediately, bypassing the window.
//  2. Otherwise e is added with its single-edge match, then every existing
//     match connected to e is tentatively grown by e: the 3-factor delta of
//     the addition is computed against the match's sub-graph and looked up
//     among the children of the match's trie node (Alg. 2 lines 3–8).
//  3. Finally, pairs of existing matches around v1 and v2 are joined by
//     recursively growing the larger by the edges of the smaller, one trie
//     link at a time (Alg. 2 lines 11–18).
//
// Matches are recorded for every vertex of the matching sub-graph, per the
// worked example of §3 (⟨{e2,e3}, m3⟩ is added "to the matchList entries
// for vertices 3, 4 and 5").
//
// The matcher is slice-backed: vertices and labels are interned
// (internal/intern) and all per-vertex state — label r-values, window
// reference counts, matchList entries — is indexed by the dense vertex
// index, so the per-edge matching path performs no string hashing and
// signature deltas are computed from cached r-values.
package window

import (
	"cmp"
	"fmt"
	"slices"

	"loom/internal/graph"
	"loom/internal/intern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// DefaultMaxMatchesPerVertex guards against pathological windows (e.g. a
// dense same-label hub) where the number of overlapping motif matches per
// vertex explodes. Beyond the cap, new matches containing the vertex are
// not recorded; partitioning degrades gracefully toward LDG behaviour.
const DefaultMaxMatchesPerVertex = 128

// IEdge is a window edge as a pair of dense (interned) vertex indices,
// normalised U <= V.
type IEdge struct {
	U, V uint32
}

func (e IEdge) norm() IEdge {
	if e.V < e.U {
		return IEdge{e.V, e.U}
	}
	return e
}

// Match is a motif-matching sub-graph in the window: an edge set paired
// with the TPSTry++ node whose signature it shares (an entry ⟨Ei, mi⟩ of
// the matchList).
//
// The hot path runs entirely on the interned edge set: iedges and verts
// are kept sorted (membership is a binary search), degs caches each
// vertex's degree within the match (so the Alg. 2 delta of a candidate
// edge needs no edge-set scan), and fp is an order-independent 64-bit
// fingerprint of the edge set used as a fast negative filter before full
// comparisons. The external-ID edge set is derived lazily (Edges) for
// cold-path callers; per-match copies in the grow/join paths carry only
// the interned form.
type Match struct {
	// Node is the motif's TPSTry++ node; Node.Sig equals the sub-graph's
	// signature and the trie's SupportOf(Node) gives the motif support
	// used to rank matches during assignment (§4).
	Node *tpstry.Node

	iedges []IEdge      // interned edge set, sorted by (U,V)
	verts  []uint32     // distinct interned vertices, sorted
	degs   []int32      // in-match degree per verts[i]
	fp     uint64       // XOR of mixed packed edges (set-equality filter)
	seq    uint64       // creation order; byVertex lists are seq-ascending
	ext    []graph.Edge // lazily derived external edge set (see Edges)
	vt     *intern.VertexTable
	dead   bool

	// Inline backing for the dominant small case (most matches are the
	// one- and two-edge sub-graphs every windowed edge spawns): a fresh
	// match's iedges/verts/degs slices point here, so creating it costs
	// one allocation (the Match itself) instead of four. Larger matches
	// spill to the heap transparently via append, and the pool then
	// recycles whichever backing a match ended up with. Scalar arrays:
	// no pointers, no extra GC scan work.
	ieInline [2]IEdge
	vInline  [4]uint32
	dInline  [4]int32
}

// Edges returns the match's edge set as external vertex IDs, in canonical
// (normalised, sorted) order. The slice is derived lazily from the
// interned edge set on first call, cached for the match's lifetime, and
// owned by the match — callers must not modify it.
func (m *Match) Edges() []graph.Edge {
	if len(m.ext) == 0 {
		for _, ie := range m.iedges {
			e := graph.Edge{U: graph.VertexID(m.vt.ID(ie.U)), V: graph.VertexID(m.vt.ID(ie.V))}
			m.ext = append(m.ext, e.Norm())
		}
		slices.SortFunc(m.ext, compareEdges)
	}
	return m.ext
}

// Vertices returns the distinct external vertex IDs of the match, sorted.
// Cold-path convenience; the assignment hot path uses VertexIndices.
func (m *Match) Vertices() []graph.VertexID {
	out := make([]graph.VertexID, len(m.verts))
	for i, v := range m.verts {
		out[i] = graph.VertexID(m.vt.ID(v))
	}
	slices.Sort(out)
	return out
}

// VertexIndices returns the match's distinct dense vertex indices, sorted.
// The slice is owned by the match and must not be modified.
func (m *Match) VertexIndices() []uint32 { return m.verts }

// IEdges returns the match's interned edge set, sorted by (U,V). The slice
// is owned by the match and must not be modified.
func (m *Match) IEdges() []IEdge { return m.iedges }

// NumEdges returns the size of the match's edge set.
func (m *Match) NumEdges() int { return len(m.iedges) }

// ContainsEdge reports whether the match includes e (normalised).
func (m *Match) ContainsEdge(e graph.Edge) bool {
	if m.vt == nil {
		return false
	}
	ui, ok := m.vt.Lookup(int64(e.U))
	if !ok {
		return false
	}
	vi, ok := m.vt.Lookup(int64(e.V))
	if !ok {
		return false
	}
	return m.containsIEdge(IEdge{ui, vi}.norm())
}

func (m *Match) containsIEdge(e IEdge) bool {
	_, ok := slices.BinarySearchFunc(m.iedges, e, CompareIEdges)
	return ok
}

func (m *Match) containsVertex(i uint32) bool {
	_, ok := slices.BinarySearch(m.verts, i)
	return ok
}

// degOf returns vertex i's degree within the match (0 when i is not a
// match vertex) — the O(log |verts|) lookup behind every Alg. 2 delta.
func (m *Match) degOf(i uint32) int32 {
	if p, ok := slices.BinarySearch(m.verts, i); ok {
		return m.degs[p]
	}
	return 0
}

func (m *Match) String() string {
	return fmt.Sprintf("⟨%v,%v⟩", m.Edges(), m.Node)
}

// Matcher is the sliding window Ptemp plus its matchList. It is not safe
// for concurrent use (Loom is single-threaded, §6).
type Matcher struct {
	trie      *tpstry.Trie
	scheme    *signature.Scheme
	threshold float64
	capacity  int
	maxEdges  int // largest motif size; matches never grow beyond it
	maxPerV   int

	verts *intern.VertexTable
	ltab  *intern.LabelTable
	lval  []uint32 // r(l) per label code (0 = not yet resolved; values are in [1, p))

	// Per dense vertex index (sticky; a vertex keeps its slot after
	// leaving the window — labels are immutable and slots are reused on
	// return).
	vrval    []uint32 // r-value of the vertex's label
	vcode    []uint16 // label code of the vertex
	vertexRC []int32  // window edges touching the vertex
	byVertex [][]*Match

	// Epoch-stamped per-vertex degree scratch for the recursive join grow:
	// seeded from the base match's cached degree vector, incremented and
	// decremented as candidate edges are tried, so each Alg. 2 delta during
	// a join is O(1) instead of an edge-set scan. gstamp[i] == gepoch marks
	// gdeg[i] as valid for the current grow.
	gdeg   []int32
	gstamp []uint32
	gepoch uint32

	fifo  []winEdge
	head  int
	edges edgeTable // buffered edges + per-edge matchList (packed keys)
	seq   uint64    // insertion counter; see winEdge.seq
	live  int       // live matches
	mseq  uint64    // match creation counter; see Match.seq

	// Single-edge motif gate memo: a dense per-label-pair table, valid
	// while the trie's workload version is unchanged. The gate runs once
	// per stream edge; the label alphabet is tiny, so after warm-up it is
	// one slice index instead of a map probe (let alone a signature delta
	// + trie walk). gate[cu*gateDim+cv] holds the verdict for the ordered
	// code pair (cu, cv); gateDim tracks the label codes seen so far and
	// the table re-strides as the alphabet grows, up to maxGateDim — the
	// dense table is quadratic in the alphabet, so pairs involving codes
	// past the cap (pathological alphabets; intern allows 2^16 codes)
	// memoise in the gateSlow map instead, which is linear in pairs seen.
	gate     []gateCell
	gateDim  int
	gateSlow map[uint32]*tpstry.Node // (cu<<16|cv) → node; nil = non-motif
	gateVer  int

	// Freelists and scratch for the per-edge and eviction hot paths:
	// everything here is recycled so steady-state operation performs no
	// allocation.
	pool     []*Match  // dead matches awaiting reuse (edge/vertex slices kept)
	killed   []*Match  // RemoveIEdges scratch
	joinRest []IEdge   // tryJoin: edges of the smaller match not in the larger
	growRest [][]IEdge // grow: per-depth remaining-edge scratch
}

// winEdge is one FIFO entry: 16 bytes of interned state. The external
// StreamEdge view is reconstructed on demand (streamEdgeOf) from the
// vertex table and the per-vertex label codes — buffering the original
// StreamEdge would retain two label strings per window edge for the
// window's lifetime, the single largest slab of window memory.
type winEdge struct {
	ie  IEdge
	seq uint64 // matches the edge slot's seq while THIS entry is the live one
}

// NewMatcher builds a window of the given capacity (the paper's t, default
// 10k edges in §5.1) over the motifs of trie at the given support
// threshold, with its own interning tables.
func NewMatcher(trie *tpstry.Trie, threshold float64, capacity int) *Matcher {
	return NewMatcherWith(trie, threshold, capacity, intern.NewVertexTable(0), intern.NewLabelTable())
}

// NewMatcherWith is NewMatcher over shared interning tables, so the window
// and the partition tracker agree on dense vertex indices (Loom shares one
// table per partitioner).
func NewMatcherWith(trie *tpstry.Trie, threshold float64, capacity int, verts *intern.VertexTable, ltab *intern.LabelTable) *Matcher {
	if capacity < 0 {
		panic(fmt.Sprintf("window: negative capacity %d", capacity))
	}
	maxEdges := trie.MaxMotifEdges(threshold)
	return &Matcher{
		trie:      trie,
		scheme:    trie.Scheme(),
		threshold: threshold,
		capacity:  capacity,
		maxEdges:  maxEdges,
		maxPerV:   DefaultMaxMatchesPerVertex,
		verts:     verts,
		ltab:      ltab,
		growRest:  make([][]IEdge, maxEdges+1),
		pool:      make([]*Match, 0, maxPoolMatches),
	}
}

// SetMaxMatchesPerVertex overrides the per-vertex match cap.
func (w *Matcher) SetMaxMatchesPerVertex(n int) { w.maxPerV = n }

// Reserve pre-sizes the per-vertex slices for n vertices and the edge
// index and FIFO for the window capacity, eliminating incremental growth
// from the per-edge path when the stream's vertex count is known. Large
// reservations are clamped; the structures still grow on demand.
func (w *Matcher) Reserve(n int) {
	const maxReserve = 1 << 21
	if n > maxReserve {
		n = maxReserve
	}
	if n > cap(w.vrval) {
		vrval := make([]uint32, len(w.vrval), n)
		copy(vrval, w.vrval)
		w.vrval = vrval
		vcode := make([]uint16, len(w.vcode), n)
		copy(vcode, w.vcode)
		w.vcode = vcode
		rc := make([]int32, len(w.vertexRC), n)
		copy(rc, w.vertexRC)
		w.vertexRC = rc
		byV := make([][]*Match, len(w.byVertex), n)
		copy(byV, w.byVertex)
		w.byVertex = byV
		gdeg := make([]int32, len(w.gdeg), n)
		copy(gdeg, w.gdeg)
		w.gdeg = gdeg
		gstamp := make([]uint32, len(w.gstamp), n)
		copy(gstamp, w.gstamp)
		w.gstamp = gstamp
	}
	// The edge index and FIFO are reserved for a fraction of the window
	// capacity rather than all of it: how much of the capacity a stream
	// actually uses depends on its motif fraction (the evaluation
	// datasets buffer well under half), both structures keep amortised
	// O(1) growth past the reservation, and a full eager reservation is
	// the single largest constructor allocation (a 10k window's edge
	// slots alone are ~650 KB, repaid only when the window really fills).
	const maxEagerEdges = 2048
	edges := w.capacity + 1
	if edges > maxEagerEdges {
		edges = maxEagerEdges
	}
	if w.edges.Len() == 0 && edges > 32 {
		w.edges.Reserve(edges)
	}
	if cap(w.fifo) < edges {
		fifo := make([]winEdge, len(w.fifo), edges)
		copy(fifo, w.fifo)
		w.fifo = fifo
	}
}

// Len returns the number of edges currently in the window.
func (w *Matcher) Len() int { return w.edges.Len() }

// Capacity returns the window size t.
func (w *Matcher) Capacity() int { return w.capacity }

// OverCapacity reports whether the window holds more than t edges, i.e. an
// eviction is due ("each new edge added to a full window causes the oldest
// edge to be dropped", §4).
func (w *Matcher) OverCapacity() bool { return w.edges.Len() > w.capacity }

// Empty reports whether the window holds no edges.
func (w *Matcher) Empty() bool { return w.edges.Len() == 0 }

// NumMatches returns the number of live matches (diagnostics).
func (w *Matcher) NumMatches() int { return w.live }

// Verts returns the matcher's vertex table.
func (w *Matcher) Verts() *intern.VertexTable { return w.verts }

// Labels returns the matcher's label table.
func (w *Matcher) Labels() *intern.LabelTable { return w.ltab }

// labelVal returns (caching) the scheme r-value of label code c.
func (w *Matcher) labelVal(c uint16) uint32 {
	for len(w.lval) <= int(c) {
		w.lval = append(w.lval, 0)
	}
	if w.lval[c] == 0 {
		// r-values live in [1, p), so 0 safely marks "unresolved".
		w.lval[c] = w.scheme.LabelValue(graph.Label(w.ltab.Name(c)))
	}
	return w.lval[c]
}

// ensureVertex grows the per-vertex slices to cover dense index i and
// records i's label r-value.
func (w *Matcher) ensureVertex(i uint32, code uint16) {
	for len(w.vrval) <= int(i) {
		w.vrval = append(w.vrval, 0)
		w.vcode = append(w.vcode, 0)
		w.vertexRC = append(w.vertexRC, 0)
		w.byVertex = append(w.byVertex, nil)
		w.gdeg = append(w.gdeg, 0)
		w.gstamp = append(w.gstamp, 0)
	}
	w.vrval[i] = w.labelVal(code)
	w.vcode[i] = code
}

// Label returns the label of a window vertex.
func (w *Matcher) Label(v graph.VertexID) (graph.Label, bool) {
	i, ok := w.verts.Lookup(int64(v))
	if !ok || !w.HasVertexIdx(i) {
		return "", false
	}
	return graph.Label(w.ltab.Name(w.vcode[i])), true
}

// HasVertexIdx reports whether the vertex at dense index i currently has
// edges buffered in the window (see HasVertex).
func (w *Matcher) HasVertexIdx(i uint32) bool {
	return int(i) < len(w.vertexRC) && w.vertexRC[i] > 0
}

// HasVertex reports whether v currently has edges buffered in the window,
// i.e. v is part of Ptemp and will be placed by a future eviction. Loom's
// immediate-assignment path consults this to avoid pinning a vertex whose
// motif cluster is still forming (§4: the assignment of motif matches, not
// incidental non-motif edges, should decide such vertices' placement).
func (w *Matcher) HasVertex(v graph.VertexID) bool {
	i, ok := w.verts.Lookup(int64(v))
	return ok && w.HasVertexIdx(i)
}

// gateCell is one memoised single-edge verdict.
type gateCell struct {
	node  *tpstry.Node // the single-edge motif node (gateMotif only)
	state uint8        // gateUnknown / gateMotif / gateNonMotif
}

const (
	gateUnknown  = uint8(iota) // pair not yet resolved
	gateMotif                  // single-edge motif; node is set
	gateNonMotif               // fails the gate
)

// maxGateDim caps the dense gate's dimension: the table is quadratic in
// the alphabet (256² cells × 16 B = 1 MiB at the cap), and label codes
// can in principle run to intern.MaxLabels = 2^16, where a dense table
// would be tens of GiB. Codes past the cap take the map path.
const maxGateDim = 256

// SingleEdgeMotifCodes returns the TPSTry++ node for the single-edge motif
// over interned label codes (cu, cv), if one exists at the current
// threshold. This is the gate of §3: edges failing it never enter the
// window. Decisions are memoised per label pair until the trie's workload
// changes (supports — and so motif-hood — move with every AddQuery).
func (w *Matcher) SingleEdgeMotifCodes(cu, cv uint16) (*tpstry.Node, bool) {
	w.GateSync()
	if int(cu) >= maxGateDim || int(cv) >= maxGateDim {
		key := uint32(cu)<<16 | uint32(cv)
		if n, ok := w.gateSlow[key]; ok {
			return n, n != nil
		}
		n := w.resolveGate(cu, cv)
		if w.gateSlow == nil {
			w.gateSlow = make(map[uint32]*tpstry.Node, 64)
		}
		w.gateSlow[key] = n
		return n, n != nil
	}
	if int(cu) >= w.gateDim || int(cv) >= w.gateDim {
		w.growGate(int(max(cu, cv)) + 1)
	}
	cell := &w.gate[int(cu)*w.gateDim+int(cv)]
	switch cell.state {
	case gateMotif:
		return cell.node, true
	case gateNonMotif:
		return nil, false
	}
	n := w.resolveGate(cu, cv)
	if n == nil {
		cell.state = gateNonMotif
		return nil, false
	}
	cell.node = n
	cell.state = gateMotif
	return n, true
}

// resolveGate answers the single-edge motif question from the trie (the
// memo miss path): the motif node, or nil.
func (w *Matcher) resolveGate(cu, cv uint16) *tpstry.Node {
	d := w.scheme.EdgeDeltaVals(w.labelVal(cu), 0, w.labelVal(cv), 0)
	n, ok := w.trie.Root().ChildByDelta(d)
	if !ok || !w.trie.IsMotif(n, w.threshold) {
		return nil
	}
	return n
}

// growGate re-strides the gate table to cover label codes below dim
// (≤ maxGateDim), relocating memoised verdicts. Runs once per new label
// (serial contexts only — the same ones that intern labels).
func (w *Matcher) growGate(dim int) {
	newDim := w.gateDim * 2
	if newDim < dim {
		newDim = dim
	}
	if newDim < 8 {
		newDim = 8
	}
	if newDim > maxGateDim {
		newDim = maxGateDim
	}
	grown := make([]gateCell, newDim*newDim)
	for i := 0; i < w.gateDim; i++ {
		copy(grown[i*newDim:i*newDim+w.gateDim], w.gate[i*w.gateDim:(i+1)*w.gateDim])
	}
	w.gate = grown
	w.gateDim = newDim
}

// GateSync revalidates the single-edge gate memo against the trie's current
// workload version, clearing stale verdicts (supports — and so motif-hood —
// move with every AddQuery). SingleEdgeMotifCodes calls it implicitly; the
// batch-prepare pipeline calls it explicitly, once and serially, before
// fanning GateProbe reads across worker goroutines — after GateSync returns
// and until the next mutating call, the memo is stable and GateProbe is
// safe for any number of concurrent readers.
func (w *Matcher) GateSync() {
	if v := w.trie.Version(); w.gate == nil || w.gateVer != v {
		if w.gate == nil {
			w.growGate(8)
		} else {
			clear(w.gate)
		}
		if w.gateSlow != nil {
			clear(w.gateSlow)
		}
		w.gateVer = v
		// A workload change also moves the largest-motif bound; matches
		// already larger than a shrunken bound simply stop growing.
		w.maxEdges = w.trie.MaxMotifEdges(w.threshold)
		w.ensureGrowScratch()
	}
}

// GateProbe is the read-only form of SingleEdgeMotifCodes: it consults the
// memo without ever writing it, reporting the motif node (nil for a
// non-motif pair), the verdict, and whether the pair has been memoised at
// all. Unknown pairs are left for a serial SingleEdgeMotifCodes pass to
// resolve. Callers must GateSync first; concurrent GateProbe calls are then
// safe as long as no gate-mutating call runs alongside them (the parallel
// pre-pass of AddBatch relies on exactly this).
func (w *Matcher) GateProbe(cu, cv uint16) (node *tpstry.Node, motif, known bool) {
	if int(cu) >= maxGateDim || int(cv) >= maxGateDim {
		n, ok := w.gateSlow[uint32(cu)<<16|uint32(cv)]
		return n, n != nil, ok
	}
	if int(cu) >= w.gateDim || int(cv) >= w.gateDim {
		return nil, false, false
	}
	cell := &w.gate[int(cu)*w.gateDim+int(cv)]
	return cell.node, cell.state == gateMotif, cell.state != gateUnknown
}

// ensureGrowScratch re-sizes the join/grow scratch for the current
// maxEdges (which can grow when queries are added to the trie).
func (w *Matcher) ensureGrowScratch() {
	for len(w.growRest) < w.maxEdges+1 {
		w.growRest = append(w.growRest, nil)
	}
}

// SingleEdgeMotif is SingleEdgeMotifCodes for a raw stream edge, interning
// its labels.
func (w *Matcher) SingleEdgeMotif(e graph.StreamEdge) (*tpstry.Node, bool) {
	return w.SingleEdgeMotifCodes(w.ltab.Intern(string(e.LU)), w.ltab.Intern(string(e.LV)))
}

// Insert adds a motif-matching edge to the window and updates the
// matchList per Alg. 2. The caller must have checked SingleEdgeMotif; a
// duplicate window edge, self-loop, or an endpoint arriving with a label
// different from the one it was first seen with is rejected with an error.
//
// Labels are interned here and the resulting codes carried through — the
// former re-Lookup (whose ok was discarded) could in principle fall back
// to label code 0 and compute signatures against the wrong r-values; the
// codes now come straight from Intern, and a label-consistency check
// guards the per-vertex r-value cache (vertex labels are immutable for
// the life of the stream; a conflicting label would silently corrupt
// every signature delta the vertex participates in).
func (w *Matcher) Insert(e graph.StreamEdge) error {
	if e.U == e.V {
		return fmt.Errorf("window: self-loop %v", e)
	}
	cu := w.ltab.Intern(string(e.LU))
	cv := w.ltab.Intern(string(e.LV))
	node, ok := w.SingleEdgeMotifCodes(cu, cv)
	if !ok {
		return fmt.Errorf("window: edge %v does not match a single-edge motif", e)
	}
	ui := w.verts.Intern(int64(e.U))
	vi := w.verts.Intern(int64(e.V))
	if err := w.checkLabel(ui, e.U, cu); err != nil {
		return err
	}
	if err := w.checkLabel(vi, e.V, cv); err != nil {
		return err
	}
	return w.InsertInterned(e, ui, vi, cu, cv, node)
}

// checkLabel rejects a label conflict on a vertex whose r-value cache is
// already populated (vrval entries are in [1, p), so 0 marks "never
// labelled").
func (w *Matcher) checkLabel(i uint32, v graph.VertexID, code uint16) error {
	if int(i) < len(w.vrval) && w.vrval[i] != 0 && w.vcode[i] != code {
		return fmt.Errorf("window: vertex %d arrived with label %q but was first seen with %q",
			v, w.ltab.Name(code), w.ltab.Name(w.vcode[i]))
	}
	return nil
}

// InsertInterned is the pre-interned fast path used by Loom's per-edge
// pipeline: the caller supplies the endpoints' dense indices, label codes
// and the already-matched single-edge motif node, so no map is consulted
// here beyond the duplicate check.
func (w *Matcher) InsertInterned(e graph.StreamEdge, ui, vi uint32, cu, cv uint16, node *tpstry.Node) error {
	if ui == vi {
		return fmt.Errorf("window: self-loop %v", e)
	}
	ie := IEdge{ui, vi}.norm()
	slot, existed := w.edges.ensure(packIEdge(ie))
	if existed {
		return fmt.Errorf("window: duplicate edge %v", e.Edge().Norm())
	}

	w.seq++
	slot.Val.seq = w.seq
	w.fifo = append(w.fifo, winEdge{ie: ie, seq: w.seq})
	w.ensureVertex(ui, cu)
	w.ensureVertex(vi, cv)
	w.vertexRC[ui]++
	w.vertexRC[vi]++

	// The new single-edge match ⟨{e}, m⟩. Its canonical form is known by
	// construction (ie is normalised; a duplicate is impossible — the
	// edge itself was absent until this insert), so it skips addMatch's
	// canonicalisation and dedup entirely.
	m := w.acquireMatch()
	m.Node = node
	m.iedges = append(m.iedges, ie)
	m.fp = intern.Mix64(packIEdge(ie))
	m.verts = append(m.verts, ie.U, ie.V)
	m.degs = append(m.degs, 1, 1)
	single, _ := w.record(m)

	// Alg. 2 lines 3–8: grow each existing match connected to e. Slice
	// headers are stable snapshots: matches added below are appended to
	// the live lists, not these. No snapshot match can already contain e
	// (e was absent from the window until this insert, and live matches
	// reference only window edges) — except the single-edge match just
	// recorded, skipped by pointer.
	ms1, ms2 := w.byVertex[ui], w.byVertex[vi]
	for _, m := range ms1 {
		if m != single {
			w.tryGrow(m, ie)
		}
	}
	for _, m := range ms2 {
		if m != single && !m.containsVertex(ui) { // ui-containing were grown from ms1 already
			w.tryGrow(m, ie)
		}
	}

	// Alg. 2 lines 11–18: join pairs of matches from the two endpoints'
	// (updated) matchList entries. Pairs that cannot produce a new match
	// are pruned before any delta work:
	//
	//   - identical edge sets (fingerprint, then exact): the "join" adds
	//     nothing;
	//   - both-endpoint duplicates: a match containing BOTH endpoints
	//     appears in both lists, so an unequal-size pair (m1, m2) occurs
	//     once per orientation — and tryJoin normalises those to the same
	//     (larger, smaller) call. byVertex lists are creation-ordered
	//     (seq-ascending), so the orientation with m1.seq < m2.seq is the
	//     one the nested loop reaches first; the later mirror is skipped.
	//     Equal-size pairs are not normalised (each orientation grows a
	//     different base match) and both still run.
	//
	// Size and leaf-node pruning live in tryJoin, after its swap.
	ms1, ms2 = w.byVertex[ui], w.byVertex[vi]
	for _, m1 := range ms1 {
		if m1.dead {
			continue
		}
		n1 := len(m1.iedges)
		m1HasV := m1.containsVertex(vi)
		for _, m2 := range ms2 {
			if m2.dead || m1 == m2 {
				continue
			}
			n2 := len(m2.iedges)
			if n1 == n2 {
				if m1.fp == m2.fp && sameIEdges(m1.iedges, m2.iedges) {
					continue // same edge set under a different motif node
				}
			} else if m1HasV && m1.seq > m2.seq && m2.containsVertex(ui) {
				continue // mirror of a pair already joined this round
			}
			w.tryJoin(m1, m2)
		}
	}
	return nil
}

// tryGrow extends match m by the new edge ie (Alg. 2 lines 3–8): the
// 3-factor delta of adding the edge to m's sub-graph is looked up among
// m's trie node's children. The delta comes from the match's cached
// per-vertex degree vector (O(log |verts|)) rather than an edge-set scan,
// and a leaf node (no children) is rejected before any delta work. The
// caller guarantees ie ∉ m (the edge was not in the window when m's
// snapshot was taken).
func (w *Matcher) tryGrow(m *Match, ie IEdge) {
	if m.dead || len(m.iedges) >= w.maxEdges || m.Node.NumChildren() == 0 {
		return
	}
	d := w.deltaForMatch(m, ie)
	if c, ok := m.Node.ChildByDelta(d); ok && w.trie.IsMotif(c, w.threshold) {
		w.addGrown(m, ie, c)
	}
}

// addGrown records the match base ∪ {ie} under node, deriving the
// canonical form incrementally from base's cached state — sorted insert
// into the edge set, one fingerprint XOR, and a copy-and-bump of the
// vertex/degree vectors — instead of addMatch's from-scratch rebuild.
// Dedup (grown duplicates are common: many sub-matches grow to the same
// super-graph) and the per-vertex cap behave exactly as addMatch.
func (w *Matcher) addGrown(base *Match, ie IEdge, node *tpstry.Node) (*Match, bool) {
	nm := w.acquireMatch()
	nm.Node = node
	pos, _ := slices.BinarySearchFunc(base.iedges, ie, CompareIEdges)
	nm.iedges = slices.Grow(nm.iedges, len(base.iedges)+1)
	nm.iedges = append(nm.iedges, base.iedges[:pos]...)
	nm.iedges = append(nm.iedges, ie)
	nm.iedges = append(nm.iedges, base.iedges[pos:]...)
	fp := base.fp ^ intern.Mix64(packIEdge(ie))
	nm.fp = fp
	if slot := w.edges.get(packIEdge(nm.iedges[0])); slot != nil {
		for _, ex := range slot.Val.matches {
			if !ex.dead && ex.fp == fp && ex.Node == node && sameIEdges(ex.iedges, nm.iedges) {
				w.releaseMatch(nm)
				return ex, false
			}
		}
	}
	nm.verts = append(slices.Grow(nm.verts, len(base.verts)+2), base.verts...)
	nm.degs = append(slices.Grow(nm.degs, len(base.degs)+2), base.degs...)
	nm.bumpVertex(ie.U)
	nm.bumpVertex(ie.V)
	return w.record(nm)
}

// bumpVertex adds one unit of in-match degree for v, inserting it into the
// sorted vertex/degree vectors if absent.
func (m *Match) bumpVertex(v uint32) {
	if p, ok := slices.BinarySearch(m.verts, v); ok {
		m.degs[p]++
	} else {
		m.verts = slices.Insert(m.verts, p, v)
		m.degs = slices.Insert(m.degs, p, 1)
	}
}

// deltaForMatch computes the 3 factors that adding edge ie to match m's
// sub-graph would multiply into its signature: the edge factor plus one
// degree factor per endpoint, using each endpoint's degree *within the
// sub-graph* (§2.1's incremental computation, applied stream-side).
// Degrees come from the match's cached vector; label r-values from the
// per-vertex cache.
func (w *Matcher) deltaForMatch(m *Match, ie IEdge) signature.Delta {
	return w.scheme.EdgeDeltaVals(w.vrval[ie.U], int(m.degOf(ie.U)), w.vrval[ie.V], int(m.degOf(ie.V)))
}

// growDelta is deltaForMatch for the intermediate sub-graph of a running
// join grow, reading degrees from the epoch-stamped scratch.
func (w *Matcher) growDelta(ie IEdge) signature.Delta {
	du, dv := 0, 0
	if w.gstamp[ie.U] == w.gepoch {
		du = int(w.gdeg[ie.U])
	}
	if w.gstamp[ie.V] == w.gepoch {
		dv = int(w.gdeg[ie.V])
	}
	return w.scheme.EdgeDeltaVals(w.vrval[ie.U], du, w.vrval[ie.V], dv)
}

// growTouches reports whether edge e shares a vertex with the current
// grow sub-graph — a vertex is in the sub-graph iff its stamped degree is
// positive (a backtracked vertex decays to 0 but stays stamped).
func (w *Matcher) growTouches(e IEdge) bool {
	return (w.gstamp[e.U] == w.gepoch && w.gdeg[e.U] > 0) ||
		(w.gstamp[e.V] == w.gepoch && w.gdeg[e.V] > 0)
}

// growDegInc bumps vertex i's degree in the grow scratch.
func (w *Matcher) growDegInc(i uint32) {
	if w.gstamp[i] != w.gepoch {
		w.gstamp[i] = w.gepoch
		w.gdeg[i] = 0
	}
	w.gdeg[i]++
}

// growDegDec undoes growDegInc on backtrack.
func (w *Matcher) growDegDec(i uint32) { w.gdeg[i]-- }

// growEpochNext invalidates the grow scratch for a fresh join.
func (w *Matcher) growEpochNext() {
	w.gepoch++
	if w.gepoch == 0 { // stamp wraparound: invalidate all stamps
		clear(w.gstamp)
		w.gepoch = 1
	}
}

// CompareIEdges orders interned edges by (U, V); match edge sets are kept
// sorted under it. slices.SortFunc with it is allocation-free, unlike
// sort.Slice's reflective swapper, which the per-edge path cannot afford.
func CompareIEdges(a, b IEdge) int {
	if a.U != b.U {
		return cmp.Compare(a.U, b.U)
	}
	return cmp.Compare(a.V, b.V)
}

func compareEdges(a, b graph.Edge) int {
	if a.U != b.U {
		return cmp.Compare(a.U, b.U)
	}
	return cmp.Compare(a.V, b.V)
}

// sameIEdges reports whether two sorted interned edge sets are equal.
func sameIEdges(a, b []IEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// acquireMatch returns a match from the freelist (or a fresh one), with
// empty edge/vertex slices whose capacity is recycled from a prior life.
func (w *Matcher) acquireMatch() *Match {
	if n := len(w.pool); n > 0 {
		m := w.pool[n-1]
		w.pool[n-1] = nil
		w.pool = w.pool[:n-1]
		return m
	}
	m := &Match{vt: w.verts}
	m.iedges = m.ieInline[:0]
	m.verts = m.vInline[:0]
	m.degs = m.dInline[:0]
	return m
}

// maxPoolMatches bounds the match freelist. The pool exists to serve the
// steady-state insert/evict churn, where demand is a handful of matches
// per edge; during a drain (Flush, large eviction cascades) releases
// vastly outnumber acquires and an unbounded pool would grow to the
// all-time match high-water mark and keep re-paying append growth — the
// only steady allocation left on the eviction path. Beyond the cap,
// released matches are simply dropped for the GC.
const maxPoolMatches = 1024

// releaseMatch returns an unlinked match to the freelist (or drops it once
// the pool is full). The caller must guarantee no index entry still
// references it (freshly rejected by addMatch, or killed and unlinked by
// RemoveIEdges).
func (w *Matcher) releaseMatch(m *Match) {
	if len(w.pool) >= maxPoolMatches {
		return
	}
	m.iedges = m.iedges[:0]
	m.verts = m.verts[:0]
	m.degs = m.degs[:0]
	m.ext = m.ext[:0]
	m.Node = nil
	m.fp = 0
	m.seq = 0
	m.dead = false
	w.pool = append(w.pool, m)
}

// addMatch canonicalises and records an acquired match if it is new and
// the per-vertex cap allows, returning the canonical *Match (existing or
// new) and whether it was created. Every edge of m.iedges must be buffered
// in the window; m.verts, m.degs and m.fp are derived here. A duplicate or
// capped match is released back to the freelist. Dedup is fingerprint-
// first: the fp mismatch rejects unequal edge sets in one word compare,
// and only fp-equal candidates pay the full edge-set comparison.
func (w *Matcher) addMatch(m *Match, node *tpstry.Node) (*Match, bool) {
	m.Node = node
	slices.SortFunc(m.iedges, CompareIEdges)
	var fp uint64
	for _, e := range m.iedges {
		fp ^= intern.Mix64(packIEdge(e))
	}
	m.fp = fp
	// Dedup: an identical match (same edge set, same motif node) already
	// hangs off any of its edges' matchList entries.
	if slot := w.edges.get(packIEdge(m.iedges[0])); slot != nil {
		for _, ex := range slot.Val.matches {
			if !ex.dead && ex.fp == fp && ex.Node == node && sameIEdges(ex.iedges, m.iedges) {
				w.releaseMatch(m)
				return ex, false
			}
		}
	}
	// Distinct vertices, sorted, with the in-match degree vector.
	for _, e := range m.iedges {
		m.verts = append(m.verts, e.U, e.V)
	}
	slices.Sort(m.verts)
	m.verts = slices.Compact(m.verts)
	for range m.verts {
		m.degs = append(m.degs, 0)
	}
	for _, e := range m.iedges {
		i, _ := slices.BinarySearch(m.verts, e.U)
		m.degs[i]++
		j, _ := slices.BinarySearch(m.verts, e.V)
		m.degs[j]++
	}
	return w.record(m)
}

// record registers a fully-canonical match — iedges/verts/degs sorted and
// consistent, fp and Node set — in the matchList indexes, subject to the
// per-vertex cap. The shared tail of addMatch and its fast-path siblings
// (the single-edge insert and addGrown).
func (w *Matcher) record(m *Match) (*Match, bool) {
	for _, v := range m.verts {
		if len(w.byVertex[v]) >= w.maxPerV {
			w.releaseMatch(m)
			return nil, false // cap: do not record (graceful degradation)
		}
	}
	w.mseq++
	m.seq = w.mseq
	w.live++
	for _, v := range m.verts {
		w.byVertex[v] = addMatchRef(w.byVertex[v], m)
	}
	for _, e := range m.iedges {
		slot := w.edges.get(packIEdge(e))
		slot.Val.matches = addMatchRef(slot.Val.matches, m)
	}
	return m, true
}

// addMatchRef appends one match-list reference, seeding a fresh list with
// room for the overlap a motif vertex typically accumulates (the default
// 1 → 2 → 4 doubling costs an allocation per step on the insert path).
func addMatchRef(l []*Match, m *Match) []*Match {
	if l == nil {
		l = make([]*Match, 0, 4)
	}
	return append(l, m)
}

// tryJoin attempts to combine two matches (Alg. 2 lines 11–18): edges of
// the smaller match are added to the larger one at a time; every
// intermediate step must land on a motif node of the trie. On success the
// combined match is recorded. All intermediate state lives in reusable
// scratch buffers (joinRest, growRest, the epoch-stamped degree scratch).
//
// Pairs that cannot possibly succeed are rejected before any delta work:
// a larger side already at the motif size bound can only absorb a subset
// (a no-op), and a larger side at a leaf node has no trie link to grow
// along.
func (w *Matcher) tryJoin(m1, m2 *Match) {
	// Grow the larger by the smaller ("we consider each edge from the
	// smaller motif match").
	if len(m2.iedges) > len(m1.iedges) {
		m1, m2 = m2, m1
	}
	if len(m1.iedges) >= w.maxEdges || m1.Node.NumChildren() == 0 {
		return
	}
	// remaining = m2 \ m1, a linear merge of the two sorted edge sets
	// (preserving m2's order, as the filter it replaces did).
	remaining := w.joinRest[:0]
	i := 0
	for _, e := range m2.iedges {
		for i < len(m1.iedges) && CompareIEdges(m1.iedges[i], e) < 0 {
			i++
		}
		if i < len(m1.iedges) && m1.iedges[i] == e {
			i++
			continue
		}
		remaining = append(remaining, e)
	}
	w.joinRest = remaining
	if len(remaining) == 0 {
		return // m2 ⊆ m1: nothing new
	}
	if len(m1.iedges)+len(remaining) > w.maxEdges {
		return // cannot possibly match a motif
	}
	// Seed the degree scratch with m1's cached in-match degrees; grow
	// maintains it incrementally as candidate edges are tried.
	w.growEpochNext()
	for k, v := range m1.verts {
		w.gstamp[v] = w.gepoch
		w.gdeg[v] = m1.degs[k]
	}
	if node, ok := w.grow(m1.Node, remaining, 0); ok {
		nm := w.acquireMatch()
		nm.iedges = append(append(nm.iedges, m1.iedges...), remaining...)
		w.addMatch(nm, node)
	}
}

// grow recursively adds the remaining edges (in any workable order) to the
// grow sub-graph, following motif child links; it reports the final node
// on success. The sub-graph itself is represented only by the epoch-
// stamped per-vertex degree scratch (deltas and the connectivity guard
// need nothing else); the per-depth remaining-edge buffers come from the
// growRest freelist, preserving the relative order of untried edges
// exactly as a fresh copy would.
func (w *Matcher) grow(node *tpstry.Node, remaining []IEdge, depth int) (*tpstry.Node, bool) {
	if len(remaining) == 0 {
		return node, true
	}
	for i, e := range remaining {
		// Connectivity guard: the next edge must touch the sub-graph
		// (trie deltas imply this, but a factor collision could lie).
		if !w.growTouches(e) {
			continue
		}
		d := w.growDelta(e)
		c, ok := node.ChildByDelta(d)
		if !ok || !w.trie.IsMotif(c, w.threshold) {
			continue
		}
		rest := w.growRest[depth][:0]
		rest = append(rest, remaining[:i]...)
		rest = append(rest, remaining[i+1:]...)
		w.growRest[depth] = rest
		w.growDegInc(e.U)
		w.growDegInc(e.V)
		if final, ok := w.grow(c, rest, depth+1); ok {
			return final, true
		}
		w.growDegDec(e.U)
		w.growDegDec(e.V)
	}
	return nil, false
}

// HasEdge reports whether e is currently buffered in the window.
func (w *Matcher) HasEdge(e graph.Edge) bool {
	ie, ok := w.lookupIEdge(e)
	return ok && w.edges.has(packIEdge(ie))
}

// Oldest returns the oldest edge still in the window.
func (w *Matcher) Oldest() (graph.StreamEdge, bool) {
	e, _, ok := w.OldestI()
	return e, ok
}

// OldestI returns the oldest edge still in the window along with its
// interned form. The StreamEdge view is reconstructed (normalised
// orientation) from interned state.
func (w *Matcher) OldestI() (graph.StreamEdge, IEdge, bool) {
	ie, ok := w.OldestIdx()
	if !ok {
		return graph.StreamEdge{}, IEdge{}, false
	}
	return w.streamEdgeOf(ie), ie, true
}

// OldestIdx returns the oldest edge still in the window in interned form
// only — Loom's eviction entry point, which never needs the external
// view.
func (w *Matcher) OldestIdx() (IEdge, bool) {
	w.maybeCompactFIFO()
	for w.head < len(w.fifo) {
		we := w.fifo[w.head]
		if w.fifoLive(we) {
			return we.ie, true
		}
		w.head++ // tombstoned by an earlier removal
	}
	w.fifo = w.fifo[:0] // drained
	w.head = 0
	return IEdge{}, false
}

// streamEdgeOf rebuilds the external StreamEdge view of a buffered edge
// from the vertex table and per-vertex label codes (vertex labels are
// immutable for the life of the stream). Orientation is the normalised
// one; consumers treat window edges as undirected.
func (w *Matcher) streamEdgeOf(ie IEdge) graph.StreamEdge {
	return graph.StreamEdge{
		U: graph.VertexID(w.verts.ID(ie.U)), LU: graph.Label(w.ltab.Name(w.vcode[ie.U])),
		V: graph.VertexID(w.verts.ID(ie.V)), LV: graph.Label(w.ltab.Name(w.vcode[ie.V])),
	}
}

// minCompactFIFO is the slice length below which FIFO compaction is not
// worth the copy.
const minCompactFIFO = 64

// maybeCompactFIFO rewrites the FIFO in place once the tombstoned prefix
// exceeds half the slice, dropping interior tombstones along the way. The
// FIFO would otherwise grow for the life of the stream — one winEdge per
// inserted edge — even though only the most recent t edges are live.
// Amortised O(1): each compaction copies at most half the entries appended
// since the last one.
func (w *Matcher) maybeCompactFIFO() {
	if w.head < minCompactFIFO || w.head <= len(w.fifo)/2 {
		return
	}
	n := 0
	for i := w.head; i < len(w.fifo); i++ {
		if w.fifoLive(w.fifo[i]) {
			w.fifo[n] = w.fifo[i]
			n++
		}
	}
	w.fifo = w.fifo[:n]
	w.head = 0
}

// fifoLive reports whether a FIFO entry is the live residency of its
// edge: the edge is buffered AND the buffered copy was inserted by this
// entry. Without the sequence check, an edge removed mid-window and
// later re-inserted would alias its old (older-looking) FIFO entry and
// be evicted almost immediately, defeating §4's "the longer an edge
// remains in the sliding window, the better the partitioning decision".
func (w *Matcher) fifoLive(we winEdge) bool {
	s := w.edges.get(packIEdge(we.ie))
	return s != nil && s.Val.seq == we.seq
}

// MatchesContainingI appends to buf the live matches whose edge sets
// include the interned edge ie — the set Me of §4 when ie is being
// evicted — and returns the extended slice. Passing a reused buf[:0]
// makes the eviction path allocation-free; the appended *Match pointers
// are valid until the matches' edges are removed from the window.
func (w *Matcher) MatchesContainingI(ie IEdge, buf []*Match) []*Match {
	slot := w.edges.get(packIEdge(ie.norm()))
	if slot == nil {
		return buf
	}
	for _, m := range slot.Val.matches {
		if !m.dead {
			buf = append(buf, m)
		}
	}
	return buf
}

// MatchesContaining is MatchesContainingI for an external edge, returning
// a fresh slice (cold-path convenience).
func (w *Matcher) MatchesContaining(e graph.Edge) []*Match {
	ie, ok := w.lookupIEdge(e)
	if !ok {
		return nil
	}
	return w.MatchesContainingI(ie, nil)
}

func (w *Matcher) lookupIEdge(e graph.Edge) (IEdge, bool) {
	ui, ok := w.verts.Lookup(int64(e.U))
	if !ok {
		return IEdge{}, false
	}
	vi, ok := w.verts.Lookup(int64(e.V))
	if !ok {
		return IEdge{}, false
	}
	return IEdge{ui, vi}.norm(), true
}

// RemoveIEdges drops the given interned edges from the window and kills
// every match whose edge set intersects them ("matches in Me which are not
// bid on by the winning partition are dropped from the matchList map, as
// some of their constituent edges have been assigned", §4). Edges not in
// the window are ignored. Remaining edges stay available for future
// matches.
func (w *Matcher) RemoveIEdges(iedges []IEdge) {
	killed := w.killed[:0]
	for _, ie := range iedges {
		ie = ie.norm()
		slot := w.edges.get(packIEdge(ie))
		if slot == nil {
			continue // not in the window (or a duplicate in iedges)
		}
		w.vertexRC[ie.U]--
		w.vertexRC[ie.V]--
		for _, m := range slot.Val.matches {
			if !m.dead {
				m.dead = true
				w.live--
				killed = append(killed, m)
			}
		}
		w.edges.removeSlot(slot)
	}
	// Unlink killed matches from exactly the index entries that hold
	// them; per-match vertex/edge sets are small, so this is O(|killed|)
	// rather than a full index sweep. Unlinked matches return to the
	// freelist: callers holding them (the eviction path's Me buffer)
	// drop their references before the next insert can recycle them.
	for _, m := range killed {
		for _, v := range m.verts {
			w.byVertex[v] = dropDead(w.byVertex[v])
		}
		for _, e := range m.iedges {
			if slot := w.edges.get(packIEdge(e)); slot != nil {
				slot.Val.matches = dropDead(slot.Val.matches)
			}
		}
	}
	w.killed = killed[:0]
	for _, m := range killed {
		w.releaseMatch(m)
	}
}

// RemoveEdges is RemoveIEdges for external edges.
func (w *Matcher) RemoveEdges(edges []graph.Edge) {
	ies := make([]IEdge, 0, len(edges))
	for _, e := range edges {
		if ie, ok := w.lookupIEdge(e); ok {
			ies = append(ies, ie)
		}
	}
	w.RemoveIEdges(ies)
}

func dropDead(list []*Match) []*Match {
	live := list[:0]
	for _, m := range list {
		if !m.dead {
			live = append(live, m)
		}
	}
	return live
}

// WindowEdges returns the edges currently buffered, oldest first (used by
// Flush and tests).
func (w *Matcher) WindowEdges() []graph.StreamEdge {
	out := make([]graph.StreamEdge, 0, w.edges.Len())
	for i := w.head; i < len(w.fifo); i++ {
		if w.fifoLive(w.fifo[i]) {
			out = append(out, w.streamEdgeOf(w.fifo[i].ie))
		}
	}
	return out
}

// FIFOLen returns the length of the internal FIFO slice, including
// tombstoned entries not yet compacted away (diagnostics; the soak tests
// assert it stays bounded on streams much longer than the window).
func (w *Matcher) FIFOLen() int { return len(w.fifo) }

// Support returns the normalised support of a match's motif.
func (w *Matcher) Support(m *Match) float64 { return w.trie.SupportOf(m.Node) }
