package window

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// chainTrie: workload with a 4-edge path motif over two labels, so matches
// must grow through three intermediate levels.
func chainTrie(t testing.TB) *tpstry.Trie {
	t.Helper()
	trie := tpstry.New(signature.NewScheme(signature.DefaultP, 77))
	if err := trie.AddQuery(pattern.Path("a", "b", "a", "b", "a"), 1.0); err != nil {
		t.Fatal(err)
	}
	return trie
}

func TestDeepMatchGrowth(t *testing.T) {
	trie := chainTrie(t)
	w := NewMatcher(trie, 0.4, 100)
	// Build the path 1a-2b-3a-4b-5a edge by edge.
	labels := []graph.Label{"a", "b", "a", "b", "a"}
	for i := 1; i <= 4; i++ {
		se := graph.StreamEdge{
			U: graph.VertexID(i), LU: labels[i-1],
			V: graph.VertexID(i + 1), LV: labels[i],
		}
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
	}
	// The full 4-edge match must exist on every vertex of the path.
	full, ok := trie.NodeBySignature(trie.Scheme().SignatureOf(pattern.Path("a", "b", "a", "b", "a")))
	if !ok {
		t.Fatal("4-edge node missing from trie")
	}
	found := false
	for _, m := range w.MatchesContaining(graph.Edge{U: 1, V: 2}) {
		if m.Node == full && m.NumEdges() == 4 {
			found = true
		}
	}
	if !found {
		t.Error("full 4-edge match not discovered")
	}
}

func TestDeepGrowthOutOfOrder(t *testing.T) {
	// The same path arriving as two fragments joined by the middle edge:
	// 1-2, 4-5 first (disconnected), then 3-4, 2-3 — the final insert
	// must join everything via the pair-join step.
	trie := chainTrie(t)
	w := NewMatcher(trie, 0.4, 100)
	inserts := []graph.StreamEdge{
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 4, LU: "b", V: 5, LV: "a"},
		{U: 3, LU: "a", V: 4, LV: "b"},
		{U: 2, LU: "b", V: 3, LV: "a"},
	}
	for _, se := range inserts {
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
	}
	full, _ := trie.NodeBySignature(trie.Scheme().SignatureOf(pattern.Path("a", "b", "a", "b", "a")))
	found := false
	for _, m := range w.MatchesContaining(graph.Edge{U: 2, V: 3}) {
		if m.Node == full && m.NumEdges() == 4 {
			found = true
		}
	}
	if !found {
		t.Error("out-of-order arrival did not produce the full match")
	}
}

func TestRemoveEdgesKillsOnlyIntersectingMatches(t *testing.T) {
	trie := chainTrie(t)
	w := NewMatcher(trie, 0.4, 100)
	// Two disjoint 2-edge chains sharing no edges.
	for _, se := range []graph.StreamEdge{
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 2, LU: "b", V: 3, LV: "a"},
		{U: 10, LU: "a", V: 11, LV: "b"},
		{U: 11, LU: "b", V: 12, LV: "a"},
	} {
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
	}
	before := w.NumMatches()
	w.RemoveEdges([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}})
	// The second chain's matches are untouched.
	if got := len(w.MatchesContaining(graph.Edge{U: 10, V: 11})); got == 0 {
		t.Error("disjoint chain lost its matches")
	}
	if w.NumMatches() >= before {
		t.Error("no matches removed")
	}
	if w.Len() != 2 {
		t.Errorf("window Len = %d, want 2", w.Len())
	}
}

func TestVertexLabelLifecycle(t *testing.T) {
	trie := chainTrie(t)
	w := NewMatcher(trie, 0.4, 100)
	if err := w.Insert(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Label(1); !ok {
		t.Error("label missing while vertex in window")
	}
	if !w.HasVertex(1) {
		t.Error("HasVertex(1) = false")
	}
	w.RemoveEdges([]graph.Edge{{U: 1, V: 2}})
	if _, ok := w.Label(1); ok {
		t.Error("label retained after last edge removed")
	}
	if w.HasVertex(1) {
		t.Error("HasVertex after removal")
	}
}

// TestWindowSoak drives a random motif-rich stream through a small window
// with interleaved evictions and verifies the core invariants at every
// step: matches reference only in-window edges, match signatures equal
// their node signatures, and Len always equals the live edge count.
func TestWindowSoak(t *testing.T) {
	trie := chainTrie(t)
	scheme := trie.Scheme()
	w := NewMatcher(trie, 0.4, 16)
	r := rand.New(rand.NewSource(1234))
	g := graph.New()

	steps := 0
	for steps < 400 {
		u := graph.VertexID(r.Intn(60) + 1)
		v := graph.VertexID(r.Intn(60) + 1)
		if u == v {
			continue
		}
		lu := graph.Label("a")
		if u%2 == 0 {
			lu = "b"
		}
		lv := graph.Label("a")
		if v%2 == 0 {
			lv = "b"
		}
		se := graph.StreamEdge{U: u, LU: lu, V: v, LV: lv}
		if _, ok := w.SingleEdgeMotif(se); !ok {
			continue
		}
		if added, err := g.EnsureEdge(u, lu, v, lv); err != nil || !added {
			continue
		}
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
		steps++

		for w.OverCapacity() {
			old, ok := w.Oldest()
			if !ok {
				t.Fatal("over capacity with no oldest")
			}
			me := w.MatchesContaining(old.Edge())
			if len(me) == 0 {
				t.Fatalf("evicted edge %v has no matches", old)
			}
			w.RemoveEdges([]graph.Edge{old.Edge().Norm()})
		}

		if steps%25 != 0 {
			continue
		}
		// Invariant sweep.
		live := 0
		for _, se2 := range w.WindowEdges() {
			live++
			for _, m := range w.MatchesContaining(se2.Edge()) {
				for _, e := range m.Edges() {
					if !w.HasEdge(e) {
						t.Fatalf("match %v references evicted edge %v", m, e)
					}
				}
				sub := graph.InducedSubgraph(g, m.Edges())
				if !scheme.SignatureOf(sub).Equal(m.Node.Sig) {
					t.Fatalf("signature mismatch for %v", m)
				}
			}
		}
		if live != w.Len() {
			t.Fatalf("Len=%d but %d live edges", w.Len(), live)
		}
	}
}

func TestZeroCapacityWindow(t *testing.T) {
	trie := chainTrie(t)
	w := NewMatcher(trie, 0.4, 0)
	if err := w.Insert(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}); err != nil {
		t.Fatal(err)
	}
	if !w.OverCapacity() {
		t.Error("zero-capacity window must be immediately over capacity")
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	trie := chainTrie(t)
	defer func() {
		if recover() == nil {
			t.Error("negative capacity should panic")
		}
	}()
	NewMatcher(trie, 0.4, -1)
}
