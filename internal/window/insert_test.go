package window

// Regression tests for Matcher.Insert's label handling (ISSUE 5): the old
// path re-looked labels up after interning them and DISCARDED the ok
// (`cu, _ := w.ltab.Lookup(...)`) — any future caller reaching that line
// with an unregistered label would silently match with label code 0 and
// corrupt every signature the edge touches. Insert now derives codes
// straight from Intern and rejects label conflicts on known vertices.

import (
	"strings"
	"testing"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// TestInsertFreshLabelsUseCorrectCodes: labels never seen by the matcher's
// label table (and interleaved in an order different from the scheme's
// registration order) must resolve to their own r-values, not to code 0's.
func TestInsertFreshLabelsUseCorrectCodes(t *testing.T) {
	scheme := signature.NewScheme(signature.DefaultP, 5)
	scheme.RegisterLabels([]graph.Label{"a", "b", "c"})
	trie := tpstry.New(scheme)
	if err := trie.AddQuery(pattern.Path("a", "b", "c"), 1); err != nil {
		t.Fatal(err)
	}
	w := NewMatcher(trie, 0.4, 100)
	// Intern order b-c-a ≠ scheme registration order a-b-c, so any code/
	// r-value mix-up shifts every delta.
	if err := w.Insert(graph.StreamEdge{U: 2, LU: "b", V: 3, LV: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}); err != nil {
		t.Fatal(err)
	}
	// Both single-edge matches and the joined a-b-c path must exist with
	// signatures matching a from-scratch computation.
	full, ok := trie.NodeBySignature(scheme.SignatureOf(pattern.Path("a", "b", "c")))
	if !ok {
		t.Fatal("a-b-c node missing from trie")
	}
	found := false
	for _, m := range w.MatchesContaining(graph.Edge{U: 1, V: 2}) {
		if m.Node == full && m.NumEdges() == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("fresh-label inserts did not produce the a-b-c match")
	}
}

// TestInsertRejectsLabelConflict: an endpoint arriving under a different
// label than its first sighting must be rejected (vertex labels are
// immutable for the life of the stream; accepting the edge would poison
// the per-vertex r-value cache and with it every later delta).
func TestInsertRejectsLabelConflict(t *testing.T) {
	scheme := signature.NewScheme(signature.DefaultP, 5)
	trie := tpstry.New(scheme)
	if err := trie.AddQuery(pattern.Path("a", "b", "a"), 1); err != nil {
		t.Fatal(err)
	}
	w := NewMatcher(trie, 0.4, 100)
	if err := w.Insert(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}); err != nil {
		t.Fatal(err)
	}
	lenBefore, matchesBefore := w.Len(), w.NumMatches()
	err := w.Insert(graph.StreamEdge{U: 2, LU: "a", V: 3, LV: "b"}) // vertex 2 was "b"
	if err == nil {
		t.Fatal("conflicting label accepted")
	}
	if !strings.Contains(err.Error(), "label") {
		t.Fatalf("unexpected error: %v", err)
	}
	if w.Len() != lenBefore || w.NumMatches() != matchesBefore {
		t.Fatalf("rejected insert mutated the window: len %d→%d matches %d→%d",
			lenBefore, w.Len(), matchesBefore, w.NumMatches())
	}
	// The vertex keeps its original label and stays usable.
	if err := w.Insert(graph.StreamEdge{U: 2, LU: "b", V: 3, LV: "a"}); err != nil {
		t.Fatalf("consistent re-use rejected: %v", err)
	}
}

// TestInsertLabelConflictOnEvictedVertex: label slots are sticky — the
// conflict check must hold even after the vertex's edges left the window.
func TestInsertLabelConflictOnEvictedVertex(t *testing.T) {
	scheme := signature.NewScheme(signature.DefaultP, 5)
	trie := tpstry.New(scheme)
	if err := trie.AddQuery(pattern.Path("a", "b", "a"), 1); err != nil {
		t.Fatal(err)
	}
	w := NewMatcher(trie, 0.4, 100)
	if err := w.Insert(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}); err != nil {
		t.Fatal(err)
	}
	w.RemoveEdges([]graph.Edge{{U: 1, V: 2}})
	if !w.Empty() {
		t.Fatal("window should be empty")
	}
	if err := w.Insert(graph.StreamEdge{U: 1, LU: "b", V: 3, LV: "a"}); err == nil {
		t.Fatal("conflicting label accepted on a sticky vertex slot")
	}
}
