package window

import "testing"

// The probing/rehash behaviour of the packed table is tested in
// internal/container (where the structure now lives); this covers the
// window-specific wrapper semantics: match-list recycling across slot
// occupants and the seq payload.
func TestEdgeTableWrapper(t *testing.T) {
	var tab edgeTable
	a := packIEdge(IEdge{1, 2})
	b := packIEdge(IEdge{1, 3})
	if tab.Len() != 0 || tab.has(a) {
		t.Fatal("empty table claims contents")
	}
	sa := tab.insert(a)
	sa.Val.seq = 7
	m := &Match{}
	sa.Val.matches = append(sa.Val.matches, m)
	tab.insert(b)
	if tab.Len() != 2 || !tab.has(a) || !tab.has(b) {
		t.Fatal("inserts lost")
	}
	if got := tab.get(a); got.Val.seq != 7 || len(got.Val.matches) != 1 || got.Val.matches[0] != m {
		t.Fatal("slot payload lost")
	}
	if !tab.remove(a) || tab.has(a) || tab.Len() != 1 {
		t.Fatal("remove failed")
	}
	if tab.remove(a) {
		t.Fatal("double remove reported success")
	}
	// Reinsert after removal: the tombstoned slot is recycled and its
	// match list starts empty (capacity retained).
	s := tab.insert(a)
	if len(s.Val.matches) != 0 {
		t.Fatal("recycled slot kept stale matches")
	}
	// ensure: one probe walk serves dup-check and insert.
	s2, existed := tab.ensure(a)
	if !existed || s2 != tab.get(a) {
		t.Fatal("ensure of present key misbehaved")
	}
	if _, existed := tab.ensure(packIEdge(IEdge{9, 10})); existed {
		t.Fatal("ensure of fresh key reported existing")
	}
	if tab.Len() != 3 {
		t.Fatalf("len = %d, want 3", tab.Len())
	}
}
