package window

import (
	"math/rand"
	"testing"
)

func TestEdgeTableBasics(t *testing.T) {
	var tab edgeTable
	if tab.Len() != 0 || tab.has(packIEdge(IEdge{1, 2})) {
		t.Fatal("empty table claims contents")
	}
	a := packIEdge(IEdge{1, 2})
	b := packIEdge(IEdge{1, 3})
	tab.insert(a)
	tab.insert(b)
	if tab.Len() != 2 || !tab.has(a) || !tab.has(b) {
		t.Fatalf("after inserts: len=%d has(a)=%v has(b)=%v", tab.Len(), tab.has(a), tab.has(b))
	}
	m := &Match{}
	tab.get(a).matches = append(tab.get(a).matches, m)
	if got := tab.get(a).matches; len(got) != 1 || got[0] != m {
		t.Fatal("slot match list lost")
	}
	if !tab.remove(a) || tab.has(a) || tab.Len() != 1 {
		t.Fatal("remove failed")
	}
	if tab.remove(a) {
		t.Fatal("double remove reported success")
	}
	// Reinsert after removal: the tombstoned slot is recycled and its
	// match list starts empty.
	s := tab.insert(a)
	if len(s.matches) != 0 {
		t.Fatal("recycled slot kept stale matches")
	}
}

func TestEdgeTableChurn(t *testing.T) {
	// A sliding-window-like workload: sustained insert/remove churn with
	// a bounded live set must not grow the table without bound and must
	// stay consistent with a reference map.
	var tab edgeTable
	ref := make(map[uint64]bool)
	r := rand.New(rand.NewSource(99))
	var livePeak, slotPeak int
	for i := 0; i < 200_000; i++ {
		e := IEdge{uint32(r.Intn(500)), uint32(500 + r.Intn(500))}
		pk := packIEdge(e)
		if ref[pk] {
			tab.remove(pk)
			delete(ref, pk)
		} else if len(ref) < 256 {
			tab.insert(pk)
			ref[pk] = true
		}
		if tab.Len() != len(ref) {
			t.Fatalf("step %d: len %d != ref %d", i, tab.Len(), len(ref))
		}
		if len(ref) > livePeak {
			livePeak = len(ref)
		}
		if len(tab.slots) > slotPeak {
			slotPeak = len(tab.slots)
		}
	}
	for pk := range ref {
		if !tab.has(pk) {
			t.Fatalf("lost key %x", pk)
		}
	}
	// 256 live keys need 512 slots at 3/4 load; churn must not push the
	// table past a small constant factor of that.
	if slotPeak > 2048 {
		t.Errorf("table grew to %d slots for %d live keys", slotPeak, livePeak)
	}
}

func TestEdgeTableCollisionProbe(t *testing.T) {
	// Force many keys into one small table so linear probing and
	// tombstone reuse both exercise wraparound.
	var tab edgeTable
	keys := make([]uint64, 0, 100)
	for i := uint32(0); i < 100; i++ {
		keys = append(keys, packIEdge(IEdge{i, i + 1}))
	}
	for _, k := range keys {
		tab.insert(k)
	}
	for i, k := range keys {
		if i%2 == 0 {
			tab.remove(k)
		}
	}
	for i, k := range keys {
		if want := i%2 != 0; tab.has(k) != want {
			t.Fatalf("key %d: has=%v want %v", i, tab.has(k), want)
		}
	}
	// Reinsert the removed half; everything must be findable again.
	for i, k := range keys {
		if i%2 == 0 {
			tab.insert(k)
		}
	}
	for i, k := range keys {
		if !tab.has(k) {
			t.Fatalf("key %d lost after reinsert", i)
		}
	}
}
