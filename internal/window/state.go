package window

import (
	"fmt"
	"slices"
	"sort"

	"loom/internal/intern"
	"loom/internal/tpstry"
)

// EdgeState is one live window edge: its interned endpoints and the
// insertion sequence number its FIFO entry and edge slot share.
type EdgeState struct {
	E   IEdge
	Seq uint64
}

// MatchState is one live match, by value: its motif node (as the node's
// stable creation-order ID in the trie), its creation sequence number and
// its sorted interned edge set. Vertices, degrees and the fingerprint are
// re-derived on restore.
type MatchState struct {
	NodeID int
	Seq    uint64
	IEdges []IEdge
}

// MatcherState is the full checkpointable matcher: counters, the sticky
// per-vertex label assignment (a vertex keeps its label slot after leaving
// the window, and future inserts are validated against it — forgetting it
// would change conflict behaviour after recovery), the live FIFO and every
// live match.
//
// The matches must be serialised rather than re-derived by re-inserting
// the window edges: tryJoin can create matches that do not contain the
// edge whose insert triggered them (they then survive that edge's
// removal), and the per-vertex match cap makes the surviving set dependent
// on the full insertion history, not just the current edge set.
type MatcherState struct {
	Seq  uint64
	MSeq uint64
	// VCode/Labelled cover every dense vertex the matcher has ever touched
	// (the extent of its per-vertex slices); Labelled marks the ones whose
	// label is sticky — the extent can contain never-labelled gaps when
	// the shared vertex table grew past the window.
	VCode    []uint16
	Labelled []bool
	Edges    []EdgeState  // live edges, oldest-first
	Matches  []MatchState // live matches, ascending Seq
}

// CaptureState deep-copies the matcher's checkpointable state.
func (w *Matcher) CaptureState() MatcherState {
	s := MatcherState{
		Seq:      w.seq,
		MSeq:     w.mseq,
		VCode:    append([]uint16(nil), w.vcode...),
		Labelled: make([]bool, len(w.vrval)),
	}
	for i, rv := range w.vrval {
		s.Labelled[i] = rv != 0
	}
	for i := w.head; i < len(w.fifo); i++ {
		we := w.fifo[i]
		if w.fifoLive(we) {
			s.Edges = append(s.Edges, EdgeState{E: we.ie, Seq: we.seq})
		}
	}
	// Every live match hangs off the byVertex list of each of its
	// vertices; walk those and dedup by pointer.
	seen := make(map[*Match]struct{}, w.live)
	for _, list := range w.byVertex {
		for _, m := range list {
			if m.dead {
				continue
			}
			if _, ok := seen[m]; ok {
				continue
			}
			seen[m] = struct{}{}
			s.Matches = append(s.Matches, MatchState{
				NodeID: m.Node.ID,
				Seq:    m.seq,
				IEdges: append([]IEdge(nil), m.iedges...),
			})
		}
	}
	sort.Slice(s.Matches, func(i, j int) bool { return s.Matches[i].Seq < s.Matches[j].Seq })
	return s
}

// RestoreState loads a captured state into a freshly constructed matcher
// whose trie already carries the workload the state was captured under;
// nodeByID maps the trie's stable node IDs back to nodes (see
// tpstry.Trie.Nodes). Matches are relinked in ascending Seq order, which
// reproduces the seq-ascending byVertex and edge-slot list order the join
// path depends on.
func (w *Matcher) RestoreState(s MatcherState, nodeByID map[int]*tpstry.Node) error {
	if w.seq != 0 || w.mseq != 0 || w.edges.Len() != 0 || len(w.fifo) != 0 {
		return fmt.Errorf("window: RestoreState on a non-fresh matcher")
	}
	if len(s.VCode) != len(s.Labelled) {
		return fmt.Errorf("window: state has %d label codes but %d labelled flags", len(s.VCode), len(s.Labelled))
	}
	extent := len(s.VCode)

	// Per-vertex slices, including never-labelled gaps (vrval 0), which
	// ensureVertex cannot produce — grow manually.
	for i := 0; i < extent; i++ {
		w.vrval = append(w.vrval, 0)
		w.vcode = append(w.vcode, 0)
		w.vertexRC = append(w.vertexRC, 0)
		w.byVertex = append(w.byVertex, nil)
		w.gdeg = append(w.gdeg, 0)
		w.gstamp = append(w.gstamp, 0)
	}
	for i := 0; i < extent; i++ {
		if !s.Labelled[i] {
			continue
		}
		code := s.VCode[i]
		if int(code) >= w.ltab.Len() {
			return fmt.Errorf("window: state labels vertex %d with unknown code %d", i, code)
		}
		w.vcode[i] = code
		w.vrval[i] = w.labelVal(code)
	}

	var lastSeq uint64
	for _, es := range s.Edges {
		e := es.E
		if e != e.norm() || e.U == e.V {
			return fmt.Errorf("window: state edge %v is not a normalised window edge", e)
		}
		if int(e.V) >= extent || !s.Labelled[e.U] || !s.Labelled[e.V] {
			return fmt.Errorf("window: state edge %v references an unlabelled vertex", e)
		}
		if es.Seq <= lastSeq || es.Seq > s.Seq {
			return fmt.Errorf("window: state edge seqs not ascending (%d after %d, max %d)", es.Seq, lastSeq, s.Seq)
		}
		lastSeq = es.Seq
		slot, existed := w.edges.ensure(packIEdge(e))
		if existed {
			return fmt.Errorf("window: state contains duplicate edge %v", e)
		}
		slot.Val.seq = es.Seq
		w.fifo = append(w.fifo, winEdge{ie: e, seq: es.Seq})
		w.vertexRC[e.U]++
		w.vertexRC[e.V]++
	}

	lastSeq = 0
	for _, ms := range s.Matches {
		node := nodeByID[ms.NodeID]
		if node == nil {
			return fmt.Errorf("window: state match references unknown trie node %d", ms.NodeID)
		}
		if len(ms.IEdges) == 0 {
			return fmt.Errorf("window: state match on node %d has no edges", ms.NodeID)
		}
		if ms.Seq <= lastSeq || ms.Seq > s.MSeq {
			return fmt.Errorf("window: state match seqs not ascending (%d after %d, max %d)", ms.Seq, lastSeq, s.MSeq)
		}
		lastSeq = ms.Seq
		m := w.acquireMatch()
		m.Node = node
		m.iedges = append(m.iedges, ms.IEdges...)
		if !slices.IsSortedFunc(m.iedges, CompareIEdges) {
			w.releaseMatch(m)
			return fmt.Errorf("window: state match edge set not sorted")
		}
		var fp uint64
		for _, e := range m.iedges {
			if w.edges.get(packIEdge(e)) == nil {
				w.releaseMatch(m)
				return fmt.Errorf("window: state match references edge %v not in the window", e)
			}
			fp ^= intern.Mix64(packIEdge(e))
			m.verts = append(m.verts, e.U, e.V)
		}
		m.fp = fp
		slices.Sort(m.verts)
		m.verts = slices.Compact(m.verts)
		for range m.verts {
			m.degs = append(m.degs, 0)
		}
		for _, e := range m.iedges {
			i, _ := slices.BinarySearch(m.verts, e.U)
			m.degs[i]++
			j, _ := slices.BinarySearch(m.verts, e.V)
			m.degs[j]++
		}
		m.seq = ms.Seq
		w.live++
		for _, v := range m.verts {
			w.byVertex[v] = addMatchRef(w.byVertex[v], m)
		}
		for _, e := range m.iedges {
			slot := w.edges.get(packIEdge(e))
			slot.Val.matches = addMatchRef(slot.Val.matches, m)
		}
	}

	w.seq = s.Seq
	w.mseq = s.MSeq
	return nil
}
