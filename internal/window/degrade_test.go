package window

// Degradation-path tests: per-vertex match caps, removal of unknown or
// duplicate edges, match dedup, and the bounded-memory FIFO guarantee
// under streams much longer than the window.

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// starTrie matches a hub-and-spoke workload so every new leaf edge
// multiplies matches at the hub vertex.
func starTrie(t testing.TB) *tpstry.Trie {
	t.Helper()
	trie := tpstry.New(signature.NewScheme(signature.DefaultP, 5))
	if err := trie.AddQuery(pattern.Star("h", "a", "a", "a", "a"), 1); err != nil {
		t.Fatal(err)
	}
	return trie
}

func TestMaxPerVertexCapStillEvicts(t *testing.T) {
	w := NewMatcher(starTrie(t), 0.1, 1000)
	w.SetMaxMatchesPerVertex(1)
	// With cap 1 the hub's single-edge match of the FIRST leaf edge takes
	// the only slot; later edges' matches (including their own single-edge
	// matches) are refused. The window must keep functioning: every edge
	// remains buffered, removable, and the matchList stays consistent.
	for i := 0; i < 20; i++ {
		se := graph.StreamEdge{U: 1, LU: "h", V: graph.VertexID(i + 2), LV: "a"}
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 20 {
		t.Fatalf("Len = %d, want 20", w.Len())
	}
	if got := len(w.byVertex[0]); got > 1 {
		t.Fatalf("hub holds %d matches, cap 1", got)
	}
	// A capped edge has no matches: the caller's eviction path falls back
	// to per-vertex LDG, and removal must still clean it up.
	uncapped := 0
	for _, se := range w.WindowEdges() {
		if len(w.MatchesContaining(se.Edge())) > 0 {
			uncapped++
		}
		w.RemoveEdges([]graph.Edge{se.Edge().Norm()})
	}
	if uncapped == 0 {
		t.Error("expected at least the first edge to keep its match")
	}
	if !w.Empty() || w.NumMatches() != 0 {
		t.Errorf("after draining: Len=%d matches=%d", w.Len(), w.NumMatches())
	}
	for i, rc := range w.vertexRC {
		if rc != 0 {
			t.Errorf("vertex %d refcount %d after drain", i, rc)
		}
	}
}

func TestRemoveIEdgesDuplicatesAndUnknown(t *testing.T) {
	w := NewMatcher(fig5Trie(t), 0.4, 100)
	for _, e := range fig5Edges() {
		if err := w.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	n := w.Len()
	e12, ok := w.lookupIEdge(graph.Edge{U: 1, V: 2})
	if !ok {
		t.Fatal("edge (1,2) not interned")
	}
	// One removal list holding the same edge three times (normalised and
	// flipped) plus edges the window has never seen: the edge must come
	// out exactly once, with no panic and no refcount underflow.
	w.RemoveIEdges([]IEdge{
		e12,
		{e12.V, e12.U},
		e12,
		{900, 901}, // never interned
	})
	if got := w.Len(); got != n-1 {
		t.Fatalf("Len = %d, want %d", got, n-1)
	}
	if w.HasEdge(graph.Edge{U: 1, V: 2}) {
		t.Error("edge still reported buffered")
	}
	for i, rc := range w.vertexRC {
		if rc < 0 {
			t.Errorf("vertex %d refcount underflow: %d", i, rc)
		}
	}
	// Removing it again (now unknown) is a no-op.
	w.RemoveIEdges([]IEdge{e12})
	if got := w.Len(); got != n-1 {
		t.Fatalf("second removal changed Len to %d", got)
	}
}

func TestAddMatchDedup(t *testing.T) {
	w := NewMatcher(fig5Trie(t), 0.4, 100)
	se := graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}
	if err := w.Insert(se); err != nil {
		t.Fatal(err)
	}
	live := w.NumMatches()
	ie, _ := w.lookupIEdge(graph.Edge{U: 1, V: 2})
	existing := w.MatchesContaining(graph.Edge{U: 1, V: 2})
	if len(existing) != 1 {
		t.Fatalf("want exactly the single-edge match, got %d", len(existing))
	}
	// Recording the same (edge set, node) pair again must return the
	// canonical match, not create a second one, and must recycle the
	// rejected candidate through the freelist.
	dup := w.acquireMatch()
	dup.iedges = append(dup.iedges, ie)
	poolBefore := len(w.pool)
	got, created := w.addMatch(dup, existing[0].Node)
	if created || got != existing[0] {
		t.Errorf("dedup failed: created=%v got=%p want=%p", created, got, existing[0])
	}
	if w.NumMatches() != live {
		t.Errorf("live matches %d, want %d", w.NumMatches(), live)
	}
	if len(w.pool) != poolBefore+1 {
		t.Errorf("rejected duplicate not pooled: pool %d → %d", poolBefore, len(w.pool))
	}
}

func TestMatchPoolingRecycles(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 100)
	run := func() {
		for _, e := range fig5Edges() {
			if err := w.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
		// The fig5 window holds the matches of §3's worked example; spot
		// check one joined match before draining.
		if got := len(w.MatchesContaining(graph.Edge{U: 1, V: 2})); got < 2 {
			t.Fatalf("expected grown matches on (1,2), got %d", got)
		}
		for !w.Empty() {
			_, ie, _ := w.OldestI()
			w.RemoveIEdges([]IEdge{ie})
		}
	}
	run()
	if len(w.pool) == 0 {
		t.Fatal("draining produced no pooled matches")
	}
	// The second identical run must reuse pooled matches and reproduce
	// the same matchList shape.
	run()
	if w.NumMatches() != 0 {
		t.Errorf("matches leaked across runs: %d", w.NumMatches())
	}
}

// TestReinsertedEdgeAges asserts that an edge removed mid-window and
// later re-inserted gets a fresh FIFO position: the stale tombstoned
// entry must not resurrect and cause a near-immediate eviction.
func TestReinsertedEdgeAges(t *testing.T) {
	w := NewMatcher(chainTrie(t), 0.4, 1000)
	mk := func(u, v graph.VertexID) graph.StreamEdge {
		lu, lv := graph.Label("a"), graph.Label("a")
		if u%2 == 0 {
			lu = "b"
		}
		if v%2 == 0 {
			lv = "b"
		}
		return graph.StreamEdge{U: u, LU: lu, V: v, LV: lv}
	}
	if err := w.Insert(mk(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(mk(3, 4)); err != nil {
		t.Fatal(err)
	}
	// Remove (1,2) from the middle of the window, then re-insert it: it
	// is now the NEWEST edge and must age behind (3,4).
	w.RemoveEdges([]graph.Edge{{U: 1, V: 2}})
	if err := w.Insert(mk(1, 2)); err != nil {
		t.Fatal(err)
	}
	old, ok := w.Oldest()
	if !ok {
		t.Fatal("window unexpectedly empty")
	}
	if old.Edge().Norm() != (graph.Edge{U: 3, V: 4}) {
		t.Fatalf("oldest = %v, want the un-removed (3,4): stale FIFO entry resurrected", old.Edge())
	}
	// Order must survive compaction and full drain.
	got := w.WindowEdges()
	if len(got) != 2 || got[0].Edge().Norm() != (graph.Edge{U: 3, V: 4}) || got[1].Edge().Norm() != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("WindowEdges order wrong: %v", got)
	}
}

// TestFIFOBoundedOnLongStream is the bounded-memory soak: a stream two
// orders of magnitude longer than the window must not grow the internal
// FIFO beyond a small multiple of the window capacity (the pre-compaction
// behaviour retained one entry per stream edge for the life of the
// matcher).
func TestFIFOBoundedOnLongStream(t *testing.T) {
	const capEdges = 64
	trie := chainTrie(t)
	w := NewMatcher(trie, 0.4, capEdges)
	r := rand.New(rand.NewSource(7))
	bound := 4*capEdges + 2*minCompactFIFO
	inserted, maxFIFO := 0, 0
	for inserted < 100*capEdges {
		u := graph.VertexID(r.Intn(300) + 1)
		v := graph.VertexID(r.Intn(300) + 1)
		if u == v {
			continue
		}
		lu, lv := graph.Label("a"), graph.Label("a")
		if u%2 == 0 {
			lu = "b"
		}
		if v%2 == 0 {
			lv = "b"
		}
		se := graph.StreamEdge{U: u, LU: lu, V: v, LV: lv}
		if _, ok := w.SingleEdgeMotif(se); !ok {
			continue
		}
		if err := w.Insert(se); err != nil {
			continue // duplicate of a buffered edge
		}
		inserted++
		for w.OverCapacity() {
			_, ie, ok := w.OldestI()
			if !ok {
				t.Fatal("over capacity with no oldest edge")
			}
			// Remove the evicted edge together with the edges of one of
			// its matches, like Loom's cluster assignment does, so the
			// FIFO accumulates interior tombstones too.
			if me := w.MatchesContainingI(ie, nil); len(me) > 0 {
				w.RemoveIEdges(me[len(me)-1].IEdges())
			}
			w.RemoveIEdges([]IEdge{ie})
		}
		if f := w.FIFOLen(); f > maxFIFO {
			maxFIFO = f
		}
	}
	if maxFIFO > bound {
		t.Errorf("FIFO grew to %d entries for a %d-edge window (bound %d)", maxFIFO, capEdges, bound)
	}
	t.Logf("inserted %d edges; FIFO peak %d (window %d)", inserted, maxFIFO, capEdges)
}
