package window

import (
	"fmt"
	"sync"
	"testing"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// TestGateProbeMatchesSingleEdgeMotifCodes: after a serial warm-up,
// GateProbe must report exactly the memoised verdicts — and report unknown
// pairs as unknown rather than guessing.
func TestGateProbeMatchesSingleEdgeMotifCodes(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 10)
	ca := w.Labels().Intern("a")
	cb := w.Labels().Intern("b")
	cc := w.Labels().Intern("c")
	cd := w.Labels().Intern("d")

	w.GateSync()
	if _, _, known := w.GateProbe(ca, cb); known {
		t.Fatal("unwarmed pair reported as known")
	}

	wantNode, wantOK := w.SingleEdgeMotifCodes(ca, cb) // motif: a-b
	node, motif, known := w.GateProbe(ca, cb)
	if !known || motif != wantOK || node != wantNode {
		t.Fatalf("GateProbe(a,b) = (%v,%v,%v); want memoised (%v,%v,true)",
			node, motif, known, wantNode, wantOK)
	}

	if _, ok := w.SingleEdgeMotifCodes(ca, cd); ok { // non-motif: a-d
		t.Fatal("a-d unexpectedly a motif")
	}
	if node, motif, known := w.GateProbe(ca, cd); !known || motif || node != nil {
		t.Fatalf("GateProbe(a,d) = (%v,%v,%v); want memoised negative", node, motif, known)
	}
	if _, _, known := w.GateProbe(cc, cd); known {
		t.Fatal("never-queried pair reported as known")
	}
}

// TestGateSyncInvalidatesOnWorkloadChange: AddQuery bumps the trie
// version; GateSync must clear stale verdicts so probes re-memoise against
// the new workload.
func TestGateSyncInvalidatesOnWorkloadChange(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 10)
	cd := w.Labels().Intern("d")
	ce := w.Labels().Intern("e")
	if _, ok := w.SingleEdgeMotifCodes(cd, ce); ok {
		t.Fatal("d-e a motif before the workload includes it")
	}
	// Make d-e dominant: its support passes the threshold.
	if err := trie.AddQuery(pattern.Path("d", "e"), 5.0); err != nil {
		t.Fatal(err)
	}
	w.GateSync()
	if _, _, known := w.GateProbe(cd, ce); known {
		t.Fatal("stale verdict survived GateSync after AddQuery")
	}
	if _, ok := w.SingleEdgeMotifCodes(cd, ce); !ok {
		t.Fatal("d-e not a motif after AddQuery")
	}
	if node, motif, known := w.GateProbe(cd, ce); !known || !motif || node == nil {
		t.Fatalf("GateProbe(d,e) = (%v,%v,%v) after re-memoisation", node, motif, known)
	}
}

// TestGateProbeConcurrentReaders: with the memo warmed and synced, any
// number of goroutines may probe concurrently (run under -race in CI) —
// the contract the parallel batch pre-pass is built on.
func TestGateProbeConcurrentReaders(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 10)
	ca := w.Labels().Intern("a")
	cb := w.Labels().Intern("b")
	cc := w.Labels().Intern("c")
	w.SingleEdgeMotifCodes(ca, cb)
	w.SingleEdgeMotifCodes(cb, cc)
	w.SingleEdgeMotifCodes(ca, cc)
	w.GateSync()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, motif, known := w.GateProbe(ca, cb); !known || !motif {
					t.Error("a-b lost its motif verdict")
					return
				}
				w.GateProbe(cb, cc)
				w.GateProbe(ca, cc)
			}
		}()
	}
	wg.Wait()
}

// TestGateLargeAlphabetFallsBackToMap: label codes at or past maxGateDim
// must memoise through the map path (the dense table is quadratic in the
// alphabet and capped), with verdicts identical to the dense path and
// visible to GateProbe.
func TestGateLargeAlphabetFallsBackToMap(t *testing.T) {
	trie := tpstry.New(signature.NewScheme(signature.DefaultP, 5))
	w := NewMatcher(trie, 0.4, 100)
	// Push the alphabet past the dense cap; labels lbl0.. take codes 0..
	labels := make([]string, maxGateDim+8)
	for i := range labels {
		labels[i] = fmt.Sprintf("lbl%d", i)
		w.ltab.Intern(labels[i])
	}
	big := uint16(maxGateDim + 3) // code past the dense cap
	small := uint16(1)
	// Register the motif AFTER interning so codes are stable.
	if err := trie.AddQuery(pattern.Path(graph.Label(labels[small]), graph.Label(labels[big])), 1); err != nil {
		t.Fatal(err)
	}
	w.GateSync()
	if _, _, known := w.GateProbe(small, big); known {
		t.Fatal("pair known before first resolve")
	}
	n, ok := w.SingleEdgeMotifCodes(small, big)
	if !ok || n == nil {
		t.Fatal("single-edge motif not found through the map gate path")
	}
	if w.gateDim > maxGateDim {
		t.Fatalf("dense gate grew past the cap: dim %d", w.gateDim)
	}
	pn, motif, known := w.GateProbe(small, big)
	if !known || !motif || pn != n {
		t.Fatalf("GateProbe disagrees with resolve: node=%v motif=%v known=%v", pn, motif, known)
	}
	// A non-motif pair past the cap memoises a miss.
	other := uint16(maxGateDim + 5)
	if _, ok := w.SingleEdgeMotifCodes(other, big); ok {
		t.Fatal("unexpected motif for unrelated large-code pair")
	}
	if _, motif, known := w.GateProbe(other, big); !known || motif {
		t.Fatalf("miss not memoised for large-code pair: motif=%v known=%v", motif, known)
	}
}
