package window

import (
	"sync"
	"testing"

	"loom/internal/pattern"
)

// TestGateProbeMatchesSingleEdgeMotifCodes: after a serial warm-up,
// GateProbe must report exactly the memoised verdicts — and report unknown
// pairs as unknown rather than guessing.
func TestGateProbeMatchesSingleEdgeMotifCodes(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 10)
	ca := w.Labels().Intern("a")
	cb := w.Labels().Intern("b")
	cc := w.Labels().Intern("c")
	cd := w.Labels().Intern("d")

	w.GateSync()
	if _, _, known := w.GateProbe(ca, cb); known {
		t.Fatal("unwarmed pair reported as known")
	}

	wantNode, wantOK := w.SingleEdgeMotifCodes(ca, cb) // motif: a-b
	node, motif, known := w.GateProbe(ca, cb)
	if !known || motif != wantOK || node != wantNode {
		t.Fatalf("GateProbe(a,b) = (%v,%v,%v); want memoised (%v,%v,true)",
			node, motif, known, wantNode, wantOK)
	}

	if _, ok := w.SingleEdgeMotifCodes(ca, cd); ok { // non-motif: a-d
		t.Fatal("a-d unexpectedly a motif")
	}
	if node, motif, known := w.GateProbe(ca, cd); !known || motif || node != nil {
		t.Fatalf("GateProbe(a,d) = (%v,%v,%v); want memoised negative", node, motif, known)
	}
	if _, _, known := w.GateProbe(cc, cd); known {
		t.Fatal("never-queried pair reported as known")
	}
}

// TestGateSyncInvalidatesOnWorkloadChange: AddQuery bumps the trie
// version; GateSync must clear stale verdicts so probes re-memoise against
// the new workload.
func TestGateSyncInvalidatesOnWorkloadChange(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 10)
	cd := w.Labels().Intern("d")
	ce := w.Labels().Intern("e")
	if _, ok := w.SingleEdgeMotifCodes(cd, ce); ok {
		t.Fatal("d-e a motif before the workload includes it")
	}
	// Make d-e dominant: its support passes the threshold.
	if err := trie.AddQuery(pattern.Path("d", "e"), 5.0); err != nil {
		t.Fatal(err)
	}
	w.GateSync()
	if _, _, known := w.GateProbe(cd, ce); known {
		t.Fatal("stale verdict survived GateSync after AddQuery")
	}
	if _, ok := w.SingleEdgeMotifCodes(cd, ce); !ok {
		t.Fatal("d-e not a motif after AddQuery")
	}
	if node, motif, known := w.GateProbe(cd, ce); !known || !motif || node == nil {
		t.Fatalf("GateProbe(d,e) = (%v,%v,%v) after re-memoisation", node, motif, known)
	}
}

// TestGateProbeConcurrentReaders: with the memo warmed and synced, any
// number of goroutines may probe concurrently (run under -race in CI) —
// the contract the parallel batch pre-pass is built on.
func TestGateProbeConcurrentReaders(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 10)
	ca := w.Labels().Intern("a")
	cb := w.Labels().Intern("b")
	cc := w.Labels().Intern("c")
	w.SingleEdgeMotifCodes(ca, cb)
	w.SingleEdgeMotifCodes(cb, cc)
	w.SingleEdgeMotifCodes(ca, cc)
	w.GateSync()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, motif, known := w.GateProbe(ca, cb); !known || !motif {
					t.Error("a-b lost its motif verdict")
					return
				}
				w.GateProbe(cb, cc)
				w.GateProbe(ca, cc)
			}
		}()
	}
	wg.Wait()
}
