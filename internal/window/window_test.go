package window

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// fig5Trie builds a TPSTry++ whose motifs (at T = 0.4) are exactly the six
// of Fig. 5: m1 = a-b, m2 = b-c, m3 = a-b-c, m4 = a-b-a, m5 = b-a-b and
// m6 = the path a-b-a-b. Workload: {a-b-a-b path: 50%, a-b-c path: 50%}.
func fig5Trie(t testing.TB) *tpstry.Trie {
	t.Helper()
	trie := tpstry.New(signature.NewScheme(signature.DefaultP, 23))
	if err := trie.AddQuery(pattern.Path("a", "b", "a", "b"), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := trie.AddQuery(pattern.Path("a", "b", "c"), 0.5); err != nil {
		t.Fatal(err)
	}
	return trie
}

// fig5Edges returns the stream of Fig. 5: vertices 1a 2b 3a 4b 5c, edges
// e1=(1,2), e2=(3,4), e3=(4,5), e4=(2,5), e5=(2,3).
func fig5Edges() []graph.StreamEdge {
	return []graph.StreamEdge{
		{U: 1, LU: "a", V: 2, LV: "b"}, // e1
		{U: 3, LU: "a", V: 4, LV: "b"}, // e2
		{U: 4, LU: "b", V: 5, LV: "c"}, // e3
		{U: 2, LU: "b", V: 5, LV: "c"}, // e4
		{U: 2, LU: "b", V: 3, LV: "a"}, // e5
	}
}

func nodeOf(t testing.TB, trie *tpstry.Trie, g *graph.Graph) *tpstry.Node {
	t.Helper()
	n, ok := trie.NodeBySignature(trie.Scheme().SignatureOf(g))
	if !ok {
		t.Fatalf("trie node missing for %v", g)
	}
	return n
}

// hasMatch reports whether the window has a live match with exactly these
// edges and motif node.
func hasMatch(w *Matcher, node *tpstry.Node, edges ...graph.Edge) bool {
	if len(edges) == 0 {
		return false
	}
	for _, m := range w.MatchesContaining(edges[0]) {
		if m.Node != node || m.NumEdges() != len(edges) {
			continue
		}
		all := true
		for _, e := range edges {
			if !m.ContainsEdge(e) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func TestFig5Walkthrough(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 100)
	es := fig5Edges()

	m1 := nodeOf(t, trie, pattern.Path("a", "b"))
	m2 := nodeOf(t, trie, pattern.Path("b", "c"))
	m3 := nodeOf(t, trie, pattern.Path("a", "b", "c"))
	m4 := nodeOf(t, trie, pattern.Path("a", "b", "a"))
	m5 := nodeOf(t, trie, pattern.Path("b", "a", "b"))
	m6 := nodeOf(t, trie, pattern.Path("a", "b", "a", "b"))

	e1 := graph.Edge{U: 1, V: 2}
	e2 := graph.Edge{U: 3, V: 4}
	e3 := graph.Edge{U: 4, V: 5}
	e4 := graph.Edge{U: 2, V: 5}
	e5 := graph.Edge{U: 2, V: 3}

	// e1: single-edge match ⟨e1, m1⟩.
	if err := w.Insert(es[0]); err != nil {
		t.Fatal(err)
	}
	if !hasMatch(w, m1, e1) {
		t.Fatal("⟨e1,m1⟩ missing")
	}
	// e2: same process.
	if err := w.Insert(es[1]); err != nil {
		t.Fatal(err)
	}
	if !hasMatch(w, m1, e2) {
		t.Fatal("⟨e2,m1⟩ missing")
	}
	// e3 (b-c): single-edge ⟨e3,m2⟩ plus the growth ⟨{e2,e3},m3⟩
	// recorded for vertices 3, 4 and 5.
	if err := w.Insert(es[2]); err != nil {
		t.Fatal(err)
	}
	if !hasMatch(w, m2, e3) {
		t.Fatal("⟨e3,m2⟩ missing")
	}
	if !hasMatch(w, m3, e2, e3) {
		t.Fatal("⟨{e2,e3},m3⟩ missing")
	}
	// e4 (b-c): ⟨e4,m2⟩ and ⟨{e1,e4},m3⟩ per the text.
	if err := w.Insert(es[3]); err != nil {
		t.Fatal(err)
	}
	if !hasMatch(w, m2, e4) {
		t.Fatal("⟨e4,m2⟩ missing")
	}
	if !hasMatch(w, m3, e1, e4) {
		t.Fatal("⟨{e1,e4},m3⟩ missing")
	}
	// e5 (b-a): ⟨{e1,e5},m4⟩, ⟨{e2,e5},m5⟩ and the join result
	// ⟨{e1,e2,e5},m6⟩.
	if err := w.Insert(es[4]); err != nil {
		t.Fatal(err)
	}
	if !hasMatch(w, m4, e1, e5) {
		t.Fatal("⟨{e1,e5},m4⟩ missing")
	}
	if !hasMatch(w, m5, e2, e5) {
		t.Fatal("⟨{e2,e5},m5⟩ missing")
	}
	if !hasMatch(w, m6, e1, e2, e5) {
		t.Fatal("⟨{e1,e2,e5},m6⟩ missing (pair join)")
	}
	if w.Len() != 5 {
		t.Errorf("window Len = %d, want 5", w.Len())
	}
}

func TestSingleEdgeMotifGate(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 10)
	// c-d never appears in the workload: not a motif.
	if _, ok := w.SingleEdgeMotif(graph.StreamEdge{U: 7, LU: "c", V: 8, LV: "d"}); ok {
		t.Error("c-d must not match a single-edge motif")
	}
	if _, ok := w.SingleEdgeMotif(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}); !ok {
		t.Error("a-b must match a single-edge motif")
	}
	if err := w.Insert(graph.StreamEdge{U: 7, LU: "c", V: 8, LV: "d"}); err == nil {
		t.Error("Insert of non-motif edge must fail")
	}
}

func TestInsertRejectsDuplicatesAndSelfLoops(t *testing.T) {
	w := NewMatcher(fig5Trie(t), 0.4, 10)
	e := graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}
	if err := w.Insert(e); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(e); err == nil {
		t.Error("duplicate insert must fail")
	}
	if err := w.Insert(graph.StreamEdge{U: 3, LU: "a", V: 3, LV: "a"}); err == nil {
		t.Error("self-loop insert must fail")
	}
}

func TestOldestAndRemoveEdges(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 100)
	for _, e := range fig5Edges() {
		if err := w.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	old, ok := w.Oldest()
	if !ok || old.Edge() != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("Oldest = %v,%v want e1", old, ok)
	}

	e1 := graph.Edge{U: 1, V: 2}
	e2 := graph.Edge{U: 3, V: 4}
	m1 := nodeOf(t, trie, pattern.Path("a", "b"))
	before := w.NumMatches()
	w.RemoveEdges([]graph.Edge{e1})
	if w.Len() != 4 {
		t.Errorf("Len after removal = %d, want 4", w.Len())
	}
	// All matches containing e1 died; ⟨e2,m1⟩ must survive.
	if got := w.MatchesContaining(e1); len(got) != 0 {
		t.Errorf("matches containing removed edge: %v", got)
	}
	if !hasMatch(w, m1, e2) {
		t.Error("⟨e2,m1⟩ should survive e1's removal")
	}
	if w.NumMatches() >= before {
		t.Error("match count should drop after removal")
	}
	// Oldest now skips the tombstoned e1.
	old, ok = w.Oldest()
	if !ok || old.Edge() != (graph.Edge{U: 3, V: 4}) {
		t.Fatalf("Oldest after removal = %v, want e2", old)
	}
	// Removing an absent edge is a no-op.
	w.RemoveEdges([]graph.Edge{{U: 99, V: 100}})
	if w.Len() != 4 {
		t.Error("removing absent edge changed Len")
	}
}

func TestOverCapacity(t *testing.T) {
	w := NewMatcher(fig5Trie(t), 0.4, 2)
	es := fig5Edges()
	for i := 0; i < 2; i++ {
		if err := w.Insert(es[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.OverCapacity() {
		t.Error("window at capacity is not over capacity")
	}
	if err := w.Insert(es[2]); err != nil {
		t.Fatal(err)
	}
	if !w.OverCapacity() {
		t.Error("window must be over capacity after t+1 inserts")
	}
}

func TestMatchSignatureInvariant(t *testing.T) {
	// Every live match's induced sub-graph must have exactly the
	// signature of its motif node — the core soundness property tying
	// Alg. 2 to the trie.
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 1000)
	scheme := trie.Scheme()

	r := rand.New(rand.NewSource(99))
	// Random bipartite-ish stream over labels a, b, c to exercise growth.
	labels := []graph.Label{"a", "b", "c"}
	g := graph.New()
	var inserted []graph.StreamEdge
	for i := 0; i < 300; i++ {
		u := graph.VertexID(r.Intn(40) + 1)
		v := graph.VertexID(r.Intn(40) + 1)
		if u == v {
			continue
		}
		lu := labels[int(u)%len(labels)]
		lv := labels[int(v)%len(labels)]
		se := graph.StreamEdge{U: u, LU: lu, V: v, LV: lv}
		if _, ok := w.SingleEdgeMotif(se); !ok {
			continue
		}
		added, err := g.EnsureEdge(u, lu, v, lv)
		if err != nil || !added {
			continue
		}
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, se)
	}
	if len(inserted) < 20 {
		t.Fatalf("too few motif edges inserted: %d", len(inserted))
	}

	checked := 0
	for _, se := range inserted {
		for _, m := range w.MatchesContaining(se.Edge()) {
			sub := graph.InducedSubgraph(g, m.Edges())
			if !scheme.SignatureOf(sub).Equal(m.Node.Sig) {
				t.Fatalf("match %v: sub-graph signature %v != node sig %v",
					m, scheme.SignatureOf(sub), m.Node.Sig)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no matches checked")
	}
}

func TestMatchesAreSubgraphsOfWindow(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 3)
	// Insert 5 edges with manual eviction of oldest after each overflow,
	// mimicking Loom's loop; matches must never reference evicted edges.
	for _, se := range fig5Edges() {
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
		for w.OverCapacity() {
			old, ok := w.Oldest()
			if !ok {
				t.Fatal("over capacity but no oldest")
			}
			w.RemoveEdges([]graph.Edge{old.Edge().Norm()})
		}
	}
	for _, se := range w.WindowEdges() {
		for _, m := range w.MatchesContaining(se.Edge()) {
			for _, e := range m.Edges() {
				if !w.HasEdge(e) {
					t.Fatalf("match %v references evicted edge %v", m, e)
				}
			}
		}
	}
}

func TestMaxMatchesPerVertexGuard(t *testing.T) {
	trie := tpstry.New(signature.NewScheme(signature.DefaultP, 5))
	// Star workload: hub label h with many a-leaves, so every new leaf
	// edge multiplies matches at the hub.
	if err := trie.AddQuery(pattern.Star("h", "a", "a", "a", "a"), 1); err != nil {
		t.Fatal(err)
	}
	w := NewMatcher(trie, 0.1, 1000)
	w.SetMaxMatchesPerVertex(10)
	for i := 0; i < 30; i++ {
		se := graph.StreamEdge{U: 1, LU: "h", V: graph.VertexID(i + 2), LV: "a"}
		if err := w.Insert(se); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(w.byVertex[1]); got > 10 {
		t.Errorf("hub has %d matches, cap 10", got)
	}
}

func TestWindowEdgesOrder(t *testing.T) {
	w := NewMatcher(fig5Trie(t), 0.4, 100)
	es := fig5Edges()
	for _, e := range es {
		if err := w.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	got := w.WindowEdges()
	if len(got) != len(es) {
		t.Fatalf("WindowEdges len = %d", len(got))
	}
	for i := range es {
		if got[i].Edge() != es[i].Edge() {
			t.Errorf("WindowEdges[%d] = %v, want %v", i, got[i], es[i])
		}
	}
}

func TestSupportOrdering(t *testing.T) {
	trie := fig5Trie(t)
	w := NewMatcher(trie, 0.4, 100)
	for _, e := range fig5Edges() {
		if err := w.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	// Single-edge a-b motif (support 1.0) must outrank the 3-edge m6
	// (support 0.5).
	e1 := graph.Edge{U: 1, V: 2}
	var single, m6sup float64
	for _, m := range w.MatchesContaining(e1) {
		switch m.NumEdges() {
		case 1:
			single = w.Support(m)
		case 3:
			m6sup = w.Support(m)
		}
	}
	if !(single > m6sup && m6sup > 0) {
		t.Errorf("support ordering wrong: single=%v, m6=%v", single, m6sup)
	}
}
