package window

// Worst-case microbenchmarks for the matching core (ISSUE 5): the dense
// same-label hub saturates the per-vertex match cap so every insert pays
// the full grow + join fan-out, and BenchmarkTryJoin isolates one
// match-pair join. Before/after numbers are recorded in EXPERIMENTS.md
// ("Matching-core microbenchmarks"); CI runs the hub bench as a smoke.

import (
	"testing"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// hubTrie matches an all-same-label star workload: every edge passes the
// single-edge gate, every pair of hub matches is a join candidate, and
// sub-stars of every size are motifs — the join loop's worst case.
func hubTrie(b testing.TB, spokes int) *tpstry.Trie {
	b.Helper()
	leaves := make([]graph.Label, spokes)
	for i := range leaves {
		leaves[i] = "a"
	}
	trie := tpstry.New(signature.NewScheme(signature.DefaultP, 7))
	if err := trie.AddQuery(pattern.Star("a", leaves...), 1); err != nil {
		b.Fatal(err)
	}
	return trie
}

// spokeEdge returns the i-th hub spoke as a stream edge (hub vertex 1).
func spokeEdge(i int) graph.StreamEdge {
	return graph.StreamEdge{U: 1, LU: "a", V: graph.VertexID(i + 2), LV: "a"}
}

// BenchmarkInsertDenseHub measures inserting one spoke into a window whose
// hub vertex has already saturated DefaultMaxMatchesPerVertex: the insert
// pays the grow pass over the hub's full matchList plus the quadratic
// join pass, and the following removal restores the window, so every
// iteration sees the identical saturated state.
func BenchmarkInsertDenseHub(b *testing.B) {
	const warm = 48 // spokes pre-inserted; saturates the cap at 4-edge motifs
	w := NewMatcher(hubTrie(b, 4), 0.1, 1<<20)
	for i := 0; i < warm; i++ {
		if err := w.Insert(spokeEdge(i)); err != nil {
			b.Fatal(err)
		}
	}
	probe := spokeEdge(warm)
	ui := w.verts.Intern(int64(probe.U))
	vi := w.verts.Intern(int64(probe.V))
	remove := []IEdge{IEdge{ui, vi}.norm()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Insert(probe); err != nil {
			b.Fatal(err)
		}
		w.RemoveIEdges(remove)
	}
}

// BenchmarkTryJoin isolates one join attempt between two overlapping hub
// matches (Alg. 2 lines 11–18): remaining-edge computation, recursive
// grow along trie links, and the duplicate-match rejection in addMatch.
func BenchmarkTryJoin(b *testing.B) {
	w := NewMatcher(hubTrie(b, 4), 0.1, 1<<20)
	for i := 0; i < 6; i++ {
		if err := w.Insert(spokeEdge(i)); err != nil {
			b.Fatal(err)
		}
	}
	// Pick two 2-edge star matches at the hub with disjoint leaves; their
	// join is a 4-edge star, the largest motif.
	var m1, m2 *Match
	for _, m := range w.byVertex[0] { // dense index 0 = hub (first interned)
		if len(m.iedges) != 2 {
			continue
		}
		if m1 == nil {
			m1 = m
			continue
		}
		if m2 == nil && disjointLeaves(m1, m) {
			m2 = m
			break
		}
	}
	if m1 == nil || m2 == nil {
		b.Fatal("hub matches not found")
	}
	// First call creates the joined match; steady state is the dedup hit.
	w.tryJoin(m1, m2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.tryJoin(m1, m2)
	}
}

// disjointLeaves reports whether two hub matches share no spoke edge.
func disjointLeaves(a, c *Match) bool {
	for _, e := range a.iedges {
		for _, f := range c.iedges {
			if e == f {
				return false
			}
		}
	}
	return true
}
