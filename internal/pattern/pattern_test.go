package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/signature"
)

// fig1G rebuilds the data graph G of Fig. 1 (two 4-paths a-b-c-d and
// b-a-d-c joined vertically).
func fig1G(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	labels := map[graph.VertexID]graph.Label{
		1: "a", 2: "b", 3: "c", 4: "d",
		5: "b", 6: "a", 7: "d", 8: "c",
	}
	for v := graph.VertexID(1); v <= 8; v++ {
		if err := g.AddVertex(v, labels[v]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8}, {U: 1, V: 5}, {U: 2, V: 6}, {U: 3, V: 7}, {U: 4, V: 8}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestQ2MatchesFromPaper(t *testing.T) {
	// §1: "the query graph q2 matches the subgraphs {(1,2),(2,3)} and
	// {(6,2),(2,3)} in G", where q2 = a-b-c.
	g := fig1G(t)
	q2 := Path("a", "b", "c")
	matches, err := FindMatches(g, q2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %d (%v), want 2", len(matches), matches)
	}
	want := map[string]bool{}
	for _, m := range matches {
		if len(m) != 2 {
			t.Fatalf("match with %d edges, want 2", len(m))
		}
		want[m[0].String()+m[1].String()] = true
	}
	if !want["(1,2)(2,3)"] || !want["(2,6)(2,3)"] && !want["(2,3)(2,6)"] {
		t.Errorf("unexpected match set: %v", matches)
	}
}

func TestEmbeddingsRespectLabels(t *testing.T) {
	g := fig1G(t)
	q := Path("a", "b")
	m, err := NewMatcher(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	m.Embeddings(g, Options{}, func(emb Embedding) bool {
		n++
		lu, _ := g.Label(emb[1])
		lv, _ := g.Label(emb[2])
		if lu != "a" || lv != "b" {
			t.Errorf("bad labels %s-%s", lu, lv)
		}
		if !g.HasEdge(emb[1], emb[2]) {
			t.Errorf("embedding maps to non-edge")
		}
		return true
	})
	// a-b edges in G: (1,2), (2,6), (5,6), (1,5). Each has exactly one
	// embedding per direction constraint (pattern vertices are typed a,b
	// so each a-b edge yields exactly 1 embedding).
	if n != 4 {
		t.Errorf("a-b embeddings = %d, want 4", n)
	}
}

func TestEmbeddingLimit(t *testing.T) {
	g := fig1G(t)
	m, err := NewMatcher(Path("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	m.Embeddings(g, Options{Limit: 2}, func(Embedding) bool { n++; return true })
	if n != 2 {
		t.Errorf("limited embeddings = %d, want 2", n)
	}
}

func TestTraversalHook(t *testing.T) {
	g := fig1G(t)
	m, err := NewMatcher(Path("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	walked := 0
	m.Embeddings(g, Options{OnTraverse: func(from, to graph.VertexID) {
		if !g.HasEdge(from, to) {
			t.Errorf("hook on non-edge %d-%d", from, to)
		}
		walked++
	}}, func(Embedding) bool { return true })
	if walked == 0 {
		t.Error("traversal hook never fired")
	}
}

func TestMatcherRejectsDegeneratePatterns(t *testing.T) {
	g := graph.New()
	if err := g.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMatcher(g); err == nil {
		t.Error("edgeless pattern: want error")
	}
	// Disconnected pattern.
	d := graph.New()
	for v, l := range map[graph.VertexID]graph.Label{1: "a", 2: "b", 3: "a", 4: "b"} {
		if err := d.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMatcher(d); err == nil {
		t.Error("disconnected pattern: want error")
	}
}

func TestIsomorphicBasics(t *testing.T) {
	// a-b-c vs c-b-a: isomorphic (the §2.1 motivating example).
	if !Isomorphic(Path("a", "b", "c"), Path("c", "b", "a")) {
		t.Error("a-b-c ≅ c-b-a")
	}
	// Different labels.
	if Isomorphic(Path("a", "b", "c"), Path("a", "b", "d")) {
		t.Error("a-b-c ≇ a-b-d")
	}
	// Path vs star with same label histogram: b-a, b-a edges.
	pathG := Path("a", "b", "a") // edges ab, ba; degrees 1,2,1
	starG := Star("a", "b", "b") // hmm labels differ; build explicit
	_ = starG
	tri := Triangle("a", "b", "c")
	if Isomorphic(pathG, tri) {
		t.Error("path ≇ triangle")
	}
	// Cycle rotations are isomorphic.
	if !Isomorphic(Cycle("a", "b", "a", "b"), Cycle("b", "a", "b", "a")) {
		t.Error("4-cycle rotations must be isomorphic")
	}
}

func TestIsomorphicDegreeSequenceGate(t *testing.T) {
	// Same labels and edge count, different degree sequence:
	// path a-a-a-a vs star a(a,a,a).
	p := Path("a", "a", "a", "a")
	s := Star("a", "a", "a", "a")
	if p.NumEdges() != s.NumEdges() {
		t.Fatalf("setup: %d vs %d edges", p.NumEdges(), s.NumEdges())
	}
	if Isomorphic(p, s) {
		t.Error("path4 ≇ star4")
	}
}

func TestIsomorphicSignatureAgreementProperty(t *testing.T) {
	// For random small graph pairs: if graphs are isomorphic their
	// signatures must match (no false negatives). This is the signature
	// scheme's core guarantee, cross-validated against the exact matcher.
	s := signature.NewScheme(signature.DefaultP, 12345)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomConnected(r, 2+r.Intn(6), r.Intn(4))
		b := relabelRandomly(r, a)
		if !Isomorphic(a, b) {
			return false // relabelling is an isomorphism by construction
		}
		return s.SignatureOf(a).Equal(s.SignatureOf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSignatureFalsePositiveRate(t *testing.T) {
	// Generate random non-isomorphic graph pairs and measure how often
	// signatures collide. §2.3 argues this is negligible at p = 251 for
	// small query graphs; allow a generous bound to keep the test stable.
	s := signature.NewScheme(signature.DefaultP, 999)
	r := rand.New(rand.NewSource(4242))
	pairs, collisions := 0, 0
	for i := 0; i < 400; i++ {
		a := randomConnected(r, 2+r.Intn(6), r.Intn(5))
		b := randomConnected(r, 2+r.Intn(6), r.Intn(5))
		if Isomorphic(a, b) {
			continue
		}
		pairs++
		if s.SignatureOf(a).Equal(s.SignatureOf(b)) {
			collisions++
		}
	}
	if pairs < 100 {
		t.Fatalf("too few non-isomorphic pairs: %d", pairs)
	}
	rate := float64(collisions) / float64(pairs)
	if rate > 0.02 {
		t.Errorf("signature false positive rate = %.4f (%d/%d), want <= 0.02", rate, collisions, pairs)
	}
}

func TestCountEmbeddings(t *testing.T) {
	g := fig1G(t)
	// q1 (a-b-a-b cycle) embeds onto the cycle 1-2-6-5: 1a,2b,6a,5b.
	// Count includes automorphic variants (4 rotations × 2 reflections = 8
	// for a 4-cycle with alternating labels... label constraint halves it:
	// a-vertices {1,6} can map 2 ways × b-vertices 2 ways × orientation —
	// exact count asserted from first principles below).
	q := Cycle("a", "b", "a", "b")
	n, err := CountEmbeddings(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The only 4-cycle with alternating a/b labels is 1-2-6-5. Its
	// automorphism-induced embedding count for a labelled 4-cycle pattern
	// is 4 (choice of image for pattern vertex 1 among {1,6} × direction
	// 2) — verify non-zero and divisible by 4.
	if n == 0 || n%4 != 0 {
		t.Errorf("embeddings of q1 = %d, want positive multiple of 4", n)
	}
}

func TestFromEdgesAndBuilders(t *testing.T) {
	q := FromEdges(
		LabelledEdge{1, "Paper", 2, "Person"},
		LabelledEdge{2, "Person", 3, "Paper"},
	)
	if q.NumVertices() != 3 || q.NumEdges() != 2 {
		t.Fatalf("FromEdges bad shape: %v", q)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate edge should panic")
		}
	}()
	FromEdges(LabelledEdge{1, "a", 2, "b"}, LabelledEdge{2, "b", 1, "a"})
}

// randomConnected builds a connected random labelled graph.
func randomConnected(r *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New()
	alphabet := []graph.Label{"a", "b", "c"}
	for v := 0; v < n; v++ {
		if err := g.AddVertex(graph.VertexID(v), alphabet[r.Intn(len(alphabet))]); err != nil {
			panic(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := g.AddEdge(graph.VertexID(r.Intn(v)), graph.VertexID(v)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// relabelRandomly returns an isomorphic copy of g with permuted IDs and
// shuffled edge insertion order.
func relabelRandomly(r *rand.Rand, g *graph.Graph) *graph.Graph {
	ids := g.Vertices()
	perm := r.Perm(len(ids))
	mapping := make(map[graph.VertexID]graph.VertexID, len(ids))
	out := graph.New()
	for i, v := range ids {
		nv := graph.VertexID(500 + perm[i])
		mapping[v] = nv
		if err := out.AddVertex(nv, g.MustLabel(v)); err != nil {
			panic(err)
		}
	}
	edges := g.Edges()
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if err := out.AddEdge(mapping[e.U], mapping[e.V]); err != nil {
			panic(err)
		}
	}
	return out
}
