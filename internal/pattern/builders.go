package pattern

import (
	"fmt"

	"loom/internal/graph"
)

// Builders for the small query graphs that make up workloads. Vertices are
// numbered 1..n in construction order, so the shapes are deterministic and
// easy to reference from tests.

// Path returns the path graph l1 - l2 - … - ln. At least two labels are
// required (a pattern needs an edge).
func Path(labels ...graph.Label) *graph.Graph {
	if len(labels) < 2 {
		panic("pattern: Path needs at least 2 labels")
	}
	g := graph.New()
	for i, l := range labels {
		mustAddVertex(g, graph.VertexID(i+1), l)
	}
	for i := 1; i < len(labels); i++ {
		mustAddEdge(g, graph.VertexID(i), graph.VertexID(i+1))
	}
	return g
}

// Cycle returns the cycle l1 - l2 - … - ln - l1. At least three labels are
// required.
func Cycle(labels ...graph.Label) *graph.Graph {
	if len(labels) < 3 {
		panic("pattern: Cycle needs at least 3 labels")
	}
	g := Path(labels...)
	mustAddEdge(g, graph.VertexID(len(labels)), 1)
	return g
}

// Star returns a star with the given centre label and one leaf per leaf
// label. The centre is vertex 1.
func Star(centre graph.Label, leaves ...graph.Label) *graph.Graph {
	if len(leaves) < 1 {
		panic("pattern: Star needs at least 1 leaf")
	}
	g := graph.New()
	mustAddVertex(g, 1, centre)
	for i, l := range leaves {
		id := graph.VertexID(i + 2)
		mustAddVertex(g, id, l)
		mustAddEdge(g, 1, id)
	}
	return g
}

// Triangle returns the 3-cycle with the given labels.
func Triangle(a, b, c graph.Label) *graph.Graph { return Cycle(a, b, c) }

// FromEdges builds a pattern graph from explicit labelled edges, where each
// edge is {u, lu, v, lv}. Convenient for irregular shapes like Fig. 6's
// provenance and collaboration queries.
type LabelledEdge struct {
	U  graph.VertexID
	LU graph.Label
	V  graph.VertexID
	LV graph.Label
}

// FromEdges assembles a pattern from labelled edges. Duplicate edges are an
// error: query graphs are simple.
func FromEdges(edges ...LabelledEdge) *graph.Graph {
	g := graph.New()
	for _, e := range edges {
		added, err := g.EnsureEdge(e.U, e.LU, e.V, e.LV)
		if err != nil {
			panic(fmt.Sprintf("pattern: %v", err))
		}
		if !added {
			panic(fmt.Sprintf("pattern: duplicate or degenerate edge %d-%d", e.U, e.V))
		}
	}
	return g
}

func mustAddVertex(g *graph.Graph, id graph.VertexID, l graph.Label) {
	if err := g.AddVertex(id, l); err != nil {
		panic(fmt.Sprintf("pattern: %v", err))
	}
}

func mustAddEdge(g *graph.Graph, u, v graph.VertexID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(fmt.Sprintf("pattern: %v", err))
	}
}
