package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func TestIsomorphicMultiComponent(t *testing.T) {
	// Two components each: {a-b path, c-d path} vs the same pair in the
	// other insertion order — isomorphic. vs {a-b, c-c}: not.
	build := func(pairs [][2]graph.Label) *graph.Graph {
		g := graph.New()
		id := graph.VertexID(1)
		for _, p := range pairs {
			u, v := id, id+1
			id += 2
			if err := g.AddVertex(u, p[0]); err != nil {
				t.Fatal(err)
			}
			if err := g.AddVertex(v, p[1]); err != nil {
				t.Fatal(err)
			}
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	a := build([][2]graph.Label{{"a", "b"}, {"c", "d"}})
	b := build([][2]graph.Label{{"c", "d"}, {"a", "b"}})
	c := build([][2]graph.Label{{"a", "b"}, {"c", "c"}})
	if !Isomorphic(a, b) {
		t.Error("component order must not matter")
	}
	if Isomorphic(a, c) {
		t.Error("different component labels must not match")
	}
	// Component-count mismatch.
	d := build([][2]graph.Label{{"a", "b"}})
	if Isomorphic(a, d) {
		t.Error("different sizes must not match")
	}
}

func TestIsomorphicEdgelessGraphs(t *testing.T) {
	mk := func(labels ...graph.Label) *graph.Graph {
		g := graph.New()
		for i, l := range labels {
			if err := g.AddVertex(graph.VertexID(i+1), l); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	if !Isomorphic(mk("a", "b"), mk("b", "a")) {
		t.Error("edgeless graphs with same label histogram are isomorphic")
	}
	if Isomorphic(mk("a", "a"), mk("a", "b")) {
		t.Error("different histograms must not match")
	}
	if !Isomorphic(mk(), mk()) {
		t.Error("two empty graphs are isomorphic")
	}
}

func TestMatcherSearchOrderIsConnected(t *testing.T) {
	// For any connected pattern, each non-anchor vertex in the search
	// order must have at least one previously ordered neighbour.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomConnected(r, 2+r.Intn(7), r.Intn(6))
		m, err := NewMatcher(q)
		if err != nil {
			return false
		}
		for i := 1; i < len(m.order); i++ {
			if len(m.anchored[i]) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMatcherAnchorIsHighestDegree(t *testing.T) {
	q := Star("h", "a", "a", "a")
	m, err := NewMatcher(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Label(m.order[0]); got != "h" {
		t.Errorf("anchor label = %s, want the hub", got)
	}
}

func TestEmbeddingsOnEmptyGraph(t *testing.T) {
	g := graph.New()
	m, err := NewMatcher(Path("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	m.Embeddings(g, Options{}, func(Embedding) bool { n++; return true })
	if n != 0 {
		t.Errorf("embeddings in empty graph = %d", n)
	}
}

func TestEmbeddingsEarlyAbort(t *testing.T) {
	g := fig1G(t)
	m, err := NewMatcher(Path("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	m.Embeddings(g, Options{}, func(Embedding) bool {
		n++
		return false // abort after the first
	})
	if n != 1 {
		t.Errorf("yield false did not abort: %d", n)
	}
}

func TestFindMatchesLimit(t *testing.T) {
	g := fig1G(t)
	ms, err := FindMatches(g, Path("a", "b"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Errorf("limited matches = %d, want 2", len(ms))
	}
}

func TestCountEmbeddingsErrors(t *testing.T) {
	g := fig1G(t)
	bad := graph.New()
	if err := bad.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := CountEmbeddings(g, bad, 0); err == nil {
		t.Error("edgeless pattern: want error")
	}
	if _, err := FindMatches(g, bad, 0); err == nil {
		t.Error("edgeless pattern: want error")
	}
}

func TestTriangleMatching(t *testing.T) {
	// Triangles require the multi-anchor adjacency check (the candidate
	// must connect to BOTH previously mapped vertices).
	g := graph.New()
	for v, l := range map[graph.VertexID]graph.Label{1: "a", 2: "b", 3: "c", 4: "c"} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}, {U: 2, V: 4}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	// 1-2-3 closes a triangle; 1-2-4 does not.
	ms, err := FindMatches(g, Triangle("a", "b", "c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("triangle matches = %d (%v), want 1", len(ms), ms)
	}
	if len(ms[0]) != 3 {
		t.Errorf("triangle match has %d edges", len(ms[0]))
	}
}

func TestMatchesAgreeWithBruteForceProperty(t *testing.T) {
	// FindMatches against a naive "check every vertex subset" counter on
	// small graphs: for the a-b pattern, matches == a-b edges.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 2+r.Intn(6), r.Intn(8))
		ms, err := FindMatches(g, Path("a", "b"), 0)
		if err != nil {
			return false
		}
		want := 0
		for _, e := range g.Edges() {
			lu, lv := g.EdgeLabels(e)
			if (lu == "a" && lv == "b") || (lu == "b" && lv == "a") {
				want++
			}
		}
		return len(ms) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmbeddingEdges(t *testing.T) {
	g := fig1G(t)
	q := Path("a", "b", "c")
	m, err := NewMatcher(q)
	if err != nil {
		t.Fatal(err)
	}
	m.Embeddings(g, Options{Limit: 1}, func(emb Embedding) bool {
		edges := EmbeddingEdges(q, emb)
		if len(edges) != 2 {
			t.Fatalf("embedding edges = %d", len(edges))
		}
		for _, e := range edges {
			if !g.HasEdge(e.U, e.V) {
				t.Errorf("edge %v not in graph", e)
			}
		}
		return false
	})
}
