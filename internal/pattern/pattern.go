// Package pattern provides exact sub-graph pattern matching over labelled
// graphs: enumeration of the embeddings of a small query graph q in a data
// graph G, per the definition in §1.3 of the Loom paper (a bijection from a
// sub-graph's vertices to q's vertices preserving edges and labels).
//
// Loom itself matches motifs probabilistically with signatures; this
// package is the authoritative matcher used to (a) execute query workloads
// when measuring inter-partition traversals, and (b) validate the
// signature scheme in tests (no false negatives, rare false positives).
package pattern

import (
	"fmt"
	"sort"

	"loom/internal/graph"
)

// Embedding maps pattern vertices to data-graph vertices. It is injective
// and label- and edge-preserving by construction.
type Embedding map[graph.VertexID]graph.VertexID

// Matcher enumerates embeddings of one pattern graph. Building a Matcher
// precomputes a connected search order with degree information, so a
// Matcher can be reused across many data graphs (the workload executor
// matches the same query patterns against every partitioned graph).
type Matcher struct {
	q     *graph.Graph
	order []graph.VertexID // search order: order[0] is the anchor
	// anchored[i] lists, for order[i], the already-ordered pattern
	// neighbours (indices < i). Non-empty for i > 0 because patterns are
	// connected.
	anchored [][]graph.VertexID
}

// NewMatcher prepares a matcher for pattern q. The pattern must be
// connected and have at least one edge; pattern matching queries in the
// paper are connected traversal patterns.
func NewMatcher(q *graph.Graph) (*Matcher, error) {
	if q.NumEdges() == 0 {
		return nil, fmt.Errorf("pattern: query graph has no edges")
	}
	if !graph.IsConnected(q) {
		return nil, fmt.Errorf("pattern: query graph must be connected")
	}

	// Greedy connected search order: start from a highest-degree vertex
	// (most selective anchor), then repeatedly add the unordered vertex
	// with the most ordered neighbours (ties: higher degree, lower ID).
	vertices := q.Vertices()
	start := vertices[0]
	for _, v := range vertices {
		if q.Degree(v) > q.Degree(start) || (q.Degree(v) == q.Degree(start) && v < start) {
			start = v
		}
	}
	ordered := map[graph.VertexID]bool{start: true}
	order := []graph.VertexID{start}
	var qns []graph.VertexID
	for len(order) < len(vertices) {
		var best graph.VertexID
		bestScore := -1
		for _, v := range vertices {
			if ordered[v] {
				continue
			}
			score := 0
			qns = q.Neighbors(v, qns[:0])
			for _, n := range qns {
				if ordered[n] {
					score++
				}
			}
			if score > bestScore ||
				(score == bestScore && (q.Degree(v) > q.Degree(best) || (q.Degree(v) == q.Degree(best) && v < best))) {
				best, bestScore = v, score
			}
		}
		ordered[best] = true
		order = append(order, best)
	}

	anchored := make([][]graph.VertexID, len(order))
	pos := make(map[graph.VertexID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		qns = q.Neighbors(v, qns[:0])
		for _, n := range qns {
			if pos[n] < i {
				anchored[i] = append(anchored[i], n)
			}
		}
		sort.Slice(anchored[i], func(a, b int) bool { return anchored[i][a] < anchored[i][b] })
	}
	return &Matcher{q: q, order: order, anchored: anchored}, nil
}

// Pattern returns the query graph the matcher was built for.
func (m *Matcher) Pattern() *graph.Graph { return m.q }

// Options configures an enumeration run.
type Options struct {
	// Limit caps the number of embeddings yielded; 0 means unlimited.
	Limit int
	// OnTraverse, when non-nil, is invoked for every data-graph edge the
	// matcher walks while extending partial matches (from an already
	// mapped vertex to a candidate neighbour). The workload executor uses
	// this to count traversal-level partition crossings, the paper's ipt
	// cost model: each edge walk between machines is one network hop.
	OnTraverse func(from, to graph.VertexID)
}

// Embeddings enumerates embeddings of the pattern in g, invoking yield for
// each one. The Embedding passed to yield is reused between calls; copy it
// if retained. Enumeration stops early when yield returns false or the
// option limit is reached.
func (m *Matcher) Embeddings(g *graph.Graph, opt Options, yield func(Embedding) bool) {
	assign := make(Embedding, len(m.order))
	used := make(map[graph.VertexID]bool, len(m.order))
	count := 0
	// One neighbour scratch per recursion depth: the loop at depth d keeps
	// iterating its decoded list while deeper levels decode into their own.
	scratch := make([][]graph.VertexID, len(m.order))

	var rec func(depth int) bool // returns false to abort entirely
	rec = func(depth int) bool {
		if depth == len(m.order) {
			count++
			if !yield(assign) {
				return false
			}
			return opt.Limit == 0 || count < opt.Limit
		}
		pv := m.order[depth]
		want, _ := m.q.Label(pv)

		if depth == 0 {
			for _, dv := range g.Vertices() {
				if l, _ := g.Label(dv); l != want {
					continue
				}
				if g.Degree(dv) < m.q.Degree(pv) {
					continue
				}
				assign[pv] = dv
				used[dv] = true
				ok := rec(depth + 1)
				delete(assign, pv)
				delete(used, dv)
				if !ok {
					return false
				}
			}
			return true
		}

		// Candidates: neighbours of the first anchored image; validate
		// against all anchors.
		anchors := m.anchored[depth]
		base := assign[anchors[0]]
		ns := g.Neighbors(base, scratch[depth][:0])
		scratch[depth] = ns
		for _, dv := range ns {
			if opt.OnTraverse != nil {
				opt.OnTraverse(base, dv)
			}
			if used[dv] {
				continue
			}
			if l, _ := g.Label(dv); l != want {
				continue
			}
			if g.Degree(dv) < m.q.Degree(pv) {
				continue
			}
			ok := true
			for _, a := range anchors[1:] {
				if !g.HasEdge(assign[a], dv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[pv] = dv
			used[dv] = true
			cont := rec(depth + 1)
			delete(assign, pv)
			delete(used, dv)
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
}

// EmbeddingEdges returns the data-graph edges of an embedding: for every
// pattern edge (a,b), the edge (f(a), f(b)) in normalised order.
func EmbeddingEdges(q *graph.Graph, emb Embedding) []graph.Edge {
	edges := make([]graph.Edge, 0, q.NumEdges())
	for _, e := range q.Edges() {
		edges = append(edges, graph.Edge{U: emb[e.U], V: emb[e.V]}.Norm())
	}
	return edges
}

// Match is a distinct matched sub-graph: a canonical (sorted) edge set.
type Match []graph.Edge

// key returns a canonical string for deduplicating matches that differ only
// by pattern automorphism.
func (mt Match) key() string {
	out := make([]byte, 0, len(mt)*16)
	for _, e := range mt {
		out = append(out, byte(e.U), byte(e.U>>8), byte(e.U>>16), byte(e.U>>24),
			byte(e.V), byte(e.V>>8), byte(e.V>>16), byte(e.V>>24))
	}
	return string(out)
}

// FindMatches returns the distinct sub-graphs of g matching q (deduplicated
// across pattern automorphisms), capped at limit when limit > 0.
func FindMatches(g, q *graph.Graph, limit int) ([]Match, error) {
	m, err := NewMatcher(q)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []Match
	m.Embeddings(g, Options{}, func(emb Embedding) bool {
		edges := EmbeddingEdges(q, emb)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
		k := Match(edges).key()
		if seen[k] {
			return true
		}
		seen[k] = true
		out = append(out, Match(edges))
		return limit == 0 || len(out) < limit
	})
	return out, nil
}

// CountEmbeddings returns the number of embeddings (not deduplicated) of q
// in g, up to limit (0 = unlimited).
func CountEmbeddings(g, q *graph.Graph, limit int) (int, error) {
	m, err := NewMatcher(q)
	if err != nil {
		return 0, err
	}
	n := 0
	m.Embeddings(g, Options{Limit: limit}, func(Embedding) bool {
		n++
		return true
	})
	return n, nil
}

// Isomorphic reports whether two labelled graphs are isomorphic. Both must
// be simple; the check is exact (backtracking) and intended for the small
// graphs that appear in query workloads and TPSTry++ nodes. Fast paths
// reject on vertex/edge counts, label histograms and degree sequences.
func Isomorphic(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.NumVertices() == 0 {
		return true
	}
	ha, hb := a.LabelHistogram(), b.LabelHistogram()
	if len(ha) != len(hb) {
		return false
	}
	for l, n := range ha {
		if hb[l] != n {
			return false
		}
	}
	if !degreeSeqEqual(a, b) {
		return false
	}
	if a.NumEdges() == 0 {
		// Same label histogram, no edges: isomorphic.
		return true
	}
	// A label/edge-preserving injective embedding of a into b with
	// |V(a)| = |V(b)| and |E(a)| = |E(b)| is necessarily bijective on
	// edges too, hence an isomorphism — provided a is connected. For
	// disconnected graphs, match component by component.
	compsA := graph.ConnectedComponents(a)
	if len(compsA) > 1 {
		return isomorphicMultiComponent(a, b, compsA)
	}
	m, err := NewMatcher(a)
	if err != nil {
		return false
	}
	found := false
	m.Embeddings(b, Options{Limit: 1}, func(Embedding) bool {
		found = true
		return false
	})
	return found
}

func degreeSeqEqual(a, b *graph.Graph) bool {
	da := degreeSeq(a)
	db := degreeSeq(b)
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

func degreeSeq(g *graph.Graph) []int {
	out := make([]int, 0, g.NumVertices())
	for _, v := range g.Vertices() {
		out = append(out, g.Degree(v))
	}
	sort.Ints(out)
	return out
}

// isomorphicMultiComponent greedily matches components of a against
// components of b. Greedy matching with backtracking over component
// assignments; component counts are tiny for the graphs this library sees.
func isomorphicMultiComponent(a, b *graph.Graph, compsA [][]graph.VertexID) bool {
	compsB := graph.ConnectedComponents(b)
	if len(compsA) != len(compsB) {
		return false
	}
	subA := make([]*graph.Graph, len(compsA))
	subB := make([]*graph.Graph, len(compsB))
	for i, c := range compsA {
		subA[i] = inducedByVertices(a, c)
	}
	for i, c := range compsB {
		subB[i] = inducedByVertices(b, c)
	}
	usedB := make([]bool, len(subB))
	var match func(i int) bool
	match = func(i int) bool {
		if i == len(subA) {
			return true
		}
		for j := range subB {
			if usedB[j] {
				continue
			}
			if Isomorphic(subA[i], subB[j]) {
				usedB[j] = true
				if match(i + 1) {
					return true
				}
				usedB[j] = false
			}
		}
		return false
	}
	return match(0)
}

func inducedByVertices(g *graph.Graph, vs []graph.VertexID) *graph.Graph {
	in := make(map[graph.VertexID]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	sub := graph.New()
	for _, v := range vs {
		if err := sub.AddVertex(v, g.MustLabel(v)); err != nil {
			panic(err)
		}
	}
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			if err := sub.AddEdge(e.U, e.V); err != nil {
				panic(err)
			}
		}
	}
	return sub
}
