package workload

import (
	"fmt"
	"sort"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
)

// CostModel selects how inter-partition traversals are counted when a
// workload executes over a partitioning.
type CostModel int

const (
	// EmbeddingCrossings counts, for every distinct matched sub-graph of
	// every query, the number of its edges whose endpoints live in
	// different partitions, weighted by query frequency. This is the
	// implementation-independent reading of §5's ipt: each cut edge of a
	// result must be traversed across machines to assemble the match.
	EmbeddingCrossings CostModel = iota
	// TraversalCrossings instruments the matcher's actual exploration:
	// every adjacency step it takes from vertex u to v with different
	// partitions costs one ipt, including steps on partial matches that
	// later fail. Closer to a real engine's behaviour, but dependent on
	// the matcher's candidate order; Figs. 7–9 use EmbeddingCrossings.
	TraversalCrossings
)

// Options configures workload execution.
type Options struct {
	// Model picks the ipt cost model (default EmbeddingCrossings).
	Model CostModel
	// MaxMatchesPerQuery caps enumeration per query; 0 means the default
	// of 2_000_000. The cap is deterministic for a given graph, so all
	// partitioners are scored on the same match set.
	MaxMatchesPerQuery int
	// CountWindowAsPartition treats unassigned vertices as one extra
	// partition Ptemp (§3) rather than excluding them. Default true
	// behaviour is implicit: partition.Assignment.Of returns Unassigned
	// (-1) which simply compares unequal to any real partition.
}

// QueryStats reports one query's execution over a partitioning.
type QueryStats struct {
	Name string
	// Matches is the number of distinct matched sub-graphs enumerated.
	Matches int
	// Crossings is the raw count of inter-partition edges across those
	// matches (or traversal crossings under TraversalCrossings).
	Crossings int
	// WeightedIPT is Crossings × Freq.
	WeightedIPT float64
	// Capped is set when enumeration hit MaxMatchesPerQuery.
	Capped bool
}

// Result aggregates a workload execution.
type Result struct {
	Workload string
	// IPT is the frequency-weighted inter-partition traversal count, the
	// paper's partitioning-quality measure.
	IPT float64
	// RawCrossings is the unweighted total.
	RawCrossings int
	PerQuery     []QueryStats
}

// Execute runs workload w over graph g partitioned by a, counting ipt.
// The same (g, w, options) triple scores different assignments on an
// identical match set, which is what makes the relative comparisons of
// Figs. 7–9 meaningful.
func Execute(g *graph.Graph, a *partition.Assignment, w Workload, opt Options) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	cap := opt.MaxMatchesPerQuery
	if cap == 0 {
		cap = 2_000_000
	}
	res := Result{Workload: w.Name}
	for _, q := range w.Queries {
		qs := QueryStats{Name: q.Name}
		m, err := pattern.NewMatcher(q.Pattern)
		if err != nil {
			return Result{}, fmt.Errorf("workload %q: query %q: %w", w.Name, q.Name, err)
		}
		switch opt.Model {
		case EmbeddingCrossings:
			if err := countEmbeddingCrossings(g, a, q, m, cap, &qs); err != nil {
				return Result{}, err
			}
		case TraversalCrossings:
			countTraversalCrossings(g, a, q, m, cap, &qs)
		default:
			return Result{}, fmt.Errorf("workload: unknown cost model %d", opt.Model)
		}
		qs.WeightedIPT = float64(qs.Crossings) * q.Freq
		res.IPT += qs.WeightedIPT
		res.RawCrossings += qs.Crossings
		res.PerQuery = append(res.PerQuery, qs)
	}
	return res, nil
}

// countEmbeddingCrossings enumerates distinct matched sub-graphs
// (deduplicated across pattern automorphisms) and counts their cut edges.
func countEmbeddingCrossings(g *graph.Graph, a *partition.Assignment, q Query, m *pattern.Matcher, cap int, qs *QueryStats) error {
	seen := make(map[string]struct{})
	qEdges := q.Pattern.Edges()
	buf := make([]graph.Edge, len(qEdges))
	m.Embeddings(g, pattern.Options{}, func(emb pattern.Embedding) bool {
		for i, e := range qEdges {
			buf[i] = graph.Edge{U: emb[e.U], V: emb[e.V]}.Norm()
		}
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].U != buf[j].U {
				return buf[i].U < buf[j].U
			}
			return buf[i].V < buf[j].V
		})
		key := edgesKey(buf)
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		qs.Matches++
		for _, e := range buf {
			if a.Of(e.U) != a.Of(e.V) {
				qs.Crossings++
			}
		}
		if qs.Matches >= cap {
			qs.Capped = true
			return false
		}
		return true
	})
	return nil
}

// countTraversalCrossings instruments the matcher's adjacency walks.
func countTraversalCrossings(g *graph.Graph, a *partition.Assignment, q Query, m *pattern.Matcher, cap int, qs *QueryStats) {
	m.Embeddings(g, pattern.Options{
		Limit: cap,
		OnTraverse: func(from, to graph.VertexID) {
			if a.Of(from) != a.Of(to) {
				qs.Crossings++
			}
		},
	}, func(pattern.Embedding) bool {
		qs.Matches++
		if qs.Matches >= cap {
			qs.Capped = true
			return false
		}
		return true
	})
}

func edgesKey(edges []graph.Edge) string {
	buf := make([]byte, 0, len(edges)*16)
	for _, e := range edges {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(e.U>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(e.V>>(8*i)))
		}
	}
	return string(buf)
}

// RelativeIPT returns r's ipt as a percentage of base's (the presentation
// of Figs. 7 and 8: "how many ipt did a partitioning suffer, as a
// percentage of those suffered by the Hash partitioning"). A zero baseline
// yields 100 (no information).
func RelativeIPT(r, base Result) float64 {
	if base.IPT == 0 {
		return 100
	}
	return 100 * r.IPT / base.IPT
}
