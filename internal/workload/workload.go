// Package workload models query workloads (§1.3: a multiset of pattern
// matching queries with relative frequencies) and executes them over
// partitioned graphs, counting the inter-partition traversals (ipt) that
// define partitioning quality throughout the paper's evaluation.
//
// The workloads follow Fig. 6 and §5.1.2: for LUBM, patterns modelled on the
// benchmark's provided queries; for every other dataset, "a small set of
// common-sense queries which focus on discovering implicit relationships in
// the graph, such as potential collaboration between authors or artists".
package workload

import (
	"fmt"

	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// Query is one pattern with its relative frequency in the workload.
type Query struct {
	Name    string
	Pattern *graph.Graph
	Freq    float64
}

// Workload is a named multiset of queries Q = {(q1,n1) … (qh,nh)}.
type Workload struct {
	Name    string
	Queries []Query
}

// TotalFreq returns the sum of query frequencies (the support normaliser).
func (w Workload) TotalFreq() float64 {
	t := 0.0
	for _, q := range w.Queries {
		t += q.Freq
	}
	return t
}

// Validate checks that the workload is non-empty with positive frequencies
// and connected patterns.
func (w Workload) Validate() error {
	if len(w.Queries) == 0 {
		return fmt.Errorf("workload %q: no queries", w.Name)
	}
	for _, q := range w.Queries {
		if q.Freq <= 0 {
			return fmt.Errorf("workload %q: query %q has non-positive frequency", w.Name, q.Name)
		}
		if q.Pattern.NumEdges() == 0 {
			return fmt.Errorf("workload %q: query %q has no edges", w.Name, q.Name)
		}
		if !graph.IsConnected(q.Pattern) {
			return fmt.Errorf("workload %q: query %q is disconnected", w.Name, q.Name)
		}
	}
	return nil
}

// BuildTrie constructs the TPSTry++ for the workload over the given
// signature scheme.
func (w Workload) BuildTrie(scheme *signature.Scheme) (*tpstry.Trie, error) {
	trie := tpstry.New(scheme)
	for _, q := range w.Queries {
		if err := trie.AddQuery(q.Pattern, q.Freq); err != nil {
			return nil, fmt.Errorf("workload %q: query %q: %w", w.Name, q.Name, err)
		}
	}
	return trie, nil
}

// ForDataset returns the canonical workload for one of the paper's
// datasets.
func ForDataset(name string) (Workload, error) {
	switch name {
	case "dblp":
		return DBLPWorkload(), nil
	case "provgen":
		return ProvGenWorkload(), nil
	case "musicbrainz":
		return MusicBrainzWorkload(), nil
	case "lubm", "lubm-large":
		return LUBMWorkload(), nil
	default:
		return Workload{}, fmt.Errorf("workload: unknown dataset %q", name)
	}
}

// DBLPWorkload mirrors Fig. 6's DBLP example (Person–Paper–Person with a
// citing Paper) plus common-sense co-authorship and venue queries.
func DBLPWorkload() Workload {
	return Workload{
		Name: "dblp",
		Queries: []Query{
			{
				// Co-authors: Person–Paper–Person. The dominant query,
				// whose 2-edge pattern is a motif at T = 40% — the
				// workload skew Loom exploits (§5.1.1).
				Name:    "coauthors",
				Pattern: pattern.Path(dataset.LPerson, dataset.LPaper, dataset.LPerson),
				Freq:    0.35,
			},
			{
				// Fig. 6 (DBLP): two persons linked by papers where one
				// paper cites the other — potential collaboration.
				Name: "potential-collaboration",
				Pattern: pattern.FromEdges(
					pattern.LabelledEdge{U: 1, LU: dataset.LPerson, V: 2, LV: dataset.LPaper},
					pattern.LabelledEdge{U: 2, LU: dataset.LPaper, V: 3, LV: dataset.LPaper},
					pattern.LabelledEdge{U: 3, LU: dataset.LPaper, V: 4, LV: dataset.LPerson},
				),
				Freq: 0.40,
			},
			{
				// Citation chain.
				Name:    "citation-chain",
				Pattern: pattern.Path(dataset.LPaper, dataset.LPaper, dataset.LPaper),
				Freq:    0.15,
			},
			{
				// Venue co-location: authors publishing at the same venue.
				Name:    "venue-community",
				Pattern: pattern.Path(dataset.LPerson, dataset.LPaper, dataset.LVenue),
				Freq:    0.10,
			},
		},
	}
}

// ProvGenWorkload mirrors Fig. 6's ProvGen example (Entity–Activity–Entity)
// plus common PROV lineage queries [5].
func ProvGenWorkload() Workload {
	return Workload{
		Name: "provgen",
		Queries: []Query{
			{
				// Fig. 6 (ProvGen): derivation step through an activity.
				Name:    "derivation-step",
				Pattern: pattern.Path(dataset.LEntity, dataset.LActivity, dataset.LEntity),
				Freq:    0.45,
			},
			{
				// Two-hop derivation chain (regular path query over
				// wasDerivedFrom edges).
				Name:    "derivation-chain",
				Pattern: pattern.Path(dataset.LEntity, dataset.LEntity, dataset.LEntity),
				Freq:    0.25,
			},
			{
				// Responsibility: which agent drove the activity that
				// produced this entity.
				Name:    "attribution",
				Pattern: pattern.Path(dataset.LEntity, dataset.LActivity, dataset.LAgent),
				Freq:    0.20,
			},
			{
				// Same agent across consecutive revisions.
				Name: "agent-continuity",
				Pattern: pattern.FromEdges(
					pattern.LabelledEdge{U: 1, LU: dataset.LActivity, V: 2, LV: dataset.LAgent},
					pattern.LabelledEdge{U: 3, LU: dataset.LActivity, V: 2, LV: dataset.LAgent},
				),
				Freq: 0.10,
			},
		},
	}
}

// MusicBrainzWorkload mirrors Fig. 6's MusicBrainz example (Artist–Label /
// Artist–Area structure) plus artist-collaboration discovery.
func MusicBrainzWorkload() Workload {
	return Workload{
		Name: "musicbrainz",
		Queries: []Query{
			{
				// Collaboration: two artists on one album — the dominant
				// query, whose 2-edge pattern is a motif at T = 40%.
				Name:    "album-collaboration",
				Pattern: pattern.Path(dataset.LArtist, dataset.LAlbum, dataset.LArtist),
				Freq:    0.45,
			},
			{
				// Covers: recordings of the same work.
				Name:    "covers",
				Pattern: pattern.Path(dataset.LRecording, dataset.LWork, dataset.LRecording),
				Freq:    0.25,
			},
			{
				// Fig. 6 (MusicBrainz): artists sharing a label.
				Name:    "label-mates",
				Pattern: pattern.Path(dataset.LArtist, dataset.LLabel, dataset.LArtist),
				Freq:    0.20,
			},
			{
				// Scene: artists from the same area.
				Name:    "local-scene",
				Pattern: pattern.Path(dataset.LArtist, dataset.LArea, dataset.LArtist),
				Freq:    0.10,
			},
		},
	}
}

// LUBMWorkload models the benchmark's provided query mix (§5.1.2: "the LUBM
// dataset provides a set of query patterns which we make use of") at the
// pattern shapes expressible over the undirected labelled graph.
func LUBMWorkload() Workload {
	return Workload{
		Name: "lubm",
		Queries: []Query{
			{
				// LUBM Q1-like: graduate students taking a course from
				// their department's professor.
				Name:    "student-course-prof",
				Pattern: pattern.Path(dataset.LGradStudent, dataset.LGradCourse, dataset.LFullProf),
				Freq:    0.30,
			},
			{
				// LUBM Q2-like: co-authorship of professor and student.
				Name:    "coauthored-publication",
				Pattern: pattern.Path(dataset.LFullProf, dataset.LPublication, dataset.LGradStudent),
				Freq:    0.25,
			},
			{
				// Classmates: two undergraduates sharing a course.
				Name:    "classmates",
				Pattern: pattern.Path(dataset.LUndergrad, dataset.LCourse, dataset.LUndergrad),
				Freq:    0.25,
			},
			{
				// Advisor triangle: student advised by a professor whose
				// publication the student co-authored.
				Name: "advisor-coauthor",
				Pattern: pattern.FromEdges(
					pattern.LabelledEdge{U: 1, LU: dataset.LGradStudent, V: 2, LV: dataset.LFullProf},
					pattern.LabelledEdge{U: 2, LU: dataset.LFullProf, V: 3, LV: dataset.LPublication},
					pattern.LabelledEdge{U: 3, LU: dataset.LPublication, V: 1, LV: dataset.LGradStudent},
				),
				Freq: 0.20,
			},
		},
	}
}
