package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"loom/internal/graph"
)

// JSON serialisation for workloads, used by cmd/loom-partition so that
// users can supply their own query mixes:
//
//	{
//	  "name": "social",
//	  "queries": [
//	    {"name": "coauthors", "freq": 0.6,
//	     "edges": [[1, "Person", 2, "Paper"], [2, "Paper", 3, "Person"]]}
//	  ]
//	}
//
// Each edge is [u, labelU, v, labelV]; vertex IDs are local to the query
// pattern.

type jsonWorkload struct {
	Name    string      `json:"name"`
	Queries []jsonQuery `json:"queries"`
}

type jsonQuery struct {
	Name  string               `json:"name"`
	Freq  float64              `json:"freq"`
	Edges [][4]json.RawMessage `json:"edges"`
}

// ParseJSON reads a workload from JSON.
func ParseJSON(r io.Reader) (Workload, error) {
	var jw jsonWorkload
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jw); err != nil {
		return Workload{}, fmt.Errorf("workload: parse: %w", err)
	}
	w := Workload{Name: jw.Name}
	for qi, jq := range jw.Queries {
		g := graph.New()
		for ei, raw := range jq.Edges {
			var u, v int64
			var lu, lv string
			if err := json.Unmarshal(raw[0], &u); err != nil {
				return Workload{}, fmt.Errorf("workload: query %d edge %d: bad u: %w", qi, ei, err)
			}
			if err := json.Unmarshal(raw[1], &lu); err != nil {
				return Workload{}, fmt.Errorf("workload: query %d edge %d: bad label u: %w", qi, ei, err)
			}
			if err := json.Unmarshal(raw[2], &v); err != nil {
				return Workload{}, fmt.Errorf("workload: query %d edge %d: bad v: %w", qi, ei, err)
			}
			if err := json.Unmarshal(raw[3], &lv); err != nil {
				return Workload{}, fmt.Errorf("workload: query %d edge %d: bad label v: %w", qi, ei, err)
			}
			added, err := g.EnsureEdge(graph.VertexID(u), graph.Label(lu), graph.VertexID(v), graph.Label(lv))
			if err != nil {
				return Workload{}, fmt.Errorf("workload: query %q: %w", jq.Name, err)
			}
			if !added {
				return Workload{}, fmt.Errorf("workload: query %q: duplicate or self-loop edge %d-%d", jq.Name, u, v)
			}
		}
		w.Queries = append(w.Queries, Query{Name: jq.Name, Pattern: g, Freq: jq.Freq})
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// WriteJSON serialises a workload to JSON (indented).
func WriteJSON(w io.Writer, wl Workload) error {
	jw := jsonWorkload{Name: wl.Name}
	for _, q := range wl.Queries {
		jq := jsonQuery{Name: q.Name, Freq: q.Freq}
		for _, e := range q.Pattern.Edges() {
			lu, lv := q.Pattern.EdgeLabels(e)
			var quad [4]json.RawMessage
			for i, val := range []interface{}{int64(e.U), string(lu), int64(e.V), string(lv)} {
				b, err := json.Marshal(val)
				if err != nil {
					return err
				}
				quad[i] = b
			}
			jq.Edges = append(jq.Edges, quad)
		}
		jw.Queries = append(jw.Queries, jq)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jw)
}
