package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, name := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		w, err := ForDataset(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, w); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := ParseJSON(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if back.Name != w.Name || len(back.Queries) != len(w.Queries) {
			t.Fatalf("%s: round trip mismatch", name)
		}
		for i := range w.Queries {
			a, b := w.Queries[i], back.Queries[i]
			if a.Name != b.Name || a.Freq != b.Freq {
				t.Errorf("%s/%s: metadata mismatch", name, a.Name)
			}
			if a.Pattern.NumEdges() != b.Pattern.NumEdges() || a.Pattern.NumVertices() != b.Pattern.NumVertices() {
				t.Errorf("%s/%s: shape mismatch", name, a.Name)
			}
		}
	}
}

func TestParseJSONValid(t *testing.T) {
	in := `{
	  "name": "social",
	  "queries": [
	    {"name": "coauthors", "freq": 0.6,
	     "edges": [[1, "Person", 2, "Paper"], [2, "Paper", 3, "Person"]]}
	  ]
	}`
	w, err := ParseJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "social" || len(w.Queries) != 1 {
		t.Fatalf("parsed %+v", w)
	}
	q := w.Queries[0]
	if q.Pattern.NumVertices() != 3 || q.Pattern.NumEdges() != 2 {
		t.Errorf("pattern shape wrong: %v", q.Pattern)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"nope": 1}`,
		"bad id":        `{"name":"x","queries":[{"name":"q","freq":1,"edges":[["a","A",2,"B"]]}]}`,
		"self loop":     `{"name":"x","queries":[{"name":"q","freq":1,"edges":[[1,"A",1,"A"]]}]}`,
		"zero freq":     `{"name":"x","queries":[{"name":"q","freq":0,"edges":[[1,"A",2,"B"]]}]}`,
		"disconnected":  `{"name":"x","queries":[{"name":"q","freq":1,"edges":[[1,"A",2,"B"],[3,"A",4,"B"]]}]}`,
		"label clash":   `{"name":"x","queries":[{"name":"q","freq":1,"edges":[[1,"A",2,"B"],[1,"Z",3,"C"]]}]}`,
	}
	for name, in := range cases {
		if _, err := ParseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
