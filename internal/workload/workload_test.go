package workload

import (
	"math/rand"
	"testing"

	"loom/internal/core"
	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// newLoomForTest builds a Loom partitioner as a partition.Streamer.
func newLoomForTest(k int, capC float64, win int, trie *tpstry.Trie) (partition.Streamer, error) {
	return core.New(core.Config{K: k, Capacity: capC, WindowSize: win}, trie)
}

func TestCanonicalWorkloadsValidate(t *testing.T) {
	for _, name := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		w, err := ForDataset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		total := w.TotalFreq()
		if total < 0.99 || total > 1.01 {
			t.Errorf("%s: frequencies sum to %v, want ≈ 1", name, total)
		}
		// Patterns should be small (§2: "typically small", footnote:
		// "of the order of 10 edges").
		for _, q := range w.Queries {
			if q.Pattern.NumEdges() > 10 {
				t.Errorf("%s/%s: %d edges, suspiciously large", name, q.Name, q.Pattern.NumEdges())
			}
		}
	}
	if _, err := ForDataset("bogus"); err == nil {
		t.Error("unknown dataset: want error")
	}
}

func TestWorkloadsBuildTries(t *testing.T) {
	for _, name := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		w, err := ForDataset(name)
		if err != nil {
			t.Fatal(err)
		}
		scheme := signature.NewScheme(signature.DefaultP, 1)
		scheme.RegisterLabels(dataset.DatasetLabels(name))
		trie, err := w.BuildTrie(scheme)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if trie.Size() == 0 {
			t.Errorf("%s: empty trie", name)
		}
		// At the paper's default threshold there must be at least one
		// motif, otherwise Loom degenerates to LDG on this workload.
		if len(trie.Motifs(0.40)) == 0 {
			t.Errorf("%s: no motifs at T=40%%", name)
		}
	}
}

func TestValidateRejectsBadWorkloads(t *testing.T) {
	if err := (Workload{Name: "empty"}).Validate(); err == nil {
		t.Error("empty workload: want error")
	}
	w := Workload{Name: "bad", Queries: []Query{{
		Name: "q", Pattern: pattern.Path("a", "b"), Freq: 0,
	}}}
	if err := w.Validate(); err == nil {
		t.Error("zero frequency: want error")
	}
}

// pathGraph builds the Fig. 1 data graph G for hand-computable ipt counts.
func fig1G(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	labels := map[graph.VertexID]graph.Label{
		1: "a", 2: "b", 3: "c", 4: "d",
		5: "b", 6: "a", 7: "d", 8: "c",
	}
	for v := graph.VertexID(1); v <= 8; v++ {
		if err := g.AddVertex(v, labels[v]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 8}, {U: 1, V: 5}, {U: 2, V: 6}, {U: 3, V: 7}, {U: 4, V: 8}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestFig1IPTStory reproduces the paper's §1 motivating numbers: with the
// min-edge-cut partitioning {A,B} = {1,2,3,4},{5,6,7,8}, a workload of only
// q2 = a-b-c suffers one ipt per match ({(1,2),(2,3)} is internal;
// {(2,6),(2,3)} crosses); with A' = {1,2,3,6}, B' = {4,5,7,8} it suffers
// none.
func TestFig1IPTStory(t *testing.T) {
	g := fig1G(t)
	w := Workload{Name: "q2-only", Queries: []Query{{
		Name: "q2", Pattern: pattern.Path("a", "b", "c"), Freq: 1.0,
	}}}

	ab := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{
		1: 0, 2: 0, 3: 0, 4: 0, 5: 1, 6: 1, 7: 1, 8: 1,
	})
	res, err := Execute(g, ab, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerQuery[0].Matches != 2 {
		t.Fatalf("q2 matches = %d, want 2", res.PerQuery[0].Matches)
	}
	if res.IPT != 1 {
		t.Errorf("ipt over {A,B} = %v, want 1 (the (2,6) crossing)", res.IPT)
	}

	aPrime := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{
		1: 0, 2: 0, 3: 0, 6: 0, 4: 1, 5: 1, 7: 1, 8: 1,
	})
	res2, err := Execute(g, aPrime, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.IPT != 0 {
		t.Errorf("ipt over {A',B'} = %v, want 0", res2.IPT)
	}
	if rel := RelativeIPT(res2, res); rel != 0 {
		t.Errorf("relative ipt = %v, want 0", rel)
	}
}

func TestFrequencyWeighting(t *testing.T) {
	g := fig1G(t)
	a := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{
		1: 0, 2: 0, 3: 0, 4: 0, 5: 1, 6: 1, 7: 1, 8: 1,
	})
	w := Workload{Name: "weighted", Queries: []Query{
		{Name: "q2", Pattern: pattern.Path("a", "b", "c"), Freq: 0.6},
		{Name: "ab", Pattern: pattern.Path("a", "b"), Freq: 0.4},
	}}
	res, err := Execute(g, a, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// q2: 1 crossing × 0.6. a-b matches: (1,2),(2,6),(5,6),(1,5) — cut:
	// (2,6) and (1,5) → 2 crossings × 0.4.
	want := 1*0.6 + 2*0.4
	if diff := res.IPT - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("IPT = %v, want %v", res.IPT, want)
	}
}

func TestTraversalModelCountsMore(t *testing.T) {
	g := fig1G(t)
	a := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{
		1: 0, 2: 0, 3: 0, 4: 0, 5: 1, 6: 1, 7: 1, 8: 1,
	})
	w := Workload{Name: "q2", Queries: []Query{{
		Name: "q2", Pattern: pattern.Path("a", "b", "c"), Freq: 1,
	}}}
	emb, err := Execute(g, a, w, Options{Model: EmbeddingCrossings})
	if err != nil {
		t.Fatal(err)
	}
	trav, err := Execute(g, a, w, Options{Model: TraversalCrossings})
	if err != nil {
		t.Fatal(err)
	}
	// The search also pays for crossings on failed partials, so the
	// traversal count dominates the embedding count.
	if trav.IPT < emb.IPT {
		t.Errorf("traversal ipt %v < embedding ipt %v", trav.IPT, emb.IPT)
	}
}

func TestMatchCapIsDeterministic(t *testing.T) {
	g, err := dataset.Generate("provgen", 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	hash := partition.NewHash(4, partition.CapacityFor(g.NumVertices(), 4, 1.1))
	for _, se := range graph.StreamOf(g, graph.OrderOriginal, nil) {
		hash.ProcessEdge(se)
	}
	a := hash.Assignment()
	r1, err := Execute(g, a, w, Options{MaxMatchesPerQuery: 50})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(g, a, w, Options{MaxMatchesPerQuery: 50})
	if err != nil {
		t.Fatal(err)
	}
	if r1.IPT != r2.IPT {
		t.Errorf("capped execution not deterministic: %v vs %v", r1.IPT, r2.IPT)
	}
	for _, q := range r1.PerQuery {
		if q.Matches > 50 {
			t.Errorf("%s: %d matches beyond cap", q.Name, q.Matches)
		}
	}
}

// TestLoomBeatsHashOnProvgen is the end-to-end integration check: a Loom
// partitioning must suffer materially fewer ipt than Hash on a real
// pipeline run (generate → stream → partition → execute).
func TestLoomBeatsHashOnProvgen(t *testing.T) {
	g, err := dataset.Generate("provgen", 4000, 17)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	stream := graph.StreamOf(g, graph.OrderBFS, rand.New(rand.NewSource(1)))

	k := 8
	capC := partition.CapacityFor(g.NumVertices(), k, partition.DefaultImbalance)

	hash := partition.NewHash(k, capC)
	for _, se := range stream {
		hash.ProcessEdge(se)
	}
	hash.Flush()
	hashRes, err := Execute(g, hash.Assignment(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}

	scheme := signature.NewScheme(signature.DefaultP, 1)
	scheme.RegisterLabels(dataset.DatasetLabels("provgen"))
	trie, err := w.BuildTrie(scheme)
	if err != nil {
		t.Fatal(err)
	}
	loomP, err := newLoomForTest(k, capC, 512, trie)
	if err != nil {
		t.Fatal(err)
	}
	for _, se := range stream {
		loomP.ProcessEdge(se)
	}
	loomP.Flush()
	loomRes, err := Execute(g, loomP.Assignment(), w, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if hashRes.IPT == 0 {
		t.Fatal("hash ipt is zero; test graph too small")
	}
	rel := RelativeIPT(loomRes, hashRes)
	if rel > 80 {
		t.Errorf("loom relative ipt = %.1f%% of hash, want < 80%%", rel)
	}
	t.Logf("loom ipt = %.1f%% of hash (%v vs %v)", rel, loomRes.IPT, hashRes.IPT)
}
