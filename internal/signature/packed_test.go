package signature

import (
	"math/rand"
	"testing"
)

func TestPackedDeltaRoundTrip(t *testing.T) {
	cases := []Delta{
		{1, 1, 1},
		{1, 2, 3},
		{250, 250, 251}, // DefaultP regime: factors in [1, 251]
		{MaxPackedFactor, MaxPackedFactor, MaxPackedFactor},
	}
	for _, d := range cases {
		if got := d.Packed().Unpack(); got != d {
			t.Errorf("round trip %v -> %v", d, got)
		}
	}
}

// TestPackedDeltaInjective: distinct deltas must pack to distinct keys —
// the packed child tables rely on equality of PackedDeltas being equality
// of Deltas.
func TestPackedDeltaInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := map[PackedDelta]Delta{}
	for i := 0; i < 20000; i++ {
		d := sortDelta(Delta{
			Factor(rng.Intn(MaxPackedFactor) + 1),
			Factor(rng.Intn(MaxPackedFactor) + 1),
			Factor(rng.Intn(MaxPackedFactor) + 1),
		})
		pk := d.Packed()
		if prev, ok := seen[pk]; ok && prev != d {
			t.Fatalf("collision: %v and %v both pack to %d", prev, d, pk)
		}
		seen[pk] = d
	}
}

// TestPackedOrderMatchesSchemeOutput: deltas produced by a DefaultP scheme
// pack losslessly (every factor is at most p <= MaxPackedFactor).
func TestPackedDeltaFromScheme(t *testing.T) {
	s := NewScheme(DefaultP, 3)
	if !s.Packable() {
		t.Fatalf("DefaultP scheme must be packable")
	}
	for du := 0; du < 5; du++ {
		for dv := 0; dv < 5; dv++ {
			d := s.EdgeDelta("x", du, "y", dv)
			if got := d.Packed().Unpack(); got != d {
				t.Fatalf("scheme delta %v did not round-trip (got %v)", d, got)
			}
		}
	}
}

func TestPackableBound(t *testing.T) {
	if s := NewScheme(MaxPackedFactor, 1); !s.Packable() {
		t.Errorf("p = MaxPackedFactor must be packable")
	}
	if s := NewScheme(MaxPackedFactor+1, 1); s.Packable() {
		t.Errorf("p = MaxPackedFactor+1 must not be packable")
	}
}

// TestDegreeFactorValLargeModulus: the division-free fast path must not
// wrap uint32 when p > 2^31 (review finding on the rebuild).
func TestDegreeFactorValLargeModulus(t *testing.T) {
	const p = 4294967291 // largest 32-bit prime, > 2^31
	s := NewScheme(p, 1)
	for _, tc := range []struct {
		rv uint32
		i  int
	}{
		{p - 2, 7},  // rv+i wraps uint32
		{p - 1, 1},  // lands exactly on p → factor p (footnote 3)
		{3, 5},      // no wrap
		{p - 10, 9}, // just below p
	} {
		got := s.DegreeFactorVal(tc.rv, tc.i)
		want := uint64(tc.rv) + uint64(tc.i)
		if want >= p {
			want -= p
		}
		if want == 0 {
			want = p
		}
		if uint64(got) != want {
			t.Errorf("DegreeFactorVal(%d, %d) = %d, want %d", tc.rv, tc.i, got, want)
		}
	}
}
