// Package signature implements the number-theoretic graph signatures of
// Loom §2.1–2.3, extending Song et al.'s event-pattern-matching signatures.
//
// Each label l ∈ LV is assigned a pseudo-random value r(l) ∈ [1, p) for a
// user-chosen prime p. A graph's signature is then the product of
//
//   - one edge factor per edge:    |r(l(u)) − r(l(v))| (mod p), and
//   - one degree factor per unit of degree: for a vertex v of degree n, the
//     factors ((r(l(v)) + 1) mod p) · … · ((r(l(v)) + n) mod p),
//
// with any zero factor replaced by p (footnote 3 of the paper), giving
// exactly 3|E| factors in total. Two isomorphic graphs always produce the
// same factors (no false negatives); two different graphs rarely do (§2.3
// quantifies the collision probability, reproduced in collision.go).
//
// Loom deviates from Song et al. in one crucial way (§2.3): signatures are
// kept as *multisets of factors* rather than their big-integer product,
// which removes the "two distinct factor sets share a product" collision
// class and lets the TPSTry++ label its edges with compact 3-factor deltas.
// The big-integer product is still available (Product) for tests and to
// reproduce the paper's worked examples.
package signature

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"loom/internal/graph"
)

// DefaultP is the prime modulus Loom uses when identifying and matching
// motifs (§2.3: "we use a p value of 251").
const DefaultP = 251

// Factor is a single signature factor, a value in [1, p] (p stands in for
// zero).
type Factor uint32

// Delta is the multiset of exactly three factors contributed by adding one
// edge to a graph: the edge factor plus one new degree factor per endpoint
// (each endpoint's degree grows by one). Deltas are stored sorted so they
// are directly comparable and usable as map keys (TPSTry++ edge labels).
type Delta [3]Factor

// sortDelta returns d with its factors in ascending order.
func sortDelta(d Delta) Delta {
	if d[0] > d[1] {
		d[0], d[1] = d[1], d[0]
	}
	if d[1] > d[2] {
		d[1], d[2] = d[2], d[1]
	}
	if d[0] > d[1] {
		d[0], d[1] = d[1], d[0]
	}
	return d
}

func (d Delta) String() string { return fmt.Sprintf("Δ%v", [3]Factor(d)) }

// Scheme holds the prime p and the per-label random values r(l). A Scheme
// is deterministic for a given (p, seed) pair: label values are drawn from
// a seeded generator in first-use order, and datasets/workloads register
// labels in a fixed order, so runs are reproducible.
//
// Scheme is not safe for concurrent use; Loom's pipeline is single-threaded
// by design (§6).
type Scheme struct {
	p     uint32
	seed  int64
	rng   *rand.Rand
	draws int // values drawn from rng so far (see CaptureState)
	rvals map[graph.Label]uint32
}

// NewScheme returns a Scheme with prime modulus p, assigning label values
// from a generator seeded with seed. p must be at least 3; the library does
// not verify primality (the paper's analysis assumes a prime, and callers
// use published primes such as 251, 11, 317).
func NewScheme(p uint32, seed int64) *Scheme {
	if p < 3 {
		panic(fmt.Sprintf("signature: modulus p must be >= 3, got %d", p))
	}
	return &Scheme{
		p:     p,
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		rvals: make(map[graph.Label]uint32),
	}
}

// NewSchemeWithValues returns a Scheme with explicit label values, used by
// tests to reproduce the paper's worked examples (p = 11, r(a) = 3,
// r(b) = 10). Values must lie in [1, p).
func NewSchemeWithValues(p uint32, values map[graph.Label]uint32) *Scheme {
	s := NewScheme(p, 0)
	for l, v := range values {
		if v < 1 || v >= p {
			panic(fmt.Sprintf("signature: label value %d out of range [1,%d)", v, p))
		}
		s.rvals[l] = v
	}
	return s
}

// P returns the scheme's modulus.
func (s *Scheme) P() uint32 { return s.p }

// LabelValue returns r(l), assigning a fresh pseudo-random value in [1, p)
// on first use.
func (s *Scheme) LabelValue(l graph.Label) uint32 {
	if v, ok := s.rvals[l]; ok {
		return v
	}
	v := uint32(s.rng.Intn(int(s.p-1))) + 1 // [1, p)
	s.draws++
	s.rvals[l] = v
	return v
}

// SchemeState is the restorable label-value state of a Scheme: every
// assigned r(l) plus the generator position. r-values are drawn in
// first-use order, so the assignment depends on the label arrival history,
// not just (p, seed) — a Scheme rebuilt from the same workload but a
// different stream prefix gives different values to stream-only labels.
// Checkpoints therefore persist this state; Draws lets restore fast-forward
// the generator so labels first seen *after* the checkpoint also draw the
// values the uninterrupted run would have drawn.
type SchemeState struct {
	Labels []graph.Label // sorted, for a deterministic encoding
	Values []uint32      // Values[i] = r(Labels[i])
	Draws  int
}

// CaptureState snapshots the scheme's assigned label values and generator
// position.
func (s *Scheme) CaptureState() SchemeState {
	st := SchemeState{
		Labels: make([]graph.Label, 0, len(s.rvals)),
		Values: make([]uint32, 0, len(s.rvals)),
		Draws:  s.draws,
	}
	for l := range s.rvals {
		st.Labels = append(st.Labels, l)
	}
	sort.Slice(st.Labels, func(i, j int) bool { return st.Labels[i] < st.Labels[j] })
	for _, l := range st.Labels {
		st.Values = append(st.Values, s.rvals[l])
	}
	return st
}

// RestoreState replaces the scheme's label values and generator position
// with a captured snapshot. The scheme must have been built with the same
// (p, seed) as the captured one; values are validated against [1, p).
func (s *Scheme) RestoreState(st SchemeState) error {
	if len(st.Labels) != len(st.Values) {
		return fmt.Errorf("signature: state has %d labels but %d values", len(st.Labels), len(st.Values))
	}
	if st.Draws < 0 {
		return fmt.Errorf("signature: negative draw count %d", st.Draws)
	}
	rvals := make(map[graph.Label]uint32, len(st.Labels))
	for i, l := range st.Labels {
		v := st.Values[i]
		if v < 1 || v >= s.p {
			return fmt.Errorf("signature: label %q value %d out of range [1,%d)", l, v, s.p)
		}
		if _, dup := rvals[l]; dup {
			return fmt.Errorf("signature: duplicate label %q", l)
		}
		rvals[l] = v
	}
	s.rng = rand.New(rand.NewSource(s.seed))
	for i := 0; i < st.Draws; i++ {
		s.rng.Intn(int(s.p - 1))
	}
	s.draws = st.Draws
	s.rvals = rvals
	return nil
}

// nonzero maps a residue in [0, p) to a valid factor in [1, p], replacing 0
// by p per the paper's footnote 3.
func (s *Scheme) nonzero(x uint32) Factor {
	if x == 0 {
		return Factor(s.p)
	}
	return Factor(x)
}

// EdgeFactor returns the factor for an undirected edge between labels lu
// and lv: |r(lu) − r(lv)| with 0 replaced by p. Absolute difference makes
// the subtraction order "consistent" as §2.1 requires, and reproduces the
// paper's worked example ((3, 10) mod 11 → 7).
func (s *Scheme) EdgeFactor(lu, lv graph.Label) Factor {
	a, b := s.LabelValue(lu), s.LabelValue(lv)
	if a < b {
		a, b = b, a
	}
	return s.nonzero((a - b) % s.p)
}

// DirectedEdgeFactor returns the factor for a directed edge src→dst:
// (r(src) − r(dst)) mod p, per the paper's inline note that "the random
// value for the target vertex's label is subtracted from the random value
// for the source vertex's label".
func (s *Scheme) DirectedEdgeFactor(src, dst graph.Label) Factor {
	a, b := s.LabelValue(src), s.LabelValue(dst)
	return s.nonzero((a + s.p - b) % s.p)
}

// DegreeFactor returns the i-th degree factor of a vertex labelled l, i.e.
// the factor contributed when the vertex's degree reaches i (i ≥ 1):
// ((r(l) + i) mod p), 0 → p.
func (s *Scheme) DegreeFactor(l graph.Label, i int) Factor {
	if i < 1 {
		panic(fmt.Sprintf("signature: degree index must be >= 1, got %d", i))
	}
	return s.nonzero(uint32((uint64(s.LabelValue(l)) + uint64(i)) % uint64(s.p)))
}

// EdgeDelta returns the three factors contributed by adding an edge between
// a vertex labelled lu whose degree (within the sub-graph being grown) was
// du before the addition, and one labelled lv with prior degree dv. This is
// the incremental computation §2.1 highlights: the signature of G can be
// derived from the signature of any sub-graph Gi plus the factors due to
// the additional edges and degree in G \ Gi.
func (s *Scheme) EdgeDelta(lu graph.Label, du int, lv graph.Label, dv int) Delta {
	return sortDelta(Delta{
		s.EdgeFactor(lu, lv),
		s.DegreeFactor(lu, du+1),
		s.DegreeFactor(lv, dv+1),
	})
}

// EdgeFactorVals is EdgeFactor over pre-resolved label values ru = r(lu),
// rv = r(lv) (both in [1, p)). Hot paths that intern labels cache r-values
// by label code and call the *Vals variants to keep the per-edge path free
// of string hashing. Both values lie below p, so the residue needs no
// division: |ru − rv| is already in [0, p).
func (s *Scheme) EdgeFactorVals(ru, rv uint32) Factor {
	if ru < rv {
		ru, rv = rv, ru
	}
	return s.nonzero(ru - rv)
}

// DegreeFactorVal is DegreeFactor over a pre-resolved label value rv = r(l).
// For the common case i < p the sum rv + i is below 2p and one conditional
// subtraction replaces the division (this sits under every Alg. 2 delta).
func (s *Scheme) DegreeFactorVal(rv uint32, i int) Factor {
	if i < 1 {
		panic(fmt.Sprintf("signature: degree index must be >= 1, got %d", i))
	}
	if uint64(i) < uint64(s.p) {
		// rv < p, i < p ⇒ rv+i < 2p: at most one subtract. Summed in
		// uint64 so moduli above 2^31 cannot wrap the addition.
		v := uint64(rv) + uint64(i)
		if v >= uint64(s.p) {
			v -= uint64(s.p)
		}
		return s.nonzero(uint32(v))
	}
	return s.nonzero(uint32((uint64(rv) + uint64(i)) % uint64(s.p)))
}

// EdgeDeltaVals is EdgeDelta over pre-resolved label values ru = r(lu),
// rv = r(lv): the allocation- and hash-free hot-path form used by the
// sliding window's incremental matcher.
func (s *Scheme) EdgeDeltaVals(ru uint32, du int, rv uint32, dv int) Delta {
	return sortDelta(Delta{
		s.EdgeFactorVals(ru, rv),
		s.DegreeFactorVal(ru, du+1),
		s.DegreeFactorVal(rv, dv+1),
	})
}

// SignatureOf computes the full factor multiset of g from scratch. For
// undirected graphs this is |E| edge factors plus Σ deg(v) = 2|E| degree
// factors.
func (s *Scheme) SignatureOf(g *graph.Graph) *Multiset {
	ms := NewMultiset()
	for _, e := range g.Edges() {
		lu, lv := g.EdgeLabels(e)
		if g.Directed() {
			ms.Add(s.DirectedEdgeFactor(lu, lv))
		} else {
			ms.Add(s.EdgeFactor(lu, lv))
		}
	}
	for _, v := range g.Vertices() {
		l := g.MustLabel(v)
		deg := g.Degree(v)
		if g.Directed() {
			deg += len(g.InNeighbors(v))
		}
		for i := 1; i <= deg; i++ {
			ms.Add(s.DegreeFactor(l, i))
		}
	}
	return ms
}

// Product returns the big-integer product of a factor multiset — the
// signature representation of Song et al., exercised by tests against the
// paper's worked examples (§2.1: signature(q1) = 116208400).
func Product(ms *Multiset) *big.Int {
	out := big.NewInt(1)
	tmp := new(big.Int)
	for _, f := range ms.Factors() {
		tmp.SetUint64(uint64(f))
		out.Mul(out, tmp)
	}
	return out
}

// LabelValues returns a copy of the currently assigned label values, sorted
// by label, for diagnostics.
func (s *Scheme) LabelValues() map[graph.Label]uint32 {
	out := make(map[graph.Label]uint32, len(s.rvals))
	for l, v := range s.rvals {
		out[l] = v
	}
	return out
}

// RegisterLabels assigns values to the given labels in order. Generators
// call this up front so that label values do not depend on stream order.
func (s *Scheme) RegisterLabels(labels []graph.Label) {
	ordered := append([]graph.Label(nil), labels...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, l := range ordered {
		s.LabelValue(l)
	}
}
