package signature

import (
	"math"
	"math/rand"
	"testing"
)

func TestBinomialCDFBounds(t *testing.T) {
	if got := BinomialCDF(10, 0.3, -1); got != 0 {
		t.Errorf("CDF(k<0) = %v, want 0", got)
	}
	if got := BinomialCDF(10, 0.3, 10); got != 1 {
		t.Errorf("CDF(k=n) = %v, want 1", got)
	}
	if got := BinomialCDF(10, 0, 0); got != 1 {
		t.Errorf("CDF(q=0,k=0) = %v, want 1", got)
	}
	if got := BinomialCDF(10, 1, 5); got != 0 {
		t.Errorf("CDF(q=1,k<n) = %v, want 0", got)
	}
}

func TestBinomialCDFAgainstDirectSum(t *testing.T) {
	// Direct evaluation with explicit binomial coefficients.
	n, q, k := 24, 2.0/11.0, 3
	var want float64
	for x := 0; x <= k; x++ {
		want += choose(n, x) * math.Pow(q, float64(x)) * math.Pow(1-q, float64(n-x))
	}
	got := BinomialCDF(n, q, k)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF = %.15f, want %.15f", got, want)
	}
}

func TestBinomialCDFMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n, q, k := 36, 2.0/31.0, 2
	trials := 200000
	hit := 0
	for i := 0; i < trials; i++ {
		x := 0
		for j := 0; j < n; j++ {
			if r.Float64() < q {
				x++
			}
		}
		if x <= k {
			hit++
		}
	}
	emp := float64(hit) / float64(trials)
	got := BinomialCDF(n, q, k)
	if math.Abs(got-emp) > 0.01 {
		t.Errorf("CDF = %.4f, Monte Carlo = %.4f", got, emp)
	}
}

func TestCollisionProbabilityAtPaperDefaults(t *testing.T) {
	// §2.3: "we use a p value of 251, which ... gives a negligible
	// probability of significant factor collisions." At 5% tolerance the
	// 8-edge (24-factor) curve allows floor(0.05·24) = 1 collision:
	// P = CDF(24, 2/251, 1), which should be very high (> 0.98).
	for _, edges := range []int{8, 12, 16} {
		p := CollisionProbability(edges, 251, 0.05)
		if p < 0.95 {
			t.Errorf("edges=%d: P(<5%% collisions at p=251) = %.4f, want > 0.95", edges, p)
		}
	}
	// Tiny p: almost certain to exceed the tolerance.
	if p := CollisionProbability(16, 3, 0.05); p > 0.2 {
		t.Errorf("P at p=3 = %.4f, want small", p)
	}
}

func TestCollisionProbabilityMonotonicInP(t *testing.T) {
	prev := 0.0
	for _, p := range PrimesUpTo(317) {
		cur := CollisionProbability(12, p, 0.10)
		if cur+1e-12 < prev {
			t.Fatalf("probability not monotone at p=%d: %.6f < %.6f", p, cur, prev)
		}
		prev = cur
	}
}

func TestCollisionProbabilityMonotonicInTolerance(t *testing.T) {
	// Larger tolerance can only increase the acceptance probability.
	for _, p := range []uint32{11, 53, 251} {
		p5 := CollisionProbability(16, p, 0.05)
		p10 := CollisionProbability(16, p, 0.10)
		p20 := CollisionProbability(16, p, 0.20)
		if p5 > p10+1e-12 || p10 > p20+1e-12 {
			t.Errorf("p=%d: tolerance monotonicity violated: %v %v %v", p, p5, p10, p20)
		}
	}
}

func TestCollisionCurveShape(t *testing.T) {
	curve := CollisionCurve(8, 0.05, 317)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	last := curve[len(curve)-1]
	if last.P != 317 {
		t.Errorf("last prime = %d, want 317", last.P)
	}
	if last.Prob < 0.98 {
		t.Errorf("P at p=313 = %.4f, want ≈ 1", last.Prob)
	}
	if curve[0].P != 2 || curve[0].Prob > 0.9 {
		t.Errorf("first point = %+v, want p=2 with low probability", curve[0])
	}
}

func TestExpectedCollisions(t *testing.T) {
	if got := ExpectedCollisions(8, 251); math.Abs(got-24*2.0/251.0) > 1e-12 {
		t.Errorf("ExpectedCollisions = %v", got)
	}
}

func TestPrimesUpTo(t *testing.T) {
	got := PrimesUpTo(30)
	want := []uint32{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("PrimesUpTo(30) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrimesUpTo(30) = %v", got)
		}
	}
	if PrimesUpTo(1) != nil {
		t.Error("PrimesUpTo(1) should be empty")
	}
	// 251 and 317 (paper's choices/range) must be prime.
	ps := PrimesUpTo(320)
	found251, found317 := false, false
	for _, p := range ps {
		if p == 251 {
			found251 = true
		}
		if p == 317 {
			found317 = true
		}
	}
	if !found251 || !found317 {
		t.Error("251 and 317 must be prime")
	}
}

func choose(n, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}
