package signature

// Packed deltas: the stream matcher's innermost step (Alg. 2's "check if n
// has a child c whose factor difference corresponds to e") looks a Delta up
// against a trie node's child edges once per candidate grow. Hashing the
// 12-byte [3]Factor key through a Go map dominates that step, so when the
// modulus is small enough the three factors are packed into one uint64 and
// child tables are searched by plain integer comparison instead
// (internal/tpstry keys its child tables by PackedDelta).
//
// Factors lie in [1, p] (p stands in for zero, footnote 3), so each fits in
// packedFactorBits bits exactly when p <= MaxPackedFactor. The paper's
// primes (251, 11, 317) are far below the bound; schemes with p >= 2^21
// fall back to the array-keyed map (Scheme.Packable reports which regime
// applies).

// packedFactorBits is the per-factor field width of a PackedDelta: three
// 21-bit fields fill 63 of 64 bits.
const packedFactorBits = 21

// MaxPackedFactor is the largest factor value a PackedDelta field can
// hold. A scheme's factors never exceed its modulus p, so p <=
// MaxPackedFactor guarantees packability.
const MaxPackedFactor = 1<<packedFactorBits - 1

// PackedDelta is a Delta packed into a single comparable machine word:
// field i holds factor i of the (sorted) delta, lowest factor in the
// lowest bits. Packing is injective for factors <= MaxPackedFactor, so
// equality of PackedDeltas is equality of Deltas.
type PackedDelta uint64

// Packed packs the delta. The delta's factors must each be at most
// MaxPackedFactor (guaranteed whenever the producing scheme's p is; see
// Scheme.Packable) — oversized factors would silently alias, so callers
// gate on Packable once and use the array form otherwise.
func (d Delta) Packed() PackedDelta {
	return PackedDelta(uint64(d[0]) |
		uint64(d[1])<<packedFactorBits |
		uint64(d[2])<<(2*packedFactorBits))
}

// Unpack returns the Delta a PackedDelta encodes.
func (p PackedDelta) Unpack() Delta {
	const mask = MaxPackedFactor
	return Delta{
		Factor(p & mask),
		Factor((p >> packedFactorBits) & mask),
		Factor((p >> (2 * packedFactorBits)) & mask),
	}
}

// Packable reports whether every factor the scheme can produce fits a
// PackedDelta field, i.e. whether packed child tables may be used with
// deltas from this scheme.
func (s *Scheme) Packable() bool { return s.p <= MaxPackedFactor }
