package signature

import (
	"math"
)

// This file reproduces the collision analysis of §2.3 (Fig. 4). Each of the
// 3|E| factors in a signature is a uniform random variable over [1, p) and
// collides — i.e. coincides with a factor describing a *different* graph
// feature — with probability 2/p (two scenarios per factor kind). The
// number of colliding factors is therefore Binomial(3|E|, 2/p), and the
// quantity Fig. 4 plots is the probability that no more than C% of a
// signature's factors collide.

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, q). It is computed
// directly in float64, which is exact enough for the n <= a few hundred
// used here (query graphs are small, "of the order of 10 edges").
func BinomialCDF(n int, q float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	// Recurrence over the pmf avoids recomputing binomial coefficients:
	// pmf(0) = (1-q)^n; pmf(x+1) = pmf(x) * (n-x)/(x+1) * q/(1-q).
	if q <= 0 {
		return 1
	}
	if q >= 1 {
		return 0
	}
	pmf := math.Pow(1-q, float64(n))
	cdf := pmf
	ratio := q / (1 - q)
	for x := 0; x < k; x++ {
		pmf *= float64(n-x) / float64(x+1) * ratio
		cdf += pmf
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf
}

// CollisionProbability returns the probability that no more than
// tolerance·(3·edges) factors of a signature over a prime field p collide,
// following the paper's Binomial(3|E|, 2/p) model. tolerance is a fraction
// (0.05 for the "5%" panel of Fig. 4).
func CollisionProbability(edges int, p uint32, tolerance float64) float64 {
	n := 3 * edges
	cmax := int(math.Floor(tolerance * float64(n)))
	return BinomialCDF(n, 2/float64(p), cmax)
}

// ExpectedCollisions returns the expected number of colliding factors for a
// query graph with the given edge count under prime p: 3|E|·2/p.
func ExpectedCollisions(edges int, p uint32) float64 {
	return float64(3*edges) * 2 / float64(p)
}

// CollisionCurvePoint is one (p, probability) sample of a Fig. 4 curve.
type CollisionCurvePoint struct {
	P    uint32
	Prob float64
}

// CollisionCurve samples CollisionProbability for every prime p in
// [2, maxP], one curve of Fig. 4 (fixed factor count = 3·edges and
// tolerance).
func CollisionCurve(edges int, tolerance float64, maxP uint32) []CollisionCurvePoint {
	primes := PrimesUpTo(maxP)
	out := make([]CollisionCurvePoint, 0, len(primes))
	for _, p := range primes {
		out = append(out, CollisionCurvePoint{P: p, Prob: CollisionProbability(edges, p, tolerance)})
	}
	return out
}

// PrimesUpTo returns all primes <= n in ascending order (sieve of
// Eratosthenes). Fig. 4's x-axis spans "p choices between 2 and 317".
func PrimesUpTo(n uint32) []uint32 {
	if n < 2 {
		return nil
	}
	composite := make([]bool, n+1)
	var primes []uint32
	for i := uint32(2); i <= n; i++ {
		if composite[i] {
			continue
		}
		primes = append(primes, i)
		for j := uint64(i) * uint64(i); j <= uint64(n); j += uint64(i) {
			composite[j] = true
		}
	}
	return primes
}
