package signature

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Multiset is a multiset of signature factors, Loom's representation of a
// graph signature (§2.3: "represent signatures as sets of their constituent
// factors, which eliminates a source of collisions, e.g. we can now
// distinguish between graphs with factors {6,2}, {4,3} and {12}").
//
// Factors are kept sorted ascending with duplicates, so equality, subset
// and difference are linear merges, and Key yields a canonical map key.
type Multiset struct {
	fs []Factor // sorted ascending, duplicates allowed
}

// NewMultiset returns an empty multiset.
func NewMultiset(fs ...Factor) *Multiset {
	m := &Multiset{}
	for _, f := range fs {
		m.Add(f)
	}
	return m
}

// Len returns the number of factors, counting multiplicity.
func (m *Multiset) Len() int { return len(m.fs) }

// Add inserts one factor, keeping the slice sorted.
func (m *Multiset) Add(f Factor) {
	i := sort.Search(len(m.fs), func(i int) bool { return m.fs[i] >= f })
	m.fs = append(m.fs, 0)
	copy(m.fs[i+1:], m.fs[i:])
	m.fs[i] = f
}

// AddDelta inserts the three factors of a Delta.
func (m *Multiset) AddDelta(d Delta) {
	m.Add(d[0])
	m.Add(d[1])
	m.Add(d[2])
}

// Clone returns an independent copy.
func (m *Multiset) Clone() *Multiset {
	return &Multiset{fs: append([]Factor(nil), m.fs...)}
}

// PlusDelta returns a copy of m with the delta's factors added; m is not
// modified. This is the incremental signature step used by both Alg. 1
// (trie construction) and Alg. 2 (stream matching).
func (m *Multiset) PlusDelta(d Delta) *Multiset {
	c := m.Clone()
	c.AddDelta(d)
	return c
}

// Equal reports whether two multisets contain exactly the same factors with
// the same multiplicities.
func (m *Multiset) Equal(o *Multiset) bool {
	if len(m.fs) != len(o.fs) {
		return false
	}
	for i := range m.fs {
		if m.fs[i] != o.fs[i] {
			return false
		}
	}
	return true
}

// Contains reports whether o is a sub-multiset of m.
func (m *Multiset) Contains(o *Multiset) bool {
	i := 0
	for _, f := range o.fs {
		for i < len(m.fs) && m.fs[i] < f {
			i++
		}
		if i >= len(m.fs) || m.fs[i] != f {
			return false
		}
		i++
	}
	return true
}

// Minus returns the multiset difference m \ o and true, or nil and false if
// o is not contained in m. The TPSTry++ uses this to ask whether a child's
// signature differs from its parent's by exactly the factors of one edge
// addition (§3: fac(e, gi) = c.signatures \ n.signatures).
func (m *Multiset) Minus(o *Multiset) (*Multiset, bool) {
	if !m.Contains(o) {
		return nil, false
	}
	out := &Multiset{fs: make([]Factor, 0, len(m.fs)-len(o.fs))}
	i := 0
	for _, f := range m.fs {
		if i < len(o.fs) && o.fs[i] == f {
			i++
			continue
		}
		out.fs = append(out.fs, f)
	}
	return out, true
}

// Factors returns the sorted factor slice. The result is owned by the
// multiset and must not be modified.
func (m *Multiset) Factors() []Factor { return m.fs }

// Key returns a canonical byte-string key for the multiset, suitable for
// map indexing (TPSTry++ node lookup by signature).
func (m *Multiset) Key() string {
	buf := make([]byte, 4*len(m.fs))
	for i, f := range m.fs {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(f))
	}
	return string(buf)
}

// DeltaKey returns the canonical key of a bare Delta (used for child-edge
// lookup without allocating a Multiset).
func DeltaKey(d Delta) string {
	d = sortDelta(d)
	var buf [12]byte
	for i, f := range d {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(f))
	}
	return string(buf[:])
}

// AsDelta converts a 3-factor multiset into a Delta; ok is false when the
// multiset does not have exactly three factors.
func (m *Multiset) AsDelta() (Delta, bool) {
	if len(m.fs) != 3 {
		return Delta{}, false
	}
	return Delta{m.fs[0], m.fs[1], m.fs[2]}, true
}

func (m *Multiset) String() string {
	parts := make([]string, len(m.fs))
	for i, f := range m.fs {
		parts[i] = fmt.Sprint(uint32(f))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
