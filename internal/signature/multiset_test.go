package signature

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMultisetAddKeepsSorted(t *testing.T) {
	m := NewMultiset()
	for _, f := range []Factor{9, 3, 7, 3, 1} {
		m.Add(f)
	}
	got := m.Factors()
	want := []Factor{1, 3, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Factors = %v, want %v", got, want)
		}
	}
}

func TestMultisetEqualAndKey(t *testing.T) {
	a := NewMultiset(6, 2)
	b := NewMultiset(2, 6)
	c := NewMultiset(4, 3)
	d := NewMultiset(12)
	if !a.Equal(b) {
		t.Error("order must not matter")
	}
	// The paper's own example: {6,2}, {4,3} and {12} are distinguishable
	// as multisets even though their products are all 12.
	if a.Equal(c) || a.Equal(d) || c.Equal(d) {
		t.Error("distinct factor multisets with equal products must differ")
	}
	if a.Key() != b.Key() {
		t.Error("keys of equal multisets must match")
	}
	if a.Key() == c.Key() {
		t.Error("keys of distinct multisets must differ")
	}
}

func TestMultisetMultiplicityMatters(t *testing.T) {
	a := NewMultiset(5, 5)
	b := NewMultiset(5)
	if a.Equal(b) {
		t.Error("multiplicity must be respected")
	}
	if !a.Contains(b) {
		t.Error("{5,5} contains {5}")
	}
	if b.Contains(a) {
		t.Error("{5} does not contain {5,5}")
	}
}

func TestMultisetMinus(t *testing.T) {
	m := NewMultiset(1, 2, 2, 3, 7)
	o := NewMultiset(2, 3)
	diff, ok := m.Minus(o)
	if !ok {
		t.Fatal("Minus: want ok")
	}
	if !diff.Equal(NewMultiset(1, 2, 7)) {
		t.Errorf("Minus = %v, want {1,2,7}", diff)
	}
	if _, ok := o.Minus(m); ok {
		t.Error("Minus of superset from subset must fail")
	}
	if _, ok := m.Minus(NewMultiset(9)); ok {
		t.Error("Minus with foreign factor must fail")
	}
}

func TestPlusDeltaDoesNotMutate(t *testing.T) {
	m := NewMultiset(4)
	_ = m.PlusDelta(Delta{1, 2, 3})
	if m.Len() != 1 {
		t.Error("PlusDelta mutated receiver")
	}
}

func TestAsDelta(t *testing.T) {
	if d, ok := NewMultiset(3, 1, 2).AsDelta(); !ok || d != (Delta{1, 2, 3}) {
		t.Errorf("AsDelta = %v,%v", d, ok)
	}
	if _, ok := NewMultiset(1, 2).AsDelta(); ok {
		t.Error("AsDelta of len 2 must fail")
	}
}

func TestDeltaKeyCanonical(t *testing.T) {
	if DeltaKey(Delta{3, 1, 2}) != DeltaKey(Delta{1, 2, 3}) {
		t.Error("DeltaKey must be order-invariant")
	}
	if DeltaKey(Delta{1, 1, 2}) == DeltaKey(Delta{1, 2, 2}) {
		t.Error("DeltaKey must respect multiplicity")
	}
}

// Property: Minus inverts AddDelta/PlusDelta.
func TestMinusInvertsPlusProperty(t *testing.T) {
	f := func(seed int64, base []uint16, d0, d1, d2 uint16) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMultiset()
		for _, b := range base {
			m.Add(Factor(b%250 + 1))
		}
		_ = r
		d := sortDelta(Delta{Factor(d0%250 + 1), Factor(d1%250 + 1), Factor(d2%250 + 1)})
		grown := m.PlusDelta(d)
		diff, ok := grown.Minus(m)
		if !ok || diff.Len() != 3 {
			return false
		}
		got, ok := diff.AsDelta()
		return ok && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the sorted-slice invariant holds under arbitrary insertions.
func TestMultisetSortedInvariantProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		m := NewMultiset()
		for _, v := range vals {
			m.Add(Factor(v))
		}
		fs := m.Factors()
		return sort.SliceIsSorted(fs, func(i, j int) bool { return fs[i] < fs[j] }) && m.Len() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
