package signature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

// paperScheme reproduces §2.1's worked example: p = 11, r(a) = 3, r(b) = 10.
func paperScheme() *Scheme {
	return NewSchemeWithValues(11, map[graph.Label]uint32{"a": 3, "b": 10})
}

// q1 is the query graph q1 of Fig. 1: a 4-cycle with alternating labels
// a-b-a-b (four a-b edges, every vertex of degree 2).
func q1(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	for v, l := range map[graph.VertexID]graph.Label{1: "a", 2: "b", 3: "a", 4: "b"} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 1}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestEdgeFactorWorkedExample(t *testing.T) {
	s := paperScheme()
	// "edgeFac((a,b)) = (3 − 10) mod 11 = 7"
	if got := s.EdgeFactor("a", "b"); got != 7 {
		t.Errorf("EdgeFactor(a,b) = %d, want 7", got)
	}
	// Symmetric.
	if got := s.EdgeFactor("b", "a"); got != 7 {
		t.Errorf("EdgeFactor(b,a) = %d, want 7", got)
	}
}

func TestDegreeFactorWorkedExample(t *testing.T) {
	s := paperScheme()
	// degFac(b) for degree 2 = ((10+1) mod 11)·((10+2) mod 11) = 11·1,
	// with the zero factor (10+1 ≡ 0) replaced by p = 11 (footnote 3).
	if got := s.DegreeFactor("b", 1); got != 11 {
		t.Errorf("DegreeFactor(b,1) = %d, want 11 (0 replaced by p)", got)
	}
	if got := s.DegreeFactor("b", 2); got != 1 {
		t.Errorf("DegreeFactor(b,2) = %d, want 1", got)
	}
	// degFac(a) degree 2 = 4·5 = 20.
	if got := s.DegreeFactor("a", 1); got != 4 {
		t.Errorf("DegreeFactor(a,1) = %d, want 4", got)
	}
	if got := s.DegreeFactor("a", 2); got != 5 {
		t.Errorf("DegreeFactor(a,2) = %d, want 5", got)
	}
}

func TestSignatureOfQ1MatchesPaper(t *testing.T) {
	s := paperScheme()
	ms := s.SignatureOf(q1(t))
	// 4 edges → 12 factors.
	if ms.Len() != 12 {
		t.Fatalf("len = %d, want 12 (= 3|E|)", ms.Len())
	}
	// "The signature of q1 = 2401 · 48400 = 116208400."
	if got := Product(ms); got.Int64() != 116208400 {
		t.Errorf("Product = %v, want 116208400", got)
	}
}

func TestSingleEdgeSignatureMatchesPaper(t *testing.T) {
	s := paperScheme()
	g := graph.New()
	if err := g.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	// "the signature for a-b is 7 · ((3+1) mod 11) · ((10+1) mod 11) = 308"
	if got := Product(s.SignatureOf(g)); got.Int64() != 308 {
		t.Errorf("Product(a-b) = %v, want 308", got)
	}
}

func TestIncrementalDeltaMatchesPaperABA(t *testing.T) {
	s := paperScheme()
	// Adding a second a-b edge adjacent to b (degree 1 → 2) while the new
	// a vertex has degree 0 → 1: factors 7 (edge), 4 (new a), 1 (b's
	// second degree factor). 308 · 7 · 4 · 1 = 8624.
	d := s.EdgeDelta("a", 0, "b", 1)
	want := sortDelta(Delta{7, 4, 1})
	if d != want {
		t.Errorf("EdgeDelta = %v, want %v", d, want)
	}
	base := NewMultiset(7, 4, 11) // signature of single a-b edge
	grown := base.PlusDelta(d)
	if got := Product(grown); got.Int64() != 8624 {
		t.Errorf("Product(a-b-a) = %v, want 8624", got)
	}
}

func TestIncrementalEqualsFromScratch(t *testing.T) {
	// Growing a graph edge-by-edge and summing deltas must equal the
	// from-scratch signature — the property Alg. 1 and Alg. 2 rely on.
	s := NewScheme(DefaultP, 7)
	g := q1(t)

	grown := graph.New()
	ms := NewMultiset()
	deg := map[graph.VertexID]int{}
	for _, e := range g.Edges() {
		lu, lv := g.EdgeLabels(e)
		d := s.EdgeDelta(lu, deg[e.U], lv, deg[e.V])
		ms.AddDelta(d)
		if _, err := grown.EnsureEdge(e.U, lu, e.V, lv); err != nil {
			t.Fatal(err)
		}
		deg[e.U]++
		deg[e.V]++
	}
	if !ms.Equal(s.SignatureOf(g)) {
		t.Errorf("incremental %v != from-scratch %v", ms, s.SignatureOf(g))
	}
}

func TestIsomorphismInvarianceProperty(t *testing.T) {
	// Signatures must be invariant under vertex renaming and edge
	// reordering: isomorphic graphs ALWAYS share a signature (§2.3: "the
	// manner in which signatures are executed precludes false negatives").
	f := func(seed int64, n8 uint8, extra uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8%12) + 2
		g := randomLabelled(r, n, int(extra%20))
		s := NewScheme(DefaultP, 99)

		// Random renaming: shift IDs by a random offset and permute.
		perm := r.Perm(n)
		ren := graph.New()
		ids := g.Vertices()
		mapping := make(map[graph.VertexID]graph.VertexID, n)
		for i, v := range ids {
			nv := graph.VertexID(1000 + perm[i])
			mapping[v] = nv
			if err := ren.AddVertex(nv, g.MustLabel(v)); err != nil {
				return false
			}
		}
		edges := g.Edges()
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges {
			if err := ren.AddEdge(mapping[e.U], mapping[e.V]); err != nil {
				return false
			}
		}
		return s.SignatureOf(g).Equal(s.SignatureOf(ren))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDirectedEdgeFactorIsDirectional(t *testing.T) {
	s := NewSchemeWithValues(11, map[graph.Label]uint32{"a": 3, "b": 10})
	ab := s.DirectedEdgeFactor("a", "b") // (3-10) mod 11 = 4
	ba := s.DirectedEdgeFactor("b", "a") // (10-3) mod 11 = 7
	if ab != 4 || ba != 7 {
		t.Errorf("directed factors = %d,%d want 4,7", ab, ba)
	}
}

func TestSameLabelEdgeFactorIsP(t *testing.T) {
	s := NewSchemeWithValues(11, map[graph.Label]uint32{"a": 3})
	if got := s.EdgeFactor("a", "a"); got != 11 {
		t.Errorf("EdgeFactor(a,a) = %d, want p=11", got)
	}
}

func TestSchemeDeterminism(t *testing.T) {
	s1 := NewScheme(DefaultP, 42)
	s2 := NewScheme(DefaultP, 42)
	labels := []graph.Label{"x", "y", "z", "w"}
	s1.RegisterLabels(labels)
	s2.RegisterLabels([]graph.Label{"w", "z", "y", "x"}) // different call order
	for _, l := range labels {
		if s1.LabelValue(l) != s2.LabelValue(l) {
			t.Errorf("label %s: %d vs %d", l, s1.LabelValue(l), s2.LabelValue(l))
		}
	}
}

func TestLabelValueRange(t *testing.T) {
	s := NewScheme(11, 3)
	for i := 0; i < 100; i++ {
		v := s.LabelValue(graph.Label(rune('A' + i)))
		if v < 1 || v >= 11 {
			t.Fatalf("label value %d out of [1,11)", v)
		}
	}
}

// randomLabelled builds a connected random labelled graph for property
// tests.
func randomLabelled(r *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New()
	alphabet := []graph.Label{"a", "b", "c"}
	for v := 0; v < n; v++ {
		if err := g.AddVertex(graph.VertexID(v), alphabet[r.Intn(len(alphabet))]); err != nil {
			panic(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := g.AddEdge(graph.VertexID(r.Intn(v)), graph.VertexID(v)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// TestSchemeStateRoundTrip: restoring a captured state onto a fresh
// (p, seed)-identical Scheme must reproduce every assigned r-value AND
// the generator position, so labels first used after the restore draw
// exactly what the original scheme would have drawn. Values are assigned
// in first-use order, so without the fast-forward a restored scheme
// would hand post-restore labels the draws its history already consumed.
func TestSchemeStateRoundTrip(t *testing.T) {
	orig := NewScheme(DefaultP, 7)
	for _, l := range []graph.Label{"Paper", "Person", "Journal", "Venue"} {
		orig.LabelValue(l)
	}
	st := orig.CaptureState()
	if len(st.Labels) != 4 || st.Draws != 4 {
		t.Fatalf("captured %d labels, %d draws; want 4, 4", len(st.Labels), st.Draws)
	}

	fresh := NewScheme(DefaultP, 7)
	// The fresh scheme has its own short, different history.
	fresh.LabelValue("Paper")
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for _, l := range []graph.Label{"Paper", "Person", "Journal", "Venue"} {
		if got, want := fresh.LabelValue(l), orig.LabelValue(l); got != want {
			t.Fatalf("restored r(%s) = %d, original %d", l, got, want)
		}
	}
	// Labels first used after the restore must draw the same values the
	// original draws for them.
	for _, l := range []graph.Label{"Year", "Topic", "Institution"} {
		if got, want := fresh.LabelValue(l), orig.LabelValue(l); got != want {
			t.Fatalf("post-restore r(%s) = %d, original %d", l, got, want)
		}
	}
}

// TestSchemeStateRejectsBadValues: out-of-range values, duplicate labels
// and mismatched lengths are construction-time errors, not latent state.
func TestSchemeStateRejectsBadValues(t *testing.T) {
	s := NewScheme(11, 1)
	for _, st := range []SchemeState{
		{Labels: []graph.Label{"a"}, Values: []uint32{0}},
		{Labels: []graph.Label{"a"}, Values: []uint32{11}},
		{Labels: []graph.Label{"a", "a"}, Values: []uint32{3, 4}},
		{Labels: []graph.Label{"a", "b"}, Values: []uint32{3}},
		{Labels: []graph.Label{"a"}, Values: []uint32{3}, Draws: -1},
	} {
		if err := s.RestoreState(st); err == nil {
			t.Fatalf("RestoreState(%+v): want error", st)
		}
	}
	// A rejected restore must not have clobbered the scheme.
	if v := s.LabelValue("a"); v < 1 || v >= 11 {
		t.Fatalf("scheme unusable after rejected restore: r(a) = %d", v)
	}
}
