package wal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func mustTail(t *testing.T, fsys FS, dir string) (*Tailer, *Recovered) {
	t.Helper()
	tl, rec, err := OpenTailer(fsys, dir)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	return tl, rec
}

func TestTailerSeesWriterRecords(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)

	// Bootstrapping mid-stream: the tailer recovers the same view Open
	// would, without writing anything.
	before := len(fs.DumpNames())
	tl, rec := mustTail(t, fs, "wal")
	if rec.HaveCheckpoint {
		t.Fatalf("no checkpoint written, but tailer found one")
	}
	wantRecords(t, rec, 0, 10)
	if got := len(fs.DumpNames()); got != before {
		t.Fatalf("read-only open changed the directory: %d files, was %d", got, before)
	}

	// The log grows; Poll picks up exactly the new records.
	appendN(t, l, 10, 7)
	more, err := tl.Poll()
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if len(more) != 7 {
		t.Fatalf("Poll returned %d records, want 7", len(more))
	}
	for i, r := range more {
		if want := string(payload(10 + i)); string(r) != want {
			t.Fatalf("polled record %d = %q, want %q", i, r, want)
		}
	}
	// Idle polls return nothing.
	if more, err = tl.Poll(); err != nil || len(more) != 0 {
		t.Fatalf("idle Poll = %d records, err %v", len(more), err)
	}
	if tl.LSN() != l.LSN() {
		t.Fatalf("tailer LSN %d != writer LSN %d", tl.LSN(), l.LSN())
	}
	l.Close()
}

func TestTailerBootstrapsFromCheckpoint(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways, SegmentBytes: 256}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 20)
	if _, err := l.WriteCheckpoint([]byte("state@20")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 20, 5)

	tl, rec := mustTail(t, fs, "wal")
	if !rec.HaveCheckpoint || string(rec.Checkpoint) != "state@20" {
		t.Fatalf("checkpoint not recovered: %+v", rec)
	}
	if rec.CheckpointLSN != 20 {
		t.Fatalf("CheckpointLSN = %d, want 20", rec.CheckpointLSN)
	}
	wantRecords(t, rec, 20, 5)

	appendN(t, l, 25, 3)
	more, err := tl.Poll()
	if err != nil || len(more) != 3 {
		t.Fatalf("Poll after growth = %d records, err %v", len(more), err)
	}
	l.Close()
}

func TestTailerToleratesInFlightTail(t *testing.T) {
	fs := NewMemFS()
	// SyncNone with a large group: records stage in the writer's buffer,
	// so the tailer sees only what has been written out.
	opt := Options{Dir: "wal", Policy: SyncNone, GroupBytes: 1 << 20}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)

	tl, rec := mustTail(t, fs, "wal")
	if len(rec.Records) != 0 {
		t.Fatalf("staged records visible before writeout: %d", len(rec.Records))
	}

	// A torn frame at the end of the segment (half a record) must stop the
	// scan silently, then be delivered once completed.
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	seg := "wal/" + segName(1)
	full, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := fs.Truncate(seg, int64(len(full)-3)); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, err := tl.Poll()
	if err != nil {
		t.Fatalf("Poll over torn tail: %v", err)
	}
	if len(got) != 9 {
		t.Fatalf("Poll over torn tail = %d records, want 9", len(got))
	}
	// Restore the full bytes (the writer finishing its flush) and re-poll.
	f, err := fs.Create(seg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write(full); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	f.Close()
	got, err = tl.Poll()
	if err != nil || len(got) != 1 {
		t.Fatalf("Poll after tail completed = %d records, err %v", len(got), err)
	}
	if string(got[0]) != string(payload(9)) {
		t.Fatalf("completed tail record = %q, want %q", got[0], payload(9))
	}
}

func TestTailerGapAfterPrune(t *testing.T) {
	fs := NewMemFS()
	// Small segments so checkpoint pruning actually removes files.
	opt := Options{Dir: "wal", Policy: SyncAlways, SegmentBytes: 128, KeepCheckpoints: 1}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 4)

	tl, _ := mustTail(t, fs, "wal")

	// The primary races far ahead and checkpoints twice; segments holding
	// the records the tailer never read are pruned.
	appendN(t, l, 4, 40)
	if _, err := l.WriteCheckpoint([]byte("ckpt-a")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 44, 40)
	if _, err := l.WriteCheckpoint([]byte("ckpt-b")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := tl.Poll(); !errors.Is(err, ErrGap) {
		t.Fatalf("Poll after prune = %v, want ErrGap", err)
	}
	l.Close()
}

func TestTailerMidChainDamageIsCorrupt(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways, SegmentBytes: 128}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 30) // spans several 128-byte segments
	l.Close()

	// Flip a bit inside the FIRST segment's record area: intact segments
	// follow, so this cannot be an in-flight tail.
	if err := fs.FlipBit("wal/"+segName(1), int64(segHeaderSize+recordFrameSize+2)); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	_, _, err := OpenTailer(fs, "wal")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenTailer over mid-chain damage = %v, want ErrCorrupt", err)
	}
	// Corruption is attributed to the damaged segment by name, so a
	// supervisor can quarantine exactly that file.
	var se *SegmentError
	if !errors.As(err, &se) || se.Name != segName(1) {
		t.Fatalf("corruption not attributed to %s: %v", segName(1), err)
	}
}

// TestTailerTransientReadErrors: an injected read failure surfaces as a
// plain error — neither ErrGap nor ErrCorrupt — naming the segment, the
// tailer's position does not advance, and the very next Poll delivers
// everything once reads recover.
func TestTailerTransientReadErrors(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 6)
	tl, rec := mustTail(t, fs, "wal")
	wantRecords(t, rec, 0, 6)

	appendN(t, l, 6, 4)
	fs.SetReadFault(".seg", 2, nil)
	for i := 0; i < 2; i++ {
		_, err := tl.Poll()
		if err == nil {
			t.Fatalf("Poll %d over injected read fault did not error", i)
		}
		if errors.Is(err, ErrGap) || errors.Is(err, ErrCorrupt) {
			t.Fatalf("transient read fault misclassified: %v", err)
		}
		var se *SegmentError
		if !errors.As(err, &se) || se.Name == "" {
			t.Fatalf("transient fault does not name its segment: %v", err)
		}
	}
	got, err := tl.Poll()
	if err != nil || len(got) != 4 {
		t.Fatalf("Poll after faults cleared = %d records, err %v — want 4, nil", len(got), err)
	}
	if tl.LSN() != l.LSN() {
		t.Fatalf("tailer LSN %d != writer LSN %d after recovery", tl.LSN(), l.LSN())
	}
	l.Close()
}

// TestTailerPruneRacesPoll: the primary checkpoints and prunes between
// the tailer's List and its ReadFile, so Poll reads a file that just
// vanished. That must be a transient error — the re-list on the next
// Poll sees the directory's true state and classifies it for real
// (here: ErrGap, because the pruned records were never delivered).
func TestTailerPruneRacesPoll(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways, SegmentBytes: 128, KeepCheckpoints: 1}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 4)
	tl, _ := mustTail(t, fs, "wal")

	// The tailer needs records from segment 1 onward. Arm a hook that,
	// on the tailer's first read of a segment, lets the primary race
	// ahead: append, checkpoint twice (pruning every old segment), and
	// only then fail the read — the file is genuinely gone.
	appendN(t, l, 4, 40)
	raced := false
	fs.SetReadHook(func(path string) error {
		if raced || !strings.HasSuffix(path, ".seg") {
			return nil
		}
		raced = true
		fs.SetReadHook(nil)
		if _, err := l.WriteCheckpoint([]byte("ckpt-a")); err != nil {
			t.Errorf("WriteCheckpoint: %v", err)
		}
		appendN(t, l, 44, 40)
		if _, err := l.WriteCheckpoint([]byte("ckpt-b")); err != nil {
			t.Errorf("WriteCheckpoint: %v", err)
		}
		return fmt.Errorf("%s: file does not exist (pruned)", path)
	})

	_, err := tl.Poll()
	if err == nil || errors.Is(err, ErrGap) || errors.Is(err, ErrCorrupt) {
		t.Fatalf("racing Poll = %v, want a transient error", err)
	}
	if !raced {
		t.Fatal("read hook never fired")
	}
	// Next Poll re-lists: the needed segments are truly pruned → ErrGap.
	if _, err := tl.Poll(); !errors.Is(err, ErrGap) {
		t.Fatalf("Poll after raced prune = %v, want ErrGap", err)
	}
	l.Close()
}

// TestLogRetriesTransientWriteFaults: a bounded burst of write and fsync
// failures is absorbed by the append path's retry loop — no broken
// latch, no lost records.
func TestLogRetriesTransientWriteFaults(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways, Retries: 3, RetryBackoff: time.Microsecond}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 3)

	fs.SetWriteFault(".seg", 1, nil)
	appendN(t, l, 3, 1) // appendN fails the test if Append errors
	fs.SetSyncFault(".seg", 2, nil)
	appendN(t, l, 4, 1)
	if l.Broken() {
		t.Fatal("log broke despite retries")
	}
	if got := l.SyncedLSN(); got != 5 {
		t.Fatalf("SyncedLSN = %d, want 5", got)
	}
	l.Close()

	_, rec := mustOpen(t, fs, opt)
	wantRecords(t, rec, 0, 5)
}

// TestLogBreaksWhenRetriesExhausted: a persistent fsync failure defeats
// the retries, latches the log broken, and SyncedLSN keeps reporting the
// last durable record.
func TestLogBreaksWhenRetriesExhausted(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways, Retries: 2, RetryBackoff: time.Microsecond}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 3)

	fs.SetSyncFault(".seg", -1, nil)
	if _, err := l.Append(payload(3)); err == nil {
		t.Fatal("Append over persistent fsync failure did not error")
	}
	if !l.Broken() {
		t.Fatal("log not latched broken after retries exhausted")
	}
	if got := l.SyncedLSN(); got != 3 {
		t.Fatalf("SyncedLSN = %d, want 3 (last durable record)", got)
	}

	// Re-arm: with the disk healthy again, a checkpoint supersedes the
	// torn tail and appends flow again.
	fs.SetSyncFault("", 0, nil)
	if _, err := l.WriteCheckpoint([]byte("full-state")); err != nil {
		t.Fatalf("re-arming WriteCheckpoint: %v", err)
	}
	if l.Broken() {
		t.Fatal("log still broken after re-arming checkpoint")
	}
	appendN(t, l, 100, 2)
	l.Close()

	_, rec := mustOpen(t, fs, opt)
	if !rec.HaveCheckpoint || string(rec.Checkpoint) != "full-state" {
		t.Fatalf("recovery did not find the re-arming checkpoint: %+v", rec)
	}
	wantRecords(t, rec, 100, 2)
}
