package wal

import (
	"errors"
	"testing"
)

func mustTail(t *testing.T, fsys FS, dir string) (*Tailer, *Recovered) {
	t.Helper()
	tl, rec, err := OpenTailer(fsys, dir)
	if err != nil {
		t.Fatalf("OpenTailer: %v", err)
	}
	return tl, rec
}

func TestTailerSeesWriterRecords(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)

	// Bootstrapping mid-stream: the tailer recovers the same view Open
	// would, without writing anything.
	before := len(fs.DumpNames())
	tl, rec := mustTail(t, fs, "wal")
	if rec.HaveCheckpoint {
		t.Fatalf("no checkpoint written, but tailer found one")
	}
	wantRecords(t, rec, 0, 10)
	if got := len(fs.DumpNames()); got != before {
		t.Fatalf("read-only open changed the directory: %d files, was %d", got, before)
	}

	// The log grows; Poll picks up exactly the new records.
	appendN(t, l, 10, 7)
	more, err := tl.Poll()
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if len(more) != 7 {
		t.Fatalf("Poll returned %d records, want 7", len(more))
	}
	for i, r := range more {
		if want := string(payload(10 + i)); string(r) != want {
			t.Fatalf("polled record %d = %q, want %q", i, r, want)
		}
	}
	// Idle polls return nothing.
	if more, err = tl.Poll(); err != nil || len(more) != 0 {
		t.Fatalf("idle Poll = %d records, err %v", len(more), err)
	}
	if tl.LSN() != l.LSN() {
		t.Fatalf("tailer LSN %d != writer LSN %d", tl.LSN(), l.LSN())
	}
	l.Close()
}

func TestTailerBootstrapsFromCheckpoint(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways, SegmentBytes: 256}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 20)
	if _, err := l.WriteCheckpoint([]byte("state@20")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 20, 5)

	tl, rec := mustTail(t, fs, "wal")
	if !rec.HaveCheckpoint || string(rec.Checkpoint) != "state@20" {
		t.Fatalf("checkpoint not recovered: %+v", rec)
	}
	if rec.CheckpointLSN != 20 {
		t.Fatalf("CheckpointLSN = %d, want 20", rec.CheckpointLSN)
	}
	wantRecords(t, rec, 20, 5)

	appendN(t, l, 25, 3)
	more, err := tl.Poll()
	if err != nil || len(more) != 3 {
		t.Fatalf("Poll after growth = %d records, err %v", len(more), err)
	}
	l.Close()
}

func TestTailerToleratesInFlightTail(t *testing.T) {
	fs := NewMemFS()
	// SyncNone with a large group: records stage in the writer's buffer,
	// so the tailer sees only what has been written out.
	opt := Options{Dir: "wal", Policy: SyncNone, GroupBytes: 1 << 20}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)

	tl, rec := mustTail(t, fs, "wal")
	if len(rec.Records) != 0 {
		t.Fatalf("staged records visible before writeout: %d", len(rec.Records))
	}

	// A torn frame at the end of the segment (half a record) must stop the
	// scan silently, then be delivered once completed.
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	seg := "wal/" + segName(1)
	full, err := fs.ReadFile(seg)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := fs.Truncate(seg, int64(len(full)-3)); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, err := tl.Poll()
	if err != nil {
		t.Fatalf("Poll over torn tail: %v", err)
	}
	if len(got) != 9 {
		t.Fatalf("Poll over torn tail = %d records, want 9", len(got))
	}
	// Restore the full bytes (the writer finishing its flush) and re-poll.
	f, err := fs.Create(seg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write(full); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	f.Close()
	got, err = tl.Poll()
	if err != nil || len(got) != 1 {
		t.Fatalf("Poll after tail completed = %d records, err %v", len(got), err)
	}
	if string(got[0]) != string(payload(9)) {
		t.Fatalf("completed tail record = %q, want %q", got[0], payload(9))
	}
}

func TestTailerGapAfterPrune(t *testing.T) {
	fs := NewMemFS()
	// Small segments so checkpoint pruning actually removes files.
	opt := Options{Dir: "wal", Policy: SyncAlways, SegmentBytes: 128, KeepCheckpoints: 1}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 4)

	tl, _ := mustTail(t, fs, "wal")

	// The primary races far ahead and checkpoints twice; segments holding
	// the records the tailer never read are pruned.
	appendN(t, l, 4, 40)
	if _, err := l.WriteCheckpoint([]byte("ckpt-a")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 44, 40)
	if _, err := l.WriteCheckpoint([]byte("ckpt-b")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := tl.Poll(); !errors.Is(err, ErrGap) {
		t.Fatalf("Poll after prune = %v, want ErrGap", err)
	}
	l.Close()
}

func TestTailerMidChainDamageIsCorrupt(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways, SegmentBytes: 128}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 30) // spans several 128-byte segments
	l.Close()

	// Flip a bit inside the FIRST segment's record area: intact segments
	// follow, so this cannot be an in-flight tail.
	if err := fs.FlipBit("wal/"+segName(1), int64(segHeaderSize+recordFrameSize+2)); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	if _, _, err := OpenTailer(fs, "wal"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenTailer over mid-chain damage = %v, want ErrCorrupt", err)
	}
}
