package wal

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is the Dec failure state: a payload ended before the value
// it was supposed to contain. It wraps ErrCorrupt because a short payload
// behind a valid CRC means the encoder and decoder disagree — structural
// damage, not a torn write.
var ErrTruncated = errors.New("wal: truncated payload")

// Enc is an append-only little-endian encoder. The zero value (or one
// seeded with a reused buffer via B) is ready to use.
type Enc struct{ B []byte }

func (e *Enc) U8(v uint8)   { e.B = append(e.B, v) }
func (e *Enc) U16(v uint16) { e.B = binary.LittleEndian.AppendUint16(e.B, v) }
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }
func (e *Enc) I64(v int64)  { e.U64(uint64(v)) }
func (e *Enc) F64(v float64) {
	e.U64(math.Float64bits(v))
}
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.B = append(e.B, s...)
}

// Dec decodes what Enc encoded. It never panics: once any read runs past
// the buffer it latches the failure and every later read returns a zero
// value, so decode loops can defer a single Err() check to the end.
type Dec struct {
	b    []byte
	off  int
	fail bool
}

func NewDec(b []byte) *Dec { return &Dec{b: b} }

func (d *Dec) take(n int) []byte {
	if d.fail || n < 0 || len(d.b)-d.off < n {
		d.fail = true
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *Dec) U8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}
func (d *Dec) U16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}
func (d *Dec) U32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}
func (d *Dec) U64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}
func (d *Dec) I64() int64   { return int64(d.U64()) }
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }
func (d *Dec) Bool() bool   { return d.U8() != 0 }
func (d *Dec) Str() string {
	n := d.U32()
	v := d.take(int(n))
	if v == nil {
		return ""
	}
	return string(v)
}

// Len is a bounds-checked count prefix: it reads a U32 and fails the
// decoder if the claimed count could not possibly fit in the remaining
// bytes at elemSize bytes each, so corrupted counts cannot drive huge
// allocations in the caller.
func (d *Dec) Len(elemSize int) int {
	n := int(d.U32())
	if d.fail || elemSize <= 0 {
		return 0
	}
	if rem := len(d.b) - d.off; n > rem/elemSize {
		d.fail = true
		return 0
	}
	return n
}

// Remaining reports the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// Err returns ErrTruncated if any read ran out of bytes.
func (d *Dec) Err() error {
	if d.fail {
		return ErrTruncated
	}
	return nil
}
