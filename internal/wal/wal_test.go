package wal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", i%37)))
}

func mustOpen(t *testing.T, fsys FS, opt Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(fsys, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, rec *Recovered, from, n int) {
	t.Helper()
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if want := string(payload(from + i)); string(r) != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, rec := mustOpen(t, fs, opt)
	if rec.HaveCheckpoint || len(rec.Records) != 0 || rec.LastLSN != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	appendN(t, l, 0, 25)
	if got := l.LSN(); got != 25 {
		t.Fatalf("LSN = %d, want 25", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, fs, opt)
	defer l2.Close()
	wantRecords(t, rec2, 0, 25)
	if rec2.LastLSN != 25 || rec2.TornTail || rec2.HaveCheckpoint {
		t.Fatalf("recovered %+v", rec2)
	}
	// Appends continue the LSN sequence in a fresh segment.
	if lsn, err := l2.Append(payload(25)); err != nil || lsn != 26 {
		t.Fatalf("Append after reopen: lsn %d err %v", lsn, err)
	}
}

func TestRotationAcrossSegments(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", SegmentBytes: 256, Policy: SyncNone}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 60)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := 0
	for _, n := range fs.DumpNames() {
		if strings.HasSuffix(n, ".seg") {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", segs)
	}
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	wantRecords(t, rec, 0, 60)
}

func TestCheckpointRecoveryAndPruning(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", SegmentBytes: 256, KeepCheckpoints: 2}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 30)
	if _, err := l.WriteCheckpoint([]byte("ckpt-at-30")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 30, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := mustOpen(t, fs, opt)
	if !rec.HaveCheckpoint || string(rec.Checkpoint) != "ckpt-at-30" {
		t.Fatalf("checkpoint not recovered: %+v", rec)
	}
	if rec.CheckpointLSN != 30 || rec.LastLSN != 40 {
		t.Fatalf("LSNs: ckpt %d last %d, want 30/40", rec.CheckpointLSN, rec.LastLSN)
	}
	wantRecords(t, rec, 30, 10)

	// A second and third checkpoint: with KeepCheckpoints=2 the first is
	// pruned, and segments fully covered by the oldest kept one go too.
	appendN(t, l2, 40, 30)
	if _, err := l2.WriteCheckpoint([]byte("ckpt-at-70")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l2, 70, 30)
	if _, err := l2.WriteCheckpoint([]byte("ckpt-at-100")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var ckpts, firstSeg []string
	for _, n := range fs.DumpNames() {
		if strings.HasSuffix(n, ".ckpt") {
			ckpts = append(ckpts, n)
		}
		if strings.HasSuffix(n, ".seg") {
			firstSeg = append(firstSeg, n)
		}
	}
	if len(ckpts) != 2 {
		t.Fatalf("retained %d checkpoints (%v), want 2", len(ckpts), ckpts)
	}
	if first := firstSeg[0]; first <= "wal/"+segName(30) {
		t.Fatalf("segments not pruned past the oldest kept checkpoint: %v", firstSeg)
	}

	l3, rec3 := mustOpen(t, fs, opt)
	defer l3.Close()
	if string(rec3.Checkpoint) != "ckpt-at-100" || len(rec3.Records) != 0 || rec3.LastLSN != 100 {
		t.Fatalf("final recovery: %+v", rec3)
	}
}

func TestCheckpointFallback(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal"}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)
	if _, err := l.WriteCheckpoint([]byte("good-old")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 10)
	if _, err := l.WriteCheckpoint([]byte("bad-new")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Rot a bit in the newest checkpoint's payload.
	if err := fs.FlipBit("wal/"+ckptName(20), 20); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	if !rec.HaveCheckpoint || string(rec.Checkpoint) != "good-old" {
		t.Fatalf("fallback did not land on older checkpoint: %+v", rec)
	}
	if !rec.CheckpointFallback || len(rec.Warnings) == 0 {
		t.Fatalf("fallback not surfaced: %+v", rec)
	}
	// Replay resumes from the older checkpoint: records 11..25.
	wantRecords(t, rec, 10, 15)
}

func TestAllCheckpointsCorruptFullLogSurvives(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal"}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)
	if _, err := l.WriteCheckpoint([]byte("only")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.FlipBit("wal/"+ckptName(10), 15); err != nil {
		t.Fatal(err)
	}
	// The log still reaches back to LSN 1 (KeepCheckpoints=2 default kept
	// every segment), so recovery degrades to a full-log replay.
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	if rec.HaveCheckpoint {
		t.Fatalf("no checkpoint should have been usable: %+v", rec)
	}
	wantRecords(t, rec, 0, 15)
}

func TestAllCheckpointsCorruptTruncatedLogFails(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", SegmentBytes: 256, KeepCheckpoints: 1}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 40)
	if _, err := l.WriteCheckpoint([]byte("c1")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 40, 40)
	if _, err := l.WriteCheckpoint([]byte("c2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Early segments were pruned; corrupting the sole checkpoint leaves
	// nothing to rebuild from — a typed, sticky error, not a panic.
	if err := fs.FlipBit("wal/"+ckptName(80), 14); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(fs, opt)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Open = %v, want ErrNoCheckpoint", err)
	}
}

func TestTornTailTruncates(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := "wal/" + segName(1)
	size := fs.Size(seg)
	// Chop the last 3 bytes off the final record: a torn write.
	if err := fs.Truncate(seg, size-3); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, fs, opt)
	if !rec.TornTail || len(rec.Warnings) == 0 {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	wantRecords(t, rec, 0, 9)
	if rec.LastLSN != 9 {
		t.Fatalf("LastLSN = %d, want 9", rec.LastLSN)
	}
	// The log is usable again and the torn LSN is re-issued.
	if lsn, err := l2.Append(payload(9)); err != nil || lsn != 10 {
		t.Fatalf("Append after torn tail: lsn %d err %v", lsn, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec3 := mustOpen(t, fs, opt)
	defer l3.Close()
	wantRecords(t, rec3, 0, 10)
	if rec3.TornTail {
		t.Fatalf("tail should be clean after rewrite: %+v", rec3)
	}
}

func TestFlippedBitTruncatesMidLog(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := "wal/" + segName(1)
	// Flip a payload bit roughly mid-file: every record from there on is
	// discarded, cleanly, with a warning.
	if err := fs.FlipBit(seg, fs.Size(seg)/2); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	if !rec.TornTail {
		t.Fatalf("CRC mismatch not handled as torn tail: %+v", rec)
	}
	if len(rec.Records) >= 10 || len(rec.Records) == 0 {
		t.Fatalf("recovered %d records, want a strict mid-log prefix", len(rec.Records))
	}
	wantRecords(t, rec, 0, len(rec.Records))
}

func TestMissingSegmentIsGap(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", SegmentBytes: 256, Policy: SyncNone}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 60)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range fs.DumpNames() {
		if strings.HasSuffix(n, ".seg") {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	if err := fs.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(fs, opt)
	if !errors.Is(err, ErrGap) {
		t.Fatalf("Open = %v, want ErrGap", err)
	}
}

func TestBrokenLatchAfterFailedAppend(t *testing.T) {
	// SyncAlways writes each record through immediately, so the torn
	// write surfaces on the Append itself (under the group-commit
	// policies it would surface at the next write-out; see
	// TestBrokenLatchAfterFailedSync).
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 5)
	fs.SetBudget(4) // next append tears mid-frame
	if _, err := l.Append(payload(5)); err == nil {
		t.Fatal("Append should fail once the budget is exhausted")
	}
	fs.CrashKeep() // FS is healthy again...
	if _, err := l.Append(payload(6)); err == nil {
		t.Fatal("Append after a write failure must keep failing (broken latch)")
	}
	// ...but the log stays latched: a success here would sit beyond a torn
	// hole and be silently dropped by recovery.
	l.Close()
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	wantRecords(t, rec, 0, 5)
}

func TestBrokenLatchAfterFailedSync(t *testing.T) {
	// Under a group-commit policy the failed write happens at the sync
	// point, tearing the staged group; the latch must still engage and
	// later appends must keep failing.
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncNone}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 5)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 3) // staged, not yet written
	fs.SetBudget(4)     // the group write tears mid-frame
	if err := l.Sync(); err == nil {
		t.Fatal("Sync should fail once the budget is exhausted")
	}
	fs.CrashKeep()
	if _, err := l.Append(payload(8)); err == nil {
		t.Fatal("Append after a failed group write must fail (broken latch)")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync after a failed group write must fail (broken latch)")
	}
	l.Close()
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	// The synced prefix survives; the torn group is truncated away.
	wantRecords(t, rec, 0, 5)
}

func TestGroupCommitStagesUntilThreshold(t *testing.T) {
	// Under SyncBatch nothing reaches the filesystem until GroupBytes of
	// records have staged; the group then lands in one write. A kill
	// before the first group write therefore recovers only the records
	// made durable by explicit sync points.
	fs := NewMemFS()
	opt := Options{Dir: "wal", GroupBytes: 1 << 20}
	l, _ := mustOpen(t, fs, opt)
	w0 := fs.Written()
	appendN(t, l, 0, 50)
	if got := fs.Written(); got != w0 {
		t.Fatalf("staged appends wrote %d bytes before the group threshold", got-w0)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Written(); got == w0 {
		t.Fatal("Sync did not write the staged group out")
	}
	appendN(t, l, 50, 10) // staged after the sync point, then killed
	fs.CrashLose()
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	wantRecords(t, rec, 0, 50)
}

func TestClosedLog(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Dir: "wal"})
	appendN(t, l, 0, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(payload(3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log = %v, want ErrClosed", err)
	}
	if _, err := l.WriteCheckpoint(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteCheckpoint on closed log = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestSyncNoneLosesUnsyncedOnPowerLoss(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncNone}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 10) // never synced
	fs.CrashLose()        // power loss: unsynced bytes vanish
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	// Exactly the synced prefix survives — no torn tail, because the
	// truncation landed on the group-commit boundary.
	wantRecords(t, rec, 0, 10)
}

func TestSyncAlwaysSurvivesPowerLoss(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 10)
	fs.CrashLose() // no Close, no final sync — every record must survive
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	wantRecords(t, rec, 0, 10)
}

func TestCheckpointCrashMidRename(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", Policy: SyncAlways}
	l, _ := mustOpen(t, fs, opt)
	appendN(t, l, 0, 8)
	if _, err := l.WriteCheckpoint([]byte("stable")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8, 4)

	// Crash while the second checkpoint's temp file is being written: the
	// rename never happens, recovery uses the stable checkpoint.
	fs.SetBudget(30)
	if _, err := l.WriteCheckpoint([]byte("never-lands-because-it-is-long")); err == nil {
		t.Fatal("WriteCheckpoint should have crashed")
	}
	fs.CrashLose()
	l2, rec := mustOpen(t, fs, opt)
	if string(rec.Checkpoint) != "stable" || rec.CheckpointFallback {
		t.Fatalf("mid-write crash recovery: %+v", rec)
	}
	wantRecords(t, rec, 8, 4)
	// The orphaned temp file was cleaned up.
	for _, n := range fs.DumpNames() {
		if strings.HasSuffix(n, ".tmp") {
			t.Fatalf("leftover temp file %s", n)
		}
	}
	// And the crash-kept variant: the rename completed but was never
	// covered by a directory sync; the checkpoint is whole, so it is used.
	appendN(t, l2, 12, 4)
	fs.SetBudget(1 << 20)
	if _, err := l2.WriteCheckpoint([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	fs.CrashKeep()
	l3, rec3 := mustOpen(t, fs, opt)
	defer l3.Close()
	if string(rec3.Checkpoint) != "kept" || rec3.CheckpointLSN != 16 {
		t.Fatalf("crash-keep recovery: %+v", rec3)
	}
}

func TestEmptyPayloadAndLargeRecord(t *testing.T) {
	fs := NewMemFS()
	opt := Options{Dir: "wal", SegmentBytes: 1024}
	l, _ := mustOpen(t, fs, opt)
	big := strings.Repeat("B", 10_000) // single record larger than a segment
	for _, p := range []string{"", big, "tail"} {
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append %d bytes: %v", len(p), err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, fs, opt)
	defer l2.Close()
	if len(rec.Records) != 3 || len(rec.Records[0]) != 0 ||
		string(rec.Records[1]) != big || string(rec.Records[2]) != "tail" {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
}
