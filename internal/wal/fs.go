package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable log or checkpoint file handle.
type File interface {
	io.Writer
	// Sync flushes the file's written bytes to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface the WAL needs. Production code uses OS();
// the fault-injection tests substitute a deterministic in-memory
// implementation (MemFS) that can crash mid-write, lose unsynced bytes,
// and roll back renames that were never made durable by SyncDir.
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// List returns the base names of the regular files in dir, sorted.
	List(dir string) ([]string, error)
	// Rename atomically moves old to new (same directory).
	Rename(old, new string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir makes dir's entries (creates, renames, removes) durable.
	SyncDir(dir string) error
}

// OS returns the real-filesystem FS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create returns the *os.File directly — no hidden write buffering here.
// Group commit is the Log's job, with explicit semantics (GroupBytes,
// Sync points); wrapping the file in an opaque buffer underneath it would
// make the loss window on a crash impossible to reason about.
func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(old, new string) error        { return os.Rename(old, new) }
func (osFS) Remove(name string) error            { return os.Remove(name) }
func (osFS) Truncate(name string, n int64) error { return os.Truncate(name, n) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
