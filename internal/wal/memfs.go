package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every MemFS operation after the simulated
// process has crashed (its write budget ran out) and before Crash*
// resolves the outcome.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrInjected is the default error surfaced by scripted faults
// (SetReadFault / SetWriteFault / SetSyncFault with a nil error).
var ErrInjected = errors.New("wal: injected fault")

// MemFS is a deterministic in-memory FS for fault injection. It models
// the two distinct durability layers a real crash cuts through:
//
//   - a write budget: after SetBudget(n), exactly n more bytes of Write
//     succeed and the next byte fails mid-call — the process crash. This
//     places the crash at an arbitrary byte offset, including mid-record
//     and mid-header.
//   - a synced watermark per file, advanced only by File.Sync, plus a
//     pending-rename list cleared only by SyncDir — the page cache. After
//     a crash, CrashLose discards everything above the watermarks and
//     rolls back renames that were never made durable (the machine lost
//     power); CrashKeep keeps all written bytes and completed renames
//     (only the process died).
//
// Both resolutions reset the FS to a readable state so recovery can run
// against exactly what "the disk" would hold.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	budget  int64 // remaining writable bytes; < 0 means unlimited
	crashed bool
	pending []renameOp // renames not yet made durable by SyncDir
	written int64      // total bytes ever written (for sweep planning)

	// Scripted transient faults (see SetReadFault and friends). Unlike
	// the write budget these do not crash the FS: the matched operation
	// fails and life goes on — EIO on a cold page, a raced prune, a disk
	// that bounces an fsync.
	readFault  faultRule
	writeFault faultRule
	syncFault  faultRule
	readHook   func(path string) error
}

// faultRule scripts transient failures for one operation class: the next
// count calls whose path contains match fail with err.
type faultRule struct {
	match string
	count int // remaining injections; < 0 means unlimited
	err   error
}

// take consumes one injection if the rule matches path, returning the
// scripted error (nil when the rule is disarmed or does not match).
func (f *faultRule) take(path string) error {
	if f.count == 0 || !strings.Contains(path, f.match) {
		return nil
	}
	if f.count > 0 {
		f.count--
	}
	if f.err != nil {
		return f.err
	}
	return ErrInjected
}

type memFile struct {
	data   []byte
	synced int
}

type renameOp struct {
	from, to  string
	fromFile  *memFile // the file as it existed under from
	displaced *memFile // whatever `to` pointed at before, nil if nothing
}

// NewMemFS returns an empty MemFS with an unlimited write budget.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), budget: -1}
}

// SetBudget arms the crash: after n more written bytes, the next byte
// fails and the FS refuses all further work until CrashLose or CrashKeep.
// n < 0 disarms.
func (m *MemFS) SetBudget(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = n
	m.crashed = false
}

// Written returns the total bytes ever written through the FS, so a test
// can run a stream once uncrashed and derive the sweep offsets.
func (m *MemFS) Written() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Crashed reports whether the write budget has been exhausted.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// CrashLose resolves the crash as a power loss: every file is truncated
// to its synced watermark and renames never covered by a SyncDir are
// rolled back. The FS becomes usable again with an unlimited budget.
func (m *MemFS) CrashLose() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.pending) - 1; i >= 0; i-- {
		op := m.pending[i]
		if m.files[op.to] == op.fromFile {
			delete(m.files, op.to)
			if op.displaced != nil {
				m.files[op.to] = op.displaced
			}
			m.files[op.from] = op.fromFile
		}
	}
	m.pending = nil
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
	m.crashed = false
	m.budget = -1
}

// CrashKeep resolves the crash as a process kill with the OS intact:
// written bytes and completed renames survive even though never fsynced.
func (m *MemFS) CrashKeep() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending = nil
	for _, f := range m.files {
		f.synced = len(f.data)
	}
	m.crashed = false
	m.budget = -1
}

// SetReadFault arms scripted read-path injection: the next count
// ReadFile calls whose path contains match fail with err (nil err:
// ErrInjected). count < 0 injects until disarmed; count 0 disarms.
func (m *MemFS) SetReadFault(match string, count int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readFault = faultRule{match: match, count: count, err: err}
}

// SetWriteFault arms scripted write-path injection: the next count
// File.Write calls on files whose path contains match fail (taking no
// bytes) with err. Semantics as SetReadFault.
func (m *MemFS) SetWriteFault(match string, count int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeFault = faultRule{match: match, count: count, err: err}
}

// SetSyncFault arms scripted fsync injection: the next count File.Sync
// calls on files whose path contains match fail with err, without
// advancing the synced watermark. Semantics as SetReadFault.
func (m *MemFS) SetSyncFault(match string, count int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncFault = faultRule{match: match, count: count, err: err}
}

// SetReadHook installs fn to run at the top of every ReadFile, outside
// the FS lock — the fully scriptable side of the read path. The hook may
// mutate the FS (e.g. Remove the very file being read, modelling a prune
// racing an in-flight tailer Poll between its List and ReadFile); a
// non-nil return is surfaced as the ReadFile error. nil uninstalls.
func (m *MemFS) SetReadHook(fn func(path string) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readHook = fn
}

// FlipBit XORs one bit at byte offset off of name — the disk-rot /
// corruption injector.
func (m *MemFS) FlipBit(name string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(name)]
	if !ok || off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("memfs: flip %s@%d: no such byte", name, off)
	}
	f.data[off] ^= 1
	f.synced = len(f.data)
	return nil
}

// Size returns the length of name, or -1 if absent.
func (m *MemFS) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[filepath.Clean(name)]; ok {
		return int64(len(f.data))
	}
	return -1
}

func (m *MemFS) checkLocked() error {
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll is a no-op beyond the crash check: MemFS is flat, paths are
// just keys.
func (m *MemFS) MkdirAll(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkLocked()
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return nil, err
	}
	f := &memFile{}
	m.files[filepath.Clean(name)] = f
	return &memHandle{fs: m, f: f, name: filepath.Clean(name)}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	hook := m.readHook
	m.mu.Unlock()
	if hook != nil {
		// Outside the lock: the hook may call back into the FS.
		if err := hook(name); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return nil, err
	}
	if err := m.readFault.take(name); err != nil {
		return nil, fmt.Errorf("memfs: read %s: %w", name, err)
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: file does not exist", name)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return nil, err
	}
	dir = filepath.Clean(dir)
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(old, new string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return err
	}
	old, new = filepath.Clean(old), filepath.Clean(new)
	f, ok := m.files[old]
	if !ok {
		return fmt.Errorf("memfs: rename %s: file does not exist", old)
	}
	m.pending = append(m.pending, renameOp{from: old, to: new, fromFile: f, displaced: m.files[new]})
	delete(m.files, old)
	m.files[new] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return err
	}
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: file does not exist", name)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return err
	}
	f, ok := m.files[filepath.Clean(name)]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: file does not exist", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %s to %d: out of range", name, size)
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return err
	}
	m.pending = nil // renames (and creates/removes) now durable
	return nil
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	name   string
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, errors.New("memfs: write to closed file")
	}
	if err := h.fs.writeFault.take(h.name); err != nil {
		return 0, fmt.Errorf("memfs: write %s: %w", h.name, err)
	}
	n := len(p)
	if h.fs.budget >= 0 && int64(n) > h.fs.budget {
		n = int(h.fs.budget)
		h.f.data = append(h.f.data, p[:n]...)
		h.fs.written += int64(n)
		h.fs.budget = 0
		h.fs.crashed = true
		return n, ErrCrashed
	}
	h.f.data = append(h.f.data, p...)
	h.fs.written += int64(n)
	if h.fs.budget >= 0 {
		h.fs.budget -= int64(n)
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	if err := h.fs.syncFault.take(h.name); err != nil {
		return fmt.Errorf("memfs: fsync %s: %w", h.name, err)
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// DumpNames lists every file path in the FS (sorted) — a debugging aid
// for failed sweeps.
func (m *MemFS) DumpNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for p := range m.files {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

// String summarises the FS state.
func (m *MemFS) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "memfs{written=%d crashed=%v budget=%d", m.written, m.crashed, m.budget)
	for _, p := range func() []string {
		names := make([]string, 0, len(m.files))
		for q := range m.files {
			names = append(names, q)
		}
		sort.Strings(names)
		return names
	}() {
		f := m.files[p]
		fmt.Fprintf(&b, " %s:%d/%d", filepath.Base(p), f.synced, len(f.data))
	}
	b.WriteString("}")
	return b.String()
}
