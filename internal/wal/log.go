package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"

	// segHeaderSize: 8-byte magic, 8-byte first LSN, 4-byte CRC of the
	// first 16 bytes.
	segHeaderSize = 20
	// recordFrameSize: 4-byte payload length, 4-byte payload CRC.
	recordFrameSize = 8
	// maxRecordBytes bounds a single record; larger length fields are
	// treated as corruption rather than allocated.
	maxRecordBytes = 1 << 30
)

func segName(firstLSN uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix) }
func ckptName(lsn uint64) string     { return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix) }
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

func buildSegHeader(firstLSN uint64) []byte {
	b := make([]byte, 0, segHeaderSize)
	b = append(b, segMagic[:]...)
	b = binary.LittleEndian.AppendUint64(b, firstLSN)
	return binary.LittleEndian.AppendUint32(b, Checksum(b))
}

func parseSegHeader(data []byte, wantFirst uint64) bool {
	if len(data) < segHeaderSize {
		return false
	}
	if string(data[:8]) != string(segMagic[:]) {
		return false
	}
	if binary.LittleEndian.Uint32(data[16:20]) != Checksum(data[:16]) {
		return false
	}
	return binary.LittleEndian.Uint64(data[8:16]) == wantFirst
}

func buildCheckpointFile(lsn uint64, payload []byte) []byte {
	var e Enc
	e.B = make([]byte, 0, 8+4+8+8+len(payload)+4)
	e.B = append(e.B, ckptMagic[:]...)
	e.U32(CheckpointVersion)
	e.U64(lsn)
	e.U64(uint64(len(payload)))
	e.B = append(e.B, payload...)
	e.U32(Checksum(e.B[8:]))
	return e.B
}

func parseCheckpointFile(data []byte) (payload []byte, lsn uint64, err error) {
	const hdr = 8 + 4 + 8 + 8
	if len(data) < hdr+4 {
		return nil, 0, fmt.Errorf("short checkpoint file (%d bytes)", len(data))
	}
	if string(data[:8]) != string(ckptMagic[:]) {
		return nil, 0, fmt.Errorf("bad checkpoint magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != CheckpointVersion {
		return nil, 0, fmt.Errorf("unsupported checkpoint version %d", v)
	}
	lsn = binary.LittleEndian.Uint64(data[12:20])
	plen := binary.LittleEndian.Uint64(data[20:28])
	if plen != uint64(len(data)-hdr-4) {
		return nil, 0, fmt.Errorf("checkpoint length mismatch (header %d, file %d)", plen, len(data)-hdr-4)
	}
	if Checksum(data[8:len(data)-4]) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, 0, fmt.Errorf("checkpoint CRC mismatch")
	}
	return data[hdr : len(data)-4], lsn, nil
}

// Log is an open write-ahead log: an append position in a segment chain
// plus the checkpoint bookkeeping for the same directory. It is not
// goroutine-safe; the owning partitioner serialises access under its
// ingest lock.
type Log struct {
	fs  FS
	opt Options

	cur      File // active segment, nil only between rotate and next write-out
	curSize  int64
	nextLSN  uint64 // LSN the next Append will get; LSNs start at 1
	unsynced int64
	// buf is the group-commit buffer: acknowledged records not yet handed
	// to the OS. One write call per group (not per record) is most of what
	// group commit buys; writeOut drains it at sync points, rotation,
	// close, and whenever GroupBytes have accumulated.
	buf    []byte
	ckpts  []uint64 // retained checkpoint LSNs, ascending
	segs   []uint64 // live segment first-LSNs, ascending
	closed bool
	broken bool   // a write failed; the tail may be torn, refuse appends
	synced uint64 // LSN of the last record covered by a successful fsync
	enc    Enc
}

func (l *Log) path(name string) string { return filepath.Join(l.opt.Dir, name) }

// Open scans dir, recovers the newest readable checkpoint and the
// surviving record tail (see the package comment for the exact
// degradation rules), and returns a Log positioned to append after the
// last surviving record.
func Open(fsys FS, opt Options) (*Log, *Recovered, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := fsys.MkdirAll(opt.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{fs: fsys, opt: opt}
	names, err := fsys.List(opt.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}
	rec := &Recovered{}
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			// Leftover of a checkpoint that crashed before its rename;
			// the atomic-publish protocol makes it garbage by definition.
			_ = fsys.Remove(l.path(name))
			continue
		}
		if lsn, ok := parseName(name, ckptPrefix, ckptSuffix); ok {
			l.ckpts = append(l.ckpts, lsn)
			continue
		}
		if lsn, ok := parseName(name, segPrefix, segSuffix); ok {
			l.segs = append(l.segs, lsn)
			continue
		}
		rec.Warnings = append(rec.Warnings, fmt.Sprintf("ignoring unrecognised file %q", name))
	}
	// List is sorted and the zero-padded hex names sort by LSN, so ckpts
	// and segs are already ascending.

	// Newest readable checkpoint wins; older ones are the fallback chain.
	for i := len(l.ckpts) - 1; i >= 0; i-- {
		lsn := l.ckpts[i]
		data, rerr := fsys.ReadFile(l.path(ckptName(lsn)))
		if rerr == nil {
			payload, plsn, perr := parseCheckpointFile(data)
			if perr == nil && plsn == lsn {
				rec.HaveCheckpoint = true
				rec.Checkpoint = payload
				rec.CheckpointLSN = lsn
				rec.CheckpointFallback = i != len(l.ckpts)-1
				break
			}
			rerr = perr
			if perr == nil {
				rerr = fmt.Errorf("checkpoint LSN %d does not match file name", plsn)
			}
		}
		rec.Warnings = append(rec.Warnings,
			fmt.Sprintf("checkpoint %s unreadable (%v), falling back", ckptName(lsn), rerr))
	}
	if !rec.HaveCheckpoint {
		if len(l.ckpts) > 0 && (len(l.segs) == 0 || l.segs[0] != 1) {
			// Checkpoints existed (so old segments were pruned against
			// them) but none is readable and the log no longer reaches
			// back to the start of the stream: unrecoverable.
			return nil, nil, fmt.Errorf("wal: all %d checkpoints unreadable and log starts at segment %016x: %w",
				len(l.ckpts), firstOr(l.segs, 0), ErrNoCheckpoint)
		}
		if len(l.ckpts) > 0 {
			rec.Warnings = append(rec.Warnings,
				fmt.Sprintf("all %d checkpoints unreadable; replaying the full log", len(l.ckpts)))
		}
	}

	if err := l.scanSegments(rec); err != nil {
		return nil, nil, err
	}
	rec.LastLSN = l.nextLSN - 1
	// Everything recovery handed back came off stable storage.
	l.synced = rec.LastLSN
	// Start the tail segment now rather than on the first append: segment
	// creation carries a directory fsync, and paying it here keeps that
	// constant cost out of the ingest path.
	if err := l.startSegment(); err != nil {
		return nil, nil, err
	}
	if opt.Policy != SyncAlways {
		// The group buffer tops out at one group plus a record; growing it
		// here (not by doubling mid-ingest) keeps append allocation-free.
		l.buf = make([]byte, 0, opt.GroupBytes+4096)
	}
	return l, rec, nil
}

func firstOr(s []uint64, def uint64) uint64 {
	if len(s) > 0 {
		return s[0]
	}
	return def
}

// scanSegments reads every record after rec.CheckpointLSN, truncating the
// log at the first damaged frame (torn tail) and erroring on gaps. It
// leaves l.nextLSN positioned after the last surviving record.
func (l *Log) scanSegments(rec *Recovered) error {
	base := rec.CheckpointLSN
	l.nextLSN = base + 1

	// The scan starts at the last segment whose first LSN is <= base+1 —
	// the one that contains (or would contain) the first record to replay.
	start := -1
	for i, fl := range l.segs {
		if fl <= base+1 {
			start = i
		}
	}
	if start == -1 {
		if len(l.segs) > 0 {
			// Every surviving segment starts after the records we need.
			return fmt.Errorf("wal: need records from LSN %d but oldest segment starts at %d: %w",
				base+1, l.segs[0], ErrGap)
		}
		return nil
	}

	expectFirst := uint64(0)
	for i := start; i < len(l.segs); i++ {
		fl := l.segs[i]
		name := segName(fl)
		data, err := l.fs.ReadFile(l.path(name))
		if err != nil {
			return fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		if !parseSegHeader(data, fl) {
			// A damaged header can only be the torn creation of the tail
			// segment; drop it and anything after it.
			rec.Warnings = append(rec.Warnings,
				fmt.Sprintf("segment %s has a damaged header; truncating log before it", name))
			return l.dropFrom(i, rec)
		}
		if expectFirst != 0 && fl != expectFirst {
			if fl > expectFirst {
				return fmt.Errorf("wal: segment chain jumps from LSN %d to %d (%s): %w",
					expectFirst, fl, name, ErrGap)
			}
			return fmt.Errorf("wal: segment %s overlaps the previous segment (expected first LSN %d): %w",
				name, expectFirst, ErrCorrupt)
		}
		lsn := fl
		off := segHeaderSize
		for off < len(data) {
			tornAt := -1
			var plen int
			if len(data)-off < recordFrameSize {
				tornAt = off
			} else {
				plen = int(binary.LittleEndian.Uint32(data[off:]))
				if plen > maxRecordBytes || off+recordFrameSize+plen > len(data) {
					tornAt = off
				} else if Checksum(data[off+recordFrameSize:off+recordFrameSize+plen]) !=
					binary.LittleEndian.Uint32(data[off+4:]) {
					tornAt = off
				}
			}
			if tornAt >= 0 {
				rec.Warnings = append(rec.Warnings,
					fmt.Sprintf("segment %s: bad record at offset %d (LSN %d); truncating log there", name, off, lsn))
				if err := l.fs.Truncate(l.path(name), int64(off)); err != nil {
					return fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
				}
				if lsn > base {
					l.nextLSN = lsn
				}
				return l.dropFrom(i+1, rec)
			}
			payload := data[off+recordFrameSize : off+recordFrameSize+plen]
			if lsn > base {
				rec.Records = append(rec.Records, payload)
			}
			lsn++
			off += recordFrameSize + plen
		}
		if lsn > base {
			l.nextLSN = lsn
		}
		expectFirst = lsn
	}
	return nil
}

// dropFrom removes segments l.segs[i:] — everything at or past the first
// damaged frame — and records the truncation in rec.
func (l *Log) dropFrom(i int, rec *Recovered) error {
	rec.TornTail = true
	for _, fl := range l.segs[i:] {
		if err := l.fs.Remove(l.path(segName(fl))); err != nil {
			return fmt.Errorf("wal: remove truncated segment %s: %w", segName(fl), err)
		}
		rec.Warnings = append(rec.Warnings, fmt.Sprintf("removed segment %s past the torn tail", segName(fl)))
	}
	l.segs = l.segs[:i]
	return nil
}

// LSN returns the LSN of the last appended (or recovered) record.
func (l *Log) LSN() uint64 { return l.nextLSN - 1 }

// SyncedLSN returns the LSN of the last record known durable — covered by
// a successful fsync (or recovered off disk at Open). Records between
// SyncedLSN and LSN are acknowledged but staged or unsynced; a crash can
// lose them. After a write failure this is the exact watermark of what
// the disk is guaranteed to hold.
func (l *Log) SyncedLSN() uint64 { return l.synced }

// Broken reports whether a write failure has latched the log: appends are
// refused until a successful WriteCheckpoint re-arms it.
func (l *Log) Broken() bool { return l.broken }

// retryDelay is the backoff before retry attempt (0-based, capped).
func (l *Log) retryDelay(attempt int) time.Duration {
	d := l.opt.RetryBackoff
	for i := 0; i < attempt && d < time.Second; i++ {
		d *= 2
	}
	return d
}

// Append frames payload, stages it in the group-commit buffer and applies
// the sync policy: SyncAlways writes and fsyncs the record immediately;
// SyncBatch and SyncNone let records accumulate and hand the whole group
// to the OS in one write once GroupBytes are staged (SyncBatch follows the
// group write with one fsync). On any write error the log latches broken:
// the tail may be torn, and accepting later appends after a hole would let
// the caller apply state that recovery will silently drop.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.enc.B = append(l.enc.B[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	l.enc.B = append(l.enc.B, payload...)
	return l.AppendFramed(l.enc.B)
}

// AppendFramed is Append for callers that reserve the record frame
// themselves: b's first eight bytes are overwritten with the length/CRC
// frame and the payload starts at b[8]. Encoding straight into such a
// buffer skips Append's payload copy.
func (l *Log) AppendFramed(b []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken {
		return 0, fmt.Errorf("wal: log broken by earlier write failure: %w", ErrClosed)
	}
	if len(b) < recordFrameSize {
		return 0, fmt.Errorf("wal: framed record shorter than its frame")
	}
	payload := b[recordFrameSize:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], Checksum(payload))
	l.buf = append(l.buf, b...)
	n := int64(len(b))
	l.curSize += n
	l.unsynced += n
	lsn := l.nextLSN
	l.nextLSN++

	switch l.opt.Policy {
	case SyncAlways:
		if err := l.writeSync(); err != nil {
			return 0, err
		}
	case SyncBatch:
		if l.unsynced >= l.opt.GroupBytes {
			if err := l.writeSync(); err != nil {
				return 0, err
			}
		}
	case SyncNone:
		if int64(len(l.buf)) >= l.opt.GroupBytes {
			if err := l.writeOut(); err != nil {
				return 0, err
			}
		}
	}
	if l.curSize >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.broken = true
			return 0, err
		}
	}
	return lsn, nil
}

// writeOut drains the group-commit buffer into the active segment. A
// segment is always active on a healthy log (Open and rotate both start
// one eagerly). A failed write is retried opt.Retries times (the OS may
// have taken a prefix; only the remainder is re-sent); once retries are
// exhausted the log latches broken: the segment tail may hold a torn
// fragment of the group.
func (l *Log) writeOut() error {
	if len(l.buf) == 0 {
		return nil
	}
	if l.cur == nil {
		l.broken = true
		return fmt.Errorf("wal: no active segment for staged records")
	}
	off := 0
	var err error
	for attempt := 0; ; attempt++ {
		var n int
		n, err = l.cur.Write(l.buf[off:])
		off += n
		if err == nil && off == len(l.buf) {
			l.buf = l.buf[:0]
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		if attempt >= l.opt.Retries {
			break
		}
		time.Sleep(l.retryDelay(attempt))
	}
	l.broken = true
	return fmt.Errorf("wal: write record group: %w", err)
}

// writeSync drains the buffer and fsyncs the segment — one durability
// point for the whole group. A failed fsync is retried like a failed
// write; on success the synced watermark advances to the log head.
func (l *Log) writeSync() error {
	if err := l.writeOut(); err != nil {
		return err
	}
	if l.cur == nil || l.unsynced == 0 {
		return nil
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = l.cur.Sync(); err == nil {
			l.unsynced = 0
			l.synced = l.nextLSN - 1
			return nil
		}
		if attempt >= l.opt.Retries {
			break
		}
		time.Sleep(l.retryDelay(attempt))
	}
	l.broken = true
	return fmt.Errorf("wal: fsync segment: %w", err)
}

func (l *Log) startSegment() error {
	name := segName(l.nextLSN)
	f, err := l.fs.Create(l.path(name))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	if _, err := f.Write(buildSegHeader(l.nextLSN)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header %s: %w", name, err)
	}
	// The directory entry must be durable before any record in the file
	// can be considered durable.
	if err := l.fs.SyncDir(l.opt.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir for segment %s: %w", name, err)
	}
	l.cur = f
	// curSize already counts any records staged since the last rotation;
	// the header joins them.
	l.curSize += segHeaderSize
	l.segs = append(l.segs, l.nextLSN)
	return nil
}

func (l *Log) rotate() error {
	if l.cur == nil {
		return nil
	}
	// Rotation is a durability point under every policy.
	l.unsynced = 1 // force the sync even if group accounting says clean
	if err := l.writeSync(); err != nil {
		return err
	}
	err := l.cur.Close()
	l.cur = nil
	l.curSize = 0
	if err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	// Start the successor now, while the buffer is drained: its first LSN
	// is exactly l.nextLSN here, and rotation already paid for a sync, so
	// the segment-creation dir-fsync belongs at this point too.
	return l.startSegment()
}

// Sync writes out any staged records and forces the active segment to
// stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if l.broken {
		return fmt.Errorf("wal: log broken by earlier write failure: %w", ErrClosed)
	}
	return l.writeSync()
}

// WriteCheckpoint atomically publishes payload as the checkpoint at the
// current LSN (temp file + fsync + rename + dir fsync), then prunes
// checkpoints beyond KeepCheckpoints and segments whose records all
// precede the oldest retained checkpoint. Returns the checkpoint file
// size.
//
// On a broken log (an earlier write or fsync failure latched it) the
// checkpoint is still attempted: the payload is the caller's full state,
// which supersedes every record including any lost in the torn tail. If
// it publishes, the log re-arms — the staged group is discarded, history
// collapses to the re-arming checkpoint (older checkpoints can no longer
// be corroborated by the damaged chain), and appends resume on a fresh
// segment.
func (l *Log) WriteCheckpoint(payload []byte) (int64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	// Make the log durable through the checkpoint LSN first, so the
	// checkpoint never describes state the log cannot corroborate. If the
	// sync fails (or already failed), fall through broken: the checkpoint
	// itself is about to supersede the log.
	if !l.broken {
		if err := l.writeSync(); err != nil && !l.broken {
			return 0, err
		}
	}
	lsn := l.LSN()
	file := buildCheckpointFile(lsn, payload)
	name := ckptName(lsn)
	tmp := name + tmpSuffix
	f, err := l.fs.Create(l.path(tmp))
	if err != nil {
		return 0, fmt.Errorf("wal: create checkpoint temp: %w", err)
	}
	if _, err := f.Write(file); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: fsync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err := l.fs.Rename(l.path(tmp), l.path(name)); err != nil {
		return 0, fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	if err := l.fs.SyncDir(l.opt.Dir); err != nil {
		return 0, fmt.Errorf("wal: sync dir after checkpoint: %w", err)
	}
	if len(l.ckpts) == 0 || l.ckpts[len(l.ckpts)-1] != lsn {
		l.ckpts = append(l.ckpts, lsn)
	}
	if l.broken {
		if err := l.rearm(lsn); err != nil {
			return 0, err
		}
		return int64(len(file)), nil
	}
	// Prune: old checkpoints first, then segments the oldest retained
	// checkpoint makes redundant. Failed removals are retried implicitly
	// by the next checkpoint; staleness is harmless.
	for len(l.ckpts) > l.opt.KeepCheckpoints {
		_ = l.fs.Remove(l.path(ckptName(l.ckpts[0])))
		l.ckpts = l.ckpts[1:]
	}
	oldest := l.ckpts[0]
	for len(l.segs) >= 2 && l.segs[1] <= oldest+1 {
		_ = l.fs.Remove(l.path(segName(l.segs[0])))
		l.segs = l.segs[1:]
	}
	return int64(len(file)), nil
}

// rearm recovers a broken log after a checkpoint published at lsn. Every
// record — durable, staged, or lost in the torn tail — has LSN <= lsn and
// is superseded by the checkpoint payload, so the whole segment chain and
// every older checkpoint are dropped (a fallback to an older checkpoint
// would need records the damaged chain cannot corroborate) and a fresh
// tail segment is started at the head. Failed removals are tolerated:
// recovery picks the newest segment containing the next record to replay,
// so stale leftovers are ignored.
func (l *Log) rearm(lsn uint64) error {
	l.buf = l.buf[:0]
	l.unsynced = 0
	if l.cur != nil {
		_ = l.cur.Close()
		l.cur = nil
	}
	l.curSize = 0
	for _, fl := range l.segs {
		_ = l.fs.Remove(l.path(segName(fl)))
	}
	l.segs = l.segs[:0]
	for _, c := range l.ckpts {
		if c != lsn {
			_ = l.fs.Remove(l.path(ckptName(c)))
		}
	}
	l.ckpts = append(l.ckpts[:0], lsn)
	l.broken = false
	if err := l.startSegment(); err != nil {
		l.broken = true
		return fmt.Errorf("wal: re-arm after checkpoint: %w", err)
	}
	l.synced = lsn
	return nil
}

// Close writes out staged records, syncs and closes the active segment.
// The log accepts no further operations.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	if !l.broken {
		if err := l.writeSync(); err != nil {
			first = err
		}
	}
	if l.cur == nil {
		return first
	}
	if err := l.cur.Close(); err != nil && first == nil {
		first = fmt.Errorf("wal: close segment: %w", err)
	}
	l.cur = nil
	return first
}
