// Package wal implements the durability substrate of the public loom
// package: a write-ahead segment log of ingest records plus versioned,
// CRC-framed binary checkpoints, both written through a small filesystem
// interface so crash behaviour is testable deterministically.
//
// # On-disk layout
//
// A WAL directory holds two kinds of files:
//
//	wal-<firstLSN>.seg        segment log files, append-only
//	checkpoint-<lsn>.ckpt     full-state checkpoints, written atomically
//
// Every ingest operation of the owning partitioner appends one record to
// the current segment before it is applied (log-before-apply), so the log
// replayed on top of the newest checkpoint reconstructs the exact state —
// including sticky error paths, which fail identically on replay. Records
// are opaque payloads to this package; framing, integrity and ordering are
// its whole job.
//
// Segment files carry a 20-byte header (magic, format version, first LSN,
// header CRC) followed by length-prefixed records, each protected by a
// CRC-32C (Castagnoli) of its payload. LSNs are implicit: the i-th record
// of a segment has LSN firstLSN+i, and segment chains are validated for
// continuity when the log is opened.
//
// Checkpoints are written to a temporary file, fsynced, renamed into
// place, and the directory fsynced — the standard atomic-publish sequence
// — and the last KeepCheckpoints of them are retained so a corrupt latest
// checkpoint can fall back to the previous one. Segments whose records all
// precede the oldest retained checkpoint are deleted.
//
// # Recovery semantics
//
// Open scans the directory and returns the newest checkpoint whose CRC
// verifies (falling back across retained checkpoints), plus every record
// after it. The first record whose frame is short or whose CRC mismatches
// is treated as the torn tail of a crashed writer: the log is truncated at
// that offset, any later segments are removed, and a warning is recorded —
// recovery proceeds with the surviving prefix, which is always a
// batch-consistent state. A gap in the segment chain (records missing
// before intact ones) is not recoverable and surfaces as ErrGap; a
// directory whose checkpoints are all unreadable and whose log does not
// reach back to LSN 0 surfaces ErrNoCheckpoint. Neither panics.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Format versions, bumped when the on-disk encoding changes shape.
const (
	// SegmentVersion is the segment file format version.
	SegmentVersion = 1
	// CheckpointVersion is the checkpoint file format version.
	CheckpointVersion = 1
)

var (
	segMagic  = [8]byte{'L', 'O', 'O', 'M', 'W', 'A', 'L', '1'}
	ckptMagic = [8]byte{'L', 'O', 'O', 'M', 'C', 'K', 'P', '1'}
)

// castagnoli is the CRC-32C polynomial table; CRC-32C has hardware support
// on every modern ISA and is the conventional WAL record checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Typed recovery errors. They are returned (wrapped with context) from
// Open — never panicked — so callers can distinguish a recoverable torn
// tail (not an error at all; see Recovered.TornTail) from unrecoverable
// log damage.
var (
	// ErrCorrupt marks structural damage that is not a torn tail: an
	// unparseable segment header in the middle of the chain, or a record
	// that claims to extend past its segment in a non-final position.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrGap marks a discontinuity in the segment chain: records between
	// the recovery base and the surviving segments are missing, so no
	// consistent state can be rebuilt.
	ErrGap = errors.New("wal: missing log segment")
	// ErrNoCheckpoint marks a directory whose checkpoints are all
	// unreadable and whose log does not reach back to the beginning of
	// the stream.
	ErrNoCheckpoint = errors.New("wal: no usable checkpoint")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

// SegmentError attributes log damage to one segment file, so a supervisor
// can quarantine the segment by name instead of guessing from the message.
// It wraps the underlying classification (ErrCorrupt, ErrGap, or a raw
// read error), which errors.Is/As see through.
type SegmentError struct {
	// Name is the base name of the segment the damage was attributed to.
	Name string
	Err  error
}

func (e *SegmentError) Error() string { return e.Err.Error() }
func (e *SegmentError) Unwrap() error { return e.Err }

// SyncPolicy selects when appended records are written and fsynced to
// stable storage. Under SyncBatch and SyncNone, appended records are
// group-committed: they accumulate in a user-space buffer and are handed
// to the OS in one write per GroupBytes-sized group (and at every sync
// point — Sync, checkpoint, rotation, close). A crash or kill between
// sync points can lose the staged group; recovery still lands on a
// record boundary.
type SyncPolicy uint8

const (
	// SyncBatch (the default) group-commits: the log writes and fsyncs
	// once at least GroupBytes of records have accumulated since the last
	// sync, and always at rotation, checkpoint and close. A crash can lose
	// at most the last group.
	SyncBatch SyncPolicy = iota
	// SyncAlways writes and fsyncs every record: every acknowledged append
	// is durable before the caller proceeds.
	SyncAlways
	// SyncNone never fsyncs on append (rotation, checkpoint and close
	// still sync); staged groups are written per GroupBytes and the OS
	// decides when dirty pages reach the disk.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Options configures a Log.
type Options struct {
	// Dir is the WAL directory (required; created if absent).
	Dir string
	// Policy is the fsync policy (default SyncBatch).
	Policy SyncPolicy
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// GroupBytes is the group-commit threshold (default 256 KiB): staged
	// records are written out — and, under SyncBatch, fsynced — once this
	// many bytes have accumulated.
	GroupBytes int64
	// KeepCheckpoints is how many checkpoints to retain (default 2; the
	// second is the fallback when the latest is corrupt).
	KeepCheckpoints int
	// Retries is how many times a failed segment write or fsync is
	// retried (sleeping RetryBackoff, doubled per attempt, in between)
	// before the log latches broken. Default 0: the first error breaks
	// the log, exactly the pre-retry behaviour.
	Retries int
	// RetryBackoff is the initial delay between write/fsync retries,
	// doubling per attempt (default 10ms). Only consulted when Retries
	// is non-zero.
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.GroupBytes == 0 {
		o.GroupBytes = 256 << 10
	}
	if o.KeepCheckpoints == 0 {
		o.KeepCheckpoints = 2
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	return o
}

// Recovered is what Open found in an existing WAL directory.
type Recovered struct {
	// HaveCheckpoint reports whether a readable checkpoint was found;
	// Checkpoint is its payload and CheckpointLSN its log position.
	HaveCheckpoint bool
	Checkpoint     []byte
	CheckpointLSN  uint64
	// Records holds the payloads of every surviving record after the
	// checkpoint, in LSN order (the first has LSN CheckpointLSN+1).
	Records [][]byte
	// LastLSN is the LSN of the last surviving record (CheckpointLSN when
	// Records is empty).
	LastLSN uint64
	// TornTail reports that a short or CRC-mismatching record was found
	// and the log was truncated there (the crashed writer's torn tail).
	TornTail bool
	// CheckpointFallback reports that the newest checkpoint was unreadable
	// and an older one was used instead.
	CheckpointFallback bool
	// Warnings records every degradation tolerated during recovery.
	Warnings []string
}
