package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"strings"
)

// Tailer reads a WAL directory that another process owns, strictly
// read-only: it never creates segments, never truncates torn tails and
// never prunes — the mutations Open performs to position a writer. A
// router replica uses a Tailer to bootstrap from a primary's checkpoint
// and then follow the primary's log as it grows (the "-follow" serving
// mode), without either process coordinating beyond the filesystem.
//
// Because the primary may be mid-write when a segment is read, a damaged
// frame at the end of the log is not an error here: it is an incomplete
// group-commit flush (or a genuinely torn tail, which the next writer
// Open will truncate) and Poll simply stops before it, returning what is
// intact. The same record is re-examined on the next Poll. Damage in a
// non-final position — a bad frame with intact segments after it, or a
// chain discontinuity — is real corruption and surfaces as ErrCorrupt /
// ErrGap, exactly like Open.
//
// A Tailer is not goroutine-safe; the owning follower serialises Poll.
type Tailer struct {
	fs   FS
	dir  string
	next uint64 // LSN the next Poll starts delivering at
}

// OpenTailer scans dir read-only and returns the same recovery view Open
// would produce — the newest readable checkpoint plus every intact record
// after it — without mutating the directory. The returned Tailer is
// positioned to deliver records appended after rec.LastLSN.
func OpenTailer(fsys FS, dir string) (*Tailer, *Recovered, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("wal: tailer dir is required")
	}
	t := &Tailer{fs: fsys, dir: dir}
	rec := &Recovered{}
	ckpts, segs, err := t.scanNames(rec)
	if err != nil {
		return nil, nil, err
	}

	// Newest readable checkpoint wins; older ones are the fallback chain —
	// the same degradation rules as Open.
	for i := len(ckpts) - 1; i >= 0; i-- {
		lsn := ckpts[i]
		data, rerr := fsys.ReadFile(filepath.Join(dir, ckptName(lsn)))
		if rerr == nil {
			payload, plsn, perr := parseCheckpointFile(data)
			if perr == nil && plsn == lsn {
				rec.HaveCheckpoint = true
				rec.Checkpoint = payload
				rec.CheckpointLSN = lsn
				rec.CheckpointFallback = i != len(ckpts)-1
				break
			}
			rerr = perr
			if perr == nil {
				rerr = fmt.Errorf("checkpoint LSN %d does not match file name", plsn)
			}
		}
		rec.Warnings = append(rec.Warnings,
			fmt.Sprintf("checkpoint %s unreadable (%v), falling back", ckptName(lsn), rerr))
	}
	if !rec.HaveCheckpoint {
		if len(ckpts) > 0 && (len(segs) == 0 || segs[0] != 1) {
			return nil, nil, fmt.Errorf("wal: all %d checkpoints unreadable and log starts at segment %016x: %w",
				len(ckpts), firstOr(segs, 0), ErrNoCheckpoint)
		}
		if len(ckpts) > 0 {
			rec.Warnings = append(rec.Warnings,
				fmt.Sprintf("all %d checkpoints unreadable; replaying the full log", len(ckpts)))
		}
	}

	t.next = rec.CheckpointLSN + 1
	records, torn, err := t.readFrom(segs, rec)
	if err != nil {
		return nil, nil, err
	}
	rec.Records = records
	rec.TornTail = torn
	rec.LastLSN = t.next - 1
	return t, rec, nil
}

// Poll re-lists the directory and returns the payloads of every intact
// record appended since the previous Poll (or OpenTailer), in LSN order.
// An in-flight write at the end of the log stops the scan early — those
// records are returned by a later Poll once their frames are complete. If
// the primary has checkpointed and pruned the segments the tailer still
// needs (the follower fell too far behind), Poll returns ErrGap: the
// follower must re-bootstrap from the newer checkpoint.
func (t *Tailer) Poll() ([][]byte, error) {
	_, segs, err := t.scanNames(nil)
	if err != nil {
		return nil, err
	}
	records, _, err := t.readFrom(segs, nil)
	return records, err
}

// LSN returns the LSN of the last record the tailer has delivered.
func (t *Tailer) LSN() uint64 { return t.next - 1 }

// scanNames lists the directory into sorted checkpoint and segment LSN
// slices. Unrecognised files are warned about once, at open time (rec is
// nil on Poll rescans).
func (t *Tailer) scanNames(rec *Recovered) (ckpts, segs []uint64, err error) {
	names, err := t.fs.List(t.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list dir: %w", err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			continue // a checkpoint mid-publish; not ours to clean up
		}
		if lsn, ok := parseName(name, ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, lsn)
			continue
		}
		if lsn, ok := parseName(name, segPrefix, segSuffix); ok {
			segs = append(segs, lsn)
			continue
		}
		if rec != nil {
			rec.Warnings = append(rec.Warnings, fmt.Sprintf("ignoring unrecognised file %q", name))
		}
	}
	// List is sorted and the zero-padded hex names sort by LSN.
	return ckpts, segs, nil
}

// readFrom walks segments collecting every intact record with
// LSN >= t.next, advancing t.next past each one. It reports (but
// tolerates) a damaged final frame — the live writer's in-flight tail —
// and errors on gaps and mid-chain damage.
func (t *Tailer) readFrom(segs []uint64, rec *Recovered) (records [][]byte, torn bool, err error) {
	// Start at the last segment whose first LSN is <= t.next — the one
	// that contains (or would contain) the next record to deliver.
	start := -1
	for i, fl := range segs {
		if fl <= t.next {
			start = i
		}
	}
	if start == -1 {
		if len(segs) > 0 {
			return nil, false, fmt.Errorf("wal: need records from LSN %d but oldest segment starts at %d: %w",
				t.next, segs[0], ErrGap)
		}
		return nil, false, nil
	}

	expectFirst := uint64(0)
	for i := start; i < len(segs); i++ {
		fl := segs[i]
		name := segName(fl)
		data, rerr := t.fs.ReadFile(filepath.Join(t.dir, name))
		if rerr != nil {
			// The primary may prune a segment between List and ReadFile;
			// a vanished segment at the start of the walk is a pruning
			// race only if we no longer need it. Surfaced as a transient
			// (non-Gap, non-Corrupt) error: the next Poll re-lists and
			// classifies the directory's true state.
			return nil, false, &SegmentError{Name: name,
				Err: fmt.Errorf("wal: read segment %s: %w", name, rerr)}
		}
		if !parseSegHeader(data, fl) {
			if i == len(segs)-1 {
				// The tail segment's header is still being created.
				if rec != nil {
					rec.Warnings = append(rec.Warnings,
						fmt.Sprintf("segment %s has a damaged header; stopping before it", name))
				}
				return records, true, nil
			}
			return nil, false, &SegmentError{Name: name,
				Err: fmt.Errorf("wal: segment %s has a damaged header mid-chain: %w", name, ErrCorrupt)}
		}
		if expectFirst != 0 && fl != expectFirst {
			if fl > expectFirst {
				return nil, false, fmt.Errorf("wal: segment chain jumps from LSN %d to %d (%s): %w",
					expectFirst, fl, name, ErrGap)
			}
			return nil, false, &SegmentError{Name: name,
				Err: fmt.Errorf("wal: segment %s overlaps the previous segment (expected first LSN %d): %w",
					name, expectFirst, ErrCorrupt)}
		}
		lsn := fl
		off := segHeaderSize
		for off < len(data) {
			bad := false
			var plen int
			if len(data)-off < recordFrameSize {
				bad = true
			} else {
				plen = int(binary.LittleEndian.Uint32(data[off:]))
				if plen > maxRecordBytes || off+recordFrameSize+plen > len(data) {
					bad = true
				} else if Checksum(data[off+recordFrameSize:off+recordFrameSize+plen]) !=
					binary.LittleEndian.Uint32(data[off+4:]) {
					bad = true
				}
			}
			if bad {
				if i == len(segs)-1 {
					// The writer's in-flight (or torn) tail: stop here;
					// the next Poll re-examines the same offset.
					if rec != nil {
						rec.Warnings = append(rec.Warnings,
							fmt.Sprintf("segment %s: incomplete record at offset %d (LSN %d); stopping there", name, off, lsn))
					}
					return records, true, nil
				}
				return nil, false, &SegmentError{Name: name,
					Err: fmt.Errorf("wal: segment %s: bad record at offset %d with intact segments after it: %w",
						name, off, ErrCorrupt)}
			}
			payload := data[off+recordFrameSize : off+recordFrameSize+plen]
			if lsn >= t.next {
				records = append(records, payload)
				t.next = lsn + 1
			}
			lsn++
			off += recordFrameSize + plen
		}
		expectFirst = lsn
	}
	return records, false, nil
}
