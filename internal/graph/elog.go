package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"loom/internal/wal"
)

// The edge log is the recorded graph's insertion-order edge sequence —
// what eorder ([]Edge, 16 bytes per edge plus slice overhead) and the
// partitioner's accepted-edge log ([]StreamEdge, ~48 bytes plus four
// strings per edge) used to hold as materialised slices. It stores
// (ui, vi) dense-index pairs as plain varints in self-contained chunks of
// logChunkEdges edges: ~2–4 bytes per edge on real streams. Absolute
// values beat delta coding here — consecutive stream edges are unsorted,
// so deltas have random sign and hub magnitude, while skewed streams keep
// most absolute indices small (hubs intern first and recur most).
//
// Frozen chunks are immutable. With a spill filesystem configured (the
// same wal.FS abstraction the WAL uses, so the fault-injection MemFS
// applies), each chunk is written to disk at freeze time — temp file,
// Sync, Rename, SyncDir — and its in-memory payload dropped, bounding
// resident log memory to the active chunk regardless of stream length. A
// failed spill degrades gracefully: the chunk stays resident, the error
// is recorded, and Compact retries later (the partitioner calls it at
// checkpoint).
//
// Readers never take the writer's lock: view() captures slice headers of
// the frozen list and the active buffer (append-only — reallocation makes
// new arrays, captured headers stay valid), and Compact never mutates a
// published frozen array in place (it rebuilds the slice copy-on-write
// and swaps). Spilled files are write-once at the point a view can
// reference them.

// logChunkEdges is the number of edges per frozen chunk. At ~3 bytes per
// encoded edge a chunk is ~12 KiB: large enough that spill I/O is
// amortised, small enough that the resident active tail is negligible.
const logChunkEdges = 4096

// logChunk is one frozen run of logChunkEdges edges. Exactly one of data
// and file is set: data holds the encoded payload in memory; file names
// the spilled chunk (base name inside the log's dir).
type logChunk struct {
	data []byte
	file string
	n    int
}

// edgeLog accumulates the edge sequence. Not safe for concurrent writers;
// the Graph's owner (the partitioner) serialises writes, and lock-free
// readers use view().
type edgeLog struct {
	frozen  []logChunk
	active  []byte
	activeN int
	n       int

	fs       wal.FS // nil: pure in-memory log; non-nil: read (and spill) chunks here
	dir      string
	noSpill  bool  // read spilled chunks but never write new ones (clones)
	spillErr error // latest failed spill; cleared by a successful Compact
	spilled  int   // chunks resident on disk
	spillB   int64 // bytes resident on disk
}

const (
	logChunkMagic = 0x4c454331 // "LEC1"
	logChunkHdr   = 12         // magic + edge count + payload crc32
)

func logChunkName(i int) string { return fmt.Sprintf("elog-%08d.chk", i) }

// append records edge (ui, vi). Each edge encodes independently, so every
// chunk decodes independently of its predecessors — the property spilling
// depends on.
func (l *edgeLog) append(ui, vi uint32) {
	l.active = appendUv(l.active, uint64(ui))
	l.active = appendUv(l.active, uint64(vi))
	l.activeN++
	l.n++
	if l.activeN == logChunkEdges {
		l.freeze()
	}
}

// freeze seals the active buffer into a frozen chunk (spilling it if a
// filesystem is configured) and starts a fresh active buffer. A chunk
// staying resident is copied to exact size first: the active buffer's
// append slack would otherwise be locked in for the log's lifetime.
func (l *edgeLog) freeze() {
	c := logChunk{data: l.active, n: l.activeN}
	if l.fs != nil && !l.noSpill {
		if err := l.spill(&c, len(l.frozen)); err != nil {
			l.spillErr = err
		}
	}
	if c.data != nil && cap(c.data) > len(c.data) {
		c.data = append(make([]byte, 0, len(c.data)), c.data...)
	}
	l.frozen = append(l.frozen, c)
	l.active = make([]byte, 0, logChunkEdges*3)
	l.activeN = 0
}

// spill writes chunk index i durably and, on success, swaps the chunk's
// in-memory payload for its file name. The temp-write / Sync / Rename /
// SyncDir sequence means a crash at any point leaves either the complete
// chunk or no chunk — never a torn one — and re-spilling after a crash
// overwrites any leftover temp file.
func (l *edgeLog) spill(c *logChunk, i int) error {
	name := logChunkName(i)
	tmp := filepath.Join(l.dir, name+".tmp")
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("graph: spill chunk %d: %w", i, err)
	}
	var hdr [logChunkHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], logChunkMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.n))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(c.data))
	if _, err = f.Write(hdr[:]); err == nil {
		_, err = f.Write(c.data)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = l.fs.Rename(tmp, filepath.Join(l.dir, name))
	}
	if err == nil {
		err = l.fs.SyncDir(l.dir)
	}
	if err != nil {
		return fmt.Errorf("graph: spill chunk %d: %w", i, err)
	}
	l.spilled++
	l.spillB += int64(logChunkHdr + len(c.data))
	c.file = name
	c.data = nil
	return nil
}

// compact retries the spill of any chunk still resident because an
// earlier spill failed. It never mutates the published frozen array:
// captured views may be iterating it, so the slice is rebuilt and
// swapped. Returns the first error, leaving the remainder for the next
// attempt.
func (l *edgeLog) compact() error {
	if l.fs == nil || l.noSpill {
		return nil
	}
	resident := false
	for i := range l.frozen {
		if l.frozen[i].file == "" {
			resident = true
			break
		}
	}
	if !resident {
		l.spillErr = nil
		return nil
	}
	next := append([]logChunk(nil), l.frozen...)
	var firstErr error
	for i := range next {
		if next[i].file != "" {
			continue
		}
		if err := l.spill(&next[i], i); err != nil {
			firstErr = err
			break
		}
	}
	l.frozen = next
	l.spillErr = firstErr
	return firstErr
}

// logView is an immutable capture of the log for lock-free sequential
// replay. The captured headers stay valid because the writer only
// appends (to new backing arrays on growth) and never mutates published
// chunk entries in place.
type logView struct {
	frozen  []logChunk
	active  []byte
	activeN int
	n       int
	fs      wal.FS
	dir     string
}

// view captures the log. Call with the graph's writer lock held (or the
// writer otherwise quiescent); the returned view is then safe to read
// without any lock.
func (l *edgeLog) view() logView {
	return logView{
		frozen:  l.frozen,
		active:  l.active,
		activeN: l.activeN,
		n:       l.n,
		fs:      l.fs,
		dir:     l.dir,
	}
}

func (v logView) len() int { return v.n }

// each replays the captured edge sequence in insertion order. Spilled
// chunks are read back one at a time — replay memory is one chunk, not
// the log. fn returning an error stops the replay.
func (v logView) each(fn func(ui, vi uint32) error) error {
	for i, c := range v.frozen {
		data := c.data
		if data == nil {
			var err error
			if data, err = v.readChunk(i, c); err != nil {
				return err
			}
		}
		if err := eachChunk(data, c.n, fn); err != nil {
			return err
		}
	}
	return eachChunk(v.active, v.activeN, fn)
}

// readChunk loads and validates a spilled chunk.
func (v logView) readChunk(i int, c logChunk) ([]byte, error) {
	raw, err := v.fs.ReadFile(filepath.Join(v.dir, c.file))
	if err != nil {
		return nil, fmt.Errorf("graph: read spilled chunk %d: %w", i, err)
	}
	if len(raw) < logChunkHdr || binary.LittleEndian.Uint32(raw[0:]) != logChunkMagic {
		return nil, fmt.Errorf("graph: spilled chunk %d: bad header", i)
	}
	if int(binary.LittleEndian.Uint32(raw[4:])) != c.n {
		return nil, fmt.Errorf("graph: spilled chunk %d: edge count mismatch", i)
	}
	data := raw[logChunkHdr:]
	if crc32.ChecksumIEEE(data) != binary.LittleEndian.Uint32(raw[8:]) {
		return nil, fmt.Errorf("graph: spilled chunk %d: checksum mismatch", i)
	}
	return data, nil
}

// eachChunk decodes one self-contained chunk payload.
func eachChunk(data []byte, n int, fn func(ui, vi uint32) error) error {
	i := 0
	for k := 0; k < n; k++ {
		u, nu := binary.Uvarint(data[i:])
		i += nu
		v, nv := binary.Uvarint(data[i:])
		i += nv
		if nu <= 0 || nv <= 0 {
			return fmt.Errorf("graph: corrupt edge log chunk (edge %d of %d)", k, n)
		}
		if err := fn(uint32(u), uint32(v)); err != nil {
			return err
		}
	}
	return nil
}

// clone deep-copies the log's mutable state. Frozen chunk payloads are
// immutable and shared, and the clone keeps the filesystem for reading
// already-spilled chunks — but never spills new ones (clones are
// read-mostly scratch copies, e.g. Refine working sets, whose appends
// must not overwrite the original's chunk files).
func (l *edgeLog) clone() edgeLog {
	c := *l
	c.frozen = append([]logChunk(nil), l.frozen...)
	c.active = append(make([]byte, 0, cap(l.active)), l.active...)
	c.noSpill = true
	c.spillErr = nil
	return c
}

// bytes returns resident (in-memory) log bytes.
func (l *edgeLog) bytes() int {
	b := cap(l.active) + cap(l.frozen)*48 // 48 ≈ sizeof(logChunk)
	for _, c := range l.frozen {
		b += cap(c.data) + len(c.file)
	}
	return b
}
