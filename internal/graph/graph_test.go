package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fig1Graph builds the example graph G from Fig. 1 of the paper:
// vertices 1..8 with labels a b c d / b a d c, edges forming two squares
// joined by (2,6) and (4,8)... we reproduce the exact structure used in the
// paper's partitioning discussion.
func fig1Graph(t testing.TB) *Graph {
	t.Helper()
	g := New()
	labels := map[VertexID]Label{
		1: "a", 2: "b", 3: "c", 4: "d",
		5: "b", 6: "a", 7: "d", 8: "c",
	}
	for v := VertexID(1); v <= 8; v++ {
		if err := g.AddVertex(v, labels[v]); err != nil {
			t.Fatalf("AddVertex(%d): %v", v, err)
		}
	}
	edges := []Edge{{1, 2}, {2, 3}, {3, 4}, {5, 6}, {6, 7}, {7, 8}, {1, 5}, {2, 6}, {3, 7}, {4, 8}}
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

// pathWithBranch builds the path 1a-2b-3c-4d with an extra branch 1-5 (5
// labelled b), inserting vertices in ascending ID order so traversal
// orderings are deterministic.
func pathWithBranch(t testing.TB) *Graph {
	t.Helper()
	g := New()
	labels := []Label{"a", "b", "c", "d", "b"}
	for v := VertexID(1); v <= 5; v++ {
		if err := g.AddVertex(v, labels[v-1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []Edge{{1, 2}, {1, 5}, {2, 3}, {3, 4}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := fig1Graph(t)
	if got, want := g.NumVertices(), 8; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 10; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if !g.HasEdge(2, 1) {
		t.Error("HasEdge(2,1) = false, want true (undirected)")
	}
	if g.HasEdge(1, 8) {
		t.Error("HasEdge(1,8) = true, want false")
	}
	if got, want := g.Degree(2), 3; got != want {
		t.Errorf("Degree(2) = %d, want %d", got, want)
	}
	if l, ok := g.Label(6); !ok || l != "a" {
		t.Errorf("Label(6) = %q,%v want a,true", l, ok)
	}
	if got := len(g.Labels()); got != 4 {
		t.Errorf("len(Labels) = %d, want 4", got)
	}
}

func TestGraphRejectsSelfLoopsAndDuplicates(t *testing.T) {
	g := New()
	if err := g.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("AddEdge(1,1): want self-loop error")
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err == nil {
		t.Error("AddEdge(2,1): want duplicate error (undirected)")
	}
	if err := g.AddEdge(1, 3); err == nil {
		t.Error("AddEdge to missing vertex: want error")
	}
}

func TestGraphLabelConflict(t *testing.T) {
	g := New()
	if err := g.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(1, "a"); err != nil {
		t.Errorf("re-adding same label: %v", err)
	}
	if err := g.AddVertex(1, "b"); err == nil {
		t.Error("re-adding with different label: want error")
	}
}

func TestEnsureEdge(t *testing.T) {
	g := New()
	added, err := g.EnsureEdge(1, "a", 2, "b")
	if err != nil || !added {
		t.Fatalf("EnsureEdge first = %v,%v want true,nil", added, err)
	}
	added, err = g.EnsureEdge(2, "b", 1, "a")
	if err != nil || added {
		t.Fatalf("EnsureEdge dup = %v,%v want false,nil", added, err)
	}
	added, err = g.EnsureEdge(3, "c", 3, "c")
	if err != nil || added {
		t.Fatalf("EnsureEdge self-loop = %v,%v want false,nil", added, err)
	}
	if !g.HasVertex(3) {
		t.Error("self-loop should still create the vertex")
	}
	if _, err = g.EnsureEdge(1, "z", 2, "b"); err == nil {
		t.Error("EnsureEdge with conflicting label: want error")
	}
}

func TestDirectedGraph(t *testing.T) {
	g := NewDirected()
	for v, l := range map[VertexID]Label{1: "a", 2: "b", 3: "c"} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err != nil {
		t.Errorf("directed reverse edge should be distinct: %v", err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(3, 2) {
		t.Error("HasEdge(3,2) = true in directed graph, want false")
	}
	if got := g.Degree(2); got != 2 { // out-degree: 2→1, 2→3
		t.Errorf("out Degree(2) = %d, want 2", got)
	}
	in := g.InNeighbors(2)
	if len(in) != 1 || in[0] != 1 {
		t.Errorf("InNeighbors(2) = %v, want [1]", in)
	}
}

func TestEdgeNormAndOther(t *testing.T) {
	e := Edge{5, 2}.Norm()
	if e != (Edge{2, 5}) {
		t.Errorf("Norm = %v, want (2,5)", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Error("Other endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other(non-endpoint) should panic")
		}
	}()
	e.Other(9)
}

func TestClone(t *testing.T) {
	g := fig1Graph(t)
	c := g.Clone()
	if err := c.AddVertex(99, "z"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEdge(99, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasVertex(99) || g.NumEdges() != 10 {
		t.Error("mutating clone affected original")
	}
	if c.NumEdges() != 11 {
		t.Error("clone edge not added")
	}
}

func TestStreamOrdersCoverAllEdgesExactlyOnce(t *testing.T) {
	g := fig1Graph(t)
	rng := rand.New(rand.NewSource(42))
	for _, order := range []StreamOrder{OrderOriginal, OrderBFS, OrderDFS, OrderRandom} {
		s := StreamOf(g, order, rng)
		if len(s) != g.NumEdges() {
			t.Errorf("%s: stream has %d edges, want %d", order, len(s), g.NumEdges())
		}
		seen := make(map[Edge]int)
		for _, se := range s {
			seen[se.Edge().Norm()]++
			if lu := g.MustLabel(se.U); lu != se.LU {
				t.Errorf("%s: label mismatch for %d: %s vs %s", order, se.U, lu, se.LU)
			}
		}
		for _, e := range g.Edges() {
			if seen[e] != 1 {
				t.Errorf("%s: edge %v emitted %d times, want 1", order, e, seen[e])
			}
		}
	}
}

func TestBFSOrderIsBreadthFirst(t *testing.T) {
	// Path a-b-c-d plus branch at the root: BFS from vertex 1 must emit
	// both root edges before any depth-2 edge.
	g := pathWithBranch(t)
	s := StreamOf(g, OrderBFS, nil)
	pos := make(map[Edge]int)
	for i, se := range s {
		pos[se.Edge().Norm()] = i
	}
	if pos[Edge{1, 2}] > pos[Edge{2, 3}] || pos[Edge{1, 5}] > pos[Edge{2, 3}] {
		t.Errorf("BFS order wrong: %v", s)
	}
	if pos[Edge{2, 3}] > pos[Edge{3, 4}] {
		t.Errorf("BFS order wrong at depth 2: %v", s)
	}
}

func TestDFSOrderIsDepthFirst(t *testing.T) {
	// Same branching path: DFS must finish the 1-2-3-4 chain before (1,5)
	// or vice versa — i.e. (2,3) and (3,4) appear contiguously after (1,2)
	// if the chain is explored first.
	g := pathWithBranch(t)
	s := StreamOf(g, OrderDFS, nil)
	pos := make(map[Edge]int)
	for i, se := range s {
		pos[se.Edge().Norm()] = i
	}
	// Depth-first: the deep edge (3,4) must come before the sibling (1,5)
	// is *discovered from traversal* — but (1,5) is emitted when 1 is
	// expanded. What distinguishes DFS here is that (2,3) precedes
	// expansion of 5's subtree; with this small graph assert the chain is
	// explored in order.
	if !(pos[Edge{1, 2}] < pos[Edge{2, 3}] && pos[Edge{2, 3}] < pos[Edge{3, 4}]) {
		t.Errorf("DFS chain order wrong: %v", s)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	for v, l := range map[VertexID]Label{1: "a", 2: "b", 3: "a", 4: "b", 5: "c"} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	comps := ConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 (incl. isolated vertex)", len(comps))
	}
	if IsConnected(g) {
		t.Error("IsConnected = true, want false")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := fig1Graph(t)
	sub := InducedSubgraph(g, []Edge{{1, 2}, {2, 3}})
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced = %v, want 3 vertices 2 edges", sub)
	}
	if l := sub.MustLabel(2); l != "b" {
		t.Errorf("label not copied: %q", l)
	}
}

func TestBuildGraphRoundTrip(t *testing.T) {
	g := fig1Graph(t)
	s := StreamOf(g, OrderRandom, rand.New(rand.NewSource(7)))
	g2, err := BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

// TestStreamOrderPermutationProperty: any ordering of any random graph is a
// permutation of its edge set (property-based).
func TestStreamOrderPermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw uint8, extra uint16) bool {
		n := int(nRaw%40) + 2
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, n, int(extra%128))
		for _, order := range []StreamOrder{OrderBFS, OrderDFS, OrderRandom} {
			s := StreamOf(g, order, rng)
			if len(s) != g.NumEdges() {
				return false
			}
			seen := make(map[Edge]struct{})
			for _, se := range s {
				k := se.Edge().Norm()
				if _, dup := seen[k]; dup {
					return false
				}
				seen[k] = struct{}{}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a random simple labelled graph with n vertices and up
// to m extra random edges on top of a spanning path (so it is connected).
func randomGraph(r *rand.Rand, n, m int) *Graph {
	g := New()
	alphabet := []Label{"a", "b", "c", "d"}
	for v := 0; v < n; v++ {
		if err := g.AddVertex(VertexID(v), alphabet[r.Intn(len(alphabet))]); err != nil {
			panic(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := g.AddEdge(VertexID(v-1), VertexID(v)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < m; i++ {
		u, v := VertexID(r.Intn(n)), VertexID(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return g
}
