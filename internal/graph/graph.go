// Package graph provides the labelled-graph substrate used throughout Loom:
// vertices carrying labels from a small alphabet, undirected (or directed)
// edges, adjacency indexes, and deterministic stream orderings of a graph's
// edges (breadth-first, depth-first, random) as used by the paper's
// evaluation (§5.1).
//
// A labelled graph G = (V, E, LV, fl) follows §1.3 of the paper: V is a set
// of vertices, E a set of pairwise edges, LV a set of vertex labels and
// fl : V → LV a surjective mapping of vertices to labels. Graphs here are
// simple (no self-loops, no parallel edges) and undirected by default; the
// directed extension the paper mentions inline is supported via NewDirected.
//
// Storage is slice-backed: external vertex IDs and label strings are
// interned (internal/intern) at insertion, and labels, adjacency lists and
// the edge set are indexed by the dense vertex index. The exported API
// still speaks VertexID/Label; only the representation changed.
package graph

import (
	"fmt"
	"sort"

	"loom/internal/intern"
)

// VertexID identifies a vertex. IDs are opaque to the library; datasets and
// generators choose them. They need not be dense.
type VertexID int64

// Label is a vertex label drawn from the (typically small) alphabet LV.
type Label string

// Edge is a pair of vertex endpoints. For undirected graphs the pair is kept
// in normalised (U <= V) order so an Edge value can be used as a map key.
type Edge struct {
	U, V VertexID
}

// Norm returns e with endpoints in canonical order for undirected keying.
func (e Edge) Norm() Edge {
	if e.V < e.U {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e; callers always hold an incident vertex.
func (e Edge) Other(v VertexID) VertexID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// HasEndpoint reports whether v is one of e's endpoints.
func (e Edge) HasEndpoint(v VertexID) bool { return e.U == v || e.V == v }

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple labelled graph. The zero value is not usable; construct
// with New or NewDirected.
type Graph struct {
	directed bool

	verts  *intern.VertexTable
	ltab   *intern.LabelTable
	vlabel []uint16     // label code per dense vertex index
	adj    [][]VertexID // adjacency per dense vertex index (external IDs)

	// eorder preserves insertion order so that iteration, orderings and
	// tests are deterministic; eset (packed dense index pairs) detects
	// duplicates without hashing external IDs twice.
	eorder []Edge
	eset   map[uint64]struct{}
}

// New returns an empty undirected labelled graph.
func New() *Graph {
	return &Graph{
		verts: intern.NewVertexTable(0),
		ltab:  intern.NewLabelTable(),
		eset:  make(map[uint64]struct{}),
	}
}

// NewDirected returns an empty directed labelled graph. Directed edges are
// stored (U→V); Neighbors returns out-neighbours and InNeighbors is provided
// for the reverse direction.
func NewDirected() *Graph {
	g := New()
	g.directed = true
	return g
}

// Directed reports whether g stores directed edges.
func (g *Graph) Directed() bool { return g.directed }

// packIdx packs a dense index pair into the edge-set key, normalising for
// undirected graphs.
func (g *Graph) packIdx(ui, vi uint32) uint64 {
	if !g.directed && vi < ui {
		ui, vi = vi, ui
	}
	return uint64(ui)<<32 | uint64(vi)
}

// key returns the canonical Edge value for (u,v): normalised for
// undirected graphs, as-is for directed ones.
func (g *Graph) key(u, v VertexID) Edge {
	e := Edge{u, v}
	if !g.directed {
		e = e.Norm()
	}
	return e
}

// AddVertex inserts vertex id with the given label. Re-adding an existing
// vertex with the same label is a no-op; with a different label it returns
// an error, since fl is a function.
func (g *Graph) AddVertex(id VertexID, l Label) error {
	if i, ok := g.verts.Lookup(int64(id)); ok {
		if have := g.ltab.Name(g.vlabel[i]); have != string(l) {
			return fmt.Errorf("graph: vertex %d already has label %q (got %q)", id, have, l)
		}
		return nil
	}
	g.verts.Intern(int64(id))
	g.vlabel = append(g.vlabel, g.ltab.Intern(string(l)))
	g.adj = append(g.adj, nil)
	return nil
}

// HasVertex reports whether id is in the graph.
func (g *Graph) HasVertex(id VertexID) bool {
	_, ok := g.verts.Lookup(int64(id))
	return ok
}

// Label returns the label of id and whether id exists.
func (g *Graph) Label(id VertexID) (Label, bool) {
	i, ok := g.verts.Lookup(int64(id))
	if !ok {
		return "", false
	}
	return Label(g.ltab.Name(g.vlabel[i])), true
}

// MustLabel returns the label of id, panicking if id is absent. Intended for
// internal hot paths where existence is an invariant.
func (g *Graph) MustLabel(id VertexID) Label {
	i, ok := g.verts.Lookup(int64(id))
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d not in graph", id))
	}
	return Label(g.ltab.Name(g.vlabel[i]))
}

// AddEdge inserts the edge (u,v). Both endpoints must already exist.
// Self-loops and duplicate edges are rejected with an error: the paper's
// graphs are simple, and rejecting rather than silently ignoring surfaces
// generator bugs early.
func (g *Graph) AddEdge(u, v VertexID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	ui, ok := g.verts.Lookup(int64(u))
	if !ok {
		return fmt.Errorf("graph: edge endpoint %d not in graph", u)
	}
	vi, ok := g.verts.Lookup(int64(v))
	if !ok {
		return fmt.Errorf("graph: edge endpoint %d not in graph", v)
	}
	k := Edge{u, v}
	if !g.directed {
		k = k.Norm()
	}
	pk := g.packIdx(ui, vi)
	if _, dup := g.eset[pk]; dup {
		return fmt.Errorf("graph: duplicate edge %v", k)
	}
	g.eset[pk] = struct{}{}
	g.eorder = append(g.eorder, k)
	g.adj[ui] = append(g.adj[ui], v)
	if !g.directed {
		g.adj[vi] = append(g.adj[vi], u)
	}
	return nil
}

// EnsureEdge inserts vertices u and v (with labels lu, lv) if absent, then
// the edge between them. It reports whether a new edge was added; duplicate
// edges and self-loops return false without error, making it convenient for
// ingesting noisy streams. A label conflict still returns an error.
func (g *Graph) EnsureEdge(u VertexID, lu Label, v VertexID, lv Label) (bool, error) {
	if err := g.AddVertex(u, lu); err != nil {
		return false, err
	}
	if err := g.AddVertex(v, lv); err != nil {
		return false, err
	}
	if u == v {
		return false, nil
	}
	ui, _ := g.verts.Lookup(int64(u))
	vi, _ := g.verts.Lookup(int64(v))
	if _, dup := g.eset[g.packIdx(ui, vi)]; dup {
		return false, nil
	}
	return true, g.AddEdge(u, v)
}

// HasEdge reports whether the edge (u,v) exists. For undirected graphs the
// order of u and v does not matter.
func (g *Graph) HasEdge(u, v VertexID) bool {
	ui, ok := g.verts.Lookup(int64(u))
	if !ok {
		return false
	}
	vi, ok := g.verts.Lookup(int64(v))
	if !ok {
		return false
	}
	_, ok = g.eset[g.packIdx(ui, vi)]
	return ok
}

// Degree returns the number of edges incident to v (out-degree for directed
// graphs).
func (g *Graph) Degree(v VertexID) int {
	i, ok := g.verts.Lookup(int64(v))
	if !ok {
		return 0
	}
	return len(g.adj[i])
}

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	i, ok := g.verts.Lookup(int64(v))
	if !ok {
		return nil
	}
	return g.adj[i]
}

// InNeighbors returns, for a directed graph, the vertices with an edge into
// v. It is computed on demand and is O(|E|); directed support exists for the
// paper's "extends to directed graphs" remark, not for hot paths.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if !g.directed {
		return g.Neighbors(v)
	}
	var in []VertexID
	for _, e := range g.eorder {
		if e.V == v {
			in = append(in, e.U)
		}
	}
	return in
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.verts.Len() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.eorder) }

// Vertices returns all vertex IDs in insertion order. The returned slice is
// a copy and may be modified by the caller.
func (g *Graph) Vertices() []VertexID {
	ids := g.verts.IDs()
	out := make([]VertexID, len(ids))
	for i, id := range ids {
		out[i] = VertexID(id)
	}
	return out
}

// Edges returns all edges in insertion order. The returned slice is a copy.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.eorder))
	copy(out, g.eorder)
	return out
}

// Labels returns the distinct labels in use, sorted, i.e. the alphabet LV.
func (g *Graph) Labels() []Label {
	names := g.ltab.Names()
	out := make([]Label, len(names))
	for i, n := range names {
		out[i] = Label(n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LabelHistogram returns the number of vertices per label.
func (g *Graph) LabelHistogram() map[Label]int {
	h := make(map[Label]int)
	for _, c := range g.vlabel {
		h[Label(g.ltab.Name(c))]++
	}
	return h
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed: g.directed,
		verts:    g.verts.Clone(),
		ltab:     g.ltab.Clone(),
		vlabel:   append([]uint16(nil), g.vlabel...),
		adj:      make([][]VertexID, len(g.adj)),
		eorder:   append([]Edge(nil), g.eorder...),
		eset:     make(map[uint64]struct{}, len(g.eset)),
	}
	for i, ns := range g.adj {
		c.adj[i] = append([]VertexID(nil), ns...)
	}
	for e := range g.eset {
		c.eset[e] = struct{}{}
	}
	return c
}

// EdgeLabels returns the labels of an edge's endpoints in (U,V) order.
func (g *Graph) EdgeLabels(e Edge) (Label, Label) {
	lu, _ := g.Label(e.U)
	lv, _ := g.Label(e.V)
	return lu, lv
}

// String summarises the graph.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s |V|=%d |E|=%d |LV|=%d}", kind, g.NumVertices(), g.NumEdges(), len(g.Labels()))
}
