// Package graph provides the labelled-graph substrate used throughout Loom:
// vertices carrying labels from a small alphabet, undirected (or directed)
// edges, adjacency indexes, and deterministic stream orderings of a graph's
// edges (breadth-first, depth-first, random) as used by the paper's
// evaluation (§5.1).
//
// A labelled graph G = (V, E, LV, fl) follows §1.3 of the paper: V is a set
// of vertices, E a set of pairwise edges, LV a set of vertex labels and
// fl : V → LV a surjective mapping of vertices to labels. Graphs here are
// simple (no self-loops, no parallel edges) and undirected by default; the
// directed extension the paper mentions inline is supported via NewDirected.
//
// # Storage
//
// The graph is engineered for bounded memory at 10⁸-edge scale. External
// vertex IDs and label strings are interned (internal/intern) at insertion;
// everything downstream is indexed by the dense vertex index:
//
//   - Adjacency is stored per vertex as dense uint32 indices in chunked
//     delta-varint-compressed blocks with a small raw tail (adjacency.go):
//     O(1) hot appends, block-at-a-time decode into caller scratch, ~2–4
//     bytes per adjacency entry on real streams. Neighbors therefore takes
//     a caller-owned scratch buffer instead of exposing an internal slice.
//   - Duplicate edges are detected by a 4-byte-per-slot fingerprint set
//     (internal/container.FP32Set) verified against the adjacency lists —
//     exact, one cache line per probe, no per-edge map or closure
//     allocation.
//   - The insertion-order edge sequence lives in a chunked delta-encoded
//     log (elog.go) that can spill frozen chunks to disk (SpillTo) through
//     the same wal.FS abstraction the WAL uses; replay reads chunks
//     sequentially, so replay memory is one chunk regardless of stream
//     length.
//
// Insertion order is preserved everywhere — Edges, Neighbors and the
// stream orderings built on them are bit-identical to the earlier
// slice-backed representation.
package graph

import (
	"fmt"
	"sort"
	"unsafe"

	"loom/internal/container"
	"loom/internal/intern"
	"loom/internal/wal"
)

// VertexID identifies a vertex. IDs are opaque to the library; datasets and
// generators choose them. They need not be dense.
type VertexID int64

// Label is a vertex label drawn from the (typically small) alphabet LV.
type Label string

// Edge is a pair of vertex endpoints. For undirected graphs the pair is kept
// in normalised (U <= V) order so an Edge value can be used as a map key.
type Edge struct {
	U, V VertexID
}

// Norm returns e with endpoints in canonical order for undirected keying.
func (e Edge) Norm() Edge {
	if e.V < e.U {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e; callers always hold an incident vertex.
func (e Edge) Other(v VertexID) VertexID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// HasEndpoint reports whether v is one of e's endpoints.
func (e Edge) HasEndpoint(v VertexID) bool { return e.U == v || e.V == v }

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple labelled graph. The zero value is not usable; construct
// with New or NewDirected.
type Graph struct {
	directed bool

	verts  *intern.VertexTable
	ltab   *intern.LabelTable
	vlabel []uint16    // label code per dense vertex index
	adj    []vertexAdj // compressed adjacency per dense vertex index

	// eset (fingerprints of packed dense index pairs, verified against
	// adjacency) detects duplicates; log preserves insertion order so that
	// iteration, orderings, replay and tests are deterministic.
	eset container.FP32Set
	log  edgeLog

	// dupCache is a direct-mapped cache of packed index pairs VerifyKey has
	// confirmed present, lazily allocated on the first confirmed duplicate.
	// It short-circuits the adjacency scan for repeated duplicates.
	dupCache []uint64
}

// New returns an empty undirected labelled graph.
func New() *Graph {
	return &Graph{
		verts: intern.NewVertexTable(0),
		ltab:  intern.NewLabelTable(),
	}
}

// NewDirected returns an empty directed labelled graph. Directed edges are
// stored (U→V); Neighbors returns out-neighbours and InNeighbors is provided
// for the reverse direction.
func NewDirected() *Graph {
	g := New()
	g.directed = true
	return g
}

// Directed reports whether g stores directed edges.
func (g *Graph) Directed() bool { return g.directed }

// Reserve pre-sizes the duplicate-edge set for the expected edge count,
// avoiding incremental rehashes during bulk ingest.
func (g *Graph) Reserve(edges int) {
	if edges > 0 {
		g.eset.Reserve(edges)
	}
}

// SpillTo configures the edge log to spill frozen chunks to dir on fs
// (production callers pass wal.OS()), creating dir and immediately
// spilling any chunks already frozen. Resident log memory is thereafter
// bounded by the active chunk. A failed spill is not fatal: the chunk
// stays resident and Compact retries.
func (g *Graph) SpillTo(fs wal.FS, dir string) error {
	if err := fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("graph: spill dir: %w", err)
	}
	g.log.fs, g.log.dir = fs, dir
	return g.log.compact()
}

// Compact bounds resident memory at a quiesce point: it compresses every
// vertex's partial adjacency tail and drops buffer growth slack, and
// retries any edge-log spills that previously failed. Ingest after a
// Compact is fully supported — each touched vertex pays one re-allocation
// on its next append. The partitioner calls it at checkpoint.
func (g *Graph) Compact() error {
	for i := range g.adj {
		g.adj[i].shrink()
	}
	return g.log.compact()
}

// SpillStats reports the edge log's on-disk residency: spilled chunk
// count and bytes, and the latest spill error (nil when all frozen
// chunks are on disk or spilling is not configured).
func (g *Graph) SpillStats() (chunks int, bytes int64, err error) {
	return g.log.spilled, g.log.spillB, g.log.spillErr
}

// packIdx packs a dense index pair into the edge-set key, normalising for
// undirected graphs.
func (g *Graph) packIdx(ui, vi uint32) uint64 {
	if !g.directed && vi < ui {
		ui, vi = vi, ui
	}
	return uint64(ui)<<32 | uint64(vi)
}

// dupCacheSlots sizes the direct-mapped confirmed-duplicate cache for a
// graph with verts vertices: a power of two between 1k and 32k slots
// (8 KiB–256 KiB). Scaling with |V| keeps the cache negligible against
// small graphs while covering the hub-pair population of large ones.
func dupCacheSlots(verts int) int {
	n := 1 << 10
	for n < verts && n < 1<<15 {
		n <<= 1
	}
	return n
}

// noteDup records a confirmed-present key in the duplicate cache,
// (re)allocating it lazily — and growing it as the vertex set outgrows
// it — on a power-of-two schedule. Dropping old entries on growth is
// safe: the cache only short-circuits a scan that would succeed anyway.
func (g *Graph) noteDup(pk uint64) {
	if want := dupCacheSlots(len(g.adj)); len(g.dupCache) < want {
		g.dupCache = make([]uint64, want)
	}
	g.dupCache[intern.Mix64(pk)&uint64(len(g.dupCache)-1)] = pk
}

// VerifyKey reports whether the packed dense index pair pk is a recorded
// edge, by scanning the shorter endpoint's adjacency list. It is the
// ground truth behind the fingerprint edge set (container.KeyVerifier);
// callers use HasEdge. Confirmed-present keys are remembered in a small
// direct-mapped cache, so dup-heavy streams pay the adjacency scan once
// per hot pair instead of on every repeat — safe because edges are only
// ever added, so "present" can never go stale.
func (g *Graph) VerifyKey(pk uint64) bool {
	if n := len(g.dupCache); n > 0 && g.dupCache[intern.Mix64(pk)&uint64(n-1)] == pk {
		return true
	}
	ui, vi := uint32(pk>>32), uint32(pk)
	var found bool
	switch {
	case g.directed:
		found = g.adj[ui].contains(vi)
	case g.adj[ui].deg <= g.adj[vi].deg:
		found = g.adj[ui].contains(vi)
	default:
		found = g.adj[vi].contains(ui)
	}
	if found {
		g.noteDup(pk)
	}
	return found
}

// key returns the canonical Edge value for (u,v): normalised for
// undirected graphs, as-is for directed ones.
func (g *Graph) key(u, v VertexID) Edge {
	e := Edge{u, v}
	if !g.directed {
		e = e.Norm()
	}
	return e
}

// ensureVertex interns id with label l (or validates the label if id is
// already present) and returns its dense index.
func (g *Graph) ensureVertex(id VertexID, l Label) (uint32, error) {
	if i, ok := g.verts.Lookup(int64(id)); ok {
		if have := g.ltab.Name(g.vlabel[i]); have != string(l) {
			return 0, fmt.Errorf("graph: vertex %d already has label %q (got %q)", id, have, l)
		}
		return i, nil
	}
	i := g.verts.Intern(int64(id))
	g.vlabel = append(g.vlabel, g.ltab.Intern(string(l)))
	g.adj = append(g.adj, vertexAdj{})
	return i, nil
}

// AddVertex inserts vertex id with the given label. Re-adding an existing
// vertex with the same label is a no-op; with a different label it returns
// an error, since fl is a function.
func (g *Graph) AddVertex(id VertexID, l Label) error {
	_, err := g.ensureVertex(id, l)
	return err
}

// HasVertex reports whether id is in the graph.
func (g *Graph) HasVertex(id VertexID) bool {
	_, ok := g.verts.Lookup(int64(id))
	return ok
}

// Label returns the label of id and whether id exists.
func (g *Graph) Label(id VertexID) (Label, bool) {
	i, ok := g.verts.Lookup(int64(id))
	if !ok {
		return "", false
	}
	return Label(g.ltab.Name(g.vlabel[i])), true
}

// MustLabel returns the label of id, panicking if id is absent. Intended for
// internal hot paths where existence is an invariant.
func (g *Graph) MustLabel(id VertexID) Label {
	i, ok := g.verts.Lookup(int64(id))
	if !ok {
		panic(fmt.Sprintf("graph: vertex %d not in graph", id))
	}
	return Label(g.ltab.Name(g.vlabel[i]))
}

// addEdgeIdx records the edge between dense indices (ui, vi), given in
// stream orientation. It reports false for a duplicate.
func (g *Graph) addEdgeIdx(ui, vi uint32) bool {
	if !g.eset.Add(g.packIdx(ui, vi), g) {
		return false
	}
	g.log.append(ui, vi)
	g.adj[ui].add(vi)
	if !g.directed {
		g.adj[vi].add(ui)
	}
	return true
}

// AddEdge inserts the edge (u,v). Both endpoints must already exist.
// Self-loops and duplicate edges are rejected with an error: the paper's
// graphs are simple, and rejecting rather than silently ignoring surfaces
// generator bugs early.
func (g *Graph) AddEdge(u, v VertexID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	ui, ok := g.verts.Lookup(int64(u))
	if !ok {
		return fmt.Errorf("graph: edge endpoint %d not in graph", u)
	}
	vi, ok := g.verts.Lookup(int64(v))
	if !ok {
		return fmt.Errorf("graph: edge endpoint %d not in graph", v)
	}
	if !g.addEdgeIdx(ui, vi) {
		return fmt.Errorf("graph: duplicate edge %v", g.key(u, v))
	}
	return nil
}

// EnsureEdge inserts vertices u and v (with labels lu, lv) if absent, then
// the edge between them. It reports whether a new edge was added; duplicate
// edges and self-loops return false without error, making it convenient for
// ingesting noisy streams. A label conflict still returns an error.
//
// This is the streaming hot path: two vertex-table probes, one
// fingerprint-set probe, and the O(1) adjacency and log appends.
func (g *Graph) EnsureEdge(u VertexID, lu Label, v VertexID, lv Label) (bool, error) {
	ui, err := g.ensureVertex(u, lu)
	if err != nil {
		return false, err
	}
	vi, err := g.ensureVertex(v, lv)
	if err != nil {
		return false, err
	}
	if u == v {
		return false, nil
	}
	return g.addEdgeIdx(ui, vi), nil
}

// HasEdge reports whether the edge (u,v) exists. For undirected graphs the
// order of u and v does not matter.
func (g *Graph) HasEdge(u, v VertexID) bool {
	ui, ok := g.verts.Lookup(int64(u))
	if !ok {
		return false
	}
	vi, ok := g.verts.Lookup(int64(v))
	if !ok {
		return false
	}
	return g.eset.Contains(g.packIdx(ui, vi), g)
}

// Degree returns the number of edges incident to v (out-degree for directed
// graphs).
func (g *Graph) Degree(v VertexID) int {
	i, ok := g.verts.Lookup(int64(v))
	if !ok {
		return 0
	}
	return int(g.adj[i].deg)
}

// Neighbors appends the neighbours of v (out-neighbours for directed
// graphs) to buf in insertion order and returns the extended slice. Pass
// a reused scratch as buf[:0] to amortise the decode allocation; pass nil
// for a fresh slice. A vertex not in the graph appends nothing.
func (g *Graph) Neighbors(v VertexID, buf []VertexID) []VertexID {
	i, ok := g.verts.Lookup(int64(v))
	if !ok {
		return buf
	}
	return g.appendNeighbors(i, buf)
}

// appendNeighbors is Neighbors for a dense index the caller already holds.
func (g *Graph) appendNeighbors(i uint32, buf []VertexID) []VertexID {
	a := &g.adj[i]
	if need := len(buf) + int(a.deg); cap(buf) < need {
		nb := make([]VertexID, len(buf), need)
		copy(nb, buf)
		buf = nb
	}
	ids := g.verts.IDs()
	a.each(func(n uint32) bool {
		buf = append(buf, VertexID(ids[n]))
		return true
	})
	return buf
}

// EachNeighbor invokes fn for each neighbour of v in insertion order until
// fn returns false, without materialising the list.
func (g *Graph) EachNeighbor(v VertexID, fn func(VertexID) bool) {
	i, ok := g.verts.Lookup(int64(v))
	if !ok {
		return
	}
	ids := g.verts.IDs()
	g.adj[i].each(func(n uint32) bool { return fn(VertexID(ids[n])) })
}

// InNeighbors returns, for a directed graph, the vertices with an edge into
// v. It is computed on demand by a log replay and is O(|E|); directed
// support exists for the paper's "extends to directed graphs" remark, not
// for hot paths.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if !g.directed {
		return g.Neighbors(v, nil)
	}
	ti, ok := g.verts.Lookup(int64(v))
	if !ok {
		return nil
	}
	ids := g.verts.IDs()
	var in []VertexID
	err := g.log.view().each(func(ui, vi uint32) error {
		if vi == ti {
			in = append(in, VertexID(ids[ui]))
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("graph: edge log replay: %v", err))
	}
	return in
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.verts.Len() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.log.n }

// Vertices returns all vertex IDs in insertion order. The returned slice is
// a copy and may be modified by the caller.
func (g *Graph) Vertices() []VertexID {
	ids := g.verts.IDs()
	out := make([]VertexID, len(ids))
	for i, id := range ids {
		out[i] = VertexID(id)
	}
	return out
}

// EachEdge invokes fn for every edge in insertion order (normalised for
// undirected graphs, stream orientation for directed ones), replaying the
// edge log one chunk at a time — including chunks spilled to disk. fn
// returning an error stops the replay; a read error on a spilled chunk is
// returned as-is.
func (g *Graph) EachEdge(fn func(Edge) error) error {
	ids := g.verts.IDs()
	directed := g.directed
	return g.log.view().each(func(ui, vi uint32) error {
		e := Edge{VertexID(ids[ui]), VertexID(ids[vi])}
		if !directed {
			e = e.Norm()
		}
		return fn(e)
	})
}

// Edges returns all edges in insertion order. The returned slice is a
// copy. It panics if a spilled log chunk cannot be read back (use
// EachEdge for error-aware iteration); in-memory graphs cannot fail.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.log.n)
	err := g.EachEdge(func(e Edge) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("graph: edge log replay: %v", err))
	}
	return out
}

// Labels returns the distinct labels in use, sorted, i.e. the alphabet LV.
func (g *Graph) Labels() []Label {
	names := g.ltab.Names()
	out := make([]Label, len(names))
	for i, n := range names {
		out[i] = Label(n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LabelHistogram returns the number of vertices per label.
func (g *Graph) LabelHistogram() map[Label]int {
	h := make(map[Label]int)
	for _, c := range g.vlabel {
		h[Label(g.ltab.Name(c))]++
	}
	return h
}

// Clone returns a deep copy of g. The clone shares the original's
// immutable frozen log chunks (and reads already-spilled ones from the
// same directory) but never spills new chunks itself.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		directed: g.directed,
		verts:    g.verts.Clone(),
		ltab:     g.ltab.Clone(),
		vlabel:   append([]uint16(nil), g.vlabel...),
		adj:      make([]vertexAdj, len(g.adj)),
		eset:     g.eset.Clone(),
		log:      g.log.clone(),
	}
	for i := range g.adj {
		c.adj[i] = g.adj[i].clone()
	}
	if g.dupCache != nil {
		c.dupCache = append([]uint64(nil), g.dupCache...)
	}
	return c
}

// EdgeLabels returns the labels of an edge's endpoints in (U,V) order.
func (g *Graph) EdgeLabels(e Edge) (Label, Label) {
	lu, _ := g.Label(e.U)
	lv, _ := g.Label(e.V)
	return lu, lv
}

// Replay is an immutable point-in-time capture of the recorded stream:
// the accepted edges in arrival order and orientation, with their labels.
// Capture is O(1) — it pins append-only slice headers and the log's
// chunk list — and Each is safe without any lock while the graph keeps
// ingesting, so the partitioner's Evaluate/Simulate replay edges without
// stalling the stream. A Replay holds no materialised edge slice: memory
// during Each is one log chunk.
type Replay struct {
	directed bool
	ids      []int64
	vlabel   []uint16
	names    []string
	lv       logView
}

// CaptureReplay captures the recorded stream. Call with the graph's
// writer quiescent (the partitioner captures under its ingest lock).
func (g *Graph) CaptureReplay() Replay {
	return Replay{
		directed: g.directed,
		ids:      g.verts.IDs(),
		vlabel:   g.vlabel,
		names:    g.ltab.Names(),
		lv:       g.log.view(),
	}
}

// NumEdges returns the number of captured edges.
func (r Replay) NumEdges() int { return r.lv.len() }

// Each invokes fn for every captured edge in arrival order, with the
// original stream orientation and the endpoint labels. fn returning an
// error stops the replay.
func (r Replay) Each(fn func(StreamEdge) error) error {
	return r.lv.each(func(ui, vi uint32) error {
		return fn(StreamEdge{
			U: VertexID(r.ids[ui]), LU: Label(r.names[r.vlabel[ui]]),
			V: VertexID(r.ids[vi]), LV: Label(r.names[r.vlabel[vi]]),
		})
	})
}

// MemStats breaks down the recorded graph's memory footprint.
type MemStats struct {
	VertexBytes  int   // intern table: slot array + reverse ID mapping
	LabelBytes   int   // per-vertex label codes
	AdjBytes     int   // compressed adjacency: buffers + fixed per-vertex state
	EdgeSetBytes int   // duplicate-edge fingerprint slots
	LogBytes     int   // resident edge-log chunks + active tail
	SpilledBytes int64 // edge-log bytes resident on disk instead of memory
	Total        int   // sum of the in-memory fields
}

// BytesPerEdge returns resident in-memory bytes per recorded edge.
func (m MemStats) BytesPerEdge(edges int) float64 {
	if edges == 0 {
		return 0
	}
	return float64(m.Total) / float64(edges)
}

// Mem returns the graph's memory breakdown. O(|V|) — it walks the
// per-vertex adjacency headers — so callers sample it, not per-edge.
func (g *Graph) Mem() MemStats {
	m := MemStats{
		VertexBytes:  g.verts.MemBytes(),
		LabelBytes:   cap(g.vlabel) * 2,
		AdjBytes:     len(g.adj) * int(unsafe.Sizeof(vertexAdj{})),
		EdgeSetBytes: g.eset.Bytes() + cap(g.dupCache)*8,
		LogBytes:     g.log.bytes(),
		SpilledBytes: g.log.spillB,
	}
	for i := range g.adj {
		m.AdjBytes += g.adj[i].bytes()
	}
	m.Total = m.VertexBytes + m.LabelBytes + m.AdjBytes + m.EdgeSetBytes + m.LogBytes
	return m
}

// String summarises the graph.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s |V|=%d |E|=%d |LV|=%d}", kind, g.NumVertices(), g.NumEdges(), len(g.Labels()))
}
