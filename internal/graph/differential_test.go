package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"loom/internal/wal"
)

// refGraph is the pre-compression slice-backed representation (map edge
// set, raw adjacency slices, materialised eorder), kept as the
// differential oracle: the compressed storage must agree with it edge for
// edge and neighbour for neighbour on any stream.
type refGraph struct {
	directed bool
	label    map[VertexID]Label
	order    []VertexID
	adj      map[VertexID][]VertexID
	eset     map[Edge]struct{}
	eorder   []Edge
	rec      []StreamEdge // accepted edges, arrival order + orientation
}

func newRef(directed bool) *refGraph {
	return &refGraph{
		directed: directed,
		label:    make(map[VertexID]Label),
		adj:      make(map[VertexID][]VertexID),
		eset:     make(map[Edge]struct{}),
	}
}

func (r *refGraph) key(u, v VertexID) Edge {
	e := Edge{u, v}
	if !r.directed {
		e = e.Norm()
	}
	return e
}

func (r *refGraph) ensureVertex(id VertexID, l Label) error {
	if have, ok := r.label[id]; ok {
		if have != l {
			return fmt.Errorf("label conflict on %d", id)
		}
		return nil
	}
	r.label[id] = l
	r.order = append(r.order, id)
	return nil
}

// ensureEdge mirrors Graph.EnsureEdge's semantics exactly.
func (r *refGraph) ensureEdge(u VertexID, lu Label, v VertexID, lv Label) (bool, error) {
	if err := r.ensureVertex(u, lu); err != nil {
		return false, err
	}
	if err := r.ensureVertex(v, lv); err != nil {
		return false, err
	}
	if u == v {
		return false, nil
	}
	k := r.key(u, v)
	if _, dup := r.eset[k]; dup {
		return false, nil
	}
	r.eset[k] = struct{}{}
	r.eorder = append(r.eorder, k)
	r.adj[u] = append(r.adj[u], v)
	if !r.directed {
		r.adj[v] = append(r.adj[v], u)
	}
	r.rec = append(r.rec, StreamEdge{U: u, LU: lu, V: v, LV: lv})
	return true, nil
}

// genStream produces a seeded noisy stream: duplicate edges (in both
// orientations), self-loops, skewed vertex reuse, a small label alphabet
// keyed off the vertex so labels never conflict.
func genStream(seed int64, n, vrange int) []StreamEdge {
	r := rand.New(rand.NewSource(seed))
	labels := []Label{"A", "B", "C", "D", "E"}
	lbl := func(v VertexID) Label { return labels[int(v)%len(labels)] }
	out := make([]StreamEdge, 0, n)
	for i := 0; i < n; i++ {
		var u, v VertexID
		switch r.Intn(10) {
		case 0: // self-loop
			u = VertexID(r.Intn(vrange))
			v = u
		case 1, 2: // likely duplicate: small ID range, random orientation
			u = VertexID(r.Intn(20))
			v = VertexID(r.Intn(20))
		default:
			u = VertexID(r.Intn(vrange))
			v = VertexID(r.Intn(vrange))
		}
		out = append(out, StreamEdge{U: u, LU: lbl(u), V: v, LV: lbl(v)})
	}
	return out
}

// diffCheck asserts g and r agree on every observable surface.
func diffCheck(t *testing.T, g *Graph, r *refGraph) {
	t.Helper()
	if g.NumVertices() != len(r.order) {
		t.Fatalf("|V| = %d, ref %d", g.NumVertices(), len(r.order))
	}
	if g.NumEdges() != len(r.eorder) {
		t.Fatalf("|E| = %d, ref %d", g.NumEdges(), len(r.eorder))
	}
	// Vertex insertion order and labels.
	verts := g.Vertices()
	for i, v := range verts {
		if v != r.order[i] {
			t.Fatalf("vertex order[%d] = %d, ref %d", i, v, r.order[i])
		}
		if l, ok := g.Label(v); !ok || l != r.label[v] {
			t.Fatalf("label of %d = %q, ref %q", v, l, r.label[v])
		}
	}
	// Edge insertion order.
	edges := g.Edges()
	for i, e := range edges {
		if e != r.eorder[i] {
			t.Fatalf("edge order[%d] = %v, ref %v", i, e, r.eorder[i])
		}
	}
	// Adjacency: order and content per vertex; Degree matches.
	var ns []VertexID
	for _, v := range verts {
		ns = g.Neighbors(v, ns[:0])
		want := r.adj[v]
		if len(ns) != len(want) || g.Degree(v) != len(want) {
			t.Fatalf("neighbors(%d): len %d (deg %d), ref %d", v, len(ns), g.Degree(v), len(want))
		}
		for i := range want {
			if ns[i] != want[i] {
				t.Fatalf("neighbors(%d)[%d] = %d, ref %d", v, i, ns[i], want[i])
			}
		}
	}
	// HasEdge: every recorded edge present (both orientations when
	// undirected), plus absent probes.
	for e := range r.eset {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("HasEdge(%v) = false", e)
		}
		if !r.directed && !g.HasEdge(e.V, e.U) {
			t.Fatalf("HasEdge(%v reversed) = false", e)
		}
	}
	probe := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		u := VertexID(probe.Intn(300))
		v := VertexID(probe.Intn(300))
		_, want := r.eset[r.key(u, v)]
		if u == v {
			want = false
		}
		if got := g.HasEdge(u, v); got != want {
			t.Fatalf("HasEdge(%d,%d) = %v, ref %v", u, v, got, want)
		}
	}
	// Replay capture: arrival order, orientation and labels.
	rec := g.CaptureReplay()
	if rec.NumEdges() != len(r.rec) {
		t.Fatalf("replay edges = %d, ref %d", rec.NumEdges(), len(r.rec))
	}
	i := 0
	if err := rec.Each(func(se StreamEdge) error {
		if se != r.rec[i] {
			return fmt.Errorf("replay[%d] = %v, ref %v", i, se, r.rec[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func runDifferential(t *testing.T, g *Graph, directed bool, seed int64, n int) *refGraph {
	t.Helper()
	r := newRef(directed)
	for _, se := range genStream(seed, n, 3000) {
		wantAdded, wantErr := r.ensureEdge(se.U, se.LU, se.V, se.LV)
		gotAdded, gotErr := g.EnsureEdge(se.U, se.LU, se.V, se.LV)
		if gotAdded != wantAdded || (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("EnsureEdge(%v): (%v,%v), ref (%v,%v)", se, gotAdded, gotErr, wantAdded, wantErr)
		}
	}
	diffCheck(t, g, r)
	return r
}

func TestDifferentialUndirected(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		runDifferential(t, New(), false, seed, 30_000)
	}
}

func TestDifferentialDirected(t *testing.T) {
	g := NewDirected()
	r := runDifferential(t, g, true, 11, 20_000)
	// InNeighbors comes from a log replay on the directed path.
	for _, v := range g.Vertices()[:200] {
		var want []VertexID
		for _, e := range r.eorder {
			if e.V == v {
				want = append(want, e.U)
			}
		}
		got := g.InNeighbors(v)
		if len(got) != len(want) {
			t.Fatalf("InNeighbors(%d): len %d, ref %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("InNeighbors(%d)[%d] = %d, ref %d", v, i, got[i], want[i])
			}
		}
	}
}

func TestDifferentialLabelConflict(t *testing.T) {
	g := New()
	r := newRef(false)
	g.EnsureEdge(1, "A", 2, "B")
	r.ensureEdge(1, "A", 2, "B")
	// Conflicting label: both reject, graph state unchanged.
	if _, err := g.EnsureEdge(1, "X", 3, "C"); err == nil {
		t.Fatal("label conflict accepted")
	}
	r.ensureEdge(1, "X", 3, "C")
	diffCheck(t, g, r)
}

// TestDifferentialSpill runs the same stream through an in-memory graph
// and one spilling to a MemFS, then asserts the two agree with the oracle
// and with each other — spilling must be invisible to every read.
func TestDifferentialSpill(t *testing.T) {
	mem := New()
	spill := New()
	fs := wal.NewMemFS()
	if err := spill.SpillTo(fs, "gspill"); err != nil {
		t.Fatal(err)
	}
	const n = 30_000 // ≥ several logChunkEdges chunks
	r := newRef(false)
	for _, se := range genStream(42, n, 3000) {
		r.ensureEdge(se.U, se.LU, se.V, se.LV)
		mem.EnsureEdge(se.U, se.LU, se.V, se.LV)
		spill.EnsureEdge(se.U, se.LU, se.V, se.LV)
	}
	diffCheck(t, mem, r)
	diffCheck(t, spill, r)
	chunks, bytes, serr := spill.SpillStats()
	if serr != nil || chunks == 0 || bytes == 0 {
		t.Fatalf("spill stats: chunks=%d bytes=%d err=%v", chunks, bytes, serr)
	}
	// Spilled chunks actually left memory: the spilling graph's resident
	// log is bounded by the active chunk while the in-memory graph holds
	// every chunk.
	if sm, mm := spill.Mem(), mem.Mem(); sm.LogBytes >= mm.LogBytes {
		t.Fatalf("spill log resident %d >= in-memory %d", sm.LogBytes, mm.LogBytes)
	}
}

// TestSpillFaultDegrade injects spill failures: chunks must stay resident
// (no data loss), SpillStats must surface the error, and Compact on a
// recovered filesystem must drain the backlog to disk.
func TestSpillFaultDegrade(t *testing.T) {
	g := New()
	fs := wal.NewMemFS()
	if err := g.SpillTo(fs, "gspill"); err != nil {
		t.Fatal(err)
	}
	fs.SetWriteFault("elog-", -1, errors.New("disk full"))
	r := newRef(false)
	for _, se := range genStream(7, 3*logChunkEdges, 100_000) {
		r.ensureEdge(se.U, se.LU, se.V, se.LV)
		g.EnsureEdge(se.U, se.LU, se.V, se.LV)
	}
	if _, _, err := g.SpillStats(); err == nil {
		t.Fatal("spill failures not surfaced")
	}
	// Every read still exact while degraded.
	diffCheck(t, g, r)
	// Recover the disk; Compact drains the resident backlog.
	fs.SetWriteFault("elog-", 0, nil)
	if err := g.Compact(); err != nil {
		t.Fatalf("compact after recovery: %v", err)
	}
	chunks, _, serr := g.SpillStats()
	if serr != nil || chunks == 0 {
		t.Fatalf("after compact: chunks=%d err=%v", chunks, serr)
	}
	for i := range g.log.frozen {
		if g.log.frozen[i].file == "" {
			t.Fatalf("chunk %d still resident after compact", i)
		}
	}
	diffCheck(t, g, r)
}

// TestSpillReplayWhileIngesting captures a replay, keeps ingesting past
// several chunk freezes, then replays the capture: it must see exactly
// the edges recorded at capture time.
func TestSpillReplayWhileIngesting(t *testing.T) {
	g := New()
	fs := wal.NewMemFS()
	if err := g.SpillTo(fs, "gspill"); err != nil {
		t.Fatal(err)
	}
	stream := genStream(9, 4*logChunkEdges, 1_000_000)
	var accepted []StreamEdge
	half := len(stream) / 2
	for _, se := range stream[:half] {
		if added, _ := g.EnsureEdge(se.U, se.LU, se.V, se.LV); added {
			accepted = append(accepted, se)
		}
	}
	rec := g.CaptureReplay()
	for _, se := range stream[half:] {
		g.EnsureEdge(se.U, se.LU, se.V, se.LV)
	}
	if rec.NumEdges() != len(accepted) {
		t.Fatalf("capture = %d edges, want %d", rec.NumEdges(), len(accepted))
	}
	i := 0
	if err := rec.Each(func(se StreamEdge) error {
		if se != accepted[i] {
			return fmt.Errorf("replay[%d] = %v, want %v", i, se, accepted[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	r := newRef(false)
	for _, se := range genStream(5, 5000, 500) {
		r.ensureEdge(se.U, se.LU, se.V, se.LV)
		g.EnsureEdge(se.U, se.LU, se.V, se.LV)
	}
	c := g.Clone()
	// Mutate the original; the clone must still match the oracle.
	for _, se := range genStream(6, 5000, 500) {
		g.EnsureEdge(se.U, se.LU, se.V, se.LV)
	}
	diffCheck(t, c, r)
}

func TestAdjacencyBlockBoundaries(t *testing.T) {
	// Degrees straddling the compress-tail boundary: exactly adjBlock,
	// adjBlock±1, several blocks, and descending IDs (negative deltas).
	for _, deg := range []int{1, adjBlock - 1, adjBlock, adjBlock + 1, 3*adjBlock + 7} {
		g := New()
		g.AddVertex(0, "hub")
		want := make([]VertexID, 0, deg)
		for i := deg; i > 0; i-- { // descending: zigzag's negative-delta path
			v := VertexID(i * 1000)
			g.AddVertex(v, "leaf")
			if err := g.AddEdge(0, v); err != nil {
				t.Fatal(err)
			}
			want = append(want, v)
		}
		got := g.Neighbors(0, nil)
		if len(got) != deg {
			t.Fatalf("deg %d: got %d neighbours", deg, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("deg %d: neighbors[%d] = %d, want %d", deg, i, got[i], want[i])
			}
		}
		if g.Degree(0) != deg {
			t.Fatalf("Degree = %d, want %d", g.Degree(0), deg)
		}
	}
}

func TestMemStatsAccounting(t *testing.T) {
	g := New()
	for _, se := range genStream(3, 20_000, 2000) {
		g.EnsureEdge(se.U, se.LU, se.V, se.LV)
	}
	m := g.Mem()
	if m.Total <= 0 || m.AdjBytes <= 0 || m.EdgeSetBytes <= 0 || m.LogBytes <= 0 || m.VertexBytes <= 0 {
		t.Fatalf("zero component in %+v", m)
	}
	if sum := m.VertexBytes + m.LabelBytes + m.AdjBytes + m.EdgeSetBytes + m.LogBytes; m.Total != sum {
		t.Fatalf("Total %d != sum %d", m.Total, sum)
	}
	if bpe := m.BytesPerEdge(g.NumEdges()); bpe <= 0 || bpe > 200 {
		t.Fatalf("bytes/edge = %.1f out of sane range", bpe)
	}
}
