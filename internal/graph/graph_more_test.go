package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestLabelHistogram(t *testing.T) {
	g := fig1Graph(t)
	h := g.LabelHistogram()
	if h["a"] != 2 || h["b"] != 2 || h["c"] != 2 || h["d"] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestGraphString(t *testing.T) {
	g := fig1Graph(t)
	s := g.String()
	if !strings.Contains(s, "|V|=8") || !strings.Contains(s, "|E|=10") || !strings.Contains(s, "undirected") {
		t.Errorf("String = %q", s)
	}
	d := NewDirected()
	if !strings.Contains(d.String(), "directed") {
		t.Errorf("String = %q", d.String())
	}
}

func TestEdgeString(t *testing.T) {
	if got := (Edge{U: 3, V: 7}).String(); got != "(3,7)" {
		t.Errorf("Edge.String = %q", got)
	}
	se := StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}
	if got := se.String(); !strings.Contains(got, "1:a") || !strings.Contains(got, "2:b") {
		t.Errorf("StreamEdge.String = %q", got)
	}
}

func TestMustLabelPanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Error("MustLabel on missing vertex should panic")
		}
	}()
	g.MustLabel(42)
}

func TestStreamOfUnknownOrderPanics(t *testing.T) {
	g := fig1Graph(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown order should panic")
		}
	}()
	StreamOf(g, "zigzag", nil)
}

func TestStreamOfRandomWithoutRNGPanics(t *testing.T) {
	g := fig1Graph(t)
	defer func() {
		if recover() == nil {
			t.Error("OrderRandom without rng should panic")
		}
	}()
	StreamOf(g, OrderRandom, nil)
}

func TestDirectedConnectedComponents(t *testing.T) {
	// Directed edges 1→2, 3→2: weakly connected as one component.
	g := NewDirected()
	for v, l := range map[VertexID]Label{1: "a", 2: "b", 3: "c"} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(3, 2); err != nil {
		t.Fatal(err)
	}
	comps := ConnectedComponents(g)
	if len(comps) != 1 {
		t.Errorf("weak components = %d, want 1", len(comps))
	}
}

func TestOrdersHelper(t *testing.T) {
	orders := Orders()
	if len(orders) != 3 {
		t.Fatalf("Orders = %v", orders)
	}
	seen := map[StreamOrder]bool{}
	for _, o := range orders {
		seen[o] = true
	}
	if !seen[OrderRandom] || !seen[OrderBFS] || !seen[OrderDFS] {
		t.Errorf("Orders = %v", orders)
	}
}

func TestBFSAndDFSOnDisconnectedGraph(t *testing.T) {
	g := New()
	for v := VertexID(1); v <= 6; v++ {
		if err := g.AddVertex(v, "a"); err != nil {
			t.Fatal(err)
		}
	}
	// Two components: 1-2-3 and 4-5-6.
	for _, e := range []Edge{{1, 2}, {2, 3}, {4, 5}, {5, 6}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	for _, order := range []StreamOrder{OrderBFS, OrderDFS} {
		s := StreamOf(g, order, nil)
		if len(s) != 4 {
			t.Errorf("%s: %d edges, want 4 (both components)", order, len(s))
		}
	}
}

func TestBuildGraphLabelConflict(t *testing.T) {
	s := Stream{
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 1, LU: "z", V: 3, LV: "c"},
	}
	if _, err := BuildGraph(s); err == nil {
		t.Error("label conflict: want error")
	}
}

func TestEnsureEdgeIdempotentUnderNoise(t *testing.T) {
	// Replaying a noisy stream (duplicates both directions, self-loops)
	// yields a clean simple graph.
	g := New()
	noisy := Stream{
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 2, LU: "b", V: 1, LV: "a"},
		{U: 1, LU: "a", V: 1, LV: "a"},
		{U: 1, LU: "a", V: 2, LV: "b"},
		{U: 2, LU: "b", V: 3, LV: "c"},
	}
	for _, se := range noisy {
		if _, err := g.EnsureEdge(se.U, se.LU, se.V, se.LV); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumEdges() != 2 || g.NumVertices() != 3 {
		t.Errorf("noisy replay: %v", g)
	}
}

func TestInNeighborsUndirected(t *testing.T) {
	g := fig1Graph(t)
	// For undirected graphs InNeighbors falls back to the adjacency.
	in := g.InNeighbors(2)
	if len(in) != g.Degree(2) {
		t.Errorf("InNeighbors undirected = %v", in)
	}
}

func TestLargeRandomGraphOrderingsTerminate(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomGraph(r, 3000, 6000)
	for _, order := range []StreamOrder{OrderBFS, OrderDFS} {
		s := StreamOf(g, order, nil)
		if len(s) != g.NumEdges() {
			t.Fatalf("%s: %d != %d", order, len(s), g.NumEdges())
		}
	}
}
