package graph

import (
	"fmt"
	"math/rand"
)

// StreamEdge is one element of a graph stream: an edge together with the
// labels of its endpoints. An online graph is "a (possibly infinite)
// sequence of edges which are being added to a graph G over time" (§1.3);
// labels travel with the edge because a streaming consumer may see a vertex
// for the first time inside an edge.
type StreamEdge struct {
	U, V   VertexID
	LU, LV Label
}

// Edge returns the bare endpoint pair of s.
func (s StreamEdge) Edge() Edge { return Edge{s.U, s.V} }

func (s StreamEdge) String() string {
	return fmt.Sprintf("%d:%s-%d:%s", s.U, s.LU, s.V, s.LV)
}

// Stream is a finite, materialised graph stream. The evaluation streams
// graphs "from disk in one of three predefined orders" (§5.1); a Stream is
// the in-memory equivalent, and cmd/loom-gen + dataset.ReadEdgeList provide
// the on-disk form.
type Stream []StreamEdge

// StreamOrder names one of the paper's three stream orderings (§5.1).
type StreamOrder string

const (
	// OrderOriginal preserves the graph's insertion order (used as the
	// base which Random permutes, and useful for datasets whose natural
	// order is meaningful, e.g. timestamped updates).
	OrderOriginal StreamOrder = "original"
	// OrderBFS emits edges in the order discovered by a breadth-first
	// search across all connected components.
	OrderBFS StreamOrder = "bfs"
	// OrderDFS emits edges in the order discovered by a depth-first
	// search across all connected components.
	OrderDFS StreamOrder = "dfs"
	// OrderRandom emits edges in a uniformly random permutation, the
	// "pseudo adversarial" ordering (§1.2).
	OrderRandom StreamOrder = "random"
)

// Orders lists the stream orderings used in the paper's evaluation.
func Orders() []StreamOrder { return []StreamOrder{OrderRandom, OrderBFS, OrderDFS} }

// StreamOf materialises g's edges as a stream in the requested order. The
// rng is used only by OrderRandom (and to pick deterministic tie-breaks is
// unnecessary: traversal orders follow adjacency insertion order, which the
// Graph preserves). A nil rng with OrderRandom panics.
func StreamOf(g *Graph, order StreamOrder, rng *rand.Rand) Stream {
	var edges []Edge
	switch order {
	case OrderOriginal:
		edges = g.Edges()
	case OrderBFS:
		edges = bfsEdges(g)
	case OrderDFS:
		edges = dfsEdges(g)
	case OrderRandom:
		if rng == nil {
			panic("graph: OrderRandom requires a rand source")
		}
		edges = g.Edges()
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	default:
		panic(fmt.Sprintf("graph: unknown stream order %q", order))
	}
	s := make(Stream, len(edges))
	for i, e := range edges {
		lu, lv := g.EdgeLabels(e)
		s[i] = StreamEdge{U: e.U, V: e.V, LU: lu, LV: lv}
	}
	return s
}

// bfsEdges returns g's edges in breadth-first discovery order, visiting
// every connected component (roots in vertex insertion order). Each edge is
// emitted exactly once, when first seen from either endpoint.
func bfsEdges(g *Graph) []Edge {
	seen := make(map[Edge]struct{}, g.NumEdges())
	visited := make(map[VertexID]struct{}, g.NumVertices())
	out := make([]Edge, 0, g.NumEdges())

	for _, root := range g.Vertices() {
		if _, ok := visited[root]; ok {
			continue
		}
		visited[root] = struct{}{}
		queue := []VertexID{root}
		var ns []VertexID
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ns = g.Neighbors(u, ns[:0])
			for _, v := range ns {
				k := g.key(u, v)
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, k)
				}
				if _, ok := visited[v]; !ok {
					visited[v] = struct{}{}
					queue = append(queue, v)
				}
			}
		}
	}
	return out
}

// dfsEdges returns g's edges in depth-first discovery order across all
// components. Iterative to tolerate deep graphs (e.g. provenance chains).
func dfsEdges(g *Graph) []Edge {
	seen := make(map[Edge]struct{}, g.NumEdges())
	visited := make(map[VertexID]struct{}, g.NumVertices())
	out := make([]Edge, 0, g.NumEdges())

	for _, root := range g.Vertices() {
		if _, ok := visited[root]; ok {
			continue
		}
		stack := []VertexID{root}
		var ns []VertexID
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := visited[u]; ok {
				// Still emit any unseen edges from u so every edge
				// appears exactly once even when u was reached twice.
				ns = g.Neighbors(u, ns[:0])
				for _, v := range ns {
					k := g.key(u, v)
					if _, dup := seen[k]; !dup {
						seen[k] = struct{}{}
						out = append(out, k)
					}
				}
				continue
			}
			visited[u] = struct{}{}
			// Push neighbours in reverse so traversal follows
			// adjacency insertion order.
			ns = g.Neighbors(u, ns[:0])
			for i := len(ns) - 1; i >= 0; i-- {
				v := ns[i]
				k := g.key(u, v)
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					out = append(out, k)
				}
				if _, ok := visited[v]; !ok {
					stack = append(stack, v)
				}
			}
		}
	}
	return out
}

// BuildGraph replays a stream into a fresh undirected graph, ignoring
// duplicate edges and self-loops. It is the inverse of StreamOf up to edge
// order and is used by tests and the workload executor.
func BuildGraph(s Stream) (*Graph, error) {
	g := New()
	for _, se := range s {
		if _, err := g.EnsureEdge(se.U, se.LU, se.V, se.LV); err != nil {
			return nil, err
		}
	}
	return g, nil
}
