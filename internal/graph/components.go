package graph

// ConnectedComponents returns the vertex sets of g's connected components,
// treating edges as undirected regardless of g.Directed. Components are
// returned in order of their first-inserted vertex, and vertices within a
// component in discovery (BFS) order, so the result is deterministic.
func ConnectedComponents(g *Graph) [][]VertexID {
	visited := make(map[VertexID]struct{}, g.NumVertices())
	neighbors := g.Neighbors
	if g.directed {
		// Build a symmetric adjacency view for traversal.
		undirected := make(map[VertexID][]VertexID, g.NumVertices())
		err := g.EachEdge(func(e Edge) error {
			undirected[e.U] = append(undirected[e.U], e.V)
			undirected[e.V] = append(undirected[e.V], e.U)
			return nil
		})
		if err != nil {
			panic(err)
		}
		neighbors = func(v VertexID, buf []VertexID) []VertexID {
			return append(buf, undirected[v]...)
		}
	}

	var comps [][]VertexID
	for _, root := range g.Vertices() {
		if _, ok := visited[root]; ok {
			continue
		}
		visited[root] = struct{}{}
		comp := []VertexID{root}
		queue := []VertexID{root}
		var ns []VertexID
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			ns = neighbors(u, ns[:0])
			for _, v := range ns {
				if _, ok := visited[v]; ok {
					continue
				}
				visited[v] = struct{}{}
				comp = append(comp, v)
				queue = append(queue, v)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g has at most one connected component.
func IsConnected(g *Graph) bool {
	return len(ConnectedComponents(g)) <= 1
}

// InducedSubgraph returns the subgraph of g induced by the given edge set:
// exactly those edges, plus their endpoints with labels copied from g.
// This is the "treating E1 as a sub-graph" operation from §3/§4: motif
// matches are edge sets and are frequently handled as graphs.
func InducedSubgraph(g *Graph, edges []Edge) *Graph {
	sub := New()
	for _, e := range edges {
		lu := g.MustLabel(e.U)
		lv := g.MustLabel(e.V)
		// Errors are impossible: labels come from g itself and
		// duplicates are tolerated by EnsureEdge.
		if _, err := sub.EnsureEdge(e.U, lu, e.V, lv); err != nil {
			panic(err)
		}
	}
	return sub
}
