package graph

import "encoding/binary"

// Compressed adjacency: each vertex stores its neighbour list as dense
// uint32 indices in one byte buffer — a delta-varint-compressed prefix in
// blocks of adjBlock entries, followed by an uncompressed tail of raw
// 4-byte little-endian entries. Hot appends are O(1) (write 4 raw bytes);
// every adjBlock-th append compresses the tail in place. Insertion order
// is preserved exactly — the deterministic BFS/DFS stream orders and the
// golden placement tests depend on it — so deltas are zigzag-encoded
// (streams mostly touch recently-interned vertices, keeping deltas small,
// but they can be negative).
//
// Iteration decodes sequentially into a caller scratch (Graph.Neighbors);
// membership scans (the duplicate-edge verify) decode with early exit.

// adjBlock is the number of raw tail entries buffered before a block is
// compressed, and the granularity of block-at-a-time decoding.
const adjBlock = 32

// vertexAdj is one vertex's adjacency. 40 bytes of fixed state per
// vertex; buf is the only allocation.
type vertexAdj struct {
	buf  []byte
	deg  uint32 // total neighbours
	last uint32 // final value of the compressed prefix (delta base)
	tail uint16 // raw entries at the end of buf
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUv appends v as an unsigned varint.
func appendUv(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// add appends neighbour v in insertion order.
func (a *vertexAdj) add(v uint32) {
	if len(a.buf)+4 > cap(a.buf) {
		// Grow by 1/4 with a small floor: adjacency buffers dominate the
		// recorded graph's variable memory, so the doubling Go's append
		// would use for small slices wastes too much across 10⁷ vertices.
		nb := make([]byte, len(a.buf), len(a.buf)+len(a.buf)/4+16)
		copy(nb, a.buf)
		a.buf = nb
	}
	a.buf = binary.LittleEndian.AppendUint32(a.buf, v)
	a.tail++
	a.deg++
	if a.tail == adjBlock {
		a.compressTail()
	}
}

// compressTail re-encodes the raw tail entries (adjBlock of them on the
// hot path; possibly fewer under shrink) as one delta-varint block chained
// onto the compressed prefix. Usually shrinks the buffer (4 bytes raw →
// 1–3 bytes per entry on real streams); in the worst case (adversarial
// deltas) a block costs 5 bytes per entry, which iteration and membership
// handle identically.
func (a *vertexAdj) compressTail() {
	k := int(a.tail)
	start := len(a.buf) - k*4
	var vals [adjBlock]uint32
	for i := 0; i < k; i++ {
		vals[i] = binary.LittleEndian.Uint32(a.buf[start+4*i:])
	}
	var enc [adjBlock * 5]byte
	n := 0
	prev := a.last
	for _, v := range vals[:k] {
		n += binary.PutUvarint(enc[n:], zigzag(int64(v)-int64(prev)))
		prev = v
	}
	a.buf = append(a.buf[:start], enc[:n]...)
	a.last = prev
	a.tail = 0
}

// shrink compresses any partial raw tail and re-allocates the buffer to
// exact size, dropping growth slack. Appending after a shrink still works
// (the tail simply refills) at the cost of one re-allocation, so this is
// for quiesce points — Graph.Compact, which Checkpoint calls — not the
// hot path.
func (a *vertexAdj) shrink() {
	if a.tail > 0 {
		a.compressTail()
	}
	if cap(a.buf) > len(a.buf) {
		a.buf = append(make([]byte, 0, len(a.buf)), a.buf...)
	}
}

// each invokes fn for every neighbour in insertion order until fn returns
// false.
func (a *vertexAdj) each(fn func(uint32) bool) {
	comp := a.buf[:len(a.buf)-int(a.tail)*4]
	prev := uint32(0)
	for i := 0; i < len(comp); {
		u, n := binary.Uvarint(comp[i:])
		i += n
		prev = uint32(int64(prev) + unzigzag(u))
		if !fn(prev) {
			return
		}
	}
	raw := a.buf[len(a.buf)-int(a.tail)*4:]
	for i := 0; i < len(raw); i += 4 {
		if !fn(binary.LittleEndian.Uint32(raw[i:])) {
			return
		}
	}
}

// appendTo appends every neighbour to buf in insertion order, decoding
// the compressed prefix block-at-a-time, and returns the extended buffer.
func (a *vertexAdj) appendTo(buf []uint32) []uint32 {
	if cap(buf)-len(buf) < int(a.deg) {
		nb := make([]uint32, len(buf), len(buf)+int(a.deg))
		copy(nb, buf)
		buf = nb
	}
	a.each(func(v uint32) bool {
		buf = append(buf, v)
		return true
	})
	return buf
}

// contains reports whether v is a neighbour: the ground-truth scan behind
// the fingerprint edge set's verify callback.
func (a *vertexAdj) contains(v uint32) bool {
	found := false
	a.each(func(n uint32) bool {
		if n == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// clone deep-copies the adjacency.
func (a *vertexAdj) clone() vertexAdj {
	c := *a
	c.buf = append([]byte(nil), a.buf...)
	return c
}

// bytes returns the buffer footprint (the fixed struct is accounted by
// the caller per len(adj)).
func (a *vertexAdj) bytes() int { return cap(a.buf) }
