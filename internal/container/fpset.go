package container

// FP32Set is the recorded graph's duplicate-edge accelerator: an
// open-addressing set over uint64 keys that stores a 4-byte fingerprint
// per slot instead of the full 8-byte key. It is the U64Table probing
// design adapted for 10⁸-key scale, where full keys alone cost 8 bytes ×
// (1/load) per entry — more than half the recorded graph's entire memory
// budget.
//
// A fingerprint table cannot be exact on its own: two distinct keys can
// share a fingerprint. FP32Set is exact anyway because every query carries
// a verify callback that consults the caller's ground truth (for the
// graph: an adjacency-list membership scan). The protocol:
//
//   - A probe that finds no matching fingerprint proves absence — no
//     false negatives, since a present key always left its fingerprint on
//     its probe path, and entries are never deleted.
//   - A probe that finds a matching fingerprint proves nothing; verify is
//     consulted (at most once per operation — it answers for the key, not
//     the slot) and its answer is authoritative.
//
// verify runs only on fingerprint hits: for a true duplicate (which the
// caller then rejects — no further work), or on a ~2⁻³² per-probe
// collision. The hot path — inserting a fresh edge — is one cache line of
// 16 fingerprints, no map hashing, no verification.
//
// Slots hold the top 32 bits of the mixed key; the slot index is derived
// from those same bits, so the table can rehash without storing keys.
// Fingerprint 0 marks an empty slot (real fingerprints remap 0 to 1).
// There are no tombstones: the set does not support deletion, matching
// the recorded graph's append-only contract.
type FP32Set struct {
	slots []uint32 // len is a power of two (or 0)
	live  int
}

// fp32 returns the non-zero fingerprint of key.
func fp32(key uint64) uint32 {
	f := uint32(hash(key) >> 32)
	if f == 0 {
		f = 1
	}
	return f
}

// Len returns the number of keys added to the set.
func (t *FP32Set) Len() int { return t.live }

// Bytes returns the slot-array footprint, for memory accounting.
func (t *FP32Set) Bytes() int { return 4 * cap(t.slots) }

// Reserve grows the slot array to hold at least n keys under 3/4 load, if
// it is not already that large.
func (t *FP32Set) Reserve(n int) {
	if want := slotsForFP(n); want > len(t.slots) {
		t.rehashTo(want)
	}
}

// slotsForFP returns the power-of-two slot count keeping load under 13/16
// for n entries. The set tolerates a higher load than the key-storing
// tables: probes touch 4-byte slots (16 per cache line), so longer probe
// chains stay cheap, and the higher load is worth ~1.6 bytes per edge at
// 10⁸ edges.
func slotsForFP(n int) int {
	s := 64
	for s*13 < n*16 {
		s *= 2
	}
	return s
}

// KeyVerifier answers ground-truth membership for a key. It is an
// interface rather than a closure so hot paths (one Add per streamed
// edge) pass their existing structure — e.g. the graph itself — with no
// per-call allocation.
type KeyVerifier interface {
	// VerifyKey reports whether key is truly present.
	VerifyKey(key uint64) bool
}

// Contains reports whether key is in the set. gt is consulted (at most
// once) when a fingerprint on the probe path matches; it must report
// whether key is truly present in the caller's ground truth.
func (t *FP32Set) Contains(key uint64, gt KeyVerifier) bool {
	if t.live == 0 {
		return false
	}
	f := fp32(key)
	mask := uint32(len(t.slots) - 1)
	for i := f & mask; ; i = (i + 1) & mask {
		switch t.slots[i] {
		case f:
			// Authoritative for the key, not the slot: one call decides.
			return gt.VerifyKey(key)
		case 0:
			return false
		}
	}
}

// Add inserts key if absent, reporting whether it was added (false means
// key was already present). gt is consulted as in Contains.
func (t *FP32Set) Add(key uint64, gt KeyVerifier) bool {
	if len(t.slots) == 0 || (t.live+1)*16 > len(t.slots)*13 {
		t.rehash()
	}
	f := fp32(key)
	mask := uint32(len(t.slots) - 1)
	for i := f & mask; ; i = (i + 1) & mask {
		switch t.slots[i] {
		case f:
			// A fingerprint match: either key is a duplicate, or another
			// key collided into the same fingerprint. Ground truth
			// decides. On a collision the key is added without planting a
			// second slot: probe starts are derived from the fingerprint,
			// so the planted f already serves every key that maps to it.
			if gt.VerifyKey(key) {
				return false
			}
			t.live++
			return true
		case 0:
			t.slots[i] = f
			t.live++
			return true
		}
	}
}

func (t *FP32Set) rehash() {
	n := len(t.slots) * 2
	if n == 0 {
		n = 64
	}
	t.rehashTo(n)
}

// Clone returns a deep copy of the set.
func (t *FP32Set) Clone() FP32Set {
	return FP32Set{slots: append([]uint32(nil), t.slots...), live: t.live}
}

// rehashTo rebuilds the slot array. The new index of an entry is derived
// from its stored fingerprint — the same bits the original index came
// from — so no keys are needed. Entries that shared a fingerprint each
// keep a slot; lookups verify through ground truth either way.
func (t *FP32Set) rehashTo(n int) {
	old := t.slots
	t.slots = make([]uint32, n)
	mask := uint32(n - 1)
	for _, f := range old {
		if f == 0 {
			continue
		}
		for i := f & mask; ; i = (i + 1) & mask {
			if t.slots[i] == 0 {
				t.slots[i] = f
				break
			}
		}
	}
}
