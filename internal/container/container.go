// Package container provides the packed open-addressing hash structures
// shared by Loom's hot paths: a generic uint64-keyed table (U64Table) that
// backs the window's edge index, and a 4-byte-per-slot fingerprint set
// (FP32Set) that backs the recorded graph's duplicate-edge check at
// 10⁸-edge scale.
//
// Both structures use the probing scheme proved out by the window's
// original edgeTable (PR 2): linear probing over a power-of-two slot
// array, keys finished with intern.Mix64 (splitmix64's avalanche), growth
// at 3/4 load. Packed uint64 keys reserve two sentinel values — 0 and
// ^uint64(0) — for the empty and tombstone markers; callers guarantee real
// keys never take those values (for packed (u,v) index pairs both
// sentinels decode to self-loops, which are rejected upstream).
package container

import (
	"unsafe"

	"loom/internal/intern"
)

// Key sentinels for U64Table. Exported for the tests' white-box checks;
// callers never store them.
const (
	u64Empty = uint64(0)
	u64Tomb  = ^uint64(0)
)

// Slot is one occupied hash slot of a U64Table: the packed key and the
// caller's payload. Slot pointers returned by Get/Ensure/Insert are valid
// until the next insert (which may rehash).
type Slot[V any] struct {
	key uint64
	Val V
}

// Key returns the slot's packed key.
func (s *Slot[V]) Key() uint64 { return s.key }

// U64Table is a packed open-addressing hash table keyed by uint64, holding
// one payload value inline per slot. Payloads of removed slots are retained
// in place and handed back (not zeroed) when the slot is reused, so callers
// can recycle payload capacity (e.g. a match list's backing array) across
// occupants — reset what you need after Ensure/Insert report a fresh key.
//
// Keys must never be 0 or ^uint64(0) (the empty and tombstone sentinels).
// The zero U64Table is ready to use.
type U64Table[V any] struct {
	slots []Slot[V] // len is a power of two (or 0)
	live  int       // keys present
	used  int       // keys present + tombstones
}

// hash finishes the packed key; see intern.Mix64.
func hash(pk uint64) uint64 { return intern.Mix64(pk) }

// Len returns the number of keys in the table.
func (t *U64Table[V]) Len() int { return t.live }

// Reserve grows the slot array to hold at least n keys under 3/4 load
// without rehashing, if it is not already that large. Payloads and keys
// are preserved.
func (t *U64Table[V]) Reserve(n int) {
	want := intern.SlotsFor(n, 64)
	if want > len(t.slots) {
		t.rehashTo(want)
	}
}

// Get returns the slot for pk, or nil. The pointer is valid until the next
// insert (which may rehash).
func (t *U64Table[V]) Get(pk uint64) *Slot[V] {
	if t.live == 0 {
		return nil
	}
	mask := uint64(len(t.slots) - 1)
	for i := hash(pk) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.key {
		case pk:
			return s
		case u64Empty:
			return nil
		}
	}
}

// Has reports whether pk is in the table.
func (t *U64Table[V]) Has(pk uint64) bool { return t.Get(pk) != nil }

// Ensure returns pk's slot, inserting it if absent; existed reports
// whether pk was already present. One probe walk serves the duplicate
// check AND the insertion: an absent key lands on the first tombstone of
// its probe path, exactly where Insert would put it. On a fresh insert the
// payload is whatever the slot's previous occupant left behind.
func (t *U64Table[V]) Ensure(pk uint64) (s *Slot[V], existed bool) {
	if len(t.slots) == 0 || (t.used+1)*4 > len(t.slots)*3 {
		t.rehash()
	}
	mask := uint64(len(t.slots) - 1)
	firstTomb := -1
	for i := hash(pk) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.key {
		case pk:
			return s, true
		case u64Tomb:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case u64Empty:
			if firstTomb >= 0 {
				s = &t.slots[firstTomb]
			} else {
				t.used++
			}
			s.key = pk
			t.live++
			return s, false
		}
	}
}

// Insert adds pk (which must not be present) and returns its slot, with
// the payload left as the slot's previous occupant had it (recycle or
// reset as needed). The pointer is valid until the next insert.
func (t *U64Table[V]) Insert(pk uint64) *Slot[V] {
	if len(t.slots) == 0 || (t.used+1)*4 > len(t.slots)*3 {
		t.rehash()
	}
	mask := uint64(len(t.slots) - 1)
	for i := hash(pk) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch s.key {
		case u64Empty:
			t.used++
			fallthrough
		case u64Tomb:
			s.key = pk
			t.live++
			return s
		}
	}
}

// Remove deletes pk if present, reporting whether it was. The payload
// stays in the tombstoned slot for the next occupant to recycle.
func (t *U64Table[V]) Remove(pk uint64) bool {
	s := t.Get(pk)
	if s == nil {
		return false
	}
	t.RemoveSlot(s)
	return true
}

// RemoveSlot deletes a slot the caller already probed for, skipping the
// second probe Remove would pay.
func (t *U64Table[V]) RemoveSlot(s *Slot[V]) {
	s.key = u64Tomb
	t.live--
}

// Range calls fn for every occupied slot until fn returns false. Iteration
// order is unspecified. The table must not be mutated during the walk.
func (t *U64Table[V]) Range(fn func(*Slot[V]) bool) {
	for i := range t.slots {
		s := &t.slots[i]
		if s.key != u64Empty && s.key != u64Tomb {
			if !fn(s) {
				return
			}
		}
	}
}

// Bytes returns the table's slot-array footprint, for memory accounting.
// Payload-owned allocations (slices the caller hangs off Val) are not
// included.
func (t *U64Table[V]) Bytes() int {
	var s Slot[V]
	return cap(t.slots) * int(unsafe.Sizeof(s))
}

// rehash rebuilds the slot array: doubled when genuinely full, same size
// when tombstones account for the load (the steady state of a sliding
// window, which inserts and removes at the same rate).
func (t *U64Table[V]) rehash() {
	n := len(t.slots)
	switch {
	case n == 0:
		n = 64
	case (t.live+1)*2 > n:
		n *= 2
	}
	t.rehashTo(n)
}

func (t *U64Table[V]) rehashTo(n int) {
	old := t.slots
	t.slots = make([]Slot[V], n)
	t.used = t.live
	mask := uint64(n - 1)
	for _, s := range old {
		if s.key == u64Empty || s.key == u64Tomb {
			continue
		}
		for i := hash(s.key) & mask; ; i = (i + 1) & mask {
			if t.slots[i].key == u64Empty {
				t.slots[i] = s
				break
			}
		}
	}
}
