package container

import (
	"math/rand"
	"testing"
)

// pack mimics the window's packed-IEdge keys: (u<<32)|v with u < v, never
// the 0 / ^0 sentinels.
func pack(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

func TestU64TableBasics(t *testing.T) {
	var tab U64Table[[]int]
	if tab.Len() != 0 || tab.Has(pack(1, 2)) {
		t.Fatal("empty table claims contents")
	}
	a := pack(1, 2)
	b := pack(1, 3)
	sa := tab.Insert(a)
	sa.Val = sa.Val[:0]
	tab.Insert(b).Val = nil
	if tab.Len() != 2 || !tab.Has(a) || !tab.Has(b) {
		t.Fatalf("after inserts: len=%d has(a)=%v has(b)=%v", tab.Len(), tab.Has(a), tab.Has(b))
	}
	tab.Get(a).Val = append(tab.Get(a).Val, 7)
	if got := tab.Get(a).Val; len(got) != 1 || got[0] != 7 {
		t.Fatal("slot payload lost")
	}
	if tab.Get(a).Key() != a {
		t.Fatal("slot key mismatch")
	}
	if !tab.Remove(a) || tab.Has(a) || tab.Len() != 1 {
		t.Fatal("remove failed")
	}
	if tab.Remove(a) {
		t.Fatal("double remove reported success")
	}
	// Reinsert after removal: the tombstoned slot is recycled and the
	// payload is handed back for the caller to recycle (capacity kept).
	s := tab.Insert(a)
	if cap(s.Val) == 0 {
		t.Fatal("recycled slot dropped payload capacity")
	}
	s.Val = s.Val[:0]
	if len(tab.Get(a).Val) != 0 {
		t.Fatal("payload reset lost")
	}
}

func TestU64TableEnsure(t *testing.T) {
	var tab U64Table[int]
	s, existed := tab.Ensure(pack(4, 9))
	if existed {
		t.Fatal("fresh key reported as existing")
	}
	s.Val = 42
	s2, existed := tab.Ensure(pack(4, 9))
	if !existed || s2.Val != 42 {
		t.Fatalf("ensure of present key: existed=%v val=%d", existed, s2.Val)
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d, want 1", tab.Len())
	}
	// Ensure after a removal lands on the tombstone of the probe path.
	tab.Remove(pack(4, 9))
	if _, existed := tab.Ensure(pack(4, 9)); existed {
		t.Fatal("removed key reported as existing")
	}
}

func TestU64TableChurn(t *testing.T) {
	// A sliding-window-like workload: sustained insert/remove churn with
	// a bounded live set must not grow the table without bound and must
	// stay consistent with a reference map.
	var tab U64Table[struct{}]
	ref := make(map[uint64]bool)
	r := rand.New(rand.NewSource(99))
	var livePeak, slotPeak int
	for i := 0; i < 200_000; i++ {
		pk := pack(uint32(r.Intn(500)), uint32(500+r.Intn(500)))
		if ref[pk] {
			tab.Remove(pk)
			delete(ref, pk)
		} else if len(ref) < 256 {
			tab.Insert(pk)
			ref[pk] = true
		}
		if tab.Len() != len(ref) {
			t.Fatalf("step %d: len %d != ref %d", i, tab.Len(), len(ref))
		}
		if len(ref) > livePeak {
			livePeak = len(ref)
		}
		if len(tab.slots) > slotPeak {
			slotPeak = len(tab.slots)
		}
	}
	for pk := range ref {
		if !tab.Has(pk) {
			t.Fatalf("lost key %x", pk)
		}
	}
	// 256 live keys need 512 slots at 3/4 load; churn must not push the
	// table past a small constant factor of that.
	if slotPeak > 2048 {
		t.Errorf("table grew to %d slots for %d live keys", slotPeak, livePeak)
	}
}

func TestU64TableCollisionProbe(t *testing.T) {
	// Force many keys into one small table so linear probing and
	// tombstone reuse both exercise wraparound.
	var tab U64Table[struct{}]
	keys := make([]uint64, 0, 100)
	for i := uint32(1); i <= 100; i++ {
		keys = append(keys, pack(i, i+1))
	}
	for _, k := range keys {
		tab.Insert(k)
	}
	for i, k := range keys {
		if i%2 == 0 {
			tab.Remove(k)
		}
	}
	for i, k := range keys {
		if want := i%2 != 0; tab.Has(k) != want {
			t.Fatalf("key %d: has=%v want %v", i, tab.Has(k), want)
		}
	}
	// Reinsert the removed half; everything must be findable again.
	for i, k := range keys {
		if i%2 == 0 {
			tab.Insert(k)
		}
	}
	for i, k := range keys {
		if !tab.Has(k) {
			t.Fatalf("key %d lost after reinsert", i)
		}
	}
}

func TestU64TableReserveAndRange(t *testing.T) {
	var tab U64Table[int]
	tab.Reserve(1000)
	slots := len(tab.slots)
	if slots < 1000*4/3 {
		t.Fatalf("reserve(1000) sized only %d slots", slots)
	}
	for i := uint32(1); i <= 1000; i++ {
		tab.Insert(pack(i, i+7)).Val = int(i)
	}
	if len(tab.slots) != slots {
		t.Fatalf("table rehashed despite Reserve: %d -> %d slots", slots, len(tab.slots))
	}
	sum := 0
	tab.Range(func(s *Slot[int]) bool { sum += s.Val; return true })
	if want := 1000 * 1001 / 2; sum != want {
		t.Fatalf("range sum %d, want %d", sum, want)
	}
	// Early-exit walk.
	n := 0
	tab.Range(func(s *Slot[int]) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("range visited %d slots after early exit", n)
	}
	if tab.Bytes() <= 0 {
		t.Fatal("Bytes() reported nothing for a populated table")
	}
}

// fpRef pairs an FP32Set with the reference map that plays its ground
// truth: the KeyVerifier answers from the map, as the graph's adjacency
// scan would.
type fpRef struct {
	set FP32Set
	ref map[uint64]bool
}

func (f *fpRef) VerifyKey(k uint64) bool { return f.ref[k] }

func (f *fpRef) add(k uint64) bool { return f.set.Add(k, f) }

func (f *fpRef) contains(k uint64) bool { return f.set.Contains(k, f) }

func TestFP32SetAgainstMap(t *testing.T) {
	f := &fpRef{ref: make(map[uint64]bool)}
	r := rand.New(rand.NewSource(7))
	keys := make([]uint64, 0, 50_000)
	for i := 0; i < 50_000; i++ {
		k := pack(uint32(r.Intn(5000)), uint32(5000+r.Intn(5000)))
		wantAdd := !f.ref[k]
		if got := f.add(k); got != wantAdd {
			t.Fatalf("step %d: Add(%x)=%v want %v", i, k, got, wantAdd)
		}
		if wantAdd {
			f.ref[k] = true
			keys = append(keys, k)
		}
		if f.set.Len() != len(f.ref) {
			t.Fatalf("step %d: len %d != ref %d", i, f.set.Len(), len(f.ref))
		}
	}
	for _, k := range keys {
		if !f.contains(k) {
			t.Fatalf("lost key %x", k)
		}
	}
	for i := 0; i < 50_000; i++ {
		k := pack(uint32(10_000+r.Intn(5000)), uint32(20_000+r.Intn(5000)))
		if f.ref[k] {
			continue
		}
		if f.contains(k) {
			t.Fatalf("phantom key %x", k)
		}
	}
}

// mapTruth is a bare map-backed KeyVerifier.
type mapTruth map[uint64]bool

func (m mapTruth) VerifyKey(k uint64) bool { return m[k] }

func TestFP32SetForcedCollisions(t *testing.T) {
	// Drive the collision path deterministically: ground truth that says
	// "absent" forces the shared-fingerprint insert, and flipping the
	// ground truth must flip the answers — the fingerprint is shared, the
	// verdict comes from VerifyKey.
	var s FP32Set
	truth := mapTruth{}
	k1, k2 := pack(1, 2), pack(3, 4)
	for _, k := range []uint64{k1, k2} {
		if !s.Add(k, truth) {
			t.Fatal("fresh add rejected")
		}
		truth[k] = true
	}
	// Whatever the fingerprints, Contains consults ground truth on a hit
	// and trusts empty-slot misses; both keys must read back present.
	for _, k := range []uint64{k1, k2} {
		if !s.Contains(k, truth) {
			t.Fatalf("key %x lost", k)
		}
	}
	// Duplicate adds are rejected via ground truth.
	if s.Add(k1, truth) {
		t.Fatal("duplicate add accepted")
	}
}

func TestFP32SetReserveGrowth(t *testing.T) {
	var s FP32Set
	s.Reserve(10_000)
	slots := len(s.slots)
	truth := mapTruth{}
	for i := uint32(1); i <= 10_000; i++ {
		k := pack(i, i+1)
		s.Add(k, truth)
		truth[k] = true
	}
	if len(s.slots) != slots {
		t.Fatalf("set rehashed despite Reserve: %d -> %d slots", slots, len(s.slots))
	}
	// Growth keeps everything findable across rehashes (no stored keys —
	// fingerprints must relocate by their own bits).
	for i := uint32(10_001); i <= 40_000; i++ {
		k := pack(i, i+1)
		s.Add(k, truth)
		truth[k] = true
	}
	for k := range truth {
		if !s.Contains(k, truth) {
			t.Fatalf("key %x lost after growth", k)
		}
	}
	if s.Bytes() < 4*len(s.slots) {
		t.Fatal("Bytes() under-reports")
	}
	// Clone is independent of the original.
	c := s.Clone()
	if c.Len() != s.Len() || !c.Contains(pack(5, 6), truth) {
		t.Fatal("clone lost contents")
	}
}
