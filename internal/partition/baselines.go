package partition

import (
	"math"
)

import "loom/internal/graph"

// ---------------------------------------------------------------------------
// Hash
// ---------------------------------------------------------------------------

// Hash is the naive baseline: vertices are assigned by a hash of their ID,
// "the default partitioner used by many existing partitioned graph
// databases" (§5.1). It ignores structure entirely and anchors the relative
// ipt scale of Figs. 7 and 8 (every other system is reported as % of Hash).
type Hash struct {
	t *Tracker
}

// NewHash returns a Hash partitioner over k partitions. Hash needs no
// capacity: its placement is balanced in expectation, so the tracker's
// capacity is never consulted for scoring (a nominal one is still required
// by the tracker).
func NewHash(k int, capacity float64) *Hash {
	return &Hash{t: NewTracker(k, capacity)}
}

// Name implements Streamer.
func (h *Hash) Name() string { return "hash" }

// ProcessEdge implements Streamer: each unseen endpoint is hashed to a
// partition.
func (h *Hash) ProcessEdge(e graph.StreamEdge) {
	ui, vi := h.t.ObserveStream(e)
	if h.t.PartOfIdx(ui) == Unassigned {
		h.t.AssignIdx(ui, ID(fnvHash(e.U)%uint64(h.t.K())))
	}
	if h.t.PartOfIdx(vi) == Unassigned {
		h.t.AssignIdx(vi, ID(fnvHash(e.V)%uint64(h.t.K())))
	}
}

// ProcessEdges implements Streamer: batch ingest, identical placements to
// per-edge ProcessEdge.
func (h *Hash) ProcessEdges(batch []graph.StreamEdge) {
	for _, e := range batch {
		h.ProcessEdge(e)
	}
}

// Flush implements Streamer (no-op: Hash holds no state).
func (h *Hash) Flush() {}

// Assignment implements Streamer.
func (h *Hash) Assignment() *Assignment { return h.t.Assignment() }

// Snapshot implements Streamer.
func (h *Hash) Snapshot() *Assignment { return h.t.Snapshot() }

// Tracker exposes the underlying tracker (benchmarks inspect sizes).
func (h *Hash) Tracker() *Tracker { return h.t }

// ---------------------------------------------------------------------------
// LDG — Linear Deterministic Greedy (Stanton & Kliot, KDD 2012)
// ---------------------------------------------------------------------------

// LDG assigns each vertex "to the partition where it has the most
// neighbours, but penalises that number of neighbours for each partition by
// how full it is" (§1.2): argmax_Si N(Si, v)·(1 − |V(Si)|/C).
type LDG struct {
	t *Tracker
}

// NewLDG returns an LDG partitioner with k partitions and capacity C
// (typically CapacityFor(n, k, ν)).
func NewLDG(k int, capacity float64) *LDG {
	return &LDG{t: NewTracker(k, capacity)}
}

// Name implements Streamer.
func (l *LDG) Name() string { return "ldg" }

// ProcessEdge implements Streamer: unassigned endpoints are placed with the
// LDG rule against the adjacency observed so far.
func (l *LDG) ProcessEdge(e graph.StreamEdge) {
	ui, vi := l.t.ObserveStream(e)
	if l.t.PartOfIdx(ui) == Unassigned {
		l.t.AssignLDGIdx(ui)
	}
	if l.t.PartOfIdx(vi) == Unassigned {
		l.t.AssignLDGIdx(vi)
	}
}

// ProcessEdges implements Streamer: batch ingest, identical placements to
// per-edge ProcessEdge.
func (l *LDG) ProcessEdges(batch []graph.StreamEdge) {
	for _, e := range batch {
		l.ProcessEdge(e)
	}
}

// Flush implements Streamer (no-op: LDG assigns eagerly).
func (l *LDG) Flush() {}

// Assignment implements Streamer.
func (l *LDG) Assignment() *Assignment { return l.t.Assignment() }

// Snapshot implements Streamer.
func (l *LDG) Snapshot() *Assignment { return l.t.Snapshot() }

// Tracker exposes the underlying tracker.
func (l *LDG) Tracker() *Tracker { return l.t }

// ---------------------------------------------------------------------------
// Fennel (Tsourakakis et al., WSDM 2014)
// ---------------------------------------------------------------------------

// FennelGamma is the γ exponent of Fennel's cost function; the paper uses
// the authors' recommended γ = 1.5 throughout (§5.1).
const FennelGamma = 1.5

// Fennel interpolates between neighbourhood attraction and a superlinear
// size penalty: a vertex v goes to argmax_Si |N(v) ∩ Si| − α·γ·|Si|^(γ−1),
// subject to the hard balance constraint |Si| < ν·n/k. α is the standard
// m·k^(γ−1)/n^γ.
type Fennel struct {
	t     *Tracker
	alpha float64
	gamma float64
}

// NewFennel returns a Fennel partitioner for k partitions with the given
// expected vertex and edge counts (used to derive α and the capacity
// ν·n/k with ν = DefaultImbalance).
func NewFennel(k, expectedVertices, expectedEdges int) *Fennel {
	n := float64(expectedVertices)
	m := float64(expectedEdges)
	if n < 1 {
		n = 1
	}
	alpha := m * math.Pow(float64(k), FennelGamma-1) / math.Pow(n, FennelGamma)
	return &Fennel{
		t:     NewTracker(k, CapacityFor(expectedVertices, k, DefaultImbalance)),
		alpha: alpha,
		gamma: FennelGamma,
	}
}

// Name implements Streamer.
func (f *Fennel) Name() string { return "fennel" }

// ProcessEdge implements Streamer.
func (f *Fennel) ProcessEdge(e graph.StreamEdge) {
	ui, vi := f.t.ObserveStream(e)
	if f.t.PartOfIdx(ui) == Unassigned {
		f.assign(ui)
	}
	if f.t.PartOfIdx(vi) == Unassigned {
		f.assign(vi)
	}
}

func (f *Fennel) assign(vi uint32) {
	counts := f.t.NeighborCountsIdx(vi)
	best := Unassigned
	bestScore := math.Inf(-1)
	for p := 0; p < f.t.K(); p++ {
		size := float64(f.t.Size(ID(p)))
		if size+1 > f.t.Capacity() {
			continue // hard balance constraint ν·n/k
		}
		score := float64(counts[p]) - f.alpha*f.gamma*math.Pow(size, f.gamma-1)
		if score > bestScore || (score == bestScore && best != Unassigned && f.t.Size(ID(p)) < f.t.Size(best)) {
			best, bestScore = ID(p), score
		}
	}
	if best == Unassigned {
		best = f.t.LeastLoaded() // every partition at capacity: overflow to smallest
	}
	f.t.AssignIdx(vi, best)
}

// ProcessEdges implements Streamer: batch ingest, identical placements to
// per-edge ProcessEdge.
func (f *Fennel) ProcessEdges(batch []graph.StreamEdge) {
	for _, e := range batch {
		f.ProcessEdge(e)
	}
}

// Flush implements Streamer (no-op).
func (f *Fennel) Flush() {}

// Assignment implements Streamer.
func (f *Fennel) Assignment() *Assignment { return f.t.Assignment() }

// Snapshot implements Streamer.
func (f *Fennel) Snapshot() *Assignment { return f.t.Snapshot() }

// Tracker exposes the underlying tracker.
func (f *Fennel) Tracker() *Tracker { return f.t }

// Alpha returns the derived α parameter (for tests and diagnostics).
func (f *Fennel) Alpha() float64 { return f.alpha }
