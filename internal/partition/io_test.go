package partition

import (
	"bytes"
	"strings"
	"testing"

	"loom/internal/graph"
)

func TestAssignmentRoundTrip(t *testing.T) {
	a := AssignmentOf(4, map[graph.VertexID]ID{5: 2, 1: 0, 9: 3, 2: 0})
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, a); err != nil {
		t.Fatal(err)
	}
	// Sorted by vertex ID.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "1\t0" || lines[len(lines)-1] != "9\t3" {
		t.Errorf("output not sorted: %v", lines)
	}
	back, err := ReadAssignment(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != 4 || back.NumAssigned() != 4 {
		t.Fatalf("round trip: %+v", back)
	}
	for v, p := range a.Parts() {
		if back.Of(v) != p {
			t.Errorf("vertex %d: %d != %d", v, back.Of(v), p)
		}
	}
	for i := range a.Sizes {
		if back.Sizes[i] != a.Sizes[i] {
			t.Errorf("sizes differ: %v vs %v", back.Sizes, a.Sizes)
		}
	}
}

func TestReadAssignmentKHint(t *testing.T) {
	in := "1\t0\n2\t1\n"
	a, err := ReadAssignment(strings.NewReader(in), 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 8 || len(a.Sizes) != 8 {
		t.Errorf("kHint ignored: K=%d", a.K)
	}
}

func TestReadAssignmentTolerant(t *testing.T) {
	in := "# comment\n\n  1\t0  \n2 1\n"
	a, err := ReadAssignment(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 2 {
		t.Errorf("parsed %d", a.NumAssigned())
	}
}

func TestReadAssignmentErrors(t *testing.T) {
	cases := map[string]string{
		"short line":    "1\n",
		"bad vertex":    "x\t0\n",
		"bad partition": "1\tx\n",
		"negative":      "1\t-2\n",
		"duplicate":     "1\t0\n1\t1\n",
	}
	for name, in := range cases {
		if _, err := ReadAssignment(strings.NewReader(in), 0); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadAssignmentEmpty(t *testing.T) {
	a, err := ReadAssignment(strings.NewReader(""), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != 1 || a.NumAssigned() != 0 {
		t.Errorf("empty: %+v", a)
	}
}
