package partition

import "fmt"

// TrackerState is the checkpointable portion of a Tracker: the per-vertex
// placements, the pending (unassigned-frontier) occurrence lists, and the
// flat neighbour-partition count table. Sizes and the assigned count are
// derived on restore; the copy-on-write publish state is deliberately
// absent (a restored tracker's first Publish copies every page, exactly
// like a fresh tracker's).
//
// Cnt must be carried explicitly: assigned vertices' occurrence lists are
// freed once folded in (see ObserveIdx), so the counts are not derivable
// from Nbrs. A nil Cnt (a state captured before the count table existed,
// when Nbrs held every occurrence) is rebuilt from Nbrs on restore.
type TrackerState struct {
	Parts    []ID
	Nbrs     [][]uint32
	Cnt      []int32
	Observed int
}

// CaptureState deep-copies the tracker's checkpointable state.
func (t *Tracker) CaptureState() TrackerState {
	s := TrackerState{
		Parts:    append([]ID(nil), t.parts...),
		Nbrs:     make([][]uint32, len(t.nbrs)),
		Cnt:      append([]int32(nil), t.cnt...),
		Observed: t.observed,
	}
	if s.Cnt == nil {
		s.Cnt = []int32{}
	}
	for i, ns := range t.nbrs {
		if len(ns) > 0 {
			s.Nbrs[i] = append([]uint32(nil), ns...)
		}
	}
	return s
}

// RestoreState loads a captured state into a freshly constructed tracker.
// It bypasses AssignIdx entirely: the assign hook is not fired (recovery
// replays events only for post-checkpoint work) and no page is marked
// dirty (the page table is still empty, so the next Publish copies
// everything it needs).
func (t *Tracker) RestoreState(s TrackerState) error {
	if t.assigned != 0 || t.observed != 0 || len(t.parts) != 0 {
		return fmt.Errorf("partition: RestoreState on a non-fresh tracker (%d assigned, %d observed)",
			t.assigned, t.observed)
	}
	if len(s.Nbrs) != len(s.Parts) {
		return fmt.Errorf("partition: state has %d adjacency rows for %d vertices", len(s.Nbrs), len(s.Parts))
	}
	parts := make([]ID, len(s.Parts))
	copy(parts, s.Parts)
	nbrs := make([][]uint32, len(s.Nbrs))
	for i, ns := range s.Nbrs {
		for _, u := range ns {
			if int(u) >= len(s.Parts) {
				return fmt.Errorf("partition: state adjacency of vertex %d references vertex %d beyond extent %d",
					i, u, len(s.Parts))
			}
		}
		if len(ns) > 0 {
			nbrs[i] = append([]uint32(nil), ns...)
		}
	}
	for i, p := range parts {
		if p == Unassigned {
			continue
		}
		if p < 0 || int(p) >= t.k {
			return fmt.Errorf("partition: state assigns vertex %d to partition %d (k=%d)", i, p, t.k)
		}
		t.sizes[p]++
		t.assigned++
	}
	t.parts = parts
	t.nbrs = nbrs
	t.observed = s.Observed
	switch {
	case s.Cnt != nil && len(s.Cnt) == len(parts)*t.k:
		t.cnt = append([]int32(nil), s.Cnt...)
	case s.Cnt != nil:
		return fmt.Errorf("partition: state has %d neighbour counts for %d vertices × k=%d",
			len(s.Cnt), len(parts), t.k)
	default:
		// Legacy state (captured when Nbrs held every occurrence): rebuild
		// cnt[v·k+p] = occurrences u ∈ nbrs[v] with parts[u] == p, the
		// exact invariant the streaming path maintains.
		cnt := make([]int32, len(parts)*t.k)
		for v, ns := range nbrs {
			for _, u := range ns {
				if p := parts[u]; p != Unassigned {
					cnt[v*t.k+int(p)]++
				}
			}
		}
		t.cnt = cnt
	}
	return nil
}
