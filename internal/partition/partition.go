// Package partition provides the vertex-centric partitioning substrate of
// Loom: shared state tracking (vertex → partition assignments, sizes,
// observed adjacency), the quality metrics of §1.3/§5 (edge-cut, imbalance,
// communication volume), and the three baseline streaming partitioners the
// paper evaluates against — Hash, LDG (Stanton & Kliot) and Fennel
// (Tsourakakis et al.).
//
// A vertex-centric graph partitioning is a disjoint family of vertex sets
// P_k(G) = {V1, …, Vk}; an edge is intra-partition when both endpoints land
// in the same set (§1.3). All partitioners here consume edge streams: when
// an edge arrives, any endpoint not yet assigned is placed using the
// partitioner's heuristic (the paper notes "LDG may partition either vertex
// or edge streams").
//
// Hot-path state is slice-backed: external vertex IDs are interned to dense
// uint32 indices (internal/intern) and assignments/adjacency are plain
// slices indexed by them. The *Idx methods operate directly on dense
// indices — streaming partitioners intern each endpoint once per edge and
// stay on the index forms; the VertexID forms remain as convenience
// wrappers for tests and cold paths.
package partition

import (
	"fmt"
	"sync/atomic"

	"loom/internal/graph"
	"loom/internal/intern"
)

// ID identifies a partition, 0..k-1. Unassigned is the sentinel for
// vertices not (yet) placed — during streaming, the contents of Loom's
// sliding window Ptemp.
type ID int

// Unassigned marks a vertex without a partition.
const Unassigned ID = -1

// DefaultImbalance is the slack factor ν shared by Fennel's capacity
// constraint and Loom's maximum imbalance b (§4: "set the maximum imbalance
// to b = 1.1, emulating Fennel").
const DefaultImbalance = 1.1

// Streamer is a streaming edge partitioner: it consumes stream edges one at
// a time or in batches and yields a vertex assignment. Hash, LDG, Fennel
// and Loom all implement it. Streamers themselves are single-threaded; the
// public loom.Partitioner provides the concurrency layer on top.
type Streamer interface {
	// Name identifies the algorithm in reports ("hash", "ldg", …).
	Name() string
	// ProcessEdge ingests the next edge of the graph stream.
	ProcessEdge(e graph.StreamEdge)
	// ProcessEdges ingests a batch of stream edges in order. Placements
	// are identical to calling ProcessEdge per element; the batch form
	// exists so callers can amortise per-call overhead (locking,
	// interface dispatch) over many edges.
	ProcessEdges(batch []graph.StreamEdge)
	// Flush completes pending work (drains any window); after Flush every
	// observed vertex has a partition.
	Flush()
	// Assignment returns the current vertex → partition mapping. The
	// returned value copies the per-vertex placements but shares the
	// (grow-only) vertex table with the streamer.
	Assignment() *Assignment
	// Snapshot returns a fully isolated copy of the current assignment:
	// placements, sizes and the vertex table are all deep-copied, so the
	// snapshot stays consistent and race-free while streaming continues.
	Snapshot() *Assignment
}

// Assignment is the result of a partitioning run: a dense slice of
// partition IDs indexed by interned vertex, plus the table that maps
// external vertex IDs to those indices.
type Assignment struct {
	K     int
	Sizes []int // vertex count per partition

	verts    *intern.VertexTable
	parts    []ID // per dense vertex index; Unassigned for unplaced
	assigned int
}

// NewAssignment returns an empty assignment over k partitions with its own
// vertex table.
func NewAssignment(k int) *Assignment {
	return &Assignment{K: k, Sizes: make([]int, k), verts: intern.NewVertexTable(0)}
}

// AssignmentOf builds an assignment from an explicit vertex → partition
// map (test and tooling convenience). Sizes are derived from the map.
func AssignmentOf(k int, parts map[graph.VertexID]ID) *Assignment {
	a := NewAssignment(k)
	for v, p := range parts {
		a.Set(v, p)
	}
	return a
}

// NewAssignmentFrom wraps an existing dense parts slice (indexed by verts'
// dense indices) as an Assignment, deriving sizes. The slice and table are
// retained, not copied.
func NewAssignmentFrom(k int, verts *intern.VertexTable, parts []ID) *Assignment {
	a := &Assignment{K: k, Sizes: make([]int, k), verts: verts, parts: parts}
	for _, p := range parts {
		if p != Unassigned {
			a.Sizes[p]++
			a.assigned++
		}
	}
	return a
}

// Of returns v's partition, or Unassigned.
func (a *Assignment) Of(v graph.VertexID) ID {
	if a.verts == nil {
		return Unassigned
	}
	i, ok := a.verts.Lookup(int64(v))
	if !ok || int(i) >= len(a.parts) {
		return Unassigned
	}
	return a.parts[i]
}

// Set places (or re-places) v in partition p, maintaining Sizes. Unlike the
// Tracker's Assign, re-assignment is allowed: an Assignment is a snapshot
// under construction (refinement, deserialisation), not streaming state.
func (a *Assignment) Set(v graph.VertexID, p ID) {
	if p < 0 || int(p) >= a.K {
		panic(fmt.Sprintf("partition: bad partition id %d (k=%d)", p, a.K))
	}
	i := a.verts.Intern(int64(v))
	for len(a.parts) <= int(i) {
		a.parts = append(a.parts, Unassigned)
	}
	if old := a.parts[i]; old != Unassigned {
		a.Sizes[old]--
	} else {
		a.assigned++
	}
	a.parts[i] = p
	a.Sizes[p]++
}

// NumAssigned returns the number of assigned vertices.
func (a *Assignment) NumAssigned() int { return a.assigned }

// Each calls f for every assigned vertex in dense-index (first-seen) order.
func (a *Assignment) Each(f func(v graph.VertexID, p ID)) {
	for i, p := range a.parts {
		if p != Unassigned {
			f(graph.VertexID(a.verts.ID(uint32(i))), p)
		}
	}
}

// Parts materialises the assignment as a vertex → partition map (cold-path
// convenience for reports and tests; the hot-path representation is the
// dense slice).
func (a *Assignment) Parts() map[graph.VertexID]ID {
	out := make(map[graph.VertexID]ID, a.assigned)
	a.Each(func(v graph.VertexID, p ID) { out[v] = p })
	return out
}

// Table returns the vertex table mapping external IDs to dense indices.
// The table is shared, not copied; it may gain vertices beyond this
// snapshot's range as streaming continues (Of guards the bound).
func (a *Assignment) Table() *intern.VertexTable { return a.verts }

// PartsClone returns a copy of the dense parts slice, indexed by Table()'s
// dense indices. Offline passes (refinement) mutate the copy and rewrap it
// with NewAssignmentFrom.
func (a *Assignment) PartsClone() []ID { return append([]ID(nil), a.parts...) }

// Clone returns a fully isolated deep copy of the assignment: placements,
// sizes and the vertex table share no state with the original, so the copy
// can be read from any goroutine while the original's table keeps growing.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		K:        a.K,
		Sizes:    append([]int(nil), a.Sizes...),
		parts:    append([]ID(nil), a.parts...),
		assigned: a.assigned,
	}
	if a.verts != nil {
		c.verts = a.verts.Clone()
	}
	return c
}

// ---------------------------------------------------------------------------
// Paged copy-on-write epochs: the lock-free read path
// ---------------------------------------------------------------------------

// PageBits sizes assignment pages at 2^PageBits = 1024 IDs (8 KiB), the
// granularity of copy-on-write between published epochs: a batch that
// places vertices into d pages costs d page copies at the next Publish,
// while the other V/1024 pages are shared by reference with the previous
// epoch. 1024 measured best on batch-256 ingest (placements cluster on a
// few-thousand-index span per batch, so finer pages over-copy less than
// 4096-ID pages while the page table stays small enough to re-copy per
// publish: 8 KB per million vertices).
const PageBits = 10

// PageSize is the number of assignments per page.
const PageSize = 1 << PageBits

// pageMask extracts the within-page offset from a dense index.
const pageMask = PageSize - 1

// page is one immutable block of assignments. Pages referenced by a
// published Epoch are never written again; the writer replaces dirty pages
// with fresh copies at the next Publish.
type page [PageSize]ID

// Epoch is an immutable, published view of an assignment: a page table over
// copy-on-write assignment pages plus a point-in-time view of the vertex
// table. Epochs are published by the single writer with an atomic store
// (Tracker.Publish) and every method is safe from any number of goroutines
// while streaming continues — reads are one atomic pointer load away from
// the partitioner at all times, with no locks and no per-vertex copying.
type Epoch struct {
	k        int
	seq      uint64
	numVerts int // dense indices covered; everything beyond is Unassigned
	assigned int
	sizes    []int   // per-partition vertex counts at publish (immutable)
	pages    []*page // immutable page table; pages shared across epochs
	verts    intern.View
}

// K returns the number of partitions.
func (e *Epoch) K() int { return e.k }

// Seq returns the publish sequence number, strictly increasing per tracker
// (the first published epoch is 1).
func (e *Epoch) Seq() uint64 { return e.seq }

// NumAssigned returns the number of assigned vertices at publish.
func (e *Epoch) NumAssigned() int { return e.assigned }

// Sizes returns the per-partition vertex counts at publish. The slice is
// shared and immutable; callers must not modify it.
func (e *Epoch) Sizes() []int { return e.sizes }

// Verts returns the epoch's vertex-table view.
func (e *Epoch) Verts() intern.View { return e.verts }

// OfIdx returns the partition of dense index i at publish time, or
// Unassigned.
func (e *Epoch) OfIdx(i uint32) ID {
	if int(i) >= e.numVerts {
		return Unassigned
	}
	return e.pages[i>>PageBits][i&pageMask]
}

// Of returns v's partition at publish time, or Unassigned: one concurrent
// hash probe plus two array indexes — the lock-free point-read path.
func (e *Epoch) Of(v graph.VertexID) ID {
	i, ok := e.verts.Lookup(int64(v))
	if !ok {
		return Unassigned
	}
	return e.OfIdx(i)
}

// Each calls f for every assigned vertex in dense-index (first-seen) order.
// Each allocates nothing: it walks the shared pages directly.
func (e *Epoch) Each(f func(v graph.VertexID, p ID)) {
	for pi, pg := range e.pages {
		base := pi << PageBits
		lim := e.numVerts - base
		if lim > PageSize {
			lim = PageSize
		}
		for j := 0; j < lim; j++ {
			if p := pg[j]; p != Unassigned {
				f(graph.VertexID(e.verts.ID(uint32(base+j))), p)
			}
		}
	}
}

// Materialise flattens the epoch into an Assignment for offline consumers
// (workload execution, metrics). The result shares the live vertex table —
// safe for reads, since lookups tolerate a concurrent writer and Of bounds
// dense indices to the materialised parts — and costs one O(V) copy, paid
// by the reader with no lock held.
func (e *Epoch) Materialise() *Assignment {
	parts := make([]ID, e.numVerts)
	for pi := range e.pages {
		base := pi << PageBits
		if base >= e.numVerts {
			break
		}
		copy(parts[base:], e.pages[pi][:])
	}
	return &Assignment{
		K:        e.k,
		Sizes:    append([]int(nil), e.sizes...),
		verts:    e.verts.Table(),
		parts:    parts,
		assigned: e.assigned,
	}
}

// Tracker maintains the shared streaming state: assignments, partition
// sizes, and the adjacency observed so far (needed by neighbourhood
// heuristics: "heuristics which consider the local neighbourhood of each
// new element at the time it arrives", §1.2). All per-vertex state is
// slice-backed, indexed by the dense index of a shared vertex table.
//
// The flat parts slice stays the authoritative representation on the
// single-threaded placement path (neighbour scans index it directly); the
// paged epoch mirror is rebuilt lazily from a dirty-page bitmap when the
// writer calls Publish, so the per-assignment cost of the read path is one
// bit set.
type Tracker struct {
	k        int
	capacity float64 // C: per-partition vertex capacity
	verts    *intern.VertexTable
	parts    []ID       // per dense index
	nbrs     [][]uint32 // observed adjacency per dense index
	sizes    []int
	assigned int
	observed int   // edges observed
	counts   []int // scratch for NeighborCountsIdx (len k)

	// cnt holds N(Si, v) for every vertex as a flat K-stride table:
	// cnt[v·k+p] is the number of observed occurrences u ∈ nbrs[v] with
	// parts[u] == p. It is maintained incrementally — an observation whose
	// far endpoint is already assigned credits the near row immediately,
	// and AssignIdx credits all of a vertex's pending occurrences once —
	// so neighbourhood scores are O(K) reads instead of O(deg) walks.
	// Total maintenance cost is one increment per (occurrence, assigned
	// endpoint) pair, i.e. O(observations), where the walks it replaces
	// were O(deg) per eviction and quadratic on hub-heavy streams.
	cnt []int32

	// Copy-on-write publish state: pages mirrors parts page-by-page as of
	// the last Publish; pageDirty marks pages whose flat contents have
	// changed since. Published epochs hold references into former pages
	// slices, never the mutable tail.
	pages     []*page
	pageDirty []bool
	pubSeq    uint64
	published atomic.Pointer[Epoch]

	// onAssign, when non-nil, observes every streaming placement (see
	// SetAssignHook). Invoked synchronously from AssignIdx.
	onAssign func(v int64, p ID)
}

// NewTracker creates a tracker for k partitions with per-partition vertex
// capacity C. Capacity is typically ν·n/k for an expected vertex count n
// (see CapacityFor); it must be positive.
func NewTracker(k int, capacity float64) *Tracker {
	return NewTrackerWith(k, capacity, intern.NewVertexTable(0))
}

// NewTrackerWith creates a tracker that interns vertices through a shared
// table, so components cooperating on one stream (e.g. Loom's tracker and
// sliding window) agree on dense indices.
func NewTrackerWith(k int, capacity float64, verts *intern.VertexTable) *Tracker {
	if k < 1 {
		panic(fmt.Sprintf("partition: k must be >= 1, got %d", k))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("partition: capacity must be positive, got %v", capacity))
	}
	return &Tracker{
		k:        k,
		capacity: capacity,
		verts:    verts,
		sizes:    make([]int, k),
		counts:   make([]int, k),
	}
}

// CapacityFor returns the standard capacity constraint C = ν·n/k for an
// expected total vertex count n.
func CapacityFor(expectedVertices, k int, slack float64) float64 {
	c := slack * float64(expectedVertices) / float64(k)
	if c < 1 {
		c = 1
	}
	return c
}

// K returns the number of partitions.
func (t *Tracker) K() int { return t.k }

// Capacity returns the per-partition capacity C.
func (t *Tracker) Capacity() float64 { return t.capacity }

// Verts returns the tracker's vertex table.
func (t *Tracker) Verts() *intern.VertexTable { return t.verts }

// Reserve pre-sizes the per-vertex slices for n vertices, so a stream
// whose vertex count is known (or derivable from the capacity constraint)
// pays no incremental growth in the per-edge path.
func (t *Tracker) Reserve(n int) {
	if n <= cap(t.parts) {
		return
	}
	parts := make([]ID, len(t.parts), n)
	copy(parts, t.parts)
	t.parts = parts
	nbrs := make([][]uint32, len(t.nbrs), n)
	copy(nbrs, t.nbrs)
	t.nbrs = nbrs
	if n*t.k > cap(t.cnt) {
		cnt := make([]int32, len(t.cnt), n*t.k)
		copy(cnt, t.cnt)
		t.cnt = cnt
	}
}

// ensure grows the per-vertex slices to cover dense index i (the shared
// table may have been grown by another component).
func (t *Tracker) ensure(i uint32) {
	for len(t.parts) <= int(i) {
		t.parts = append(t.parts, Unassigned)
		t.nbrs = append(t.nbrs, nil)
	}
	for want := len(t.parts) * t.k; len(t.cnt) < want; {
		t.cnt = append(t.cnt, 0)
	}
}

// Intern returns v's dense index, growing the tracker's state as needed.
func (t *Tracker) Intern(v graph.VertexID) uint32 {
	i := t.verts.Intern(int64(v))
	t.ensure(i)
	return i
}

// ObserveIdx records the adjacency of an edge between dense indices ui and
// vi without assigning anything. Callers observe every edge exactly once,
// before placement.
//
// Occurrence lists are kept only while an endpoint is unassigned: they
// exist to carry the pending neighbour-partition credits that AssignIdx
// folds into the count table, and an assigned endpoint's credits flow
// into cnt immediately instead. Tracker adjacency memory is therefore
// proportional to the unassigned frontier (roughly the sliding window's
// reach), not to the stream length.
func (t *Tracker) ObserveIdx(ui, vi uint32) {
	t.ensure(ui)
	t.ensure(vi)
	if t.parts[ui] == Unassigned {
		t.nbrs[ui] = addNbr(t.nbrs[ui], vi)
	}
	if t.parts[vi] == Unassigned {
		t.nbrs[vi] = addNbr(t.nbrs[vi], ui)
	}
	t.creditObserve(ui, vi)
	t.observed++
}

// creditObserve folds one observed occurrence into the incremental
// neighbour-partition counts: an endpoint that is already assigned
// credits the far endpoint's row immediately; an unassigned endpoint's
// credit is deferred to its AssignIdx, which walks the occurrences
// observed up to that point. Each occurrence is credited exactly once
// per endpoint either way.
func (t *Tracker) creditObserve(ui, vi uint32) {
	if p := t.parts[ui]; p != Unassigned {
		t.cnt[int(vi)*t.k+int(p)]++
	}
	if p := t.parts[vi]; p != Unassigned {
		t.cnt[int(ui)*t.k+int(p)]++
	}
}

// addNbr appends one neighbour, seeding a fresh list with capacity for a
// typical vertex: the default doubling from nil (1 → 2 → 4 → …) costs an
// allocation per step on the per-edge hot path, and most stream vertices
// end up with a handful of neighbours anyway.
func addNbr(l []uint32, v uint32) []uint32 {
	if l == nil {
		l = make([]uint32, 0, 8)
	}
	return append(l, v)
}

// ObserveStream interns a stream edge's endpoints, records its adjacency,
// and returns the dense endpoint indices — the single per-edge entry point
// for streaming partitioners.
func (t *Tracker) ObserveStream(e graph.StreamEdge) (ui, vi uint32) {
	ui = t.Intern(e.U)
	vi = t.Intern(e.V)
	if t.parts[ui] == Unassigned {
		t.nbrs[ui] = addNbr(t.nbrs[ui], vi)
	}
	if t.parts[vi] == Unassigned {
		t.nbrs[vi] = addNbr(t.nbrs[vi], ui)
	}
	t.creditObserve(ui, vi)
	t.observed++
	return ui, vi
}

// Observe records the adjacency of a stream edge without assigning
// anything.
func (t *Tracker) Observe(e graph.StreamEdge) { t.ObserveStream(e) }

// ObservedEdges returns the number of edges observed so far.
func (t *Tracker) ObservedEdges() int { return t.observed }

// ObservedDegree returns the number of occurrences observed while v was
// unassigned (an assigned vertex's occurrence list is folded into the
// neighbour-partition counts and freed; see ObserveIdx).
func (t *Tracker) ObservedDegree(v graph.VertexID) int {
	i, ok := t.verts.Lookup(int64(v))
	if !ok || int(i) >= len(t.nbrs) {
		return 0
	}
	return len(t.nbrs[i])
}

// NeighborsIdx returns the occurrences observed while dense index i was
// unassigned (nil once i is assigned; see ObserveIdx). The slice is owned
// by the tracker.
func (t *Tracker) NeighborsIdx(i uint32) []uint32 {
	if int(i) >= len(t.nbrs) {
		return nil
	}
	return t.nbrs[i]
}

// Neighbors returns v's observed neighbours as external IDs. The slice is
// freshly allocated (cold-path convenience; hot paths use NeighborsIdx).
func (t *Tracker) Neighbors(v graph.VertexID) []graph.VertexID {
	i, ok := t.verts.Lookup(int64(v))
	if !ok {
		return nil
	}
	ns := t.NeighborsIdx(i)
	out := make([]graph.VertexID, len(ns))
	for j, u := range ns {
		out[j] = graph.VertexID(t.verts.ID(u))
	}
	return out
}

// PartOfIdx returns the partition of dense index i, or Unassigned.
func (t *Tracker) PartOfIdx(i uint32) ID {
	if int(i) >= len(t.parts) {
		return Unassigned
	}
	return t.parts[i]
}

// PartOf returns v's partition, or Unassigned.
func (t *Tracker) PartOf(v graph.VertexID) ID {
	i, ok := t.verts.Lookup(int64(v))
	if !ok {
		return Unassigned
	}
	return t.PartOfIdx(i)
}

// AssignIdx places dense index i in partition p. Re-assignment is a
// programming error in one-pass streaming ("streaming partitioners do not
// perform any refinement", §1.2) and panics.
func (t *Tracker) AssignIdx(i uint32, p ID) {
	if p < 0 || int(p) >= t.k {
		panic(fmt.Sprintf("partition: bad partition id %d (k=%d)", p, t.k))
	}
	t.ensure(i)
	if old := t.parts[i]; old != Unassigned {
		panic(fmt.Sprintf("partition: vertex %d reassigned %d → %d", t.verts.ID(i), old, p))
	}
	t.parts[i] = p
	// Credit every occurrence observed while i was unassigned: each
	// neighbour's row gains one count for partition p per occurrence,
	// completing the invariant creditObserve maintains going forward.
	// The list is then dead — no path reads an assigned vertex's
	// occurrences again — so free it.
	for _, u := range t.nbrs[i] {
		t.cnt[int(u)*t.k+int(p)]++
	}
	t.nbrs[i] = nil
	t.sizes[p]++
	t.assigned++
	t.markDirty(i)
	if t.onAssign != nil {
		t.onAssign(t.verts.ID(i), p)
	}
}

// markDirty flags the page holding dense index i as changed since the last
// Publish. One shift and one store on the placement hot path.
func (t *Tracker) markDirty(i uint32) {
	pi := int(i >> PageBits)
	for len(t.pageDirty) <= pi {
		t.pageDirty = append(t.pageDirty, false)
		t.pages = append(t.pages, nil)
	}
	t.pageDirty[pi] = true
}

// SetAssignHook registers fn to observe every streaming placement: it is
// called synchronously from AssignIdx with the vertex's external ID and its
// partition, after sizes and counters are updated. One hook only (the
// public layer fans out to subscribers); nil removes it. Because vertices
// are never reassigned in one-pass streaming, replaying the hook's calls
// reconstructs the assignment exactly.
func (t *Tracker) SetAssignHook(fn func(v int64, p ID)) { t.onAssign = fn }

// Assign places v in partition p (see AssignIdx).
func (t *Tracker) Assign(v graph.VertexID, p ID) { t.AssignIdx(t.Intern(v), p) }

// Size returns |V(Si)| for partition p.
func (t *Tracker) Size(p ID) int { return t.sizes[p] }

// Sizes returns a copy of the per-partition vertex counts.
func (t *Tracker) Sizes() []int { return append([]int(nil), t.sizes...) }

// NumAssigned returns the number of assigned vertices.
func (t *Tracker) NumAssigned() int { return t.assigned }

// MinSize returns the size of the smallest partition (Smin in §4).
func (t *Tracker) MinSize() int {
	min := t.sizes[0]
	for _, s := range t.sizes[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// LeastLoaded returns the partition with the fewest vertices (lowest index
// on ties) — the universal fallback when neighbourhood scores are all zero.
func (t *Tracker) LeastLoaded() ID {
	best := ID(0)
	for p := 1; p < t.k; p++ {
		if t.sizes[p] < t.sizes[best] {
			best = ID(p)
		}
	}
	return best
}

// Residual returns LDG's weighting term 1 − |V(Si)|/C for partition p.
func (t *Tracker) Residual(p ID) float64 {
	return 1 - float64(t.sizes[p])/t.capacity
}

// NeighborCount returns N(Si, v): the number of v's observed neighbours
// already assigned to partition p.
func (t *Tracker) NeighborCount(v graph.VertexID, p ID) int {
	i, ok := t.verts.Lookup(int64(v))
	if !ok || p < 0 || int(p) >= t.k {
		return 0
	}
	if row := t.cntRow(i); row != nil {
		return int(row[p])
	}
	return 0
}

// cntRow returns dense index i's neighbour-partition count row, or nil
// when i is beyond the tracked extent.
func (t *Tracker) cntRow(i uint32) []int32 {
	off := int(i) * t.k
	if off >= len(t.cnt) {
		return nil
	}
	return t.cnt[off : off+t.k]
}

// AddNeighborCountsIdx adds N(Si, i) for every partition Si into counts
// (len K), reading the incrementally maintained row — O(K), independent
// of i's observed degree.
func (t *Tracker) AddNeighborCountsIdx(i uint32, counts []int32) {
	for p, c := range t.cntRow(i) {
		counts[p] += c
	}
}

// NeighborCountsIdx returns N(Si, ·) for every partition of dense index
// i, read from the incrementally maintained count table — O(K) regardless
// of degree. The returned slice is the tracker's reusable scratch buffer:
// it is valid only until the next call that computes neighbour counts on
// this tracker (NeighborCountsIdx, NeighborCounts, countNeighbors,
// AssignLDGIdx, AssignLDG, or any placer built on them).
func (t *Tracker) NeighborCountsIdx(i uint32) []int {
	counts := t.counts
	for p := range counts {
		counts[p] = 0
	}
	for p, c := range t.cntRow(i) {
		counts[p] = int(c)
	}
	return counts
}

// NeighborCounts returns N(Si, v) for every partition in one pass. The
// slice is freshly allocated (hot paths use NeighborCountsIdx).
func (t *Tracker) NeighborCounts(v graph.VertexID) []int {
	counts := make([]int, t.k)
	if i, ok := t.verts.Lookup(int64(v)); ok {
		copy(counts, t.NeighborCountsIdx(i))
	}
	return counts
}

// Assignment snapshots the current assignment. The parts slice is copied;
// the vertex table is shared (it only grows, and Of bounds-checks).
func (t *Tracker) Assignment() *Assignment {
	return &Assignment{
		K:        t.k,
		Sizes:    append([]int(nil), t.sizes...),
		verts:    t.verts,
		parts:    append([]ID(nil), t.parts...),
		assigned: t.assigned,
	}
}

// Snapshot returns a fully isolated copy of the current assignment: unlike
// Assignment, the vertex table is deep-copied too, so the snapshot can be
// read from any goroutine while streaming keeps growing the live table.
// This is the O(V) deep-copy path; concurrent readers that only need a
// consistent view use the copy-on-write epochs (Publish/Latest) instead.
func (t *Tracker) Snapshot() *Assignment {
	return &Assignment{
		K:        t.k,
		Sizes:    append([]int(nil), t.sizes...),
		verts:    t.verts.Clone(),
		parts:    append([]ID(nil), t.parts...),
		assigned: t.assigned,
	}
}

// Publish captures the current assignment as an immutable Epoch and makes
// it the tracker's latest published view. Only pages dirtied since the last
// Publish are copied out of the flat parts slice — clean pages are shared
// by reference with earlier epochs — so a batch that placed vertices into d
// pages costs d page copies plus one page-table copy, independent of V.
// When nothing changed, the previous epoch is returned unchanged (held
// snapshots stay valid either way: published pages are never mutated).
//
// Publish runs on the writer side (the caller's ingest lock is the natural
// guard); Latest and every Epoch method are the concurrent read side.
func (t *Tracker) Publish() *Epoch {
	n := len(t.parts)
	npages := (n + PageSize - 1) >> PageBits
	for len(t.pages) < npages {
		t.pages = append(t.pages, nil)
		t.pageDirty = append(t.pageDirty, false)
	}
	changed := false
	for pi := 0; pi < npages; pi++ {
		if t.pages[pi] != nil && !t.pageDirty[pi] {
			continue
		}
		pg := new(page)
		base := pi << PageBits
		m := copy(pg[:], t.parts[base:n])
		for j := m; j < PageSize; j++ {
			pg[j] = Unassigned
		}
		t.pages[pi] = pg
		t.pageDirty[pi] = false
		changed = true
	}
	if !changed {
		// Nothing placed since the last epoch. Vertices interned or merely
		// observed since then are Unassigned, which the previous epoch
		// already reports via its index bound — reuse it.
		if prev := t.published.Load(); prev != nil {
			return prev
		}
	}
	t.pubSeq++
	e := &Epoch{
		k:        t.k,
		seq:      t.pubSeq,
		numVerts: n,
		assigned: t.assigned,
		sizes:    append([]int(nil), t.sizes...),
		pages:    append([]*page(nil), t.pages[:npages]...),
		verts:    t.verts.View(),
	}
	t.published.Store(e)
	return e
}

// Latest returns the most recently published epoch, or nil before the
// first Publish. Safe from any goroutine: one atomic load.
func (t *Tracker) Latest() *Epoch { return t.published.Load() }

// AssignLDGIdx places the vertex at dense index i with the Linear
// Deterministic Greedy rule (§4, quoting [30]): argmax over Si of
// N(Si, v)·(1 − |V(Si)|/C), breaking ties toward the emptier partition and
// falling back to the least-loaded partition when every score is zero (no
// assigned neighbours, or all candidates full).
func (t *Tracker) AssignLDGIdx(i uint32) ID {
	counts := t.NeighborCountsIdx(i)
	best, bestScore := Unassigned, 0.0
	for p := 0; p < t.k; p++ {
		if counts[p] == 0 {
			continue // score would be 0, which never wins (see guard below)
		}
		if float64(t.sizes[p])+1 > t.capacity {
			continue // assignment would exceed capacity
		}
		score := float64(counts[p]) * t.Residual(ID(p))
		if score > bestScore || (score == bestScore && best != Unassigned && t.sizes[p] < t.sizes[best]) {
			if score > 0 {
				best, bestScore = ID(p), score
			}
		}
	}
	if best == Unassigned {
		best = t.LeastLoaded()
	}
	t.AssignIdx(i, best)
	return best
}

// AssignLDG places vertex v with the LDG rule (see AssignLDGIdx). Exposed
// on the tracker because Loom reuses it verbatim for non-motif edges.
func (t *Tracker) AssignLDG(v graph.VertexID) ID {
	return t.AssignLDGIdx(t.Intern(v))
}

// EdgeCut returns the number of edges of g whose endpoints are assigned to
// different partitions (min. edge-cut is "the standard scale free measure
// of partition quality", §1.3). Unassigned vertices are treated as living
// together in the window partition Ptemp (§3): an edge between two
// unassigned vertices is not cut, an edge from an assigned vertex into
// Ptemp is.
func EdgeCut(g *graph.Graph, a *Assignment) int {
	cut := 0
	for _, e := range g.Edges() {
		if a.Of(e.U) != a.Of(e.V) {
			cut++
		}
	}
	return cut
}

// Imbalance returns max_i |Vi| / (n/k) − 1, the relative overload of the
// fullest partition versus a perfectly balanced one, where n is the number
// of assigned vertices. This is the measure behind §5.2's "LDG varying
// between 1%−3%, Loom and Fennel between 7% and their maximum imbalance of
// 10%".
func Imbalance(a *Assignment) float64 { return ImbalanceOf(a.K, a.Sizes) }

// ImbalanceOf is Imbalance over a bare (k, sizes) pair — the form epochs
// and snapshots carry without materialising an Assignment.
func ImbalanceOf(k int, sizes []int) float64 {
	n := 0
	max := 0
	for _, s := range sizes {
		n += s
		if s > max {
			max = s
		}
	}
	if n == 0 {
		return 0
	}
	ideal := float64(n) / float64(k)
	return float64(max)/ideal - 1
}

// CommunicationVolume returns Σ_v (#distinct partitions holding neighbours
// of v, other than v's own) — the min. communication volume objective that
// Sheep optimises (§1.2), reported for completeness.
func CommunicationVolume(g *graph.Graph, a *Assignment) int {
	vol := 0
	var ns []graph.VertexID
	for _, v := range g.Vertices() {
		seen := make(map[ID]bool)
		own := a.Of(v)
		ns = g.Neighbors(v, ns[:0])
		for _, u := range ns {
			if p := a.Of(u); p != own && !seen[p] {
				seen[p] = true
				vol++
			}
		}
	}
	return vol
}

// fnvHash hashes a vertex ID (used by the Hash baseline). It is FNV-1a over
// the ID's little-endian bytes, inlined so the hot path does not allocate a
// hash.Hash — bit-identical to hash/fnv's New64a.
func fnvHash(v graph.VertexID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	x := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime64
		x >>= 8
	}
	return h
}
