// Package partition provides the vertex-centric partitioning substrate of
// Loom: shared state tracking (vertex → partition assignments, sizes,
// observed adjacency), the quality metrics of §1.3/§5 (edge-cut, imbalance,
// communication volume), and the three baseline streaming partitioners the
// paper evaluates against — Hash, LDG (Stanton & Kliot) and Fennel
// (Tsourakakis et al.).
//
// A vertex-centric graph partitioning is a disjoint family of vertex sets
// P_k(G) = {V1, …, Vk}; an edge is intra-partition when both endpoints land
// in the same set (§1.3). All partitioners here consume edge streams: when
// an edge arrives, any endpoint not yet assigned is placed using the
// partitioner's heuristic (the paper notes "LDG may partition either vertex
// or edge streams").
package partition

import (
	"fmt"
	"hash/fnv"

	"loom/internal/graph"
)

// ID identifies a partition, 0..k-1. Unassigned is the sentinel for
// vertices not (yet) placed — during streaming, the contents of Loom's
// sliding window Ptemp.
type ID int

// Unassigned marks a vertex without a partition.
const Unassigned ID = -1

// DefaultImbalance is the slack factor ν shared by Fennel's capacity
// constraint and Loom's maximum imbalance b (§4: "set the maximum imbalance
// to b = 1.1, emulating Fennel").
const DefaultImbalance = 1.1

// Streamer is a streaming edge partitioner: it consumes stream edges one at
// a time and yields a vertex assignment. Hash, LDG, Fennel and Loom all
// implement it.
type Streamer interface {
	// Name identifies the algorithm in reports ("hash", "ldg", …).
	Name() string
	// ProcessEdge ingests the next edge of the graph stream.
	ProcessEdge(e graph.StreamEdge)
	// Flush completes pending work (drains any window); after Flush every
	// observed vertex has a partition.
	Flush()
	// Assignment returns the current vertex → partition mapping.
	Assignment() *Assignment
}

// Assignment is the result of a partitioning run.
type Assignment struct {
	K     int
	Parts map[graph.VertexID]ID
	Sizes []int // vertex count per partition
}

// Of returns v's partition, or Unassigned.
func (a *Assignment) Of(v graph.VertexID) ID {
	if p, ok := a.Parts[v]; ok {
		return p
	}
	return Unassigned
}

// NumAssigned returns the number of assigned vertices.
func (a *Assignment) NumAssigned() int { return len(a.Parts) }

// Tracker maintains the shared streaming state: assignments, partition
// sizes, and the adjacency observed so far (needed by neighbourhood
// heuristics: "heuristics which consider the local neighbourhood of each
// new element at the time it arrives", §1.2).
type Tracker struct {
	k        int
	capacity float64 // C: per-partition vertex capacity
	parts    map[graph.VertexID]ID
	sizes    []int
	nbrs     map[graph.VertexID][]graph.VertexID
	observed int // edges observed
}

// NewTracker creates a tracker for k partitions with per-partition vertex
// capacity C. Capacity is typically ν·n/k for an expected vertex count n
// (see CapacityFor); it must be positive.
func NewTracker(k int, capacity float64) *Tracker {
	if k < 1 {
		panic(fmt.Sprintf("partition: k must be >= 1, got %d", k))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("partition: capacity must be positive, got %v", capacity))
	}
	return &Tracker{
		k:        k,
		capacity: capacity,
		parts:    make(map[graph.VertexID]ID),
		sizes:    make([]int, k),
		nbrs:     make(map[graph.VertexID][]graph.VertexID),
	}
}

// CapacityFor returns the standard capacity constraint C = ν·n/k for an
// expected total vertex count n.
func CapacityFor(expectedVertices, k int, slack float64) float64 {
	c := slack * float64(expectedVertices) / float64(k)
	if c < 1 {
		c = 1
	}
	return c
}

// K returns the number of partitions.
func (t *Tracker) K() int { return t.k }

// Capacity returns the per-partition capacity C.
func (t *Tracker) Capacity() float64 { return t.capacity }

// Observe records the adjacency of a stream edge without assigning
// anything. Callers observe every edge exactly once, before placement.
func (t *Tracker) Observe(e graph.StreamEdge) {
	t.nbrs[e.U] = append(t.nbrs[e.U], e.V)
	t.nbrs[e.V] = append(t.nbrs[e.V], e.U)
	t.observed++
}

// ObservedEdges returns the number of edges observed so far.
func (t *Tracker) ObservedEdges() int { return t.observed }

// ObservedDegree returns the degree of v in the graph seen so far.
func (t *Tracker) ObservedDegree(v graph.VertexID) int { return len(t.nbrs[v]) }

// Neighbors returns v's observed neighbours (owned by the tracker).
func (t *Tracker) Neighbors(v graph.VertexID) []graph.VertexID { return t.nbrs[v] }

// PartOf returns v's partition, or Unassigned.
func (t *Tracker) PartOf(v graph.VertexID) ID {
	if p, ok := t.parts[v]; ok {
		return p
	}
	return Unassigned
}

// Assign places v in partition p. Re-assignment is a programming error in
// one-pass streaming ("streaming partitioners do not perform any
// refinement", §1.2) and panics.
func (t *Tracker) Assign(v graph.VertexID, p ID) {
	if p < 0 || int(p) >= t.k {
		panic(fmt.Sprintf("partition: bad partition id %d (k=%d)", p, t.k))
	}
	if old, ok := t.parts[v]; ok {
		panic(fmt.Sprintf("partition: vertex %d reassigned %d → %d", v, old, p))
	}
	t.parts[v] = p
	t.sizes[p]++
}

// Size returns |V(Si)| for partition p.
func (t *Tracker) Size(p ID) int { return t.sizes[p] }

// MinSize returns the size of the smallest partition (Smin in §4).
func (t *Tracker) MinSize() int {
	min := t.sizes[0]
	for _, s := range t.sizes[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// LeastLoaded returns the partition with the fewest vertices (lowest index
// on ties) — the universal fallback when neighbourhood scores are all zero.
func (t *Tracker) LeastLoaded() ID {
	best := ID(0)
	for p := 1; p < t.k; p++ {
		if t.sizes[p] < t.sizes[best] {
			best = ID(p)
		}
	}
	return best
}

// Residual returns LDG's weighting term 1 − |V(Si)|/C for partition p.
func (t *Tracker) Residual(p ID) float64 {
	return 1 - float64(t.sizes[p])/t.capacity
}

// NeighborCount returns N(Si, v): the number of v's observed neighbours
// already assigned to partition p.
func (t *Tracker) NeighborCount(v graph.VertexID, p ID) int {
	n := 0
	for _, u := range t.nbrs[v] {
		if t.PartOf(u) == p {
			n++
		}
	}
	return n
}

// NeighborCounts returns N(Si, v) for every partition in one pass.
func (t *Tracker) NeighborCounts(v graph.VertexID) []int {
	counts := make([]int, t.k)
	for _, u := range t.nbrs[v] {
		if p, ok := t.parts[u]; ok {
			counts[p]++
		}
	}
	return counts
}

// Assignment snapshots the current assignment.
func (t *Tracker) Assignment() *Assignment {
	parts := make(map[graph.VertexID]ID, len(t.parts))
	for v, p := range t.parts {
		parts[v] = p
	}
	return &Assignment{K: t.k, Parts: parts, Sizes: append([]int(nil), t.sizes...)}
}

// AssignLDG places vertex v with the Linear Deterministic Greedy rule
// (§4, quoting [30]): argmax over Si of N(Si, v)·(1 − |V(Si)|/C), falling
// back to the least-loaded partition when every score is zero (no assigned
// neighbours, or all candidates full). Exposed on the tracker because Loom
// reuses it verbatim for non-motif edges.
func (t *Tracker) AssignLDG(v graph.VertexID) ID {
	counts := t.NeighborCounts(v)
	best, bestScore := Unassigned, 0.0
	for p := 0; p < t.k; p++ {
		if float64(t.sizes[p])+1 > t.capacity {
			continue // assignment would exceed capacity
		}
		score := float64(counts[p]) * t.Residual(ID(p))
		if score > bestScore || (score == bestScore && best != Unassigned && t.sizes[p] < t.sizes[best]) {
			if score > 0 {
				best, bestScore = ID(p), score
			}
		}
	}
	if best == Unassigned {
		best = t.LeastLoaded()
	}
	t.Assign(v, best)
	return best
}

// EdgeCut returns the number of edges of g whose endpoints are assigned to
// different partitions (min. edge-cut is "the standard scale free measure
// of partition quality", §1.3). Unassigned vertices are treated as living
// together in the window partition Ptemp (§3): an edge between two
// unassigned vertices is not cut, an edge from an assigned vertex into
// Ptemp is.
func EdgeCut(g *graph.Graph, a *Assignment) int {
	cut := 0
	for _, e := range g.Edges() {
		if a.Of(e.U) != a.Of(e.V) {
			cut++
		}
	}
	return cut
}

// Imbalance returns max_i |Vi| / (n/k) − 1, the relative overload of the
// fullest partition versus a perfectly balanced one, where n is the number
// of assigned vertices. This is the measure behind §5.2's "LDG varying
// between 1%−3%, Loom and Fennel between 7% and their maximum imbalance of
// 10%".
func Imbalance(a *Assignment) float64 {
	n := 0
	max := 0
	for _, s := range a.Sizes {
		n += s
		if s > max {
			max = s
		}
	}
	if n == 0 {
		return 0
	}
	ideal := float64(n) / float64(a.K)
	return float64(max)/ideal - 1
}

// CommunicationVolume returns Σ_v (#distinct partitions holding neighbours
// of v, other than v's own) — the min. communication volume objective that
// Sheep optimises (§1.2), reported for completeness.
func CommunicationVolume(g *graph.Graph, a *Assignment) int {
	vol := 0
	for _, v := range g.Vertices() {
		seen := make(map[ID]bool)
		own := a.Of(v)
		for _, u := range g.Neighbors(v) {
			if p := a.Of(u); p != own && !seen[p] {
				seen[p] = true
				vol++
			}
		}
	}
	return vol
}

// fnvHash hashes a vertex ID (used by the Hash baseline).
func fnvHash(v graph.VertexID) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	if _, err := h.Write(buf[:]); err != nil {
		// hash.Hash.Write never fails; keep vet honest.
		panic(err)
	}
	return h.Sum64()
}
