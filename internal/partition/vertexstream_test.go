package partition

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
)

func communityGraph(t testing.TB, nComm, size int) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(8))
	g := graph.New()
	id := func(c, i int) graph.VertexID { return graph.VertexID(c*size + i + 1) }
	for c := 0; c < nComm; c++ {
		for i := 0; i < size; i++ {
			if err := g.AddVertex(id(c, i), "a"); err != nil {
				t.Fatal(err)
			}
		}
	}
	for c := 0; c < nComm; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if r.Float64() < 0.5 {
					if err := g.AddEdge(id(c, i), id(c, j)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := g.AddEdge(id(c, 0), id((c+1)%nComm, 1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestVertexStreamCoversAllVerticesOnce(t *testing.T) {
	g := communityGraph(t, 6, 8)
	rng := rand.New(rand.NewSource(3))
	for _, order := range []graph.StreamOrder{graph.OrderOriginal, graph.OrderBFS, graph.OrderDFS, graph.OrderRandom} {
		s := VertexStreamOf(g, order, rng)
		if len(s) != g.NumVertices() {
			t.Fatalf("%s: %d elements, want %d", order, len(s), g.NumVertices())
		}
		seen := map[graph.VertexID]bool{}
		for _, e := range s {
			if seen[e.V] {
				t.Fatalf("%s: vertex %d twice", order, e.V)
			}
			seen[e.V] = true
			if len(e.Neighbors) != g.Degree(e.V) {
				t.Fatalf("%s: vertex %d neighbours %d, want %d", order, e.V, len(e.Neighbors), g.Degree(e.V))
			}
		}
	}
}

func TestVertexStreamIncludesIsolatedVertices(t *testing.T) {
	g := graph.New()
	if err := g.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(2, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(3, "z"); err != nil { // isolated
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s := VertexStreamOf(g, graph.OrderBFS, nil)
	if len(s) != 3 {
		t.Fatalf("bfs vertex stream = %d elements, want 3 (isolated included)", len(s))
	}
}

func TestVertexPlacersAssignEverything(t *testing.T) {
	g := communityGraph(t, 8, 10)
	n := g.NumVertices()
	s := VertexStreamOf(g, graph.OrderBFS, nil)
	placers := []VertexPlacer{
		NewLDGVertex(4, CapacityFor(n, 4, DefaultImbalance)),
		NewFennelVertex(4, n, g.NumEdges()),
	}
	for _, p := range placers {
		for _, e := range s {
			pid := p.Place(e)
			if pid < 0 || int(pid) >= 4 {
				t.Fatalf("%s: bad id %d", p.Name(), pid)
			}
		}
		a := p.Assignment()
		if a.NumAssigned() != n {
			t.Errorf("%s: assigned %d of %d", p.Name(), a.NumAssigned(), n)
		}
		if imb := Imbalance(a); imb > DefaultImbalance-1+1e-9+0.2 {
			t.Errorf("%s: imbalance %.3f", p.Name(), imb)
		}
	}
}

func TestVertexStreamBeatsHashOnCut(t *testing.T) {
	// With full adjacency per element, vertex-stream partitioners should
	// cut far fewer edges than Hash on a community graph.
	g := communityGraph(t, 16, 12)
	n := g.NumVertices()
	s := VertexStreamOf(g, graph.OrderBFS, nil)

	hash := NewHash(4, CapacityFor(n, 4, DefaultImbalance))
	for _, se := range graph.StreamOf(g, graph.OrderBFS, nil) {
		hash.ProcessEdge(se)
	}
	hashCut := EdgeCut(g, hash.Assignment())

	for _, p := range []VertexPlacer{
		NewLDGVertex(4, CapacityFor(n, 4, DefaultImbalance)),
		NewFennelVertex(4, n, g.NumEdges()),
	} {
		for _, e := range s {
			p.Place(e)
		}
		if cut := EdgeCut(g, p.Assignment()); cut >= hashCut {
			t.Errorf("%s cut %d >= hash cut %d", p.Name(), cut, hashCut)
		}
	}
}

func TestVertexStreamVsEdgeStreamQuality(t *testing.T) {
	// The vertex-stream model sees each vertex's FULL adjacency, so it
	// should do at least as well as the edge-stream variant on edge-cut
	// for a BFS community stream.
	g := communityGraph(t, 16, 12)
	n := g.NumVertices()

	edgeLDG := NewLDG(4, CapacityFor(n, 4, DefaultImbalance))
	for _, se := range graph.StreamOf(g, graph.OrderBFS, nil) {
		edgeLDG.ProcessEdge(se)
	}
	vertexLDG := NewLDGVertex(4, CapacityFor(n, 4, DefaultImbalance))
	for _, e := range VertexStreamOf(g, graph.OrderBFS, nil) {
		vertexLDG.Place(e)
	}
	ec := EdgeCut(g, edgeLDG.Assignment())
	vc := EdgeCut(g, vertexLDG.Assignment())
	// Allow slack: orderings interact with tie-breaks; assert "not much
	// worse" rather than strictly better.
	if float64(vc) > 1.2*float64(ec) {
		t.Errorf("vertex-stream cut %d much worse than edge-stream %d", vc, ec)
	}
	t.Logf("edge-stream cut %d, vertex-stream cut %d", ec, vc)
}
