package partition

import (
	"testing"

	"loom/internal/graph"
)

// LDG tie-breaking: when two partitions score identically, the vertex must
// go to the emptier one (the original Loom codebase carried a review note —
// "We should be assigning ties to the emptier of two parts" — and this
// pins that behaviour).
func TestAssignLDGTieGoesToEmptierPartition(t *testing.T) {
	// Capacity 16 keeps the residuals exact binary fractions:
	// p0 holds 8 vertices → residual 0.5; p1 holds 4 → residual 0.75.
	// v has 3 neighbours in p0 and 2 in p1: both score 3·0.5 = 2·0.75
	// = 1.5 exactly. The tie must break toward p1, the emptier.
	tr := NewTracker(2, 16)
	var next graph.VertexID = 100
	fill := func(p ID, n int) []graph.VertexID {
		out := make([]graph.VertexID, 0, n)
		for i := 0; i < n; i++ {
			tr.Assign(next, p)
			out = append(out, next)
			next++
		}
		return out
	}
	inP0 := fill(0, 8)
	inP1 := fill(1, 4)

	const v graph.VertexID = 1
	for _, u := range inP0[:3] {
		tr.Observe(graph.StreamEdge{U: v, LU: "a", V: u, LV: "a"})
	}
	for _, u := range inP1[:2] {
		tr.Observe(graph.StreamEdge{U: v, LU: "a", V: u, LV: "a"})
	}

	if got := tr.AssignLDG(v); got != 1 {
		t.Fatalf("AssignLDG tie broke to partition %d; want 1 (the emptier)", got)
	}
}

// With no assigned neighbours every score is zero: the fallback must pick
// the least-loaded partition, lowest index on ties.
func TestAssignLDGZeroScoreFallsBackToLeastLoaded(t *testing.T) {
	tr := NewTracker(3, 100)
	tr.Assign(10, 0)
	tr.Assign(11, 0)
	tr.Assign(12, 2)
	// Sizes: [2, 0, 1] → least loaded is 1.
	if got := tr.AssignLDG(1); got != 1 {
		t.Fatalf("zero-score fallback chose %d; want 1", got)
	}

	tr2 := NewTracker(3, 100)
	// All empty: ties between all three → lowest index.
	if got := tr2.AssignLDG(1); got != 0 {
		t.Fatalf("all-empty fallback chose %d; want 0", got)
	}
}

// A full partition never receives a vertex from the LDG rule, even when it
// scores highest.
func TestAssignLDGRespectsCapacity(t *testing.T) {
	tr := NewTracker(2, 2)
	tr.Assign(10, 0)
	tr.Assign(11, 0) // partition 0 at capacity 2
	tr.Observe(graph.StreamEdge{U: 1, LU: "a", V: 10, LV: "a"})
	tr.Observe(graph.StreamEdge{U: 1, LU: "a", V: 11, LV: "a"})
	if got := tr.AssignLDG(1); got != 1 {
		t.Fatalf("AssignLDG overfilled partition 0 (got %d)", got)
	}
}
