package partition

import (
	"math"
	"testing"

	"loom/internal/graph"
)

func TestResidualAndLeastLoaded(t *testing.T) {
	tr := NewTracker(3, 10)
	tr.Assign(1, 0)
	tr.Assign(2, 0)
	tr.Assign(3, 1)
	if got := tr.Residual(0); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Residual(0) = %v, want 0.8", got)
	}
	if got := tr.Residual(2); got != 1 {
		t.Errorf("Residual(2) = %v, want 1", got)
	}
	if got := tr.LeastLoaded(); got != 2 {
		t.Errorf("LeastLoaded = %d, want 2", got)
	}
	if got := tr.MinSize(); got != 0 {
		t.Errorf("MinSize = %d, want 0", got)
	}
}

func TestObservedEdgesAndNeighbors(t *testing.T) {
	tr := NewTracker(2, 10)
	tr.Observe(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"})
	tr.Observe(graph.StreamEdge{U: 1, LU: "a", V: 3, LV: "c"})
	if tr.ObservedEdges() != 2 {
		t.Errorf("ObservedEdges = %d", tr.ObservedEdges())
	}
	ns := tr.Neighbors(1)
	if len(ns) != 2 {
		t.Errorf("Neighbors(1) = %v", ns)
	}
}

func TestTrackerConstructorValidation(t *testing.T) {
	for _, tc := range []struct {
		k   int
		cap float64
	}{{0, 10}, {2, 0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTracker(%d, %v): want panic", tc.k, tc.cap)
				}
			}()
			NewTracker(tc.k, tc.cap)
		}()
	}
}

func TestAssignLDGTieBreaksTowardSmaller(t *testing.T) {
	tr := NewTracker(2, 100)
	// Vertex 5 has one neighbour in each partition; partition 1 is
	// smaller overall → its residual is higher, so it must win.
	tr.Assign(1, 0)
	tr.Assign(2, 0)
	tr.Assign(3, 1)
	tr.Observe(graph.StreamEdge{U: 5, LU: "x", V: 1, LV: "x"})
	tr.Observe(graph.StreamEdge{U: 5, LU: "x", V: 3, LV: "x"})
	if got := tr.AssignLDG(5); got != 1 {
		t.Errorf("AssignLDG = %d, want 1 (higher residual)", got)
	}
}

func TestAssignLDGAllFullFallsBack(t *testing.T) {
	tr := NewTracker(2, 1)
	tr.Assign(1, 0)
	tr.Assign(2, 1)
	// Both partitions at capacity: overflow to least loaded, not panic.
	got := tr.AssignLDG(3)
	if got != 0 && got != 1 {
		t.Errorf("AssignLDG overflow = %d", got)
	}
}

func TestHashTrackerAccessors(t *testing.T) {
	h := NewHash(4, 10)
	if h.Tracker() == nil {
		t.Error("nil tracker")
	}
	l := NewLDG(4, 10)
	if l.Tracker() == nil {
		t.Error("nil tracker")
	}
	f := NewFennel(4, 100, 200)
	if f.Tracker() == nil {
		t.Error("nil tracker")
	}
}

func TestStreamerNames(t *testing.T) {
	if NewHash(2, 10).Name() != "hash" {
		t.Error("hash name")
	}
	if NewLDG(2, 10).Name() != "ldg" {
		t.Error("ldg name")
	}
	if NewFennel(2, 10, 20).Name() != "fennel" {
		t.Error("fennel name")
	}
}

func TestAssignmentOf(t *testing.T) {
	a := AssignmentOf(2, map[graph.VertexID]ID{1: 1})
	if a.Of(1) != 1 {
		t.Error("Of(1)")
	}
	if a.Of(99) != Unassigned {
		t.Error("Of(missing)")
	}
	if a.NumAssigned() != 1 {
		t.Error("NumAssigned")
	}
}

func TestImbalanceEmpty(t *testing.T) {
	a := AssignmentOf(4, nil)
	if got := Imbalance(a); got != 0 {
		t.Errorf("Imbalance empty = %v", got)
	}
}

func TestCommunicationVolumeMultiPartition(t *testing.T) {
	// Star with leaves in 3 different partitions: hub contributes 2 (two
	// foreign partitions), each foreign leaf contributes 1.
	g := graph.New()
	for v, l := range map[graph.VertexID]graph.Label{1: "h", 2: "a", 3: "a", 4: "a"} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []graph.VertexID{2, 3, 4} {
		if err := g.AddEdge(1, v); err != nil {
			t.Fatal(err)
		}
	}
	a := AssignmentOf(3, map[graph.VertexID]ID{1: 0, 2: 0, 3: 1, 4: 2})
	// hub (p0): neighbours in p1, p2 → 2. leaf 3 (p1): hub in p0 → 1.
	// leaf 4 (p2): hub in p0 → 1. leaf 2 (p0): hub in p0 → 0.
	if got := CommunicationVolume(g, a); got != 4 {
		t.Errorf("CommunicationVolume = %d, want 4", got)
	}
}

func TestFennelPrefersNeighborsOverEmptiness(t *testing.T) {
	// With a modest α, one assigned neighbour must beat an empty
	// partition.
	f := NewFennel(2, 1000, 2000)
	f.ProcessEdge(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "a"})
	p1 := f.Assignment().Of(1)
	f.ProcessEdge(graph.StreamEdge{U: 1, LU: "a", V: 3, LV: "a"})
	if got := f.Assignment().Of(3); got != p1 {
		t.Errorf("vertex 3 in %d, want neighbour's partition %d", got, p1)
	}
}
