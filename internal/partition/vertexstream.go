package partition

import (
	"math"
	"math/rand"

	"loom/internal/graph"
)

// Vertex-stream partitioning: the model LDG (Stanton & Kliot) and Fennel
// (Tsourakakis et al.) were originally defined in, where each stream
// element is a vertex together with its adjacency list. The Loom paper
// evaluates the edge-stream variants (online graphs arrive as edges,
// footnote 7: "LDG may partition either vertex or edge streams"); the
// vertex-stream forms are provided for completeness and for the
// edge-vs-vertex ablation in the benchmarks.

// VertexElement is one element of a vertex stream: a vertex, its label and
// its full adjacency list (neighbours may or may not have arrived yet).
type VertexElement struct {
	V         graph.VertexID
	L         graph.Label
	Neighbors []graph.VertexID
}

// VertexStreamOf materialises g as a vertex stream in the given order
// (vertex visit order of the corresponding edge ordering).
func VertexStreamOf(g *graph.Graph, order graph.StreamOrder, rng *rand.Rand) []VertexElement {
	var ids []graph.VertexID
	switch order {
	case graph.OrderOriginal:
		ids = g.Vertices()
	case graph.OrderRandom:
		ids = g.Vertices()
		if rng == nil {
			panic("partition: OrderRandom requires a rand source")
		}
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	case graph.OrderBFS, graph.OrderDFS:
		// Vertex visit order of the edge stream.
		seen := make(map[graph.VertexID]struct{}, g.NumVertices())
		for _, se := range graph.StreamOf(g, order, rng) {
			for _, v := range []graph.VertexID{se.U, se.V} {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					ids = append(ids, v)
				}
			}
		}
		// Isolated vertices never appear in the edge stream.
		for _, v := range g.Vertices() {
			if _, ok := seen[v]; !ok {
				ids = append(ids, v)
			}
		}
	default:
		panic("partition: unknown stream order " + string(order))
	}
	out := make([]VertexElement, 0, len(ids))
	for _, v := range ids {
		out = append(out, VertexElement{
			V:         v,
			L:         g.MustLabel(v),
			Neighbors: g.Neighbors(v, nil),
		})
	}
	return out
}

// countNeighbors tallies the already-assigned members of an explicit
// neighbour list per partition (vertex-stream elements carry their own
// adjacency, unlike the tracker-observed edge-stream form). Returns the
// tracker's scratch buffer.
func (t *Tracker) countNeighbors(neighbors []graph.VertexID) []int {
	counts := t.counts
	for p := range counts {
		counts[p] = 0
	}
	for _, u := range neighbors {
		if p := t.PartOf(u); p != Unassigned {
			counts[p]++
		}
	}
	return counts
}

// VertexPlacer assigns one vertex-stream element at a time.
type VertexPlacer interface {
	Name() string
	Place(e VertexElement) ID
	Assignment() *Assignment
}

// LDGVertex is the original vertex-stream LDG: a vertex goes to the
// partition holding most of its (already placed) neighbours, weighted by
// residual capacity.
type LDGVertex struct {
	t *Tracker
}

// NewLDGVertex returns a vertex-stream LDG partitioner.
func NewLDGVertex(k int, capacity float64) *LDGVertex {
	return &LDGVertex{t: NewTracker(k, capacity)}
}

// Name implements VertexPlacer.
func (l *LDGVertex) Name() string { return "ldg-vertex" }

// Place implements VertexPlacer.
func (l *LDGVertex) Place(e VertexElement) ID {
	counts := l.t.countNeighbors(e.Neighbors)
	best, bestScore := Unassigned, 0.0
	for p := 0; p < l.t.K(); p++ {
		pid := ID(p)
		if float64(l.t.Size(pid))+1 > l.t.Capacity() {
			continue
		}
		score := float64(counts[p]) * l.t.Residual(pid)
		if score > bestScore || (score == bestScore && best != Unassigned && l.t.Size(pid) < l.t.Size(best)) {
			if score > 0 {
				best, bestScore = pid, score
			}
		}
	}
	if best == Unassigned {
		best = l.t.LeastLoaded()
	}
	l.t.Assign(e.V, best)
	return best
}

// Assignment implements VertexPlacer.
func (l *LDGVertex) Assignment() *Assignment { return l.t.Assignment() }

// FennelVertex is the original vertex-stream Fennel.
type FennelVertex struct {
	t     *Tracker
	alpha float64
}

// NewFennelVertex returns a vertex-stream Fennel partitioner.
func NewFennelVertex(k, expectedVertices, expectedEdges int) *FennelVertex {
	n := float64(expectedVertices)
	if n < 1 {
		n = 1
	}
	return &FennelVertex{
		t:     NewTracker(k, CapacityFor(expectedVertices, k, DefaultImbalance)),
		alpha: float64(expectedEdges) * math.Pow(float64(k), FennelGamma-1) / math.Pow(n, FennelGamma),
	}
}

// Name implements VertexPlacer.
func (f *FennelVertex) Name() string { return "fennel-vertex" }

// Place implements VertexPlacer.
func (f *FennelVertex) Place(e VertexElement) ID {
	counts := f.t.countNeighbors(e.Neighbors)
	best := Unassigned
	bestScore := math.Inf(-1)
	for p := 0; p < f.t.K(); p++ {
		pid := ID(p)
		size := float64(f.t.Size(pid))
		if size+1 > f.t.Capacity() {
			continue
		}
		score := float64(counts[p]) - f.alpha*FennelGamma*math.Pow(size, FennelGamma-1)
		if score > bestScore || (score == bestScore && best != Unassigned && f.t.Size(pid) < f.t.Size(best)) {
			best, bestScore = pid, score
		}
	}
	if best == Unassigned {
		best = f.t.LeastLoaded()
	}
	f.t.Assign(e.V, best)
	return best
}

// Assignment implements VertexPlacer.
func (f *FennelVertex) Assignment() *Assignment { return f.t.Assignment() }
