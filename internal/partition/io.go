package partition

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"loom/internal/graph"
)

// Assignment serialisation: one "<vertex>\t<partition>" line per assigned
// vertex, sorted by vertex ID. This is the interchange format between
// cmd/loom-partition and downstream systems (a graph database's placement
// driver, the refinement tool, a later restreaming pass).

// WriteAssignment writes a in the TSV interchange format.
func WriteAssignment(w io.Writer, a *Assignment) error {
	bw := bufio.NewWriter(w)
	type row struct {
		v graph.VertexID
		p ID
	}
	rows := make([]row, 0, a.NumAssigned())
	a.Each(func(v graph.VertexID, p ID) { rows = append(rows, row{v, p}) })
	sort.Slice(rows, func(i, j int) bool { return rows[i].v < rows[j].v })
	for _, r := range rows {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", r.v, r.p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAssignment parses the TSV interchange format. k is inferred as one
// more than the largest partition ID seen unless a larger kHint is given.
func ReadAssignment(r io.Reader, kHint int) (*Assignment, error) {
	type row struct {
		v graph.VertexID
		p ID
	}
	var rows []row // file order, so dense indices are stable
	seen := make(map[graph.VertexID]struct{})
	maxID := ID(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("partition: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		v, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		p, err := strconv.Atoi(fields[1])
		if err != nil || p < 0 {
			return nil, fmt.Errorf("partition: line %d: bad partition %q", lineNo, fields[1])
		}
		if _, dup := seen[graph.VertexID(v)]; dup {
			return nil, fmt.Errorf("partition: line %d: duplicate vertex %d", lineNo, v)
		}
		seen[graph.VertexID(v)] = struct{}{}
		rows = append(rows, row{graph.VertexID(v), ID(p)})
		if ID(p) > maxID {
			maxID = ID(p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("partition: read: %v", err)
	}
	k := int(maxID) + 1
	if kHint > k {
		k = kHint
	}
	if k < 1 {
		k = 1
	}
	a := NewAssignment(k)
	for _, r := range rows {
		a.Set(r.v, r.p)
	}
	return a, nil
}
