package partition

import (
	"testing"

	"loom/internal/graph"
)

// White-box tests for the copy-on-write publish path: held epochs are
// immutable under further ingest, clean pages are shared across epochs by
// pointer identity, and publishing with no changes reuses the prior epoch.

// fillTracker assigns dense indices [lo, hi) round-robin over k partitions.
func fillTracker(t *Tracker, lo, hi int) {
	for v := lo; v < hi; v++ {
		t.Assign(graph.VertexID(v), ID(v%t.k))
	}
}

// TestEpochHeldSnapshotImmutable: an epoch captured before further ingest
// must keep every observation — placements, sizes, counts — frozen while
// the tracker keeps assigning.
func TestEpochHeldSnapshotImmutable(t *testing.T) {
	const k = 4
	tr := NewTracker(k, 1.5)
	first := 2*PageSize + PageSize/2 // spans three pages, last one partial
	fillTracker(tr, 0, first)

	e1 := tr.Publish()
	if e1 == nil {
		t.Fatal("Publish returned nil")
	}
	if e1.Seq() != 1 {
		t.Fatalf("first publish seq = %d, want 1", e1.Seq())
	}
	if e1.NumAssigned() != first {
		t.Fatalf("epoch assigned %d, want %d", e1.NumAssigned(), first)
	}
	wantSizes := append([]int(nil), e1.Sizes()...)

	// Keep ingesting well past the held epoch.
	fillTracker(tr, first, 5*PageSize)
	e2 := tr.Publish()

	if e1.NumAssigned() != first {
		t.Fatalf("held epoch assigned count moved to %d", e1.NumAssigned())
	}
	for i, s := range e1.Sizes() {
		if s != wantSizes[i] {
			t.Fatalf("held epoch sizes changed: %v → %v", wantSizes, e1.Sizes())
		}
	}
	for v := 0; v < 5*PageSize; v++ {
		want := ID(v % k)
		if v >= first {
			want = Unassigned // not yet assigned when e1 was published
		}
		if got := e1.Of(graph.VertexID(v)); got != want {
			t.Fatalf("held epoch Of(%d) = %d, want %d", v, got, want)
		}
		if got := e2.Of(graph.VertexID(v)); got != ID(v%k) {
			t.Fatalf("new epoch Of(%d) = %d, want %d", v, got, v%k)
		}
	}
	// Each over the held epoch enumerates exactly the first publish's set.
	seen := 0
	e1.Each(func(v graph.VertexID, p ID) {
		seen++
		if p != ID(int(v)%k) {
			t.Fatalf("Each(%d) = %d, want %d", v, p, int(v)%k)
		}
	})
	if seen != first {
		t.Fatalf("Each visited %d vertices, want %d", seen, first)
	}
}

// TestEpochPageSharing: pages untouched between publishes are shared by
// pointer identity — only dirty pages are re-copied.
func TestEpochPageSharing(t *testing.T) {
	tr := NewTracker(2, 1.5)
	fillTracker(tr, 0, 2*PageSize+PageSize/2) // pages 0,1 full; page 2 half
	e1 := tr.Publish()
	if len(e1.pages) != 3 {
		t.Fatalf("e1 has %d pages, want 3", len(e1.pages))
	}

	// New assignments land in page 2's tail and page 3; pages 0-1 stay clean.
	fillTracker(tr, 2*PageSize+PageSize/2, 4*PageSize)
	e2 := tr.Publish()
	if len(e2.pages) != 4 {
		t.Fatalf("e2 has %d pages, want 4", len(e2.pages))
	}

	if e2.pages[0] != e1.pages[0] || e2.pages[1] != e1.pages[1] {
		t.Error("clean pages were re-copied: want pointer-identical pages 0 and 1")
	}
	if e2.pages[2] == e1.pages[2] {
		t.Error("dirty page 2 shared between epochs: held epoch would see new writes")
	}

	// Publishing with nothing new reuses the whole epoch.
	e3 := tr.Publish()
	if e3 != e2 {
		t.Errorf("no-op Publish built a new epoch (seq %d → %d)", e2.Seq(), e3.Seq())
	}

	// Latest always returns the most recent publish.
	if tr.Latest() != e3 {
		t.Error("Latest() disagrees with last Publish()")
	}
}

// TestEpochMaterialiseMatches: Materialise must flatten to exactly the
// epoch's contents even after the tracker has moved on.
func TestEpochMaterialiseMatches(t *testing.T) {
	const k = 3
	tr := NewTracker(k, 1.1)
	n := PageSize + 7
	fillTracker(tr, 0, n)
	e := tr.Publish()
	fillTracker(tr, n, 3*PageSize) // mutate tracker after capture
	tr.Publish()

	a := e.Materialise()
	if a.NumAssigned() != n || a.K != k {
		t.Fatalf("materialised assignment: %d assigned k=%d, want %d k=%d",
			a.NumAssigned(), a.K, n, k)
	}
	e.Each(func(v graph.VertexID, p ID) {
		if got := a.Of(v); got != p {
			t.Fatalf("Materialise().Of(%d) = %d, epoch says %d", v, got, p)
		}
	})
}

// TestEpochOfUnknown: lookups past the epoch's vertex horizon and for
// unknown vertices return Unassigned instead of reading younger state.
func TestEpochOfUnknown(t *testing.T) {
	tr := NewTracker(2, 1.5)
	fillTracker(tr, 0, 10)
	e := tr.Publish()
	if got := e.Of(graph.VertexID(999)); got != Unassigned {
		t.Errorf("Of(unknown vertex) = %d, want Unassigned", got)
	}
	if got := e.OfIdx(uint32(PageSize * 10)); got != Unassigned {
		t.Errorf("OfIdx(out of range) = %d, want Unassigned", got)
	}
	// A vertex interned after publish is invisible to the held epoch.
	tr.Assign(graph.VertexID(999), 1)
	tr.Publish()
	if got := e.Of(graph.VertexID(999)); got != Unassigned {
		t.Errorf("held epoch sees post-publish vertex: Of(999) = %d", got)
	}
}
