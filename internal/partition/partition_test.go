package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
)

func chain(n int) graph.Stream {
	s := make(graph.Stream, 0, n-1)
	for i := 1; i < n; i++ {
		s = append(s, graph.StreamEdge{
			U: graph.VertexID(i), LU: "a",
			V: graph.VertexID(i + 1), LV: "a",
		})
	}
	return s
}

func run(p Streamer, s graph.Stream) *Assignment {
	for _, e := range s {
		p.ProcessEdge(e)
	}
	p.Flush()
	return p.Assignment()
}

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker(4, 10)
	e := graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}
	tr.Observe(e)
	if tr.ObservedDegree(1) != 1 || tr.ObservedDegree(2) != 1 {
		t.Error("Observe did not record adjacency")
	}
	if tr.PartOf(1) != Unassigned {
		t.Error("vertex should start unassigned")
	}
	tr.Assign(1, 2)
	if tr.PartOf(1) != 2 || tr.Size(2) != 1 {
		t.Error("Assign not reflected")
	}
	if tr.NeighborCount(2, 2) != 1 {
		t.Error("NeighborCount should see vertex 1 in partition 2")
	}
	counts := tr.NeighborCounts(2)
	if counts[2] != 1 || counts[0] != 0 {
		t.Errorf("NeighborCounts = %v", counts)
	}
}

func TestTrackerPanicsOnReassign(t *testing.T) {
	tr := NewTracker(2, 10)
	tr.Assign(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("reassignment must panic (one-pass streaming)")
		}
	}()
	tr.Assign(1, 1)
}

func TestTrackerPanicsOnBadPartition(t *testing.T) {
	tr := NewTracker(2, 10)
	defer func() {
		if recover() == nil {
			t.Error("bad partition id must panic")
		}
	}()
	tr.Assign(1, 5)
}

func TestCapacityFor(t *testing.T) {
	if got := CapacityFor(100, 4, 1.1); math.Abs(got-27.5) > 1e-9 {
		t.Errorf("CapacityFor = %v, want 27.5", got)
	}
	if got := CapacityFor(0, 4, 1.1); got != 1 {
		t.Errorf("CapacityFor floor = %v, want 1", got)
	}
}

func TestHashIsDeterministicAndComplete(t *testing.T) {
	s := chain(100)
	a1 := run(NewHash(4, CapacityFor(100, 4, DefaultImbalance)), s)
	a2 := run(NewHash(4, CapacityFor(100, 4, DefaultImbalance)), s)
	if a1.NumAssigned() != 100 {
		t.Fatalf("assigned = %d, want 100", a1.NumAssigned())
	}
	p2 := a2.Parts()
	for v, p := range a1.Parts() {
		if p2[v] != p {
			t.Fatalf("hash not deterministic at %d", v)
		}
		if p < 0 || int(p) >= 4 {
			t.Fatalf("bad partition %d", p)
		}
	}
}

func TestHashRoughlyBalanced(t *testing.T) {
	s := chain(4000)
	a := run(NewHash(8, CapacityFor(4000, 8, DefaultImbalance)), s)
	if imb := Imbalance(a); imb > 0.25 {
		t.Errorf("hash imbalance = %.3f, want < 0.25", imb)
	}
}

func TestLDGKeepsNeighborsTogether(t *testing.T) {
	// Two disjoint cliques streamed BFS-style: LDG should put each clique
	// in one partition (they fit comfortably within capacity).
	var s graph.Stream
	cliq := func(base graph.VertexID) {
		ids := []graph.VertexID{base, base + 1, base + 2, base + 3}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				s = append(s, graph.StreamEdge{U: ids[i], LU: "a", V: ids[j], LV: "a"})
			}
		}
	}
	cliq(1)
	cliq(100)
	a := run(NewLDG(2, CapacityFor(8, 2, DefaultImbalance)), s)
	p1 := a.Of(1)
	for _, v := range []graph.VertexID{2, 3, 4} {
		if a.Of(v) != p1 {
			t.Errorf("clique 1 split: vertex %d in %d, want %d", v, a.Of(v), p1)
		}
	}
	p2 := a.Of(100)
	for _, v := range []graph.VertexID{101, 102, 103} {
		if a.Of(v) != p2 {
			t.Errorf("clique 2 split: vertex %d in %d, want %d", v, a.Of(v), p2)
		}
	}
	if p1 == p2 {
		t.Error("cliques should land in different partitions (balance)")
	}
}

func TestLDGRespectsCapacity(t *testing.T) {
	// Stream a star: without the capacity term every vertex would follow
	// the hub. With C = ν·n/k the partitions must stay within capacity.
	var s graph.Stream
	for i := 2; i <= 101; i++ {
		s = append(s, graph.StreamEdge{U: 1, LU: "h", V: graph.VertexID(i), LV: "a"})
	}
	k := 4
	cap := CapacityFor(101, k, DefaultImbalance)
	a := run(NewLDG(k, cap), s)
	for p, size := range a.Sizes {
		if float64(size) > cap+1e-9 {
			t.Errorf("partition %d has %d vertices, capacity %.1f", p, size, cap)
		}
	}
}

func TestFennelAlpha(t *testing.T) {
	f := NewFennel(4, 1000, 5000)
	want := 5000 * math.Pow(4, 0.5) / math.Pow(1000, 1.5)
	if math.Abs(f.Alpha()-want) > 1e-12 {
		t.Errorf("alpha = %v, want %v", f.Alpha(), want)
	}
}

func TestFennelBeatsHashOnEdgeCut(t *testing.T) {
	// A ring of small communities: Fennel and LDG must cut far fewer
	// edges than Hash.
	r := rand.New(rand.NewSource(11))
	var s graph.Stream
	nComm, commSize := 32, 16
	id := func(c, i int) graph.VertexID { return graph.VertexID(c*commSize + i) }
	for c := 0; c < nComm; c++ {
		for i := 0; i < commSize; i++ {
			for j := i + 1; j < commSize; j++ {
				if r.Float64() < 0.4 {
					s = append(s, graph.StreamEdge{U: id(c, i), LU: "a", V: id(c, j), LV: "a"})
				}
			}
		}
		// One bridge to the next community.
		s = append(s, graph.StreamEdge{U: id(c, 0), LU: "a", V: id((c+1)%nComm, 1), LV: "a"})
	}
	n := nComm * commSize
	g, err := graph.BuildGraph(s)
	if err != nil {
		t.Fatal(err)
	}

	k := 8
	hash := run(NewHash(k, CapacityFor(n, k, DefaultImbalance)), s)
	ldg := run(NewLDG(k, CapacityFor(n, k, DefaultImbalance)), s)
	fennel := run(NewFennel(k, n, len(s)), s)

	cutHash := EdgeCut(g, hash)
	cutLDG := EdgeCut(g, ldg)
	cutFennel := EdgeCut(g, fennel)
	if cutLDG >= cutHash {
		t.Errorf("LDG cut %d >= Hash cut %d", cutLDG, cutHash)
	}
	if cutFennel >= cutHash {
		t.Errorf("Fennel cut %d >= Hash cut %d", cutFennel, cutHash)
	}
}

func TestFennelRespectsHardBalance(t *testing.T) {
	var s graph.Stream
	for i := 2; i <= 201; i++ {
		s = append(s, graph.StreamEdge{U: 1, LU: "h", V: graph.VertexID(i), LV: "a"})
	}
	k := 4
	f := NewFennel(k, 201, 200)
	a := run(f, s)
	cap := CapacityFor(201, k, DefaultImbalance)
	for p, size := range a.Sizes {
		if float64(size) > cap+1 { // +1: overflow fallback may exceed by the final vertex
			t.Errorf("partition %d has %d vertices, cap %.1f", p, size, cap)
		}
	}
}

func TestEdgeCutAndMetrics(t *testing.T) {
	g := graph.New()
	for v := graph.VertexID(1); v <= 4; v++ {
		if err := g.AddVertex(v, "a"); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	a := AssignmentOf(2, map[graph.VertexID]ID{1: 0, 2: 0, 3: 1, 4: 1})
	if got := EdgeCut(g, a); got != 1 {
		t.Errorf("EdgeCut = %d, want 1", got)
	}
	if got := Imbalance(a); got != 0 {
		t.Errorf("Imbalance = %v, want 0", got)
	}
	if got := CommunicationVolume(g, a); got != 2 {
		t.Errorf("CommunicationVolume = %d, want 2 (vertices 2 and 3)", got)
	}
	// Unassigned endpoints live together in Ptemp: edge 2-3 crosses from
	// partition 0 into Ptemp (cut); edge 3-4 is wholly inside Ptemp.
	b := AssignmentOf(2, map[graph.VertexID]ID{1: 0, 2: 0})
	if got := EdgeCut(g, b); got != 1 {
		t.Errorf("EdgeCut with unassigned = %d, want 1", got)
	}
}

func TestImbalanceSkewed(t *testing.T) {
	a := AssignmentOf(2, map[graph.VertexID]ID{1: 0, 2: 0, 3: 0, 4: 1})
	if got := Imbalance(a); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Imbalance = %v, want 0.5", got)
	}
}

// Property: every streaming baseline assigns every vertex it has seen, to a
// valid partition, for arbitrary random streams.
func TestBaselinesAssignEverythingProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw%7) + 1
		n := 30 + r.Intn(50)
		var s graph.Stream
		for i := 1; i < n; i++ {
			u := graph.VertexID(r.Intn(i) + 1)
			v := graph.VertexID(i + 1)
			s = append(s, graph.StreamEdge{U: u, LU: "a", V: v, LV: "b"})
		}
		cap := CapacityFor(n, k, DefaultImbalance)
		for _, p := range []Streamer{NewHash(k, cap), NewLDG(k, cap), NewFennel(k, n, len(s))} {
			a := run(p, s)
			if a.NumAssigned() != n {
				return false
			}
			total := 0
			for _, sz := range a.Sizes {
				total += sz
			}
			if total != n {
				return false
			}
			for _, pid := range a.Parts() {
				if pid < 0 || int(pid) >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
