// Package tpstry implements the Traversal Pattern Summary Trie (TPSTry++)
// of Loom §2: a trie-like DAG in which every node represents a connected
// sub-graph of some query graph in the workload Q, every parent represents
// a sub-graph common to its children, and every node carries a support
// value — the relative frequency with which its graph occurs across Q.
//
// Nodes are deduplicated by their number-theoretic signature (a factor
// multiset, package signature), so the structure is a DAG: a graph like
// a-b-a-b is reachable by adding an edge to either b-a-b or a-b-a (Fig. 2).
// Edges between nodes are labelled with the 3-factor delta contributed by
// the added edge, which is exactly the information the stream matcher
// needs: "check if n has a child c where the difference between n's factor
// set and c's factor set corresponds to factors for the addition of e" (§3).
//
// Given a support threshold T, a node whose support is at least T is a
// motif. Support is anti-monotone along trie edges (a sub-graph occurs at
// least as often as its super-graphs), so motifs are downward closed: the
// ancestors of a motif are motifs. The matcher exploits this to discard
// non-motif edges immediately (§3).
package tpstry

import (
	"fmt"
	"slices"
	"sort"

	"loom/internal/graph"
	"loom/internal/signature"
)

// MaxQueryEdges bounds the size of a single query graph. Construction
// enumerates connected edge subsets with a 64-bit mask; the paper notes
// query graphs are "of the order of 10 edges", so 63 is generous.
const MaxQueryEdges = 63

// Node is one TPSTry++ node: a distinct (up to signature) connected
// sub-graph of the workload's query graphs.
type Node struct {
	// ID is a dense identifier assigned in creation order, stable for a
	// given construction sequence; useful for logging and tests.
	ID int
	// Sig is the node's signature: the factor multiset of its graph.
	Sig *signature.Multiset
	// Rep is a representative graph for the node (the first concrete
	// sub-graph that produced it). Two sub-graphs mapping to the same
	// node are isomorphic up to signature collision.
	Rep *graph.Graph
	// Edges is the number of edges in the node's graph (trie depth).
	Edges int

	support float64
	// Child edges. In the packed regime (the scheme's modulus fits a
	// PackedDelta field; every published prime does) children live in a
	// compact sorted table keyed by the packed delta — ckeys is ascending
	// and cnodes is parallel to it — so the innermost Alg. 2 lookup is a
	// branch-free binary search over a handful of machine words instead of
	// a Go-map hash of a 12-byte struct. When the modulus is too large to
	// pack (p > signature.MaxPackedFactor), cmap is used instead and the
	// slices stay nil.
	ckeys   []signature.PackedDelta
	cnodes  []*Node
	cmap    map[signature.Delta]*Node
	parents []*Node
}

// Support returns the node's accumulated support weight (normalised by the
// owning trie's total workload weight via Trie.SupportOf).
func (n *Node) rawSupport() float64 { return n.support }

// ChildByDelta returns the child reached by adding an edge whose factor
// delta is d, if any. This is the core matching step of Alg. 2.
func (n *Node) ChildByDelta(d signature.Delta) (*Node, bool) {
	if n.cmap != nil {
		c, ok := n.cmap[d]
		return c, ok
	}
	return n.ChildByPacked(d.Packed())
}

// ChildByPacked is ChildByDelta over a pre-packed delta — the stream
// matcher's hot-path form. Valid only for tries whose scheme is packable
// (signature.Scheme.Packable); the matcher checks once at construction.
func (n *Node) ChildByPacked(pk signature.PackedDelta) (*Node, bool) {
	if i, ok := slices.BinarySearch(n.ckeys, pk); ok {
		return n.cnodes[i], true
	}
	return nil, false
}

// NumChildren returns the number of child edges. Match growth prunes on it:
// a leaf node can never grow, whatever the delta.
func (n *Node) NumChildren() int {
	if n.cmap != nil {
		return len(n.cmap)
	}
	return len(n.ckeys)
}

// Children returns the node's children sorted by ID (deterministic).
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, n.NumChildren())
	if n.cmap != nil {
		for _, c := range n.cmap {
			out = append(out, c)
		}
	} else {
		out = append(out, n.cnodes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ChildDeltas returns the node's child edge labels (the 3-factor deltas),
// unsorted; export rendering sorts them. Cold path.
func (n *Node) ChildDeltas() []signature.Delta {
	out := make([]signature.Delta, 0, n.NumChildren())
	if n.cmap != nil {
		for d := range n.cmap {
			out = append(out, d)
		}
	} else {
		for _, pk := range n.ckeys {
			out = append(out, pk.Unpack())
		}
	}
	return out
}

// Parents returns the node's parents (multiple in the DAG case).
func (n *Node) Parents() []*Node { return n.parents }

func (n *Node) String() string {
	return fmt.Sprintf("node#%d{edges=%d sig=%v}", n.ID, n.Edges, n.Sig)
}

// Trie is the TPSTry++ for a workload Q. The zero value is not usable;
// construct with New.
type Trie struct {
	scheme *signature.Scheme
	packed bool // scheme.Packable(): child tables keyed by PackedDelta
	root   *Node
	nodes  map[string]*Node // signature key → node
	nextID int
	total  float64 // Σ of query frequencies added (support normaliser)
	// queries records (graph, frequency) pairs for introspection and
	// re-thresholding.
	queries []WorkloadEntry
	// version counts workload mutations; consumers that memoise motif
	// decisions (the window's single-edge gate cache) invalidate on it.
	version int
}

// WorkloadEntry is one (query graph, relative frequency) pair of Q.
type WorkloadEntry struct {
	Query *graph.Graph
	Freq  float64
}

// New returns an empty TPSTry++ using the given signature scheme. The
// scheme must be the same one used by the stream matcher, so that factor
// deltas computed on the stream side agree with trie edge labels.
func New(scheme *signature.Scheme) *Trie {
	t := &Trie{
		scheme: scheme,
		packed: scheme.Packable(),
		nextID: 1,
	}
	root := t.newNode(0, signature.NewMultiset(), graph.New(), 0)
	t.root = root
	t.nodes = map[string]*Node{root.Sig.Key(): root}
	return t
}

// newNode builds a node with an empty child table in the trie's regime
// (packed slice table, or Delta-keyed map when the modulus is unpackable).
func (t *Trie) newNode(id int, sig *signature.Multiset, rep *graph.Graph, edges int) *Node {
	n := &Node{ID: id, Sig: sig, Rep: rep, Edges: edges}
	if !t.packed {
		n.cmap = make(map[signature.Delta]*Node)
	}
	return n
}

// Scheme returns the signature scheme the trie was built with.
func (t *Trie) Scheme() *signature.Scheme { return t.scheme }

// Root returns the root node (the empty graph).
func (t *Trie) Root() *Node { return t.root }

// Size returns the number of nodes, excluding the root.
func (t *Trie) Size() int { return len(t.nodes) - 1 }

// TotalWeight returns the sum of query frequencies added so far.
func (t *Trie) TotalWeight() float64 { return t.total }

// Queries returns the workload entries added so far.
func (t *Trie) Queries() []WorkloadEntry { return append([]WorkloadEntry(nil), t.queries...) }

// AddQuery inserts every connected sub-graph of q into the trie (Alg. 1)
// and adds freq to the support of each distinct node reached. freq is the
// query's relative frequency (any positive weight; supports are normalised
// by the running total). The TPSTry++ "may be trivially updated" as the
// workload evolves (§2) — AddQuery may be called at any time, including
// between stream edges.
func (t *Trie) AddQuery(q *graph.Graph, freq float64) error {
	if freq <= 0 {
		return fmt.Errorf("tpstry: query frequency must be positive, got %v", freq)
	}
	m := q.NumEdges()
	if m == 0 {
		return fmt.Errorf("tpstry: query graph has no edges")
	}
	if m > MaxQueryEdges {
		return fmt.Errorf("tpstry: query graph has %d edges, max %d", m, MaxQueryEdges)
	}
	if q.Directed() {
		return fmt.Errorf("tpstry: directed query graphs are not supported")
	}

	edges := q.Edges()
	// incident[i] lists edge indices sharing a vertex with edge i.
	incident := make([][]int, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			if edges[i].HasEndpoint(edges[j].U) || edges[i].HasEndpoint(edges[j].V) {
				incident[i] = append(incident[i], j)
			}
		}
	}

	// BFS over connected edge subsets. visited maps a subset mask to the
	// trie node it resolved to, ensuring each subset is expanded once;
	// node dedup happens independently via signature keys.
	type state struct {
		mask uint64
		node *Node
		deg  map[graph.VertexID]int // degrees within the subset
	}
	visited := make(map[uint64]bool)
	touched := make(map[*Node]bool) // nodes supported by this query

	var queue []state
	for i := 0; i < m; i++ {
		e := edges[i]
		lu, lv := q.EdgeLabels(e)
		d := t.scheme.EdgeDelta(lu, 0, lv, 0)
		n := t.ensureChild(t.root, d, func() *graph.Graph {
			return graph.InducedSubgraph(q, []graph.Edge{e})
		})
		touched[n] = true
		mask := uint64(1) << i
		if !visited[mask] {
			visited[mask] = true
			queue = append(queue, state{mask: mask, node: n, deg: map[graph.VertexID]int{e.U: 1, e.V: 1}})
		}
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Collect candidate extension edges: incident to any edge in the
		// subset and not already in it.
		candidates := make(map[int]bool)
		for i := 0; i < m; i++ {
			if cur.mask&(1<<uint(i)) == 0 {
				continue
			}
			for _, j := range incident[i] {
				if cur.mask&(1<<uint(j)) == 0 {
					candidates[j] = true
				}
			}
		}
		// Deterministic expansion order.
		cand := make([]int, 0, len(candidates))
		for j := range candidates {
			cand = append(cand, j)
		}
		sort.Ints(cand)

		for _, j := range cand {
			e := edges[j]
			lu, lv := q.EdgeLabels(e)
			d := t.scheme.EdgeDelta(lu, cur.deg[e.U], lv, cur.deg[e.V])
			child := t.ensureChild(cur.node, d, func() *graph.Graph {
				sub := make([]graph.Edge, 0, popcount(cur.mask)+1)
				for i := 0; i < m; i++ {
					if cur.mask&(1<<uint(i)) != 0 {
						sub = append(sub, edges[i])
					}
				}
				sub = append(sub, e)
				return graph.InducedSubgraph(q, sub)
			})
			touched[child] = true
			nmask := cur.mask | 1<<uint(j)
			if !visited[nmask] {
				visited[nmask] = true
				ndeg := make(map[graph.VertexID]int, len(cur.deg)+2)
				for k, v := range cur.deg {
					ndeg[k] = v
				}
				ndeg[e.U]++
				ndeg[e.V]++
				queue = append(queue, state{mask: nmask, node: child, deg: ndeg})
			}
		}
	}

	for n := range touched {
		n.support += freq
	}
	t.total += freq
	t.queries = append(t.queries, WorkloadEntry{Query: q, Freq: freq})
	t.version++
	return nil
}

// Version returns a counter incremented by every workload mutation.
// Cached motif decisions (supports change with every AddQuery) are valid
// only while the version is unchanged.
func (t *Trie) Version() int { return t.version }

// ensureChild returns parent's child along delta d, creating the node
// and/or the link as needed. makeRep lazily builds a representative graph
// for newly created nodes.
func (t *Trie) ensureChild(parent *Node, d signature.Delta, makeRep func() *graph.Graph) *Node {
	if c, ok := parent.ChildByDelta(d); ok {
		return c
	}
	sig := parent.Sig.PlusDelta(d)
	key := sig.Key()
	n, ok := t.nodes[key]
	if !ok {
		n = t.newNode(t.nextID, sig, makeRep(), parent.Edges+1)
		t.nextID++
		t.nodes[key] = n
	}
	t.linkChild(parent, d, n)
	n.parents = append(n.parents, parent)
	return n
}

// linkChild records child as parent's child along delta d (absent, per the
// ChildByDelta check in ensureChild). Construction path only: the sorted
// insert keeps the packed table searchable with zero per-lookup work.
func (t *Trie) linkChild(parent *Node, d signature.Delta, child *Node) {
	if !t.packed {
		parent.cmap[d] = child
		return
	}
	pk := d.Packed()
	i, _ := slices.BinarySearch(parent.ckeys, pk)
	parent.ckeys = slices.Insert(parent.ckeys, i, pk)
	parent.cnodes = slices.Insert(parent.cnodes, i, child)
}

// SupportOf returns a node's support normalised to [0, 1]: the fraction of
// workload weight whose queries contain the node's sub-graph.
func (t *Trie) SupportOf(n *Node) float64 {
	if t.total == 0 {
		return 0
	}
	return n.support / t.total
}

// SupportWeight returns a node's raw (unnormalised) support weight.
// Because every normalised support shares the positive divisor
// TotalWeight, comparing raw weights orders nodes exactly as comparing
// SupportOf does — division-free, for sort comparators on hot paths.
// (With no queries added, all weights are 0, matching SupportOf.)
func (n *Node) SupportWeight() float64 { return n.support }

// IsMotif reports whether n's normalised support meets threshold (§1.3's
// "query motif": a graph occurring with frequency above threshold T).
func (t *Trie) IsMotif(n *Node, threshold float64) bool {
	return n != t.root && t.SupportOf(n) >= threshold
}

// NodeBySignature looks up a node by signature.
func (t *Trie) NodeBySignature(sig *signature.Multiset) (*Node, bool) {
	n, ok := t.nodes[sig.Key()]
	return n, ok
}

// Nodes returns all nodes except the root, sorted by (Edges, ID).
func (t *Trie) Nodes() []*Node {
	out := make([]*Node, 0, len(t.nodes)-1)
	for _, n := range t.nodes {
		if n != t.root {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Edges != out[j].Edges {
			return out[i].Edges < out[j].Edges
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Motifs returns all motif nodes at the given threshold, sorted by
// (Edges, ID).
func (t *Trie) Motifs(threshold float64) []*Node {
	var out []*Node
	for _, n := range t.Nodes() {
		if t.IsMotif(n, threshold) {
			out = append(out, n)
		}
	}
	return out
}

// MaxMotifEdges returns the edge count of the largest motif at threshold,
// or 0 if there are none. The stream matcher uses this to bound match
// growth, and §5.3 uses it to reason about window sizing.
func (t *Trie) MaxMotifEdges(threshold float64) int {
	max := 0
	for _, n := range t.Motifs(threshold) {
		if n.Edges > max {
			max = n.Edges
		}
	}
	return max
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
