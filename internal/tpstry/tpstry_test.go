package tpstry

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
)

// fig1Workload builds the workload Q of Fig. 1:
//
//	q1 (30%): the 4-cycle a-b-a-b
//	q2 (60%): the path a-b-c
//	q3 (10%): the path a-b-c-d
func fig1Workload(t testing.TB, trie *Trie) {
	t.Helper()
	if err := trie.AddQuery(pattern.Cycle("a", "b", "a", "b"), 0.30); err != nil {
		t.Fatal(err)
	}
	if err := trie.AddQuery(pattern.Path("a", "b", "c"), 0.60); err != nil {
		t.Fatal(err)
	}
	if err := trie.AddQuery(pattern.Path("a", "b", "c", "d"), 0.10); err != nil {
		t.Fatal(err)
	}
}

func newTrie() *Trie {
	return New(signature.NewScheme(signature.DefaultP, 17))
}

func supportOfGraph(t *Trie, g *graph.Graph) (float64, bool) {
	n, ok := t.NodeBySignature(t.Scheme().SignatureOf(g))
	if !ok {
		return 0, false
	}
	return t.SupportOf(n), true
}

func TestFig1WorkloadSupports(t *testing.T) {
	trie := newTrie()
	fig1Workload(t, trie)

	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"a-b", pattern.Path("a", "b"), 1.00}, // in every query
		{"b-c", pattern.Path("b", "c"), 0.70}, // q2 + q3
		{"c-d", pattern.Path("c", "d"), 0.10}, // q3 only: the "low support node"
		{"a-b-c", pattern.Path("a", "b", "c"), 0.70},
		{"a-b-a", pattern.Path("a", "b", "a"), 0.30}, // q1 only
		{"b-a-b", pattern.Path("b", "a", "b"), 0.30}, // q1 only
		{"b-c-d", pattern.Path("b", "c", "d"), 0.10},
		{"a-b-c-d", pattern.Path("a", "b", "c", "d"), 0.10},
		{"cycle", pattern.Cycle("a", "b", "a", "b"), 0.30},
	}
	for _, c := range cases {
		got, ok := supportOfGraph(trie, c.g)
		if !ok {
			t.Errorf("%s: node missing from trie", c.name)
			continue
		}
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: support = %.3f, want %.3f", c.name, got, c.want)
		}
	}
}

func TestFig1MotifsAtPaperThreshold(t *testing.T) {
	// "for T = 40%, Q's motifs are the shaded nodes in Fig. 2":
	// exactly a-b, b-c and a-b-c given this workload.
	trie := newTrie()
	fig1Workload(t, trie)
	motifs := trie.Motifs(0.40)
	if len(motifs) != 3 {
		t.Fatalf("motifs = %d (%v), want 3", len(motifs), motifs)
	}
	for _, m := range motifs {
		sup := trie.SupportOf(m)
		if sup < 0.40 {
			t.Errorf("motif %v has support %.2f < T", m, sup)
		}
	}
	if got := trie.MaxMotifEdges(0.40); got != 2 {
		t.Errorf("MaxMotifEdges = %d, want 2 (a-b-c)", got)
	}
}

func TestDAGNodeHasTwoParents(t *testing.T) {
	// Fig. 2: "the graph in node a-b-a-b can be produced in two ways, by
	// adding a single a-b edge to either of the sub-graphs b-a-b and
	// a-b-a" — the 3-edge path must have two distinct parents.
	trie := newTrie()
	if err := trie.AddQuery(pattern.Cycle("a", "b", "a", "b"), 1); err != nil {
		t.Fatal(err)
	}
	n, ok := trie.NodeBySignature(trie.Scheme().SignatureOf(pattern.Path("a", "b", "a", "b")))
	if !ok {
		t.Fatal("3-edge path node missing")
	}
	if len(n.Parents()) != 2 {
		t.Fatalf("parents = %d (%v), want 2", len(n.Parents()), n.Parents())
	}
	// And the parents are the two 2-edge paths.
	aba, _ := trie.NodeBySignature(trie.Scheme().SignatureOf(pattern.Path("a", "b", "a")))
	bab, _ := trie.NodeBySignature(trie.Scheme().SignatureOf(pattern.Path("b", "a", "b")))
	seen := map[*Node]bool{}
	for _, p := range n.Parents() {
		seen[p] = true
	}
	if !seen[aba] || !seen[bab] {
		t.Errorf("parents = %v, want {a-b-a, b-a-b}", n.Parents())
	}
}

func TestTrieNodeCountsForCycle(t *testing.T) {
	// Connected sub-graphs of the a-b-a-b 4-cycle up to isomorphism:
	// a-b, a-b-a, b-a-b, a-b-a-b (path), and the cycle itself = 5 nodes.
	trie := newTrie()
	if err := trie.AddQuery(pattern.Cycle("a", "b", "a", "b"), 1); err != nil {
		t.Fatal(err)
	}
	if trie.Size() != 5 {
		t.Fatalf("Size = %d, want 5: %v", trie.Size(), trie.Nodes())
	}
	// All of them are motifs at any threshold <= 1 (single query).
	if got := len(trie.Motifs(1.0)); got != 5 {
		t.Errorf("motifs at T=1 = %d, want 5", got)
	}
}

func TestTrieSignaturesMatchFromScratch(t *testing.T) {
	// Every node's signature must equal the from-scratch signature of its
	// representative graph — the incremental construction is exact.
	trie := newTrie()
	fig1Workload(t, trie)
	for _, n := range trie.Nodes() {
		fresh := trie.Scheme().SignatureOf(n.Rep)
		if !n.Sig.Equal(fresh) {
			t.Errorf("node %v: incremental sig %v != fresh %v", n, n.Sig, fresh)
		}
		if n.Rep.NumEdges() != n.Edges {
			t.Errorf("node %v: Edges=%d but rep has %d", n, n.Edges, n.Rep.NumEdges())
		}
	}
}

func TestSupportMonotonicity(t *testing.T) {
	trie := newTrie()
	fig1Workload(t, trie)
	var check func(n *Node)
	check = func(n *Node) {
		for _, c := range n.Children() {
			if n != trie.Root() && trie.SupportOf(c) > trie.SupportOf(n)+1e-9 {
				t.Errorf("child %v support %.3f > parent %v support %.3f",
					c, trie.SupportOf(c), n, trie.SupportOf(n))
			}
			check(c)
		}
	}
	check(trie.Root())
}

func TestMotifDownwardClosure(t *testing.T) {
	trie := newTrie()
	fig1Workload(t, trie)
	for _, thr := range []float64{0.05, 0.25, 0.40, 0.65, 1.0} {
		for _, m := range trie.Motifs(thr) {
			for _, p := range m.Parents() {
				if p == trie.Root() {
					continue
				}
				if !trie.IsMotif(p, thr) {
					t.Errorf("T=%.2f: motif %v has non-motif parent %v", thr, m, p)
				}
			}
		}
	}
}

func TestChildByDeltaAgreesWithStreamSideComputation(t *testing.T) {
	// Simulate what the matcher does: grow a-b into a-b-c by computing
	// the delta on the "stream" side and following the trie link.
	trie := newTrie()
	fig1Workload(t, trie)
	s := trie.Scheme()

	ab, ok := trie.NodeBySignature(s.SignatureOf(pattern.Path("a", "b")))
	if !ok {
		t.Fatal("a-b node missing")
	}
	// Stream sub-graph: single edge u(a)-v(b); new edge v(b)-w(c): b has
	// degree 1 already, c is fresh.
	d := s.EdgeDelta("b", 1, "c", 0)
	child, ok := ab.ChildByDelta(d)
	if !ok {
		t.Fatal("no child along b+c delta")
	}
	abc, _ := trie.NodeBySignature(s.SignatureOf(pattern.Path("a", "b", "c")))
	if child != abc {
		t.Errorf("ChildByDelta = %v, want a-b-c node %v", child, abc)
	}
	// A delta that corresponds to no extension of a-b in Q.
	if _, ok := ab.ChildByDelta(s.EdgeDelta("d", 3, "d", 5)); ok {
		t.Error("unexpected child for foreign delta")
	}
}

func TestAddQueryValidation(t *testing.T) {
	trie := newTrie()
	if err := trie.AddQuery(pattern.Path("a", "b"), 0); err == nil {
		t.Error("zero frequency: want error")
	}
	if err := trie.AddQuery(pattern.Path("a", "b"), -1); err == nil {
		t.Error("negative frequency: want error")
	}
	empty := graph.New()
	if err := empty.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := trie.AddQuery(empty, 1); err == nil {
		t.Error("edgeless query: want error")
	}
	dir := graph.NewDirected()
	if err := dir.AddVertex(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := dir.AddVertex(2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := dir.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := trie.AddQuery(dir, 1); err == nil {
		t.Error("directed query: want error")
	}
}

func TestIncrementalWorkloadUpdate(t *testing.T) {
	// §2: the trie "may be trivially updated given an evolving workload".
	trie := newTrie()
	if err := trie.AddQuery(pattern.Path("a", "b", "c"), 1); err != nil {
		t.Fatal(err)
	}
	sup1, _ := supportOfGraph(trie, pattern.Path("a", "b"))
	if sup1 != 1.0 {
		t.Fatalf("support after 1 query = %v, want 1", sup1)
	}
	if err := trie.AddQuery(pattern.Path("c", "d"), 3); err != nil {
		t.Fatal(err)
	}
	// a-b now appears in 1 of 4 weight units.
	sup2, _ := supportOfGraph(trie, pattern.Path("a", "b"))
	if diff := sup2 - 0.25; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("support after update = %v, want 0.25", sup2)
	}
	if len(trie.Queries()) != 2 {
		t.Error("Queries() should record both entries")
	}
}

func TestRepGraphsAreIsomorphicToTheirClass(t *testing.T) {
	// Node dedup by signature must put isomorphic sub-graphs in one node:
	// inserting a-b-c and c-b-a separately yields a single 2-edge node
	// (§2.1's motivating requirement), whose rep matches both.
	trie := newTrie()
	if err := trie.AddQuery(pattern.Path("a", "b", "c"), 1); err != nil {
		t.Fatal(err)
	}
	if err := trie.AddQuery(pattern.Path("c", "b", "a"), 1); err != nil {
		t.Fatal(err)
	}
	n, ok := trie.NodeBySignature(trie.Scheme().SignatureOf(pattern.Path("a", "b", "c")))
	if !ok {
		t.Fatal("a-b-c node missing")
	}
	if got := trie.SupportOf(n); got != 1.0 {
		t.Errorf("support = %v, want 1.0 (both queries contain it)", got)
	}
	if !pattern.Isomorphic(n.Rep, pattern.Path("a", "b", "c")) {
		t.Error("rep not isomorphic to a-b-c")
	}
	// Trie size: a-b, b-c, a-b-c = 3 nodes, not 6.
	if trie.Size() != 3 {
		t.Errorf("Size = %d, want 3 (isomorphic dedup)", trie.Size())
	}
}

func TestSupportMonotonicityProperty(t *testing.T) {
	// Random workloads keep support anti-monotone along every trie edge.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		trie := New(signature.NewScheme(signature.DefaultP, seed))
		alphabet := []graph.Label{"a", "b", "c"}
		nq := 1 + r.Intn(4)
		for i := 0; i < nq; i++ {
			n := 2 + r.Intn(4)
			labels := make([]graph.Label, n)
			for j := range labels {
				labels[j] = alphabet[r.Intn(len(alphabet))]
			}
			if err := trie.AddQuery(pattern.Path(labels...), float64(1+r.Intn(5))); err != nil {
				return false
			}
		}
		ok := true
		var walk func(n *Node)
		walk = func(n *Node) {
			for _, c := range n.Children() {
				if n != trie.Root() && trie.SupportOf(c) > trie.SupportOf(n)+1e-9 {
					ok = false
				}
				walk(c)
			}
		}
		walk(trie.Root())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTrieGrowsModestly(t *testing.T) {
	// §2: "the trie is a relatively compact structure, as it grows with
	// |LV|^t". A 6-edge path over 2 labels must stay tiny.
	trie := newTrie()
	if err := trie.AddQuery(pattern.Path("a", "b", "a", "b", "a", "b", "a"), 1); err != nil {
		t.Fatal(err)
	}
	if trie.Size() > 40 {
		t.Errorf("trie size %d unexpectedly large", trie.Size())
	}
}
