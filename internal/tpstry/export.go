package tpstry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"loom/internal/graph"
	"loom/internal/signature"
)

// Export helpers: a Graphviz DOT rendering of the TPSTry++ (motifs
// highlighted, mirroring Fig. 2's shaded nodes) and a compact text summary.
// Both are diagnostic aids for workload engineering: choosing query
// frequencies and the threshold T is much easier when the motif frontier is
// visible.

// WriteDot renders the trie in Graphviz DOT format. Nodes are labelled with
// a canonical description of their graph (label-sorted edge list) and their
// support; motifs at the given threshold are shaded. Edges carry the
// 3-factor delta of the corresponding edge addition.
func (t *Trie) WriteDot(w io.Writer, threshold float64) error {
	var b strings.Builder
	b.WriteString("digraph tpstry {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontsize=10];\n")
	b.WriteString("  root [label=\"∅\", shape=circle];\n")

	for _, n := range t.Nodes() {
		style := ""
		if t.IsMotif(n, threshold) {
			style = ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\nsupp=%.2f\"%s];\n",
			n.ID, describeGraph(n.Rep), t.SupportOf(n), style)
	}

	// Root links.
	for _, d := range sortedDeltas(t.root) {
		c, _ := t.root.ChildByDelta(d)
		fmt.Fprintf(&b, "  root -> n%d [label=\"%v\", fontsize=8];\n", c.ID, d)
	}
	for _, n := range t.Nodes() {
		for _, d := range sortedDeltas(n) {
			c, _ := n.ChildByDelta(d)
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%v\", fontsize=8];\n", n.ID, c.ID, d)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary writes a text overview: node and motif counts per level plus the
// motif list, handy in logs and the loom-bench output.
func (t *Trie) Summary(w io.Writer, threshold float64) error {
	byLevel := map[int][]*Node{}
	maxLevel := 0
	for _, n := range t.Nodes() {
		byLevel[n.Edges] = append(byLevel[n.Edges], n)
		if n.Edges > maxLevel {
			maxLevel = n.Edges
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "TPSTry++: %d nodes, %d motifs at T=%.0f%%, total weight %.2f\n",
		t.Size(), len(t.Motifs(threshold)), threshold*100, t.TotalWeight())
	for lvl := 1; lvl <= maxLevel; lvl++ {
		nodes := byLevel[lvl]
		motifs := 0
		for _, n := range nodes {
			if t.IsMotif(n, threshold) {
				motifs++
			}
		}
		fmt.Fprintf(&b, "  level %d: %d nodes, %d motifs\n", lvl, len(nodes), motifs)
	}
	for _, m := range t.Motifs(threshold) {
		fmt.Fprintf(&b, "  motif #%d (%d edges, supp %.2f): %s\n",
			m.ID, m.Edges, t.SupportOf(m), describeGraph(m.Rep))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// describeGraph renders a small graph as a sorted list of label pairs,
// e.g. "Person-Paper, Paper-Paper".
func describeGraph(g *graph.Graph) string {
	if g == nil || g.NumEdges() == 0 {
		return "∅"
	}
	pairs := make([]string, 0, g.NumEdges())
	for _, e := range g.Edges() {
		lu, lv := g.EdgeLabels(e)
		if lv < lu {
			lu, lv = lv, lu
		}
		pairs = append(pairs, fmt.Sprintf("%s–%s", lu, lv))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ", ")
}

// sortedDeltas returns a node's child deltas in a stable order
// (lexicographic by factor, matching the map-era rendering).
func sortedDeltas(n *Node) []signature.Delta {
	out := n.ChildDeltas()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
