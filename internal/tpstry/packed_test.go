package tpstry

import (
	"testing"

	"loom/internal/graph"
	"loom/internal/pattern"
	"loom/internal/signature"
)

// TestPackedAndMapRegimesAgree builds the same workload under a packable
// modulus (the paper's 251) and an unpackable one (> 2^21, forcing the
// Delta-keyed map fallback) and checks the two child-table regimes answer
// lookups identically relative to their own schemes.
func TestPackedAndMapRegimesAgree(t *testing.T) {
	queries := []*graph.Graph{
		pattern.Path("a", "b", "c"),
		pattern.Star("h", "a", "a", "a"),
		pattern.Triangle("a", "b", "b"),
	}
	for _, tc := range []struct {
		name   string
		p      uint32
		packed bool
	}{
		{"packed-251", signature.DefaultP, true},
		{"packed-max", signature.MaxPackedFactor, true},
		{"map-fallback", signature.MaxPackedFactor + 2, false},
	} {
		s := signature.NewScheme(tc.p, 9)
		if s.Packable() != tc.packed {
			t.Fatalf("%s: Packable = %v, want %v", tc.name, s.Packable(), tc.packed)
		}
		trie := New(s)
		for _, q := range queries {
			if err := trie.AddQuery(q, 1); err != nil {
				t.Fatalf("%s: AddQuery: %v", tc.name, err)
			}
		}
		// Every node must be reachable from each of its parents via the
		// delta between their signatures, whatever the regime.
		for _, n := range trie.Nodes() {
			found := false
			for _, p := range n.Parents() {
				for _, d := range p.ChildDeltas() {
					if c, ok := p.ChildByDelta(d); ok && c == n {
						found = true
					}
					if _, ok := p.ChildByDelta(d); !ok {
						t.Fatalf("%s: ChildDeltas/ChildByDelta disagree on %v", tc.name, d)
					}
				}
			}
			if !found {
				t.Errorf("%s: node %v unreachable from its parents", tc.name, n)
			}
			if got, want := n.NumChildren(), len(n.Children()); got != want {
				t.Errorf("%s: NumChildren = %d, Children() has %d", tc.name, got, want)
			}
		}
		// Packed-regime lookups must agree with ChildByPacked.
		if tc.packed {
			for _, n := range append(trie.Nodes(), trie.Root()) {
				for _, d := range n.ChildDeltas() {
					c1, ok1 := n.ChildByDelta(d)
					c2, ok2 := n.ChildByPacked(d.Packed())
					if ok1 != ok2 || c1 != c2 {
						t.Fatalf("%s: ChildByDelta and ChildByPacked disagree on %v", tc.name, d)
					}
				}
			}
		}
		// A delta that labels no child edge must miss in both regimes.
		if _, ok := trie.Root().ChildByDelta(signature.Delta{1, 2, 4}); ok {
			// Possible but astronomically unlikely to be a real edge label
			// under seed 9; treat a hit as a regression in the miss path.
			t.Logf("%s: probe delta unexpectedly present (seed-dependent)", tc.name)
		}
	}
}
