package tpstry

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	trie := newTrie()
	fig1Workload(t, trie)
	var buf bytes.Buffer
	if err := trie.WriteDot(&buf, 0.40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph tpstry {") {
		t.Error("not a digraph")
	}
	if !strings.Contains(out, "fillcolor=lightgrey") {
		t.Error("motifs not shaded")
	}
	if !strings.Contains(out, "root ->") {
		t.Error("no root links")
	}
	// Every non-root node must be declared.
	for _, n := range trie.Nodes() {
		if !strings.Contains(out, nodeDecl(n.ID)) {
			t.Errorf("node %d missing from DOT", n.ID)
		}
	}
}

func nodeDecl(id int) string {
	return "n" + itoa(id) + " ["
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestSummary(t *testing.T) {
	trie := newTrie()
	fig1Workload(t, trie)
	var buf bytes.Buffer
	if err := trie.Summary(&buf, 0.40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 motifs") {
		t.Errorf("summary missing motif count:\n%s", out)
	}
	if !strings.Contains(out, "level 1") || !strings.Contains(out, "level 2") {
		t.Errorf("summary missing levels:\n%s", out)
	}
	if !strings.Contains(out, "a–b") {
		t.Errorf("summary missing graph description:\n%s", out)
	}
}

func TestDescribeGraph(t *testing.T) {
	trie := newTrie()
	fig1Workload(t, trie)
	if got := describeGraph(nil); got != "∅" {
		t.Errorf("describeGraph(nil) = %q", got)
	}
	if got := describeGraph(trie.Root().Rep); got != "∅" {
		t.Errorf("describeGraph(root) = %q", got)
	}
}
