package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"loom"
	"loom/internal/graph"
	"loom/internal/partition"
)

// The read experiment measures the copy-on-write read path: how much a
// snapshot costs as the assignment grows (it should not grow with it), and
// what concurrent readers cost a live ingest (they should cost nothing).

// ReadLatencyRow is one cell of the snapshot-latency sweep: the cost of
// Partitioner.Snapshot (an atomic epoch grab) against the historical O(V)
// deep clone at the same vertex count.
type ReadLatencyRow struct {
	Vertices   int     `json:"vertices"`
	SnapshotNs float64 `json:"snapshot_ns"`
	CloneNs    float64 `json:"clone_ns"`
	Speedup    float64 `json:"speedup"`
}

// ReadMixRow is one cell of the mixed read/ingest sweep: one producer
// streaming AddBatch while Readers goroutines hammer PartitionOf.
type ReadMixRow struct {
	Dataset         string  `json:"dataset"`
	Readers         int     `json:"readers"`
	Edges           int     `json:"edges"`
	IngestNsPerEdge float64 `json:"ingest_ns_per_edge"`
	// IngestVsSolo is this cell's ingest time relative to the readers=0
	// cell (1.00 = readers are free for the writer).
	IngestVsSolo float64 `json:"ingest_vs_solo"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	ReadNs       float64 `json:"read_ns"`
}

// ReadReport is the machine-readable output of RunRead.
type ReadReport struct {
	Seed       int64            `json:"seed"`
	K          int              `json:"k"`
	WindowSize int              `json:"window_size"`
	BatchSize  int              `json:"batch_size"`
	Reps       int              `json:"reps"`
	NumCPU     int              `json:"num_cpu"`
	GoMaxProcs int              `json:"gomaxprocs"`
	GoVersion  string           `json:"go_version"`
	Latency    []ReadLatencyRow `json:"latency"`
	Mix        []ReadMixRow     `json:"mix"`
}

// ReadVertexSweep is the assignment sizes the snapshot-latency sweep visits.
var ReadVertexSweep = []int{1 << 14, 1 << 17, 1 << 20}

// ReadReaderSweep is the concurrent reader counts of the mixed sweep.
var ReadReaderSweep = []int{0, 1, 2, 4}

// readBatchSize is the AddBatch chunk size used throughout.
const readBatchSize = 2048

// readReps is how many rounds each timed cell takes the minimum over.
const readReps = 3

// readLatency times Partitioner.Snapshot and the O(V) Tracker clone at one
// assignment size. The partitioner is a hash baseline (placement cost must
// not pollute a read measurement) filled with n fresh vertices.
func readLatency(n int, cfg Config) (ReadLatencyRow, error) {
	p, err := loom.NewBaseline("hash", loom.Options{
		Partitions:            cfg.K,
		ExpectedVertices:      n,
		DisableGraphRecording: true,
	}, nil)
	if err != nil {
		return ReadLatencyRow{}, err
	}
	batch := make([]loom.StreamEdge, 0, readBatchSize)
	for v := int64(0); v < int64(n); v += 2 {
		batch = append(batch, loom.StreamEdge{U: v, LU: "a", V: v + 1, LV: "b"})
		if len(batch) == readBatchSize {
			if err := p.AddBatch(batch); err != nil {
				return ReadLatencyRow{}, err
			}
			batch = batch[:0]
		}
	}
	if err := p.AddBatch(batch); err != nil {
		return ReadLatencyRow{}, err
	}
	p.Flush()
	if got := p.Snapshot().NumAssigned(); got != n {
		return ReadLatencyRow{}, fmt.Errorf("bench: read sweep assigned %d of %d vertices", got, n)
	}

	// The clone baseline: a Tracker of the same size, deep-copied per call —
	// exactly what Snapshot cost before the paged epochs.
	tr := partition.NewTracker(cfg.K, partition.CapacityFor(n, cfg.K, partition.DefaultImbalance))
	tr.Reserve(n)
	for v := 0; v < n; v++ {
		tr.Assign(graph.VertexID(v), partition.ID(v%cfg.K))
	}

	timeOp := func(iters int, op func()) float64 {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < readReps; rep++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				op()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds()) / float64(iters)
	}
	row := ReadLatencyRow{
		Vertices: n,
		// Snapshot is O(1): thousands of iterations cost microseconds.
		SnapshotNs: timeOp(10_000, func() { _ = p.Snapshot() }),
		// The clone is O(V): a handful of iterations is already seconds of
		// work at a million vertices.
		CloneNs: timeOp(3, func() { _ = tr.Snapshot() }),
	}
	row.Speedup = row.CloneNs / row.SnapshotNs
	return row, nil
}

// readMix runs one dataset through AddBatch with readers hammering
// PartitionOf, and reports both sides' throughput. Loom itself (not a
// baseline) ingests: the cell must include the full placement pipeline the
// writer really runs.
func readMix(ds string, readers int, cfg Config) (ReadMixRow, error) {
	stream, err := loom.GenerateDataset(ds, cfg.Scale, cfg.Seed)
	if err != nil {
		return ReadMixRow{}, err
	}
	stream, err = loom.OrderStream(stream, "bfs", cfg.Seed)
	if err != nil {
		return ReadMixRow{}, err
	}
	wl, err := loom.DatasetWorkload(ds)
	if err != nil {
		return ReadMixRow{}, err
	}
	seen := map[int64]bool{}
	for _, e := range stream {
		seen[e.U], seen[e.V] = true, true
	}
	opt := loom.Options{
		Partitions:            cfg.K,
		ExpectedVertices:      len(seen),
		WindowSize:            cfg.WindowSize,
		SupportThreshold:      cfg.Threshold,
		Seed:                  cfg.Seed,
		DisableGraphRecording: true,
	}

	row := ReadMixRow{Dataset: ds, Readers: readers, Edges: len(stream)}
	bestIngest := time.Duration(1<<63 - 1)
	for rep := 0; rep < readReps; rep++ {
		p, err := loom.New(opt, wl)
		if err != nil {
			return ReadMixRow{}, err
		}
		var done atomic.Bool
		var reads atomic.Int64
		var readNanos atomic.Int64
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				n := int64(0)
				// Poll the stop flag once per 1024 reads: the check stays
				// off the measured path, and even an ingest too short to
				// overlap the reader still yields a real sample.
				for i := r; ; i += 7 {
					v := stream[i%len(stream)].U
					p.PartitionOf(v)
					n++
					if n&1023 == 0 && done.Load() {
						break
					}
				}
				reads.Add(n)
				readNanos.Add(time.Since(start).Nanoseconds())
			}()
		}

		ingestStart := time.Now()
		for i := 0; i < len(stream); i += readBatchSize {
			end := i + readBatchSize
			if end > len(stream) {
				end = len(stream)
			}
			if err := p.AddBatch(stream[i:end]); err != nil {
				done.Store(true)
				wg.Wait()
				return ReadMixRow{}, err
			}
		}
		ingest := time.Since(ingestStart)
		done.Store(true)
		wg.Wait()
		p.Flush()
		if err := p.Err(); err != nil {
			return ReadMixRow{}, err
		}

		if ingest < bestIngest {
			bestIngest = ingest
			if n := reads.Load(); n > 0 {
				// Aggregate throughput: total reads over the average
				// reader's wall time; per-read cost over summed time.
				perReader := float64(readNanos.Load()) / float64(readers)
				row.ReadsPerSec = float64(n) * 1e9 / perReader
				row.ReadNs = float64(readNanos.Load()) / float64(n)
			}
		}
	}
	row.IngestNsPerEdge = float64(bestIngest.Nanoseconds()) / float64(len(stream))
	return row, nil
}

// RunRead measures the read path: the snapshot-latency sweep (epoch grab vs
// O(V) clone as the assignment grows) and the mixed read/ingest sweep (what
// N PartitionOf-hammering readers cost a live AddBatch producer, and what
// read throughput they get).
func RunRead(cfg Config) (*ReadReport, error) {
	cfg = cfg.withDefaults()
	rep := &ReadReport{
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		BatchSize:  readBatchSize,
		Reps:       readReps,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	for _, n := range ReadVertexSweep {
		row, err := readLatency(n, cfg)
		if err != nil {
			return nil, err
		}
		rep.Latency = append(rep.Latency, row)
	}
	for _, ds := range cfg.Datasets {
		var solo float64
		for _, readers := range ReadReaderSweep {
			row, err := readMix(ds, readers, cfg)
			if err != nil {
				return nil, err
			}
			if readers == 0 {
				solo = row.IngestNsPerEdge
			}
			if solo > 0 {
				row.IngestVsSolo = row.IngestNsPerEdge / solo
			}
			rep.Mix = append(rep.Mix, row)
		}
	}
	return rep, nil
}

// WriteReadJSON writes the report as indented JSON.
func WriteReadJSON(w io.Writer, rep *ReadReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderRead writes the report as aligned text tables.
func RenderRead(w io.Writer, rep *ReadReport) {
	fmt.Fprintf(w, "Read path: snapshot latency vs assignment size (k %d, %d reps)\n",
		rep.K, rep.Reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vertices\tSnapshot ns\tO(V) clone ns\tspeedup")
	for _, r := range rep.Latency {
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f×\n", r.Vertices, r.SnapshotNs, r.CloneNs, r.Speedup)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nMixed read/ingest: one AddBatch producer, N PartitionOf readers (window %d, batch %d, %d CPUs)\n",
		rep.WindowSize, rep.BatchSize, rep.NumCPU)
	if rep.NumCPU == 1 {
		fmt.Fprintln(w, "NOTE: single-CPU machine — readers and the producer share one core; reader cost measures scheduling, not contention")
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\treaders\tingest ns/edge\tvs solo\treads/s\tread ns")
	for _, r := range rep.Mix {
		if r.Readers == 0 {
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f×\t-\t-\n", r.Dataset, r.Readers, r.IngestNsPerEdge, r.IngestVsSolo)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f×\t%.1fM\t%.1f\n",
			r.Dataset, r.Readers, r.IngestNsPerEdge, r.IngestVsSolo, r.ReadsPerSec/1e6, r.ReadNs)
	}
	tw.Flush()
}
