package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"loom"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/workload"
)

// PerfRow is one partitioner's performance measurement on one dataset and
// ingest mode: streaming cost per edge (time and allocation) plus the
// partitioning quality it buys (ipt, absolute and relative to Hash).
// Since PR 3 the measurement runs through the public concurrent
// loom.Partitioner — the surface producers actually pay, ingest lock
// included — rather than the raw single-threaded streamers.
type PerfRow struct {
	Dataset string `json:"dataset"`
	System  string `json:"system"`
	// Ingest is the ingestion mode measured: "edge" (one AddEdge call per
	// stream element, the historical per-edge path, one lock round-trip
	// per edge) or "batch" (AddBatch over perfBatchSize-edge chunks, one
	// lock round-trip per batch). Placements — and hence ipt — are
	// identical; only the per-edge cost differs.
	Ingest        string  `json:"ingest"`
	Edges         int     `json:"edges"`
	NsPerEdge     float64 `json:"ns_per_edge"`
	AllocsPerEdge float64 `json:"allocs_per_edge"`
	BytesPerEdge  float64 `json:"bytes_per_edge"`
	IPT           float64 `json:"ipt"`
	IPTPctOfHash  float64 `json:"ipt_pct_of_hash"`
}

// PerfReport is the machine-readable output of RunPerf: the harness
// configuration that produced the rows, so BENCH_*.json files from
// different commits are comparable.
type PerfReport struct {
	Scale      int       `json:"scale"`
	Seed       int64     `json:"seed"`
	K          int       `json:"k"`
	WindowSize int       `json:"window_size"`
	Reps       int       `json:"reps"`
	GoVersion  string    `json:"go_version"`
	Rows       []PerfRow `json:"rows"`
}

// perfReps is how many full-stream partitioning runs each timing
// measurement takes the minimum over. Generous because the min is only as
// good as the cleanest window the machine offered each mode.
const perfReps = 9

// perfBatchSize is the chunk size of the batch-ingest measurement — large
// enough to amortise per-call overhead, small enough to be a realistic
// producer batch.
const perfBatchSize = 256

// PerfIngestModes are the ingestion modes RunPerf measures per system.
var PerfIngestModes = []string{"edge", "batch"}

// RunPerf measures every system's streaming cost and partitioning quality
// per dataset and ingest mode, driving the public concurrent
// loom.Partitioner over the dataset's breadth-first stream. Every system
// is measured twice — per-edge AddStreamEdge calls versus
// perfBatchSize-chunk AddBatch calls — since batch ingest is the
// preferred public path; the reported ns/edge is the per-mode MINIMUM over
// perfReps interleaved runs (see perfPair for the methodology), and
// placements are mode-independent (TestAddBatchGoldenIdentical pins
// this), so both rows share one workload
// execution for ipt. RunPerf backs loom-bench's -json output, the perf
// trajectory tracked across commits.
func RunPerf(cfg Config) (*PerfReport, error) {
	cfg = cfg.withDefaults()
	rep := &PerfReport{
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		Reps:       perfReps,
		GoVersion:  runtime.Version(),
	}
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		stream := graph.StreamOf(p.g, graph.OrderBFS, nil)
		pubStream := make([]loom.StreamEdge, len(stream))
		for i, se := range stream {
			pubStream[i] = loom.StreamEdge{U: int64(se.U), LU: string(se.LU), V: int64(se.V), LV: string(se.LV)}
		}
		var hashIPT float64
		start := len(rep.Rows)
		for _, sys := range Systems {
			edgeRow, batchRow, err := perfPair(p, sys, pubStream, cfg)
			if err != nil {
				return nil, err
			}
			if sys == "hash" {
				hashIPT = edgeRow.IPT
			}
			rep.Rows = append(rep.Rows, edgeRow, batchRow)
		}
		for i := start; i < len(rep.Rows); i++ {
			if hashIPT > 0 {
				rep.Rows[i].IPTPctOfHash = 100 * rep.Rows[i].IPT / hashIPT
			} else {
				rep.Rows[i].IPTPctOfHash = 100
			}
		}
	}
	return rep, nil
}

// newPublicSystem builds the public concurrent partitioner for one perf
// cell, mirroring newSystem's configuration (recording disabled: the perf
// rows isolate the streaming path; the prepared graph provides ipt).
func newPublicSystem(sys string, p *prepared, cfg Config) (*loom.Partitioner, error) {
	opt := loom.Options{
		Partitions:       cfg.K,
		ExpectedVertices: p.g.NumVertices(),
		ExpectedEdges:    p.g.NumEdges(),
		WindowSize:       cfg.WindowSize,
		SupportThreshold: cfg.Threshold,
		Seed:             cfg.Seed,
		// The perf rows track the sequential public ingest path across
		// commits; pinning Workers keeps them comparable on any machine
		// (the default would otherwise flip the parallel pipeline on
		// wherever GOMAXPROCS > 1). The scale experiment owns the
		// worker-count dimension.
		Workers:               1,
		DisableGraphRecording: true,
	}
	if sys == "loom" {
		wl, err := loom.DatasetWorkload(p.name)
		if err != nil {
			return nil, err
		}
		return loom.New(opt, wl)
	}
	return loom.NewBaseline(sys, opt, nil)
}

// perfPair measures one system's per-edge and batch ingest cost through
// the public API, returning one PerfRow per mode.
//
// Methodology: only the ingest section is timed — construction (trie
// building) and the end-of-stream Flush are identical across modes and
// excluded. The two modes run interleaved, one edge rep then one batch rep
// per round, so slow machine drift (noisy neighbours, thermal throttling)
// hits both equally; the reported ns/edge is the minimum over perfReps
// rounds, the noise-robust estimator for what the path costs when the
// machine isn't in the way (GC pauses and scheduler jitter only ever add
// time). Allocation counters are monotonic and GC-independent, so they are
// summed over all reps per mode. The workload executes once for ipt —
// placements are identical across modes by construction (and tested), so
// both rows share it.
func perfPair(p *prepared, sys string, pubStream []loom.StreamEdge, cfg Config) (PerfRow, PerfRow, error) {
	fail := func(err error) (PerfRow, PerfRow, error) { return PerfRow{}, PerfRow{}, err }
	// run ingests the stream in the given mode; elapsed and the allocation
	// deltas cover the ingest section only (construction and Flush are
	// excluded from both, so every column of a row measures one scope).
	run := func(mode string) (pt *loom.Partitioner, elapsed time.Duration, allocs, bytes uint64, err error) {
		pt, err = newPublicSystem(sys, p, cfg)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		switch mode {
		case "edge":
			for _, se := range pubStream {
				pt.AddStreamEdge(se)
			}
		case "batch":
			for i := 0; i < len(pubStream); i += perfBatchSize {
				end := i + perfBatchSize
				if end > len(pubStream) {
					end = len(pubStream)
				}
				if err := pt.AddBatch(pubStream[i:end]); err != nil {
					return nil, 0, 0, 0, err
				}
			}
		default:
			return nil, 0, 0, 0, fmt.Errorf("bench: unknown ingest mode %q", mode)
		}
		elapsed = time.Since(start)
		runtime.ReadMemStats(&m1)
		pt.Flush()
		return pt, elapsed, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc, nil
	}
	// Warm-up run; its assignment also provides the ipt measurement.
	s, _, _, _, err := run("batch")
	if err != nil {
		return fail(err)
	}
	runtime.GC()
	best := map[string]time.Duration{}
	allocs := map[string]uint64{}
	bytes := map[string]uint64{}
	for i := 0; i < perfReps; i++ {
		for _, mode := range PerfIngestModes {
			_, elapsed, al, by, err := run(mode)
			if err != nil {
				return fail(err)
			}
			if d, ok := best[mode]; !ok || elapsed < d {
				best[mode] = elapsed
			}
			allocs[mode] += al
			bytes[mode] += by
		}
	}

	parts := make(map[graph.VertexID]partition.ID)
	s.Snapshot().Each(func(v int64, part int) { parts[graph.VertexID(v)] = partition.ID(part) })
	a := partition.AssignmentOf(cfg.K, parts)
	res, err := workload.Execute(p.g, a, p.wl, workload.Options{MaxMatchesPerQuery: cfg.MaxMatches})
	if err != nil {
		return fail(err)
	}
	row := func(mode string) PerfRow {
		edges := perfReps * len(pubStream)
		return PerfRow{
			Dataset:       p.name,
			System:        sys,
			Ingest:        mode,
			Edges:         len(pubStream),
			NsPerEdge:     float64(best[mode].Nanoseconds()) / float64(len(pubStream)),
			AllocsPerEdge: float64(allocs[mode]) / float64(edges),
			BytesPerEdge:  float64(bytes[mode]) / float64(edges),
			IPT:           res.IPT,
			IPTPctOfHash:  100,
		}
	}
	return row("edge"), row("batch"), nil
}

// WritePerfJSON writes the report as indented JSON.
func WritePerfJSON(w io.Writer, rep *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderPerf writes the report as an aligned text table.
func RenderPerf(w io.Writer, rep *PerfReport) {
	fmt.Fprintf(w, "Streaming perf (scale %d, k %d, window %d, %d reps)\n",
		rep.Scale, rep.K, rep.WindowSize, rep.Reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tsystem\tingest\tns/edge\tallocs/edge\tB/edge\tipt\t% of hash")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f\t%.3f\t%.0f\t%.0f\t%.1f%%\n",
			r.Dataset, r.System, r.Ingest, r.NsPerEdge, r.AllocsPerEdge, r.BytesPerEdge,
			r.IPT, r.IPTPctOfHash)
	}
	tw.Flush()
}
