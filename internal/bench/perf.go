package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/workload"
)

// PerfRow is one partitioner's performance measurement on one dataset:
// streaming cost per edge (time and allocation) plus the partitioning
// quality it buys (ipt, absolute and relative to Hash).
type PerfRow struct {
	Dataset       string  `json:"dataset"`
	System        string  `json:"system"`
	Edges         int     `json:"edges"`
	NsPerEdge     float64 `json:"ns_per_edge"`
	AllocsPerEdge float64 `json:"allocs_per_edge"`
	BytesPerEdge  float64 `json:"bytes_per_edge"`
	IPT           float64 `json:"ipt"`
	IPTPctOfHash  float64 `json:"ipt_pct_of_hash"`
}

// PerfReport is the machine-readable output of RunPerf: the harness
// configuration that produced the rows, so BENCH_*.json files from
// different commits are comparable.
type PerfReport struct {
	Scale      int       `json:"scale"`
	Seed       int64     `json:"seed"`
	K          int       `json:"k"`
	WindowSize int       `json:"window_size"`
	Reps       int       `json:"reps"`
	GoVersion  string    `json:"go_version"`
	Rows       []PerfRow `json:"rows"`
}

// perfReps is how many full-stream partitioning runs each timing
// measurement averages over.
const perfReps = 3

// RunPerf measures every system's streaming cost and partitioning quality
// per dataset: each measurement partitions the dataset's breadth-first
// stream perfReps times (after one warm-up run) and averages wall time and
// allocations per edge, then executes the workload once for ipt. It backs
// loom-bench's -json output, the perf trajectory tracked across commits.
func RunPerf(cfg Config) (*PerfReport, error) {
	cfg = cfg.withDefaults()
	rep := &PerfReport{
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		Reps:       perfReps,
		GoVersion:  runtime.Version(),
	}
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		stream := graph.StreamOf(p.g, graph.OrderBFS, nil)
		var hashIPT float64
		start := len(rep.Rows)
		for _, sys := range Systems {
			row, err := perfOne(p, sys, stream, cfg)
			if err != nil {
				return nil, err
			}
			if sys == "hash" {
				hashIPT = row.IPT
			}
			rep.Rows = append(rep.Rows, row)
		}
		for i := start; i < len(rep.Rows); i++ {
			if hashIPT > 0 {
				rep.Rows[i].IPTPctOfHash = 100 * rep.Rows[i].IPT / hashIPT
			} else {
				rep.Rows[i].IPTPctOfHash = 100
			}
		}
	}
	return rep, nil
}

func perfOne(p *prepared, sys string, stream graph.Stream, cfg Config) (PerfRow, error) {
	run := func() (partition.Streamer, error) {
		s, err := newSystem(sys, p, cfg.K, cfg.WindowSize, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		for _, se := range stream {
			s.ProcessEdge(se)
		}
		s.Flush()
		return s, nil
	}
	// Warm-up run; its assignment also provides the ipt measurement.
	s, err := run()
	if err != nil {
		return PerfRow{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < perfReps; i++ {
		if _, err := run(); err != nil {
			return PerfRow{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	a := s.Assignment()
	res, err := workload.Execute(p.g, a, p.wl, workload.Options{MaxMatchesPerQuery: cfg.MaxMatches})
	if err != nil {
		return PerfRow{}, err
	}
	edges := perfReps * len(stream)
	return PerfRow{
		Dataset:       p.name,
		System:        sys,
		Edges:         len(stream),
		NsPerEdge:     float64(elapsed.Nanoseconds()) / float64(edges),
		AllocsPerEdge: float64(after.Mallocs-before.Mallocs) / float64(edges),
		BytesPerEdge:  float64(after.TotalAlloc-before.TotalAlloc) / float64(edges),
		IPT:           res.IPT,
		IPTPctOfHash:  100,
	}, nil
}

// WritePerfJSON writes the report as indented JSON.
func WritePerfJSON(w io.Writer, rep *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderPerf writes the report as an aligned text table.
func RenderPerf(w io.Writer, rep *PerfReport) {
	fmt.Fprintf(w, "Streaming perf (scale %d, k %d, window %d, %d reps)\n",
		rep.Scale, rep.K, rep.WindowSize, rep.Reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tsystem\tns/edge\tallocs/edge\tB/edge\tipt\t% of hash")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.3f\t%.0f\t%.0f\t%.1f%%\n",
			r.Dataset, r.System, r.NsPerEdge, r.AllocsPerEdge, r.BytesPerEdge,
			r.IPT, r.IPTPctOfHash)
	}
	tw.Flush()
}
