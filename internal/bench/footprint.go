package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"loom"
	"loom/internal/dataset"
)

// FootprintRow is one cell of the memory-footprint sweep: a synthetic
// power-law stream of StreamEdges edges partitioned to completion with
// graph recording on, in one storage mode.
type FootprintRow struct {
	// Mode is "memory" (whole edge log resident) or "spill" (frozen log
	// chunks written to disk, see loom.Options.SpillDir).
	Mode string `json:"mode"`
	// StreamEdges is the raw stream length; RecordedEdges is what survived
	// dedup and self-loop filtering (the denominator of BytesPerEdge).
	StreamEdges   int64   `json:"stream_edges"`
	RecordedEdges int     `json:"recorded_edges"`
	Vertices      int     `json:"vertices"`
	NsPerEdge     float64 `json:"ns_per_edge"`
	// BytesPerEdge is the recorded graph's resident bytes (MemStats.Total,
	// which excludes spilled chunk files) per recorded edge — the number
	// the ≤ 16 B/edge budget is stated against (in-memory mode).
	BytesPerEdge float64 `json:"graph_bytes_per_recorded_edge"`
	VertexBytes  int     `json:"vertex_bytes"`
	AdjBytes     int     `json:"adj_bytes"`
	EdgeSetBytes int     `json:"edge_set_bytes"`
	LogBytes     int     `json:"log_bytes"`
	SpilledBytes int64   `json:"spilled_bytes"`
	GraphBytes   int     `json:"graph_total_bytes"`
	// HeapAllocBytes is the live Go heap after a forced GC at the end of
	// the cell — the per-cell resident-set signal (each cell builds its
	// partitioner from scratch, so this is what the cell keeps alive).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// MaxRSSKB is the process high-water mark (VmHWM) after the cell.
	// Monotone across cells within one run; compare cells with care.
	MaxRSSKB int64 `json:"max_rss_kb"`
}

// FootprintReport is the machine-readable output of RunFootprint.
type FootprintReport struct {
	Seed       int64          `json:"seed"`
	K          int            `json:"k"`
	WindowSize int            `json:"window_size"`
	Skew       float64        `json:"skew"`
	NumCPU     int            `json:"num_cpu"`
	GoVersion  string         `json:"go_version"`
	Rows       []FootprintRow `json:"rows"`
}

// footprintBatch is the AddBatch chunk size of the sweep: big enough to
// amortise batch setup, small enough that the batch buffer itself never
// shows up in the footprint.
const footprintBatch = 4096

// footprintSkew is the Zipf exponent of the synthetic stream — skewed
// enough that hubs exercise the adjacency tail-compression path hard.
const footprintSkew = 1.25

// FootprintWorkload is the fixed query mix the sweep partitions under: a
// 2-path over the stream's label alphabet, the cheapest motif that still
// keeps Loom's window and TPSTry on the hot path.
func FootprintWorkload() *loom.Workload {
	return loom.NewWorkload("footprint").Add("path", loom.Path("A", "B", "C"), 1)
}

// RunFootprint partitions synthetic power-law streams of the given edge
// counts to completion — once per mode — and reports the recorded graph's
// storage cost per edge, ingest speed, and process memory. Modes are
// "memory" and/or "spill"; spill cells write frozen edge-log chunks under
// a throwaway directory that is removed before returning.
func RunFootprint(cfg Config, edgeCounts []int64, modes []string) (*FootprintReport, error) {
	cfg = cfg.withDefaults()
	if len(edgeCounts) == 0 {
		edgeCounts = []int64{1_000_000}
	}
	if len(modes) == 0 {
		modes = []string{"memory", "spill"}
	}
	rep := &FootprintReport{
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		Skew:       footprintSkew,
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	for _, edges := range edgeCounts {
		for _, mode := range modes {
			fmt.Fprintf(os.Stderr, "footprint: %s %g edges...\n", mode, float64(edges))
			row, err := footprintCell(cfg, mode, edges)
			if err != nil {
				return nil, fmt.Errorf("bench: footprint %s %d edges: %w", mode, edges, err)
			}
			fmt.Fprintf(os.Stderr, "footprint: %s %g done: %d recorded, %.1f B/edge, %.0f ns/edge\n",
				mode, float64(edges), row.RecordedEdges, row.BytesPerEdge, row.NsPerEdge)
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func footprintCell(cfg Config, mode string, edges int64) (FootprintRow, error) {
	// One vertex per ~1k stream edges: dense enough that per-vertex fixed
	// state amortises (recorded average degree ~100+ at scale), the regime
	// the bounded-memory store is built for.
	verts := edges / 1024
	if verts < 16 {
		verts = 16
	}
	gen, err := dataset.NewStreamGen(dataset.StreamSpec{
		Mode: "powerlaw", Edges: edges, Vertices: verts,
		Skew: footprintSkew, Seed: cfg.Seed,
	})
	if err != nil {
		return FootprintRow{}, err
	}
	// ExpectedEdges is deliberately left zero: a Zipf stream dedups
	// heavily, so pre-sizing the duplicate-edge set for the raw stream
	// length would bake over-reservation into the B/edge figure. Letting
	// it grow to fit measures what the structure actually needs.
	opt := loom.Options{
		Partitions:       cfg.K,
		ExpectedVertices: int(verts),
		WindowSize:       cfg.WindowSize,
		SupportThreshold: cfg.Threshold,
		Seed:             cfg.Seed,
	}
	switch mode {
	case "memory":
	case "spill":
		dir, err := os.MkdirTemp("", "loom-footprint-*")
		if err != nil {
			return FootprintRow{}, err
		}
		defer os.RemoveAll(dir)
		opt.SpillDir = dir
	default:
		return FootprintRow{}, fmt.Errorf("unknown mode %q (want memory or spill)", mode)
	}
	p, err := loom.New(opt, FootprintWorkload())
	if err != nil {
		return FootprintRow{}, err
	}
	batch := make([]loom.StreamEdge, 0, footprintBatch)
	start := time.Now()
	for {
		e, ok := gen.Next()
		if !ok {
			break
		}
		batch = append(batch, loom.StreamEdge{
			U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV),
		})
		if len(batch) == footprintBatch {
			if err := p.AddBatch(batch); err != nil {
				return FootprintRow{}, err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := p.AddBatch(batch); err != nil {
			return FootprintRow{}, err
		}
	}
	p.Flush()
	elapsed := time.Since(start)
	if err := p.Err(); err != nil {
		return FootprintRow{}, err
	}
	// Compact in both modes: it shrinks adjacency slack everywhere and
	// flushes frozen log chunks to disk in spill mode — exactly what a
	// long-running deployment does at every checkpoint.
	if err := p.GraphCompact(); err != nil {
		return FootprintRow{}, err
	}
	mem, ok := p.GraphMemory()
	if !ok {
		return FootprintRow{}, fmt.Errorf("graph recording unexpectedly disabled")
	}
	nv, ne, _ := p.GraphSize()
	if ne == 0 {
		return FootprintRow{}, fmt.Errorf("no edges recorded")
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row := FootprintRow{
		Mode:           mode,
		StreamEdges:    edges,
		RecordedEdges:  ne,
		Vertices:       nv,
		NsPerEdge:      float64(elapsed.Nanoseconds()) / float64(edges),
		BytesPerEdge:   float64(mem.Total) / float64(ne),
		VertexBytes:    mem.VertexBytes + mem.LabelBytes,
		AdjBytes:       mem.AdjBytes,
		EdgeSetBytes:   mem.EdgeSetBytes,
		LogBytes:       mem.LogBytes,
		SpilledBytes:   mem.SpilledBytes,
		GraphBytes:     mem.Total,
		HeapAllocBytes: ms.HeapAlloc,
		MaxRSSKB:       readVmHWMKB(),
	}
	// Keep p alive past ReadMemStats so HeapAllocBytes includes the graph.
	runtime.KeepAlive(p)
	return row, nil
}

// readVmHWMKB returns the process peak resident set (VmHWM) in KiB from
// /proc/self/status, or 0 where the proc filesystem is unavailable.
func readVmHWMKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// ParseEdgeCounts parses a comma-separated list like "1e6,1e7,1e8" (plain
// integers also accepted) into edge counts for RunFootprint.
func ParseEdgeCounts(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil || f < 1 {
			return nil, fmt.Errorf("bench: bad edge count %q", part)
		}
		out = append(out, int64(f))
	}
	return out, nil
}

// WriteFootprintJSON writes the report as indented JSON.
func WriteFootprintJSON(w io.Writer, rep *FootprintReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderFootprint prints the paper-style text table.
func RenderFootprint(w io.Writer, rep *FootprintReport) {
	fmt.Fprintf(w, "Memory footprint (power-law stream, skew %.1f, k=%d, window %d)\n",
		rep.Skew, rep.K, rep.WindowSize)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tstream |E|\trecorded |E|\t|V|\tB/edge\tadj\teset\tlog\tspilled\tns/edge\tpeak RSS")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%s\t%s\t%s\t%s\t%.0f\t%s\n",
			r.Mode, r.StreamEdges, r.RecordedEdges, r.Vertices, r.BytesPerEdge,
			fmtBytes(int64(r.AdjBytes)), fmtBytes(int64(r.EdgeSetBytes)),
			fmtBytes(int64(r.LogBytes)), fmtBytes(r.SpilledBytes),
			r.NsPerEdge, fmtBytes(r.MaxRSSKB*1024))
	}
	tw.Flush()
	fmt.Fprintln(w, "B/edge is recorded-graph resident bytes per recorded edge (spilled chunks excluded).")
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
