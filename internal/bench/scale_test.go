package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunScale: the sweep must produce one row per dataset × worker count,
// with sane throughput numbers and a workers=1 speedup of exactly 1 (it is
// its own baseline). RunScale also asserts placement identity across the
// sweep internally, so a pass here re-proves bit-identical parallel ingest.
func TestRunScale(t *testing.T) {
	cfg := Config{Scale: 900, Seed: 3, K: 2, WindowSize: 64, Datasets: []string{"provgen"}}
	rep, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ScaleWorkers); len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), want)
	}
	if rep.NumCPU < 1 || rep.GoMaxProcs < 1 || rep.BatchSize != scaleBatchSize {
		t.Fatalf("bad machine context: %+v", rep)
	}
	for i, r := range rep.Rows {
		if r.Workers != ScaleWorkers[i] {
			t.Errorf("row %d: workers %d, want %d", i, r.Workers, ScaleWorkers[i])
		}
		if r.NsPerEdge <= 0 || r.MEdgesPerSec <= 0 || r.SpeedupVsOne <= 0 {
			t.Errorf("row %d: non-positive measurement %+v", i, r)
		}
		if r.Edges <= 0 {
			t.Errorf("row %d: no edges", i)
		}
	}
	if rep.Rows[0].SpeedupVsOne != 1 {
		t.Errorf("workers=1 speedup %v, want exactly 1", rep.Rows[0].SpeedupVsOne)
	}

	var buf bytes.Buffer
	if err := WriteScaleJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var round ScaleReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(round.Rows) != len(rep.Rows) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(round.Rows), len(rep.Rows))
	}

	buf.Reset()
	RenderScale(&buf, rep)
	out := buf.String()
	if !strings.Contains(out, "provgen") || !strings.Contains(out, "speedup") {
		t.Errorf("rendered table missing expected columns:\n%s", out)
	}
}
