package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunHub(t *testing.T) {
	cfg := Config{Scale: 1200, Seed: 3, K: 2, WindowSize: 128}
	rep, err := RunHub(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(HubShapes) {
		t.Fatalf("got %d rows, want one per shape (%d)", len(rep.Rows), len(HubShapes))
	}
	for _, r := range rep.Rows {
		if r.NsPerEdge <= 0 || r.Edges <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Shape, r)
		}
		// The shapes exist to exercise the matching core: a run in which
		// nothing entered the window or no matches were assigned is a
		// silent regression (e.g. the gate rejecting the same-label edge).
		if r.Windowed == 0 || r.Matches == 0 || r.Evictions == 0 {
			t.Errorf("%s: stress not applied: %+v", r.Shape, r)
		}
	}

	var text bytes.Buffer
	RenderHub(&text, rep)
	for _, shape := range HubShapes {
		if !strings.Contains(text.String(), shape) {
			t.Errorf("rendered table missing shape %q:\n%s", shape, text.String())
		}
	}

	var js bytes.Buffer
	if err := WriteHubJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	var back HubReport
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Scale != rep.Scale {
		t.Errorf("JSON round-trip mismatch: %+v vs %+v", back, rep)
	}
}
