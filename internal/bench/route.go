package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"loom"
	"loom/router"
)

// The route experiment measures the placement-serving tier: routing
// decisions per second against a live mirror while ingest runs, replica
// catch-up time as a function of where in the stream the checkpoint was
// taken, and scatter-gather plan fan-out against the naive broadcast.

// RouteMixRow is one cell of the routing-QPS sweep: one producer
// streaming AddBatch into a mirrored partitioner while Routers goroutines
// hammer Mirror.Lookup.
type RouteMixRow struct {
	Dataset         string  `json:"dataset"`
	Routers         int     `json:"routers"`
	Edges           int     `json:"edges"`
	IngestNsPerEdge float64 `json:"ingest_ns_per_edge"`
	// IngestVsSolo is this cell's ingest time relative to the routers=0
	// cell (1.00 = routing is free for the writer).
	IngestVsSolo float64 `json:"ingest_vs_solo"`
	RoutesPerSec float64 `json:"routes_per_sec"`
	RouteNs      float64 `json:"route_ns"`
}

// RouteCatchupRow is one cell of the catch-up sweep: a primary
// checkpointed at Position of the stream, followed read-only by a
// replica that bootstraps and drains the tail.
type RouteCatchupRow struct {
	Dataset  string  `json:"dataset"`
	Position float64 `json:"position"` // checkpoint position, fraction of the stream
	Edges    int     `json:"edges"`
	// TailRecords is the log records past the checkpoint the replica
	// replays to catch up.
	TailRecords int `json:"tail_records"`
	// Placements the replica serves once caught up.
	Placements int     `json:"placements"`
	CatchupMs  float64 `json:"catchup_ms"`
}

// RouteScatterRow summarises scatter-gather planning for one motif on one
// dataset: the average partitions contacted against the broadcast k.
type RouteScatterRow struct {
	Dataset   string  `json:"dataset"`
	Motif     string  `json:"motif"`
	Diameter  int     `json:"diameter"`
	Seeds     int     `json:"seeds"`
	AvgFanout float64 `json:"avg_fanout"`
	Broadcast int     `json:"broadcast"` // the k a naive plan contacts
	// Narrower is the fraction of plans contacting strictly fewer
	// partitions than broadcast.
	Narrower float64 `json:"narrower"`
}

// RouteReport is the machine-readable output of RunRoute.
type RouteReport struct {
	Seed       int64             `json:"seed"`
	K          int               `json:"k"`
	WindowSize int               `json:"window_size"`
	BatchSize  int               `json:"batch_size"`
	Reps       int               `json:"reps"`
	NumCPU     int               `json:"num_cpu"`
	GoMaxProcs int               `json:"gomaxprocs"`
	GoVersion  string            `json:"go_version"`
	Mix        []RouteMixRow     `json:"mix"`
	Catchup    []RouteCatchupRow `json:"catchup"`
	Scatter    []RouteScatterRow `json:"scatter"`
}

// RouteRouterSweep is the concurrent router-reader counts of the QPS sweep.
var RouteRouterSweep = []int{0, 1, 4}

// RouteCatchupSweep is the checkpoint positions of the catch-up sweep.
var RouteCatchupSweep = []float64{0.25, 0.50, 0.75}

const routeBatchSize = 2048
const routeReps = 3

// mirroredStream builds a Loom partitioner with an attached mirror over
// one dataset's stream, ready to ingest.
func mirroredStream(ds string, cfg Config) (*loom.Partitioner, *router.Mirror, []loom.StreamEdge, *loom.Workload, error) {
	stream, err := loom.GenerateDataset(ds, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	stream, err = loom.OrderStream(stream, "bfs", cfg.Seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	wl, err := loom.DatasetWorkload(ds)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	seen := map[int64]bool{}
	for _, e := range stream {
		seen[e.U], seen[e.V] = true, true
	}
	p, err := loom.New(loom.Options{
		Partitions:            cfg.K,
		ExpectedVertices:      len(seen),
		WindowSize:            cfg.WindowSize,
		SupportThreshold:      cfg.Threshold,
		Seed:                  cfg.Seed,
		DisableGraphRecording: true,
	}, wl)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	m := router.New()
	m.Attach(p)
	return p, m, stream, wl, nil
}

// routeMix runs one dataset through AddBatch with routers hammering
// Mirror.Lookup — the full serving path (mirror table + pinned
// generation), not the partitioner's own PartitionOf.
func routeMix(ds string, routers int, cfg Config) (RouteMixRow, error) {
	row := RouteMixRow{Dataset: ds, Routers: routers}
	bestIngest := time.Duration(1<<63 - 1)
	for rep := 0; rep < routeReps; rep++ {
		p, m, stream, _, err := mirroredStream(ds, cfg)
		if err != nil {
			return RouteMixRow{}, err
		}
		row.Edges = len(stream)
		var done atomic.Bool
		var routes atomic.Int64
		var routeNanos atomic.Int64
		var wg sync.WaitGroup
		for r := 0; r < routers; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				n := int64(0)
				for i := r; ; i += 7 {
					m.Lookup(stream[i%len(stream)].U)
					n++
					if n&1023 == 0 && done.Load() {
						break
					}
				}
				routes.Add(n)
				routeNanos.Add(time.Since(start).Nanoseconds())
			}()
		}

		ingestStart := time.Now()
		for i := 0; i < len(stream); i += routeBatchSize {
			end := min(i+routeBatchSize, len(stream))
			if err := p.AddBatch(stream[i:end]); err != nil {
				done.Store(true)
				wg.Wait()
				return RouteMixRow{}, err
			}
		}
		ingest := time.Since(ingestStart)
		done.Store(true)
		wg.Wait()
		p.Flush()
		if err := p.Err(); err != nil {
			return RouteMixRow{}, err
		}
		if ingest < bestIngest {
			bestIngest = ingest
			if n := routes.Load(); n > 0 {
				perRouter := float64(routeNanos.Load()) / float64(routers)
				row.RoutesPerSec = float64(n) * 1e9 / perRouter
				row.RouteNs = float64(routeNanos.Load()) / float64(n)
			}
		}
	}
	row.IngestNsPerEdge = float64(bestIngest.Nanoseconds()) / float64(row.Edges)
	return row, nil
}

// routeCatchup checkpoints a durable primary at position frac of the
// stream, finishes the stream, then times a read-only replica's full
// catch-up: Follow (checkpoint restore + tail replay), mirror attach, and
// polling the log dry.
func routeCatchup(ds string, frac float64, cfg Config) (RouteCatchupRow, error) {
	stream, err := loom.GenerateDataset(ds, cfg.Scale, cfg.Seed)
	if err != nil {
		return RouteCatchupRow{}, err
	}
	stream, err = loom.OrderStream(stream, "bfs", cfg.Seed)
	if err != nil {
		return RouteCatchupRow{}, err
	}
	wl, err := loom.DatasetWorkload(ds)
	if err != nil {
		return RouteCatchupRow{}, err
	}
	seen := map[int64]bool{}
	for _, e := range stream {
		seen[e.U], seen[e.V] = true, true
	}
	tmp, err := os.MkdirTemp("", "loom-bench-route-*")
	if err != nil {
		return RouteCatchupRow{}, err
	}
	defer os.RemoveAll(tmp)

	opt := loom.Options{
		Partitions:            cfg.K,
		ExpectedVertices:      len(seen),
		WindowSize:            cfg.WindowSize,
		SupportThreshold:      cfg.Threshold,
		Seed:                  cfg.Seed,
		DisableGraphRecording: true,
		WALDir:                tmp,
	}
	p, _, err := loom.Open(opt, wl)
	if err != nil {
		return RouteCatchupRow{}, err
	}
	cut := int(frac * float64(len(stream)))
	for i := 0; i < cut; i += routeBatchSize {
		end := min(i+routeBatchSize, cut)
		if err := p.AddBatch(stream[i:end]); err != nil {
			return RouteCatchupRow{}, err
		}
	}
	if _, err := p.Checkpoint(); err != nil {
		return RouteCatchupRow{}, err
	}
	for i := cut; i < len(stream); i += routeBatchSize {
		end := min(i+routeBatchSize, len(stream))
		if err := p.AddBatch(stream[i:end]); err != nil {
			return RouteCatchupRow{}, err
		}
	}
	p.Flush()
	if err := p.Close(); err != nil { // sync: the whole log is on disk
		return RouteCatchupRow{}, err
	}

	row := RouteCatchupRow{Dataset: ds, Position: frac, Edges: len(stream)}
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < routeReps; rep++ {
		start := time.Now()
		f, info, err := loom.Follow(opt, wl)
		if err != nil {
			return RouteCatchupRow{}, err
		}
		m := router.New()
		m.Attach(f.Partitioner())
		for {
			n, err := f.Poll()
			if err != nil {
				return RouteCatchupRow{}, err
			}
			if n == 0 {
				break
			}
		}
		elapsed := time.Since(start)
		if elapsed < best {
			best = elapsed
		}
		row.TailRecords = info.ReplayedRecords
		row.Placements = m.Stats().GenAssigned
		f.Close()
	}
	row.CatchupMs = float64(best.Nanoseconds()) / 1e6
	return row, nil
}

// routeScatter ingests one dataset with a mirrored partitioner and plans
// every registered motif from every seed the mirror sampled a motif
// neighbourhood for, reporting average fan-out against broadcast.
func routeScatter(ds string, cfg Config) ([]RouteScatterRow, error) {
	p, m, stream, wl, err := mirroredStream(ds, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(stream); i += routeBatchSize {
		end := min(i+routeBatchSize, len(stream))
		if err := p.AddBatch(stream[i:end]); err != nil {
			return nil, err
		}
	}
	p.Flush()
	if err := p.Err(); err != nil {
		return nil, err
	}

	pl := router.NewPlanner(m, wl.Queries(), cfg.K)
	var rows []RouteScatterRow
	for _, q := range pl.Motifs() {
		row := RouteScatterRow{Dataset: ds, Motif: q.Name, Diameter: q.Diameter, Broadcast: cfg.K}
		totalFanout, narrower := 0, 0
		seen := map[int64]bool{}
		for _, e := range stream {
			for _, v := range []int64{e.U, e.V} {
				if seen[v] || len(m.Neighbors(v)) == 0 {
					continue
				}
				seen[v] = true
				plan, err := pl.Scatter(v, q.Name)
				if err != nil {
					return nil, err
				}
				if plan.Broadcast {
					continue
				}
				row.Seeds++
				totalFanout += plan.Fanout
				if plan.Fanout < cfg.K {
					narrower++
				}
			}
		}
		if row.Seeds > 0 {
			row.AvgFanout = float64(totalFanout) / float64(row.Seeds)
			row.Narrower = float64(narrower) / float64(row.Seeds)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunRoute measures the serving tier: routing throughput under live
// ingest, replica catch-up vs checkpoint position, and scatter-plan
// fan-out vs broadcast.
func RunRoute(cfg Config) (*RouteReport, error) {
	cfg = cfg.withDefaults()
	rep := &RouteReport{
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		BatchSize:  routeBatchSize,
		Reps:       routeReps,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	for _, ds := range cfg.Datasets {
		var solo float64
		for _, routers := range RouteRouterSweep {
			row, err := routeMix(ds, routers, cfg)
			if err != nil {
				return nil, err
			}
			if routers == 0 {
				solo = row.IngestNsPerEdge
			}
			if solo > 0 {
				row.IngestVsSolo = row.IngestNsPerEdge / solo
			}
			rep.Mix = append(rep.Mix, row)
		}
		for _, frac := range RouteCatchupSweep {
			row, err := routeCatchup(ds, frac, cfg)
			if err != nil {
				return nil, err
			}
			rep.Catchup = append(rep.Catchup, row)
		}
		rows, err := routeScatter(ds, cfg)
		if err != nil {
			return nil, err
		}
		rep.Scatter = append(rep.Scatter, rows...)
	}
	return rep, nil
}

// WriteRouteJSON writes the report as indented JSON.
func WriteRouteJSON(w io.Writer, rep *RouteReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderRoute writes the report as aligned text tables.
func RenderRoute(w io.Writer, rep *RouteReport) {
	fmt.Fprintf(w, "Routing QPS under live ingest: one AddBatch producer, N Mirror.Lookup routers (k %d, window %d, batch %d, %d CPUs)\n",
		rep.K, rep.WindowSize, rep.BatchSize, rep.NumCPU)
	if rep.NumCPU == 1 {
		fmt.Fprintln(w, "NOTE: single-CPU machine — routers and the producer share one core; router cost measures scheduling, not contention")
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\trouters\tingest ns/edge\tvs solo\troutes/s\troute ns")
	for _, r := range rep.Mix {
		if r.Routers == 0 {
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f×\t-\t-\n", r.Dataset, r.Routers, r.IngestNsPerEdge, r.IngestVsSolo)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f×\t%.1fM\t%.1f\n",
			r.Dataset, r.Routers, r.IngestNsPerEdge, r.IngestVsSolo, r.RoutesPerSec/1e6, r.RouteNs)
	}
	tw.Flush()

	fmt.Fprintf(w, "\nReplica catch-up vs checkpoint position (read-only Follow: bootstrap + drain the tail, best of %d)\n", rep.Reps)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tckpt at\ttail records\tplacements\tcatch-up ms")
	for _, r := range rep.Catchup {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%d\t%d\t%.1f\n", r.Dataset, 100*r.Position, r.TailRecords, r.Placements, r.CatchupMs)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nScatter-gather fan-out vs broadcast (plans over the mirror's motif adjacency sample)")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmotif\tdiameter\tseeds\tavg fanout\tbroadcast\tnarrower")
	for _, r := range rep.Scatter {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%d\t%.0f%%\n",
			r.Dataset, r.Motif, r.Diameter, r.Seeds, r.AvgFanout, r.Broadcast, 100*r.Narrower)
	}
	tw.Flush()
}
