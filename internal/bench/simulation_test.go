package bench

import (
	"bytes"
	"strings"
	"testing"

	"loom/internal/simulate"
)

func TestRunSimulation(t *testing.T) {
	cells, err := RunSimulation(smallCfg(), simulate.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Systems) {
		t.Fatalf("cells = %d, want %d", len(cells), len(Systems))
	}
	var hash, loom SimulationCell
	for _, c := range cells {
		switch c.System {
		case "hash":
			hash = c
		case "loom":
			loom = c
		}
		if c.TotalCost <= 0 {
			t.Errorf("%s: non-positive cost", c.System)
		}
	}
	if hash.Speedup != 1 {
		t.Errorf("hash speedup = %v, want 1", hash.Speedup)
	}
	if loom.Speedup <= 1 {
		t.Errorf("loom speedup = %v, want > 1 on provgen bfs", loom.Speedup)
	}
	if loom.RemoteHops >= hash.RemoteHops {
		t.Errorf("loom remote hops %d >= hash %d", loom.RemoteHops, hash.RemoteHops)
	}
	var buf bytes.Buffer
	RenderSimulation(&buf, cells)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("render incomplete")
	}
}
