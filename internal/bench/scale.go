package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"loom"
)

// ScaleRow is one cell of the multi-core ingest scaling sweep: Loom's
// batch-ingest throughput through the public concurrent API at one worker
// count on one dataset.
type ScaleRow struct {
	Dataset string `json:"dataset"`
	// Workers is loom.Options.Workers for this cell: 1 is the exact
	// single-threaded pipeline (the PR 3 path); >1 runs AddBatch's
	// stage-parallel prepare pre-pass plus the parallel eviction bid
	// scatter. Placements are bit-identical across the whole sweep — the
	// harness verifies this on every run.
	Workers      int     `json:"workers"`
	Edges        int     `json:"edges"`
	NsPerEdge    float64 `json:"ns_per_edge"`
	MEdgesPerSec float64 `json:"m_edges_per_sec"`
	SpeedupVsOne float64 `json:"speedup_vs_workers_1"`
}

// ScaleReport is the machine-readable output of RunScale. NumCPU and
// GoMaxProcs record the machine context: the achievable speedup is bounded
// by the cores actually available — on a single-core machine every worker
// count shares one core and the sweep measures pipeline overhead, not
// scaling.
type ScaleReport struct {
	Scale      int        `json:"scale"`
	Seed       int64      `json:"seed"`
	K          int        `json:"k"`
	WindowSize int        `json:"window_size"`
	BatchSize  int        `json:"batch_size"`
	Reps       int        `json:"reps"`
	NumCPU     int        `json:"num_cpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	GoVersion  string     `json:"go_version"`
	Rows       []ScaleRow `json:"rows"`
}

// ScaleWorkers is the worker-count sweep RunScale measures.
var ScaleWorkers = []int{1, 2, 4, 8}

// scaleBatchSize is the AddBatch chunk size of the sweep — larger than the
// perf experiment's 256 because the parallel pipeline's per-batch setup
// (gang spawn, scratch reset) amortises over the batch, and a producer
// opting into multi-core ingest is by definition batching aggressively.
const scaleBatchSize = 2048

// scaleReps is how many full-stream runs each cell takes the minimum over.
const scaleReps = 5

// RunScale measures Loom's public AddBatch ingest throughput per dataset
// across the ScaleWorkers sweep. Methodology matches RunPerf: only the
// ingest section is timed (construction and Flush excluded), the worker
// counts run interleaved so machine drift hits all cells equally, and the
// reported ns/edge is the per-cell minimum over scaleReps rounds. After
// timing, one extra run per worker count re-ingests the stream and the
// harness asserts its placements are identical to the workers=1 run —
// the sweep therefore re-proves the pipeline's bit-identity guarantee on
// every invocation, not just in the golden tests.
func RunScale(cfg Config) (*ScaleReport, error) {
	cfg = cfg.withDefaults()
	rep := &ScaleReport{
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		BatchSize:  scaleBatchSize,
		Reps:       scaleReps,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		stream, err := loom.GenerateDataset(ds, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		stream, err = loom.OrderStream(stream, "bfs", cfg.Seed)
		if err != nil {
			return nil, err
		}
		wl, err := loom.DatasetWorkload(ds)
		if err != nil {
			return nil, err
		}
		opt := loom.Options{
			Partitions:            cfg.K,
			ExpectedVertices:      p.g.NumVertices(),
			WindowSize:            cfg.WindowSize,
			SupportThreshold:      cfg.Threshold,
			Seed:                  cfg.Seed,
			DisableGraphRecording: true,
		}
		run := func(workers int) (*loom.Partitioner, time.Duration, error) {
			o := opt
			o.Workers = workers
			pt, err := loom.New(o, wl)
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			for i := 0; i < len(stream); i += scaleBatchSize {
				end := i + scaleBatchSize
				if end > len(stream) {
					end = len(stream)
				}
				if err := pt.AddBatch(stream[i:end]); err != nil {
					return nil, 0, err
				}
			}
			elapsed := time.Since(start)
			pt.Flush()
			return pt, elapsed, nil
		}

		// Warm-up (also the golden reference for the identity check).
		ref, _, err := run(1)
		if err != nil {
			return nil, err
		}
		want := ref.Assignments()
		best := make(map[int]time.Duration, len(ScaleWorkers))
		for rep := 0; rep < scaleReps; rep++ {
			for _, w := range ScaleWorkers {
				_, elapsed, err := run(w)
				if err != nil {
					return nil, err
				}
				if d, ok := best[w]; !ok || elapsed < d {
					best[w] = elapsed
				}
			}
		}
		// Identity check: every parallel worker count must reproduce the
		// workers=1 placements exactly (the warm-up run above is the
		// workers=1 reference, so that cell needs no re-run).
		for _, w := range ScaleWorkers {
			if w == 1 {
				continue
			}
			pt, _, err := run(w)
			if err != nil {
				return nil, err
			}
			got := pt.Assignments()
			if len(got) != len(want) {
				return nil, fmt.Errorf("bench: %s workers=%d assigned %d vertices, workers=1 assigned %d",
					ds, w, len(got), len(want))
			}
			for v, part := range want {
				if got[v] != part {
					return nil, fmt.Errorf("bench: %s workers=%d placed vertex %d in %d, workers=1 in %d",
						ds, w, v, got[v], part)
				}
			}
		}
		base := float64(best[ScaleWorkers[0]].Nanoseconds())
		for _, w := range ScaleWorkers {
			ns := float64(best[w].Nanoseconds()) / float64(len(stream))
			rep.Rows = append(rep.Rows, ScaleRow{
				Dataset:      ds,
				Workers:      w,
				Edges:        len(stream),
				NsPerEdge:    ns,
				MEdgesPerSec: 1e3 / ns,
				SpeedupVsOne: base / float64(best[w].Nanoseconds()),
			})
		}
	}
	return rep, nil
}

// WriteScaleJSON writes the report as indented JSON.
func WriteScaleJSON(w io.Writer, rep *ScaleReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderScale writes the report as an aligned text table.
func RenderScale(w io.Writer, rep *ScaleReport) {
	fmt.Fprintf(w, "Multi-core ingest scaling (scale %d, k %d, window %d, batch %d, %d reps, %d CPUs)\n",
		rep.Scale, rep.K, rep.WindowSize, rep.BatchSize, rep.Reps, rep.NumCPU)
	if rep.NumCPU == 1 {
		fmt.Fprintln(w, "NOTE: single-CPU machine — all worker counts share one core; speedups measure pipeline overhead, not scaling")
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tworkers\tns/edge\tMedges/s\tspeedup vs 1")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f\t%.2f×\n",
			r.Dataset, r.Workers, r.NsPerEdge, r.MEdgesPerSec, r.SpeedupVsOne)
	}
	tw.Flush()
}
