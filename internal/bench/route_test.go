package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunRoute: the route experiment must produce one mix row per router
// count, one catch-up row per swept checkpoint position, and scatter rows
// for every registered motif, with positive measurements, a routers=0
// cell that is its own ingest baseline, scatter plans that never exceed
// broadcast, and a clean JSON/text round trip. The sweeps are shrunk so
// the test stays fast.
func TestRunRoute(t *testing.T) {
	defer func(r []int, c []float64) { RouteRouterSweep, RouteCatchupSweep = r, c }(RouteRouterSweep, RouteCatchupSweep)
	RouteRouterSweep = []int{0, 2}
	RouteCatchupSweep = []float64{0.5}

	cfg := Config{Scale: 900, Seed: 3, K: 4, WindowSize: 64, Datasets: []string{"dblp"}}
	rep, err := RunRoute(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if want := len(RouteRouterSweep); len(rep.Mix) != want {
		t.Fatalf("got %d mix rows, want %d", len(rep.Mix), want)
	}
	for i, r := range rep.Mix {
		if r.Routers != RouteRouterSweep[i] {
			t.Errorf("mix row %d: routers %d, want %d", i, r.Routers, RouteRouterSweep[i])
		}
		if r.IngestNsPerEdge <= 0 || r.Edges <= 0 || r.IngestVsSolo <= 0 {
			t.Errorf("mix row %d: non-positive measurement %+v", i, r)
		}
		if r.Routers > 0 && (r.RoutesPerSec <= 0 || r.RouteNs <= 0) {
			t.Errorf("mix row %d: routers measured nothing %+v", i, r)
		}
	}
	if rep.Mix[0].IngestVsSolo != 1 {
		t.Errorf("routers=0 ingest vs solo = %v, want exactly 1", rep.Mix[0].IngestVsSolo)
	}

	if want := len(RouteCatchupSweep); len(rep.Catchup) != want {
		t.Fatalf("got %d catch-up rows, want %d", len(rep.Catchup), want)
	}
	for i, r := range rep.Catchup {
		if r.Position != RouteCatchupSweep[i] {
			t.Errorf("catch-up row %d: position %v, want %v", i, r.Position, RouteCatchupSweep[i])
		}
		if r.CatchupMs <= 0 || r.Placements <= 0 || r.TailRecords <= 0 {
			t.Errorf("catch-up row %d: non-positive measurement %+v", i, r)
		}
	}

	if len(rep.Scatter) != 4 { // dblp registers four motif queries
		t.Fatalf("got %d scatter rows, want 4", len(rep.Scatter))
	}
	narrowerSomewhere := false
	for _, r := range rep.Scatter {
		if r.Broadcast != cfg.K {
			t.Errorf("scatter %s: broadcast %d, want k=%d", r.Motif, r.Broadcast, cfg.K)
		}
		if r.Seeds > 0 {
			if r.AvgFanout <= 0 || r.AvgFanout > float64(cfg.K) {
				t.Errorf("scatter %s: average fanout %v outside (0, %d]", r.Motif, r.AvgFanout, cfg.K)
			}
			if r.AvgFanout < float64(cfg.K) {
				narrowerSomewhere = true
			}
		}
	}
	if !narrowerSomewhere {
		t.Error("no motif produced plans narrower than broadcast")
	}

	var buf bytes.Buffer
	if err := WriteRouteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var round RouteReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(round.Mix) != len(rep.Mix) || len(round.Catchup) != len(rep.Catchup) || len(round.Scatter) != len(rep.Scatter) {
		t.Fatal("round-trip lost rows")
	}

	buf.Reset()
	RenderRoute(&buf, rep)
	out := buf.String()
	if !strings.Contains(out, "dblp") || !strings.Contains(out, "catch-up ms") || !strings.Contains(out, "avg fanout") {
		t.Errorf("rendered tables missing expected columns:\n%s", out)
	}
}
