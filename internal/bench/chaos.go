package bench

// The chaos experiment drives the self-healing serving tier through
// scripted WAL faults — a primary killed mid-write, segments pruned out
// from under the follower, a flipped bit in a tailed segment, bursts of
// transient read errors, and a disk that bounces fsyncs — and asserts
// the machine converges every time: the supervised follower returns to
// Healthy, every routed vertex answers identically to an uninterrupted
// reference partition of the same stream, and no probe ever observes a
// wrong (as opposed to merely missing) route. Placements are write-once
// and replay is bit-exact, so any Found answer that disagrees with the
// reference is a real serving bug, not staleness.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"loom"
	"loom/internal/wal"
	"loom/router"
)

// ChaosRow summarises one fault scenario against the supervised
// follower.
type ChaosRow struct {
	Scenario string `json:"scenario"`
	Edges    int    `json:"edges"`

	Polls        uint64   `json:"polls"`
	Transients   uint64   `json:"transients"`
	Gaps         uint64   `json:"gaps"`
	Corruptions  uint64   `json:"corruptions"`
	Rebootstraps uint64   `json:"rebootstraps"`
	Quarantined  []string `json:"quarantined,omitempty"`

	// DowntimeMs is time outside Healthy after first reaching it —
	// staleness exposure, not unavailability (routing serves throughout).
	DowntimeMs float64 `json:"downtime_ms"`
	// HealMs is fault-clear → Healthy and fully converged.
	HealMs float64 `json:"heal_ms"`

	RoutesChecked int64 `json:"routes_checked"`
	WrongRoutes   int64 `json:"wrong_routes"`
	Converged     bool  `json:"converged"`
}

// ChaosDurabilityRow summarises the primary-side breaker scenario: an
// opted-in DegradeToMemory primary rides out a disk that bounces every
// fsync, reports the exact durable watermark, and re-arms on a
// checkpoint once the disk recovers.
type ChaosDurabilityRow struct {
	Edges        int    `json:"edges"`
	WatermarkLSN uint64 `json:"watermark_lsn"` // reported by DurabilityLost
	ExpectedLSN  uint64 `json:"expected_lsn"`  // records durable before the fault
	IngestLive   bool   `json:"ingest_live"`   // ingest kept accepting while degraded
	ReArmed      bool   `json:"rearmed"`       // checkpoint cleared the breaker
	RecoveredOK  bool   `json:"recovered_ok"`  // reopened state matches the reference
}

// ChaosReport is the machine-readable output of RunChaos.
type ChaosReport struct {
	Dataset    string               `json:"dataset"`
	Seed       int64                `json:"seed"`
	K          int                  `json:"k"`
	WindowSize int                  `json:"window_size"`
	Short      bool                 `json:"short"`
	GoVersion  string               `json:"go_version"`
	Scenarios  []ChaosRow           `json:"scenarios"`
	Durability []ChaosDurabilityRow `json:"durability"`
}

// chaosRig is one scenario's world: a primary and a supervised follower
// sharing a fault-scriptable in-memory filesystem, a reference
// assignment from an uninterrupted run of the same stream, and probe
// goroutines routing against the mirror throughout the fault.
type chaosRig struct {
	fs     *wal.MemFS
	wl     *loom.Workload
	stream []loom.StreamEdge
	opt    loom.Options
	ref    map[int64]int

	p   *loom.Partitioner
	m   *router.Mirror
	sup *router.Supervisor

	cancel  context.CancelFunc
	runDone chan error

	checked   atomic.Int64
	wrong     atomic.Int64
	stopProbe chan struct{}
	probeDone chan struct{}
}

const chaosProbes = 2

// newChaosRig generates the stream, runs the uninterrupted reference
// partitioner over it, and opens the primary on a fresh MemFS.
func newChaosRig(ds string, cfg Config, edgesCap, keepCkpts int) (*chaosRig, error) {
	stream, err := loom.GenerateDataset(ds, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	stream, err = loom.OrderStream(stream, "bfs", cfg.Seed)
	if err != nil {
		return nil, err
	}
	if len(stream) > edgesCap {
		stream = stream[:edgesCap]
	}
	wl, err := loom.DatasetWorkload(ds)
	if err != nil {
		return nil, err
	}
	seen := map[int64]bool{}
	for _, e := range stream {
		seen[e.U], seen[e.V] = true, true
	}
	r := &chaosRig{
		fs:     wal.NewMemFS(),
		wl:     wl,
		stream: stream,
		opt: loom.Options{
			Partitions:            cfg.K,
			ExpectedVertices:      len(seen),
			WindowSize:            cfg.WindowSize,
			SupportThreshold:      cfg.Threshold,
			Seed:                  cfg.Seed,
			DisableGraphRecording: true,
			WALDir:                "wal",
			// One edge per record, every record durable on accept: LSNs
			// map 1:1 onto stream positions, which makes kill points and
			// watermarks exact. Small segments force rotation so faults
			// span real segment chains.
			WALSync:            loom.WALSyncAlways,
			WALSegmentBytes:    4096,
			WALKeepCheckpoints: keepCkpts,
		},
	}

	// Reference: the same stream, uninterrupted, no WAL.
	refOpt := r.opt
	refOpt.WALDir = ""
	refOpt.WALSync = 0
	refOpt.WALSegmentBytes = 0
	refOpt.WALKeepCheckpoints = 0
	refp, err := loom.New(refOpt, wl)
	if err != nil {
		return nil, err
	}
	for i := range stream {
		if err := refp.AddBatch(stream[i : i+1]); err != nil {
			return nil, err
		}
	}
	refp.Flush()
	if err := refp.Err(); err != nil {
		return nil, err
	}
	r.ref = make(map[int64]int)
	refp.Snapshot().Each(func(v int64, part int) { r.ref[v] = part })

	r.p, _, err = loom.OpenFS(r.fs, r.opt, wl)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ingest streams stream[from:to] into the primary, one edge per record.
func (r *chaosRig) ingest(from, to int) error {
	for i := from; i < to; i++ {
		if err := r.p.AddBatch(r.stream[i : i+1]); err != nil {
			return err
		}
	}
	return nil
}

// startSupervised boots the mirror + supervisor over the shared FS and
// launches probe goroutines that route random stream vertices against
// the mirror for the scenario's whole lifetime, verifying every Found
// answer against the reference.
func (r *chaosRig) startSupervised() {
	r.m = router.New()
	r.sup = router.NewSupervisor(r.m, func() (*loom.Follower, loom.RecoveryInfo, error) {
		return loom.FollowFS(r.fs, r.opt, r.wl)
	}, router.SupervisorConfig{
		Poll:       2 * time.Millisecond,
		BackoffMin: time.Millisecond,
		BackoffMax: 25 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.runDone = make(chan error, 1)
	go func() { r.runDone <- r.sup.Run(ctx) }()

	r.stopProbe = make(chan struct{})
	r.probeDone = make(chan struct{})
	for pr := 0; pr < chaosProbes; pr++ {
		pr := pr
		go func() {
			defer func() { r.probeDone <- struct{}{} }()
			for i := pr; ; i += 13 {
				select {
				case <-r.stopProbe:
					return
				default:
				}
				v := r.stream[i%len(r.stream)].U
				if d := r.m.Lookup(v); d.Found {
					r.checked.Add(1)
					if want, ok := r.ref[v]; !ok || want != d.Partition {
						r.wrong.Add(1)
					}
				}
			}
		}()
	}
}

// waitHealthy blocks until the supervisor reports Healthy (and cond, if
// non-nil, holds).
func (r *chaosRig) waitHealthy(what string, cond func() bool) error {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if r.sup.State() == router.StateHealthy && (cond == nil || cond()) {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("chaos: timed out waiting for %s (state %s)", what, r.sup.State())
}

// finish flushes the primary, waits for the follower to converge on the
// reference assignment, runs the final route-equality check over every
// reference vertex, and tears the rig down into a ChaosRow.
func (r *chaosRig) finish(row *ChaosRow) error {
	r.p.Flush()
	if err := r.p.Err(); err != nil {
		return fmt.Errorf("chaos: primary: %w", err)
	}
	want := len(r.ref)
	err := r.waitHealthy("convergence", func() bool {
		fp := r.sup.Partitioner()
		return fp != nil && fp.Snapshot().NumAssigned() == want
	})
	if err != nil {
		return err
	}
	// Every reference vertex must route to exactly the reference
	// partition — wrong-vs-stale is the line this harness polices.
	for v, part := range r.ref {
		d := r.m.Lookup(v)
		r.checked.Add(1)
		if !d.Found || d.Partition != part {
			r.wrong.Add(1)
		}
	}
	close(r.stopProbe)
	for i := 0; i < chaosProbes; i++ {
		<-r.probeDone
	}
	r.cancel()
	if err := <-r.runDone; err != nil {
		return fmt.Errorf("chaos: supervisor run: %w", err)
	}

	st := r.sup.Stats()
	row.Edges = len(r.stream)
	row.Polls = st.Polls
	row.Transients = st.Transients
	row.Gaps = st.Gaps
	row.Corruptions = st.Corruptions
	row.Rebootstraps = st.Rebootstraps
	row.Quarantined = st.Quarantined
	row.DowntimeMs = float64(r.sup.Downtime().Nanoseconds()) / 1e6
	row.RoutesChecked = r.checked.Load()
	row.WrongRoutes = r.wrong.Load()
	row.Converged = st.State == "healthy"
	return nil
}

// chaosPrimaryKill tears the primary mid-record (write budget exhausts
// partway through a frame), resolves the crash as a process kill, and
// resumes ingest from a reopened primary at exactly the durable LSN. The
// follower rides through on transient classification alone.
func chaosPrimaryKill(ds string, cfg Config, edgesCap int) (ChaosRow, error) {
	row := ChaosRow{Scenario: "primary-kill"}
	r, err := newChaosRig(ds, cfg, edgesCap, 2)
	if err != nil {
		return row, err
	}
	third := len(r.stream) / 3
	if err := r.ingest(0, third); err != nil {
		return row, err
	}
	if _, err := r.p.Checkpoint(); err != nil {
		return row, err
	}
	r.startSupervised()
	if err := r.waitHealthy("initial catch-up", nil); err != nil {
		return row, err
	}

	// kill -9 partway through the next record's frame.
	r.fs.SetBudget(5)
	if err := r.ingest(third, third+1); err == nil {
		return row, fmt.Errorf("chaos: primary survived its kill")
	}
	healFrom := time.Now()
	r.fs.CrashKeep() // the machine stayed up; written bytes survive

	p2, info, err := loom.OpenFS(r.fs, r.opt, r.wl)
	if err != nil {
		return row, fmt.Errorf("chaos: reopen primary: %w", err)
	}
	r.p = p2
	// One edge per record: the durable LSN is the stream position.
	if err := r.ingest(int(info.LastLSN), len(r.stream)); err != nil {
		return row, err
	}
	if err := r.finish(&row); err != nil {
		return row, err
	}
	row.HealMs = float64(time.Since(healFrom).Nanoseconds()) / 1e6
	if row.Rebootstraps != 0 {
		return row, fmt.Errorf("chaos: primary-kill forced %d re-bootstraps (want 0: the log never gapped)", row.Rebootstraps)
	}
	return row, nil
}

// chaosPruneGap stalls the follower with unlimited read faults while the
// primary checkpoints twice and prunes the segments the follower still
// needs; recovery requires an automatic re-bootstrap.
func chaosPruneGap(ds string, cfg Config, edgesCap int) (ChaosRow, error) {
	row := ChaosRow{Scenario: "prune-gap"}
	r, err := newChaosRig(ds, cfg, edgesCap, 1) // keep 1 checkpoint: prune hard
	if err != nil {
		return row, err
	}
	third := len(r.stream) / 3
	if err := r.ingest(0, third); err != nil {
		return row, err
	}
	if _, err := r.p.Checkpoint(); err != nil {
		return row, err
	}
	r.startSupervised()
	if err := r.waitHealthy("initial catch-up", nil); err != nil {
		return row, err
	}

	r.fs.SetReadFault(".seg", -1, nil)
	if err := r.ingest(third, 2*third); err != nil {
		return row, err
	}
	if _, err := r.p.Checkpoint(); err != nil {
		return row, err
	}
	if err := r.ingest(2*third, len(r.stream)); err != nil {
		return row, err
	}
	if _, err := r.p.Checkpoint(); err != nil {
		return row, err
	}
	r.fs.SetReadFault("", 0, nil)
	healFrom := time.Now()
	if err := r.finish(&row); err != nil {
		return row, err
	}
	row.HealMs = float64(time.Since(healFrom).Nanoseconds()) / 1e6
	if row.Rebootstraps == 0 || row.Gaps == 0 {
		return row, fmt.Errorf("chaos: prune-gap healed without a re-bootstrap (%+v)", row)
	}
	return row, nil
}

// chaosBitFlip rots one bit in a rotated, unconsumed segment while the
// follower is stalled; the supervisor must classify it as corruption,
// quarantine the segment by name, and re-bootstrap from the checkpoint
// written past the damage.
func chaosBitFlip(ds string, cfg Config, edgesCap int) (ChaosRow, error) {
	row := ChaosRow{Scenario: "bit-flip"}
	r, err := newChaosRig(ds, cfg, edgesCap, 8) // retain checkpoints: no pruning
	if err != nil {
		return row, err
	}
	third := len(r.stream) / 3
	if err := r.ingest(0, third); err != nil {
		return row, err
	}
	if _, err := r.p.Checkpoint(); err != nil {
		return row, err
	}
	r.startSupervised()
	if err := r.waitHealthy("initial catch-up", nil); err != nil {
		return row, err
	}

	r.fs.SetReadFault(".seg", -1, nil)
	countSegs := func() []string {
		var segs []string
		for _, n := range r.fs.DumpNames() {
			if strings.HasSuffix(n, ".seg") {
				segs = append(segs, n)
			}
		}
		return segs
	}
	before := len(countSegs())
	i := third
	for ; i < len(r.stream) && len(countSegs()) < before+3; i++ {
		if err := r.ingest(i, i+1); err != nil {
			return row, err
		}
	}
	segs := countSegs()
	if len(segs) < before+3 {
		return row, fmt.Errorf("chaos: stream too small to rotate segments (%d -> %d)", before, len(segs))
	}
	victim := segs[len(segs)-2]
	if err := r.fs.FlipBit(victim, r.fs.Size(victim)-3); err != nil {
		return row, err
	}
	if err := r.ingest(i, len(r.stream)); err != nil {
		return row, err
	}
	// A checkpoint past the damage gives re-bootstrap its clean entry.
	if _, err := r.p.Checkpoint(); err != nil {
		return row, err
	}
	r.fs.SetReadFault("", 0, nil)
	healFrom := time.Now()
	if err := r.finish(&row); err != nil {
		return row, err
	}
	row.HealMs = float64(time.Since(healFrom).Nanoseconds()) / 1e6
	if row.Corruptions == 0 || row.Rebootstraps == 0 || len(row.Quarantined) == 0 {
		return row, fmt.Errorf("chaos: bit-flip not quarantined (%+v)", row)
	}
	return row, nil
}

// chaosTransientReads injects a bounded burst of read errors mid-follow;
// the supervisor must absorb them on the same follower — degraded, then
// healthy, zero re-bootstraps.
func chaosTransientReads(ds string, cfg Config, edgesCap int) (ChaosRow, error) {
	row := ChaosRow{Scenario: "transient-reads"}
	r, err := newChaosRig(ds, cfg, edgesCap, 2)
	if err != nil {
		return row, err
	}
	half := len(r.stream) / 2
	if err := r.ingest(0, half); err != nil {
		return row, err
	}
	if _, err := r.p.Checkpoint(); err != nil {
		return row, err
	}
	r.startSupervised()
	if err := r.waitHealthy("initial catch-up", nil); err != nil {
		return row, err
	}

	r.fs.SetReadFault(".seg", 5, nil)
	healFrom := time.Now()
	if err := r.ingest(half, len(r.stream)); err != nil {
		return row, err
	}
	if err := r.finish(&row); err != nil {
		return row, err
	}
	row.HealMs = float64(time.Since(healFrom).Nanoseconds()) / 1e6
	if row.Transients < 5 {
		return row, fmt.Errorf("chaos: expected >= 5 transient faults, saw %d", row.Transients)
	}
	if row.Rebootstraps != 0 || row.Gaps != 0 || row.Corruptions != 0 {
		return row, fmt.Errorf("chaos: transient burst escalated (%+v)", row)
	}
	return row, nil
}

// chaosDurability runs the primary-side breaker: a DegradeToMemory
// primary whose disk starts bouncing every fsync mid-stream must keep
// accepting ingest, report the exact durable watermark, re-arm via a
// checkpoint once the disk recovers, and reopen bit-identically.
func chaosDurability(ds string, cfg Config, edgesCap int) (ChaosDurabilityRow, error) {
	row := ChaosDurabilityRow{}
	r, err := newChaosRig(ds, cfg, edgesCap, 2)
	if err != nil {
		return row, err
	}
	r.p.Close()
	opt := r.opt
	opt.WALFailure = loom.DegradeToMemory
	opt.WALAppendRetries = -1 // first failure trips the breaker: watermark is exact
	fs := wal.NewMemFS()
	p, _, err := loom.OpenFS(fs, opt, r.wl)
	if err != nil {
		return row, err
	}
	r.fs, r.p = fs, p
	row.Edges = len(r.stream)

	cut := len(r.stream) / 2
	if err := r.ingest(0, cut); err != nil {
		return row, err
	}
	fs.SetSyncFault(".seg", -1, nil)
	if err := r.ingest(cut, 3*len(r.stream)/4); err != nil {
		return row, fmt.Errorf("chaos: degraded primary refused ingest: %w", err)
	}
	row.IngestLive = true
	derr, lsn := p.DurabilityLost()
	if derr == nil {
		return row, fmt.Errorf("chaos: breaker never tripped")
	}
	row.WatermarkLSN = lsn
	row.ExpectedLSN = uint64(cut) // one edge per durable record before the fault
	fs.SetSyncFault("", 0, nil)
	if _, err := p.Checkpoint(); err != nil {
		return row, fmt.Errorf("chaos: re-arming checkpoint: %w", err)
	}
	if derr, _ := p.DurabilityLost(); derr == nil {
		row.ReArmed = true
	}
	if err := r.ingest(3*len(r.stream)/4, len(r.stream)); err != nil {
		return row, err
	}
	p.Flush()
	if err := p.Close(); err != nil {
		return row, err
	}

	p2, _, err := loom.OpenFS(fs, opt, r.wl)
	if err != nil {
		return row, fmt.Errorf("chaos: reopen after re-arm: %w", err)
	}
	defer p2.Close()
	snap := p2.Snapshot()
	ok := snap.NumAssigned() == len(r.ref)
	if ok {
		snap.Each(func(v int64, part int) {
			if r.ref[v] != part {
				ok = false
			}
		})
	}
	row.RecoveredOK = ok
	if !ok {
		return row, fmt.Errorf("chaos: recovered state diverges from reference (%d vs %d placements)",
			snap.NumAssigned(), len(r.ref))
	}
	return row, nil
}

// RunChaos runs every fault scenario. short trims the stream so the
// suite fits a CI smoke slot.
func RunChaos(cfg Config, short bool) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	edgesCap := 4000
	if short {
		edgesCap = 1500
	}
	ds := cfg.Datasets[0]
	rep := &ChaosReport{
		Dataset:    ds,
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		Short:      short,
		GoVersion:  runtime.Version(),
	}
	for _, sc := range []func(string, Config, int) (ChaosRow, error){
		chaosPrimaryKill, chaosPruneGap, chaosBitFlip, chaosTransientReads,
	} {
		row, err := sc(ds, cfg, edgesCap)
		if err != nil {
			return nil, err
		}
		if row.WrongRoutes != 0 {
			return nil, fmt.Errorf("chaos: %s served %d wrong routes of %d checked",
				row.Scenario, row.WrongRoutes, row.RoutesChecked)
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}
	drow, err := chaosDurability(ds, cfg, edgesCap)
	if err != nil {
		return nil, err
	}
	if drow.WatermarkLSN != drow.ExpectedLSN {
		return nil, fmt.Errorf("chaos: durability watermark LSN %d, want exactly %d",
			drow.WatermarkLSN, drow.ExpectedLSN)
	}
	rep.Durability = append(rep.Durability, drow)
	return rep, nil
}

// WriteChaosJSON writes the report as indented JSON.
func WriteChaosJSON(w io.Writer, rep *ChaosReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderChaos writes the report as aligned text tables.
func RenderChaos(w io.Writer, rep *ChaosReport) {
	fmt.Fprintf(w, "Chaos: supervised -follow replica under scripted WAL faults (%s, k %d, window %d%s)\n",
		rep.Dataset, rep.K, rep.WindowSize, map[bool]string{true: ", short", false: ""}[rep.Short])
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tedges\tpolls\ttransients\tgaps\tcorrupt\treboots\tquarantined\tdowntime ms\theal ms\troutes ok/checked")
	for _, r := range rep.Scenarios {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%.1f\t%.1f\t%d/%d\n",
			r.Scenario, r.Edges, r.Polls, r.Transients, r.Gaps, r.Corruptions, r.Rebootstraps,
			strings.Join(r.Quarantined, ","), r.DowntimeMs, r.HealMs,
			r.RoutesChecked-r.WrongRoutes, r.RoutesChecked)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nDurability breaker: DegradeToMemory primary over a disk bouncing every fsync")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "edges\twatermark lsn\texpected\tingest live\tre-armed\trecovered ok")
	for _, d := range rep.Durability {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%v\t%v\n",
			d.Edges, d.WatermarkLSN, d.ExpectedLSN, d.IngestLive, d.ReArmed, d.RecoveredOK)
	}
	tw.Flush()
}
