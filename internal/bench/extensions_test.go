package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExtensions(t *testing.T) {
	cfg := smallCfg()
	cells, err := RunExtensions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 systems per dataset.
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	bySystem := map[string]ExtensionCell{}
	for _, c := range cells {
		bySystem[c.System] = c
		if c.IPT < 0 || c.RelToHash < 0 {
			t.Errorf("%s: bad cell %+v", c.System, c)
		}
	}
	for _, sys := range []string{"loom", "loom+restream", "loom+refine", "loom+restream+refine"} {
		if _, ok := bySystem[sys]; !ok {
			t.Errorf("missing system %s", sys)
		}
	}
	// Restreaming on a fresh random order should not do materially worse
	// than the single pass (allow a modest tolerance: the second order is
	// adversarial too).
	if bySystem["loom+restream"].IPT > bySystem["loom"].IPT*1.10 {
		t.Errorf("restream ipt %.0f much worse than single pass %.0f",
			bySystem["loom+restream"].IPT, bySystem["loom"].IPT)
	}
	var buf bytes.Buffer
	RenderExtensions(&buf, cells)
	if !strings.Contains(buf.String(), "loom+restream+refine") {
		t.Error("render incomplete")
	}
}
