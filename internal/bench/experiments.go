package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/signature"
	"loom/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 1 — datasets
// ---------------------------------------------------------------------------

// Table1Row pairs the paper's reported sizes with this harness's generated
// sizes at the configured scale.
type Table1Row struct {
	Info      dataset.Info
	Vertices  int
	Edges     int
	LabelsGen int
}

// RunTable1 generates each catalogued dataset at harness scale and reports
// its shape next to Table 1's original numbers.
func RunTable1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table1Row
	for _, info := range dataset.Catalog() {
		scale := cfg.Scale
		if info.Name == "lubm-large" {
			scale = cfg.Scale * 4 // the paper's LUBM-4000 is ~50× LUBM-100; 4× keeps the suite fast
		}
		g, err := dataset.Generate(info.Name, scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Info:      info,
			Vertices:  g.NumVertices(),
			Edges:     g.NumEdges(),
			LabelsGen: len(g.Labels()),
		})
	}
	return rows, nil
}

// RenderTable1 writes the dataset inventory.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: graph datasets (paper sizes vs generated at harness scale)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\t|LV|\treal\tpaper |V|\tpaper |E|\tgen |V|\tgen |E|\tgen |E|/|V|\tdescription")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%d\t%d\t%d\t%d\t%.2f\t%s\n",
			r.Info.Name, r.Info.Labels, r.Info.Real, r.Info.PaperVertices, r.Info.PaperEdges,
			r.Vertices, r.Edges, float64(r.Edges)/float64(r.Vertices), r.Info.Description)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig. 4 — signature collision probability
// ---------------------------------------------------------------------------

// Fig4Point is one (tolerance, edges, p) sample.
type Fig4Point struct {
	Tolerance float64
	Edges     int // query graph edges; factors = 3·edges
	P         uint32
	Prob      float64
}

// RunFig4 evaluates the collision-probability model over the paper's grid:
// tolerances 5/10/20%, query sizes 8/12/16 edges (24/36/48 factors), primes
// 2..317.
func RunFig4() []Fig4Point {
	var out []Fig4Point
	for _, tol := range []float64{0.05, 0.10, 0.20} {
		for _, edges := range []int{8, 12, 16} {
			for _, pt := range signature.CollisionCurve(edges, tol, 317) {
				out = append(out, Fig4Point{Tolerance: tol, Edges: edges, P: pt.P, Prob: pt.Prob})
			}
		}
	}
	return out
}

// RenderFig4 writes the three panels at a readable sample of primes,
// highlighting the paper's operating point p = 251.
func RenderFig4(w io.Writer, pts []Fig4Point) {
	samples := map[uint32]bool{2: true, 5: true, 11: true, 23: true, 53: true, 101: true, 151: true, 199: true, 251: true, 317: true}
	byPanel := map[float64]map[int][]Fig4Point{}
	for _, p := range pts {
		if !samples[p.P] {
			continue
		}
		if byPanel[p.Tolerance] == nil {
			byPanel[p.Tolerance] = map[int][]Fig4Point{}
		}
		byPanel[p.Tolerance][p.Edges] = append(byPanel[p.Tolerance][p.Edges], p)
	}
	for _, tol := range []float64{0.05, 0.10, 0.20} {
		fmt.Fprintf(w, "Fig. 4: probability of acceptance, tolerance %.0f%% (factors = 3·|E|)\n", tol*100)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "p\t24 factors\t36 factors\t48 factors\n")
		curves := byPanel[tol]
		for i := range curves[8] {
			fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n",
				curves[8][i].P, curves[8][i].Prob, curves[12][i].Prob, curves[16][i].Prob)
		}
		tw.Flush()
	}
	fmt.Fprintf(w, "operating point: p=251 → P(<5%% collisions) = %.6f (24 factors)\n",
		signature.CollisionProbability(8, 251, 0.05))
}

// ---------------------------------------------------------------------------
// Figs. 7 and 8 — ipt vs Hash
// ---------------------------------------------------------------------------

// RunFig7 produces the Fig. 7 grid: 8-way partitionings under the three
// stream orders.
func RunFig7(cfg Config) ([]IPTCell, error) {
	cfg = cfg.withDefaults()
	return RunIPTGrid(cfg, graph.Orders(), []int{cfg.K})
}

// RunFig8 produces the Fig. 8 grid: k ∈ {2, 8, 32} over breadth-first
// streams.
func RunFig8(cfg Config) ([]IPTCell, error) {
	cfg = cfg.withDefaults()
	return RunIPTGrid(cfg, []graph.StreamOrder{graph.OrderBFS}, []int{2, 8, 32})
}

// ---------------------------------------------------------------------------
// Fig. 9 — window size sweep
// ---------------------------------------------------------------------------

// Fig9Point is Loom's absolute ipt at one window size.
type Fig9Point struct {
	Dataset string
	Order   graph.StreamOrder
	Window  int
	IPT     float64
}

// RunFig9 sweeps Loom's window size over BFS and random streams,
// reproducing the "ipt improves steeply until ~10k then flattens" shape at
// harness scale (window sizes are scaled alongside the graphs).
func RunFig9(cfg Config, windows []int) ([]Fig9Point, error) {
	cfg = cfg.withDefaults()
	if len(windows) == 0 {
		windows = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	}
	var out []Fig9Point
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		for _, order := range []graph.StreamOrder{graph.OrderBFS, graph.OrderRandom} {
			for _, win := range windows {
				c := cfg
				c.WindowSize = win
				rng := rand.New(rand.NewSource(cfg.Seed))
				cell, err := runOne(p, "loom", order, cfg.K, c, rng)
				if err != nil {
					return nil, err
				}
				out = append(out, Fig9Point{Dataset: ds, Order: order, Window: win, IPT: cell.IPT})
			}
		}
	}
	return out, nil
}

// RenderFig9 writes the sweep, one row per (dataset, order).
func RenderFig9(w io.Writer, pts []Fig9Point) {
	fmt.Fprintln(w, "Fig. 9: Loom ipt (absolute) vs window size t")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\torder\twindow\tipt")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\n", p.Dataset, p.Order, p.Window, p.IPT)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Table 2 — partitioning throughput
// ---------------------------------------------------------------------------

// Table2Row reports the time each system takes to partition 10k edges of a
// dataset's stream, the paper's throughput comparison.
type Table2Row struct {
	Dataset string
	System  string
	Per10k  time.Duration
	Edges   int // stream length measured
}

// RunTable2 measures partitioning throughput on breadth-first streams,
// including the lubm-large row (a larger LUBM instance, standing in for
// LUBM-4000 exactly as the paper uses it: a scale demonstration, not an ipt
// measurement).
func RunTable2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	datasets := append(append([]string{}, cfg.Datasets...), "lubm-large")
	var rows []Table2Row
	for _, ds := range datasets {
		scale := cfg.Scale
		if ds == "lubm-large" {
			scale = cfg.Scale * 4
		}
		c := cfg
		c.Scale = scale
		p, err := prepare(ds, c)
		if err != nil {
			return nil, err
		}
		stream := graph.StreamOf(p.g, graph.OrderBFS, nil)
		for _, sys := range Systems {
			s, err := newSystem(sys, p, cfg.K, cfg.WindowSize, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			s.ProcessEdges(stream)
			s.Flush()
			elapsed := time.Since(start)
			per10k := time.Duration(float64(elapsed) * 10_000 / float64(len(stream)))
			rows = append(rows, Table2Row{Dataset: ds, System: sys, Per10k: per10k, Edges: len(stream)})
		}
	}
	return rows, nil
}

// RenderTable2 writes the throughput table in the paper's layout (systems
// as columns).
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: time to partition 10k edges")
	byDS := map[string]map[string]Table2Row{}
	var order []string
	for _, r := range rows {
		if byDS[r.Dataset] == nil {
			byDS[r.Dataset] = map[string]Table2Row{}
			order = append(order, r.Dataset)
		}
		byDS[r.Dataset][r.System] = r
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tldg\tfennel\tloom\thash\tstream edges")
	for _, ds := range order {
		m := byDS[ds]
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\n", ds,
			m["ldg"].Per10k.Round(time.Microsecond),
			m["fennel"].Per10k.Round(time.Microsecond),
			m["loom"].Per10k.Round(time.Microsecond),
			m["hash"].Per10k.Round(time.Microsecond),
			m["loom"].Edges)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// AblationCell reports one Loom variant against full Loom and LDG.
type AblationCell struct {
	Dataset   string
	System    string
	IPT       float64
	RelToHash float64
	Imbalance float64
}

// ablationSystems are full Loom plus its surgically disabled variants (and
// LDG for reference, since Loom without motifs degenerates to it).
var ablationSystems = []string{"hash", "ldg", "loom", "loom-nosupport", "loom-noration", "loom-naive"}

// RunAblation compares the Loom variants on breadth-first streams at K
// partitions.
func RunAblation(cfg Config) ([]AblationCell, error) {
	cfg = cfg.withDefaults()
	var out []AblationCell
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		var hashIPT float64
		for _, sys := range ablationSystems {
			rng := rand.New(rand.NewSource(cfg.Seed))
			cell, err := runOne(p, sys, graph.OrderBFS, cfg.K, cfg, rng)
			if err != nil {
				return nil, err
			}
			if sys == "hash" {
				hashIPT = cell.IPT
			}
			rel := 100.0
			if hashIPT > 0 {
				rel = 100 * cell.IPT / hashIPT
			}
			out = append(out, AblationCell{
				Dataset: ds, System: sys, IPT: cell.IPT, RelToHash: rel, Imbalance: cell.Imbalance,
			})
		}
	}
	return out, nil
}

// RenderAblation writes the ablation table.
func RenderAblation(w io.Writer, cells []AblationCell) {
	fmt.Fprintln(w, "Ablation: Loom variants (bfs streams)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tsystem\tipt\t% of hash\timbalance")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.1f%%\t%.1f%%\n", c.Dataset, c.System, c.IPT, c.RelToHash, 100*c.Imbalance)
	}
	tw.Flush()
}

// ExecuteWorkloadOnce is a convenience for the root benchmarks: it
// partitions the dataset with the named system and returns the workload ipt
// result (used by testing.B wrappers that need a single number).
func ExecuteWorkloadOnce(ds, sys string, order graph.StreamOrder, cfg Config) (workload.Result, error) {
	cfg = cfg.withDefaults()
	p, err := prepare(ds, cfg)
	if err != nil {
		return workload.Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stream := graph.StreamOf(p.g, order, rng)
	s, err := newSystem(sys, p, cfg.K, cfg.WindowSize, cfg.Threshold)
	if err != nil {
		return workload.Result{}, err
	}
	s.ProcessEdges(stream)
	s.Flush()
	return workload.Execute(p.g, s.Assignment(), p.wl, workload.Options{MaxMatchesPerQuery: cfg.MaxMatches})
}
