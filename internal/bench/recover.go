package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	"loom"
)

// The recover experiment measures what durability costs and what recovery
// buys (ISSUE 7): WAL ingest overhead against the no-WAL baseline across
// fsync policies, checkpoint size and write time as the stream grows, and
// recovery time as a function of how much log tail must be replayed past
// the checkpoint.

// RecoverOverheadRow is one cell of the ingest-overhead sweep: the same
// 10k-edge stream ingested with and without a WAL under one fsync policy.
type RecoverOverheadRow struct {
	Policy string `json:"policy"` // "none (baseline)", "batch", "always", "off"
	// Mode is the ingest shape: "edge" (AddEdgeE, one record per edge —
	// the worst case) or "batch-256" (AddBatch, one record per 256 edges).
	Mode      string  `json:"mode"`
	Edges     int     `json:"edges"`
	NsPerEdge float64 `json:"ns_per_edge"`
	// Overhead is NsPerEdge relative to the no-WAL baseline of the same
	// mode (1.00 = durability is free).
	Overhead float64 `json:"overhead_vs_no_wal"`
	// WALBytes is the on-disk log size after the run (0 for the baseline).
	WALBytes int64 `json:"wal_bytes"`
}

// RecoverCheckpointRow is one checkpoint measurement: snapshot size and
// atomic-write time after ingesting Edges edges.
type RecoverCheckpointRow struct {
	Edges   int     `json:"edges"`
	Bytes   int64   `json:"bytes"`
	WriteMs float64 `json:"write_ms"`
}

// RecoverReplayRow is one recovery measurement: time for loom.Open to
// restore a checkpoint and replay TailRecords logged records.
type RecoverReplayRow struct {
	TailRecords int     `json:"tail_records"`
	TailEdges   int     `json:"tail_edges"`
	RecoverMs   float64 `json:"recover_ms"`
}

// RecoverReport is the machine-readable output of RunRecover.
type RecoverReport struct {
	Dataset     string                 `json:"dataset"`
	Seed        int64                  `json:"seed"`
	K           int                    `json:"k"`
	WindowSize  int                    `json:"window_size"`
	Edges       int                    `json:"edges"`
	BatchSize   int                    `json:"batch_size"`
	Reps        int                    `json:"reps"`
	NumCPU      int                    `json:"num_cpu"`
	GoMaxProcs  int                    `json:"gomaxprocs"`
	GoVersion   string                 `json:"go_version"`
	Overhead    []RecoverOverheadRow   `json:"overhead"`
	Checkpoints []RecoverCheckpointRow `json:"checkpoints"`
	Replay      []RecoverReplayRow     `json:"replay"`
}

// recoverBatchSize is the AddBatch chunk size of the batched sweep.
const recoverBatchSize = 256

// recoverReps: each timed cell is the minimum over this many rounds.
const recoverReps = 3

// recoverOverheadReps: the overhead cells are short (a few ms each), so
// the minimum is taken over many rounds to shed scheduler and GC noise —
// on a single-CPU box the run-to-run spread of a 2 ms cell is large.
const recoverOverheadReps = 25

// recoverStream builds the 10k-edge musicbrainz fixture — the same stream
// shape as BenchmarkLoomPartition10k, at the public API.
func recoverStream(cfg Config) ([]loom.StreamEdge, *loom.Workload, int, error) {
	wl, err := loom.DatasetWorkload("musicbrainz")
	if err != nil {
		return nil, nil, 0, err
	}
	edges, err := loom.GenerateDataset("musicbrainz", 4500, cfg.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	stream, err := loom.OrderStream(edges, "bfs", cfg.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(stream) > 10_000 {
		stream = stream[:10_000]
	}
	seen := map[int64]bool{}
	for _, e := range stream {
		seen[e.U], seen[e.V] = true, true
	}
	return stream, wl, len(seen), nil
}

// recoverOptions mirrors BenchmarkLoomPartition10k's paper configuration
// (window 10k, T = 40%) — the overhead ratios are quoted against that
// benchmark, so the baseline must cost what that benchmark costs.
func recoverOptions(cfg Config, n int) loom.Options {
	return loom.Options{
		Partitions:            cfg.K,
		ExpectedVertices:      n,
		WindowSize:            10_000,
		SupportThreshold:      0.40,
		Seed:                  cfg.Seed,
		DisableGraphRecording: true,
	}
}

func dirBytes(dir string) int64 {
	var total int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range ents {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// recoverIngest runs one timed ingest of the stream. A non-nil open
// function supplies the partitioner (durable variants); policy "" means
// the plain in-memory baseline.
func recoverIngest(stream []loom.StreamEdge, wl *loom.Workload, opt loom.Options, perEdge bool) (time.Duration, error) {
	var p *loom.Partitioner
	var err error
	if opt.WALDir == "" {
		p, err = loom.New(opt, wl)
	} else {
		p, _, err = loom.Open(opt, wl)
	}
	if err != nil {
		return 0, err
	}
	// Constructing the partitioner allocates megabytes; where the next GC
	// cycle lands inside a ~2 ms timed window then depends on history, not
	// on the cell being measured. Resetting GC state here gives every cell
	// the same starting line.
	runtime.GC()
	start := time.Now()
	if perEdge {
		for _, e := range stream {
			if err := p.AddEdgeE(e.U, e.LU, e.V, e.LV); err != nil {
				return 0, err
			}
		}
	} else {
		for i := 0; i < len(stream); i += recoverBatchSize {
			end := min(i+recoverBatchSize, len(stream))
			if err := p.AddBatch(stream[i:end]); err != nil {
				return 0, err
			}
		}
	}
	p.Flush()
	elapsed := time.Since(start)
	if err := p.Err(); err != nil {
		return 0, err
	}
	return elapsed, p.Close()
}

// runRecoverOverhead sweeps fsync policies × ingest modes over the fixture.
//
// The cheap cells (baseline, batch, off) are a couple of milliseconds
// each, so machine-condition drift between cells would dwarf the effect
// being measured. Two design rules keep the ratios honest: those cells
// are interleaved rep-by-rep, so the baseline and each WAL policy see the
// same conditions and their minima are comparable; and the fsync-always
// cells — an fsync per record, an IO storm that leaves dirty-writeback
// pressure behind — run last within each mode, with the batched mode
// measured before the per-edge one.
func runRecoverOverhead(stream []loom.StreamEdge, wl *loom.Workload, base loom.Options, tmp string) ([]RecoverOverheadRow, error) {
	policies := []struct {
		name   string
		wal    bool
		policy loom.WALSyncPolicy
	}{
		{"none (baseline)", false, 0},
		{"batch", true, loom.WALSyncBatch},
		{"off", true, loom.WALSyncNone},
		{"always", true, loom.WALSyncAlways},
	}
	var rows []RecoverOverheadRow
	for _, mode := range []string{"batch-256", "edge"} {
		best := make([]time.Duration, len(policies))
		walBytes := make([]int64, len(policies))
		for i := range best {
			best[i] = time.Duration(1<<63 - 1)
		}
		run := func(i, rep int) error {
			pol := policies[i]
			opt := base
			if pol.wal {
				opt.WALDir = filepath.Join(tmp, fmt.Sprintf("%s-%s-%d", mode, pol.name, rep))
				opt.WALSync = pol.policy
			}
			d, err := recoverIngest(stream, wl, opt, mode == "edge")
			if err != nil {
				return fmt.Errorf("bench: recover overhead %s/%s: %w", mode, pol.name, err)
			}
			if d < best[i] {
				best[i] = d
				if pol.wal {
					walBytes[i] = dirBytes(opt.WALDir)
				}
			}
			return nil
		}
		for rep := 0; rep < recoverOverheadReps; rep++ {
			for i, pol := range policies {
				if pol.policy == loom.WALSyncAlways && pol.wal {
					continue
				}
				if err := run(i, rep); err != nil {
					return nil, err
				}
			}
		}
		for rep := 0; rep < recoverReps; rep++ {
			for i, pol := range policies {
				if pol.policy != loom.WALSyncAlways || !pol.wal {
					continue
				}
				if err := run(i, rep); err != nil {
					return nil, err
				}
			}
		}
		baseline := float64(best[0].Nanoseconds()) / float64(len(stream))
		for i, pol := range policies {
			row := RecoverOverheadRow{
				Policy:    pol.name,
				Mode:      mode,
				Edges:     len(stream),
				NsPerEdge: float64(best[i].Nanoseconds()) / float64(len(stream)),
				WALBytes:  walBytes[i],
			}
			if baseline > 0 {
				row.Overhead = row.NsPerEdge / baseline
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runRecoverCheckpoints measures checkpoint size and write time at
// several stream depths.
func runRecoverCheckpoints(stream []loom.StreamEdge, wl *loom.Workload, base loom.Options, tmp string) ([]RecoverCheckpointRow, error) {
	var rows []RecoverCheckpointRow
	for _, frac := range []int{4, 2, 1} { // 25%, 50%, 100%
		n := len(stream) / frac
		opt := base
		opt.WALDir = filepath.Join(tmp, fmt.Sprintf("ckpt-%d", frac))
		p, _, err := loom.Open(opt, wl)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i += recoverBatchSize {
			end := min(i+recoverBatchSize, n)
			if err := p.AddBatch(stream[i:end]); err != nil {
				return nil, err
			}
		}
		var bytes int64
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < recoverReps; rep++ {
			start := time.Now()
			sz, err := p.Checkpoint()
			if d := time.Since(start); d < best {
				best = d
			}
			if err != nil {
				return nil, err
			}
			bytes = sz
		}
		if err := p.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, RecoverCheckpointRow{
			Edges:   n,
			Bytes:   bytes,
			WriteMs: float64(best.Nanoseconds()) / 1e6,
		})
	}
	return rows, nil
}

// runRecoverReplay measures loom.Open's recovery time against the length
// of the log tail past the checkpoint: the full stream is ingested and a
// checkpoint is cut at several depths, leaving ever-longer tails.
func runRecoverReplay(stream []loom.StreamEdge, wl *loom.Workload, base loom.Options, tmp string) ([]RecoverReplayRow, error) {
	var rows []RecoverReplayRow
	for _, ckptAt := range []float64{1.0, 0.75, 0.5, 0.0} {
		cut := int(float64(len(stream)) * ckptAt)
		cut -= cut % recoverBatchSize // align to a batch boundary
		opt := base
		opt.WALDir = filepath.Join(tmp, fmt.Sprintf("replay-%d", cut))
		p, _, err := loom.Open(opt, wl)
		if err != nil {
			return nil, err
		}
		tailRecords := 0
		for i := 0; i < len(stream); i += recoverBatchSize {
			end := min(i+recoverBatchSize, len(stream))
			if err := p.AddBatch(stream[i:end]); err != nil {
				return nil, err
			}
			if end == cut {
				if _, err := p.Checkpoint(); err != nil {
					return nil, err
				}
			}
			if end > cut {
				tailRecords++
			}
		}
		if cut == 0 {
			// No checkpoint at all: recovery replays the entire log.
			tailRecords = (len(stream) + recoverBatchSize - 1) / recoverBatchSize
		}
		if err := p.Close(); err != nil {
			return nil, err
		}

		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < recoverReps; rep++ {
			start := time.Now()
			p2, info, err := loom.Open(opt, wl)
			if d := time.Since(start); d < best {
				best = d
			}
			if err != nil {
				return nil, err
			}
			if info.ReplayedRecords != tailRecords {
				return nil, fmt.Errorf("bench: replay cell ckpt@%g replayed %d records, expected %d",
					ckptAt, info.ReplayedRecords, tailRecords)
			}
			if err := p2.Close(); err != nil {
				return nil, err
			}
		}
		rows = append(rows, RecoverReplayRow{
			TailRecords: tailRecords,
			TailEdges:   len(stream) - cut,
			RecoverMs:   float64(best.Nanoseconds()) / 1e6,
		})
	}
	return rows, nil
}

// RunRecover measures the durability subsystem end to end.
func RunRecover(cfg Config) (*RecoverReport, error) {
	cfg = cfg.withDefaults()
	stream, wl, n, err := recoverStream(cfg)
	if err != nil {
		return nil, err
	}
	base := recoverOptions(cfg, n)
	tmp, err := os.MkdirTemp("", "loom-bench-recover-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	rep := &RecoverReport{
		Dataset:    "musicbrainz",
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: base.WindowSize,
		Edges:      len(stream),
		BatchSize:  recoverBatchSize,
		Reps:       recoverReps,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if rep.Overhead, err = runRecoverOverhead(stream, wl, base, tmp); err != nil {
		return nil, err
	}
	if rep.Checkpoints, err = runRecoverCheckpoints(stream, wl, base, tmp); err != nil {
		return nil, err
	}
	if rep.Replay, err = runRecoverReplay(stream, wl, base, tmp); err != nil {
		return nil, err
	}
	return rep, nil
}

// WriteRecoverJSON writes the report as indented JSON.
func WriteRecoverJSON(w io.Writer, rep *RecoverReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderRecover writes the report as aligned text tables.
func RenderRecover(w io.Writer, rep *RecoverReport) {
	fmt.Fprintf(w, "Durability: WAL ingest overhead on %s 10k (k %d, window %d, %d reps)\n",
		rep.Dataset, rep.K, rep.WindowSize, rep.Reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tfsync\tns/edge\tvs no-WAL\tlog size")
	for _, r := range rep.Overhead {
		size := "-"
		if r.WALBytes > 0 {
			size = fmt.Sprintf("%.1f KiB", float64(r.WALBytes)/1024)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.2f×\t%s\n", r.Mode, r.Policy, r.NsPerEdge, r.Overhead, size)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nCheckpoint cost vs stream depth")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "edges ingested\tcheckpoint bytes\twrite ms")
	for _, r := range rep.Checkpoints {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\n", r.Edges, r.Bytes, r.WriteMs)
	}
	tw.Flush()

	fmt.Fprintln(w, "\nRecovery time vs log tail length (checkpoint + replay)")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tail records\ttail edges\trecover ms")
	for _, r := range rep.Replay {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\n", r.TailRecords, r.TailEdges, r.RecoverMs)
	}
	tw.Flush()
}
