package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"loom/internal/graph"
	"loom/internal/simulate"
)

// The simulation experiment turns ipt into the latency-flavoured number the
// paper's motivation promises: with a local/remote cost model (default
// 1:1000), how many times cheaper does each partitioner make the workload
// than Hash, and how evenly is the query-serving load spread?

// SimulationCell is one system's simulated execution on one dataset.
type SimulationCell struct {
	Dataset       string
	System        string
	RemoteHops    int
	LocalHops     int
	TotalCost     float64
	Speedup       float64 // vs Hash
	LoadImbalance float64
}

// RunSimulation partitions each dataset's BFS stream with every system and
// simulates distributed workload execution.
func RunSimulation(cfg Config, model simulate.CostModel) ([]SimulationCell, error) {
	cfg = cfg.withDefaults()
	var out []SimulationCell
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		stream := graph.StreamOf(p.g, graph.OrderBFS, rand.New(rand.NewSource(cfg.Seed)))
		var hashRes simulate.Result
		for _, sys := range Systems {
			s, err := newSystem(sys, p, cfg.K, cfg.WindowSize, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			s.ProcessEdges(stream)
			s.Flush()
			res, err := simulate.Run(p.g, s.Assignment(), p.wl, model, cfg.MaxMatches)
			if err != nil {
				return nil, err
			}
			if sys == "hash" {
				hashRes = res
			}
			out = append(out, SimulationCell{
				Dataset:       ds,
				System:        sys,
				RemoteHops:    res.RemoteHops,
				LocalHops:     res.LocalHops,
				TotalCost:     res.TotalCost,
				Speedup:       simulate.Speedup(res, hashRes),
				LoadImbalance: res.LoadImbalance(),
			})
		}
	}
	return out, nil
}

// RenderMotifs prints the TPSTry++ summary for every configured dataset's
// workload at the harness threshold — the Fig. 2-style view of what Loom
// will treat as motifs (a workload-engineering aid).
func RenderMotifs(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "workload %q:\n", ds)
		if err := p.trie.Summary(w, cfg.Threshold); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderSimulation writes the simulation table.
func RenderSimulation(w io.Writer, cells []SimulationCell) {
	fmt.Fprintln(w, "Simulated distributed execution (local:remote = 1:1000, bfs streams)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tsystem\tremote hops\tlocal hops\tcost\tspeedup vs hash\tserve-load imbalance")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.0f\t%.2fx\t%.1f%%\n",
			c.Dataset, c.System, c.RemoteHops, c.LocalHops, c.TotalCost, c.Speedup, 100*c.LoadImbalance)
	}
	tw.Flush()
}
