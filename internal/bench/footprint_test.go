package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFootprintSmoke runs a small sweep in both modes and sanity-checks
// the acceptance surface at CI scale: recorded-graph storage within the
// 16 B/edge budget, spill mode actually spilling, JSON round-trip.
func TestFootprintSmoke(t *testing.T) {
	// 200k stream edges records ~9k edges at the sweep's density — enough
	// to freeze (and in spill mode, write) at least one edge-log chunk,
	// which the spill assertions below depend on.
	edges := int64(200_000)
	rep, err := RunFootprint(Config{Seed: 42, K: 4, WindowSize: 512}, []int64{edges}, nil)
	if err != nil {
		t.Fatalf("RunFootprint: %v", err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (memory + spill)", len(rep.Rows))
	}
	var mem, spill FootprintRow
	for _, r := range rep.Rows {
		switch r.Mode {
		case "memory":
			mem = r
		case "spill":
			spill = r
		}
	}
	if mem.RecordedEdges == 0 || spill.RecordedEdges == 0 {
		t.Fatalf("cells recorded no edges: %+v / %+v", mem, spill)
	}
	if mem.RecordedEdges != spill.RecordedEdges || mem.Vertices != spill.Vertices {
		t.Fatalf("modes disagree on the recorded graph: memory |V|=%d |E|=%d, spill |V|=%d |E|=%d",
			mem.Vertices, mem.RecordedEdges, spill.Vertices, spill.RecordedEdges)
	}
	// The ≤16 B/edge budget is an at-scale amortised bound (fixed costs
	// like the vertex table wash out as |E| grows); at smoke scale allow
	// generous headroom while still catching regressions to the old
	// slice-of-uint64 representation (~50+ B/edge).
	if mem.BytesPerEdge > 40 {
		t.Fatalf("memory mode costs %.1f B/recorded-edge at smoke scale", mem.BytesPerEdge)
	}
	if spill.SpilledBytes == 0 {
		t.Fatal("spill mode wrote no chunk bytes")
	}
	if spill.LogBytes >= mem.LogBytes {
		t.Fatalf("spill mode resident log (%d B) not smaller than memory mode (%d B)",
			spill.LogBytes, mem.LogBytes)
	}

	var buf bytes.Buffer
	if err := WriteFootprintJSON(&buf, rep); err != nil {
		t.Fatalf("WriteFootprintJSON: %v", err)
	}
	var back FootprintReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(back.Rows), len(rep.Rows))
	}
	RenderFootprint(&buf, rep) // must not panic
}

func TestParseEdgeCounts(t *testing.T) {
	got, err := ParseEdgeCounts("1e6, 2500000,1e8")
	if err != nil {
		t.Fatalf("ParseEdgeCounts: %v", err)
	}
	want := []int64{1_000_000, 2_500_000, 100_000_000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := ParseEdgeCounts("zero"); err == nil {
		t.Fatal("accepted garbage edge count")
	}
	if _, err := ParseEdgeCounts("0"); err == nil {
		t.Fatal("accepted zero edge count")
	}
}
