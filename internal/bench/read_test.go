package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunRead: the read experiment must produce one latency row per swept
// vertex count and one mix row per reader count, with positive measurements,
// a readers=0 cell that is its own ingest baseline, and a clean JSON/text
// round trip. The sweeps are shrunk so the test stays fast.
func TestRunRead(t *testing.T) {
	defer func(v []int, r []int) { ReadVertexSweep, ReadReaderSweep = v, r }(ReadVertexSweep, ReadReaderSweep)
	ReadVertexSweep = []int{1 << 12, 1 << 14}
	ReadReaderSweep = []int{0, 2}

	cfg := Config{Scale: 900, Seed: 3, K: 2, WindowSize: 64, Datasets: []string{"provgen"}}
	rep, err := RunRead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Latency) != len(ReadVertexSweep) {
		t.Fatalf("got %d latency rows, want %d", len(rep.Latency), len(ReadVertexSweep))
	}
	for i, r := range rep.Latency {
		if r.Vertices != ReadVertexSweep[i] {
			t.Errorf("latency row %d: vertices %d, want %d", i, r.Vertices, ReadVertexSweep[i])
		}
		if r.SnapshotNs <= 0 || r.CloneNs <= 0 || r.Speedup <= 0 {
			t.Errorf("latency row %d: non-positive measurement %+v", i, r)
		}
	}
	// The epoch grab must not be slower than the O(V) clone at any size —
	// even a noisy single-CPU runner clears that bar.
	for _, r := range rep.Latency {
		if r.SnapshotNs > r.CloneNs {
			t.Errorf("V=%d: Snapshot (%v ns) slower than O(V) clone (%v ns)",
				r.Vertices, r.SnapshotNs, r.CloneNs)
		}
	}

	if want := len(ReadReaderSweep); len(rep.Mix) != want {
		t.Fatalf("got %d mix rows, want %d", len(rep.Mix), want)
	}
	for i, r := range rep.Mix {
		if r.Readers != ReadReaderSweep[i] {
			t.Errorf("mix row %d: readers %d, want %d", i, r.Readers, ReadReaderSweep[i])
		}
		if r.IngestNsPerEdge <= 0 || r.Edges <= 0 || r.IngestVsSolo <= 0 {
			t.Errorf("mix row %d: non-positive measurement %+v", i, r)
		}
		if r.Readers > 0 && (r.ReadsPerSec <= 0 || r.ReadNs <= 0) {
			t.Errorf("mix row %d: readers measured nothing %+v", i, r)
		}
	}
	if rep.Mix[0].IngestVsSolo != 1 {
		t.Errorf("readers=0 ingest vs solo = %v, want exactly 1", rep.Mix[0].IngestVsSolo)
	}

	var buf bytes.Buffer
	if err := WriteReadJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var round ReadReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(round.Latency) != len(rep.Latency) || len(round.Mix) != len(rep.Mix) {
		t.Fatal("round-trip lost rows")
	}

	buf.Reset()
	RenderRead(&buf, rep)
	out := buf.String()
	if !strings.Contains(out, "provgen") || !strings.Contains(out, "speedup") || !strings.Contains(out, "vs solo") {
		t.Errorf("rendered tables missing expected columns:\n%s", out)
	}
}
