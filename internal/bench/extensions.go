package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"loom/internal/core"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/refine"
	"loom/internal/workload"
)

// The extensions experiment evaluates the two §6 future-work integrations
// implemented by this library on the paper's hardest setting — the
// pseudo-adversarial random stream order:
//
//   - restreaming (a second Loom pass with the first pass's assignment as
//     prior), after Nishimura & Ugander [22];
//   - offline TAPER-style refinement (internal/refine), after Firth &
//     Missier [8].

// ExtensionCell is one row of the extensions table.
type ExtensionCell struct {
	Dataset   string
	System    string // loom, loom+restream, loom+refine, loom+restream+refine
	IPT       float64
	RelToHash float64
	Imbalance float64
}

// RunExtensions runs Loom, Loom with a restream pass, and Loom with offline
// refinement over random-order streams.
func RunExtensions(cfg Config) ([]ExtensionCell, error) {
	cfg = cfg.withDefaults()
	var out []ExtensionCell
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		stream := graph.StreamOf(p.g, graph.OrderRandom, rand.New(rand.NewSource(cfg.Seed)))
		n := p.g.NumVertices()
		capC := partition.CapacityFor(n, cfg.K, partition.DefaultImbalance)

		eval := func(a *partition.Assignment) (float64, float64, error) {
			res, err := workload.Execute(p.g, a, p.wl, workload.Options{MaxMatchesPerQuery: cfg.MaxMatches})
			if err != nil {
				return 0, 0, err
			}
			return res.IPT, partition.Imbalance(a), nil
		}

		// Hash baseline for the relative scale.
		hash := partition.NewHash(cfg.K, capC)
		hash.ProcessEdges(stream)
		hashIPT, _, err := eval(hash.Assignment())
		if err != nil {
			return nil, err
		}
		rel := func(ipt float64) float64 {
			if hashIPT == 0 {
				return 100
			}
			return 100 * ipt / hashIPT
		}

		runLoom := func(s graph.Stream, prior *partition.Assignment) (*partition.Assignment, error) {
			lm, err := core.New(core.Config{
				K: cfg.K, Capacity: capC, WindowSize: cfg.WindowSize,
				SupportThreshold: cfg.Threshold, Prior: prior,
			}, p.trie)
			if err != nil {
				return nil, err
			}
			lm.ProcessEdges(s)
			lm.Flush()
			return lm.Assignment(), nil
		}

		// Pass 1: plain Loom.
		a1, err := runLoom(stream, nil)
		if err != nil {
			return nil, err
		}
		ipt1, imb1, err := eval(a1)
		if err != nil {
			return nil, err
		}
		out = append(out, ExtensionCell{ds, "loom", ipt1, rel(ipt1), imb1})

		// Pass 2: restream with the pass-1 assignment as prior. The
		// replay arrives in a different random order — the realistic
		// restreaming setting (replaying the identical sequence through
		// identical heuristics is a fixed point).
		stream2 := graph.StreamOf(p.g, graph.OrderRandom, rand.New(rand.NewSource(cfg.Seed+1)))
		a2, err := runLoom(stream2, a1)
		if err != nil {
			return nil, err
		}
		ipt2, imb2, err := eval(a2)
		if err != nil {
			return nil, err
		}
		out = append(out, ExtensionCell{ds, "loom+restream", ipt2, rel(ipt2), imb2})

		// Offline refinement of pass 1.
		r1, _, err := refine.Refine(p.g, a1, p.trie, refine.Config{Capacity: capC})
		if err != nil {
			return nil, err
		}
		iptR, imbR, err := eval(r1)
		if err != nil {
			return nil, err
		}
		out = append(out, ExtensionCell{ds, "loom+refine", iptR, rel(iptR), imbR})

		// Restream + refinement.
		r2, _, err := refine.Refine(p.g, a2, p.trie, refine.Config{Capacity: capC})
		if err != nil {
			return nil, err
		}
		iptRR, imbRR, err := eval(r2)
		if err != nil {
			return nil, err
		}
		out = append(out, ExtensionCell{ds, "loom+restream+refine", iptRR, rel(iptRR), imbRR})
	}
	return out, nil
}

// RenderExtensions writes the extensions table.
func RenderExtensions(w io.Writer, cells []ExtensionCell) {
	fmt.Fprintln(w, "Extensions (§6 future work): restreaming and offline refinement, random-order streams")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tsystem\tipt\t% of hash\timbalance")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.1f%%\t%.1f%%\n", c.Dataset, c.System, c.IPT, c.RelToHash, 100*c.Imbalance)
	}
	tw.Flush()
}
