// Package bench is the experiment harness that regenerates every table and
// figure of the Loom paper's evaluation (§5):
//
//	Table 1 — dataset inventory (sizes, heterogeneity)
//	Fig. 4  — probability of acceptable factor-collision rates vs prime p
//	Fig. 7  — ipt as % of Hash, 8-way partitionings, three stream orders
//	Fig. 8  — ipt as % of Hash across k ∈ {2, 8, 32}, breadth-first streams
//	Table 2 — milliseconds to partition 10k edges, per system × dataset
//	Fig. 9  — ipt versus Loom window size t
//
// plus ablation experiments for the design choices DESIGN.md calls out
// (equal opportunism vs naive greedy, support weighting, rationing).
//
// Experiments return plain structs and render aligned text tables, so the
// same code serves cmd/loom-bench and the root testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"
	"time"

	"loom/internal/core"
	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/signature"
	"loom/internal/tpstry"
	"loom/internal/workload"
)

// Config holds the experiment-wide knobs. Zero values take defaults.
type Config struct {
	// Scale is the per-dataset target vertex count. The paper's graphs
	// are millions of vertices; the harness defaults to 12_000 so the
	// whole suite runs in minutes on a laptop while preserving every
	// relative comparison (results are reported relative to Hash exactly
	// as the paper does).
	Scale int
	// Seed drives dataset generation, stream shuffling and signatures.
	Seed int64
	// K is the partition count for Fig. 7/9/Table 2 (default 8).
	K int
	// WindowSize is Loom's window t (default 2048 at harness scale; the
	// paper uses 10k at million-edge scale — Fig. 9 sweeps this).
	WindowSize int
	// Threshold is the motif support threshold T (default 0.4).
	Threshold float64
	// MaxMatches caps per-query match enumeration (default 300_000).
	MaxMatches int
	// Datasets selects which datasets to run (default: the four used in
	// Figs. 7 and 8 — dblp, provgen, musicbrainz, lubm).
	Datasets []string
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 12_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.WindowSize == 0 {
		c.WindowSize = 2048
	}
	if c.Threshold == 0 {
		c.Threshold = 0.40
	}
	if c.MaxMatches == 0 {
		c.MaxMatches = 300_000
	}
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"dblp", "provgen", "musicbrainz", "lubm"}
	}
	return c
}

// Systems evaluated in Figs. 7 and 8, in the paper's presentation order.
var Systems = []string{"hash", "ldg", "fennel", "loom"}

// prepared bundles a generated dataset with its workload and trie.
type prepared struct {
	name   string
	g      *graph.Graph
	wl     workload.Workload
	trie   *tpstry.Trie
	scheme *signature.Scheme
}

func prepare(name string, cfg Config) (*prepared, error) {
	g, err := dataset.Generate(name, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	wl, err := workload.ForDataset(name)
	if err != nil {
		return nil, err
	}
	scheme := signature.NewScheme(signature.DefaultP, cfg.Seed)
	scheme.RegisterLabels(dataset.DatasetLabels(name))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		return nil, err
	}
	return &prepared{name: name, g: g, wl: wl, trie: trie, scheme: scheme}, nil
}

// newSystem constructs one named partitioner for a prepared dataset.
func newSystem(name string, p *prepared, k, windowSize int, threshold float64) (partition.Streamer, error) {
	n := p.g.NumVertices()
	m := p.g.NumEdges()
	capC := partition.CapacityFor(n, k, partition.DefaultImbalance)
	switch name {
	case "hash":
		return partition.NewHash(k, capC), nil
	case "ldg":
		return partition.NewLDG(k, capC), nil
	case "fennel":
		return partition.NewFennel(k, n, m), nil
	case "loom":
		return core.New(core.Config{
			K:                k,
			Capacity:         capC,
			WindowSize:       windowSize,
			SupportThreshold: threshold,
		}, p.trie)
	case "loom-naive":
		return core.New(core.Config{
			K: k, Capacity: capC, WindowSize: windowSize,
			SupportThreshold: threshold, Mode: core.ModeNaiveGreedy,
		}, p.trie)
	case "loom-noration":
		return core.New(core.Config{
			K: k, Capacity: capC, WindowSize: windowSize,
			SupportThreshold: threshold, DisableRation: true,
		}, p.trie)
	case "loom-nosupport":
		return core.New(core.Config{
			K: k, Capacity: capC, WindowSize: windowSize,
			SupportThreshold: threshold, DisableSupportWeight: true,
		}, p.trie)
	default:
		return nil, fmt.Errorf("bench: unknown system %q", name)
	}
}

// IPTCell is one measurement of one system on one (dataset, order, k)
// configuration.
type IPTCell struct {
	Dataset   string
	Order     graph.StreamOrder
	K         int
	System    string
	IPT       float64
	RelToHash float64 // percent; 100 for hash itself
	EdgeCut   int
	Imbalance float64
	Partition time.Duration // wall time to partition the stream
}

// runOne partitions the prepared dataset's stream with one system and
// executes the workload.
func runOne(p *prepared, sys string, order graph.StreamOrder, k int, cfg Config, rng *rand.Rand) (IPTCell, error) {
	stream := graph.StreamOf(p.g, order, rng)
	s, err := newSystem(sys, p, k, cfg.WindowSize, cfg.Threshold)
	if err != nil {
		return IPTCell{}, err
	}
	start := time.Now()
	s.ProcessEdges(stream)
	s.Flush()
	elapsed := time.Since(start)

	a := s.Assignment()
	res, err := workload.Execute(p.g, a, p.wl, workload.Options{MaxMatchesPerQuery: cfg.MaxMatches})
	if err != nil {
		return IPTCell{}, err
	}
	return IPTCell{
		Dataset:   p.name,
		Order:     order,
		K:         k,
		System:    sys,
		IPT:       res.IPT,
		EdgeCut:   partition.EdgeCut(p.g, a),
		Imbalance: partition.Imbalance(a),
		Partition: elapsed,
	}, nil
}

// RunIPTGrid evaluates all systems over the cross product of datasets,
// orders and ks, filling RelToHash per (dataset, order, k) group. It is the
// engine behind Figs. 7 and 8.
func RunIPTGrid(cfg Config, orders []graph.StreamOrder, ks []int) ([]IPTCell, error) {
	cfg = cfg.withDefaults()
	var cells []IPTCell
	for _, ds := range cfg.Datasets {
		p, err := prepare(ds, cfg)
		if err != nil {
			return nil, err
		}
		for _, order := range orders {
			for _, k := range ks {
				group := make([]IPTCell, 0, len(Systems))
				for _, sys := range Systems {
					// A fixed per-combination seed keeps the random
					// order identical across systems: every partitioner
					// sees the same stream.
					rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*1001))
					cell, err := runOne(p, sys, order, k, cfg, rng)
					if err != nil {
						return nil, err
					}
					group = append(group, cell)
				}
				var hashIPT float64
				for _, c := range group {
					if c.System == "hash" {
						hashIPT = c.IPT
					}
				}
				for i := range group {
					if hashIPT > 0 {
						group[i].RelToHash = 100 * group[i].IPT / hashIPT
					} else {
						group[i].RelToHash = 100
					}
				}
				cells = append(cells, group...)
			}
		}
	}
	return cells, nil
}

// RenderIPTCells writes a paper-style table: one row per (dataset, order,
// k, system) with ipt, % of Hash, edge-cut and imbalance.
func RenderIPTCells(w io.Writer, title string, cells []IPTCell) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\torder\tk\tsystem\tipt\t% of hash\tedge-cut\timbalance\tpartition time")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%.0f\t%.1f%%\t%d\t%.1f%%\t%s\n",
			c.Dataset, c.Order, c.K, c.System, c.IPT, c.RelToHash, c.EdgeCut,
			100*c.Imbalance, c.Partition.Round(time.Millisecond))
	}
	tw.Flush()
}

// SummarizeLoomVsFennel returns the median % reduction of Loom's ipt versus
// Fennel's across groups, the paper's headline "20−25% median" (§5.2).
func SummarizeLoomVsFennel(cells []IPTCell) float64 {
	type key struct {
		ds    string
		order graph.StreamOrder
		k     int
	}
	loom := map[key]float64{}
	fennel := map[key]float64{}
	for _, c := range cells {
		k := key{c.Dataset, c.Order, c.K}
		switch c.System {
		case "loom":
			loom[k] = c.IPT
		case "fennel":
			fennel[k] = c.IPT
		}
	}
	var reductions []float64
	for k, f := range fennel {
		if l, ok := loom[k]; ok && f > 0 {
			reductions = append(reductions, 100*(f-l)/f)
		}
	}
	if len(reductions) == 0 {
		return 0
	}
	sort.Float64s(reductions)
	return reductions[len(reductions)/2]
}
