package bench

import (
	"bytes"
	"strings"
	"testing"

	"loom/internal/graph"
)

// smallCfg keeps unit tests fast; the full-scale runs live in the root
// bench_test.go and cmd/loom-bench.
func smallCfg() Config {
	return Config{
		Scale:      2500,
		Seed:       7,
		K:          4,
		WindowSize: 256,
		MaxMatches: 20_000,
		Datasets:   []string{"provgen"},
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(Config{Scale: 1500, Datasets: []string{"dblp"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.LabelsGen != r.Info.Labels {
			t.Errorf("%s: generated %d labels, catalogue says %d", r.Info.Name, r.LabelsGen, r.Info.Labels)
		}
		if r.Vertices == 0 || r.Edges == 0 {
			t.Errorf("%s: empty graph", r.Info.Name)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "musicbrainz") {
		t.Error("render missing dataset row")
	}
}

func TestRunFig4(t *testing.T) {
	pts := RunFig4()
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// 3 tolerances × 3 sizes × #primes(317)=66.
	if len(pts) != 3*3*66 {
		t.Errorf("points = %d, want %d", len(pts), 3*3*66)
	}
	var buf bytes.Buffer
	RenderFig4(&buf, pts)
	out := buf.String()
	if !strings.Contains(out, "p=251") || !strings.Contains(out, "tolerance 5%") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestRunIPTGridShape(t *testing.T) {
	cells, err := RunIPTGrid(smallCfg(), []graph.StreamOrder{graph.OrderBFS}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Systems) {
		t.Fatalf("cells = %d, want %d", len(cells), len(Systems))
	}
	var hash, loom *IPTCell
	for i := range cells {
		c := &cells[i]
		if c.IPT < 0 {
			t.Errorf("%s: negative ipt", c.System)
		}
		switch c.System {
		case "hash":
			hash = c
		case "loom":
			loom = c
		}
	}
	if hash == nil || loom == nil {
		t.Fatal("missing systems")
	}
	if hash.RelToHash != 100 {
		t.Errorf("hash relative = %v, want 100", hash.RelToHash)
	}
	// The central claim at small scale: Loom no worse than Hash, and
	// (robustly, on provgen BFS) clearly better.
	if loom.RelToHash > 75 {
		t.Errorf("loom relative = %.1f%%, want < 75%%", loom.RelToHash)
	}
	var buf bytes.Buffer
	RenderIPTCells(&buf, "test", cells)
	if !strings.Contains(buf.String(), "loom") {
		t.Error("render missing loom row")
	}
}

func TestSummarizeLoomVsFennel(t *testing.T) {
	cells := []IPTCell{
		{Dataset: "d", Order: graph.OrderBFS, K: 8, System: "fennel", IPT: 100},
		{Dataset: "d", Order: graph.OrderBFS, K: 8, System: "loom", IPT: 80},
		{Dataset: "e", Order: graph.OrderBFS, K: 8, System: "fennel", IPT: 200},
		{Dataset: "e", Order: graph.OrderBFS, K: 8, System: "loom", IPT: 120},
	}
	med := SummarizeLoomVsFennel(cells)
	// reductions: 20% and 40% → median (upper) = 40 with len/2 index 1.
	if med != 40 {
		t.Errorf("median = %v, want 40", med)
	}
	if got := SummarizeLoomVsFennel(nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}

func TestRunFig9SweepImprovesWithWindow(t *testing.T) {
	cfg := smallCfg()
	pts, err := RunFig9(cfg, []int{16, 512})
	if err != nil {
		t.Fatal(err)
	}
	// Datasets × orders × windows.
	if len(pts) != 1*2*2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger windows should not be (much) worse on the BFS stream.
	var small, large float64
	for _, p := range pts {
		if p.Order != graph.OrderBFS {
			continue
		}
		switch p.Window {
		case 16:
			small = p.IPT
		case 512:
			large = p.IPT
		}
	}
	if large > small*1.15 {
		t.Errorf("ipt grew with window: %v (t=16) → %v (t=512)", small, large)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, pts)
	if !strings.Contains(buf.String(), "window") {
		t.Error("render incomplete")
	}
}

func TestRunTable2(t *testing.T) {
	cfg := smallCfg()
	cfg.Scale = 1200
	rows, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// (1 dataset + lubm-large) × 4 systems.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Per10k <= 0 {
			t.Errorf("%s/%s: non-positive duration", r.Dataset, r.System)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "lubm-large") {
		t.Error("render missing lubm-large")
	}
}

func TestRunAblation(t *testing.T) {
	cfg := smallCfg()
	cells, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(ablationSystems) {
		t.Fatalf("cells = %d, want %d", len(cells), len(ablationSystems))
	}
	systems := map[string]AblationCell{}
	for _, c := range cells {
		systems[c.System] = c
	}
	// Full Loom should not lose to the naive strawman on balance: the
	// naive mode ignores balance entirely.
	if systems["loom"].Imbalance > systems["loom-naive"].Imbalance+0.05 {
		t.Errorf("loom imbalance %.3f worse than naive %.3f",
			systems["loom"].Imbalance, systems["loom-naive"].Imbalance)
	}
	var buf bytes.Buffer
	RenderAblation(&buf, cells)
	if !strings.Contains(buf.String(), "loom-naive") {
		t.Error("render missing variants")
	}
}

func TestExecuteWorkloadOnce(t *testing.T) {
	cfg := smallCfg()
	res, err := ExecuteWorkloadOnce("provgen", "ldg", graph.OrderBFS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "provgen" || len(res.PerQuery) == 0 {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestNewSystemUnknown(t *testing.T) {
	p, err := prepare("provgen", smallCfg().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newSystem("bogus", p, 2, 10, 0.4); err == nil {
		t.Error("unknown system: want error")
	}
}
