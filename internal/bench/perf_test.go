package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunPerf(t *testing.T) {
	cfg := Config{Scale: 900, Seed: 3, K: 2, WindowSize: 64, Datasets: []string{"provgen"}}
	rep, err := RunPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Systems) * len(PerfIngestModes); len(rep.Rows) != want {
		t.Fatalf("got %d rows, want one per system × ingest mode (%d)", len(rep.Rows), want)
	}
	var hashPct float64
	iptByMode := map[string]map[string]float64{}
	for _, r := range rep.Rows {
		if r.NsPerEdge <= 0 || r.Edges <= 0 {
			t.Errorf("%s/%s: degenerate measurement %+v", r.System, r.Ingest, r)
		}
		if r.Ingest != "edge" && r.Ingest != "batch" {
			t.Errorf("%s: unknown ingest mode %q", r.System, r.Ingest)
		}
		if r.System == "hash" && r.Ingest == "edge" {
			hashPct = r.IPTPctOfHash
		}
		if iptByMode[r.System] == nil {
			iptByMode[r.System] = map[string]float64{}
		}
		iptByMode[r.System][r.Ingest] = r.IPT
	}
	if hashPct != 100 {
		t.Errorf("hash relative ipt = %v, want 100", hashPct)
	}
	// Both modes must be present per system. (Their shared ipt is copied
	// from one workload execution by construction; the substantive claim —
	// batch placements are bit-identical to per-edge — is covered by
	// TestAddBatchGoldenIdentical at the repo root.)
	for sys, modes := range iptByMode {
		if len(modes) != 2 {
			t.Errorf("%s: measured modes %v, want edge+batch", sys, modes)
		}
	}

	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded PerfReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if len(decoded.Rows) != len(rep.Rows) {
		t.Errorf("round-trip lost rows: %d != %d", len(decoded.Rows), len(rep.Rows))
	}

	var txt bytes.Buffer
	RenderPerf(&txt, rep)
	if !strings.Contains(txt.String(), "loom") {
		t.Errorf("text render missing loom row:\n%s", txt.String())
	}
}
