package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunPerf(t *testing.T) {
	cfg := Config{Scale: 900, Seed: 3, K: 2, WindowSize: 64, Datasets: []string{"provgen"}}
	rep, err := RunPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(Systems) {
		t.Fatalf("got %d rows, want one per system (%d)", len(rep.Rows), len(Systems))
	}
	var hashPct float64
	for _, r := range rep.Rows {
		if r.NsPerEdge <= 0 || r.Edges <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.System, r)
		}
		if r.System == "hash" {
			hashPct = r.IPTPctOfHash
		}
	}
	if hashPct != 100 {
		t.Errorf("hash relative ipt = %v, want 100", hashPct)
	}

	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded PerfReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	if len(decoded.Rows) != len(rep.Rows) {
		t.Errorf("round-trip lost rows: %d != %d", len(decoded.Rows), len(rep.Rows))
	}

	var txt bytes.Buffer
	RenderPerf(&txt, rep)
	if !strings.Contains(txt.String(), "loom") {
		t.Errorf("text render missing loom row:\n%s", txt.String())
	}
}
