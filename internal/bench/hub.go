package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"text/tabwriter"
	"time"

	"loom/internal/core"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
	"loom/internal/workload"
)

// The hub experiment (ISSUE 5): adversarial window shapes that stress the
// matching core's join path at experiment scale, so the quadratic-blowup
// regressions the per-edge datasets never trigger (their matchLists stay
// short) are caught by a plain `loom-bench -exp hub` run. Two shapes:
//
//   - dense-hub: one same-label hub vertex absorbs a constant stream of
//     spokes, saturating the per-vertex match cap — every insert pays the
//     full grow fan-out plus the pairwise join loop over the hub's
//     matchList (the worst case the cap exists for);
//   - high-overlap: a small same-label vertex population receives a long
//     uniform edge stream, so window edges overlap heavily and most join
//     candidates share vertices without sharing edges.
//
// Both run the full Loom pipeline (window + eviction + assignment), not
// the bare matcher, so the numbers are comparable to the perf experiment
// and catch regressions wherever they hide in the path.

// HubRow is one shape's measurement.
type HubRow struct {
	Shape     string  `json:"shape"`
	Edges     int     `json:"edges"`
	NsPerEdge float64 `json:"ns_per_edge"`
	// Windowed/Evictions/Matches characterise the stress actually applied
	// (a regression that silently stops matching would show here first).
	Windowed  int `json:"windowed_edges"`
	Evictions int `json:"evictions"`
	Matches   int `json:"matches_assigned"`
}

// HubReport is the machine-readable output of RunHub.
type HubReport struct {
	Scale      int      `json:"scale"`
	Seed       int64    `json:"seed"`
	K          int      `json:"k"`
	WindowSize int      `json:"window_size"`
	Reps       int      `json:"reps"`
	GoVersion  string   `json:"go_version"`
	Rows       []HubRow `json:"rows"`
}

// hubReps is how many runs each shape's timing takes the minimum over.
const hubReps = 3

// hubTrie builds the all-same-label star workload: every edge passes the
// single-edge gate and sub-stars of every size up to four edges are
// motifs — the join loop's worst case.
func hubTrie(seed int64) (*tpstry.Trie, error) {
	scheme := signature.NewScheme(signature.DefaultP, seed)
	scheme.RegisterLabels([]graph.Label{"x"})
	wl := &workload.Workload{Queries: []workload.Query{
		{Name: "star4", Pattern: pattern.Star("x", "x", "x", "x", "x"), Freq: 1},
	}}
	return wl.BuildTrie(scheme)
}

// hubStream synthesises one shape's edge stream.
func hubStream(shape string, scale int, rng *rand.Rand) []graph.StreamEdge {
	edges := make([]graph.StreamEdge, 0, scale)
	emit := func(u, v int64) {
		if u != v {
			edges = append(edges, graph.StreamEdge{
				U: graph.VertexID(u), LU: "x", V: graph.VertexID(v), LV: "x",
			})
		}
	}
	switch shape {
	case "dense-hub":
		// One hub (vertex 0) and a large leaf population; three of four
		// edges are spokes, the rest leaf-leaf background.
		pop := int64(scale / 4)
		if pop < 16 {
			pop = 16
		}
		for len(edges) < scale {
			if rng.Intn(4) < 3 {
				emit(0, rng.Int63n(pop)+1)
			} else {
				emit(rng.Int63n(pop)+1, rng.Int63n(pop)+1)
			}
		}
	case "high-overlap":
		// A small population under a long uniform stream: every window
		// edge overlaps many matches.
		pop := int64(scale / 64)
		if pop < 12 {
			pop = 12
		}
		for len(edges) < scale {
			emit(rng.Int63n(pop), rng.Int63n(pop))
		}
	default:
		panic(fmt.Sprintf("bench: unknown hub shape %q", shape))
	}
	return edges
}

// HubShapes lists the stress shapes RunHub measures.
var HubShapes = []string{"dense-hub", "high-overlap"}

// RunHub measures Loom's end-to-end per-edge cost on the stress shapes.
// Methodology matches RunPerf: ingest-only timing (construction and Flush
// excluded), minimum over hubReps runs per shape.
func RunHub(cfg Config) (*HubReport, error) {
	cfg = cfg.withDefaults()
	rep := &HubReport{
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
		K:          cfg.K,
		WindowSize: cfg.WindowSize,
		Reps:       hubReps,
		GoVersion:  runtime.Version(),
	}
	trie, err := hubTrie(cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, shape := range HubShapes {
		stream := hubStream(shape, cfg.Scale, rand.New(rand.NewSource(cfg.Seed)))
		seen := map[graph.VertexID]bool{}
		for _, e := range stream {
			seen[e.U], seen[e.V] = true, true
		}
		var best time.Duration
		var stats core.Stats
		for i := 0; i < hubReps; i++ {
			p, err := core.New(core.Config{
				K:                cfg.K,
				Capacity:         partition.CapacityFor(len(seen), cfg.K, partition.DefaultImbalance),
				WindowSize:       cfg.WindowSize,
				SupportThreshold: 0.1, // every sub-star stays a motif
			}, trie)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			p.ProcessEdges(stream)
			elapsed := time.Since(start)
			p.Flush()
			if i == 0 || elapsed < best {
				best = elapsed
			}
			stats = p.Stats()
		}
		rep.Rows = append(rep.Rows, HubRow{
			Shape:     shape,
			Edges:     len(stream),
			NsPerEdge: float64(best.Nanoseconds()) / float64(len(stream)),
			Windowed:  stats.WindowedEdges,
			Evictions: stats.Evictions,
			Matches:   stats.MatchesAssigned,
		})
	}
	return rep, nil
}

// WriteHubJSON writes the report as indented JSON.
func WriteHubJSON(w io.Writer, rep *HubReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderHub writes the report as an aligned text table.
func RenderHub(w io.Writer, rep *HubReport) {
	fmt.Fprintf(w, "Join-path stress shapes (scale %d, k %d, window %d, %d reps, min)\n",
		rep.Scale, rep.K, rep.WindowSize, rep.Reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shape\tedges\tns/edge\twindowed\tevictions\tmatches")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%d\t%d\n",
			r.Shape, r.Edges, r.NsPerEdge, r.Windowed, r.Evictions, r.Matches)
	}
	tw.Flush()
}
