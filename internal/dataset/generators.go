package dataset

import (
	"loom/internal/graph"
)

// DBLP generates a citation-network graph with DBLP's 8 vertex labels:
// papers authored by persons, published at venues or in journals, tagged
// with topics and years, citing earlier papers (preferentially), with
// persons affiliated to institutions and journals owned by publishers.
// scale is a target |V|; |E|/|V| lands near Table 1's ≈ 2.1.
func DBLP(scale int, seed int64) *graph.Graph {
	b := newBuilder(seed)
	// Roughly 1 paper + 1.1 new persons per unit ≈ 2.1 vertices/unit.
	units := scale * 10 / 21
	if units < 1 {
		units = 1
	}

	// Shared pools, sized sublinearly like the real data.
	nVenues := clampMin(units/150, 3)
	nJournals := clampMin(units/250, 2)
	nPublishers := clampMin(nJournals/4, 1)
	nYears := clampMin(units/400, 5)
	nTopics := clampMin(units/80, 4)
	nInstitutions := clampMin(units/120, 3)

	venues := b.pool(LVenue, nVenues)
	journals := b.pool(LJournal, nJournals)
	publishers := b.pool(LPublisher, nPublishers)
	years := b.pool(LYear, nYears)
	topics := b.pool(LTopic, nTopics)
	institutions := b.pool(LInstitution, nInstitutions)

	for _, j := range journals {
		b.edge(j, b.pick(publishers))
	}

	var papers, persons []graph.VertexID
	for i := 0; i < units; i++ {
		p := b.vertex(LPaper)

		// Authors: 1–3 (avg 2), drawn from a growing pool with
		// preferential re-use (prolific authors).
		nAuthors := 1 + b.rng.Intn(3)
		for a := 0; a < nAuthors; a++ {
			var person graph.VertexID
			if len(persons) == 0 || b.rng.Float64() < 0.55 {
				person = b.vertex(LPerson)
				persons = append(persons, person)
				// Some new persons get an affiliation.
				if b.rng.Float64() < 0.3 {
					b.edge(person, b.pick(institutions))
				}
			} else {
				person = b.preferential(persons)
			}
			b.edge(p, person)
		}

		// Publication outlet: venue (70%) or journal (30%); a year on
		// half the papers (keeps |E|/|V| near Table 1's 2.1).
		if b.rng.Float64() < 0.7 {
			b.edge(p, b.pick(venues))
		} else {
			b.edge(p, b.pick(journals))
		}
		if b.rng.Float64() < 0.5 {
			b.edge(p, b.pick(years))
		}

		// Topics: 0–1.
		if b.rng.Intn(2) == 1 {
			b.edge(p, b.pick(topics))
		}

		// Citations: preferential to earlier papers, average ≈ 0.5.
		if len(papers) > 0 {
			nCites := b.rng.Intn(2)
			for c := 0; c < nCites; c++ {
				b.edge(p, b.preferential(papers))
			}
		}
		papers = append(papers, p)
	}
	return b.g
}

// ProvGen generates wiki-page provenance in the 3-label PROV-DM schema
// (Entity, Activity, Agent): per page, a chain of revisions where each edit
// Activity uses the previous page version, generates the next, is
// associated with an Agent, and derived versions link entity-to-entity.
// |E|/|V| lands near Table 1's ≈ 1.8.
func ProvGen(scale int, seed int64) *graph.Graph {
	b := newBuilder(seed)
	// A revision ≈ 2 vertices (Entity + Activity) + occasional Agent.
	revisions := scale * 10 / 21
	if revisions < 1 {
		revisions = 1
	}
	var agents []graph.VertexID

	remaining := revisions
	for remaining > 0 {
		// Page with a geometric-ish revision chain, mean ≈ 8.
		chain := 1 + b.rng.Intn(15)
		if chain > remaining {
			chain = remaining
		}
		remaining -= chain

		var prev graph.VertexID
		for r := 0; r < chain; r++ {
			entity := b.vertex(LEntity)
			activity := b.vertex(LActivity)
			b.edge(activity, entity) // generated
			if r > 0 {
				b.edge(activity, prev) // used
				// wasDerivedFrom: entity–entity, ~60%.
				if b.rng.Float64() < 0.6 {
					b.edge(entity, prev)
				}
			}
			// Agent: mostly a returning editor.
			var agent graph.VertexID
			if len(agents) == 0 || b.rng.Float64() < 0.08 {
				agent = b.vertex(LAgent)
				agents = append(agents, agent)
			} else {
				agent = b.preferential(agents)
			}
			b.edge(activity, agent) // associatedWith
			if b.rng.Float64() < 0.25 {
				b.edge(entity, agent) // attributedTo
			}
			prev = entity
		}
	}
	return b.g
}

// MusicBrainz generates music metadata with the 12 labels of the paper's
// MusicBrainz graph: artists from areas signed to labels, releasing albums
// whose tracks are recordings of works, with genres, events at places, and
// series. It is the most heterogeneous dataset and the one where Loom's
// advantage peaks (§5.2). |E|/|V| lands near 2.6 (Table 1: ≈ 3.2).
func MusicBrainz(scale int, seed int64) *graph.Graph {
	b := newBuilder(seed)
	// Per artist unit ≈ 1 artist + 1.2 albums + 3.6 tracks + 3.6
	// recordings + 0.9 works + … ≈ 10.6 vertices.
	artists := scale / 10
	if artists < 2 {
		artists = 2
	}

	nAreas := clampMin(artists/60, 3)
	nLabels := clampMin(artists/25, 2)
	nGenres := clampMin(artists/40, 3)
	nPlaces := clampMin(artists/50, 2)
	nSeries := clampMin(artists/80, 1)

	areas := b.pool(LArea, nAreas)
	labels := b.pool(LLabel, nLabels)
	genres := b.pool(LGenre, nGenres)
	places := b.pool(LPlace, nPlaces)
	series := b.pool(LSeries, nSeries)

	var artistPool, workPool []graph.VertexID
	for i := 0; i < artists; i++ {
		artist := b.vertex(LArtist)
		artistPool = append(artistPool, artist)
		b.edge(artist, b.pick(areas))
		b.edge(artist, b.pick(labels))
		if b.rng.Float64() < 0.5 {
			b.edge(artist, b.pick(genres))
		}

		nAlbums := 1 + b.rng.Intn(2)
		for al := 0; al < nAlbums; al++ {
			album := b.vertex(LAlbum)
			b.edge(album, artist)
			b.edge(album, b.pick(labels))
			if b.rng.Float64() < 0.6 {
				b.edge(album, b.pick(genres))
			}
			// Collaboration: second artist on the album (prior artist,
			// preferential — the "potential collaboration" structure the
			// workload queries look for).
			if len(artistPool) > 1 && b.rng.Float64() < 0.35 {
				other := b.preferential(artistPool)
				if other != artist {
					b.edge(album, other)
				}
			}
			// A release of the album (edition), sometimes in a series.
			release := b.vertex(LRelease)
			b.edge(release, album)
			b.edge(release, b.pick(labels))
			if b.rng.Float64() < 0.15 {
				b.edge(release, b.pick(series))
			}

			nTracks := 2 + b.rng.Intn(3)
			for tr := 0; tr < nTracks; tr++ {
				track := b.vertex(LTrack)
				b.edge(track, album)
				b.edge(track, release) // appears on this edition
				rec := b.vertex(LRecording)
				b.edge(track, rec)
				b.edge(rec, artist)
				if b.rng.Float64() < 0.4 {
					b.edge(rec, b.pick(genres))
				}
				// Work: 60% a cover/new recording of an existing work
				// (work re-use keeps the vertex count down and builds
				// the cross-artist connectivity real MusicBrainz has).
				var work graph.VertexID
				if len(workPool) > 0 && b.rng.Float64() < 0.6 {
					work = b.preferential(workPool)
				} else {
					work = b.vertex(LWork)
					workPool = append(workPool, work)
				}
				b.edge(rec, work)
			}
		}

		// Live events.
		if b.rng.Float64() < 0.4 {
			event := b.vertex(LEvent)
			b.edge(event, artist)
			b.edge(event, b.pick(places))
		}
	}
	return b.g
}

// LUBM generates university records following the LUBM schema with 15
// vertex labels: universities contain departments; departments employ
// professors and lecturers, enrol students, offer courses and host research
// groups; students take courses; graduate students have advisors, TA
// courses and RA for groups; publications are co-authored by faculty and
// graduate students. scale is a target |V|; |E|/|V| lands near Table 1's
// ≈ 4.2 thanks to dense takesCourse/authorship edges.
func LUBM(scale int, seed int64) *graph.Graph {
	b := newBuilder(seed)
	// One department ≈ 96 vertices (see unit counts below).
	departments := clampMin(scale/96, 1)
	deptsPerUni := 5

	var universities []graph.VertexID
	for d := 0; d < departments; d++ {
		if d%deptsPerUni == 0 {
			universities = append(universities, b.vertex(LUniversity))
		}
		uni := universities[len(universities)-1]
		dept := b.vertex(LDepartment)
		b.edge(dept, uni)

		full := b.pool(LFullProf, 3)
		assoc := b.pool(LAssocProf, 4)
		asst := b.pool(LAsstProf, 4)
		lect := b.pool(LLecturer, 3)
		faculty := concat(full, assoc, asst, lect)
		for _, f := range faculty {
			b.edge(f, dept) // worksFor
		}
		// Chair of the department.
		chair := b.vertex(LChair)
		b.edge(chair, full[0])
		b.edge(chair, dept)

		courses := b.pool(LCourse, 10)
		gradCourses := b.pool(LGradCourse, 5)
		for _, c := range courses {
			b.edge(c, b.pick(faculty)) // teacherOf
		}
		for _, c := range gradCourses {
			b.edge(c, b.pick(faculty))
		}

		groups := b.pool(LResearchGroup, 3)
		for _, g := range groups {
			b.edge(g, dept)
			b.edge(g, b.pick(faculty))
		}

		undergrads := b.pool(LUndergrad, 40)
		grads := b.pool(LGradStudent, 12)
		for _, s := range undergrads {
			b.edge(s, dept) // memberOf
			for n := 3 + b.rng.Intn(4); n > 0; n-- {
				b.edge(s, b.pick(courses)) // takesCourse
			}
		}
		for _, s := range grads {
			b.edge(s, dept)
			b.edge(s, b.pick(faculty)) // advisor
			for n := 2 + b.rng.Intn(3); n > 0; n-- {
				b.edge(s, b.pick(gradCourses))
			}
			if b.rng.Float64() < 0.4 {
				ta := b.vertex(LTA)
				b.edge(ta, s)
				b.edge(ta, b.pick(courses))
			}
			if b.rng.Float64() < 0.3 {
				ra := b.vertex(LRA)
				b.edge(ra, s)
				b.edge(ra, b.pick(groups))
			}
		}

		// Publications: each faculty member authors ~2, co-authored with
		// one or more grad students.
		for _, f := range faculty {
			for n := 1 + b.rng.Intn(3); n > 0; n-- {
				pub := b.vertex(LPublication)
				b.edge(pub, f)
				for c := 1 + b.rng.Intn(3); c > 0; c-- {
					b.edge(pub, b.pick(grads))
				}
			}
		}
	}
	return b.g
}

// pool creates n fresh vertices with one label.
func (b *builder) pool(l graph.Label, n int) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = b.vertex(l)
	}
	return out
}

func clampMin(v, min int) int {
	if v < min {
		return min
	}
	return v
}

func concat(ss ...[]graph.VertexID) []graph.VertexID {
	var out []graph.VertexID
	for _, s := range ss {
		out = append(out, s...)
	}
	return out
}
