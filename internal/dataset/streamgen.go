package dataset

import (
	"fmt"
	"math/rand"

	"loom/internal/graph"
)

// StreamSpec configures a constant-memory synthetic edge stream. Unlike
// the catalogue generators (which materialise a graph.Graph before
// streaming it), a StreamGen emits edges one at a time from O(1) state:
// vertex IDs and labels are computed arithmetically, never stored, so a
// 10⁸-edge stream costs the same generator memory as a 10³-edge one.
// That is the scale regime of the footprint experiments — the recorded
// graph under test must be the only thing that grows.
type StreamSpec struct {
	// Mode selects the stream shape: "powerlaw" (skewed social-network-like
	// degree distribution) or "triples" (RDF-shaped: entity–entity links
	// plus entity→attribute stars, echoing the paper's LUBM/provenance
	// datasets).
	Mode string
	// Edges is the number of edges to emit.
	Edges int64
	// Vertices bounds the core vertex ID range [0, Vertices). Triples mode
	// additionally mints fresh attribute vertices above the bound.
	Vertices int64
	// Labels is the alphabet size |LV| (default 5, max intern.MaxLabels).
	Labels int
	// Skew is the Zipf exponent s > 1 for vertex selection (default 1.3;
	// closer to 1 is flatter).
	Skew float64
	// Seed makes the stream reproducible.
	Seed int64
}

// StreamGen emits a deterministic synthetic edge stream in O(1) memory.
// Not safe for concurrent use.
type StreamGen struct {
	spec    StreamSpec
	rng     *rand.Rand
	zipf    *rand.Zipf
	emitted int64
	nextAtt int64 // triples mode: next fresh attribute vertex ID
}

// NewStreamGen validates spec and returns a generator positioned at the
// first edge.
func NewStreamGen(spec StreamSpec) (*StreamGen, error) {
	if spec.Edges <= 0 {
		return nil, fmt.Errorf("dataset: stream spec needs Edges > 0")
	}
	if spec.Vertices < 2 {
		return nil, fmt.Errorf("dataset: stream spec needs Vertices >= 2")
	}
	if spec.Labels <= 0 {
		spec.Labels = 5
	}
	if spec.Skew == 0 {
		spec.Skew = 1.3
	}
	if spec.Skew <= 1 {
		return nil, fmt.Errorf("dataset: stream spec needs Skew > 1 (got %g)", spec.Skew)
	}
	switch spec.Mode {
	case "", "powerlaw":
		spec.Mode = "powerlaw"
	case "triples":
	default:
		return nil, fmt.Errorf("dataset: unknown stream mode %q (want powerlaw or triples)", spec.Mode)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	return &StreamGen{
		spec:    spec,
		rng:     rng,
		zipf:    rand.NewZipf(rng, spec.Skew, 1, uint64(spec.Vertices-1)),
		nextAtt: spec.Vertices,
	}, nil
}

// label returns the deterministic label of vertex v. A pure function of
// the ID, so the same vertex always streams with the same label — the
// recorded graph treats label conflicts as corruption.
func (g *StreamGen) label(v int64) string {
	if v >= g.spec.Vertices {
		return "Attr" // triples mode's minted attribute vertices
	}
	return string(rune('A' + int(v%int64(g.spec.Labels))))
}

// Remaining returns how many edges Next will still emit.
func (g *StreamGen) Remaining() int64 { return g.spec.Edges - g.emitted }

// Next returns the next stream edge; ok is false once Edges have been
// emitted. Self-loops occur naturally (two equal Zipf draws) — consumers
// of noisy streams are expected to tolerate them, and the partitioner
// drops them by contract.
func (g *StreamGen) Next() (e graph.StreamEdge, ok bool) {
	if g.emitted >= g.spec.Edges {
		return graph.StreamEdge{}, false
	}
	g.emitted++
	u := int64(g.zipf.Uint64())
	var v int64
	if g.spec.Mode == "triples" && g.rng.Intn(10) < 3 {
		// Entity→attribute star: a fresh leaf per emission, like RDF
		// literal/attribute triples. These never duplicate.
		v = g.nextAtt
		g.nextAtt++
	} else {
		v = int64(g.zipf.Uint64())
	}
	return graph.StreamEdge{
		U: graph.VertexID(u), LU: graph.Label(g.label(u)),
		V: graph.VertexID(v), LV: graph.Label(g.label(v)),
	}, true
}
