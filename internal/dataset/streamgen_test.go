package dataset

import (
	"testing"

	"loom/internal/graph"
)

func collectStream(t *testing.T, spec StreamSpec) []graph.StreamEdge {
	t.Helper()
	gen, err := NewStreamGen(spec)
	if err != nil {
		t.Fatalf("NewStreamGen: %v", err)
	}
	var out []graph.StreamEdge
	for {
		e, ok := gen.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

func TestStreamGenDeterministic(t *testing.T) {
	for _, mode := range []string{"powerlaw", "triples"} {
		spec := StreamSpec{Mode: mode, Edges: 5000, Vertices: 500, Seed: 7}
		a := collectStream(t, spec)
		b := collectStream(t, spec)
		if len(a) != 5000 || len(b) != 5000 {
			t.Fatalf("%s: emitted %d / %d edges, want 5000", mode, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edge %d differs across runs: %v vs %v", mode, i, a[i], b[i])
			}
		}
		// Different seed must not reproduce the same stream.
		spec.Seed = 8
		c := collectStream(t, spec)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 7 and 8 produced identical streams", mode)
		}
	}
}

func TestStreamGenLabelConsistency(t *testing.T) {
	spec := StreamSpec{Mode: "triples", Edges: 8000, Vertices: 300, Labels: 3, Seed: 3}
	seen := make(map[graph.VertexID]graph.Label)
	check := func(v graph.VertexID, l graph.Label) {
		if prev, ok := seen[v]; ok && prev != l {
			t.Fatalf("vertex %d streamed with labels %q and %q", v, prev, l)
		}
		seen[v] = l
	}
	for _, e := range collectStream(t, spec) {
		check(e.U, e.LU)
		check(e.V, e.LV)
	}
	// Core vertices draw from the 3-letter alphabet; minted attribute
	// vertices (IDs >= Vertices) are all "Attr".
	attrs := 0
	for v, l := range seen {
		if int64(v) >= spec.Vertices {
			attrs++
			if l != "Attr" {
				t.Fatalf("attribute vertex %d has label %q", v, l)
			}
		} else if l != "A" && l != "B" && l != "C" {
			t.Fatalf("core vertex %d has label %q outside alphabet", v, l)
		}
	}
	if attrs == 0 {
		t.Fatal("triples mode minted no attribute vertices in 8000 edges")
	}
}

func TestStreamGenRemaining(t *testing.T) {
	gen, err := NewStreamGen(StreamSpec{Edges: 10, Vertices: 4, Seed: 1})
	if err != nil {
		t.Fatalf("NewStreamGen: %v", err)
	}
	for want := int64(10); want > 0; want-- {
		if got := gen.Remaining(); got != want {
			t.Fatalf("Remaining = %d, want %d", got, want)
		}
		if _, ok := gen.Next(); !ok {
			t.Fatalf("Next exhausted with %d edges remaining", want)
		}
	}
	if gen.Remaining() != 0 {
		t.Fatalf("Remaining after exhaustion = %d", gen.Remaining())
	}
	if _, ok := gen.Next(); ok {
		t.Fatal("Next returned an edge after exhaustion")
	}
}

func TestStreamGenSpecValidation(t *testing.T) {
	bad := []StreamSpec{
		{Edges: 0, Vertices: 10},
		{Edges: 10, Vertices: 1},
		{Edges: 10, Vertices: 10, Skew: 0.9},
		{Edges: 10, Vertices: 10, Mode: "nope"},
	}
	for i, spec := range bad {
		if _, err := NewStreamGen(spec); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, spec)
		}
	}
	// Defaults: mode powerlaw, 5 labels, skew 1.3.
	gen, err := NewStreamGen(StreamSpec{Edges: 100, Vertices: 50, Seed: 2})
	if err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
	for {
		e, ok := gen.Next()
		if !ok {
			break
		}
		for _, l := range []graph.Label{e.LU, e.LV} {
			if len(l) != 1 || l[0] < 'A' || l[0] > 'E' {
				t.Fatalf("default alphabet produced label %q", l)
			}
		}
	}
}

func TestStreamGenSkewIsSkewed(t *testing.T) {
	// With Zipf selection the most popular vertex (ID 0) should appear far
	// more often than a uniform draw would allow.
	spec := StreamSpec{Edges: 20000, Vertices: 1000, Seed: 5}
	hits := 0
	for _, e := range collectStream(t, spec) {
		if e.U == 0 {
			hits++
		}
		if e.V == 0 {
			hits++
		}
	}
	// Uniform would give ~40 endpoint hits (2*20000/1000); Zipf s=1.3
	// concentrates a large constant fraction on rank 0.
	if hits < 400 {
		t.Fatalf("vertex 0 hit %d endpoints; stream does not look skewed", hits)
	}
}
