package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"loom/internal/graph"
)

func TestGeneratorsMatchTable1Shape(t *testing.T) {
	cases := []struct {
		name       string
		wantLabels int
		minRatio   float64 // |E|/|V| bounds, around Table 1's values
		maxRatio   float64
	}{
		{"dblp", 8, 1.6, 3.2},
		{"provgen", 3, 1.3, 2.3},
		{"musicbrainz", 12, 1.8, 3.6},
		{"lubm", 15, 3.0, 5.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := Generate(c.name, 8000, 42)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(g.Labels()); got != c.wantLabels {
				t.Errorf("|LV| = %d, want %d (labels: %v)", got, c.wantLabels, g.Labels())
			}
			n, m := g.NumVertices(), g.NumEdges()
			if n < 4000 || n > 16000 {
				t.Errorf("|V| = %d, want within 2x of scale 8000", n)
			}
			ratio := float64(m) / float64(n)
			if ratio < c.minRatio || ratio > c.maxRatio {
				t.Errorf("|E|/|V| = %.2f, want in [%.1f, %.1f]", ratio, c.minRatio, c.maxRatio)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		g1, err := Generate(name, 2000, 7)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := Generate(name, 2000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
			t.Errorf("%s: not deterministic: %v vs %v", name, g1, g2)
			continue
		}
		e1, e2 := g1.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Errorf("%s: edge %d differs: %v vs %v", name, i, e1[i], e2[i])
				break
			}
		}
	}
}

func TestGeneratorsSeedSensitive(t *testing.T) {
	g1, _ := Generate("dblp", 2000, 1)
	g2, _ := Generate("dblp", 2000, 2)
	if g1.NumEdges() == g2.NumEdges() {
		// Edge counts could coincide; compare edge lists too.
		same := true
		e1, e2 := g1.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 100, 1); err == nil {
		t.Error("unknown dataset: want error")
	}
}

func TestDegreeSkew(t *testing.T) {
	// Preferential attachment must produce hubs: in DBLP, the most-cited
	// paper / most prolific author should have degree well above average.
	g, err := Generate("dblp", 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg, sumDeg := 0, 0
	for _, v := range g.Vertices() {
		d := g.Degree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / float64(g.NumVertices())
	if float64(maxDeg) < 10*avg {
		t.Errorf("max degree %d not clearly above avg %.1f: degree distribution too flat", maxDeg, avg)
	}
}

func TestLUBMStructure(t *testing.T) {
	g, err := Generate("lubm", 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	hist := g.LabelHistogram()
	if hist[LDepartment] == 0 || hist[LUniversity] == 0 {
		t.Fatal("missing departments/universities")
	}
	if hist[LDepartment] < hist[LUniversity] {
		t.Error("departments should outnumber universities")
	}
	if hist[LUndergrad] < 5*hist[LFullProf] {
		t.Error("undergrads should dwarf full professors")
	}
}

func TestDatasetLabelsMatchGenerators(t *testing.T) {
	for _, name := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		g, err := Generate(name, 4000, 5)
		if err != nil {
			t.Fatal(err)
		}
		declared := DatasetLabels(name)
		set := make(map[graph.Label]bool, len(declared))
		for _, l := range declared {
			set[l] = true
		}
		for _, l := range g.Labels() {
			if !set[l] {
				t.Errorf("%s: generator used undeclared label %q", name, l)
			}
		}
	}
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog size = %d, want 5 (Table 1 rows)", len(cat))
	}
	if cat[0].Name != "dblp" || cat[0].Labels != 8 {
		t.Errorf("catalog[0] = %+v", cat[0])
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := Generate("provgen", 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.StreamOf(g, graph.OrderRandom, rand.New(rand.NewSource(2)))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(s) {
		t.Fatalf("round trip: %d edges, want %d", len(back), len(s))
	}
	for i := range s {
		if back[i] != s[i] {
			t.Fatalf("edge %d: %v != %v", i, back[i], s[i])
		}
	}
}

func TestReadEdgeListTolerant(t *testing.T) {
	in := "# comment\n\n1 A 2 B\n  3 C 4 D  \n"
	s, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].LU != "A" || s[1].V != 4 {
		t.Fatalf("parsed %v", s)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1 A 2\n")); err == nil {
		t.Error("short line: want error")
	}
	if _, err := ReadEdgeList(strings.NewReader("x A 2 B\n")); err == nil {
		t.Error("bad id: want error")
	}
}

func TestWriteEdgeListRejectsWhitespaceLabels(t *testing.T) {
	s := graph.Stream{{U: 1, LU: "bad label", V: 2, LV: "B"}}
	if err := WriteEdgeList(&bytes.Buffer{}, s); err == nil {
		t.Error("whitespace label: want error")
	}
}
