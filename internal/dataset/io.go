package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"loom/internal/graph"
)

// Edge-list text format, one stream element per line:
//
//	<u> <label-u> <v> <label-v>
//
// Lines starting with '#' and blank lines are ignored. This is the on-disk
// form of a graph stream: the evaluation "streams a graph from disk" in a
// chosen order (§5.1), and cmd/loom-gen materialises orderings to files in
// this format.

// WriteEdgeList writes a stream, returning the first write error.
func WriteEdgeList(w io.Writer, s graph.Stream) error {
	bw := bufio.NewWriter(w)
	for _, e := range s {
		if strings.ContainsAny(string(e.LU), " \t\n") || strings.ContainsAny(string(e.LV), " \t\n") {
			return fmt.Errorf("dataset: label with whitespace cannot be serialised: %q %q", e.LU, e.LV)
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d %s\n", e.U, e.LU, e.V, e.LV); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a stream written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (graph.Stream, error) {
	var out graph.Stream
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("dataset: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad vertex id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad vertex id %q: %v", lineNo, fields[2], err)
		}
		out = append(out, graph.StreamEdge{
			U: graph.VertexID(u), LU: graph.Label(fields[1]),
			V: graph.VertexID(v), LV: graph.Label(fields[3]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %v", err)
	}
	return out, nil
}
