// Package dataset provides synthetic generators for the five evaluation
// graphs of the Loom paper (Table 1) plus edge-list IO.
//
// The paper evaluates on two real datasets (DBLP, MusicBrainz) and three
// synthetic ones (ProvGen, LUBM-100, LUBM-4000). The real dumps are not
// redistributable here, so per DESIGN.md §2 each is replaced by a generator
// that preserves the properties the experiments depend on:
//
//   - label heterogeneity |LV| (8 for DBLP, 3 for ProvGen, 12 for
//     MusicBrainz, 15 for LUBM) — the axis §5.2 identifies as driving
//     Loom's advantage;
//   - skewed degree distributions (preferential attachment for citations,
//     collaborations, label signings);
//   - community/locality structure (papers cluster around venues and
//     authors; LUBM is department-partitioned by construction);
//   - edge/vertex ratios in the neighbourhood of Table 1's.
//
// Scale is a target vertex count; generators derive entity counts from it.
// All generators are deterministic for a (scale, seed) pair.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"loom/internal/graph"
)

// Info describes one generated dataset, mirroring a Table 1 row.
type Info struct {
	Name   string
	Labels int  // |LV|
	Real   bool // whether the paper's original was a real-world dump
	// PaperVertices/PaperEdges are the approximate sizes reported in
	// Table 1 (for EXPERIMENTS.md comparisons).
	PaperVertices int
	PaperEdges    int
	Description   string
}

// Catalog lists the paper's datasets in Table 1 order.
func Catalog() []Info {
	return []Info{
		{Name: "dblp", Labels: 8, Real: true, PaperVertices: 1_200_000, PaperEdges: 2_500_000, Description: "Publications & citations"},
		{Name: "provgen", Labels: 3, Real: false, PaperVertices: 500_000, PaperEdges: 900_000, Description: "Wiki page provenance"},
		{Name: "musicbrainz", Labels: 12, Real: true, PaperVertices: 31_000_000, PaperEdges: 100_000_000, Description: "Music records metadata"},
		{Name: "lubm", Labels: 15, Real: false, PaperVertices: 2_600_000, PaperEdges: 11_000_000, Description: "University records (LUBM-100)"},
		{Name: "lubm-large", Labels: 15, Real: false, PaperVertices: 131_000_000, PaperEdges: 534_000_000, Description: "University records (LUBM-4000)"},
	}
}

// Generate builds the named dataset at the given scale (target vertex
// count).
func Generate(name string, scale int, seed int64) (*graph.Graph, error) {
	switch name {
	case "dblp":
		return DBLP(scale, seed), nil
	case "provgen":
		return ProvGen(scale, seed), nil
	case "musicbrainz":
		return MusicBrainz(scale, seed), nil
	case "lubm", "lubm-large":
		return LUBM(scale, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// builder wraps a graph with an ID counter and panic-free edge insertion
// (generators construct by design; label conflicts are bugs).
type builder struct {
	g    *graph.Graph
	next graph.VertexID
	rng  *rand.Rand
}

func newBuilder(seed int64) *builder {
	return &builder{g: graph.New(), next: 1, rng: rand.New(rand.NewSource(seed))}
}

func (b *builder) vertex(l graph.Label) graph.VertexID {
	id := b.next
	b.next++
	if err := b.g.AddVertex(id, l); err != nil {
		panic(err)
	}
	return id
}

func (b *builder) edge(u, v graph.VertexID) {
	if u == v {
		return
	}
	if b.g.HasEdge(u, v) {
		return
	}
	if err := b.g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// pick returns a uniformly random element of pool.
func (b *builder) pick(pool []graph.VertexID) graph.VertexID {
	return pool[b.rng.Intn(len(pool))]
}

// preferential picks from a pool where element i was appended in arrival
// order, with linear preferential attachment approximated by sampling two
// uniform indexes and taking the smaller (earlier elements accumulate
// degree in these generators, so earlier ≈ higher degree). This matches the
// heavy-tailed citation/collaboration distributions of the real data at a
// fraction of the bookkeeping cost.
func (b *builder) preferential(pool []graph.VertexID) graph.VertexID {
	i, j := b.rng.Intn(len(pool)), b.rng.Intn(len(pool))
	if j < i {
		i = j
	}
	return pool[i]
}

// Labels used across generators, grouped per dataset.
const (
	// DBLP (8 labels)
	LPaper       graph.Label = "Paper"
	LPerson      graph.Label = "Person"
	LVenue       graph.Label = "Venue"
	LJournal     graph.Label = "Journal"
	LYear        graph.Label = "Year"
	LTopic       graph.Label = "Topic"
	LInstitution graph.Label = "Institution"
	LPublisher   graph.Label = "Publisher"

	// ProvGen (3 labels, PROV-DM)
	LEntity   graph.Label = "Entity"
	LActivity graph.Label = "Activity"
	LAgent    graph.Label = "Agent"

	// MusicBrainz (12 labels)
	LArtist    graph.Label = "Artist"
	LAlbum     graph.Label = "Album"
	LTrack     graph.Label = "Track"
	LRecording graph.Label = "Recording"
	LWork      graph.Label = "Work"
	LLabel     graph.Label = "Label"
	LArea      graph.Label = "Area"
	LGenre     graph.Label = "Genre"
	LRelease   graph.Label = "Release"
	LEvent     graph.Label = "Event"
	LPlace     graph.Label = "Place"
	LSeries    graph.Label = "Series"

	// LUBM (15 labels)
	LUniversity    graph.Label = "University"
	LDepartment    graph.Label = "Department"
	LFullProf      graph.Label = "FullProfessor"
	LAssocProf     graph.Label = "AssociateProfessor"
	LAsstProf      graph.Label = "AssistantProfessor"
	LLecturer      graph.Label = "Lecturer"
	LUndergrad     graph.Label = "UndergraduateStudent"
	LGradStudent   graph.Label = "GraduateStudent"
	LCourse        graph.Label = "Course"
	LGradCourse    graph.Label = "GraduateCourse"
	LPublication   graph.Label = "Publication"
	LResearchGroup graph.Label = "ResearchGroup"
	LTA            graph.Label = "TeachingAssistant"
	LRA            graph.Label = "ResearchAssistant"
	LChair         graph.Label = "Chair"
)

// DatasetLabels returns the label alphabet of a dataset, sorted (used to
// pre-register labels with a signature scheme so runs are stream-order
// independent).
func DatasetLabels(name string) []graph.Label {
	var ls []graph.Label
	switch name {
	case "dblp":
		ls = []graph.Label{LPaper, LPerson, LVenue, LJournal, LYear, LTopic, LInstitution, LPublisher}
	case "provgen":
		ls = []graph.Label{LEntity, LActivity, LAgent}
	case "musicbrainz":
		ls = []graph.Label{LArtist, LAlbum, LTrack, LRecording, LWork, LLabel, LArea, LGenre, LRelease, LEvent, LPlace, LSeries}
	case "lubm", "lubm-large":
		ls = []graph.Label{LUniversity, LDepartment, LFullProf, LAssocProf, LAsstProf, LLecturer, LUndergrad, LGradStudent, LCourse, LGradCourse, LPublication, LResearchGroup, LTA, LRA, LChair}
	}
	sorted := append([]graph.Label(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}
