package dataset

import (
	"fmt"

	"loom/internal/graph"
)

// CustomSpec parameterises the general-purpose synthetic generator: a
// community-structured labelled graph with tunable heterogeneity, density
// and skew. The paper's analysis (§5.1.1) predicts workload-aware
// partitioning pays off as |LV| grows; this generator lets users test that
// prediction on their own label/density mix without writing a bespoke
// generator.
type CustomSpec struct {
	// Labels is |LV|, the number of distinct vertex labels (>= 1).
	Labels int
	// EdgeFactor is the target |E|/|V| ratio (>= 0.5).
	EdgeFactor float64
	// Communities is the number of clusters; vertices connect mostly
	// within their community (default: |V|/64, at least 2).
	Communities int
	// CrossFraction is the fraction of edges that cross communities
	// (default 0.05).
	CrossFraction float64
	// HubSkew in [0,1) biases endpoint choice toward earlier (hub)
	// vertices within a community: 0 = uniform, 0.8 = heavy-tailed
	// (default 0.5).
	HubSkew float64
}

func (s CustomSpec) withDefaults(scale int) CustomSpec {
	if s.Labels == 0 {
		s.Labels = 4
	}
	if s.EdgeFactor == 0 {
		s.EdgeFactor = 2.5
	}
	if s.Communities == 0 {
		s.Communities = scale / 64
		if s.Communities < 2 {
			s.Communities = 2
		}
	}
	if s.CrossFraction == 0 {
		s.CrossFraction = 0.05
	}
	if s.HubSkew == 0 {
		s.HubSkew = 0.5
	}
	return s
}

func (s CustomSpec) validate() error {
	if s.Labels < 1 {
		return fmt.Errorf("dataset: custom Labels must be >= 1, got %d", s.Labels)
	}
	if s.EdgeFactor < 0.5 {
		return fmt.Errorf("dataset: custom EdgeFactor must be >= 0.5, got %v", s.EdgeFactor)
	}
	if s.Communities < 1 {
		return fmt.Errorf("dataset: custom Communities must be >= 1, got %d", s.Communities)
	}
	if s.CrossFraction < 0 || s.CrossFraction > 1 {
		return fmt.Errorf("dataset: custom CrossFraction must be in [0,1], got %v", s.CrossFraction)
	}
	if s.HubSkew < 0 || s.HubSkew >= 1 {
		return fmt.Errorf("dataset: custom HubSkew must be in [0,1), got %v", s.HubSkew)
	}
	return nil
}

// Custom generates a community-structured labelled graph with ~scale
// vertices under the given spec. Labels are named "L0", "L1", …; a
// vertex's label depends on its index so every community carries the full
// alphabet. Deterministic for a (scale, seed, spec) triple.
func Custom(scale int, seed int64, spec CustomSpec) (*graph.Graph, error) {
	spec = spec.withDefaults(scale)
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if scale < 2 {
		scale = 2
	}
	b := newBuilder(seed)

	label := func(i int) graph.Label {
		return graph.Label(fmt.Sprintf("L%d", i%spec.Labels))
	}

	// Vertices per community, assigned round-robin labels.
	commOf := make([][]graph.VertexID, spec.Communities)
	for i := 0; i < scale; i++ {
		c := i % spec.Communities
		v := b.vertex(label(i))
		commOf[c] = append(commOf[c], v)
	}

	// pickSkewed chooses an index with bias toward the front of the
	// slice: with probability HubSkew take the min of two draws.
	pickSkewed := func(pool []graph.VertexID) graph.VertexID {
		i := b.rng.Intn(len(pool))
		if b.rng.Float64() < spec.HubSkew {
			if j := b.rng.Intn(len(pool)); j < i {
				i = j
			}
		}
		return pool[i]
	}

	// Spanning path per community, so streams/partitions see connected
	// communities.
	for _, pool := range commOf {
		for i := 1; i < len(pool); i++ {
			b.edge(pool[i-1], pool[i])
		}
	}

	target := int(float64(scale) * spec.EdgeFactor)
	attempts := 0
	for b.g.NumEdges() < target && attempts < target*20 {
		attempts++
		c := b.rng.Intn(spec.Communities)
		pool := commOf[c]
		if len(pool) < 2 {
			continue
		}
		u := pickSkewed(pool)
		var v graph.VertexID
		if b.rng.Float64() < spec.CrossFraction {
			other := commOf[b.rng.Intn(spec.Communities)]
			v = pickSkewed(other)
		} else {
			v = pickSkewed(pool)
		}
		b.edge(u, v) // duplicates/self-loops silently skipped
	}
	return b.g, nil
}
