package dataset

import (
	"testing"

	"loom/internal/graph"
)

func TestCustomDefaults(t *testing.T) {
	g, err := Custom(4000, 7, CustomSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Labels()); got != 4 {
		t.Errorf("|LV| = %d, want default 4", got)
	}
	n, m := g.NumVertices(), g.NumEdges()
	if n != 4000 {
		t.Errorf("|V| = %d, want 4000", n)
	}
	ratio := float64(m) / float64(n)
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("|E|/|V| = %.2f, want near default 2.5", ratio)
	}
}

func TestCustomHeterogeneityAndDensity(t *testing.T) {
	g, err := Custom(3000, 1, CustomSpec{Labels: 12, EdgeFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Labels()); got != 12 {
		t.Errorf("|LV| = %d, want 12", got)
	}
	ratio := float64(g.NumEdges()) / float64(g.NumVertices())
	if ratio < 3.2 || ratio > 4.5 {
		t.Errorf("|E|/|V| = %.2f, want near 4", ratio)
	}
}

func TestCustomCommunityStructure(t *testing.T) {
	// With low cross fraction, most edges stay within a community.
	spec := CustomSpec{Labels: 3, EdgeFactor: 3, Communities: 10, CrossFraction: 0.02, HubSkew: 0.3}
	g, err := Custom(2000, 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	commOf := func(v graph.VertexID) int {
		// Vertices are created round-robin: builder IDs start at 1.
		return int(v-1) % 10
	}
	cross := 0
	for _, e := range g.Edges() {
		if commOf(e.U) != commOf(e.V) {
			cross++
		}
	}
	frac := float64(cross) / float64(g.NumEdges())
	if frac > 0.10 {
		t.Errorf("cross-community fraction = %.3f, want small", frac)
	}
}

func TestCustomHubSkewProducesHubs(t *testing.T) {
	flat, err := Custom(3000, 5, CustomSpec{HubSkew: 0.0001, EdgeFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Custom(3000, 5, CustomSpec{HubSkew: 0.9, EdgeFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := func(g *graph.Graph) int {
		max := 0
		for _, v := range g.Vertices() {
			if d := g.Degree(v); d > max {
				max = d
			}
		}
		return max
	}
	if maxDeg(skewed) <= maxDeg(flat) {
		t.Errorf("hub skew had no effect: max degree %d (skewed) vs %d (flat)",
			maxDeg(skewed), maxDeg(flat))
	}
}

func TestCustomDeterministic(t *testing.T) {
	spec := CustomSpec{Labels: 5, EdgeFactor: 2}
	g1, err := Custom(1000, 9, spec)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Custom(1000, 9, spec)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("not deterministic")
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestCustomValidation(t *testing.T) {
	cases := []CustomSpec{
		{Labels: -1},
		{EdgeFactor: 0.1},
		{Communities: -2},
		{CrossFraction: 1.5},
		{HubSkew: 1.0},
	}
	for i, spec := range cases {
		if _, err := Custom(100, 1, spec); err == nil {
			t.Errorf("case %d: want error for %+v", i, spec)
		}
	}
	// Tiny scale is clamped, not an error.
	if _, err := Custom(1, 1, CustomSpec{}); err != nil {
		t.Errorf("tiny scale: %v", err)
	}
}
