package refine

import (
	"testing"

	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
	"loom/internal/workload"
)

func provTrie(t testing.TB) *tpstry.Trie {
	t.Helper()
	wl, err := workload.ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 9)
	scheme.RegisterLabels(dataset.DatasetLabels("provgen"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return trie
}

func hashAssign(g *graph.Graph, k int) *partition.Assignment {
	h := partition.NewHash(k, partition.CapacityFor(g.NumVertices(), k, partition.DefaultImbalance))
	for _, se := range graph.StreamOf(g, graph.OrderOriginal, nil) {
		h.ProcessEdge(se)
	}
	return h.Assignment()
}

func TestRefineReducesWeightedCut(t *testing.T) {
	g, err := dataset.Generate("provgen", 3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	trie := provTrie(t)
	k := 4
	a := hashAssign(g, k)
	capC := partition.CapacityFor(g.NumVertices(), k, partition.DefaultImbalance)

	refined, st, err := Refine(g, a, trie, Config{Capacity: capC})
	if err != nil {
		t.Fatal(err)
	}
	if st.Moves == 0 {
		t.Fatal("no moves made on a hash partitioning")
	}
	if st.CutAfter >= st.CutBefore {
		t.Fatalf("weighted cut did not improve: %.1f → %.1f", st.CutBefore, st.CutAfter)
	}
	// Raw edge-cut should improve too (smoothing gives non-motif edges a
	// pull).
	if partition.EdgeCut(g, refined) >= partition.EdgeCut(g, a) {
		t.Error("raw edge-cut did not improve")
	}
	// Capacity respected.
	for p, size := range refined.Sizes {
		if float64(size) > capC+1e-9 {
			t.Errorf("partition %d has %d vertices, capacity %.1f", p, size, capC)
		}
	}
	// Total vertex count conserved.
	sum := 0
	for _, s := range refined.Sizes {
		sum += s
	}
	if sum != a.NumAssigned() {
		t.Errorf("vertices lost: %d vs %d", sum, a.NumAssigned())
	}
}

func TestRefineImprovesIPT(t *testing.T) {
	g, err := dataset.Generate("provgen", 3000, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	trie := provTrie(t)
	k := 4
	a := hashAssign(g, k)
	refined, _, err := Refine(g, a, trie, Config{Capacity: partition.CapacityFor(g.NumVertices(), k, partition.DefaultImbalance)})
	if err != nil {
		t.Fatal(err)
	}
	before, err := workload.Execute(g, a, wl, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := workload.Execute(g, refined, wl, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if after.IPT >= before.IPT {
		t.Errorf("ipt did not improve: %.1f → %.1f", before.IPT, after.IPT)
	}
	t.Logf("refinement: ipt %.1f → %.1f (%.1f%%)", before.IPT, after.IPT, 100*after.IPT/before.IPT)
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	g, err := dataset.Generate("provgen", 800, 2)
	if err != nil {
		t.Fatal(err)
	}
	trie := provTrie(t)
	a := hashAssign(g, 2)
	beforeParts := a.Parts()
	if _, _, err := Refine(g, a, trie, Config{Capacity: 1e9}); err != nil {
		t.Fatal(err)
	}
	afterParts := a.Parts()
	for v, p := range beforeParts {
		if afterParts[v] != p {
			t.Fatalf("input assignment mutated at vertex %d", v)
		}
	}
}

func TestRefineConvergesAndIsDeterministic(t *testing.T) {
	g, err := dataset.Generate("provgen", 1500, 8)
	if err != nil {
		t.Fatal(err)
	}
	trie := provTrie(t)
	a := hashAssign(g, 4)
	capC := partition.CapacityFor(g.NumVertices(), 4, partition.DefaultImbalance)
	r1, s1, err := Refine(g, a, trie, Config{Capacity: capC, MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := Refine(g, a, trie, Config{Capacity: capC, MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Moves != s2.Moves || s1.CutAfter != s2.CutAfter {
		t.Errorf("refinement not deterministic: %+v vs %+v", s1, s2)
	}
	p2 := r2.Parts()
	for v, p := range r1.Parts() {
		if p2[v] != p {
			t.Fatalf("assignments differ at %d", v)
		}
	}
	if s1.Passes > 10 {
		t.Error("pass bound exceeded")
	}
	// Refining an already-refined assignment should be (almost) a no-op.
	_, s3, err := Refine(g, r1, trie, Config{Capacity: capC, MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Moves > s1.Moves/10 {
		t.Errorf("second refinement made %d moves (first made %d): not converged", s3.Moves, s1.Moves)
	}
}

func TestRefineValidation(t *testing.T) {
	g := pattern.Path("a", "b")
	trie := provTrie(t)
	a := partition.AssignmentOf(2, nil)
	if _, _, err := Refine(g, a, trie, Config{}); err == nil {
		t.Error("zero capacity: want error")
	}
	bad := partition.AssignmentOf(0, nil)
	if _, _, err := Refine(g, bad, trie, Config{Capacity: 10}); err == nil {
		t.Error("K=0: want error")
	}
}

func TestRefineSkipsUnassigned(t *testing.T) {
	g := graph.New()
	for v, l := range map[graph.VertexID]graph.Label{1: "Entity", 2: "Activity", 3: "Entity"} {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	trie := provTrie(t)
	a := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{1: 0})
	refined, _, err := Refine(g, a, trie, Config{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Of(2) != partition.Unassigned {
		t.Error("unassigned vertex gained a partition")
	}
}
