// Package refine implements an offline, workload-aware re-partitioner in
// the spirit of TAPER (Firth & Missier, Distributed and Parallel Databases
// 2017) — the authors' companion system that §6 of the Loom paper proposes
// integrating with Loom to counter workload drift and streaming mistakes.
//
// Given a partitioned labelled graph and the workload's TPSTry++, every
// edge is weighted by the *traversal likelihood* the workload implies: the
// support of the single-edge motif matching its endpoint labels (edges no
// query traverses weigh nothing, plus a small uniform smoothing so pure
// edge-cut still improves on ties). Vertices then migrate greedily between
// partitions whenever the move strictly reduces the weighted cut without
// violating the capacity bound, for a bounded number of passes.
//
// This is intentionally a lightweight local refiner (Kernighan–Lin-flavour
// single-vertex moves, no swap chains): it runs after Loom has produced a
// partitioning and shaves off the placement mistakes a one-pass streaming
// algorithm cannot avoid, at the cost of breaking the strict streaming
// model — exactly the trade the paper describes for re-partitioners.
package refine

import (
	"fmt"
	"sort"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/tpstry"
)

// Config controls a refinement run.
type Config struct {
	// Capacity is the per-partition vertex bound (ν·n/k, as used by the
	// streaming phase). Required.
	Capacity float64
	// MaxPasses bounds the number of full sweeps (default 4; refinement
	// usually converges in 2–3).
	MaxPasses int
	// Smoothing is the uniform weight added to every edge so that edges
	// outside the workload's traversal set still prefer co-location
	// (default 0.01).
	Smoothing float64
}

func (c Config) withDefaults() Config {
	if c.MaxPasses == 0 {
		c.MaxPasses = 4
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.01
	}
	return c
}

// Stats reports what a refinement run did.
type Stats struct {
	Passes    int
	Moves     int
	CutBefore float64 // weighted cut before refinement
	CutAfter  float64
}

// Refine migrates vertices of g between the partitions of a to reduce the
// workload-weighted edge cut. It returns a new assignment (a is not
// modified) and run statistics. Unassigned vertices are left unassigned.
func Refine(g *graph.Graph, a *partition.Assignment, trie *tpstry.Trie, cfg Config) (*partition.Assignment, Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.Capacity <= 0 {
		return nil, Stats{}, fmt.Errorf("refine: Capacity must be positive, got %v", cfg.Capacity)
	}
	if a.K < 1 {
		return nil, Stats{}, fmt.Errorf("refine: assignment has no partitions")
	}

	// Edge weights: single-edge motif support + smoothing. Supports are
	// label-pair properties, so cache by label pair.
	scheme := trie.Scheme()
	weightOf := func(lu, lv graph.Label) float64 {
		d := scheme.EdgeDelta(lu, 0, lv, 0)
		if n, ok := trie.Root().ChildByDelta(d); ok {
			return trie.SupportOf(n) + cfg.Smoothing
		}
		return cfg.Smoothing
	}
	type pair struct{ a, b graph.Label }
	cache := make(map[pair]float64)
	weight := func(e graph.Edge) float64 {
		lu, lv := g.EdgeLabels(e)
		if lv < lu {
			lu, lv = lv, lu
		}
		k := pair{lu, lv}
		w, ok := cache[k]
		if !ok {
			w = weightOf(lu, lv)
			cache[k] = w
		}
		return w
	}

	// Working copy: the dense parts slice plus the assignment's vertex
	// table (shared; refinement never adds vertices).
	tbl := a.Table()
	parts := a.PartsClone()
	sizes := append([]int(nil), a.Sizes...)
	lookup := func(v graph.VertexID) partition.ID {
		i, ok := tbl.Lookup(int64(v))
		if !ok || int(i) >= len(parts) {
			return partition.Unassigned
		}
		return parts[i]
	}

	cut := func() float64 {
		total := 0.0
		for _, e := range g.Edges() {
			if lookup(e.U) != lookup(e.V) {
				total += weight(e)
			}
		}
		return total
	}

	st := Stats{CutBefore: cut()}

	// Deterministic sweep order: vertices sorted by ID.
	order := g.Vertices()
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var ns []graph.VertexID
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		moves := 0
		for _, v := range order {
			vi, ok := tbl.Lookup(int64(v))
			if !ok || int(vi) >= len(parts) {
				continue // unknown to the assignment: skip
			}
			cur := parts[vi]
			if cur == partition.Unassigned {
				continue // unassigned (e.g. still in a window): skip
			}
			// Weighted adjacency per partition.
			attract := make([]float64, a.K)
			ns = g.Neighbors(v, ns[:0])
			for _, u := range ns {
				if p := lookup(u); p != partition.Unassigned {
					attract[p] += weight(graph.Edge{U: v, V: u})
				}
			}
			best, bestGain := cur, 0.0
			for p := 0; p < a.K; p++ {
				pid := partition.ID(p)
				if pid == cur {
					continue
				}
				if float64(sizes[p])+1 > cfg.Capacity {
					continue
				}
				gain := attract[p] - attract[cur]
				if gain > bestGain+1e-12 {
					best, bestGain = pid, gain
				}
			}
			if best != cur {
				parts[vi] = best
				sizes[cur]--
				sizes[best]++
				moves++
			}
		}
		st.Passes++
		st.Moves += moves
		if moves == 0 {
			break
		}
	}

	st.CutAfter = cut()
	return partition.NewAssignmentFrom(a.K, tbl, parts), st, nil
}
