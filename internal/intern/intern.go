// Package intern provides the dense interning tables that back Loom's
// streaming hot path: a VertexTable mapping sparse external vertex IDs
// (int64) to dense uint32 indices, and a LabelTable mapping label strings to
// small uint16 codes.
//
// Loom's per-edge cost must stay constant and tiny (§4–5 of the paper): a
// single-pass online partitioner that hashes strings and sparse IDs on every
// bookkeeping access cannot keep up with serving-scale streams. Interning
// confines hashing to the ingest boundary — one int64 map probe per endpoint
// and one string map probe per label — after which every downstream
// structure (adjacency, partition assignments, window matchLists, label
// r-values) is a plain slice indexed by the dense index or code.
//
// Tables only grow; indices and codes are stable for the lifetime of the
// table, so any number of components (tracker, window, recorded graph) can
// share one table and index their own slices consistently.
//
// # Concurrency
//
// Tables are not safe for concurrent mutation (Loom's placement core is
// single-threaded by design, §6 of the paper), but they admit concurrent
// readers at two strengths:
//
// Quiescent reads: every read-only call — VertexTable.Lookup/ID/Len/IDs and
// LabelTable.Lookup/Name/Len/Names — is safe from any number of goroutines
// while no Intern runs. This is the contract behind the two-phase batch
// resolve in internal/core's ingest pipeline: phase one fans read-only
// Lookups of already-known vertices and labels across worker goroutines,
// then a single serial phase interns only the strings the stream has never
// seen (in arrival order, keeping dense indices bit-identical to sequential
// ingest), after which the new entries are visible to the next batch's
// parallel phase. The phases are separated by a goroutine join, so no
// happens-before edge is missing.
//
// Live reads: VertexTable.Lookup (and View.Lookup) additionally tolerates a
// single concurrent Intern-ing writer. Slots publish their dense index with
// an atomic release store after the external ID, the slot array itself is
// swapped with an atomic pointer on growth, and indices are never deleted —
// so a concurrent probe either finds an entry that was fully published or
// stops at an empty slot, never observes a torn one. A View captured at a
// known-consistent instant bounds Lookup to the vertices interned by then,
// which is what lets partition epochs serve lock-free point reads while the
// stream keeps interning (see internal/partition's Epoch). LabelTable makes
// no such promise: it is map-backed and supports quiescent reads only.
package intern

import (
	"fmt"
	"sync/atomic"
)

// MaxLabels bounds the label alphabet: codes are uint16 and the paper's
// datasets use alphabets of a handful of labels ("typically small", §1.3).
const MaxLabels = 1 << 16

// VertexTable interns external int64 vertex IDs as dense uint32 indices in
// first-seen order.
//
// The index is an open-addressing table whose slots carry the external ID
// alongside the dense index, so the overwhelmingly common case — probing
// an already-interned vertex — confirms the hit within the slot's own
// cache line. (The previous layout stored only the 4-byte index per slot
// and confirmed against the ids slice, paying a second, dependent cache
// miss on every probe of the per-edge hot path.) The ids slice remains
// the reverse mapping. Indices are never deleted, so there are no
// tombstones.
//
// Slot fields are written with atomic stores (ID first, index last) and the
// slot array is republished through an atomic pointer on growth, so Lookup
// is safe against one concurrent Intern-ing writer — see the package
// comment's "live reads" contract.
type VertexTable struct {
	slots atomic.Pointer[[]vtSlot] // current slot array; vtEmpty idx marks a free slot
	ids   []int64                  // dense index → external ID (writer-owned; readers use View)
}

// vtSlot is one hash slot: the interned external ID and its dense index.
// Both fields are accessed with sync/atomic functions (plain fields rather
// than atomic.Int64/Uint32 so grow and Clone can bulk-copy slot arrays).
type vtSlot struct {
	id  int64
	idx uint32
}

// vtEmpty marks a free hash slot. It can never be a real dense index:
// Intern panics before assigning index 2^32-1.
const vtEmpty = ^uint32(0)

// NewVertexTable returns an empty table pre-sized for capacityHint vertices.
func NewVertexTable(capacityHint int) *VertexTable {
	if capacityHint < 0 {
		capacityHint = 0
	}
	t := &VertexTable{ids: make([]int64, 0, capacityHint)}
	n := 0
	if capacityHint > 0 {
		n = SlotsFor(capacityHint, 16)
	}
	t.slots.Store(newSlotArray(n))
	return t
}

// newSlotArray allocates n empty slots (n must be 0 or a power of two).
func newSlotArray(n int) *[]vtSlot {
	slots := make([]vtSlot, n)
	for i := range slots {
		slots[i].idx = vtEmpty
	}
	return &slots
}

// SlotsFor returns the power-of-two slot count (at least min) that keeps
// an open-addressing table's load under 3/4 for n entries. Shared by the
// hot-path hash tables built on Mix64 (the vertex table here, the
// window's edge table).
func SlotsFor(n, min int) int {
	s := min
	for s*3 < n*4 {
		s *= 2
	}
	return s
}

// Mix64 finishes a 64-bit key with splitmix64's avalanche, spreading
// sequential IDs (or packed index pairs) over a power-of-two table.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func vtHash(id int64) uint64 { return Mix64(uint64(id)) }

// grow rebuilds the slot array at n slots and republishes it. The new array
// is fully populated with plain writes before the atomic pointer store, so
// concurrent readers see either the old array (still valid: entries are
// never deleted) or the complete new one.
func (t *VertexTable) grow(n int) *[]vtSlot {
	arr := newSlotArray(n)
	slots := *arr
	mask := uint64(n - 1)
	for idx, id := range t.ids {
		i := vtHash(id) & mask
		for slots[i].idx != vtEmpty {
			i = (i + 1) & mask
		}
		slots[i] = vtSlot{id: id, idx: uint32(idx)}
	}
	t.slots.Store(arr)
	return arr
}

// Intern returns the dense index of id, assigning the next free index on
// first use. Single writer only (see the package comment).
func (t *VertexTable) Intern(id int64) uint32 {
	arr := t.slots.Load()
	if (len(t.ids)+1)*4 > len(*arr)*3 {
		arr = t.grow(SlotsFor(len(t.ids)+1, 16))
	}
	slots := *arr
	mask := uint64(len(slots) - 1)
	i := vtHash(id) & mask
	for {
		s := &slots[i]
		if s.idx == vtEmpty {
			break
		}
		if s.id == id {
			return s.idx
		}
		i = (i + 1) & mask
	}
	if len(t.ids) >= int(^uint32(0)) {
		panic("intern: vertex table overflow (2^32-1 vertices)")
	}
	idx := uint32(len(t.ids))
	t.ids = append(t.ids, id)
	s := &slots[i]
	// Publish the slot for live readers: ID first, index last. A reader
	// that loads idx != vtEmpty is guaranteed to read the matching ID.
	atomic.StoreInt64(&s.id, id)
	atomic.StoreUint32(&s.idx, idx)
	return idx
}

// Lookup returns the dense index of id without interning it. Lookup is a
// pure read, safe from any number of goroutines even while a single writer
// is interning (the "live reads" contract in the package comment): slots
// publish atomically and are never deleted, so a probe either finds a fully
// published entry or stops at an empty slot. A concurrently-interned id may
// or may not be found — capture a View to pin the boundary.
func (t *VertexTable) Lookup(id int64) (uint32, bool) {
	slots := *t.slots.Load()
	if len(slots) == 0 {
		return 0, false
	}
	mask := uint64(len(slots) - 1)
	for i := vtHash(id) & mask; ; i = (i + 1) & mask {
		s := &slots[i]
		idx := atomic.LoadUint32(&s.idx)
		if idx == vtEmpty {
			return 0, false
		}
		if atomic.LoadInt64(&s.id) == id {
			return idx, true
		}
	}
}

// ID returns the external ID at dense index i. It panics if i has not been
// assigned.
func (t *VertexTable) ID(i uint32) int64 {
	if int(i) >= len(t.ids) {
		panic(fmt.Sprintf("intern: vertex index %d out of range (len %d)", i, len(t.ids)))
	}
	return t.ids[i]
}

// Len returns the number of interned vertices; valid indices are [0, Len).
func (t *VertexTable) Len() int { return len(t.ids) }

// IDs returns the interned external IDs in index order. The slice is owned
// by the table and must not be modified.
func (t *VertexTable) IDs() []int64 { return t.ids }

// MemBytes returns the table's memory footprint — the slot array plus the
// reverse mapping — for the recorded graph's memory accounting.
func (t *VertexTable) MemBytes() int {
	const slotBytes = 16 // vtSlot: int64 + uint32, padded
	return len(*t.slots.Load())*slotBytes + cap(t.ids)*8
}

// Clone returns a deep copy of the table. Like Intern, Clone runs on the
// writer side: it must not race a concurrent Intern.
func (t *VertexTable) Clone() *VertexTable {
	src := *t.slots.Load()
	c := &VertexTable{ids: append([]int64(nil), t.ids...)}
	slots := append([]vtSlot(nil), src...)
	c.slots.Store(&slots)
	return c
}

// View is an immutable point-in-time view of a VertexTable: the set of
// vertices interned when it was captured. Capture is O(1) — the view pins
// the reverse-mapping slice header (index-stable, append-only) and bounds
// lookups to it — and every View method is safe from any number of
// goroutines while the underlying table keeps interning, per the live-reads
// contract. Views are plain values; copy them freely.
type View struct {
	t   *VertexTable
	ids []int64 // captured reverse mapping; also the index bound
}

// View captures the table's current extent. Writer side only: it must not
// race a concurrent Intern (callers capture under their ingest lock, then
// hand the View to any number of readers).
func (t *VertexTable) View() View { return View{t: t, ids: t.ids} }

// Len returns the number of vertices in the view; valid indices are
// [0, Len).
func (v View) Len() int { return len(v.ids) }

// Lookup returns the dense index of id if it was interned by capture time.
// Vertices interned after the view was captured are reported absent, even
// though the live table already knows them.
func (v View) Lookup(id int64) (uint32, bool) {
	if v.t == nil {
		return 0, false
	}
	i, ok := v.t.Lookup(id)
	if !ok || int(i) >= len(v.ids) {
		return 0, false
	}
	return i, true
}

// ID returns the external ID at dense index i. It panics if i is beyond the
// view.
func (v View) ID(i uint32) int64 {
	if int(i) >= len(v.ids) {
		panic(fmt.Sprintf("intern: vertex index %d out of view (len %d)", i, len(v.ids)))
	}
	return v.ids[i]
}

// IDs returns the view's external IDs in index order. The slice is shared
// and immutable; it must not be modified.
func (v View) IDs() []int64 { return v.ids }

// Table returns the view's underlying live table. Lookups through it are
// concurrent-safe but not bounded by the view (use View.Lookup for that);
// it exists so read-only wrappers can share the table instead of cloning
// it. Interning through it from a reader goroutine violates the
// single-writer contract.
func (v View) Table() *VertexTable { return v.t }

// LabelTable interns label strings as dense uint16 codes in first-seen
// order.
type LabelTable struct {
	code  map[string]uint16
	names []string
}

// NewLabelTable returns an empty label table.
func NewLabelTable() *LabelTable {
	return &LabelTable{code: make(map[string]uint16)}
}

// Intern returns the code of name, assigning the next free code on first
// use. It panics past MaxLabels distinct labels (the alphabet LV is small by
// construction; overflowing it indicates corrupt input, e.g. IDs fed as
// labels).
func (t *LabelTable) Intern(name string) uint16 {
	if c, ok := t.code[name]; ok {
		return c
	}
	if len(t.names) >= MaxLabels {
		panic(fmt.Sprintf("intern: label table overflow (%d distinct labels)", MaxLabels))
	}
	c := uint16(len(t.names))
	t.code[name] = c
	t.names = append(t.names, name)
	return c
}

// Lookup returns the code of name without interning it. Unlike
// VertexTable.Lookup it supports quiescent reads only: safe for concurrent
// readers while no Intern is running.
func (t *LabelTable) Lookup(name string) (uint16, bool) {
	c, ok := t.code[name]
	return c, ok
}

// Name returns the label string for code c. It panics if c has not been
// assigned.
func (t *LabelTable) Name(c uint16) string {
	if int(c) >= len(t.names) {
		panic(fmt.Sprintf("intern: label code %d out of range (len %d)", c, len(t.names)))
	}
	return t.names[c]
}

// Len returns the number of interned labels; valid codes are [0, Len).
func (t *LabelTable) Len() int { return len(t.names) }

// Names returns the interned labels in code order. The slice is owned by
// the table and must not be modified.
func (t *LabelTable) Names() []string { return t.names }

// Clone returns a deep copy of the table.
func (t *LabelTable) Clone() *LabelTable {
	c := &LabelTable{
		code:  make(map[string]uint16, len(t.code)),
		names: append([]string(nil), t.names...),
	}
	for n, cd := range t.code {
		c.code[n] = cd
	}
	return c
}
