// Package intern provides the dense interning tables that back Loom's
// streaming hot path: a VertexTable mapping sparse external vertex IDs
// (int64) to dense uint32 indices, and a LabelTable mapping label strings to
// small uint16 codes.
//
// Loom's per-edge cost must stay constant and tiny (§4–5 of the paper): a
// single-pass online partitioner that hashes strings and sparse IDs on every
// bookkeeping access cannot keep up with serving-scale streams. Interning
// confines hashing to the ingest boundary — one int64 map probe per endpoint
// and one string map probe per label — after which every downstream
// structure (adjacency, partition assignments, window matchLists, label
// r-values) is a plain slice indexed by the dense index or code.
//
// Tables only grow; indices and codes are stable for the lifetime of the
// table, so any number of components (tracker, window, recorded graph) can
// share one table and index their own slices consistently.
//
// # Concurrency
//
// Tables are not safe for concurrent mutation (Loom's placement core is
// single-threaded by design, §6 of the paper), but both tables guarantee
// that read-only calls — VertexTable.Lookup/ID/Len/IDs and
// LabelTable.Lookup/Name/Len/Names — are safe from any number of
// goroutines AS LONG AS no Intern runs concurrently. This is the contract
// behind the two-phase batch resolve in internal/core's ingest pipeline:
// phase one fans read-only Lookups of already-known vertices and labels
// across worker goroutines, then a single serial phase interns only the
// strings the stream has never seen (in arrival order, keeping dense
// indices bit-identical to sequential ingest), after which the new entries
// are visible to the next batch's parallel phase. The phases are separated
// by a goroutine join, so no happens-before edge is missing.
package intern

import "fmt"

// MaxLabels bounds the label alphabet: codes are uint16 and the paper's
// datasets use alphabets of a handful of labels ("typically small", §1.3).
const MaxLabels = 1 << 16

// VertexTable interns external int64 vertex IDs as dense uint32 indices in
// first-seen order.
//
// The index is an open-addressing table whose slots carry the external ID
// alongside the dense index, so the overwhelmingly common case — probing
// an already-interned vertex — confirms the hit within the slot's own
// cache line. (The previous layout stored only the 4-byte index per slot
// and confirmed against the ids slice, paying a second, dependent cache
// miss on every probe of the per-edge hot path.) The ids slice remains
// the reverse mapping. Indices are never deleted, so there are no
// tombstones.
type VertexTable struct {
	slots []vtSlot // vtEmpty idx marks a free slot
	ids   []int64  // dense index → external ID
}

// vtSlot is one hash slot: the interned external ID and its dense index.
type vtSlot struct {
	id  int64
	idx uint32
}

// vtEmpty marks a free hash slot. It can never be a real dense index:
// Intern panics before assigning index 2^32-1.
const vtEmpty = ^uint32(0)

// NewVertexTable returns an empty table pre-sized for capacityHint vertices.
func NewVertexTable(capacityHint int) *VertexTable {
	if capacityHint < 0 {
		capacityHint = 0
	}
	t := &VertexTable{ids: make([]int64, 0, capacityHint)}
	if capacityHint > 0 {
		t.grow(SlotsFor(capacityHint, 16))
	}
	return t
}

// SlotsFor returns the power-of-two slot count (at least min) that keeps
// an open-addressing table's load under 3/4 for n entries. Shared by the
// hot-path hash tables built on Mix64 (the vertex table here, the
// window's edge table).
func SlotsFor(n, min int) int {
	s := min
	for s*3 < n*4 {
		s *= 2
	}
	return s
}

// Mix64 finishes a 64-bit key with splitmix64's avalanche, spreading
// sequential IDs (or packed index pairs) over a power-of-two table.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func vtHash(id int64) uint64 { return Mix64(uint64(id)) }

func (t *VertexTable) grow(n int) {
	slots := make([]vtSlot, n)
	for i := range slots {
		slots[i].idx = vtEmpty
	}
	mask := uint64(n - 1)
	for idx, id := range t.ids {
		i := vtHash(id) & mask
		for slots[i].idx != vtEmpty {
			i = (i + 1) & mask
		}
		slots[i] = vtSlot{id: id, idx: uint32(idx)}
	}
	t.slots = slots
}

// Intern returns the dense index of id, assigning the next free index on
// first use.
func (t *VertexTable) Intern(id int64) uint32 {
	if (len(t.ids)+1)*4 > len(t.slots)*3 {
		t.grow(SlotsFor(len(t.ids)+1, 16))
	}
	mask := uint64(len(t.slots) - 1)
	i := vtHash(id) & mask
	for {
		s := &t.slots[i]
		if s.idx == vtEmpty {
			break
		}
		if s.id == id {
			return s.idx
		}
		i = (i + 1) & mask
	}
	if len(t.ids) >= int(^uint32(0)) {
		panic("intern: vertex table overflow (2^32-1 vertices)")
	}
	idx := uint32(len(t.ids))
	t.slots[i] = vtSlot{id: id, idx: idx}
	t.ids = append(t.ids, id)
	return idx
}

// Lookup returns the dense index of id without interning it. Lookup is a
// pure read: any number of goroutines may call it concurrently while no
// Intern is running (the parallel batch pre-pass depends on this).
func (t *VertexTable) Lookup(id int64) (uint32, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := vtHash(id) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.idx == vtEmpty {
			return 0, false
		}
		if s.id == id {
			return s.idx, true
		}
	}
}

// ID returns the external ID at dense index i. It panics if i has not been
// assigned.
func (t *VertexTable) ID(i uint32) int64 {
	if int(i) >= len(t.ids) {
		panic(fmt.Sprintf("intern: vertex index %d out of range (len %d)", i, len(t.ids)))
	}
	return t.ids[i]
}

// Len returns the number of interned vertices; valid indices are [0, Len).
func (t *VertexTable) Len() int { return len(t.ids) }

// IDs returns the interned external IDs in index order. The slice is owned
// by the table and must not be modified.
func (t *VertexTable) IDs() []int64 { return t.ids }

// Clone returns a deep copy of the table.
func (t *VertexTable) Clone() *VertexTable {
	return &VertexTable{
		slots: append([]vtSlot(nil), t.slots...),
		ids:   append([]int64(nil), t.ids...),
	}
}

// LabelTable interns label strings as dense uint16 codes in first-seen
// order.
type LabelTable struct {
	code  map[string]uint16
	names []string
}

// NewLabelTable returns an empty label table.
func NewLabelTable() *LabelTable {
	return &LabelTable{code: make(map[string]uint16)}
}

// Intern returns the code of name, assigning the next free code on first
// use. It panics past MaxLabels distinct labels (the alphabet LV is small by
// construction; overflowing it indicates corrupt input, e.g. IDs fed as
// labels).
func (t *LabelTable) Intern(name string) uint16 {
	if c, ok := t.code[name]; ok {
		return c
	}
	if len(t.names) >= MaxLabels {
		panic(fmt.Sprintf("intern: label table overflow (%d distinct labels)", MaxLabels))
	}
	c := uint16(len(t.names))
	t.code[name] = c
	t.names = append(t.names, name)
	return c
}

// Lookup returns the code of name without interning it. Like
// VertexTable.Lookup, it is safe for concurrent readers while no Intern is
// running.
func (t *LabelTable) Lookup(name string) (uint16, bool) {
	c, ok := t.code[name]
	return c, ok
}

// Name returns the label string for code c. It panics if c has not been
// assigned.
func (t *LabelTable) Name(c uint16) string {
	if int(c) >= len(t.names) {
		panic(fmt.Sprintf("intern: label code %d out of range (len %d)", c, len(t.names)))
	}
	return t.names[c]
}

// Len returns the number of interned labels; valid codes are [0, Len).
func (t *LabelTable) Len() int { return len(t.names) }

// Names returns the interned labels in code order. The slice is owned by
// the table and must not be modified.
func (t *LabelTable) Names() []string { return t.names }

// Clone returns a deep copy of the table.
func (t *LabelTable) Clone() *LabelTable {
	c := &LabelTable{
		code:  make(map[string]uint16, len(t.code)),
		names: append([]string(nil), t.names...),
	}
	for n, cd := range t.code {
		c.code[n] = cd
	}
	return c
}
