package intern

import "fmt"

// RestoreIDs re-interns ids, in order, into an empty vertex table. Dense
// indices are assigned first-seen, so replaying the original dense order
// reproduces every index exactly; a duplicate in ids (which would shift
// all later indices) is rejected.
func (t *VertexTable) RestoreIDs(ids []int64) error {
	if t.Len() != 0 {
		return fmt.Errorf("intern: RestoreIDs on a non-empty vertex table (%d entries)", t.Len())
	}
	for i, id := range ids {
		if got := t.Intern(id); int(got) != i {
			return fmt.Errorf("intern: vertex %d duplicated in restored ID list (index %d vs %d)", id, got, i)
		}
	}
	return nil
}

// RestoreNames re-interns label names, in order, into an empty label
// table, reproducing every label code (see RestoreIDs).
func (t *LabelTable) RestoreNames(names []string) error {
	if t.Len() != 0 {
		return fmt.Errorf("intern: RestoreNames on a non-empty label table (%d entries)", t.Len())
	}
	for i, name := range names {
		if got := t.Intern(name); int(got) != i {
			return fmt.Errorf("intern: label %q duplicated in restored name list (code %d vs %d)", name, got, i)
		}
	}
	return nil
}
