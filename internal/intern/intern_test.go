package intern

import (
	"fmt"
	"testing"
)

func TestVertexTableInternLookup(t *testing.T) {
	vt := NewVertexTable(4)
	if vt.Len() != 0 {
		t.Fatalf("new table Len = %d", vt.Len())
	}
	a := vt.Intern(100)
	b := vt.Intern(-7)
	c := vt.Intern(100) // repeat
	if a != 0 || b != 1 || c != a {
		t.Fatalf("indices = %d,%d,%d; want 0,1,0", a, b, c)
	}
	if vt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", vt.Len())
	}
	if got := vt.ID(0); got != 100 {
		t.Errorf("ID(0) = %d, want 100", got)
	}
	if got := vt.ID(1); got != -7 {
		t.Errorf("ID(1) = %d, want -7", got)
	}
	if i, ok := vt.Lookup(-7); !ok || i != 1 {
		t.Errorf("Lookup(-7) = %d,%v; want 1,true", i, ok)
	}
	if _, ok := vt.Lookup(999); ok {
		t.Error("Lookup(999) found a missing ID")
	}
	if ids := vt.IDs(); len(ids) != 2 || ids[0] != 100 || ids[1] != -7 {
		t.Errorf("IDs() = %v", ids)
	}
}

func TestVertexTableIDOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ID out of range: want panic")
		}
	}()
	NewVertexTable(0).ID(0)
}

func TestVertexTableClone(t *testing.T) {
	vt := NewVertexTable(0)
	vt.Intern(1)
	vt.Intern(2)
	c := vt.Clone()
	c.Intern(3)
	if vt.Len() != 2 || c.Len() != 3 {
		t.Fatalf("Len after clone mutate: orig %d clone %d", vt.Len(), c.Len())
	}
	if i, ok := c.Lookup(1); !ok || i != 0 {
		t.Errorf("clone Lookup(1) = %d,%v", i, ok)
	}
}

func TestLabelTableInternLookup(t *testing.T) {
	lt := NewLabelTable()
	a := lt.Intern("person")
	b := lt.Intern("city")
	c := lt.Intern("person")
	if a != 0 || b != 1 || c != a {
		t.Fatalf("codes = %d,%d,%d; want 0,1,0", a, b, c)
	}
	if lt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", lt.Len())
	}
	if got := lt.Name(1); got != "city" {
		t.Errorf("Name(1) = %q", got)
	}
	if cd, ok := lt.Lookup("city"); !ok || cd != 1 {
		t.Errorf("Lookup(city) = %d,%v", cd, ok)
	}
	if _, ok := lt.Lookup("venue"); ok {
		t.Error("Lookup(venue) found a missing label")
	}
}

func TestLabelTableClone(t *testing.T) {
	lt := NewLabelTable()
	lt.Intern("a")
	c := lt.Clone()
	c.Intern("b")
	if lt.Len() != 1 || c.Len() != 2 {
		t.Fatalf("Len after clone mutate: orig %d clone %d", lt.Len(), c.Len())
	}
	if names := c.Names(); names[0] != "a" || names[1] != "b" {
		t.Errorf("clone Names() = %v", names)
	}
}

func TestLabelTableNameOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name out of range: want panic")
		}
	}()
	NewLabelTable().Name(0)
}

// TestConcurrentLookups pins the package's read-concurrency contract: with
// no Intern running, Lookup/ID/Len on both tables are safe from any number
// of goroutines (run under -race in CI). The batch-ingest pipeline's
// parallel resolve phase depends on this.
func TestConcurrentLookups(t *testing.T) {
	vt := NewVertexTable(0)
	lt := NewLabelTable()
	labels := []string{"a", "b", "c", "d"}
	for i := int64(0); i < 1000; i++ {
		vt.Intern(i * 31)
		lt.Intern(labels[i%int64(len(labels))])
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := int64(0); i < 1000; i++ {
				id := (i + int64(g)*7) % 1000 * 31
				idx, ok := vt.Lookup(id)
				if !ok || vt.ID(idx) != id {
					done <- fmt.Errorf("Lookup(%d) = %d,%v", id, idx, ok)
					return
				}
				if _, ok := vt.Lookup(id + 1); ok {
					done <- fmt.Errorf("Lookup(%d) found a missing ID", id+1)
					return
				}
				if c, ok := lt.Lookup(labels[i%int64(len(labels))]); !ok || lt.Name(c) != labels[i%int64(len(labels))] {
					done <- fmt.Errorf("label Lookup(%q) = %d,%v", labels[i%int64(len(labels))], c, ok)
					return
				}
				if _, ok := lt.Lookup("nope"); ok {
					done <- fmt.Errorf("label Lookup found a missing name")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
