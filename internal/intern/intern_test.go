package intern

import "testing"

func TestVertexTableInternLookup(t *testing.T) {
	vt := NewVertexTable(4)
	if vt.Len() != 0 {
		t.Fatalf("new table Len = %d", vt.Len())
	}
	a := vt.Intern(100)
	b := vt.Intern(-7)
	c := vt.Intern(100) // repeat
	if a != 0 || b != 1 || c != a {
		t.Fatalf("indices = %d,%d,%d; want 0,1,0", a, b, c)
	}
	if vt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", vt.Len())
	}
	if got := vt.ID(0); got != 100 {
		t.Errorf("ID(0) = %d, want 100", got)
	}
	if got := vt.ID(1); got != -7 {
		t.Errorf("ID(1) = %d, want -7", got)
	}
	if i, ok := vt.Lookup(-7); !ok || i != 1 {
		t.Errorf("Lookup(-7) = %d,%v; want 1,true", i, ok)
	}
	if _, ok := vt.Lookup(999); ok {
		t.Error("Lookup(999) found a missing ID")
	}
	if ids := vt.IDs(); len(ids) != 2 || ids[0] != 100 || ids[1] != -7 {
		t.Errorf("IDs() = %v", ids)
	}
}

func TestVertexTableIDOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ID out of range: want panic")
		}
	}()
	NewVertexTable(0).ID(0)
}

func TestVertexTableClone(t *testing.T) {
	vt := NewVertexTable(0)
	vt.Intern(1)
	vt.Intern(2)
	c := vt.Clone()
	c.Intern(3)
	if vt.Len() != 2 || c.Len() != 3 {
		t.Fatalf("Len after clone mutate: orig %d clone %d", vt.Len(), c.Len())
	}
	if i, ok := c.Lookup(1); !ok || i != 0 {
		t.Errorf("clone Lookup(1) = %d,%v", i, ok)
	}
}

func TestLabelTableInternLookup(t *testing.T) {
	lt := NewLabelTable()
	a := lt.Intern("person")
	b := lt.Intern("city")
	c := lt.Intern("person")
	if a != 0 || b != 1 || c != a {
		t.Fatalf("codes = %d,%d,%d; want 0,1,0", a, b, c)
	}
	if lt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", lt.Len())
	}
	if got := lt.Name(1); got != "city" {
		t.Errorf("Name(1) = %q", got)
	}
	if cd, ok := lt.Lookup("city"); !ok || cd != 1 {
		t.Errorf("Lookup(city) = %d,%v", cd, ok)
	}
	if _, ok := lt.Lookup("venue"); ok {
		t.Error("Lookup(venue) found a missing label")
	}
}

func TestLabelTableClone(t *testing.T) {
	lt := NewLabelTable()
	lt.Intern("a")
	c := lt.Clone()
	c.Intern("b")
	if lt.Len() != 1 || c.Len() != 2 {
		t.Fatalf("Len after clone mutate: orig %d clone %d", lt.Len(), c.Len())
	}
	if names := c.Names(); names[0] != "a" || names[1] != "b" {
		t.Errorf("clone Names() = %v", names)
	}
}

func TestLabelTableNameOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name out of range: want panic")
		}
	}()
	NewLabelTable().Name(0)
}
