// Package simulate models the distributed execution of a pattern-matching
// query workload over a partitioned graph — the setting the Loom paper
// measures by proxy. §5.1 explains why the paper reports ipt instead of
// wall-clock latency: "lacking a distributed query processing engine, query
// workloads are executed over logical partitions [and] in the absence of
// network latency, query response times are meaningless". This package
// closes that gap with an explicit cost model: every adjacency step the
// matcher takes is served by the machine owning the source vertex, costing
// LocalCost within a machine and RemoteCost (a network hop) across
// machines. Total simulated cost, hop counts and per-machine load are
// reported, turning Loom's ipt advantage into the latency-flavoured number
// a capacity planner would ask for.
package simulate

import (
	"fmt"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/workload"
)

// CostModel prices one adjacency traversal. The defaults follow the usual
// envelope numbers the paper's motivation implies: an in-memory pointer
// dereference versus a LAN round trip is ~3 orders of magnitude.
type CostModel struct {
	// LocalCost is charged when the traversed edge stays on one machine
	// (default 1 unit, ≈ a pointer dereference).
	LocalCost float64
	// RemoteCost is charged when the edge crosses machines (default
	// 1000 units, ≈ a network hop).
	RemoteCost float64
}

func (m CostModel) withDefaults() CostModel {
	if m.LocalCost == 0 {
		m.LocalCost = 1
	}
	if m.RemoteCost == 0 {
		m.RemoteCost = 1000
	}
	return m
}

// QueryCost reports one query's simulated execution.
type QueryCost struct {
	Name       string
	LocalHops  int
	RemoteHops int
	// Cost is (LocalHops·LocalCost + RemoteHops·RemoteCost) · Freq.
	Cost float64
}

// Result aggregates a simulated workload execution.
type Result struct {
	Workload   string
	LocalHops  int
	RemoteHops int
	// TotalCost is the frequency-weighted cost over all queries.
	TotalCost float64
	// MachineLoad[i] counts traversal steps served by machine i (adjacency
	// reads at vertices it owns); index K is the share served by Ptemp /
	// unassigned vertices, if any.
	MachineLoad []int
	PerQuery    []QueryCost
}

// LoadImbalance returns max(load)/mean(load) − 1 over the k real machines,
// the query-serving balance (distinct from the vertex-count balance the
// partitioners enforce).
func (r Result) LoadImbalance() float64 {
	if len(r.MachineLoad) == 0 {
		return 0
	}
	k := len(r.MachineLoad) - 1 // last slot is Ptemp
	total, max := 0, 0
	for _, l := range r.MachineLoad[:k] {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(k)
	return float64(max)/mean - 1
}

// Run simulates the workload over g partitioned by a. Every adjacency
// expansion of the exact matcher is priced; enumeration per query is capped
// by maxMatches (0 = executor default).
func Run(g *graph.Graph, a *partition.Assignment, wl workload.Workload, model CostModel, maxMatches int) (Result, error) {
	if err := wl.Validate(); err != nil {
		return Result{}, err
	}
	model = model.withDefaults()
	if maxMatches == 0 {
		maxMatches = 2_000_000
	}
	res := Result{
		Workload:    wl.Name,
		MachineLoad: make([]int, a.K+1),
	}
	for _, q := range wl.Queries {
		m, err := pattern.NewMatcher(q.Pattern)
		if err != nil {
			return Result{}, fmt.Errorf("simulate: query %q: %w", q.Name, err)
		}
		qc := QueryCost{Name: q.Name}
		matches := 0
		m.Embeddings(g, pattern.Options{
			Limit: maxMatches,
			OnTraverse: func(from, to graph.VertexID) {
				pf, pt := a.Of(from), a.Of(to)
				slot := int(pf)
				if pf == partition.Unassigned {
					slot = a.K // Ptemp serves the read
				}
				res.MachineLoad[slot]++
				if pf == pt {
					qc.LocalHops++
				} else {
					qc.RemoteHops++
				}
			},
		}, func(pattern.Embedding) bool {
			matches++
			return matches < maxMatches
		})
		qc.Cost = (float64(qc.LocalHops)*model.LocalCost + float64(qc.RemoteHops)*model.RemoteCost) * q.Freq
		res.LocalHops += qc.LocalHops
		res.RemoteHops += qc.RemoteHops
		res.TotalCost += qc.Cost
		res.PerQuery = append(res.PerQuery, qc)
	}
	return res, nil
}

// Speedup returns base.TotalCost / r.TotalCost — "how many times cheaper"
// r's partitioning makes the workload (e.g. Loom vs Hash).
func Speedup(r, base Result) float64 {
	if r.TotalCost == 0 {
		return 1
	}
	return base.TotalCost / r.TotalCost
}
