package simulate

import (
	"math"
	"testing"

	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/workload"
)

func twoTrianglesGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	labels := map[graph.VertexID]graph.Label{
		1: "a", 2: "b", 3: "c",
		4: "a", 5: "b", 6: "c",
	}
	for v, l := range labels {
		if err := g.AddVertex(v, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 3}, {U: 4, V: 5}, {U: 5, V: 6}, {U: 4, V: 6}} {
		if err := g.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func triangleWorkload() workload.Workload {
	return workload.Workload{Name: "tri", Queries: []workload.Query{{
		Name: "triangle", Pattern: pattern.Triangle("a", "b", "c"), Freq: 1,
	}}}
}

func TestPerfectPartitioningHasNoRemoteHops(t *testing.T) {
	g := twoTrianglesGraph(t)
	a := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{
		1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1,
	})
	res, err := Run(g, a, triangleWorkload(), CostModel{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteHops != 0 {
		t.Errorf("remote hops = %d, want 0", res.RemoteHops)
	}
	if res.LocalHops == 0 {
		t.Error("no local hops recorded")
	}
	// Cost = localHops × 1 × freq.
	if math.Abs(res.TotalCost-float64(res.LocalHops)) > 1e-9 {
		t.Errorf("cost = %v, want %v", res.TotalCost, res.LocalHops)
	}
}

func TestSplitTriangleCostsRemoteHops(t *testing.T) {
	g := twoTrianglesGraph(t)
	// Split the first triangle across machines.
	a := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{
		1: 0, 2: 1, 3: 0, 4: 1, 5: 1, 6: 1,
	})
	res, err := Run(g, a, triangleWorkload(), CostModel{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteHops == 0 {
		t.Error("split triangle must incur remote hops")
	}
	// Remote hops dominate the cost at the default 1000× ratio.
	if res.TotalCost < 1000 {
		t.Errorf("cost = %v, expected ≥ one remote hop", res.TotalCost)
	}
}

func TestUnassignedServedByPtemp(t *testing.T) {
	g := twoTrianglesGraph(t)
	a := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{
		1: 0, 2: 0, 3: 0, // triangle 2 unassigned
	})
	res, err := Run(g, a, triangleWorkload(), CostModel{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MachineLoad[2] == 0 {
		t.Error("Ptemp slot recorded no load for unassigned vertices")
	}
}

func TestSpeedupLoomVsHashOnProvgen(t *testing.T) {
	g, err := dataset.Generate("provgen", 2500, 6)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	stream := graph.StreamOf(g, graph.OrderBFS, nil)
	k := 4
	capC := partition.CapacityFor(g.NumVertices(), k, partition.DefaultImbalance)

	hash := partition.NewHash(k, capC)
	ldg := partition.NewLDG(k, capC)
	for _, se := range stream {
		hash.ProcessEdge(se)
		ldg.ProcessEdge(se)
	}
	hashRes, err := Run(g, hash.Assignment(), wl, CostModel{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	ldgRes, err := Run(g, ldg.Assignment(), wl, CostModel{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	sp := Speedup(ldgRes, hashRes)
	if sp <= 1 {
		t.Errorf("LDG speedup over Hash = %.2f, want > 1", sp)
	}
	t.Logf("simulated LDG speedup over Hash: %.2fx (remote hops %d vs %d)",
		sp, ldgRes.RemoteHops, hashRes.RemoteHops)
}

func TestLoadImbalance(t *testing.T) {
	r := Result{MachineLoad: []int{100, 100, 100, 100, 0}} // 4 machines + Ptemp
	if got := r.LoadImbalance(); got != 0 {
		t.Errorf("balanced load imbalance = %v", got)
	}
	r2 := Result{MachineLoad: []int{300, 100, 100, 100, 0}}
	if got := r2.LoadImbalance(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("skewed load imbalance = %v, want 1.0", got)
	}
	empty := Result{}
	if empty.LoadImbalance() != 0 {
		t.Error("empty result imbalance")
	}
}

func TestRunValidation(t *testing.T) {
	g := twoTrianglesGraph(t)
	a := partition.AssignmentOf(1, nil)
	if _, err := Run(g, a, workload.Workload{Name: "empty"}, CostModel{}, 0); err == nil {
		t.Error("empty workload: want error")
	}
}

func TestCostModelDefaults(t *testing.T) {
	m := CostModel{}.withDefaults()
	if m.LocalCost != 1 || m.RemoteCost != 1000 {
		t.Errorf("defaults = %+v", m)
	}
	custom := CostModel{LocalCost: 2, RemoteCost: 50}.withDefaults()
	if custom.LocalCost != 2 || custom.RemoteCost != 50 {
		t.Errorf("custom overridden: %+v", custom)
	}
}
