package core

import (
	"math/rand"
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
)

// restreamSetup partitions a random stream once, then replays a reshuffled
// stream with the first assignment as prior.
func restreamSetup(t *testing.T, withPrior bool) (*Loom, *partition.Assignment) {
	t.Helper()
	trie := paperTrie(t)
	r := rand.New(rand.NewSource(21))
	s := ringOfCliques(r, 16, 8, []graph.Label{"a", "b", "c"})
	distinct := make(map[graph.VertexID]struct{})
	for _, se := range s {
		distinct[se.U] = struct{}{}
		distinct[se.V] = struct{}{}
	}
	n := len(distinct)
	capC := partition.CapacityFor(n, 4, partition.DefaultImbalance)

	first := mustLoom(t, Config{K: 4, Capacity: capC, WindowSize: 64}, trie)
	for _, se := range s {
		first.ProcessEdge(se)
	}
	first.Flush()
	prior := first.Assignment()

	cfg := Config{K: 4, Capacity: capC, WindowSize: 64}
	if withPrior {
		cfg.Prior = prior
	}
	second := mustLoom(t, cfg, trie)
	shuffled := append(graph.Stream(nil), s...)
	r2 := rand.New(rand.NewSource(99))
	r2.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, se := range shuffled {
		second.ProcessEdge(se)
	}
	second.Flush()
	return second, prior
}

func TestPriorIsConsulted(t *testing.T) {
	second, _ := restreamSetup(t, true)
	if second.Stats().PriorPlacements == 0 {
		t.Error("restream pass never consulted the prior")
	}
}

func TestPriorIncreasesAgreement(t *testing.T) {
	// With a prior, the second pass should agree with the first pass's
	// placement more often than an independent run does.
	withPrior, prior := restreamSetup(t, true)
	without, _ := restreamSetup(t, false)

	agree := func(a *partition.Assignment) float64 {
		same, total := 0, 0
		for v, p := range prior.Parts() {
			total++
			if a.Of(v) == p {
				same++
			}
		}
		return float64(same) / float64(total)
	}
	ap := agree(withPrior.Assignment())
	an := agree(without.Assignment())
	if ap <= an {
		t.Errorf("prior agreement %.3f <= independent agreement %.3f", ap, an)
	}
	t.Logf("agreement with prior: %.3f, without: %.3f", ap, an)
}

func TestPriorIgnoredWhenInvalid(t *testing.T) {
	trie := paperTrie(t)
	// Prior with a partition id beyond K must be ignored, not crash.
	prior := partition.AssignmentOf(16, map[graph.VertexID]partition.ID{1: 12, 2: 12})
	l := mustLoom(t, Config{K: 2, Capacity: 50, WindowSize: 8, Prior: prior}, trie)
	l.ProcessEdge(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"})
	l.Flush()
	if got := l.Tracker().PartOf(1); got != 0 && got != 1 {
		t.Errorf("vertex 1 in invalid partition %d", got)
	}
}

func TestPriorRespectsCapacity(t *testing.T) {
	trie := paperTrie(t)
	prior := partition.AssignmentOf(2, map[graph.VertexID]partition.ID{10: 0, 11: 0, 12: 0})
	// Capacity 2: partition 0 is full after two assignments; the prior
	// must not push it over.
	l := mustLoom(t, Config{K: 2, Capacity: 2, WindowSize: 4, Prior: prior}, trie)
	l.Tracker().Assign(100, 0)
	l.Tracker().Assign(101, 0)
	l.ProcessEdge(graph.StreamEdge{U: 10, LU: "d", V: 11, LV: "e"}) // non-motif → immediate
	if got := l.Tracker().PartOf(10); got == 0 {
		t.Error("prior placement violated capacity")
	}
}
