package core

import (
	"math/rand"
	"testing"

	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/signature"

	"loom/internal/workload"
)

// datasetLoom builds a Loom for one of the canonical datasets.
func datasetLoom(t testing.TB, ds string, n, k, win int) *Loom {
	t.Helper()
	wl, err := workload.ForDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 11)
	scheme.RegisterLabels(dataset.DatasetLabels(ds))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(Config{
		K:          k,
		Capacity:   partition.CapacityFor(n, k, partition.DefaultImbalance),
		WindowSize: win,
	}, trie)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSoakAllDatasets runs the full pipeline for every dataset and order
// at small scale, checking structural invariants after every run.
func TestSoakAllDatasets(t *testing.T) {
	for _, ds := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		for _, order := range graph.Orders() {
			g, err := dataset.Generate(ds, 1500, 3)
			if err != nil {
				t.Fatal(err)
			}
			stream := graph.StreamOf(g, order, rand.New(rand.NewSource(5)))
			l := datasetLoom(t, ds, g.NumVertices(), 4, 128)
			maxWin := 0
			// Bounded memory: the window FIFO must stay within a small
			// multiple of the window capacity however long the stream
			// runs (it compacts once tombstones dominate).
			const fifoBound = 4*128 + 128
			for _, se := range stream {
				l.ProcessEdge(se)
				if w := l.Window().Len(); w > maxWin {
					maxWin = w
				}
				if l.Window().Len() > 128 {
					t.Fatalf("%s/%s: window exceeded capacity: %d", ds, order, l.Window().Len())
				}
				if f := l.Window().FIFOLen(); f > fifoBound {
					t.Fatalf("%s/%s: window FIFO grew unbounded: %d entries", ds, order, f)
				}
			}
			l.Flush()

			a := l.Assignment()
			if a.NumAssigned() != g.NumVertices() {
				t.Errorf("%s/%s: assigned %d of %d", ds, order, a.NumAssigned(), g.NumVertices())
			}
			total := 0
			for _, s := range a.Sizes {
				total += s
			}
			if total != a.NumAssigned() {
				t.Errorf("%s/%s: sizes sum %d != assigned %d", ds, order, total, a.NumAssigned())
			}
			st := l.Stats()
			// Stats identity: every stream edge took exactly one path.
			if st.SelfLoops+st.DuplicateEdges+st.ImmediateEdges+st.WindowedEdges != st.EdgesProcessed {
				t.Errorf("%s/%s: stats do not add up: %+v", ds, order, st)
			}
			if !l.Window().Empty() {
				t.Errorf("%s/%s: window not drained", ds, order)
			}
		}
	}
}

// TestLoomDeterminism: identical streams and configuration yield identical
// assignments (no map-iteration nondeterminism leaks into placement).
func TestLoomDeterminism(t *testing.T) {
	g, err := dataset.Generate("musicbrainz", 2500, 9)
	if err != nil {
		t.Fatal(err)
	}
	stream := graph.StreamOf(g, graph.OrderRandom, rand.New(rand.NewSource(31)))

	runOnce := func() *partition.Assignment {
		l := datasetLoom(t, "musicbrainz", g.NumVertices(), 8, 512)
		for _, se := range stream {
			l.ProcessEdge(se)
		}
		l.Flush()
		return l.Assignment()
	}
	a1 := runOnce()
	a2 := runOnce()
	if a1.NumAssigned() != a2.NumAssigned() {
		t.Fatalf("different assignment counts: %d vs %d", a1.NumAssigned(), a2.NumAssigned())
	}
	p2 := a2.Parts()
	for v, p := range a1.Parts() {
		if p2[v] != p {
			t.Fatalf("nondeterministic placement at vertex %d: %d vs %d", v, p, p2[v])
		}
	}
}

// TestGoldenIPT pins the end-to-end ipt numbers for a fixed seed so that
// algorithmic regressions are caught immediately. The values encode current
// behaviour, not ground truth; update them deliberately when the algorithm
// changes (and record why in the commit).
func TestGoldenIPT(t *testing.T) {
	g, err := dataset.Generate("provgen", 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	stream := graph.StreamOf(g, graph.OrderBFS, nil)
	l := datasetLoom(t, "provgen", g.NumVertices(), 4, 256)
	for _, se := range stream {
		l.ProcessEdge(se)
	}
	l.Flush()
	res, err := workload.Execute(g, l.Assignment(), wl, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Regression window: the exact value is seed-dependent; assert a
	// band of ±20% around the recorded 911.55 so cosmetic refactors pass
	// and behavioural changes fail loudly.
	const recorded = 911.55
	if res.IPT < recorded*0.8 || res.IPT > recorded*1.2 {
		t.Errorf("golden ipt = %.2f, recorded %.2f (±20%%) — algorithm behaviour changed; "+
			"verify deliberately and update the constant", res.IPT, recorded)
	}
}

// TestTrieSharedAcrossRuns: the trie is read-only during partitioning, so
// sequential runs over one trie must not interfere.
func TestTrieSharedAcrossRuns(t *testing.T) {
	wl, err := workload.ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 11)
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := trie.Size()

	g, err := dataset.Generate("provgen", 1200, 3)
	if err != nil {
		t.Fatal(err)
	}
	stream := graph.StreamOf(g, graph.OrderBFS, nil)
	for i := 0; i < 2; i++ {
		l, err := New(Config{
			K:        4,
			Capacity: partition.CapacityFor(g.NumVertices(), 4, partition.DefaultImbalance),
			// Small window to force heavy eviction traffic through the
			// shared trie.
			WindowSize: 32,
		}, trie)
		if err != nil {
			t.Fatal(err)
		}
		for _, se := range stream {
			l.ProcessEdge(se)
		}
		l.Flush()
	}
	if trie.Size() != sizeBefore {
		t.Errorf("trie mutated during partitioning: %d → %d nodes", sizeBefore, trie.Size())
	}
}

// TestEvictOneOnEmptyWindow is a no-op, not a panic.
func TestEvictOneOnEmptyWindow(t *testing.T) {
	l := datasetLoom(t, "provgen", 100, 2, 8)
	if l.EvictOne() {
		t.Error("EvictOne on empty window returned true")
	}
	l.Flush() // also a no-op
}

// TestNaiveModeImbalanceUnbounded documents the §4 strawman behaviour that
// motivates equal opportunism: naive greedy can blow through any balance
// target.
func TestNaiveModeCanExceedBalancedSizes(t *testing.T) {
	g, err := dataset.Generate("dblp", 2500, 4)
	if err != nil {
		t.Fatal(err)
	}
	stream := graph.StreamOf(g, graph.OrderBFS, nil)
	wl, err := workload.ForDataset("dblp")
	if err != nil {
		t.Fatal(err)
	}
	scheme := signature.NewScheme(signature.DefaultP, 11)
	scheme.RegisterLabels(dataset.DatasetLabels("dblp"))
	trie, err := wl.BuildTrie(scheme)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mode string) float64 {
		l, err := New(Config{
			K:          8,
			Capacity:   partition.CapacityFor(g.NumVertices(), 8, partition.DefaultImbalance),
			WindowSize: 256,
			Mode:       mode,
		}, trie)
		if err != nil {
			t.Fatal(err)
		}
		for _, se := range stream {
			l.ProcessEdge(se)
		}
		l.Flush()
		return partition.Imbalance(l.Assignment())
	}
	equal := mk(ModeEqualOpportunism)
	naive := mk(ModeNaiveGreedy)
	if equal > 0.12 {
		t.Errorf("equal opportunism imbalance %.3f exceeds the b=1.1 bound", equal)
	}
	if naive < equal {
		t.Errorf("naive greedy (%.3f) unexpectedly better balanced than equal opportunism (%.3f)", naive, equal)
	}
	t.Logf("imbalance: equal opportunism %.3f, naive greedy %.3f", equal, naive)
}
