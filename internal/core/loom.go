// Package core implements the Loom partitioner (§4 of the paper): a
// single-pass streaming graph partitioner that places motif-matching
// sub-graphs wholly within individual partitions to reduce inter-partition
// traversals for a given query workload.
//
// The pipeline per stream edge e:
//
//  1. e is checked against the single-edge motifs at the root of the
//     TPSTry++. A non-matching edge "will never form part of any sub-graph
//     that matches a motif" (§3) and is assigned immediately with the LDG
//     heuristic, bypassing the window.
//  2. A matching edge enters the sliding window Ptemp, where Alg. 2
//     incrementally maintains the matchList of motif-matching sub-graphs.
//  3. When the window exceeds its capacity t, the oldest edge e is evicted
//     and assigned together with the window sub-graphs that match motifs
//     containing it, using the equal opportunism heuristic: support-sorted
//     matches Me, per-partition bids (Eq. 1), and the rationing function l
//     (Eq. 2) that throttles large partitions (Eq. 3).
//
// The per-edge path is interned: both endpoints and labels are resolved to
// dense indices/codes once at ingest (internal/intern) and every downstream
// step — adjacency bookkeeping, motif matching, equal-opportunism bids,
// LDG scoring — runs on slice-indexed state shared between the tracker and
// the window, with no string hashing and near-zero allocation.
//
// Equal opportunism's published Eq. 2 reads |V(Si)|/Smin·α, which is
// inconsistent with both the prose ("inversely correlated with Si's size")
// and the worked example (l = (1/1.33)·(2/3) = 1/2); this implementation
// follows the example: l(Si) = α·Smin/|V(Si)|, clamped to 1 for the
// smallest partition and 0 beyond the imbalance bound b (see DESIGN.md §5).
package core

import (
	"cmp"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync/atomic"

	"loom/internal/graph"
	"loom/internal/intern"
	"loom/internal/partition"
	"loom/internal/tpstry"
	"loom/internal/window"
)

// Assignment mode names for Config.Mode.
const (
	// ModeEqualOpportunism is the paper's heuristic (default).
	ModeEqualOpportunism = "equal-opportunism"
	// ModeNaiveGreedy is the strawman of §4: the whole match cluster goes
	// to the partition sharing the most incident edges, with no balance
	// or support weighting. Provided for the ablation benchmarks.
	ModeNaiveGreedy = "naive-greedy"
)

// Config parameterises a Loom partitioner. Zero fields take the paper's
// defaults via New.
type Config struct {
	// K is the number of partitions (required, >= 1).
	K int
	// Capacity is the per-partition vertex capacity C; derive it with
	// partition.CapacityFor(expectedVertices, K, slack). Required.
	Capacity float64
	// WindowSize is the sliding window capacity t in edges. Default
	// 10_000 (§5.1: "a window size of 10k edges").
	WindowSize int
	// SupportThreshold is the motif support threshold T in [0, 1].
	// Default 0.4 (§5.1: "a motif support threshold of 40%").
	SupportThreshold float64
	// Alpha is the rationing aggression α in (0, 1]. Default 2/3 (§4).
	Alpha float64
	// MaxImbalance is the bound b: a partition more than b times the size
	// of the smallest receives no motif clusters. Default 1.1 (§4,
	// "emulating Fennel").
	MaxImbalance float64
	// Mode selects the assignment heuristic (default equal opportunism).
	Mode string
	// DisableSupportWeight drops the supp(mk) term from bids (ablation).
	DisableSupportWeight bool
	// DisableRation makes l(Si) ≡ 1 (ablation: greedy bids, no ration).
	DisableRation bool
	// MaxMatchesPerVertex caps matchList fan-out per vertex; 0 uses the
	// window package default.
	MaxMatchesPerVertex int
	// Workers is the parallelism of batch ingest: ProcessBatchFunc runs
	// its prepare pre-pass (vertex/label resolution, motif-gate probes)
	// across this many goroutines, and eviction rounds with large match
	// lists scatter their bid counts across the same pool. Placements are
	// bit-identical for every value. 0 defaults to GOMAXPROCS; 1 disables
	// the pipeline entirely (the exact single-threaded path). Per-edge
	// ProcessEdge is unaffected.
	Workers int
	// Prior, when non-nil, enables the restreaming mode the paper lists
	// as future work (§6, after Nishimura & Ugander [22]): when a
	// placement decision has no neighbourhood information (a cold-start
	// vertex or a zero-bid cluster), the vertex's partition from a
	// previous pass is used instead of the least-loaded fallback. Later
	// passes therefore keep the locality discovered earlier while still
	// improving it with full-stream knowledge.
	Prior *partition.Assignment
}

func (c Config) withDefaults() Config {
	if c.WindowSize == 0 {
		c.WindowSize = 10_000
	}
	if c.SupportThreshold == 0 {
		c.SupportThreshold = 0.40
	}
	if c.Alpha == 0 {
		c.Alpha = 2.0 / 3.0
	}
	if c.MaxImbalance == 0 {
		c.MaxImbalance = partition.DefaultImbalance
	}
	if c.Mode == "" {
		c.Mode = ModeEqualOpportunism
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stats counts the paths taken while partitioning; benchmarks and examples
// report them.
type Stats struct {
	EdgesProcessed    int // stream edges consumed
	SelfLoops         int // dropped
	DuplicateEdges    int // dropped (already in window)
	ImmediateEdges    int // failed the single-edge motif gate → LDG
	WindowedEdges     int // entered Ptemp
	Evictions         int // eviction rounds (equal opportunism invocations)
	MatchesAssigned   int // motif matches placed with their cluster
	ZeroBidRounds     int // rounds decided by the least-loaded fallback
	LoneEdgeRounds    int // evictions of single-edge-only clusters (LDG path)
	DeferredEndpoints int // endpoints left to Ptemp instead of immediate LDG
	PriorPlacements   int // decisions taken from the restreaming prior
}

// Loom is the workload-aware streaming partitioner. It implements
// partition.Streamer. Not safe for concurrent use (the paper's §6 notes
// Loom is single-threaded).
type Loom struct {
	cfg   Config
	trie  *tpstry.Trie
	tr    *partition.Tracker
	win   *window.Matcher
	verts *intern.VertexTable // shared by tracker and window
	ltab  *intern.LabelTable
	stats Stats

	// Eviction-path scratch, reused across rounds so the steady-state
	// eviction performs no allocation.
	evictEdges []window.IEdge  // unique cluster edges per eviction
	meBuf      []*window.Match // Me, the matches containing the evicted edge
	bidCounts  []int32         // per-match K-vectors of partition counts (flat, K·maxCnt)
	supports   []float64       // supp(mk) per support-sorted match prefix
	rations    []float64       // l(Si) per partition
	residuals  []float64       // 1 − |V(Si)|/C per partition
	cnts       []int           // rationed prefix length per partition
	totals     []float64       // running rationed bid total per partition
	ccounts    []int           // clusterCounts accumulator (len K)
	seenStamp  []uint32        // per dense vertex: epoch of last visit
	epoch      uint32          // current clusterCounts epoch

	// vlab caches each dense vertex's interned label code (−1 = not yet
	// seen). Vertex labels are immutable for the life of the stream (the
	// window's per-vertex r-value cache already relies on this), so after
	// a vertex's first edge the per-edge path never hashes its label
	// string again.
	vlab []int32

	// Batch-pipeline state (see pipeline.go): the pooled per-batch
	// prepare scratch, the worker gang alive for the duration of one
	// ProcessBatchFunc call (nil otherwise — EvictOne checks it before
	// parallelising the bid scatter), and the match-list length above
	// which an eviction round scatters bids in parallel.
	prep       prepScratch
	gang       *gang
	scatterMin int

	// onEvict, when non-nil, observes every edge leaving the sliding
	// window (see SetEvictHook). Invoked synchronously, with external IDs.
	onEvict func(u, v int64)
}

// New builds a Loom over a TPSTry++ that already encodes the workload Q
// (tpstry.Trie.AddQuery). The trie may continue to be updated between
// edges as the workload evolves.
func New(cfg Config, trie *tpstry.Trie) (*Loom, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: K must be >= 1, got %d", cfg.K)
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("core: Capacity must be positive, got %v", cfg.Capacity)
	}
	if cfg.WindowSize < 0 {
		return nil, fmt.Errorf("core: WindowSize must be >= 0, got %d", cfg.WindowSize)
	}
	if cfg.SupportThreshold < 0 || cfg.SupportThreshold > 1 {
		return nil, fmt.Errorf("core: SupportThreshold must be in [0,1], got %v", cfg.SupportThreshold)
	}
	if cfg.Mode != ModeEqualOpportunism && cfg.Mode != ModeNaiveGreedy {
		return nil, fmt.Errorf("core: unknown mode %q", cfg.Mode)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: Workers must be >= 1, got %d", cfg.Workers)
	}
	// The capacity constraint C = ν·n/k fixes the expected vertex count
	// n = C·k/ν: pre-size every per-vertex structure for it (clamped so a
	// wild capacity cannot force an absurd allocation), taking all
	// incremental slice growth off the per-edge path.
	expected := int(cfg.Capacity*float64(cfg.K)/cfg.MaxImbalance) + 1
	if expected < 1024 {
		expected = 1024
	}
	if expected > 1<<21 {
		expected = 1 << 21
	}
	verts := intern.NewVertexTable(expected)
	ltab := intern.NewLabelTable()
	w := window.NewMatcherWith(trie, cfg.SupportThreshold, cfg.WindowSize, verts, ltab)
	if cfg.MaxMatchesPerVertex > 0 {
		w.SetMaxMatchesPerVertex(cfg.MaxMatchesPerVertex)
	}
	w.Reserve(expected)
	tr := partition.NewTrackerWith(cfg.K, cfg.Capacity, verts)
	tr.Reserve(expected)
	return &Loom{
		cfg:        cfg,
		trie:       trie,
		tr:         tr,
		win:        w,
		verts:      verts,
		ltab:       ltab,
		vlab:       make([]int32, 0, expected),
		seenStamp:  make([]uint32, 0, expected),
		scatterMin: defaultScatterMin,
	}, nil
}

// Name implements partition.Streamer.
func (l *Loom) Name() string { return "loom" }

// Config returns the effective configuration (defaults resolved).
func (l *Loom) Config() Config { return l.cfg }

// Stats returns processing counters.
func (l *Loom) Stats() Stats { return l.stats }

// Tracker exposes the partition tracker (tests pre-seed assignments; the
// bench harness reads sizes).
func (l *Loom) Tracker() *partition.Tracker { return l.tr }

// Window exposes the sliding window (diagnostics).
func (l *Loom) Window() *window.Matcher { return l.win }

// ProcessEdges implements partition.Streamer: it ingests a batch of stream
// edges in arrival order. Placements are bit-identical to calling
// ProcessEdge once per element (the window invariant — evict as soon as
// capacity is exceeded — is maintained per edge); the batch form exists so
// callers can amortise per-call overhead (the public API's ingest lock,
// interface dispatch, argument copying) over many edges.
func (l *Loom) ProcessEdges(batch []graph.StreamEdge) {
	for i := range batch {
		l.ProcessEdge(batch[i])
	}
}

// ProcessEdge implements partition.Streamer.
func (l *Loom) ProcessEdge(se graph.StreamEdge) {
	l.stats.EdgesProcessed++
	if se.U == se.V {
		l.stats.SelfLoops++
		return
	}
	// The interning boundary: both endpoints and labels are resolved to
	// dense indices/codes exactly once; everything below runs on them.
	// The batch pipeline performs the same resolution in its prepare
	// pre-pass and joins the identical placement path at processResolved,
	// which is what keeps parallel and per-edge ingest bit-identical.
	ui := l.tr.Intern(se.U)
	vi := l.tr.Intern(se.V)
	cu := l.labelCodeOf(ui, se.LU)
	cv := l.labelCodeOf(vi, se.LV)
	node, ok := l.win.SingleEdgeMotifCodes(cu, cv)
	l.processResolved(se, ui, vi, cu, cv, node, ok)
}

// processResolved is the placement core shared by per-edge and batch
// ingest: it consumes a fully-resolved edge (interned endpoints, label
// codes, single-edge motif verdict) and performs window insertion, eviction
// and assignment. Every ingest path funnels through it, so placements
// cannot diverge between them.
func (l *Loom) processResolved(se graph.StreamEdge, ui, vi uint32, cu, cv uint16, node *tpstry.Node, motif bool) {
	if !motif || l.cfg.WindowSize == 0 {
		// §3: e can never be part of a motif match — assign immediately
		// with LDG and "behave as if the edge was never added to the
		// window" (§4). A zero-size window degenerates Loom to LDG.
		l.tr.ObserveIdx(ui, vi)
		l.stats.ImmediateEdges++
		l.assignImmediate(ui, vi)
		return
	}
	if err := l.win.InsertInterned(se, ui, vi, cu, cv, node); err != nil {
		// Duplicate stream edge: the first copy is already buffered and
		// already observed — observing again would double v in u's
		// adjacency and bias every later neighbourhood score.
		l.stats.DuplicateEdges++
		return
	}
	l.tr.ObserveIdx(ui, vi)
	l.stats.WindowedEdges++
	for l.win.OverCapacity() {
		l.EvictOne()
	}
}

// labelCodeOf returns the interned label code of the vertex at dense
// index i, hashing the label string only on the vertex's first sighting
// (vertex labels are immutable for the life of the stream).
func (l *Loom) labelCodeOf(i uint32, lab graph.Label) uint16 {
	for int(i) >= len(l.vlab) {
		l.vlab = append(l.vlab, -1)
	}
	if c := l.vlab[i]; c >= 0 {
		return uint16(c)
	}
	c := l.ltab.Intern(string(lab))
	l.vlab[i] = int32(c)
	return c
}

// assignImmediate places any unassigned endpoint with LDG — except
// endpoints that still have motif-matching edges buffered in the window:
// those are Ptemp residents whose placement belongs to the upcoming cluster
// assignment (equal opportunism), not to an incidental non-motif edge.
// Deferred endpoints are guaranteed a home because every window edge is
// eventually evicted or removed with its endpoints assigned.
func (l *Loom) assignImmediate(ui, vi uint32) {
	for _, i := range [2]uint32{ui, vi} {
		if l.tr.PartOfIdx(i) != partition.Unassigned {
			continue
		}
		if l.win.HasVertexIdx(i) {
			l.stats.DeferredEndpoints++
			continue
		}
		l.assignVertexLDG(i)
	}
}

// assignVertexLDG places one vertex (by dense index) with the LDG rule,
// consulting the restreaming prior (if any) before the least-loaded
// fallback.
func (l *Loom) assignVertexLDG(i uint32) {
	if p, ok := l.priorOf(i); ok {
		// Prior exists but the standard rule may still be better; only
		// prefer the prior when LDG itself would have no signal.
		counts := l.tr.NeighborCountsIdx(i)
		signal := false
		for q := 0; q < l.tr.K(); q++ {
			if counts[q] > 0 && float64(l.tr.Size(partition.ID(q)))+1 <= l.tr.Capacity() {
				signal = true
				break
			}
		}
		if counts[p] == 0 && !signal && float64(l.tr.Size(p))+1 <= l.tr.Capacity() {
			l.stats.PriorPlacements++
			l.tr.AssignIdx(i, p)
			return
		}
	}
	l.tr.AssignLDGIdx(i)
}

// priorOf returns the partition of the vertex at dense index i in the
// restreaming prior, if configured and valid for this K.
func (l *Loom) priorOf(i uint32) (partition.ID, bool) {
	if l.cfg.Prior == nil {
		return partition.Unassigned, false
	}
	p := l.cfg.Prior.Of(graph.VertexID(l.verts.ID(i)))
	if p == partition.Unassigned || int(p) >= l.tr.K() {
		return partition.Unassigned, false
	}
	return p, true
}

// SetEvictHook registers fn to observe every edge leaving the sliding
// window: it is called synchronously with the external endpoint IDs as the
// edge is removed (eviction rounds and end-of-stream Flush alike). Together
// with the tracker's assign hook this lets an observer mirror both the
// permanent assignment and Ptemp membership. One hook only; nil removes it.
func (l *Loom) SetEvictHook(fn func(u, v int64)) { l.onEvict = fn }

// removeWindowEdges drops the given edges from the window, reporting each
// to the evict hook first (while the edge's interned endpoints are still
// resolvable).
func (l *Loom) removeWindowEdges(edges []window.IEdge) {
	if l.onEvict != nil {
		for _, e := range edges {
			l.onEvict(l.verts.ID(e.U), l.verts.ID(e.V))
		}
	}
	l.win.RemoveIEdges(edges)
}

// Flush implements partition.Streamer: it drains the window, assigning
// every buffered edge. Call at end-of-stream before reading the final
// assignment (during live operation the window is Ptemp, an extra
// partition that queries may read, §3).
func (l *Loom) Flush() {
	for !l.win.Empty() {
		l.EvictOne()
	}
}

// EvictOne evicts the oldest window edge and assigns its motif-match
// cluster per §4. It reports whether an eviction happened.
func (l *Loom) EvictOne() bool {
	oldIE, ok := l.win.OldestIdx()
	if !ok {
		return false
	}
	l.stats.Evictions++

	me := l.win.MatchesContainingI(oldIE, l.meBuf[:0])
	l.meBuf = me
	if len(me) == 0 {
		// Unreachable in normal flow: the single-edge match exists while
		// the edge does. Guard anyway: place endpoints by LDG.
		l.assignImmediate(oldIE.U, oldIE.V)
		l.evictEdges = append(l.evictEdges[:0], oldIE)
		l.removeWindowEdges(l.evictEdges)
		return true
	}
	l.sortBySupport(me)

	var winner partition.ID
	var prefix []*window.Match
	switch {
	case l.cfg.Mode == ModeNaiveGreedy:
		winner = l.naiveWinner(me)
		prefix = me // the naive approach assigns the whole cluster
	case len(me) == 1 && me[0].NumEdges() == 1:
		// A lone single-edge match: there is no intra-cluster locality
		// for equal opportunism to preserve. Place each unassigned
		// endpoint with the per-vertex LDG rule — the same treatment a
		// non-motif edge gets in §3, only deferred to eviction time,
		// when more of the endpoint's neighbourhood has been observed
		// ("the longer an edge remains in the sliding window … the
		// better partitioning decisions we can make for it", §4).
		l.stats.LoneEdgeRounds++
		for _, v := range me[0].VertexIndices() {
			if l.tr.PartOfIdx(v) == partition.Unassigned {
				l.assignVertexLDG(v)
			}
		}
		l.stats.MatchesAssigned++
		l.removeWindowEdges(me[0].IEdges())
		return true
	default:
		winner, prefix = l.equalOpportunism(me)
	}

	// Assign every unassigned vertex of the winning prefix to the winner
	// and drop the placed edges from the window; matches not taken stay
	// only if none of their edges were assigned (window.RemoveIEdges
	// kills intersecting matches).
	edges := l.evictEdges[:0]
	for _, m := range prefix {
		edges = append(edges, m.IEdges()...)
	}
	slices.SortFunc(edges, window.CompareIEdges)
	edges = slices.Compact(edges)
	l.evictEdges = edges
	for _, e := range edges {
		if l.tr.PartOfIdx(e.U) == partition.Unassigned {
			l.tr.AssignIdx(e.U, winner)
		}
		if l.tr.PartOfIdx(e.V) == partition.Unassigned {
			l.tr.AssignIdx(e.V, winner)
		}
	}
	l.stats.MatchesAssigned += len(prefix)
	l.removeWindowEdges(edges)
	return true
}

// sortBySupport orders Me in descending motif support; ties break toward
// smaller matches (the §4 example assigns ⟨e1,m1⟩ and the 2-edge m3 before
// the 3-edge m6), then lexicographic edge sets for determinism. The
// comparator is a total order over distinct matches, so the (unstable)
// sort is deterministic; slices.SortFunc avoids sort.Slice's reflective,
// allocating swapper on this per-eviction path.
func (l *Loom) sortBySupport(me []*window.Match) {
	slices.SortFunc(me, func(a, b *window.Match) int {
		// Raw weights order identically to normalised supports (shared
		// positive divisor) and skip a division per comparison.
		sa, sb := a.Node.SupportWeight(), b.Node.SupportWeight()
		if sa != sb {
			return cmp.Compare(sb, sa) // descending support
		}
		if la, lb := a.NumEdges(), b.NumEdges(); la != lb {
			return cmp.Compare(la, lb)
		}
		// Full tie: fall back to the lexicographic external edge sets,
		// exactly as before the interned rebuild (Match.Edges derives
		// them lazily and caches per match, so only tied comparisons —
		// and only a match's first — pay the materialisation).
		return compareEdgeSets(a.Edges(), b.Edges())
	})
}

func compareEdgeSets(a, b []graph.Edge) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i].U != b[i].U {
				return cmp.Compare(a[i].U, b[i].U)
			}
			return cmp.Compare(a[i].V, b[i].V)
		}
	}
	return cmp.Compare(len(a), len(b))
}

// ration computes l(Si) (Eq. 2, corrected per DESIGN.md §5): 1 for the
// smallest partition; 0 for a partition at its capacity C = b·n/k (the
// imbalance bound b "emulating Fennel", whose ν = 1.1 is relative to n/k);
// otherwise α·Smin/|V(Si)|, inversely correlated with Si's size relative to
// the smallest partition.
func (l *Loom) ration(p partition.ID, smin int) float64 {
	if l.cfg.DisableRation {
		return 1
	}
	size := l.tr.Size(p)
	if float64(size)+1 > l.tr.Capacity() {
		return 0 // at the maximum-imbalance bound: no motif clusters
	}
	if size == smin {
		return 1
	}
	base := smin
	if base < 1 {
		base = 1 // smooth the cold start: an empty smallest partition
	}
	return l.cfg.Alpha * float64(base) / float64(size)
}

// scatterBidCounts computes N(Si, Ek) for every partition Si in ONE pass
// over the match's vertices and their observed neighbourhoods, writing the
// K-vector into counts.
//
// N(Si, Ek) follows footnote 8 ("a generalisation of LDG's function N"):
// LDG's N counts an edge's incident edges inside Si, so the sub-graph
// generalisation counts both the match's member vertices already in Si and
// the observed incident edges from the match's vertices into Si. For a
// fresh single-edge match this reduces exactly to LDG's N(Si, e); the
// printed |V(Si) ∩ V(Ek)| alone discards the neighbourhood signal LDG uses
// (see DESIGN.md §5). The neighbourhood term reads the tracker's
// incrementally maintained per-vertex count rows instead of walking
// adjacency, so one scatter is O(|V(Ek)|·K) regardless of vertex degree —
// on hub-heavy streams the walk it replaces was O(hub degree) per
// eviction, which turned 10⁸-edge ingests quadratic.
func (l *Loom) scatterBidCounts(m *window.Match, counts []int32) {
	for i := range counts {
		counts[i] = 0
	}
	for _, v := range m.VertexIndices() {
		if p := l.tr.PartOfIdx(v); p != partition.Unassigned {
			counts[p]++
		}
		l.tr.AddNeighborCountsIdx(v, counts)
	}
}

// ensureBidScratch sizes the per-partition scratch vectors.
func (l *Loom) ensureBidScratch(k int) {
	if cap(l.rations) < k {
		l.rations = make([]float64, k)
		l.residuals = make([]float64, k)
		l.totals = make([]float64, k)
		l.cnts = make([]int, k)
	}
	l.rations = l.rations[:k]
	l.residuals = l.residuals[:k]
	l.totals = l.totals[:k]
	l.cnts = l.cnts[:k]
}

// equalOpportunism runs Eq. 3: every partition totals its bids over the
// first ⌈l(Si)·|Me|⌉ support-sorted matches; the winner takes exactly that
// prefix. When every bid is zero (cold start or no overlap), the least
// loaded partition takes its full ration.
//
// The evaluation is single-pass: each match in the longest rationed prefix
// gets one K-vector of partition counts (scatterBidCounts), and all K
// rationed prefix totals are then accumulated incrementally from those
// vectors — Eq. 1 is never recomputed per partition. Per-partition bid
// totals are summed in the same order (match index ascending, then scaled
// by l(Si)) as the direct per-partition evaluation, so the floating-point
// results — and hence placements — are bit-identical to it.
func (l *Loom) equalOpportunism(me []*window.Match) (partition.ID, []*window.Match) {
	k := l.tr.K()
	smin := l.tr.MinSize()
	l.ensureBidScratch(k)
	maxCnt := 0
	for p := 0; p < k; p++ {
		pid := partition.ID(p)
		l.totals[p] = 0
		l.residuals[p] = l.tr.Residual(pid)
		ration := l.ration(pid, smin)
		l.rations[p] = ration
		if ration <= 0 {
			l.cnts[p] = 0 // at the imbalance bound: receives no clusters
			continue
		}
		cnt := int(math.Ceil(ration * float64(len(me))))
		if cnt > len(me) {
			cnt = len(me)
		}
		if cnt < 1 {
			cnt = 1
		}
		l.cnts[p] = cnt
		if cnt > maxCnt {
			maxCnt = cnt
		}
	}

	// One scatter per match in the longest prefix; supports cached once.
	need := maxCnt * k
	if cap(l.bidCounts) < need {
		l.bidCounts = make([]int32, need)
	}
	l.bidCounts = l.bidCounts[:need]
	if cap(l.supports) < maxCnt {
		l.supports = make([]float64, maxCnt)
	}
	l.supports = l.supports[:maxCnt]
	l.scatterAll(me, maxCnt, k)

	// Incremental prefix totals: match i contributes to every partition
	// whose rationed prefix extends past i.
	for i := 0; i < maxCnt; i++ {
		counts := l.bidCounts[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			if i >= l.cnts[p] {
				continue
			}
			n := counts[p]
			if n == 0 {
				continue
			}
			b := float64(n) * l.residuals[p]
			if !l.cfg.DisableSupportWeight {
				b *= l.supports[i]
			}
			l.totals[p] += b
		}
	}

	best := partition.Unassigned
	bestBid := 0.0
	bestCnt := 0
	for p := 0; p < k; p++ {
		if l.cnts[p] == 0 {
			continue
		}
		pid := partition.ID(p)
		total := l.totals[p] * l.rations[p] // Eq. 3: l(Si) scales the rationed bid total
		if total > bestBid ||
			(total == bestBid && best != partition.Unassigned && l.tr.Size(pid) < l.tr.Size(best)) {
			if total > 0 {
				best, bestBid, bestCnt = pid, total, l.cnts[p]
			}
		}
	}
	if best == partition.Unassigned {
		// No partition holds any of the cluster's vertices yet. Equal
		// opportunism "extends ideas present in LDG" (§4): fall back to
		// LDG's neighbourhood rule over the whole cluster — the cluster
		// vertices' observed neighbours (e.g. an already-placed venue or
		// agent reached by non-motif edges) pull it toward their
		// partition; with no assigned neighbours at all, take the least
		// loaded.
		l.stats.ZeroBidRounds++
		best = l.clusterLDG(me)
		ration := l.ration(best, smin)
		bestCnt = int(math.Ceil(ration * float64(len(me))))
		if bestCnt > len(me) {
			bestCnt = len(me)
		}
		if bestCnt < 1 {
			bestCnt = 1
		}
	}
	return best, me[:bestCnt]
}

// scatterAll fills the per-match bid-count K-vectors and support cache for
// the first maxCnt support-sorted matches. During a parallel batch (gang
// non-nil) with a match list past the scatter threshold, matches are
// claimed by worker goroutines off an atomic counter: each match's
// K-vector and support land in fixed, disjoint slots, and the rationed
// totals are then reduced serially by the caller in the same fixed order
// as ever — so the floating-point sums, and hence placements, stay
// bit-identical to the serial scatter. The workers only read tracker and
// trie state (partitions, adjacency, supports), which no one mutates
// mid-eviction.
func (l *Loom) scatterAll(me []*window.Match, maxCnt, k int) {
	if l.gang != nil && maxCnt >= l.scatterMin {
		var next atomic.Int64
		l.gang.run(func(int) {
			for {
				i := int(next.Add(1)) - 1
				if i >= maxCnt {
					return
				}
				l.scatterBidCounts(me[i], l.bidCounts[i*k:(i+1)*k])
				l.supports[i] = l.trie.SupportOf(me[i].Node)
			}
		})
		return
	}
	for i := 0; i < maxCnt; i++ {
		l.scatterBidCounts(me[i], l.bidCounts[i*k:(i+1)*k])
		l.supports[i] = l.trie.SupportOf(me[i].Node)
	}
}

// SetScatterMin overrides the match-list length above which eviction
// rounds scatter bid counts across the batch worker gang (tuning and
// tests; the default keeps small rounds on the serial path, where the
// gang dispatch would cost more than the scatter).
func (l *Loom) SetScatterMin(n int) {
	if n < 1 {
		n = 1
	}
	l.scatterMin = n
}

// clusterCounts sums observed-neighbour counts per partition over the
// distinct vertices of a cluster (the union of the matches' vertex sets).
// The result is the reusable ccounts scratch, valid until the next call.
// Vertex dedup across matches uses an epoch-stamp slice indexed by dense
// vertex index instead of a freshly allocated set.
func (l *Loom) clusterCounts(me []*window.Match) []int {
	if cap(l.ccounts) < l.tr.K() {
		l.ccounts = make([]int, l.tr.K())
	}
	counts := l.ccounts[:l.tr.K()]
	for p := range counts {
		counts[p] = 0
	}
	l.epoch++
	if l.epoch == 0 { // stamp wraparound: invalidate all stamps
		clear(l.seenStamp)
		l.epoch = 1
	}
	for _, m := range me {
		for _, v := range m.VertexIndices() {
			for int(v) >= len(l.seenStamp) {
				l.seenStamp = append(l.seenStamp, 0)
			}
			if l.seenStamp[v] == l.epoch {
				continue
			}
			l.seenStamp[v] = l.epoch
			for p, c := range l.tr.NeighborCountsIdx(v) {
				counts[p] += c
			}
		}
	}
	return counts
}

// clusterLDG scores every partition by the LDG rule applied to the union of
// the cluster's vertices: Σ_v N(Si, v) · (1 − |V(Si)|/C). Zero scores fall
// back to the least-loaded partition.
func (l *Loom) clusterLDG(me []*window.Match) partition.ID {
	counts := l.clusterCounts(me)
	best := partition.Unassigned
	bestScore := 0.0
	for p := 0; p < l.tr.K(); p++ {
		if counts[p] == 0 {
			continue // zero score never wins (the score > 0 guard below)
		}
		pid := partition.ID(p)
		if float64(l.tr.Size(pid))+1 > l.tr.Capacity() {
			continue
		}
		score := float64(counts[p]) * l.tr.Residual(pid)
		if score > bestScore ||
			(score == bestScore && best != partition.Unassigned && l.tr.Size(pid) < l.tr.Size(best)) {
			if score > 0 {
				best, bestScore = pid, score
			}
		}
	}
	if best == partition.Unassigned {
		best = l.priorMajority(me)
	}
	return best
}

// priorMajority returns the restreaming prior's majority partition over the
// cluster's vertices (capacity permitting), else the least-loaded
// partition.
func (l *Loom) priorMajority(me []*window.Match) partition.ID {
	if l.cfg.Prior != nil {
		votes := make([]int, l.tr.K())
		for _, m := range me {
			for _, v := range m.VertexIndices() {
				if p, ok := l.priorOf(v); ok {
					votes[p]++
				}
			}
		}
		best, bestVotes := partition.Unassigned, 0
		for p := 0; p < l.tr.K(); p++ {
			if votes[p] > bestVotes && float64(l.tr.Size(partition.ID(p)))+1 <= l.tr.Capacity() {
				best, bestVotes = partition.ID(p), votes[p]
			}
		}
		if best != partition.Unassigned {
			l.stats.PriorPlacements++
			return best
		}
	}
	return l.tr.LeastLoaded()
}

// naiveWinner implements §4's strawman: the whole cluster goes to the
// partition with the most incident edges (observed neighbours inside the
// partition), ignoring balance and support.
func (l *Loom) naiveWinner(me []*window.Match) partition.ID {
	counts := l.clusterCounts(me)
	best := partition.ID(0)
	for p := 1; p < l.tr.K(); p++ {
		if counts[p] > counts[best] {
			best = partition.ID(p)
		}
	}
	if counts[best] == 0 {
		return l.tr.LeastLoaded()
	}
	return best
}

// Assignment implements partition.Streamer.
func (l *Loom) Assignment() *partition.Assignment { return l.tr.Assignment() }

// Snapshot implements partition.Streamer: a fully isolated copy of the
// current assignment (cloned vertex table), safe to read while streaming
// continues on another goroutine.
func (l *Loom) Snapshot() *partition.Assignment { return l.tr.Snapshot() }

// Publish captures the current assignment as an immutable copy-on-write
// epoch (see partition.Tracker.Publish). The public layer calls this at
// batch boundaries — the stream's natural consistent points — to feed its
// lock-free Snapshot/PartitionOf read path; pure single-threaded users
// (bench harness, cmd tools) never pay for it.
func (l *Loom) Publish() *partition.Epoch { return l.tr.Publish() }
