package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"loom/internal/graph"
	"loom/internal/partition"
)

// pipelineStream builds a deterministic synthetic stream that exercises
// every per-edge path: motif edges (a-b and friends from paperTrie),
// non-motif edges, self-loops, exact duplicates, and vertices whose first
// sighting happens mid-batch.
func pipelineStream(n int, seed int64) []graph.StreamEdge {
	rng := rand.New(rand.NewSource(seed))
	labels := []graph.Label{"a", "b", "c", "d"}
	out := make([]graph.StreamEdge, 0, n)
	for len(out) < n {
		u := graph.VertexID(rng.Intn(n / 4))
		v := graph.VertexID(rng.Intn(n / 4))
		lu := labels[int(u)%len(labels)]
		lv := labels[int(v)%len(labels)]
		out = append(out, graph.StreamEdge{U: u, LU: lu, V: v, LV: lv})
		if rng.Intn(16) == 0 && len(out) > 1 { // sprinkle exact duplicates
			out = append(out, out[rng.Intn(len(out))])
		}
		if rng.Intn(32) == 0 { // and self-loops
			out = append(out, graph.StreamEdge{U: u, LU: lu, V: u, LV: lu})
		}
	}
	return out[:n]
}

// replaySerial ingests the stream edge by edge and returns the core.
func replaySerial(t *testing.T, cfg Config, stream []graph.StreamEdge) *Loom {
	t.Helper()
	l := mustLoom(t, cfg, paperTrie(t))
	for _, se := range stream {
		l.ProcessEdge(se)
	}
	l.Flush()
	return l
}

// assertIdentical fails unless two cores agree on every placement, every
// partition size and every stats counter — the bit-identity contract of
// the batch pipeline.
func assertIdentical(t *testing.T, label string, want, got *Loom) {
	t.Helper()
	if w, g := want.Stats(), got.Stats(); w != g {
		t.Fatalf("%s: stats diverged:\nwant %+v\ngot  %+v", label, w, g)
	}
	wa, ga := want.Assignment(), got.Assignment()
	if wa.NumAssigned() != ga.NumAssigned() {
		t.Fatalf("%s: %d vs %d assigned", label, wa.NumAssigned(), ga.NumAssigned())
	}
	for i, ws := range wa.Sizes {
		if ga.Sizes[i] != ws {
			t.Fatalf("%s: partition %d size %d, want %d", label, i, ga.Sizes[i], ws)
		}
	}
	wa.Each(func(v graph.VertexID, p partition.ID) {
		if gp := ga.Of(v); gp != p {
			t.Fatalf("%s: vertex %d placed in %d, want %d", label, v, gp, p)
		}
	})
}

// TestProcessBatchFuncGolden: the parallel pipeline must be bit-identical
// to per-edge replay for every worker count, across uneven batch splits
// that straddle evictions, duplicates and self-loops.
func TestProcessBatchFuncGolden(t *testing.T) {
	cfg := Config{K: 4, Capacity: 400, WindowSize: 64, MaxImbalance: 2.0}
	stream := pipelineStream(4000, 7)
	want := replaySerial(t, cfg, stream)

	for _, workers := range []int{2, 4, 8} {
		for _, batch := range []int{MinParallelBatch, 193, 1024, len(stream)} {
			wcfg := cfg
			wcfg.Workers = workers
			l := mustLoom(t, wcfg, paperTrie(t))
			for lo := 0; lo < len(stream); lo += batch {
				hi := lo + batch
				if hi > len(stream) {
					hi = len(stream)
				}
				part := stream[lo:hi]
				l.ProcessBatchFunc(len(part), func(i int) graph.StreamEdge { return part[i] }, nil)
			}
			l.Flush()
			assertIdentical(t, fmt.Sprintf("workers=%d batch=%d", workers, batch), want, l)
		}
	}
}

// TestProcessBatchFuncSmallBatch: under MinParallelBatch the pipeline must
// fall back to the serial path (no gang) and still match per-edge replay.
func TestProcessBatchFuncSmallBatch(t *testing.T) {
	cfg := Config{K: 2, Capacity: 100, WindowSize: 16, MaxImbalance: 2.0}
	stream := pipelineStream(MinParallelBatch-1, 11)
	want := replaySerial(t, cfg, stream)

	wcfg := cfg
	wcfg.Workers = 4
	l := mustLoom(t, wcfg, paperTrie(t))
	l.ProcessBatchFunc(len(stream), func(i int) graph.StreamEdge { return stream[i] }, nil)
	l.Flush()
	assertIdentical(t, "small batch", want, l)
}

// TestProcessBatchFuncValidateDrops: edges rejected by the validate hook
// must be skipped entirely — not interned, not placed, not counted — in
// both the serial and parallel pipelines, exactly as a per-edge caller
// that never submits them.
func TestProcessBatchFuncValidateDrops(t *testing.T) {
	cfg := Config{K: 3, Capacity: 300, WindowSize: 32, MaxImbalance: 2.0}
	stream := pipelineStream(1500, 13)
	rejected := func(i int) bool { return i%7 == 3 }

	var kept []graph.StreamEdge
	for i, se := range stream {
		if !rejected(i) {
			kept = append(kept, se)
		}
	}
	want := replaySerial(t, cfg, kept)

	for _, workers := range []int{1, 4} {
		wcfg := cfg
		wcfg.Workers = workers
		l := mustLoom(t, wcfg, paperTrie(t))
		var validated atomic.Int32
		l.ProcessBatchFunc(len(stream),
			func(i int) graph.StreamEdge { return stream[i] },
			func(reject func(int)) {
				validated.Add(1)
				for i := range stream {
					if rejected(i) {
						reject(i)
					}
				}
				reject(-1)          // out-of-range rejects must be ignored
				reject(len(stream)) // (defensive caller contract)
			})
		l.Flush()
		if validated.Load() != 1 {
			t.Fatalf("workers=%d: validate called %d times, want 1", workers, validated.Load())
		}
		assertIdentical(t, fmt.Sprintf("drops workers=%d", workers), want, l)
	}
}

// TestParallelScatterGolden forces eviction rounds through the parallel
// bid scatter (scatterMin=1, so every equal-opportunism round fans out to
// the gang) and requires placements identical to the serial scatter.
func TestParallelScatterGolden(t *testing.T) {
	cfg := Config{K: 4, Capacity: 400, WindowSize: 128, MaxImbalance: 2.0}
	// All-motif labels maximise window residency and match-list length.
	rng := rand.New(rand.NewSource(17))
	stream := make([]graph.StreamEdge, 3000)
	for i := range stream {
		u := graph.VertexID(rng.Intn(300))
		v := graph.VertexID(300 + rng.Intn(300))
		stream[i] = graph.StreamEdge{U: u, LU: "a", V: v, LV: "b"}
	}
	want := replaySerial(t, cfg, stream)

	wcfg := cfg
	wcfg.Workers = 4
	l := mustLoom(t, wcfg, paperTrie(t))
	l.SetScatterMin(1)
	l.ProcessBatchFunc(len(stream), func(i int) graph.StreamEdge { return stream[i] }, nil)
	l.Flush()
	if l.Stats().Evictions == 0 {
		t.Fatal("degenerate run: no evictions — parallel scatter never exercised")
	}
	assertIdentical(t, "parallel scatter", want, l)
}

// TestProcessBatchFuncMidBatchFirstSeen pins the trickiest intern case: a
// vertex unknown at batch start appearing twice in one batch (first
// sighting mid-batch) must get one dense index, assigned at its first
// position, with its first label winning — just as sequential ingest does.
func TestProcessBatchFuncMidBatchFirstSeen(t *testing.T) {
	cfg := Config{K: 2, Capacity: 100, WindowSize: 8, MaxImbalance: 2.0}
	var stream []graph.StreamEdge
	// Enough known-vertex padding to clear MinParallelBatch, then a fresh
	// vertex (900) used twice in quick succession.
	for i := 0; i < MinParallelBatch; i++ {
		stream = append(stream, graph.StreamEdge{
			U: graph.VertexID(i % 8), LU: "a",
			V: graph.VertexID(8 + i%8), LV: "b",
		})
	}
	stream = append(stream,
		graph.StreamEdge{U: 900, LU: "a", V: 1, LV: "a"}, // first sighting: label a
		graph.StreamEdge{U: 900, LU: "a", V: 8, LV: "b"}, // reuse, motif edge
	)
	want := replaySerial(t, cfg, stream)

	wcfg := cfg
	wcfg.Workers = 4
	l := mustLoom(t, wcfg, paperTrie(t))
	l.ProcessBatchFunc(len(stream), func(i int) graph.StreamEdge { return stream[i] }, nil)
	l.Flush()
	assertIdentical(t, "mid-batch first-seen", want, l)
}

// TestGang: the fork-join pool covers every index exactly once per run,
// supports post/join with overlapped caller work, and is reusable.
func TestGang(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		g := spawnGang(n)
		for round := 0; round < 3; round++ {
			const items = 1000
			var hits [items]atomic.Int32
			var next atomic.Int64
			g.run(func(int) {
				for {
					i := int(next.Add(1)) - 1
					if i >= items {
						return
					}
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("n=%d round=%d: item %d visited %d times", n, round, i, got)
				}
			}
		}
		// post/join with caller-side work in between.
		var ran atomic.Int32
		g.post(func(int) { ran.Add(1) })
		overlapped := 42 * 42 // stand-in for the validate hook
		g.join()
		if ran.Load() != int32(n) || overlapped != 1764 {
			t.Fatalf("n=%d: post/join ran %d tasks, want %d", n, ran.Load(), n)
		}
		g.stop()
	}
}

// TestConfigWorkersValidation: 0 defaults to GOMAXPROCS, negatives are
// rejected.
func TestConfigWorkersValidation(t *testing.T) {
	trie := paperTrie(t)
	if _, err := New(Config{K: 2, Capacity: 10, Workers: -1}, trie); err == nil {
		t.Error("Workers=-1: want error")
	}
	l := mustLoom(t, Config{K: 2, Capacity: 10}, trie)
	if l.Config().Workers < 1 {
		t.Errorf("Workers default %d, want >= 1", l.Config().Workers)
	}
	l = mustLoom(t, Config{K: 2, Capacity: 10, Workers: 6}, trie)
	if l.Config().Workers != 6 {
		t.Errorf("Workers = %d, want 6", l.Config().Workers)
	}
}
