package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/signature"
	"loom/internal/tpstry"
)

// paperTrie builds the trie used in the §4 worked example, with supports
// arranged so the support order of Me matches the paper's: m1 = a-b (1.0),
// m3 = a-b-c (0.6), m4 = a-b-a (0.4), m6 = a-b-a-b (0.4).
// Workload: {a-b-a-b path: 40%, a-b-c path: 60%}.
func paperTrie(t testing.TB) *tpstry.Trie {
	t.Helper()
	trie := tpstry.New(signature.NewScheme(signature.DefaultP, 23))
	if err := trie.AddQuery(pattern.Path("a", "b", "a", "b"), 0.4); err != nil {
		t.Fatal(err)
	}
	if err := trie.AddQuery(pattern.Path("a", "b", "c"), 0.6); err != nil {
		t.Fatal(err)
	}
	return trie
}

func mustLoom(t testing.TB, cfg Config, trie *tpstry.Trie) *Loom {
	t.Helper()
	l, err := New(cfg, trie)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	trie := paperTrie(t)
	if _, err := New(Config{K: 0, Capacity: 10}, trie); err == nil {
		t.Error("K=0: want error")
	}
	if _, err := New(Config{K: 2, Capacity: 0}, trie); err == nil {
		t.Error("Capacity=0: want error")
	}
	if _, err := New(Config{K: 2, Capacity: 10, Mode: "bogus"}, trie); err == nil {
		t.Error("bad mode: want error")
	}
	if _, err := New(Config{K: 2, Capacity: 10, SupportThreshold: 2}, trie); err == nil {
		t.Error("threshold > 1: want error")
	}
	l := mustLoom(t, Config{K: 2, Capacity: 10}, trie)
	cfg := l.Config()
	if cfg.WindowSize != 10_000 || cfg.SupportThreshold != 0.40 || cfg.Mode != ModeEqualOpportunism {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

// TestPaperWorkedExample reproduces §4's equal-opportunism walkthrough:
// partitions S1 (4 vertices, containing window vertex 2) and S2 (3
// vertices); evicting e1 must assign the first half of Me — ⟨e1,m1⟩ and
// ⟨{e1,e4},m3⟩ — to S1, leaving e2, e3, e5 in the window.
func TestPaperWorkedExample(t *testing.T) {
	trie := paperTrie(t)
	l := mustLoom(t, Config{
		K:        2,
		Capacity: 100,
		// The example's sizes (4 vs 3) exceed b = 1.1; the paper applies
		// the ration formula anyway, so raise b for fidelity.
		MaxImbalance: 2.0,
		WindowSize:   100,
		Alpha:        2.0 / 3.0,
	}, trie)

	// Pre-seed partitions: S1 = {2, 100, 101, 102}, S2 = {200, 201, 202}.
	// Vertex 2 is the window vertex the paper places in S1.
	const s1, s2 = partition.ID(0), partition.ID(1)
	l.Tracker().Assign(2, s1)
	for _, v := range []graph.VertexID{100, 101, 102} {
		l.Tracker().Assign(v, s1)
	}
	for _, v := range []graph.VertexID{200, 201, 202} {
		l.Tracker().Assign(v, s2)
	}

	// Fig. 5's stream: e1..e5.
	for _, se := range []graph.StreamEdge{
		{U: 1, LU: "a", V: 2, LV: "b"}, // e1
		{U: 3, LU: "a", V: 4, LV: "b"}, // e2
		{U: 4, LU: "b", V: 5, LV: "c"}, // e3
		{U: 2, LU: "b", V: 5, LV: "c"}, // e4
		{U: 2, LU: "b", V: 3, LV: "a"}, // e5
	} {
		l.ProcessEdge(se)
	}
	if l.Window().Len() != 5 {
		t.Fatalf("window has %d edges, want 5", l.Window().Len())
	}

	// Evict e1. Me (support-sorted) = [⟨e1,m1⟩ 1.0, ⟨{e1,e4},m3⟩ 0.6,
	// ⟨{e1,e5},m4⟩ 0.4, ⟨{e1,e2,e5},m6⟩ 0.4]. l(S1) = (2/3)·(3/4) = 1/2
	// → S1 bids on (and wins) the first 2 matches: edges e1, e4.
	if !l.EvictOne() {
		t.Fatal("EvictOne returned false")
	}
	if got := l.Tracker().PartOf(1); got != s1 {
		t.Errorf("vertex 1 assigned to %d, want S1", got)
	}
	if got := l.Tracker().PartOf(5); got != s1 {
		t.Errorf("vertex 5 assigned to %d, want S1", got)
	}
	// "edges such as e5 and e2 remain in the window Ptemp" — vertex 3 is
	// still unassigned.
	if got := l.Tracker().PartOf(3); got != partition.Unassigned {
		t.Errorf("vertex 3 assigned to %d, want unassigned (stays in Ptemp)", got)
	}
	left := l.Window().WindowEdges()
	if len(left) != 3 {
		t.Fatalf("window after eviction has %v, want e2,e3,e5", left)
	}
	wantLeft := map[graph.Edge]bool{{U: 3, V: 4}: true, {U: 4, V: 5}: true, {U: 2, V: 3}: true}
	for _, se := range left {
		if !wantLeft[se.Edge().Norm()] {
			t.Errorf("unexpected window edge %v", se)
		}
	}

	// The §4 narrative continues: a b-c edge at vertex 4 now forms a
	// fresh a-b-c match with e2 in the window.
	l.ProcessEdge(graph.StreamEdge{U: 4, LU: "b", V: 6, LV: "c"})
	m3node, ok := trie.NodeBySignature(trie.Scheme().SignatureOf(pattern.Path("a", "b", "c")))
	if !ok {
		t.Fatal("m3 node missing")
	}
	found := false
	for _, m := range l.Window().MatchesContaining(graph.Edge{U: 4, V: 6}) {
		if m.Node == m3node && m.NumEdges() == 2 {
			found = true
		}
	}
	if !found {
		t.Error("{e2, e6} should match m3 after the eviction")
	}
}

func ringOfCliques(r *rand.Rand, nComm, commSize int, labels []graph.Label) graph.Stream {
	var s graph.Stream
	id := func(c, i int) graph.VertexID { return graph.VertexID(c*commSize + i + 1) }
	lab := func(v graph.VertexID) graph.Label { return labels[int(v)%len(labels)] }
	for c := 0; c < nComm; c++ {
		for i := 0; i < commSize; i++ {
			for j := i + 1; j < commSize; j++ {
				if r.Float64() < 0.5 {
					u, v := id(c, i), id(c, j)
					s = append(s, graph.StreamEdge{U: u, LU: lab(u), V: v, LV: lab(v)})
				}
			}
		}
		u, v := id(c, 0), id((c+1)%nComm, 1)
		s = append(s, graph.StreamEdge{U: u, LU: lab(u), V: v, LV: lab(v)})
	}
	return s
}

func TestLoomAssignsEverythingAndBalances(t *testing.T) {
	trie := paperTrie(t)
	r := rand.New(rand.NewSource(3))
	s := ringOfCliques(r, 24, 12, []graph.Label{"a", "b", "c"})
	n := 24 * 12
	k := 4
	l := mustLoom(t, Config{
		K:          k,
		Capacity:   partition.CapacityFor(n, k, partition.DefaultImbalance),
		WindowSize: 64,
	}, trie)
	for _, se := range s {
		l.ProcessEdge(se)
	}
	l.Flush()
	a := l.Assignment()
	if a.NumAssigned() != n {
		t.Fatalf("assigned %d vertices, want %d", a.NumAssigned(), n)
	}
	if !l.Window().Empty() {
		t.Error("window not drained by Flush")
	}
	if imb := partition.Imbalance(a); imb > 0.35 {
		t.Errorf("imbalance = %.3f, want modest (< 0.35)", imb)
	}
	st := l.Stats()
	if st.WindowedEdges == 0 || st.Evictions == 0 {
		t.Errorf("stats look wrong: %+v", st)
	}
	if st.EdgesProcessed != len(s) {
		t.Errorf("EdgesProcessed = %d, want %d", st.EdgesProcessed, len(s))
	}
}

func TestZeroWindowDegeneratesToLDG(t *testing.T) {
	// WindowSize <= 0 must bypass the window entirely; Loom's output then
	// matches plain LDG edge-streaming.
	trie := paperTrie(t)
	r := rand.New(rand.NewSource(7))
	s := ringOfCliques(r, 10, 8, []graph.Label{"a", "b"})
	n := 80
	k := 4
	cap := partition.CapacityFor(n, k, partition.DefaultImbalance)

	l, err := New(Config{K: k, Capacity: cap, WindowSize: -1}, trie)
	if err == nil {
		t.Fatal("negative window should error")
	}
	_ = l

	loom := mustLoom(t, Config{K: k, Capacity: cap, WindowSize: 1}, trie)
	// WindowSize 0 is replaced by the default; use the explicit LDG
	// comparison instead at window 1 — assignments still complete.
	ldg := partition.NewLDG(k, cap)
	for _, se := range s {
		loom.ProcessEdge(se)
		ldg.ProcessEdge(se)
	}
	loom.Flush()
	if loom.Assignment().NumAssigned() != ldg.Assignment().NumAssigned() {
		t.Errorf("loom assigned %d, ldg %d", loom.Assignment().NumAssigned(), ldg.Assignment().NumAssigned())
	}
}

func TestImmediatePathForNonMotifEdges(t *testing.T) {
	trie := paperTrie(t)
	l := mustLoom(t, Config{K: 2, Capacity: 100, WindowSize: 10}, trie)
	// d-e edges never match: all go the immediate path.
	for i := 0; i < 6; i += 2 {
		l.ProcessEdge(graph.StreamEdge{
			U: graph.VertexID(i + 1), LU: "d",
			V: graph.VertexID(i + 2), LV: "e",
		})
	}
	st := l.Stats()
	if st.ImmediateEdges != 3 || st.WindowedEdges != 0 {
		t.Errorf("stats = %+v, want 3 immediate, 0 windowed", st)
	}
	if l.Assignment().NumAssigned() != 6 {
		t.Errorf("assigned = %d, want 6 (immediate LDG)", l.Assignment().NumAssigned())
	}
}

func TestSelfLoopsAndDuplicatesAreDropped(t *testing.T) {
	trie := paperTrie(t)
	l := mustLoom(t, Config{K: 2, Capacity: 100, WindowSize: 10}, trie)
	l.ProcessEdge(graph.StreamEdge{U: 1, LU: "a", V: 1, LV: "a"})
	e := graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"}
	l.ProcessEdge(e)
	l.ProcessEdge(e) // duplicate while still windowed
	st := l.Stats()
	if st.SelfLoops != 1 || st.DuplicateEdges != 1 || st.WindowedEdges != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNaiveGreedyModeFollowsNeighbours(t *testing.T) {
	trie := paperTrie(t)
	l := mustLoom(t, Config{
		K: 2, Capacity: 100, WindowSize: 100, Mode: ModeNaiveGreedy,
	}, trie)
	// Put vertex 2's neighbourhood firmly in partition 1.
	l.Tracker().Assign(50, 1)
	l.Tracker().Assign(51, 1)
	l.ProcessEdge(graph.StreamEdge{U: 2, LU: "b", V: 50, LV: "d"}) // immediate (b-d not motif)
	l.ProcessEdge(graph.StreamEdge{U: 2, LU: "b", V: 51, LV: "d"}) // immediate
	l.ProcessEdge(graph.StreamEdge{U: 1, LU: "a", V: 2, LV: "b"})  // windowed
	l.Flush()
	if got := l.Tracker().PartOf(1); got != 1 {
		t.Errorf("naive greedy put vertex 1 in %d, want 1 (neighbour mass)", got)
	}
}

func TestEqualOpportunismPrefersSmallPartitions(t *testing.T) {
	// Two partitions both contain one vertex of the cluster, but S0 is
	// nearly full (10 of 12): its residual (1 − 10/12) shrinks its bid
	// below S1's (1 − 1/12)·supp, so the smaller partition must win.
	trie := paperTrie(t)
	l := mustLoom(t, Config{K: 2, Capacity: 12, WindowSize: 100, MaxImbalance: 10}, trie)
	for v := graph.VertexID(100); v < 110; v++ {
		l.Tracker().Assign(v, 0) // S0 holds 10
	}
	l.Tracker().Assign(200, 1) // S1 holds 1
	// Cluster touches both: vertex 100 (S0) and 200 (S1).
	l.ProcessEdge(graph.StreamEdge{U: 100, LU: "a", V: 1, LV: "b"})
	l.ProcessEdge(graph.StreamEdge{U: 200, LU: "a", V: 1, LV: "b"})
	l.Flush()
	if got := l.Tracker().PartOf(1); got != 1 {
		t.Errorf("vertex 1 in %d, want 1 (smaller partition wins weighted bid)", got)
	}
}

func TestStreamerInterfaceCompliance(t *testing.T) {
	var _ partition.Streamer = (*Loom)(nil)
}

// Property: Loom assigns every vertex exactly once for arbitrary random
// streams, across window sizes, with consistent partition sizes.
func TestLoomCompletenessProperty(t *testing.T) {
	trie := paperTrie(t)
	f := func(seed int64, winRaw uint8, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw%4) + 2
		win := int(winRaw%80) + 1
		s := ringOfCliques(r, 8, 6, []graph.Label{"a", "b", "c"})
		// Count the distinct vertices actually present in the stream:
		// the random clique generator can leave a vertex with no edges.
		distinct := make(map[graph.VertexID]struct{})
		for _, se := range s {
			distinct[se.U] = struct{}{}
			distinct[se.V] = struct{}{}
		}
		n := len(distinct)
		l, err := New(Config{
			K:          k,
			Capacity:   partition.CapacityFor(n, k, partition.DefaultImbalance),
			WindowSize: win,
		}, trie)
		if err != nil {
			return false
		}
		for _, se := range s {
			l.ProcessEdge(se)
		}
		l.Flush()
		a := l.Assignment()
		if a.NumAssigned() != n || !l.Window().Empty() {
			return false
		}
		total := 0
		for _, sz := range a.Sizes {
			total += sz
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
