// Batch ingest pipeline: ProcessBatchFunc splits a batch into a parallel
// prepare pre-pass and the sequential placement core.
//
// Loom's per-edge pipeline (§4) is inherently order-sensitive — every
// placement decision reads state written by the previous one — so the
// placement core cannot be parallelised without changing results. What CAN
// run concurrently is everything before the first state mutation: fetching
// and validating the raw edge, resolving its endpoints and labels against
// the (grow-only) interning tables, and evaluating the memoised single-edge
// motif gate. The pipeline therefore runs three phases per batch:
//
//  1. Prepare (parallel): worker goroutines claim chunks of the batch and
//     fill a pooled per-batch scratch of preparedEdge records — the
//     converted stream edge, self-loop flag, dense endpoint indices and
//     label codes for already-interned vertices (read-only table lookups),
//     and the gate verdict for already-memoised label pairs (read-only memo
//     probes). Nothing is written outside each worker's own records. The
//     caller-supplied validate hook (graph recording + corrupt-edge drops)
//     runs on the driver goroutine concurrently, since it touches only
//     caller state.
//  2. Finish (serial): one in-order pass interns the vertices, labels and
//     gate entries the stream has never seen before. Because this pass
//     walks the batch in arrival order, dense indices and label codes are
//     assigned in exactly the first-seen order a purely sequential ingest
//     would produce — the keystone of bit-identical placements.
//  3. Place (serial): the unchanged placement core consumes the prepared
//     records (processResolved), performing window insertion, eviction
//     bidding and assignment. Eviction rounds with long match lists borrow
//     the idle worker gang to scatter bid counts (see scatterAll); the
//     bid reduction itself stays serial and order-fixed.
//
// The worker gang lives only for the duration of one ProcessBatchFunc call:
// spawning workers per batch costs a few microseconds — amortised to
// nanoseconds per edge at real batch sizes — and guarantees no goroutine
// outlives the call (Loom has no Close, and a parked pool would leak).
package core

import (
	"sync/atomic"

	"loom/internal/graph"
	"loom/internal/tpstry"
)

// MinParallelBatch is the batch length below which ProcessBatchFunc stays
// on the serial path: under it, spawning the gang costs more than the
// prepare work it would parallelise.
const MinParallelBatch = 64

// defaultScatterMin is the default eviction match-list length above which
// the bid scatter is fanned across the gang (see Loom.SetScatterMin).
const defaultScatterMin = 48

// prepFlag records which preparedEdge fields the parallel pre-pass managed
// to resolve; the serial finish pass completes the rest.
type prepFlag uint8

const (
	pfSelfLoop prepFlag = 1 << iota // degenerate edge: counted and skipped
	pfU                             // ui is resolved
	pfV                             // vi is resolved
	pfCU                            // cu is resolved
	pfCV                            // cv is resolved
	pfGate                          // gate verdict is resolved
	pfMotif                         // gate verdict: single-edge motif (node != nil)
)

const pfResolved = pfU | pfV | pfCU | pfCV | pfGate

// preparedEdge is one batch edge with every order-insensitive computation
// already done: the placement core consumes it without touching a hash
// table or the trie.
type preparedEdge struct {
	se     graph.StreamEdge
	node   *tpstry.Node // single-edge motif node; nil unless pfMotif
	ui, vi uint32
	cu, cv uint16
	flags  prepFlag
}

// gang is a fork-join pool of parked worker goroutines, alive for one
// batch. post starts a task on the workers without blocking the caller
// (who can do serial work — validation — in the meantime), join runs the
// caller's share and waits for the workers, and run is post+join. The
// task handoff and completion signals ride channels, so all writes made by
// a worker happen-before the join returns.
type gang struct {
	n     int // total workers, caller included
	fn    func(worker int)
	start []chan struct{} // one per spawned worker, buffered
	done  chan struct{}
}

// spawnGang starts n-1 parked workers (the caller is worker 0).
func spawnGang(n int) *gang {
	g := &gang{n: n, done: make(chan struct{}, n-1)}
	g.start = make([]chan struct{}, n-1)
	for i := range g.start {
		ch := make(chan struct{}, 1)
		g.start[i] = ch
		w := i + 1
		go func() {
			for range ch {
				g.fn(w)
				g.done <- struct{}{}
			}
		}()
	}
	return g
}

// post hands fn to the spawned workers and returns immediately; the caller
// must join before posting or running anything else.
func (g *gang) post(fn func(worker int)) {
	g.fn = fn
	for _, ch := range g.start {
		ch <- struct{}{}
	}
}

// join runs the posted task as worker 0 and waits for the others.
func (g *gang) join() {
	g.fn(0)
	for range g.start {
		<-g.done
	}
	g.fn = nil
}

// run executes fn across the whole gang and returns when every worker is
// done.
func (g *gang) run(fn func(worker int)) {
	g.post(fn)
	g.join()
}

// stop releases the workers; the gang must be idle.
func (g *gang) stop() {
	for _, ch := range g.start {
		close(ch)
	}
}

// prepScratch is the pooled per-batch scratch: recycled across batches so
// steady-state parallel ingest allocates nothing per edge.
type prepScratch struct {
	recs []preparedEdge
	drop []bool
}

func (p *prepScratch) ensure(n int) {
	if cap(p.recs) < n {
		p.recs = make([]preparedEdge, n)
		p.drop = make([]bool, n)
	}
	p.recs = p.recs[:n]
	p.drop = p.drop[:n]
}

// ProcessBatchFunc ingests n stream edges in arrival order through the
// two-stage pipeline, with placements bit-identical to calling ProcessEdge
// once per element. at(i) must return the i-th edge of the batch and be
// safe to call from multiple goroutines (it is a pure read of caller
// state). validate, when non-nil, is called once, serially, on the calling
// goroutine before any edge is placed: it may inspect the batch (e.g.
// record edges into a graph), and reject(i) drops edge i entirely — it is
// neither interned nor placed, matching a per-edge ingest that skips it.
//
// With Workers == 1 (or a batch under MinParallelBatch) the whole pipeline
// degenerates to the serial per-edge path; no goroutine is spawned.
func (l *Loom) ProcessBatchFunc(n int, at func(int) graph.StreamEdge, validate func(reject func(int))) {
	if n <= 0 {
		return
	}
	if l.cfg.Workers <= 1 || n < MinParallelBatch {
		l.processBatchSerial(n, at, validate)
		return
	}

	l.prep.ensure(n)
	recs, drop := l.prep.recs, l.prep.drop

	// The gate memo must be valid before concurrent read-only probes.
	l.win.GateSync()

	g := spawnGang(l.cfg.Workers)
	l.gang = g // lets eviction rounds in the place phase borrow the gang
	defer func() {
		l.gang = nil
		g.stop()
	}()

	// Phase 1: parallel prepare. Work is claimed in chunks off an atomic
	// counter; each record is written by exactly one worker. The validate
	// hook overlaps on the driver — it only touches caller state (the
	// recorded graph) and the drop slice, which no worker reads.
	chunk := n / (4 * g.n)
	if chunk < 64 {
		chunk = 64
	}
	var next atomic.Int64
	g.post(func(int) {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			l.prepareRange(recs[lo:hi:hi], at, lo)
		}
	})
	dropped := false
	if validate != nil {
		clear(drop)
		validate(func(i int) {
			if uint(i) < uint(n) {
				drop[i] = true
				dropped = true
			}
		})
	}
	g.join()

	// Phase 2: serial finish — intern the unseen, in arrival order.
	l.finishPrepare(recs, drop, dropped)

	// Phase 3: sequential placement core.
	for i := range recs {
		if dropped && drop[i] {
			continue
		}
		pe := &recs[i]
		l.stats.EdgesProcessed++
		if pe.flags&pfSelfLoop != 0 {
			l.stats.SelfLoops++
			continue
		}
		l.processResolved(pe.se, pe.ui, pe.vi, pe.cu, pe.cv, pe.node, pe.flags&pfMotif != 0)
	}
}

// processBatchSerial is the Workers==1 / small-batch path: behaviour (and
// cost) of a plain ProcessEdge loop, drops included.
func (l *Loom) processBatchSerial(n int, at func(int) graph.StreamEdge, validate func(reject func(int))) {
	if validate == nil {
		for i := 0; i < n; i++ {
			l.ProcessEdge(at(i))
		}
		return
	}
	l.prep.ensure(n)
	drop := l.prep.drop
	clear(drop)
	validate(func(i int) {
		if uint(i) < uint(n) {
			drop[i] = true
		}
	})
	for i := 0; i < n; i++ {
		if !drop[i] {
			l.ProcessEdge(at(i))
		}
	}
}

// prepareRange fills the prepared records for batch positions
// [base, base+len(recs)): conversion, self-loop detection, read-only
// vertex/label resolution and read-only gate probes. Runs on worker
// goroutines; it must not write anything but its own records.
func (l *Loom) prepareRange(recs []preparedEdge, at func(int) graph.StreamEdge, base int) {
	vlab := l.vlab
	for j := range recs {
		rec := &recs[j]
		se := at(base + j)
		rec.se = se
		rec.node = nil
		if se.U == se.V {
			rec.flags = pfSelfLoop
			continue
		}
		var f prepFlag
		if ui, ok := l.verts.Lookup(int64(se.U)); ok {
			rec.ui = ui
			f |= pfU
			if int(ui) < len(vlab) && vlab[ui] >= 0 {
				rec.cu = uint16(vlab[ui])
				f |= pfCU
			}
		}
		if vi, ok := l.verts.Lookup(int64(se.V)); ok {
			rec.vi = vi
			f |= pfV
			if int(vi) < len(vlab) && vlab[vi] >= 0 {
				rec.cv = uint16(vlab[vi])
				f |= pfCV
			}
		}
		if f&(pfCU|pfCV) == pfCU|pfCV {
			if node, motif, known := l.win.GateProbe(rec.cu, rec.cv); known {
				f |= pfGate
				if motif {
					f |= pfMotif
					rec.node = node
				}
			}
		}
		rec.flags = f
	}
}

// finishPrepare completes records the parallel pre-pass could not resolve:
// vertices, labels and gate entries first seen in this batch. It walks the
// batch strictly in arrival order and resolves each edge in the same
// sub-order as ProcessEdge (U, V, then labels, then the gate), so the
// interning tables end up byte-for-byte as a sequential ingest would build
// them — later batches then resolve these entries in the parallel phase.
func (l *Loom) finishPrepare(recs []preparedEdge, drop []bool, dropped bool) {
	for i := range recs {
		rec := &recs[i]
		if rec.flags&pfSelfLoop != 0 || (dropped && drop[i]) {
			continue
		}
		if rec.flags&pfResolved == pfResolved {
			continue
		}
		if rec.flags&pfU == 0 {
			rec.ui = l.tr.Intern(rec.se.U)
		}
		if rec.flags&pfV == 0 {
			rec.vi = l.tr.Intern(rec.se.V)
		}
		if rec.flags&pfCU == 0 {
			rec.cu = l.labelCodeOf(rec.ui, rec.se.LU)
		}
		if rec.flags&pfCV == 0 {
			rec.cv = l.labelCodeOf(rec.vi, rec.se.LV)
		}
		if rec.flags&pfGate == 0 {
			if node, ok := l.win.SingleEdgeMotifCodes(rec.cu, rec.cv); ok {
				rec.node = node
				rec.flags |= pfMotif
			}
		}
		rec.flags |= pfResolved
	}
}
