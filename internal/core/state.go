package core

import "fmt"

// State is the checkpointable portion of the Loom core itself: the stream
// statistics and the per-vertex label-code cache. Everything else the core
// holds is either owned by a sub-component with its own state type
// (tracker, window, interning tables) or per-call scratch whose zero value
// is equivalent after restore (the epoch-stamped eviction buffers start at
// epoch 0 exactly as a fresh core does).
//
// VLab must be restored, not lazily refilled: labelCodeOf trusts the cache
// over the label arriving on the wire, so a vertex that returns after
// recovery with a conflicting label must keep resolving to its original
// code for placements to stay bit-identical.
type State struct {
	Stats Stats
	VLab  []int32
}

// CaptureState deep-copies the core's checkpointable state.
func (l *Loom) CaptureState() State {
	return State{Stats: l.stats, VLab: append([]int32(nil), l.vlab...)}
}

// RestoreState loads a captured state into a freshly constructed core.
func (l *Loom) RestoreState(s State) error {
	if l.stats != (Stats{}) {
		return fmt.Errorf("core: RestoreState on a non-fresh Loom (%d edges processed)", l.stats.EdgesProcessed)
	}
	l.stats = s.Stats
	l.vlab = append(l.vlab[:0], s.VLab...)
	return nil
}
