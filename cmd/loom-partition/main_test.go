package main

import (
	"bufio"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"loom/internal/dataset"
	"loom/internal/graph"
)

func writeTestStream(t *testing.T) string {
	t.Helper()
	g, err := dataset.Generate("provgen", 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.StreamOf(g, graph.OrderRandom, rand.New(rand.NewSource(2)))
	path := filepath.Join(t.TempDir(), "in.el")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteEdgeList(f, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func readAssignments(t *testing.T, path string, k int) map[int64]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[int64]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("bad line %q", sc.Text())
		}
		v, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		p, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p >= k {
			t.Fatalf("partition %d out of range", p)
		}
		out[v] = p
	}
	return out
}

func TestRunAllAlgorithms(t *testing.T) {
	in := writeTestStream(t)
	for _, algo := range []string{"hash", "ldg", "fennel", "loom"} {
		out := filepath.Join(t.TempDir(), algo+".tsv")
		err := run(in, 4, algo, "provgen", "", 256, 0.4, 1, out, false, false)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		asg := readAssignments(t, out, 4)
		if len(asg) == 0 {
			t.Fatalf("%s: no assignments written", algo)
		}
	}
}

func TestRunTraversalCostModel(t *testing.T) {
	in := writeTestStream(t)
	out := filepath.Join(t.TempDir(), "p.tsv")
	if err := run(in, 2, "ldg", "provgen", "", 64, 0.4, 1, out, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadFile(t *testing.T) {
	in := writeTestStream(t)
	wlPath := filepath.Join(t.TempDir(), "wl.json")
	wl := `{"name":"custom","queries":[{"name":"step","freq":1,
		"edges":[[1,"Entity",2,"Activity"],[2,"Activity",3,"Entity"]]}]}`
	if err := os.WriteFile(wlPath, []byte(wl), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "p.tsv")
	if err := run(in, 2, "loom", "", wlPath, 64, 0.4, 1, out, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeTestStream(t)
	out := filepath.Join(t.TempDir(), "p.tsv")
	if err := run(in, 2, "loom", "", "", 64, 0.4, 1, out, false, false); err == nil {
		t.Error("loom without workload: want error")
	}
	if err := run(in, 2, "metis", "provgen", "", 64, 0.4, 1, out, false, false); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if err := run("/does/not/exist.el", 2, "hash", "", "", 64, 0.4, 1, out, false, false); err == nil {
		t.Error("missing input: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.el")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, 2, "hash", "", "", 64, 0.4, 1, out, false, false); err == nil {
		t.Error("empty input: want error")
	}
}
