package main

import (
	"bufio"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"loom"

	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/workload"
)

func writeTestStream(t *testing.T) string {
	t.Helper()
	g, err := dataset.Generate("provgen", 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.StreamOf(g, graph.OrderRandom, rand.New(rand.NewSource(2)))
	path := filepath.Join(t.TempDir(), "in.el")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteEdgeList(f, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func readAssignments(t *testing.T, path string, k int) map[int64]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[int64]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("bad line %q", sc.Text())
		}
		v, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		p, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p >= k {
			t.Fatalf("partition %d out of range", p)
		}
		out[v] = p
	}
	return out
}

func TestRunAllAlgorithms(t *testing.T) {
	in := writeTestStream(t)
	for _, algo := range []string{"hash", "ldg", "fennel", "loom"} {
		out := filepath.Join(t.TempDir(), algo+".tsv")
		err := run(in, 4, algo, "provgen", "", 256, 0.4, 1, out, false, false, "", false)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		asg := readAssignments(t, out, 4)
		if len(asg) == 0 {
			t.Fatalf("%s: no assignments written", algo)
		}
	}
}

func TestRunTraversalCostModel(t *testing.T) {
	in := writeTestStream(t)
	out := filepath.Join(t.TempDir(), "p.tsv")
	if err := run(in, 2, "ldg", "provgen", "", 64, 0.4, 1, out, false, true, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadFile(t *testing.T) {
	in := writeTestStream(t)
	wlPath := filepath.Join(t.TempDir(), "wl.json")
	wl := `{"name":"custom","queries":[{"name":"step","freq":1,
		"edges":[[1,"Entity",2,"Activity"],[2,"Activity",3,"Entity"]]}]}`
	if err := os.WriteFile(wlPath, []byte(wl), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "p.tsv")
	if err := run(in, 2, "loom", "", wlPath, 64, 0.4, 1, out, false, false, "", false); err != nil {
		t.Fatal(err)
	}
}

func mustWorkload(t *testing.T) workload.Workload {
	t.Helper()
	wl, err := workload.ForDataset("provgen")
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// TestRunDurableWAL: the -wal path must produce the same assignments as
// the in-memory loom path, and a run split across two invocations sharing
// one WAL directory must recover and land on the same assignments as the
// single uninterrupted run.
func TestRunDurableWAL(t *testing.T) {
	g, err := dataset.Generate("provgen", 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.StreamOf(g, graph.OrderRandom, rand.New(rand.NewSource(2)))
	dir := t.TempDir()
	write := func(name string, part graph.Stream) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := dataset.WriteEdgeList(f, part); err != nil {
			t.Fatal(err)
		}
		return path
	}
	full := write("full.el", s)
	half := len(s) / 2
	first := write("first.el", s[:half])
	second := write("second.el", s[half:])

	// In-memory reference.
	memOut := filepath.Join(dir, "mem.tsv")
	if err := run(full, 4, "loom", "provgen", "", 256, 0.4, 1, memOut, true, false, "", false); err != nil {
		t.Fatal(err)
	}
	want := readAssignments(t, memOut, 4)

	// One durable run over the full stream, with a checkpoint.
	walOut := filepath.Join(dir, "wal.tsv")
	if err := run(full, 4, "loom", "provgen", "", 256, 0.4, 1, walOut, true, false,
		filepath.Join(dir, "wal-full"), true); err != nil {
		t.Fatal(err)
	}
	if got := readAssignments(t, walOut, 4); len(got) != len(want) {
		t.Fatalf("durable run assigned %d vertices, in-memory %d", len(got), len(want))
	} else {
		for v, p := range want {
			if got[v] != p {
				t.Fatalf("vertex %d: durable %d, in-memory %d", v, got[v], p)
			}
		}
	}

	// The same stream split across two runs sharing a WAL directory: the
	// second run recovers the first and must finish on the same state.
	// Each CLI run ends with a (stateful) window Flush, so the reference
	// is a library run that flushes at the same midpoint.
	walDir := filepath.Join(dir, "wal-split")
	if err := run(first, 4, "loom", "provgen", "", 256, 0.4, 1,
		filepath.Join(dir, "half.tsv"), true, false, walDir, true); err != nil {
		t.Fatal(err)
	}
	splitOut := filepath.Join(dir, "split.tsv")
	if err := run(second, 4, "loom", "provgen", "", 256, 0.4, 1, splitOut, true, false, walDir, false); err != nil {
		t.Fatal(err)
	}
	got := readAssignments(t, splitOut, 4)

	pub := make([]loom.StreamEdge, len(s))
	for i, e := range s {
		pub[i] = loom.StreamEdge{U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV)}
	}
	// Each CLI invocation sizes capacity from its own input slice, and the
	// checkpoint config fingerprint holds a resumed run to the original
	// value — the reference must use the count the split runs used.
	nFirst := map[int64]struct{}{}
	for _, e := range pub[:half] {
		nFirst[e.U] = struct{}{}
		nFirst[e.V] = struct{}{}
	}
	ref, err := loom.New(loom.Options{
		Partitions: 4, ExpectedVertices: len(nFirst), WindowSize: 256,
		SupportThreshold: 0.4, Seed: 1,
	}, publicWorkload(mustWorkload(t)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddBatch(pub[:half]); err != nil {
		t.Fatal(err)
	}
	ref.Flush()
	if err := ref.AddBatch(pub[half:]); err != nil {
		t.Fatal(err)
	}
	ref.Flush()
	want2 := ref.Assignments()
	if len(got) != len(want2) {
		t.Fatalf("split run assigned %d vertices, flush-matched reference %d", len(got), len(want2))
	}
	for v, p := range want2 {
		if got[v] != p {
			t.Fatalf("vertex %d: split %d, flush-matched reference %d", v, got[v], p)
		}
	}

	// -checkpoint without -wal is rejected.
	if err := run(full, 4, "loom", "provgen", "", 256, 0.4, 1, walOut, true, false, "", true); err == nil {
		t.Error("-checkpoint without -wal: want error")
	}
	// -wal with a baseline is rejected.
	if err := run(full, 4, "hash", "", "", 256, 0.4, 1, walOut, true, false, filepath.Join(dir, "wal-hash"), false); err == nil {
		t.Error("-wal with baseline: want error")
	}
}

func TestRunErrors(t *testing.T) {
	in := writeTestStream(t)
	out := filepath.Join(t.TempDir(), "p.tsv")
	if err := run(in, 2, "loom", "", "", 64, 0.4, 1, out, false, false, "", false); err == nil {
		t.Error("loom without workload: want error")
	}
	if err := run(in, 2, "metis", "provgen", "", 64, 0.4, 1, out, false, false, "", false); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if err := run("/does/not/exist.el", 2, "hash", "", "", 64, 0.4, 1, out, false, false, "", false); err == nil {
		t.Error("missing input: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.el")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, 2, "hash", "", "", 64, 0.4, 1, out, false, false, "", false); err == nil {
		t.Error("empty input: want error")
	}
}
