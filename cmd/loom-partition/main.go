// Command loom-partition partitions an edge-list graph stream with Loom or
// one of the baseline streaming partitioners, writing the vertex →
// partition assignment and quality metrics.
//
// Usage:
//
//	loom-gen -dataset provgen -scale 12000 -order bfs -out g.el
//	loom-partition -input g.el -k 8 -algo loom -workload provgen -out parts.tsv
//
// The workload is either one of the built-in dataset workloads (-workload
// dblp|provgen|musicbrainz|lubm) or a JSON file (-workload-file, see
// internal/workload JSON format). Quality (ipt, edge-cut, imbalance) is
// reported on stderr; use -no-eval to skip workload execution on very
// large inputs.
//
// With -wal DIR the Loom partitioner is durable: every ingest is logged
// to a write-ahead log in DIR before it is applied, an existing DIR is
// recovered (checkpoint + log replay) before the new stream is ingested,
// and -checkpoint writes a full-state snapshot at the end so the next run
// opens fast and old log segments can be pruned.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"loom"

	"loom/internal/core"
	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/signature"
	"loom/internal/workload"
)

func main() {
	var (
		input    = flag.String("input", "-", "edge-list input file ('-' for stdin)")
		k        = flag.Int("k", 8, "number of partitions")
		algo     = flag.String("algo", "loom", "partitioner: loom, hash, ldg, fennel")
		wlName   = flag.String("workload", "", "built-in workload: dblp, provgen, musicbrainz, lubm")
		wlFile   = flag.String("workload-file", "", "JSON workload file (overrides -workload)")
		win      = flag.Int("window", 10000, "Loom window size t")
		thr      = flag.Float64("threshold", 0.40, "Loom motif support threshold T")
		seed     = flag.Int64("seed", 1, "signature seed")
		out      = flag.String("out", "-", "assignment output file ('-' for stdout)")
		noEval   = flag.Bool("no-eval", false, "skip workload execution (ipt measurement)")
		costsTrv = flag.Bool("traversal-cost", false, "use the traversal-level ipt cost model")
		walDir   = flag.String("wal", "", "write-ahead log directory (loom only; recovers existing state, logs every ingest)")
		ckpt     = flag.Bool("checkpoint", false, "write a checkpoint after ingesting the stream (requires -wal)")
	)
	flag.Parse()
	if err := run(*input, *k, *algo, *wlName, *wlFile, *win, *thr, *seed, *out, *noEval, *costsTrv, *walDir, *ckpt); err != nil {
		fmt.Fprintf(os.Stderr, "loom-partition: %v\n", err)
		os.Exit(1)
	}
}

// publicWorkload rebuilds an internal workload through the public pattern
// API, edge by edge — the durable path runs entirely at the public
// surface, so its checkpoints fingerprint the same workload a library
// caller would pass to loom.Open.
func publicWorkload(wl workload.Workload) *loom.Workload {
	out := loom.NewWorkload(wl.Name)
	for _, q := range wl.Queries {
		p := loom.NewPattern()
		for _, ed := range q.Pattern.Edges() {
			lu, lv := q.Pattern.EdgeLabels(ed)
			p.AddEdge(int64(ed.U), string(lu), int64(ed.V), string(lv))
		}
		out.Add(q.Name, p, q.Freq)
	}
	return out
}

// runDurable ingests the stream through a WAL-backed public partitioner,
// recovering whatever state the directory already holds.
func runDurable(stream graph.Stream, wl workload.Workload, k, win int, thr float64, seed int64, n int, walDir string, ckpt bool) (*partition.Assignment, time.Duration, error) {
	opt := loom.Options{
		Partitions:       k,
		ExpectedVertices: n,
		WindowSize:       win,
		SupportThreshold: thr,
		Seed:             seed,
		WALDir:           walDir,
	}
	p, info, err := loom.Open(opt, publicWorkload(wl))
	if err != nil {
		return nil, 0, err
	}
	if info.Recovered {
		fmt.Fprintf(os.Stderr, "wal: recovered checkpoint@%d + %d replayed records (lsn %d)\n",
			info.CheckpointLSN, info.ReplayedRecords, info.LastLSN)
	}
	for _, w := range info.Warnings {
		fmt.Fprintf(os.Stderr, "wal: warning: %s\n", w)
	}
	pub := make([]loom.StreamEdge, len(stream))
	for i, e := range stream {
		pub[i] = loom.StreamEdge{U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV)}
	}
	start := time.Now()
	const chunk = 1024
	for i := 0; i < len(pub); i += chunk {
		end := min(i+chunk, len(pub))
		if err := p.AddBatch(pub[i:end]); err != nil {
			return nil, 0, err
		}
	}
	p.Flush()
	elapsed := time.Since(start)
	if err := p.Err(); err != nil {
		return nil, 0, err
	}
	if ckpt {
		sz, err := p.Checkpoint()
		if err != nil {
			return nil, 0, err
		}
		fmt.Fprintf(os.Stderr, "wal: checkpoint written (%d bytes)\n", sz)
	}
	a := partition.NewAssignment(k)
	p.Snapshot().Each(func(v int64, part int) { a.Set(graph.VertexID(v), partition.ID(part)) })
	return a, elapsed, p.Close()
}

func run(input string, k int, algo, wlName, wlFile string, win int, thr float64, seed int64, out string, noEval, costTrv bool, walDir string, ckpt bool) error {
	// Load the stream.
	in := os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	stream, err := dataset.ReadEdgeList(in)
	if err != nil {
		return err
	}
	if len(stream) == 0 {
		return fmt.Errorf("empty input stream")
	}

	// Count distinct vertices for the capacity constraint.
	seen := make(map[graph.VertexID]struct{})
	for _, e := range stream {
		seen[e.U] = struct{}{}
		seen[e.V] = struct{}{}
	}
	n := len(seen)
	capC := partition.CapacityFor(n, k, partition.DefaultImbalance)

	// Load the workload if needed (required for loom; optional for the
	// quality report otherwise).
	var wl workload.Workload
	haveWL := false
	switch {
	case wlFile != "":
		f, err := os.Open(wlFile)
		if err != nil {
			return err
		}
		wl, err = workload.ParseJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		haveWL = true
	case wlName != "":
		wl, err = workload.ForDataset(wlName)
		if err != nil {
			return err
		}
		haveWL = true
	}

	var a *partition.Assignment
	var elapsed time.Duration
	if walDir != "" {
		// Durable path: the public partitioner logs every ingest to the
		// WAL before applying it and recovers existing directory state
		// first. Placements are identical to the in-memory path.
		if algo != "loom" {
			return fmt.Errorf("-wal requires -algo loom (baselines are stateless; rerun them from the stream)")
		}
		if !haveWL {
			return fmt.Errorf("loom requires -workload or -workload-file")
		}
		a, elapsed, err = runDurable(stream, wl, k, win, thr, seed, n, walDir, ckpt)
		if err != nil {
			return err
		}
	} else {
		if ckpt {
			return fmt.Errorf("-checkpoint requires -wal")
		}
		// Build the partitioner.
		var s partition.Streamer
		switch algo {
		case "hash":
			s = partition.NewHash(k, capC)
		case "ldg":
			s = partition.NewLDG(k, capC)
		case "fennel":
			s = partition.NewFennel(k, n, len(stream))
		case "loom":
			if !haveWL {
				return fmt.Errorf("loom requires -workload or -workload-file")
			}
			scheme := signature.NewScheme(signature.DefaultP, seed)
			trie, err := wl.BuildTrie(scheme)
			if err != nil {
				return err
			}
			s, err = core.New(core.Config{
				K: k, Capacity: capC, WindowSize: win, SupportThreshold: thr,
			}, trie)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown algorithm %q", algo)
		}

		// Partition: the whole file is already in memory, so ingest it as
		// one batch (identical placements to the per-edge path, less
		// dispatch).
		start := time.Now()
		s.ProcessEdges(stream)
		s.Flush()
		elapsed = time.Since(start)
		a = s.Assignment()
	}

	// Write assignments.
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := partition.WriteAssignment(w, a); err != nil {
		return err
	}

	// Quality report.
	fmt.Fprintf(os.Stderr, "%s: k=%d vertices=%d edges=%d time=%s (%.0f edges/s)\n",
		algo, k, a.NumAssigned(), len(stream), elapsed.Round(time.Millisecond),
		float64(len(stream))/elapsed.Seconds())
	g, err := graph.BuildGraph(stream)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "edge-cut=%d (%.1f%%) imbalance=%.1f%%\n",
		partition.EdgeCut(g, a), 100*float64(partition.EdgeCut(g, a))/float64(g.NumEdges()),
		100*partition.Imbalance(a))
	if haveWL && !noEval {
		model := workload.EmbeddingCrossings
		if costTrv {
			model = workload.TraversalCrossings
		}
		res, err := workload.Execute(g, a, wl, workload.Options{Model: model})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "workload %q ipt=%.1f\n", wl.Name, res.IPT)
		for _, q := range res.PerQuery {
			fmt.Fprintf(os.Stderr, "  %-28s matches=%-8d crossings=%-8d weighted=%.1f\n",
				q.Name, q.Matches, q.Crossings, q.WeightedIPT)
		}
	}
	return nil
}
