// Command loom-bench reruns the paper's evaluation (§5): every table and
// figure, at a laptop-friendly scale, printing paper-style text tables.
//
// Usage:
//
//	loom-bench -exp all
//	loom-bench -exp fig7 -scale 20000 -k 8
//	loom-bench -exp fig9 -datasets musicbrainz
//	loom-bench -exp perf -json BENCH_$(git rev-parse --short HEAD).json
//	loom-bench -exp scale -json BENCH_parallel.json
//	loom-bench -exp perf -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments: table1, fig4, fig7, fig8, fig9, table2, ablation, perf,
// scale, read, hub, recover, all. The perf experiment measures every partitioner's
// streaming cost (ns, allocs and bytes per edge) plus the ipt it buys;
// the scale experiment sweeps AddBatch worker counts (multi-core ingest);
// the read experiment measures the lock-free read path (snapshot latency
// vs assignment size, and read/ingest throughput under contention);
// the hub experiment stresses the matching core's join path on
// adversarial dense-hub and high-overlap window shapes; the recover
// experiment measures the durability subsystem (WAL ingest overhead per
// fsync policy, checkpoint cost, recovery time vs log tail); the route
// experiment measures the placement-serving tier (routing QPS under live
// ingest, replica catch-up vs checkpoint position, scatter fan-out vs
// broadcast); the chaos experiment injects WAL faults — a primary killed
// mid-write, segments pruned out from under a follower, a flipped bit in
// a tailed segment, transient read errors, an fsync-bouncing disk — and
// asserts the supervised serving tier self-heals with zero wrong routes
// (-short trims it to a CI smoke). -json writes
// the perf, scale, read, hub, recover, route or chaos experiment as machine-readable
// JSON ("-" for stdout) so the performance trajectory can be tracked across commits
// (BENCH_*.json).
// -cpuprofile / -memprofile write pprof profiles covering the selected
// experiment, so hot-path work is profileable without a custom harness.
// See EXPERIMENTS.md for how each output maps onto the paper's results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"loom/internal/bench"
	"loom/internal/simulate"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, fig4, fig7, fig8, fig9, table2, ablation, extensions, simulate, motifs, perf, scale, read, hub, recover, route, chaos, footprint, all")
		short    = flag.Bool("short", false, "trim the chaos experiment to a CI-smoke scale")
		scale    = flag.Int("scale", 12000, "per-dataset target vertex count")
		seed     = flag.Int64("seed", 42, "seed for generation/shuffles/signatures")
		k        = flag.Int("k", 8, "partitions (fig7/fig9/table2)")
		win      = flag.Int("window", 2048, "Loom window size at harness scale")
		datasets = flag.String("datasets", "", "comma-separated subset (default: dblp,provgen,musicbrainz,lubm)")
		fpEdges  = flag.String("edges", "1e6", "footprint: comma-separated stream edge counts, e.g. 1e6,1e7,1e8")
		jsonOut  = flag.String("json", "", "write the perf, scale, read, hub or recover experiment as JSON to this file (\"-\" for stdout)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile covering the experiment to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the experiment to this file")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Seed: *seed, K: *k, WindowSize: *win}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	edgeCounts, err := bench.ParseEdgeCounts(*fpEdges)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loom-bench: %v\n", err)
		os.Exit(1)
	}
	if err := withProfiles(*cpuProf, *memProf, func() error {
		if *jsonOut != "" {
			switch *exp {
			case "all", "perf":
				return runPerfJSON(cfg, *jsonOut)
			case "scale":
				return runScaleJSON(cfg, *jsonOut)
			case "read":
				return runReadJSON(cfg, *jsonOut)
			case "hub":
				return runHubJSON(cfg, *jsonOut)
			case "recover":
				return runRecoverJSON(cfg, *jsonOut)
			case "route":
				return runRouteJSON(cfg, *jsonOut)
			case "chaos":
				return runChaosJSON(cfg, *jsonOut, *short)
			case "footprint":
				return runFootprintJSON(cfg, edgeCounts, *jsonOut)
			default:
				return fmt.Errorf("-json only applies to the perf, scale, read, hub, recover, route, chaos and footprint experiments (got -exp %s)", *exp)
			}
		}
		return run(*exp, cfg, *short, edgeCounts)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "loom-bench: %v\n", err)
		os.Exit(1)
	}
}

// withProfiles runs fn under the requested pprof profiles: the CPU profile
// covers fn exactly, and the heap profile snapshots live allocations after
// fn (and a final GC), the view that matters for steady-state memory.
func withProfiles(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// runPerfJSON runs the perf experiment and writes the machine-readable
// report to path ("-" = stdout).
func runPerfJSON(cfg bench.Config, path string) error {
	rep, err := bench.RunPerf(cfg)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WritePerfJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WritePerfJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runHubJSON runs the join-path stress shapes and writes the
// machine-readable report to path ("-" = stdout).
func runHubJSON(cfg bench.Config, path string) error {
	rep, err := bench.RunHub(cfg)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WriteHubJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteHubJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runReadJSON runs the read-path experiment and writes the
// machine-readable report to path ("-" = stdout).
func runReadJSON(cfg bench.Config, path string) error {
	rep, err := bench.RunRead(cfg)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WriteReadJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteReadJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runRecoverJSON runs the durability experiment and writes the
// machine-readable report to path ("-" = stdout).
func runRecoverJSON(cfg bench.Config, path string) error {
	rep, err := bench.RunRecover(cfg)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WriteRecoverJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteRecoverJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runRouteJSON runs the serving-tier experiment and writes the
// machine-readable report to path ("-" = stdout).
func runRouteJSON(cfg bench.Config, path string) error {
	rep, err := bench.RunRoute(cfg)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WriteRouteJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteRouteJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runChaosJSON runs the fault-injection suite and writes the
// machine-readable report to path ("-" = stdout).
func runChaosJSON(cfg bench.Config, path string, short bool) error {
	rep, err := bench.RunChaos(cfg, short)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WriteChaosJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteChaosJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runScaleJSON runs the multi-core scaling sweep and writes the
// machine-readable report to path ("-" = stdout).
func runScaleJSON(cfg bench.Config, path string) error {
	rep, err := bench.RunScale(cfg)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WriteScaleJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteScaleJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFootprintJSON runs the memory-footprint sweep and writes the
// machine-readable report to path ("-" = stdout).
func runFootprintJSON(cfg bench.Config, edgeCounts []int64, path string) error {
	rep, err := bench.RunFootprint(cfg, edgeCounts, nil)
	if err != nil {
		return err
	}
	if path == "-" {
		return bench.WriteFootprintJSON(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.WriteFootprintJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(exp string, cfg bench.Config, short bool, edgeCounts []int64) error {
	runOne := func(name string) error {
		start := time.Now()
		defer func() {
			fmt.Printf("(%s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "table1":
			rows, err := bench.RunTable1(cfg)
			if err != nil {
				return err
			}
			bench.RenderTable1(os.Stdout, rows)
		case "fig4":
			bench.RenderFig4(os.Stdout, bench.RunFig4())
		case "fig7":
			cells, err := bench.RunFig7(cfg)
			if err != nil {
				return err
			}
			bench.RenderIPTCells(os.Stdout, "Fig. 7: ipt vs Hash, 8-way partitionings, three stream orders", cells)
			fmt.Printf("median Loom ipt reduction vs Fennel: %.1f%%\n", bench.SummarizeLoomVsFennel(cells))
		case "fig8":
			cells, err := bench.RunFig8(cfg)
			if err != nil {
				return err
			}
			bench.RenderIPTCells(os.Stdout, "Fig. 8: ipt vs Hash across k ∈ {2, 8, 32}, breadth-first streams", cells)
			fmt.Printf("median Loom ipt reduction vs Fennel: %.1f%%\n", bench.SummarizeLoomVsFennel(cells))
		case "fig9":
			pts, err := bench.RunFig9(cfg, nil)
			if err != nil {
				return err
			}
			bench.RenderFig9(os.Stdout, pts)
		case "table2":
			rows, err := bench.RunTable2(cfg)
			if err != nil {
				return err
			}
			bench.RenderTable2(os.Stdout, rows)
		case "ablation":
			cells, err := bench.RunAblation(cfg)
			if err != nil {
				return err
			}
			bench.RenderAblation(os.Stdout, cells)
		case "extensions":
			cells, err := bench.RunExtensions(cfg)
			if err != nil {
				return err
			}
			bench.RenderExtensions(os.Stdout, cells)
		case "simulate":
			cells, err := bench.RunSimulation(cfg, simulate.CostModel{})
			if err != nil {
				return err
			}
			bench.RenderSimulation(os.Stdout, cells)
		case "motifs":
			if err := bench.RenderMotifs(os.Stdout, cfg); err != nil {
				return err
			}
		case "perf":
			rep, err := bench.RunPerf(cfg)
			if err != nil {
				return err
			}
			bench.RenderPerf(os.Stdout, rep)
		case "scale":
			rep, err := bench.RunScale(cfg)
			if err != nil {
				return err
			}
			bench.RenderScale(os.Stdout, rep)
		case "read":
			rep, err := bench.RunRead(cfg)
			if err != nil {
				return err
			}
			bench.RenderRead(os.Stdout, rep)
		case "hub":
			rep, err := bench.RunHub(cfg)
			if err != nil {
				return err
			}
			bench.RenderHub(os.Stdout, rep)
		case "recover":
			rep, err := bench.RunRecover(cfg)
			if err != nil {
				return err
			}
			bench.RenderRecover(os.Stdout, rep)
		case "route":
			rep, err := bench.RunRoute(cfg)
			if err != nil {
				return err
			}
			bench.RenderRoute(os.Stdout, rep)
		case "chaos":
			rep, err := bench.RunChaos(cfg, short)
			if err != nil {
				return err
			}
			bench.RenderChaos(os.Stdout, rep)
		case "footprint":
			rep, err := bench.RunFootprint(cfg, edgeCounts, nil)
			if err != nil {
				return err
			}
			bench.RenderFootprint(os.Stdout, rep)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if exp == "all" {
		for _, name := range []string{"table1", "fig4", "fig7", "fig8", "table2", "fig9", "ablation", "extensions", "simulate"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(exp)
}
