package main

import (
	"testing"

	"loom/internal/bench"
)

func tinyCfg() bench.Config {
	return bench.Config{Scale: 900, Seed: 3, K: 2, WindowSize: 64, Datasets: []string{"provgen"}}
}

func TestRunEachExperiment(t *testing.T) {
	for _, exp := range []string{"table1", "fig4", "fig9", "table2", "ablation", "extensions", "motifs", "simulate"} {
		if err := run(exp, tinyCfg()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunFig7AndFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, exp := range []string{"fig7", "fig8"} {
		if err := run(exp, tinyCfg()); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", tinyCfg()); err == nil {
		t.Error("unknown experiment: want error")
	}
}
