package main

import (
	"encoding/json"
	"os"
	"testing"

	"loom/internal/bench"
)

func tinyCfg() bench.Config {
	return bench.Config{Scale: 900, Seed: 3, K: 2, WindowSize: 64, Datasets: []string{"provgen"}}
}

func TestRunEachExperiment(t *testing.T) {
	for _, exp := range []string{"table1", "fig4", "fig9", "table2", "ablation", "extensions", "motifs", "simulate", "perf", "scale"} {
		if err := run(exp, tinyCfg(), false, nil); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunScaleJSON(t *testing.T) {
	path := t.TempDir() + "/BENCH_scale_test.json"
	if err := runScaleJSON(tinyCfg(), path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.ScaleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if want := len(bench.ScaleWorkers); len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), want)
	}
}

func TestWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	ran := false
	if err := withProfiles(cpu, mem, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("fn not run")
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	// Errors from fn must propagate (and still stop the CPU profile).
	wantErr := withProfiles(dir+"/cpu2.pprof", "", func() error { return os.ErrInvalid })
	if wantErr != os.ErrInvalid {
		t.Errorf("fn error not propagated: %v", wantErr)
	}
}

func TestRunPerfJSON(t *testing.T) {
	path := t.TempDir() + "/BENCH_test.json"
	if err := runPerfJSON(tinyCfg(), path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if want := len(bench.Systems) * len(bench.PerfIngestModes); len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), want)
	}
	for _, r := range rep.Rows {
		if r.NsPerEdge <= 0 {
			t.Errorf("%s/%s: non-positive ns/edge %v", r.Dataset, r.System, r.NsPerEdge)
		}
	}
}

func TestRunFig7AndFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, exp := range []string{"fig7", "fig8"} {
		if err := run(exp, tinyCfg(), false, nil); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", tinyCfg(), false, nil); err == nil {
		t.Error("unknown experiment: want error")
	}
}
