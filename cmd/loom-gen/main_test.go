package main

import (
	"os"
	"path/filepath"
	"testing"

	"loom/internal/dataset"
)

func TestRunGeneratesReadableEdgeList(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.el")
	if err := run("provgen", 1200, "bfs", 7, out, dataset.CustomSpec{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stream, err := dataset.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatal("empty stream written")
	}
}

func TestRunCustomDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.el")
	spec := dataset.CustomSpec{Labels: 6, EdgeFactor: 2}
	if err := run("custom", 800, "random", 3, out, spec); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stream, err := dataset.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, e := range stream {
		labels[string(e.LU)] = true
		labels[string(e.LV)] = true
	}
	if len(labels) != 6 {
		t.Errorf("custom labels = %d, want 6", len(labels))
	}
	if err := run("custom", 800, "bfs", 3, out, dataset.CustomSpec{Labels: -1}); err == nil {
		t.Error("bad custom spec: want error")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.el")
	if err := run("nope", 100, "bfs", 1, out, dataset.CustomSpec{}); err == nil {
		t.Error("unknown dataset: want error")
	}
	if err := run("provgen", 100, "sorted", 1, out, dataset.CustomSpec{}); err == nil {
		t.Error("unknown order: want error")
	}
	if err := run("provgen", 100, "bfs", 1, "/nonexistent-dir/file.el", dataset.CustomSpec{}); err == nil {
		t.Error("bad output path: want error")
	}
}
