// Command loom-gen emits a synthetic evaluation dataset as an edge-list
// stream in a chosen order, reproducing the paper's "stream a graph from
// disk in one of three predefined orders" setup (§5.1).
//
// Usage:
//
//	loom-gen -dataset dblp -scale 12000 -order bfs -seed 42 -out dblp.el
//
// For streams too large to materialise, -stream switches to a
// constant-memory generator that writes edges as it draws them (order is
// necessarily "original"):
//
//	loom-gen -stream powerlaw -edges 100000000 -vertices 10000000 -out big.el
//
// The output format is one edge per line: "<u> <label-u> <v> <label-v>".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"loom/internal/dataset"
	"loom/internal/graph"
)

func main() {
	var (
		name  = flag.String("dataset", "provgen", "dataset: dblp, provgen, musicbrainz, lubm, lubm-large, custom")
		scale = flag.Int("scale", 12000, "target vertex count")
		order = flag.String("order", "original", "stream order: original, bfs, dfs, random")
		seed  = flag.Int64("seed", 42, "generator / shuffle seed")
		out   = flag.String("out", "-", "output file ('-' for stdout)")

		// Knobs for -dataset custom (ignored otherwise).
		labels     = flag.Int("labels", 4, "custom: number of vertex labels |LV|")
		edgeFactor = flag.Float64("edge-factor", 2.5, "custom: target |E|/|V| ratio")
		comms      = flag.Int("communities", 0, "custom: community count (0 = auto)")
		cross      = flag.Float64("cross", 0.05, "custom: cross-community edge fraction")
		hubSkew    = flag.Float64("hub-skew", 0.5, "custom: degree skew in [0,1)")

		// Constant-memory streaming mode (-stream set ⇒ the flags above
		// except -seed/-out are ignored).
		streamMode = flag.String("stream", "", "constant-memory stream mode: powerlaw or triples (empty: materialised dataset)")
		edges      = flag.Int64("edges", 1_000_000, "stream: number of edges to emit")
		vertices   = flag.Int64("vertices", 0, "stream: core vertex range (0: edges/10)")
		skew       = flag.Float64("skew", 1.3, "stream: Zipf exponent (> 1)")
	)
	flag.Parse()

	if *streamMode != "" {
		if err := runStream(*streamMode, *edges, *vertices, *labels, *skew, *seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "loom-gen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	spec := dataset.CustomSpec{
		Labels: *labels, EdgeFactor: *edgeFactor, Communities: *comms,
		CrossFraction: *cross, HubSkew: *hubSkew,
	}
	if err := run(*name, *scale, *order, *seed, *out, spec); err != nil {
		fmt.Fprintf(os.Stderr, "loom-gen: %v\n", err)
		os.Exit(1)
	}
}

// runStream draws edges from the constant-memory generator and writes
// them as it goes: the working set is one bufio buffer regardless of
// -edges, which is what lets loom-gen materialise 10⁸-edge files.
func runStream(mode string, edges, vertices int64, labels int, skew float64, seed int64, out string) error {
	if vertices == 0 {
		vertices = edges / 10
	}
	gen, err := dataset.NewStreamGen(dataset.StreamSpec{
		Mode: mode, Edges: edges, Vertices: vertices,
		Labels: labels, Skew: skew, Seed: seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for {
		e, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%d %s %d %s\n", e.U, e.LU, e.V, e.LV); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loom-gen: stream %s |E|=%d vertices<=%d seed=%d\n", mode, edges, vertices, seed)
	return nil
}

func run(name string, scale int, order string, seed int64, out string, spec dataset.CustomSpec) error {
	switch graph.StreamOrder(order) {
	case graph.OrderOriginal, graph.OrderBFS, graph.OrderDFS, graph.OrderRandom:
	default:
		return fmt.Errorf("unknown order %q (want original, bfs, dfs or random)", order)
	}
	var g *graph.Graph
	var err error
	if name == "custom" {
		g, err = dataset.Custom(scale, seed, spec)
	} else {
		g, err = dataset.Generate(name, scale, seed)
	}
	if err != nil {
		return err
	}
	stream := graph.StreamOf(g, graph.StreamOrder(order), rand.New(rand.NewSource(seed)))

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteEdgeList(w, stream); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loom-gen: %s |V|=%d |E|=%d |LV|=%d order=%s\n",
		name, g.NumVertices(), g.NumEdges(), len(g.Labels()), order)
	return nil
}
