// Command loom-gen emits a synthetic evaluation dataset as an edge-list
// stream in a chosen order, reproducing the paper's "stream a graph from
// disk in one of three predefined orders" setup (§5.1).
//
// Usage:
//
//	loom-gen -dataset dblp -scale 12000 -order bfs -seed 42 -out dblp.el
//
// The output format is one edge per line: "<u> <label-u> <v> <label-v>".
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"loom/internal/dataset"
	"loom/internal/graph"
)

func main() {
	var (
		name  = flag.String("dataset", "provgen", "dataset: dblp, provgen, musicbrainz, lubm, lubm-large, custom")
		scale = flag.Int("scale", 12000, "target vertex count")
		order = flag.String("order", "original", "stream order: original, bfs, dfs, random")
		seed  = flag.Int64("seed", 42, "generator / shuffle seed")
		out   = flag.String("out", "-", "output file ('-' for stdout)")

		// Knobs for -dataset custom (ignored otherwise).
		labels     = flag.Int("labels", 4, "custom: number of vertex labels |LV|")
		edgeFactor = flag.Float64("edge-factor", 2.5, "custom: target |E|/|V| ratio")
		comms      = flag.Int("communities", 0, "custom: community count (0 = auto)")
		cross      = flag.Float64("cross", 0.05, "custom: cross-community edge fraction")
		hubSkew    = flag.Float64("hub-skew", 0.5, "custom: degree skew in [0,1)")
	)
	flag.Parse()

	spec := dataset.CustomSpec{
		Labels: *labels, EdgeFactor: *edgeFactor, Communities: *comms,
		CrossFraction: *cross, HubSkew: *hubSkew,
	}
	if err := run(*name, *scale, *order, *seed, *out, spec); err != nil {
		fmt.Fprintf(os.Stderr, "loom-gen: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, scale int, order string, seed int64, out string, spec dataset.CustomSpec) error {
	switch graph.StreamOrder(order) {
	case graph.OrderOriginal, graph.OrderBFS, graph.OrderDFS, graph.OrderRandom:
	default:
		return fmt.Errorf("unknown order %q (want original, bfs, dfs or random)", order)
	}
	var g *graph.Graph
	var err error
	if name == "custom" {
		g, err = dataset.Custom(scale, seed, spec)
	} else {
		g, err = dataset.Generate(name, scale, seed)
	}
	if err != nil {
		return err
	}
	stream := graph.StreamOf(g, graph.StreamOrder(order), rand.New(rand.NewSource(seed)))

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteEdgeList(w, stream); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loom-gen: %s |V|=%d |E|=%d |LV|=%d order=%s\n",
		name, g.NumVertices(), g.NumEdges(), len(g.Labels()), order)
	return nil
}
