// Command loom-router serves Loom placement decisions over HTTP: the
// network face of the router package, the serving tier "On Smart Query
// Routing" assumes a streaming partitioner will feed.
//
//	GET  /route/{vertex}                 one routing decision
//	POST /route/batch                    JSON array of vertex ids
//	GET  /route/scatter?seed=V&motif=Q   scatter-gather plan for a motif
//	GET  /stats                          mirror + supervisor + server counters
//	GET  /healthz                        200 once caught up, 503 before;
//	                                     "degraded" body while riding out a fault
//
// Three modes:
//
//	loom-router -addr :7474 -dataset dblp -scale 3000
//	    In-memory demo: partitions a generated stream while serving; the
//	    mirror attaches before ingest and is ready immediately.
//
//	loom-router -addr :7474 -dataset dblp -wal /var/loom/wal
//	    Durable primary: same demo ingest, WAL-backed (recovering whatever
//	    the directory holds first), checkpointing when ingest completes.
//
//	loom-router -addr :7474 -dataset dblp -wal /var/loom/wal -follow
//	    Supervised replica: tails another process's WAL directory
//	    read-only, polling every -poll. The follower runs under a
//	    supervisor that classifies faults and self-heals: transient I/O
//	    errors are retried with jittered exponential backoff (-backoff-min
//	    .. -backoff-max, factor -backoff-factor) while routing keeps
//	    serving the last applied state; a WAL gap (the primary pruned past
//	    us) or segment corruption triggers an automatic re-bootstrap from
//	    the primary's newest checkpoint, quarantining any damaged segment
//	    by name in /stats. /healthz turns 200 only once the replica has
//	    caught up to the primary's durable log head, and reports
//	    "degraded" (still 200 — keep routing, page someone) during
//	    faults after that.
//
// Serving is bounded: per-request deadline (-timeout), an in-flight cap
// that sheds excess route load with 503 + Retry-After (-max-inflight),
// and a batch-size limit (-max-batch). The motif workload for
// /route/scatter is the dataset's registered workload (-dataset).
// Shutdown is graceful on SIGINT/SIGTERM: in-flight requests drain for
// up to -drain, the partitioner closes (syncing the WAL).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loom"
	"loom/router"
)

type config struct {
	addr     string
	dataset  string
	k        int
	scale    int
	vertices int
	window   int
	seed     int64
	walDir   string
	follow   bool
	poll     time.Duration
	pin      time.Duration

	backoffMin    time.Duration
	backoffMax    time.Duration
	backoffFactor float64

	timeout     time.Duration
	maxInFlight int
	maxBatch    int
	drain       time.Duration
	routeDelay  time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7474", "HTTP listen address")
	flag.StringVar(&cfg.dataset, "dataset", "dblp", "dataset workload: dblp, provgen, musicbrainz, lubm")
	flag.IntVar(&cfg.k, "k", 4, "number of partitions")
	flag.IntVar(&cfg.scale, "scale", 3000, "edges of demo stream to ingest (ignored with -follow)")
	flag.IntVar(&cfg.vertices, "vertices", 0, "ExpectedVertices sizing hint (0: derive from -scale); durable modes must match the directory's value")
	flag.IntVar(&cfg.window, "window", 256, "Loom window size t")
	flag.Int64Var(&cfg.seed, "seed", 7, "demo stream seed")
	flag.StringVar(&cfg.walDir, "wal", "", "write-ahead log directory (primary: log + recover; with -follow: tail read-only)")
	flag.BoolVar(&cfg.follow, "follow", false, "follow a primary's WAL directory instead of ingesting (requires -wal)")
	flag.DurationVar(&cfg.poll, "poll", 200*time.Millisecond, "steady-state WAL poll interval in -follow mode")
	flag.DurationVar(&cfg.pin, "pin", time.Second, "routing-generation repin interval")
	flag.DurationVar(&cfg.backoffMin, "backoff-min", 50*time.Millisecond, "first retry delay after a follow fault")
	flag.DurationVar(&cfg.backoffMax, "backoff-max", 5*time.Second, "retry delay ceiling for follow faults")
	flag.Float64Var(&cfg.backoffFactor, "backoff-factor", 2, "retry delay multiplier per consecutive follow fault")
	flag.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "per-request handler deadline (negative: no deadline)")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 256, "concurrent route requests before shedding with 503 (negative: unbounded)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 65536, "largest accepted /route/batch vertex count")
	flag.DurationVar(&cfg.drain, "drain", 5*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.DurationVar(&cfg.routeDelay, "route-delay", 0, "artificial per-route delay (drain/overload testing aid)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "loom-router: %v\n", err)
		os.Exit(1)
	}
}

// run builds the partitioner (or supervised follower), attaches the
// mirror, and serves until ctx is cancelled. If addrCh is non-nil the
// bound listen address is sent on it once the listener is up (tests
// bind :0).
func run(ctx context.Context, cfg config, logw io.Writer, addrCh chan<- string) error {
	logger := log.New(logw, "loom-router: ", log.LstdFlags)
	if cfg.follow && cfg.walDir == "" {
		return fmt.Errorf("-follow requires -wal DIR (the primary's log directory)")
	}
	if cfg.drain <= 0 {
		cfg.drain = 5 * time.Second
	}
	wl, err := loom.DatasetWorkload(cfg.dataset)
	if err != nil {
		return err
	}
	// Checkpoints fingerprint every placement-shaping option, so durable
	// modes must present the exact ExpectedVertices the directory was
	// created with — hence the explicit -vertices override.
	expected := cfg.vertices
	if expected <= 0 {
		expected = 2 * cfg.scale
	}
	if expected < 1024 {
		expected = 4096
	}
	opt := loom.Options{
		Partitions:       cfg.k,
		ExpectedVertices: expected,
		WindowSize:       cfg.window,
		WALDir:           cfg.walDir,
	}

	m := router.New()
	var (
		p   *loom.Partitioner
		sup *router.Supervisor
	)
	switch {
	case cfg.follow:
		// The supervisor owns the follower's whole lifecycle — bootstrap
		// included, so a briefly unreachable WAL directory delays serving
		// instead of killing the process — and re-bootstraps through
		// gaps and corruption on its own.
		sup = router.NewSupervisor(m, func() (*loom.Follower, loom.RecoveryInfo, error) {
			return loom.Follow(opt, wl)
		}, router.SupervisorConfig{
			Poll:          cfg.poll,
			BackoffMin:    cfg.backoffMin,
			BackoffMax:    cfg.backoffMax,
			BackoffFactor: cfg.backoffFactor,
			Logf:          logger.Printf,
		})
	case cfg.walDir != "":
		dp, info, err := loom.Open(opt, wl)
		if err != nil {
			return err
		}
		p = dp
		if info.Recovered {
			logger.Printf("recovered %s: checkpoint@%d + %d replayed records",
				cfg.walDir, info.CheckpointLSN, info.ReplayedRecords)
		}
	default:
		p, err = loom.New(opt, wl)
		if err != nil {
			return err
		}
	}
	if p != nil {
		m.Attach(p)
	}
	srv := router.NewServerWith(m, router.NewPlanner(m, wl.Queries(), cfg.k), router.ServerConfig{
		Timeout:     cfg.timeout,
		MaxInFlight: cfg.maxInFlight,
		MaxBatch:    cfg.maxBatch,
		Supervisor:  sup,
		Delay:       cfg.routeDelay,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		if p != nil && cfg.walDir != "" {
			p.Close()
		}
		return err
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	logger.Printf("serving on %s (dataset %s, k=%d)", ln.Addr(), cfg.dataset, cfg.k)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 3)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	bgCtx, stopBg := context.WithCancel(ctx)
	defer stopBg()
	if sup != nil {
		go func() { errc <- sup.Run(bgCtx) }()
	} else {
		// The reconciler repins the routing generation: vertices placed
		// before the mirror attached (recovered state) resolve through
		// it. In follow mode the supervisor repins after every
		// productive poll instead.
		go func() {
			tick := time.NewTicker(cfg.pin)
			defer tick.Stop()
			for {
				select {
				case <-bgCtx.Done():
					return
				case <-tick.C:
					m.Pin(p.Snapshot())
				}
			}
		}()
		if cfg.scale > 0 {
			go func() { errc <- demoIngest(bgCtx, p, m, cfg, logger) }()
		}
	}

	select {
	case <-ctx.Done():
		logger.Printf("shutting down (draining for up to %v)", cfg.drain)
	case err := <-errc:
		if err != nil {
			shutdown(httpSrv, p, cfg, logger)
			return err
		}
		<-ctx.Done()
		logger.Printf("shutting down (draining for up to %v)", cfg.drain)
	}
	return shutdown(httpSrv, p, cfg, logger)
}

// shutdown drains in-flight requests for up to cfg.drain, then closes
// the partitioner (primary mode: a final WAL sync). The supervised
// follower is closed by Supervisor.Run's own cleanup on cancellation.
func shutdown(httpSrv *http.Server, p *loom.Partitioner, cfg config, logger *log.Logger) error {
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if p != nil && cfg.walDir != "" {
		return p.Close() // syncs the log
	}
	return nil
}

// demoIngest streams a generated dataset into the partitioner while the
// server routes against it — the standalone demo (and CI smoke) mode.
func demoIngest(ctx context.Context, p *loom.Partitioner, m *router.Mirror, cfg config, logger *log.Logger) error {
	edges, err := loom.GenerateDataset(cfg.dataset, cfg.scale, cfg.seed)
	if err != nil {
		return err
	}
	const batch = 256
	for i := 0; i < len(edges); i += batch {
		if ctx.Err() != nil {
			return nil
		}
		end := min(i+batch, len(edges))
		if err := p.AddBatch(edges[i:end]); err != nil {
			return err
		}
	}
	p.Flush()
	if err := p.Err(); err != nil {
		return err
	}
	m.Pin(p.Snapshot())
	if cfg.walDir != "" {
		if _, err := p.Checkpoint(); err != nil {
			return err
		}
	}
	st := m.Stats()
	logger.Printf("demo stream done: %d edges, mirror holds %d placements (%d evictions)",
		len(edges), st.Vertices, st.Evicted)
	return nil
}
