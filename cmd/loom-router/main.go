// Command loom-router serves Loom placement decisions over HTTP: the
// network face of the router package, the serving tier "On Smart Query
// Routing" assumes a streaming partitioner will feed.
//
//	GET  /route/{vertex}                 one routing decision
//	POST /route/batch                    JSON array of vertex ids
//	GET  /route/scatter?seed=V&motif=Q   scatter-gather plan for a motif
//	GET  /stats                          mirror + planner counters
//	GET  /healthz                        200 once caught up, 503 before
//
// Three modes:
//
//	loom-router -addr :7474 -dataset dblp -scale 3000
//	    In-memory demo: partitions a generated stream while serving; the
//	    mirror attaches before ingest and is ready immediately.
//
//	loom-router -addr :7474 -dataset dblp -wal /var/loom/wal
//	    Durable primary: same demo ingest, WAL-backed (recovering whatever
//	    the directory holds first), checkpointing when ingest completes.
//
//	loom-router -addr :7474 -dataset dblp -wal /var/loom/wal -follow
//	    Replica: tails another process's WAL directory read-only —
//	    bootstrap from its newest checkpoint + log tail, then poll for new
//	    records every -poll. /healthz turns 200 only once the replica has
//	    caught up to the primary's durable log head; routing answers are
//	    served (from what has been applied) even before that.
//
// The motif workload for /route/scatter is the dataset's registered
// workload (-dataset). Shutdown is graceful on SIGINT/SIGTERM: in-flight
// requests drain, the partitioner closes (syncing the WAL).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loom"
	"loom/router"
)

type config struct {
	addr     string
	dataset  string
	k        int
	scale    int
	vertices int
	window   int
	seed     int64
	walDir   string
	follow   bool
	poll     time.Duration
	pin      time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7474", "HTTP listen address")
	flag.StringVar(&cfg.dataset, "dataset", "dblp", "dataset workload: dblp, provgen, musicbrainz, lubm")
	flag.IntVar(&cfg.k, "k", 4, "number of partitions")
	flag.IntVar(&cfg.scale, "scale", 3000, "edges of demo stream to ingest (ignored with -follow)")
	flag.IntVar(&cfg.vertices, "vertices", 0, "ExpectedVertices sizing hint (0: derive from -scale); durable modes must match the directory's value")
	flag.IntVar(&cfg.window, "window", 256, "Loom window size t")
	flag.Int64Var(&cfg.seed, "seed", 7, "demo stream seed")
	flag.StringVar(&cfg.walDir, "wal", "", "write-ahead log directory (primary: log + recover; with -follow: tail read-only)")
	flag.BoolVar(&cfg.follow, "follow", false, "follow a primary's WAL directory instead of ingesting (requires -wal)")
	flag.DurationVar(&cfg.poll, "poll", 200*time.Millisecond, "WAL poll interval in -follow mode")
	flag.DurationVar(&cfg.pin, "pin", time.Second, "routing-generation repin interval")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "loom-router: %v\n", err)
		os.Exit(1)
	}
}

// run builds the partitioner (or follower), attaches the mirror, and
// serves until ctx is cancelled. If addrCh is non-nil the bound listen
// address is sent on it once the listener is up (tests bind :0).
func run(ctx context.Context, cfg config, logw io.Writer, addrCh chan<- string) error {
	logger := log.New(logw, "loom-router: ", log.LstdFlags)
	if cfg.follow && cfg.walDir == "" {
		return fmt.Errorf("-follow requires -wal DIR (the primary's log directory)")
	}
	wl, err := loom.DatasetWorkload(cfg.dataset)
	if err != nil {
		return err
	}
	// Checkpoints fingerprint every placement-shaping option, so durable
	// modes must present the exact ExpectedVertices the directory was
	// created with — hence the explicit -vertices override.
	expected := cfg.vertices
	if expected <= 0 {
		expected = 2 * cfg.scale
	}
	if expected < 1024 {
		expected = 4096
	}
	opt := loom.Options{
		Partitions:       cfg.k,
		ExpectedVertices: expected,
		WindowSize:       cfg.window,
		WALDir:           cfg.walDir,
	}

	var (
		p        *loom.Partitioner
		follower *loom.Follower
	)
	switch {
	case cfg.follow:
		f, info, err := loom.Follow(opt, wl)
		if err != nil {
			return err
		}
		follower = f
		p = f.Partitioner()
		logger.Printf("following %s: checkpoint@%d + %d replayed records (lsn %d)",
			cfg.walDir, info.CheckpointLSN, info.ReplayedRecords, info.LastLSN)
	case cfg.walDir != "":
		dp, info, err := loom.Open(opt, wl)
		if err != nil {
			return err
		}
		p = dp
		if info.Recovered {
			logger.Printf("recovered %s: checkpoint@%d + %d replayed records",
				cfg.walDir, info.CheckpointLSN, info.ReplayedRecords)
		}
	default:
		p, err = loom.New(opt, wl)
		if err != nil {
			return err
		}
	}

	m := router.New()
	m.Attach(p)
	if cfg.follow {
		// Readiness means caught up to the primary's durable log head,
		// not merely bootstrapped: gate it on the first drained poll.
		m.SetReady(false)
	}
	srv := router.NewServer(m, router.NewPlanner(m, wl.Queries(), cfg.k))

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	logger.Printf("serving on %s (dataset %s, k=%d)", ln.Addr(), cfg.dataset, cfg.k)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 3)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	// The reconciler repins the routing generation: vertices placed before
	// the mirror attached (recovered state) resolve through it.
	pinCtx, stopPin := context.WithCancel(ctx)
	defer stopPin()
	go func() {
		tick := time.NewTicker(cfg.pin)
		defer tick.Stop()
		for {
			select {
			case <-pinCtx.Done():
				return
			case <-tick.C:
				m.Pin(p.Snapshot())
			}
		}
	}()

	if cfg.follow {
		go func() { errc <- followLoop(pinCtx, follower, m, cfg.poll, logger) }()
	} else if cfg.scale > 0 {
		go func() { errc <- demoIngest(pinCtx, p, m, cfg, logger) }()
	}

	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
	case err := <-errc:
		if err != nil {
			shutdown(httpSrv, follower, p, cfg, logger)
			return err
		}
		<-ctx.Done()
		logger.Printf("shutting down")
	}
	return shutdown(httpSrv, follower, p, cfg, logger)
}

func shutdown(httpSrv *http.Server, follower *loom.Follower, p *loom.Partitioner, cfg config, logger *log.Logger) error {
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if follower != nil {
		return follower.Close()
	}
	if cfg.walDir != "" {
		return p.Close() // syncs the log
	}
	return nil
}

// followLoop polls the primary's WAL at the configured interval, marking
// the mirror ready the first time a poll drains the log (caught up to the
// durable head). ErrWALGap — the primary checkpointed and pruned past our
// position — is fatal; a restart re-bootstraps from the newer checkpoint.
func followLoop(ctx context.Context, f *loom.Follower, m *router.Mirror, every time.Duration, logger *log.Logger) error {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
			n, err := f.Poll()
			if err != nil {
				m.SetReady(false)
				return fmt.Errorf("follow: %w", err)
			}
			if n == 0 && !m.Ready() {
				logger.Printf("caught up to primary at lsn %d", f.LSN())
				m.SetReady(true)
			}
		}
	}
}

// demoIngest streams a generated dataset into the partitioner while the
// server routes against it — the standalone demo (and CI smoke) mode.
func demoIngest(ctx context.Context, p *loom.Partitioner, m *router.Mirror, cfg config, logger *log.Logger) error {
	edges, err := loom.GenerateDataset(cfg.dataset, cfg.scale, cfg.seed)
	if err != nil {
		return err
	}
	const batch = 256
	for i := 0; i < len(edges); i += batch {
		if ctx.Err() != nil {
			return nil
		}
		end := min(i+batch, len(edges))
		if err := p.AddBatch(edges[i:end]); err != nil {
			return err
		}
	}
	p.Flush()
	if err := p.Err(); err != nil {
		return err
	}
	m.Pin(p.Snapshot())
	if cfg.walDir != "" {
		if _, err := p.Checkpoint(); err != nil {
			return err
		}
	}
	st := m.Stats()
	logger.Printf("demo stream done: %d edges, mirror holds %d placements (%d evictions)",
		len(edges), st.Vertices, st.Evicted)
	return nil
}
