package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"loom"
	"loom/router"
)

// startRouter runs the service with a kernel-assigned port and returns
// its base URL plus a stop function that asserts clean shutdown.
func startRouter(t *testing.T, cfg config) (string, func()) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, io.Discard, addrCh) }()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("router exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("router did not start listening")
	}
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("router did not shut down")
		}
	}
}

// waitHealthy polls /healthz until it answers 200.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("/healthz never turned 200")
}

func getDecision(t *testing.T, base string, v int64) router.Decision {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/route/%d", base, v))
	if err != nil {
		t.Fatalf("GET /route/%d: %v", v, err)
	}
	defer resp.Body.Close()
	var d router.Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return d
}

func TestServeInMemoryDemo(t *testing.T) {
	cfg := config{dataset: "dblp", k: 4, scale: 1500, window: 256, seed: 7,
		poll: 20 * time.Millisecond, pin: 20 * time.Millisecond}
	base, stop := startRouter(t, cfg)
	defer stop()
	waitHealthy(t, base)

	// Wait for the demo ingest to make placements, then route one.
	edges, err := loom.GenerateDataset(cfg.dataset, cfg.scale, cfg.seed)
	if err != nil {
		t.Fatal(err)
	}
	probe := edges[0].U
	deadline := time.Now().Add(15 * time.Second)
	for {
		if d := getDecision(t, base, probe); d.Found {
			if d.Partition < 0 || d.Partition >= cfg.k {
				t.Fatalf("routed to partition %d of k=%d", d.Partition, cfg.k)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("demo ingest never placed the probe vertex")
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("%s/route/scatter?seed=%d&motif=coauthors", base, probe))
	if err != nil {
		t.Fatal(err)
	}
	var plan router.Plan
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatalf("decode plan: %v", err)
	}
	resp.Body.Close()
	if plan.Fanout < 1 || plan.Fanout > cfg.k {
		t.Fatalf("scatter plan = %+v", plan)
	}
}

func TestFollowModeCatchesUp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatal(err)
	}
	opt := loom.Options{Partitions: 4, ExpectedVertices: 3000, WindowSize: 256, WALDir: dir}
	p, _, err := loom.Open(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := loom.GenerateDataset("dblp", 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	half := len(edges) / 2
	if err := p.AddBatch(edges[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.AddBatch(edges[half:]); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if err := p.Close(); err != nil { // sync: the whole stream is durable
		t.Fatal(err)
	}

	cfg := config{dataset: "dblp", k: 4, vertices: 3000, window: 256, walDir: dir, follow: true,
		poll: 10 * time.Millisecond, pin: 20 * time.Millisecond}
	base, stop := startRouter(t, cfg)
	defer stop()
	// Readiness is gated on catching up to the primary's log head.
	waitHealthy(t, base)

	// Every placement the primary made routes identically on the replica.
	snap := p.Snapshot()
	checked := 0
	snap.Each(func(v int64, part int) {
		if checked >= 50 {
			return
		}
		checked++
		if d := getDecision(t, base, v); !d.Found || d.Partition != part {
			t.Fatalf("replica routes %d to %+v, primary placed it in %d", v, d, part)
		}
	})
	if checked == 0 {
		t.Fatal("primary placed nothing")
	}
}

// TestFollowStatsReportSupervisor: follow mode surfaces the follower
// lifecycle in /stats once caught up.
func TestFollowStatsReportSupervisor(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	wl, err := loom.DatasetWorkload("dblp")
	if err != nil {
		t.Fatal(err)
	}
	opt := loom.Options{Partitions: 4, ExpectedVertices: 3000, WindowSize: 256, WALDir: dir}
	p, _, err := loom.Open(opt, wl)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := loom.GenerateDataset("dblp", 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddBatch(edges); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := config{dataset: "dblp", k: 4, vertices: 3000, window: 256, walDir: dir, follow: true,
		poll: 10 * time.Millisecond, pin: 20 * time.Millisecond,
		backoffMin: 10 * time.Millisecond, backoffMax: 100 * time.Millisecond, backoffFactor: 2}
	base, stop := startRouter(t, cfg)
	defer stop()
	waitHealthy(t, base)

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Supervisor *struct {
			State        string `json:"state"`
			EverHealthy  bool   `json:"ever_healthy"`
			Rebootstraps uint64 `json:"rebootstraps"`
		} `json:"supervisor"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Supervisor == nil || st.Supervisor.State != "healthy" || !st.Supervisor.EverHealthy {
		t.Fatalf("supervisor stats = %+v", st.Supervisor)
	}
	if st.Supervisor.Rebootstraps != 0 {
		t.Fatalf("clean follow re-bootstrapped %d times", st.Supervisor.Rebootstraps)
	}
}

// TestGracefulShutdownDrains: a request in flight when shutdown begins
// completes normally, while connections attempted after the listener
// closes are refused — http.Server.Shutdown with the -drain deadline.
func TestGracefulShutdownDrains(t *testing.T) {
	cfg := config{dataset: "dblp", k: 4, scale: 0, window: 256, seed: 7,
		poll: 20 * time.Millisecond, pin: 20 * time.Millisecond,
		routeDelay: 500 * time.Millisecond, drain: 10 * time.Second}
	base, stop := startRouter(t, cfg)

	type result struct {
		code int
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/route/42")
		if err != nil {
			slow <- result{0, err}
			return
		}
		resp.Body.Close()
		slow <- result{resp.StatusCode, nil}
	}()
	time.Sleep(150 * time.Millisecond) // the slow request is now in flight

	stopped := make(chan struct{})
	go func() {
		stop() // cancel + wait for run to return cleanly
		close(stopped)
	}()

	// New connections get refused once the listener closes, while the
	// slow request keeps draining.
	refusedBy := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/route/1")
		if err != nil {
			break // refused: the listener is closed
		}
		resp.Body.Close()
		if time.Now().After(refusedBy) {
			t.Fatal("new requests were still accepted during shutdown")
		}
		time.Sleep(20 * time.Millisecond)
	}

	select {
	case r := <-slow:
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("in-flight request during shutdown: code %d, err %v", r.code, r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case <-stopped:
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}

func TestFollowRequiresWALDir(t *testing.T) {
	err := run(context.Background(), config{dataset: "dblp", follow: true, poll: time.Millisecond, pin: time.Millisecond}, io.Discard, nil)
	if err == nil {
		t.Fatal("follow mode without -wal did not error")
	}
}
