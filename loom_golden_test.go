package loom_test

// Golden placement tests for the matching-core rebuild (ISSUE 5): the
// hashes below were produced at PR 4's head on the four evaluation
// dataset fixtures and pin Loom's placements bit-for-bit — assignments,
// sizes, stats and event streams are all functions of the assignment
// sequence, so one strong hash of the sorted (vertex, partition) pairs
// witnesses them. Dataset generation, stream ordering and signatures are
// all seed-deterministic, so these values are machine-independent; any
// change to them is a placement regression, not noise.
//
// Sequential ingest and workers ∈ {2, 4, 8} batch ingest must all land on
// the same pinned hash (the parallel pipeline's bit-identity guarantee,
// PR 4, re-pinned here against the rebuilt matcher).

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"loom"
)

// goldenPlacements: dataset → FNV-64a over "v:p;" pairs sorted by vertex,
// captured at PR 4 (scale 2500, generation seed 3, bfs order seed 5,
// K = 8, window 512, signature seed 42, batch size 311).
var goldenPlacements = map[string]struct {
	vertices uint64
	hash     uint64
}{
	"dblp":        {2581, 0x58077492d902dde9},
	"provgen":     {2481, 0x99d07d598a7dbc9e},
	"musicbrainz": {3706, 0x4e766f54120b31d4},
	"lubm":        {3174, 0xaf662afa543b23ba},
}

// goldenFixture regenerates one dataset's pinned stream.
func goldenFixture(t testing.TB, ds string) (*loom.Workload, []loom.StreamEdge, int) {
	t.Helper()
	wl, err := loom.DatasetWorkload(ds)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := loom.GenerateDataset(ds, 2500, 3)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := loom.OrderStream(edges, "bfs", 5)
	if err != nil {
		t.Fatal(err)
	}
	return wl, ordered, distinctVertices(ordered)
}

// placementHash ingests the stream at the given worker count and returns
// the canonical assignment hash.
func placementHash(t testing.TB, wl *loom.Workload, edges []loom.StreamEdge, n, workers int) (uint64, int) {
	t.Helper()
	p, err := loom.New(loom.Options{
		Partitions: 8, ExpectedVertices: n, WindowSize: 512, Seed: 42, Workers: workers,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if workers == 1 {
		for _, e := range edges {
			p.AddEdge(e.U, e.LU, e.V, e.LV)
		}
	} else {
		const batch = 311
		for i := 0; i < len(edges); i += batch {
			end := min(i+batch, len(edges))
			if err := p.AddBatch(edges[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.Flush()
	type pair struct {
		v int64
		p int
	}
	var ps []pair
	p.Snapshot().Each(func(v int64, part int) { ps = append(ps, pair{v, part}) })
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	h := fnv.New64a()
	for _, kv := range ps {
		fmt.Fprintf(h, "%d:%d;", kv.v, kv.p)
	}
	return h.Sum64(), len(ps)
}

// TestGoldenPlacementsPinned: placements on the dataset fixtures must be
// bit-identical to the PR 4 capture, for sequential and parallel ingest
// alike.
func TestGoldenPlacementsPinned(t *testing.T) {
	for ds, want := range goldenPlacements {
		t.Run(ds, func(t *testing.T) {
			wl, edges, n := goldenFixture(t, ds)
			for _, workers := range []int{1, 2, 4, 8} {
				got, vertices := placementHash(t, wl, edges, n, workers)
				if uint64(vertices) != want.vertices {
					t.Fatalf("workers=%d: %d vertices assigned, want %d", workers, vertices, want.vertices)
				}
				if got != want.hash {
					t.Fatalf("workers=%d: placement hash %#x, want %#x (placements diverged from PR 4)",
						workers, got, want.hash)
				}
			}
		})
	}
}

// TestRandomStreamPlacementsParity is the placement leg of the window
// package's naive-matcher differential test: on seeded RANDOM stream
// orders (the pseudo-adversarial §1.2 ordering, not covered by the bfs
// golden fixtures) sequential and parallel batch ingest must agree
// exactly. Runs under -race in CI.
func TestRandomStreamPlacementsParity(t *testing.T) {
	for _, ds := range []string{"dblp", "provgen", "musicbrainz", "lubm"} {
		t.Run(ds, func(t *testing.T) {
			wl, err := loom.DatasetWorkload(ds)
			if err != nil {
				t.Fatal(err)
			}
			edges, err := loom.GenerateDataset(ds, 1200, 11)
			if err != nil {
				t.Fatal(err)
			}
			ordered, err := loom.OrderStream(edges, "random", 23)
			if err != nil {
				t.Fatal(err)
			}
			n := distinctVertices(ordered)
			seq, nseq := placementHash(t, wl, ordered, n, 1)
			for _, workers := range []int{2, 4} {
				par, npar := placementHash(t, wl, ordered, n, workers)
				if par != seq || npar != nseq {
					t.Fatalf("workers=%d diverged from sequential on random order (%#x/%d vs %#x/%d)",
						workers, par, npar, seq, nseq)
				}
			}
		})
	}
}
