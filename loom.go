// Package loom is a query-aware streaming graph partitioner, a faithful
// from-scratch implementation of
//
//	H. Firth, P. Missier, J. Aiston.
//	"Loom: Query-aware Partitioning of Online Graphs", EDBT 2018.
//
// Loom consumes a stream of labelled edges (an online graph) and
// continuously assigns vertices to k partitions, optimising placement for a
// workload Q of sub-graph pattern-matching queries with known relative
// frequencies. It discovers the traversal patterns ("motifs") that the
// workload visits most, detects sub-graphs matching those motifs as they
// form in the stream, and places each matching cluster inside a single
// partition — cutting the inter-partition traversals (ipt) that dominate
// distributed query latency.
//
// # Quick start
//
//	wl := loom.NewWorkload("social")
//	wl.Add("friends-of-friends", loom.Path("person", "person", "person"), 0.7)
//	wl.Add("same-city", loom.Path("person", "city", "person"), 0.3)
//
//	p, err := loom.New(loom.Options{Partitions: 4, ExpectedVertices: 10000}, wl)
//	// stream edges as they arrive:
//	p.AddEdge(1, "person", 2, "person")
//	p.AddEdge(2, "person", 7, "city")
//	// ...
//	p.Flush() // drain the window at end-of-stream
//	part, ok := p.PartitionOf(1)
//
// The package also exposes the paper's baseline streaming partitioners
// (Hash, LDG, Fennel) behind the same interface via NewBaseline, the
// evaluation datasets via GenerateDataset/DatasetWorkload, and an ipt
// evaluator via Evaluate — everything needed to reproduce the paper's
// experiments (see cmd/loom-bench and EXPERIMENTS.md).
package loom

import (
	"fmt"
	"math/rand"

	"loom/internal/core"
	"loom/internal/dataset"
	"loom/internal/graph"
	"loom/internal/partition"
	"loom/internal/pattern"
	"loom/internal/refine"
	"loom/internal/signature"
	"loom/internal/simulate"
	"loom/internal/tpstry"
	"loom/internal/workload"
)

// StreamEdge is one element of the input stream: an edge with the labels of
// both endpoints (labels travel with edges because a vertex may first
// appear inside one).
type StreamEdge struct {
	U  int64
	LU string
	V  int64
	LV string
}

// Options configures a Partitioner. Zero values take the paper's defaults.
type Options struct {
	// Partitions is k, the number of partitions (required).
	Partitions int
	// ExpectedVertices sizes the per-partition capacity C = ν·n/k
	// (required; streaming balance needs a capacity estimate, §4).
	ExpectedVertices int
	// ExpectedEdges is used by the Fennel baseline's α (optional; ignored
	// by Loom itself).
	ExpectedEdges int
	// WindowSize is the sliding window t in edges (default 10_000).
	WindowSize int
	// SupportThreshold is the motif threshold T (default 0.40).
	SupportThreshold float64
	// Alpha is equal opportunism's rationing aggression (default 2/3).
	Alpha float64
	// MaxImbalance is the bound b / Fennel's ν (default 1.1).
	MaxImbalance float64
	// SignaturePrime is the finite-field modulus p (default 251, §2.3).
	SignaturePrime uint32
	// Seed makes signature label values and any internal randomness
	// reproducible (default 1).
	Seed int64
	// KeepGraph records every accepted edge so Evaluate can replay the
	// workload over the final partitioning (default true; disable for
	// large streams where only the assignment matters).
	DisableGraphRecording bool
}

// Pattern is a small labelled query graph.
type Pattern struct {
	g *graph.Graph
}

// Path returns the path pattern l1 − l2 − … − ln.
func Path(labels ...string) *Pattern {
	return &Pattern{g: pattern.Path(toLabels(labels)...)}
}

// Cycle returns the cycle pattern l1 − l2 − … − ln − l1.
func Cycle(labels ...string) *Pattern {
	return &Pattern{g: pattern.Cycle(toLabels(labels)...)}
}

// Star returns a star pattern with a centre label and one leaf per label.
func Star(centre string, leaves ...string) *Pattern {
	return &Pattern{g: pattern.Star(graph.Label(centre), toLabels(leaves)...)}
}

// NewPattern returns an empty pattern for incremental construction.
func NewPattern() *Pattern { return &Pattern{g: graph.New()} }

// AddEdge adds a labelled edge between pattern vertices u and v, creating
// them as needed. It returns the pattern for chaining and panics on label
// conflicts (patterns are built from literals; a conflict is a programming
// error).
func (p *Pattern) AddEdge(u int64, lu string, v int64, lv string) *Pattern {
	added, err := p.g.EnsureEdge(graph.VertexID(u), graph.Label(lu), graph.VertexID(v), graph.Label(lv))
	if err != nil {
		panic(fmt.Sprintf("loom: pattern edge %d-%d: %v", u, v, err))
	}
	if !added {
		panic(fmt.Sprintf("loom: duplicate pattern edge %d-%d", u, v))
	}
	return p
}

// Edges returns the number of edges in the pattern.
func (p *Pattern) Edges() int { return p.g.NumEdges() }

func toLabels(ss []string) []graph.Label {
	out := make([]graph.Label, len(ss))
	for i, s := range ss {
		out[i] = graph.Label(s)
	}
	return out
}

// Workload is a multiset of pattern queries with relative frequencies
// (§1.3).
type Workload struct {
	name    string
	queries []workload.Query
}

// NewWorkload returns an empty named workload.
func NewWorkload(name string) *Workload { return &Workload{name: name} }

// Add appends a query pattern with its relative frequency (any positive
// weight; Loom normalises internally). It returns the workload for
// chaining.
func (w *Workload) Add(name string, p *Pattern, freq float64) *Workload {
	w.queries = append(w.queries, workload.Query{Name: name, Pattern: p.g, Freq: freq})
	return w
}

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.queries) }

func (w *Workload) internal() workload.Workload {
	return workload.Workload{Name: w.name, Queries: w.queries}
}

// Stats mirrors the partitioner's processing counters.
type Stats struct {
	EdgesProcessed int
	ImmediateEdges int // bypassed the window (no single-edge motif)
	WindowedEdges  int // buffered in Ptemp
	Evictions      int
	WindowLen      int // edges currently buffered (Ptemp size)
}

// Partitioner is the public handle over a streaming partitioner: Loom
// itself or one of the baselines. Not safe for concurrent use.
type Partitioner struct {
	name     string
	streamer partition.Streamer
	loom     *core.Loom // non-nil only for algo == loom
	trie     *tpstry.Trie
	wl       *Workload
	g        *graph.Graph // recorded graph (nil when disabled)
	opt      Options
	// refined, when non-nil, supersedes the streamer's assignment (set by
	// Refine).
	refined *partition.Assignment
}

func (o Options) normalise() (Options, error) {
	if o.Partitions < 1 {
		return o, fmt.Errorf("loom: Partitions must be >= 1, got %d", o.Partitions)
	}
	if o.ExpectedVertices < 1 {
		return o, fmt.Errorf("loom: ExpectedVertices must be >= 1, got %d", o.ExpectedVertices)
	}
	if o.WindowSize == 0 {
		o.WindowSize = 10_000
	}
	if o.SupportThreshold == 0 {
		o.SupportThreshold = 0.40
	}
	if o.Alpha == 0 {
		o.Alpha = 2.0 / 3.0
	}
	if o.MaxImbalance == 0 {
		o.MaxImbalance = partition.DefaultImbalance
	}
	if o.SignaturePrime == 0 {
		o.SignaturePrime = signature.DefaultP
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// New builds a Loom partitioner for the given workload.
func New(opt Options, wl *Workload) (*Partitioner, error) {
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	if wl == nil || wl.Len() == 0 {
		return nil, fmt.Errorf("loom: a non-empty workload is required (use NewBaseline for workload-agnostic partitioning)")
	}
	iwl := wl.internal()
	if err := iwl.Validate(); err != nil {
		return nil, err
	}
	scheme := signature.NewScheme(opt.SignaturePrime, opt.Seed)
	trie, err := iwl.BuildTrie(scheme)
	if err != nil {
		return nil, err
	}
	lm, err := core.New(core.Config{
		K:                opt.Partitions,
		Capacity:         partition.CapacityFor(opt.ExpectedVertices, opt.Partitions, opt.MaxImbalance),
		WindowSize:       opt.WindowSize,
		SupportThreshold: opt.SupportThreshold,
		Alpha:            opt.Alpha,
		MaxImbalance:     opt.MaxImbalance,
	}, trie)
	if err != nil {
		return nil, err
	}
	p := &Partitioner{name: "loom", streamer: lm, loom: lm, trie: trie, wl: wl, opt: opt}
	if !opt.DisableGraphRecording {
		p.g = graph.New()
	}
	return p, nil
}

// NewBaseline builds one of the paper's baseline partitioners — "hash",
// "ldg" or "fennel" — behind the same interface, with an optional workload
// used only by Evaluate.
func NewBaseline(algo string, opt Options, wl *Workload) (*Partitioner, error) {
	opt, err := opt.normalise()
	if err != nil {
		return nil, err
	}
	capC := partition.CapacityFor(opt.ExpectedVertices, opt.Partitions, opt.MaxImbalance)
	var s partition.Streamer
	switch algo {
	case "hash":
		s = partition.NewHash(opt.Partitions, capC)
	case "ldg":
		s = partition.NewLDG(opt.Partitions, capC)
	case "fennel":
		m := opt.ExpectedEdges
		if m == 0 {
			m = 2 * opt.ExpectedVertices
		}
		s = partition.NewFennel(opt.Partitions, opt.ExpectedVertices, m)
	default:
		return nil, fmt.Errorf("loom: unknown baseline %q (want hash, ldg or fennel)", algo)
	}
	p := &Partitioner{name: algo, streamer: s, wl: wl, opt: opt}
	if !opt.DisableGraphRecording {
		p.g = graph.New()
	}
	return p, nil
}

// Name returns the algorithm name ("loom", "hash", "ldg", "fennel").
func (p *Partitioner) Name() string { return p.name }

// AddEdge feeds one stream edge. Self-loops and duplicates are tolerated
// (dropped), matching the robustness expected of an online ingest path.
func (p *Partitioner) AddEdge(u int64, lu string, v int64, lv string) {
	se := graph.StreamEdge{
		U: graph.VertexID(u), LU: graph.Label(lu),
		V: graph.VertexID(v), LV: graph.Label(lv),
	}
	if p.g != nil {
		// Recording tolerates duplicates/self-loops; label conflicts
		// indicate corrupt input and are surfaced as a panic here since
		// AddEdge has no error channel by design (hot path).
		if _, err := p.g.EnsureEdge(se.U, se.LU, se.V, se.LV); err != nil {
			panic(fmt.Sprintf("loom: %v", err))
		}
	}
	p.streamer.ProcessEdge(se)
}

// AddStreamEdge is AddEdge for a StreamEdge value.
func (p *Partitioner) AddStreamEdge(e StreamEdge) { p.AddEdge(e.U, e.LU, e.V, e.LV) }

// Flush drains the sliding window, assigning all buffered edges. Call at
// end-of-stream (or at a checkpoint) before reading final placements.
func (p *Partitioner) Flush() { p.streamer.Flush() }

// PartitionOf returns v's partition in [0, Partitions), or ok = false while
// v is unassigned (not yet seen, or still buffered in the window Ptemp).
func (p *Partitioner) PartitionOf(v int64) (int, bool) {
	a := p.currentAssignment()
	id := a.Of(graph.VertexID(v))
	if id == partition.Unassigned {
		return 0, false
	}
	return int(id), true
}

// Partitions returns k.
func (p *Partitioner) Partitions() int { return p.currentAssignment().K }

// Sizes returns the current vertex count of each partition.
func (p *Partitioner) Sizes() []int {
	return append([]int(nil), p.currentAssignment().Sizes...)
}

// Assignments returns a copy of the full vertex → partition map.
func (p *Partitioner) Assignments() map[int64]int {
	a := p.currentAssignment()
	out := make(map[int64]int, a.NumAssigned())
	a.Each(func(v graph.VertexID, id partition.ID) { out[int64(v)] = int(id) })
	return out
}

// Stats returns processing counters (Loom-specific fields are zero for
// baselines).
func (p *Partitioner) Stats() Stats {
	if p.loom == nil {
		return Stats{}
	}
	st := p.loom.Stats()
	return Stats{
		EdgesProcessed: st.EdgesProcessed,
		ImmediateEdges: st.ImmediateEdges,
		WindowedEdges:  st.WindowedEdges,
		Evictions:      st.Evictions,
		WindowLen:      p.loom.Window().Len(),
	}
}

// AddQuery extends the workload while streaming ("the TPSTry++ may be
// trivially updated to account for change in the frequencies of workload
// queries", §2). Only valid for Loom partitioners.
func (p *Partitioner) AddQuery(name string, pat *Pattern, freq float64) error {
	if p.loom == nil {
		return fmt.Errorf("loom: %s baseline has no workload to update", p.name)
	}
	if err := p.trie.AddQuery(pat.g, freq); err != nil {
		return err
	}
	p.wl.Add(name, pat, freq)
	return nil
}

// Evaluation reports partitioning quality over the recorded graph.
type Evaluation struct {
	// IPT is the frequency-weighted inter-partition traversal count for
	// the workload (§1.3's quality measure).
	IPT float64
	// EdgeCut counts edges crossing partitions.
	EdgeCut int
	// Imbalance is max |Vi|/(n/k) − 1.
	Imbalance float64
	// AssignedVertices is the number of placed vertices.
	AssignedVertices int
}

// Evaluate executes the workload over the recorded graph and the current
// assignment. The Partitioner must have been built with graph recording
// enabled and (for baselines) a workload.
func (p *Partitioner) Evaluate() (Evaluation, error) {
	if p.g == nil {
		return Evaluation{}, fmt.Errorf("loom: graph recording disabled; Evaluate unavailable")
	}
	if p.wl == nil || p.wl.Len() == 0 {
		return Evaluation{}, fmt.Errorf("loom: no workload to evaluate")
	}
	a := p.currentAssignment()
	res, err := workload.Execute(p.g, a, p.wl.internal(), workload.Options{})
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{
		IPT:              res.IPT,
		EdgeCut:          partition.EdgeCut(p.g, a),
		Imbalance:        partition.Imbalance(a),
		AssignedVertices: a.NumAssigned(),
	}, nil
}

// RefineStats reports an offline refinement run (see Refine).
type RefineStats struct {
	Passes    int
	Moves     int
	CutBefore float64 // workload-weighted edge cut before
	CutAfter  float64
}

// Refine runs the offline TAPER-style re-partitioning pass the paper
// proposes integrating with Loom (§6): vertices migrate between partitions
// when that reduces the workload-weighted edge cut, within the balance
// bound. It requires graph recording and a workload; the partitioner's
// assignment is updated in place conceptually — subsequent PartitionOf and
// Evaluate calls observe the refined placement, but the streaming state is
// finished: call only after Flush.
func (p *Partitioner) Refine(maxPasses int) (RefineStats, error) {
	if p.g == nil {
		return RefineStats{}, fmt.Errorf("loom: graph recording disabled; Refine unavailable")
	}
	if p.wl == nil || p.wl.Len() == 0 {
		return RefineStats{}, fmt.Errorf("loom: no workload to refine against")
	}
	trie := p.trie
	if trie == nil {
		// Baselines carry a workload but no trie; build one.
		scheme := signature.NewScheme(p.opt.SignaturePrime, p.opt.Seed)
		t, err := p.wl.internal().BuildTrie(scheme)
		if err != nil {
			return RefineStats{}, err
		}
		trie = t
	}
	a := p.streamer.Assignment()
	refined, st, err := refine.Refine(p.g, a, trie, refine.Config{
		Capacity:  partition.CapacityFor(p.opt.ExpectedVertices, p.opt.Partitions, p.opt.MaxImbalance),
		MaxPasses: maxPasses,
	})
	if err != nil {
		return RefineStats{}, err
	}
	p.refined = refined
	return RefineStats{Passes: st.Passes, Moves: st.Moves, CutBefore: st.CutBefore, CutAfter: st.CutAfter}, nil
}

// Restream returns a fresh Loom partitioner that uses this partitioner's
// current assignment as a restreaming prior (§6 future work): replay the
// stream (in any order) through the returned partitioner and cold-start
// decisions will keep the localities discovered on the first pass. Only
// available for Loom partitioners.
func (p *Partitioner) Restream() (*Partitioner, error) {
	if p.loom == nil {
		return nil, fmt.Errorf("loom: Restream requires a Loom partitioner, not %s", p.name)
	}
	opt := p.opt
	iwl := p.wl.internal()
	scheme := signature.NewScheme(opt.SignaturePrime, opt.Seed)
	trie, err := iwl.BuildTrie(scheme)
	if err != nil {
		return nil, err
	}
	lm, err := core.New(core.Config{
		K:                opt.Partitions,
		Capacity:         partition.CapacityFor(opt.ExpectedVertices, opt.Partitions, opt.MaxImbalance),
		WindowSize:       opt.WindowSize,
		SupportThreshold: opt.SupportThreshold,
		Alpha:            opt.Alpha,
		MaxImbalance:     opt.MaxImbalance,
		Prior:            p.currentAssignment(),
	}, trie)
	if err != nil {
		return nil, err
	}
	np := &Partitioner{name: "loom", streamer: lm, loom: lm, trie: trie, wl: p.wl, opt: opt}
	if !opt.DisableGraphRecording {
		np.g = graph.New()
	}
	return np, nil
}

// currentAssignment returns the refined assignment when present, else the
// streamer's.
func (p *Partitioner) currentAssignment() *partition.Assignment {
	if p.refined != nil {
		return p.refined
	}
	return p.streamer.Assignment()
}

// Simulation reports a simulated distributed execution of the workload
// (see Simulate).
type Simulation struct {
	// LocalHops and RemoteHops count intra- and inter-machine adjacency
	// traversals during workload execution.
	LocalHops, RemoteHops int
	// TotalCost is the frequency-weighted cost under the given model.
	TotalCost float64
	// MachineLoad is the number of traversal steps served per machine
	// (last slot: unassigned/Ptemp vertices).
	MachineLoad []int
}

// Simulate executes the workload over the recorded graph with an explicit
// distributed cost model: every adjacency step costs localCost on one
// machine and remoteCost across machines (0 values take the defaults
// 1 and 1000). This turns the paper's ipt proxy into a latency-flavoured
// estimate; see internal/simulate.
func (p *Partitioner) Simulate(localCost, remoteCost float64) (Simulation, error) {
	if p.g == nil {
		return Simulation{}, fmt.Errorf("loom: graph recording disabled; Simulate unavailable")
	}
	if p.wl == nil || p.wl.Len() == 0 {
		return Simulation{}, fmt.Errorf("loom: no workload to simulate")
	}
	res, err := simulate.Run(p.g, p.currentAssignment(), p.wl.internal(),
		simulate.CostModel{LocalCost: localCost, RemoteCost: remoteCost}, 0)
	if err != nil {
		return Simulation{}, err
	}
	return Simulation{
		LocalHops:   res.LocalHops,
		RemoteHops:  res.RemoteHops,
		TotalCost:   res.TotalCost,
		MachineLoad: res.MachineLoad,
	}, nil
}

// GenerateDataset produces one of the paper's evaluation graphs ("dblp",
// "provgen", "musicbrainz", "lubm") as a stream in insertion order. scale
// is a target vertex count.
func GenerateDataset(name string, scale int, seed int64) ([]StreamEdge, error) {
	g, err := dataset.Generate(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return toPublicStream(graph.StreamOf(g, graph.OrderOriginal, nil)), nil
}

// DatasetWorkload returns the canonical query workload for one of the
// paper's datasets.
func DatasetWorkload(name string) (*Workload, error) {
	iwl, err := workload.ForDataset(name)
	if err != nil {
		return nil, err
	}
	w := NewWorkload(iwl.Name)
	w.queries = iwl.Queries
	return w, nil
}

// OrderStream reorders a stream breadth-first ("bfs"), depth-first ("dfs")
// or uniformly at random ("random") — the three stream orders of the
// paper's evaluation (§5.1). The input must form a valid graph.
func OrderStream(edges []StreamEdge, order string, seed int64) ([]StreamEdge, error) {
	g := graph.New()
	for _, e := range edges {
		if _, err := g.EnsureEdge(graph.VertexID(e.U), graph.Label(e.LU), graph.VertexID(e.V), graph.Label(e.LV)); err != nil {
			return nil, err
		}
	}
	var o graph.StreamOrder
	switch order {
	case "bfs":
		o = graph.OrderBFS
	case "dfs":
		o = graph.OrderDFS
	case "random":
		o = graph.OrderRandom
	case "original":
		o = graph.OrderOriginal
	default:
		return nil, fmt.Errorf("loom: unknown stream order %q", order)
	}
	return toPublicStream(graph.StreamOf(g, o, rand.New(rand.NewSource(seed)))), nil
}

func toPublicStream(s graph.Stream) []StreamEdge {
	out := make([]StreamEdge, len(s))
	for i, e := range s {
		out[i] = StreamEdge{U: int64(e.U), LU: string(e.LU), V: int64(e.V), LV: string(e.LV)}
	}
	return out
}
